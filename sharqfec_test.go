package sharqfec

import (
	"strings"
	"testing"
)

func TestParseProtocol(t *testing.T) {
	cases := map[string]Protocol{
		"srm":                SRM,
		"sharqfec":           SHARQFEC,
		"sharqfec(ns)":       SHARQFECNoScope,
		"sharqfec-ni":        SHARQFECNoInject,
		"sharqfec(ns,ni)":    SHARQFECNoScopeNoInject,
		"ecsrm":              ECSRM,
		"sharqfec(ns,ni,so)": ECSRM,
	}
	for in, want := range cases {
		got, err := ParseProtocol(in)
		if err != nil || got != want {
			t.Fatalf("ParseProtocol(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseProtocol("bogus"); err == nil {
		t.Fatal("bogus protocol accepted")
	}
}

func TestProtocolStrings(t *testing.T) {
	if SHARQFEC.String() != "SHARQFEC" || ECSRM.String() != "SHARQFEC(ns,ni,so)/ECSRM" {
		t.Fatal("protocol strings wrong")
	}
	if len(Protocols()) != 7 {
		t.Fatal("expected 7 protocols")
	}
}

func TestTopologyAccessors(t *testing.T) {
	top := Figure10Topology()
	if top.NumNodes() != 113 || top.NumReceivers() != 112 || top.NumZones() != 29 {
		t.Fatalf("figure10: %d/%d/%d", top.NumNodes(), top.NumReceivers(), top.NumZones())
	}
	if top.Name() != "figure10" {
		t.Fatalf("name = %q", top.Name())
	}
	if ChainTopology(5, 0.1).NumNodes() != 5 {
		t.Fatal("chain wrong")
	}
	if StarTopology(4, 0).NumReceivers() != 3 {
		t.Fatal("star wrong")
	}
	if TreeTopology([]int{2, 2}, 0).NumNodes() != 7 {
		t.Fatal("tree wrong")
	}
	if NationalTopology(2, 2, 2, 3).NumReceivers() != 2+4+24 {
		t.Fatal("national wrong")
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{Start: 0, BinWidth: 0.1, Bins: []float64{1, 5, 2}}
	if s.Sum() != 8 {
		t.Fatalf("sum = %v", s.Sum())
	}
	v, at := s.Max()
	if v != 5 || at != 0.1 {
		t.Fatalf("max = %v@%v", v, at)
	}
	if got := s.Window(0.1, 0.3); got != 7 {
		t.Fatalf("window = %v", got)
	}
}

func TestRunDataSmallSHARQFEC(t *testing.T) {
	res, err := RunData(DataConfig{
		Protocol:   SHARQFEC,
		Topology:   ChainTopology(4, 0.08),
		Seed:       1,
		NumPackets: 64,
		Until:      60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionRate != 1 {
		t.Fatalf("completion = %v", res.CompletionRate)
	}
	if !res.Verified {
		t.Fatal("payloads not verified")
	}
	if res.AvgDataRepair.Sum() == 0 {
		t.Fatal("no data traffic recorded")
	}
}

func TestRunDataSmallSRM(t *testing.T) {
	res, err := RunData(DataConfig{
		Protocol:   SRM,
		Topology:   ChainTopology(4, 0.08),
		Seed:       1,
		NumPackets: 64,
		Until:      90,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionRate != 1 {
		t.Fatalf("completion = %v", res.CompletionRate)
	}
	if !res.Verified {
		t.Fatal("payloads not verified")
	}
}

func TestRunDataAllVariantsComplete(t *testing.T) {
	for _, p := range Protocols() {
		res, err := RunData(DataConfig{
			Protocol:   p,
			Topology:   TreeTopology([]int{2, 2}, 0.06),
			Seed:       7,
			NumPackets: 32,
			Until:      90,
		})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.CompletionRate < 1 {
			t.Fatalf("%s completion = %v", p, res.CompletionRate)
		}
	}
}

func TestRunDataUnknownProtocol(t *testing.T) {
	if _, err := RunData(DataConfig{Protocol: "nope"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunRTTSmall(t *testing.T) {
	res, err := RunRTT(RTTConfig{
		Topology: Figure10Topology(),
		Sender:   3,
		Seed:     3,
		Probes:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ratios) != 4 {
		t.Fatalf("probes = %d", len(res.Ratios))
	}
	if res.Able[len(res.Able)-1] < res.Receivers/2 {
		t.Fatalf("only %d/%d receivers could estimate", res.Able[len(res.Able)-1], res.Receivers)
	}
	if f := res.FinalFractionWithin(0.25); f < 0.5 {
		t.Fatalf("fraction within 25%% = %v, want > 0.5 (paper: >50%% within a few %%)", f)
	}
	if m := res.MedianRatio(len(res.Ratios) - 1); m < 0.7 || m > 1.3 {
		t.Fatalf("median ratio = %v", m)
	}
}

func TestRunRTTBadSender(t *testing.T) {
	if _, err := RunRTT(RTTConfig{Topology: ChainTopology(3, 0), Sender: 99}); err == nil {
		t.Fatal("invalid sender accepted")
	}
}

func TestRunZCRElectionChain(t *testing.T) {
	res, err := RunZCRElection(ChainTopology(5, 0), 4, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatalf("chain election incorrect: %+v", res.PerZone)
	}
}

func TestRunZCRElectionFigure10(t *testing.T) {
	res, err := RunZCRElection(Figure10Topology(), 5, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatalf("figure10 election incorrect: %+v", res.PerZone)
	}
	if res.Takeovers == 0 {
		t.Fatal("no takeovers recorded")
	}
}

func TestRunSessionScaling(t *testing.T) {
	res, err := RunSessionScaling(NationalTopology(2, 3, 2, 4), 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduction <= 2 {
		t.Fatalf("scoped session traffic reduction = %vx, want substantially > 1", res.Reduction)
	}
	if res.ScopedMaxState >= res.FlatStatePerNode {
		t.Fatalf("scoped state %d not below flat %d", res.ScopedMaxState, res.FlatStatePerNode)
	}
}

func TestFigureReports(t *testing.T) {
	if !strings.Contains(Figure1Report(), "27.0%") {
		t.Fatal("Figure1Report missing calibration")
	}
	if !strings.Contains(Figure8Report(), "630") {
		t.Fatal("Figure8Report missing suburb row")
	}
	if !strings.Contains(Figure8ReportFor(2, 2, 2, 10), "Suburb") {
		t.Fatal("custom Figure8 report broken")
	}
}

func TestRunZCRFailover(t *testing.T) {
	res, err := RunZCRFailover(51)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewZCR == res.FailedNode || res.NewZCR < 0 {
		t.Fatalf("no replacement elected: %+v", res)
	}
	if res.SurvivorCompletion < 0.999 {
		t.Fatalf("survivor completion %.4f after ZCR failure", res.SurvivorCompletion)
	}
	if res.ZoneCompletion < 0.999 {
		t.Fatalf("zone completion %.4f after its ZCR failed", res.ZoneCompletion)
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunLateJoin(t *testing.T) {
	res, err := RunLateJoin(52, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion < 1 {
		t.Fatalf("late joiner completion %.4f", res.Completion)
	}
	if res.LocalRepairFrac < 0.8 {
		t.Fatalf("late-join repairs only %.0f%% local", 100*res.LocalRepairFrac)
	}
	if res.CatchUpSeconds <= 0 || res.CatchUpSeconds > 60 {
		t.Fatalf("catch-up took %.1fs", res.CatchUpSeconds)
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunReceiverReports(t *testing.T) {
	res, err := RunReceiverReports(53)
	if err != nil {
		t.Fatal(err)
	}
	// Figure-10 worst compound loss is ≈28.3%; the aggregated view must
	// land near the true measured worst.
	if res.TrueWorstLoss < 0.2 || res.TrueWorstLoss > 0.4 {
		t.Fatalf("true worst loss %.3f outside the expected band", res.TrueWorstLoss)
	}
	diff := res.SourceWorstLoss - res.TrueWorstLoss
	if diff < -0.05 || diff > 0.05 {
		t.Fatalf("aggregated view %.3f vs true %.3f", res.SourceWorstLoss, res.TrueWorstLoss)
	}
	if res.SourceMembers < res.Receivers*9/10 {
		t.Fatalf("aggregation covers %d of %d receivers", res.SourceMembers, res.Receivers)
	}
	// The whole point: the source hears O(zones) reporters, not O(n).
	if res.DirectReporters >= res.Receivers/2 {
		t.Fatalf("source heard %d direct reporters for %d receivers", res.DirectReporters, res.Receivers)
	}
}

func TestRunTimerSweep(t *testing.T) {
	pts, err := RunTimerSweep(54, []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, pt := range pts {
		if pt.Completion < 0.98 {
			t.Fatalf("multiplier %v: completion %.3f", pt.Multiplier, pt.Completion)
		}
	}
	// Wider timer windows must suppress more duplicate shares at the
	// cost of slower recovery — the trade-off §7 describes.
	if pts[1].DupShares >= pts[0].DupShares {
		t.Fatalf("wider windows did not reduce duplicates: %d vs %d", pts[1].DupShares, pts[0].DupShares)
	}
	if pts[1].MeanRecovery <= pts[0].MeanRecovery {
		t.Fatalf("wider windows did not slow recovery: %.3f vs %.3f",
			pts[1].MeanRecovery, pts[0].MeanRecovery)
	}
}

func TestRunEnsemble(t *testing.T) {
	res, err := RunEnsemble(DataConfig{
		Protocol:   SHARQFEC,
		Topology:   ChainTopology(4, 0.08),
		NumPackets: 64,
		Until:      60,
	}, Seeds(9, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 4 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	if res.MeanCompletion < 1 {
		t.Fatalf("mean completion %v", res.MeanCompletion)
	}
	if res.MeanPktsPerReceiver <= 0 || res.StdPktsPerReceiver < 0 {
		t.Fatalf("stats: %v ± %v", res.MeanPktsPerReceiver, res.StdPktsPerReceiver)
	}
	if res.MeanSeries.Sum() <= 0 {
		t.Fatal("empty mean series")
	}
	// Mean of series sums equals mean of sums.
	if d := res.MeanSeries.Sum() - res.MeanPktsPerReceiver; d > 1e-6 || d < -1e-6 {
		t.Fatalf("series mean inconsistent: %v vs %v", res.MeanSeries.Sum(), res.MeanPktsPerReceiver)
	}
}

func TestRunEnsembleNoSeeds(t *testing.T) {
	if _, err := RunEnsemble(DataConfig{Protocol: SHARQFEC}, nil); err == nil {
		t.Fatal("empty ensemble accepted")
	}
}

func TestSeedsDeterministicAndDistinct(t *testing.T) {
	a, b := Seeds(5, 8), Seeds(5, 8)
	seen := map[uint64]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Seeds not deterministic")
		}
		if seen[a[i]] {
			t.Fatal("duplicate seed")
		}
		seen[a[i]] = true
	}
}

func TestEnsembleParallelMatchesSerial(t *testing.T) {
	// Parallel replicas must not perturb determinism: the ensemble's
	// per-seed results equal individually-run results.
	cfg := DataConfig{Protocol: ECSRM, Topology: ChainTopology(3, 0.1), NumPackets: 32, Until: 60}
	ens, err := RunEnsemble(cfg, Seeds(77, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range ens.Seeds {
		c := cfg
		c.Seed = seed
		solo, err := RunData(c)
		if err != nil {
			t.Fatal(err)
		}
		if solo.NACKsSent != ens.Runs[i].NACKsSent || solo.RepairsSent != ens.Runs[i].RepairsSent {
			t.Fatalf("seed %d diverged under parallel execution", seed)
		}
	}
}

func TestRunDataTrace(t *testing.T) {
	var buf strings.Builder
	_, err := RunData(DataConfig{
		Protocol:    SHARQFEC,
		Topology:    ChainTopology(3, 0),
		NumPackets:  16,
		Until:       30,
		TraceWriter: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "+ 6.0000 n0 z0 DATA 1000") {
		t.Fatalf("trace missing the first transmission:\n%.300s", out)
	}
	if !strings.Contains(out, "SESSION") || !strings.Contains(out, "r 6.0") {
		t.Fatal("trace missing deliveries or session lines")
	}
}

func TestRunDataUnderCongestion(t *testing.T) {
	// Beyond the paper's Bernoulli model: loss from drop-tail queue
	// overflow. A chain with zero configured link loss but tiny queues
	// still loses packets to congestion bursts (repair bursts share the
	// data path); the protocol must recover them all.
	res, err := RunData(DataConfig{
		Protocol:   SHARQFEC,
		Topology:   ChainTopology(4, 0.06),
		Seed:       91,
		NumPackets: 128,
		Until:      90,
		QueueLimit: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionRate < 1 {
		t.Fatalf("completion %.4f under drop-tail congestion", res.CompletionRate)
	}
	if !res.Verified {
		t.Fatal("payloads not verified under congestion")
	}
}
