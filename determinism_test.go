package sharqfec

// Determinism gate for the fast-path overhaul: the optimized GF(256)
// kernels, decode-matrix/codec caches, specialized event queue, and
// pooled netsim fan-out must not change a single simulated outcome.
// These digests were captured from the pre-optimization scalar/heap
// implementation; any behavioural drift in the hot paths fails here
// byte-for-byte.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"
)

// dataDigest canonically encodes everything RunData reports (series
// bins at full float64 precision, recovery totals, fault log) and
// hashes it.
func dataDigest(res *DataResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "proto=%s topo=%s rcvrs=%d\n", res.Protocol, res.Topology, res.Receivers)
	writeSeries(&b, "avgDataRepair", res.AvgDataRepair)
	writeSeries(&b, "avgNACKs", res.AvgNACKs)
	writeSeries(&b, "srcDataRepair", res.SourceDataRepair)
	writeSeries(&b, "srcNACKs", res.SourceNACKs)
	fmt.Fprintf(&b, "nacks=%d repairs=%d injected=%d compl=%v verified=%v session=%d faultdrops=%d\n",
		res.NACKsSent, res.RepairsSent, res.RepairsInjected, res.CompletionRate,
		res.Verified, res.SessionPackets, res.FaultDrops)
	for _, f := range res.FaultLog {
		fmt.Fprintf(&b, "fault %s\n", f)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// chaosDigest canonically encodes a ChaosResult.
func chaosDigest(res *ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "proto=%s topo=%s rcvrs=%d\n", res.Protocol, res.Topology, res.Receivers)
	fmt.Fprintf(&b, "compl=%v verified=%v localfrac=%v faultdrops=%d nacks=%d repairs=%d\n",
		res.CompletionRate, res.Verified, res.LocalRepairFrac,
		res.FaultDrops, res.NACKsSent, res.RepairsSent)
	for _, r := range res.Reelections {
		fmt.Fprintf(&b, "reelect crashed=%d zone=%d new=%d at=%v rec=%v\n",
			r.Crashed, r.Zone, r.NewZCR, r.CrashAt, r.RecoverySeconds)
	}
	for _, f := range res.FaultLog {
		fmt.Fprintf(&b, "fault %s\n", f)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

func writeSeries(b *strings.Builder, name string, s Series) {
	fmt.Fprintf(b, "%s start=%v width=%v bins=", name, s.Start, s.BinWidth)
	for _, v := range s.Bins {
		fmt.Fprintf(b, "%v,", v)
	}
	b.WriteByte('\n')
}

// TestFixedSeedRunDigests pins the full observable output of fixed-seed
// runs across every protocol family and the fault engine. The golden
// hashes come from the pre-overhaul implementation (scalar GF kernels,
// container/heap queue, unpooled fan-out).
func TestFixedSeedRunDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run digest suite")
	}
	t.Run("sharqfec-seed21", func(t *testing.T) {
		res, err := RunData(DataConfig{Protocol: SHARQFEC, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		checkDigest(t, dataDigest(res), goldenSHARQFEC21)
	})
	t.Run("srm-seed22", func(t *testing.T) {
		res, err := RunData(DataConfig{Protocol: SRM, Seed: 22, NumPackets: 512})
		if err != nil {
			t.Fatal(err)
		}
		checkDigest(t, dataDigest(res), goldenSRM22)
	})
	t.Run("ecsrm-gilbert-seed5", func(t *testing.T) {
		res, err := RunData(DataConfig{
			Protocol: ECSRM, Seed: 5, NumPackets: 256, Until: 30,
			Faults: BurstLossPlan(8),
		})
		if err != nil {
			t.Fatal(err)
		}
		checkDigest(t, dataDigest(res), goldenECSRMGilbert5)
	})
	t.Run("chaos-crash-seed31", func(t *testing.T) {
		res, err := RunChaos(ChaosConfig{Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		checkDigest(t, chaosDigest(res), goldenChaosCrash31)
	})
	t.Run("chaos-backbone-seed11", func(t *testing.T) {
		res, err := RunChaos(ChaosConfig{
			Seed: 11, NumPackets: 512, Faults: BackboneFlapPlan(), Until: 60,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkDigest(t, chaosDigest(res), goldenChaosBackbone11)
	})
}

func checkDigest(t *testing.T, got, want string) {
	t.Helper()
	if got != want {
		t.Errorf("fixed-seed run digest drifted:\n got  %s\n want %s", got, want)
	}
}

// Golden digests of the pre-optimization implementation.
const (
	goldenSHARQFEC21      = "b23dad0c7a20877fa034f206d132f44481571ae6f32ab2e61c9eccee347fe6cc"
	goldenSRM22           = "d316ecabed5b998cbacedd88b4917aeaef1bbbae956cec179cd6b8430384a1f6"
	goldenECSRMGilbert5   = "2b5da0d48cb4e05cc61ab45efc03120e3f9064be8a2801e52bfe50f8eb689ef4"
	goldenChaosCrash31    = "b032a4e5ed4e8d416e4b8167a8a9c2abfa5149595768c3bd1712b6665a02c985"
	goldenChaosBackbone11 = "5c38ba696a2c54e7962c1b0855253611e80617d4dc12ac5b8b84fd61f72b27a1"
)

// TestStaticRateControlDigestMatchesOff pins the rate-control seam: an
// explicit static controller must reproduce the built-in default
// byte-for-byte — same digest, both against the pre-seam golden hash —
// so `-ratecontrol=static` is a rename of `off`, never a behavior
// change.
func TestStaticRateControlDigestMatchesOff(t *testing.T) {
	run := func(rc *RateControlConfig) string {
		t.Helper()
		res, err := RunData(DataConfig{
			Protocol: SHARQFEC, Seed: 21, RateControl: rc,
		})
		if err != nil {
			t.Fatal(err)
		}
		return dataDigest(res)
	}
	off := run(nil)
	static := run(&RateControlConfig{Mode: RateControlStatic})
	if off != static {
		t.Errorf("static rate control diverged from off:\n off    %s\n static %s", off, static)
	}
	checkDigest(t, static, goldenSHARQFEC21)
}
