// Package sharqfec is the public face of this SHARQFEC reproduction
// (Kermode, SIGCOMM 1998): a discrete-event simulation of Scoped Hybrid
// ARQ/FEC reliable multicast, its ablated variants, and the SRM baseline,
// together with runners that regenerate every figure and table in the
// paper's evaluation.
//
// The three experiment families mirror the paper:
//
//   - RunData reproduces the §6.2 data/repair-traffic figures
//     (Figures 14–21) for any protocol variant.
//   - RunRTT reproduces the §6.1 indirect RTT-estimation accuracy
//     figures (Figures 11–13).
//   - RunZCRElection and RunSessionScaling exercise the §5 session
//     machinery (ZCR elections; scoped-vs-flat session traffic).
//   - Figure1Report and Figure8Report evaluate the paper's two analytic
//     artifacts.
//
// All simulations are deterministic for a given seed.
package sharqfec

import (
	"fmt"

	"sharqfec/internal/core"
	"sharqfec/internal/eventq"
	"sharqfec/internal/topology"
)

// Topology is an opaque description of a simulated network, including
// its administrative-scoping zone layout.
type Topology struct {
	spec *topology.Spec
}

// Name returns the topology's descriptive name.
func (t *Topology) Name() string { return t.spec.Name }

// NumNodes returns the total node count.
func (t *Topology) NumNodes() int { return t.spec.Graph.NumNodes() }

// NumReceivers returns the session receiver count (excludes the source).
func (t *Topology) NumReceivers() int { return len(t.spec.Receivers) }

// NumZones returns the number of administrative scope zones.
func (t *Topology) NumZones() int { return len(t.spec.Zones) }

// Figure10Topology returns the paper's §6 evaluation network: a source
// feeding a 7-node 45 Mbit/s backbone mesh, each mesh node rooting a
// 3×4 tree of 10 Mbit/s 20 ms links, 112 receivers in a three-level zone
// hierarchy, with per-link losses calibrated to the paper's 13.4 %–28.3 %
// compound spread.
func Figure10Topology() *Topology {
	return &Topology{spec: topology.Figure10(topology.Figure10Params{})}
}

// ChainTopology returns an n-node chain (source at one end, 10 Mbit/s,
// 10 ms links) with the given per-link loss and a two-level zone layout
// (all receivers in one child zone).
func ChainTopology(n int, loss float64) *Topology {
	spec := topology.Chain(n, 10e6, 0.010, loss)
	if n > 2 {
		var rest []topology.NodeID
		for i := 1; i < n; i++ {
			rest = append(rest, topology.NodeID(i))
		}
		spec.Zones = []topology.ZoneSpec{
			{ID: 0, Parent: -1, Leaves: []topology.NodeID{0}},
			{ID: 1, Parent: 0, Leaves: rest},
		}
	}
	return &Topology{spec: spec}
}

// StarTopology returns a hub-and-spoke network with the source at the
// hub and spoke latencies 10·i ms.
func StarTopology(n int, loss float64) *Topology {
	return &Topology{spec: topology.Star(n, 10e6, 0.010, loss)}
}

// TreeTopology returns a balanced tree (fanout per level) with one child
// zone per depth-1 subtree.
func TreeTopology(fanout []int, loss float64) *Topology {
	return &Topology{spec: topology.BalancedTree(fanout, 10e6, 0.020, loss)}
}

// NationalTopology returns a (typically scaled-down) instance of the
// paper's Figure-7 national distribution hierarchy for measured
// session-scaling runs.
func NationalTopology(regions, cities, suburbs, subscribers int) *Topology {
	p := topology.NationalParams{
		Regions: regions, Cities: cities,
		Suburbs: suburbs, SubscribersPerSuburb: subscribers,
	}
	return &Topology{spec: topology.National(p, 10e6, 0.010, 0)}
}

// Protocol selects which reliable-multicast protocol a data experiment
// runs, following the paper's annotation scheme (ns = no scoping,
// ni = no injection, so = sender-only repairs).
type Protocol string

// The evaluated protocols of §6.2.
const (
	// SRM is the pure-ARQ baseline with adaptive timers.
	SRM Protocol = "srm"
	// SHARQFEC is the full protocol: scoped, with preemptive injection
	// and receiver-based repair.
	SHARQFEC Protocol = "sharqfec"
	// SHARQFECNoScope is SHARQFEC(ns).
	SHARQFECNoScope Protocol = "sharqfec-ns"
	// SHARQFECNoInject is SHARQFEC(ni).
	SHARQFECNoInject Protocol = "sharqfec-ni"
	// SHARQFECNoScopeNoInject is SHARQFEC(ns,ni).
	SHARQFECNoScopeNoInject Protocol = "sharqfec-ns-ni"
	// ECSRM is SHARQFEC(ns,ni,so) — the ECSRM-like hybrid baseline.
	ECSRM Protocol = "ecsrm"
	// SHARQFECAdaptive is the full protocol with the §7 future-work
	// adaptive suppression timers enabled.
	SHARQFECAdaptive Protocol = "sharqfec-adaptive"
)

// Protocols lists every runnable protocol.
func Protocols() []Protocol {
	return []Protocol{SRM, SHARQFEC, SHARQFECNoScope, SHARQFECNoInject, SHARQFECNoScopeNoInject, ECSRM, SHARQFECAdaptive}
}

// ParseProtocol resolves a protocol name (accepting the paper's
// "sharqfec(ns,ni,so)" style as well as the flag style above).
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "srm":
		return SRM, nil
	case "sharqfec", "sharqfec()":
		return SHARQFEC, nil
	case "sharqfec-ns", "sharqfec(ns)":
		return SHARQFECNoScope, nil
	case "sharqfec-ni", "sharqfec(ni)":
		return SHARQFECNoInject, nil
	case "sharqfec-ns-ni", "sharqfec(ns,ni)":
		return SHARQFECNoScopeNoInject, nil
	case "ecsrm", "sharqfec-ns-ni-so", "sharqfec(ns,ni,so)":
		return ECSRM, nil
	case "sharqfec-adaptive", "sharqfec(adaptive)":
		return SHARQFECAdaptive, nil
	}
	return "", fmt.Errorf("sharqfec: unknown protocol %q", s)
}

// options maps a protocol to core feature flags; ok is false for SRM.
func (p Protocol) options() (core.Options, bool) {
	switch p {
	case SHARQFEC:
		return core.Options{Scoping: true, Injection: true}, true
	case SHARQFECNoScope:
		return core.Options{Injection: true}, true
	case SHARQFECNoInject:
		return core.Options{Scoping: true}, true
	case SHARQFECNoScopeNoInject:
		return core.Options{}, true
	case ECSRM:
		return core.Options{SenderOnly: true}, true
	case SHARQFECAdaptive:
		return core.Options{Scoping: true, Injection: true, AdaptiveTimers: true}, true
	default:
		return core.Options{}, false
	}
}

// String implements fmt.Stringer with the paper's annotations.
func (p Protocol) String() string {
	switch p {
	case SHARQFEC:
		return "SHARQFEC"
	case SHARQFECNoScope:
		return "SHARQFEC(ns)"
	case SHARQFECNoInject:
		return "SHARQFEC(ni)"
	case SHARQFECNoScopeNoInject:
		return "SHARQFEC(ns,ni)"
	case ECSRM:
		return "SHARQFEC(ns,ni,so)/ECSRM"
	case SHARQFECAdaptive:
		return "SHARQFEC(adaptive)"
	case SRM:
		return "SRM"
	}
	return string(p)
}

// Series is a fixed-bin time series (bin width BinWidth seconds,
// starting at Start).
type Series struct {
	Start    float64
	BinWidth float64
	Bins     []float64
}

// Sum returns the total over all bins.
func (s Series) Sum() float64 {
	t := 0.0
	for _, v := range s.Bins {
		t += v
	}
	return t
}

// Max returns the largest bin value and the start time of its bin.
func (s Series) Max() (v, at float64) {
	for i, b := range s.Bins {
		if b > v {
			v = b
			at = s.Start + float64(i)*s.BinWidth
		}
	}
	return
}

// Window sums the bins covering [from, to).
func (s Series) Window(from, to float64) float64 {
	t := 0.0
	for i, v := range s.Bins {
		at := s.Start + float64(i)*s.BinWidth
		if at >= from && at < to {
			t += v
		}
	}
	return t
}

// globalized returns a copy of a spec with its zones flattened to a
// single global zone (for unscoped protocols).
func globalized(spec *topology.Spec) *topology.Spec {
	flat := *spec
	flat.Zones = []topology.ZoneSpec{{ID: 0, Parent: -1, Leaves: spec.Members()}}
	return &flat
}

// secondsToTime converts to the simulator's time type.
func secondsToTime(s float64) eventq.Time { return eventq.Time(s) }
