// Command sharqfec-trace replays a JSONL protocol-event trace (as
// written by sharqfec-sim -trace-events) offline and prints the same
// causal recovery-span report the live run produced — no simulator, no
// topology file: the trace preamble carries the zone hierarchy.
//
// Usage:
//
//	sharqfec-trace [flags] <trace.jsonl | ->
//
//	-spans     also list every recovery span, one line each
//	-perfetto  write the spans as Chrome trace-event JSON loadable in
//	           Perfetto / chrome://tracing
//	-slo       SLO spec file: re-derive the health verdicts from the
//	           trace and print the per-zone table. When the trace was
//	           recorded under an SLO, the replayed alert sequence must
//	           match the recorded health_alert/health_clear events
//	           exactly — any drift is a fatal error (the offline
//	           replay gate). Exit status is also non-zero when the
//	           replayed verdict is FAIL.
//
// A trace file of "-" reads from stdin. The exit status is non-zero
// when the trace is malformed or span accounting is broken (a loss
// without a terminal decode / loss_unrecovered event).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"sharqfec/internal/analysis"
	"sharqfec/internal/telemetry/health"
	"sharqfec/internal/telemetry/spans"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sharqfec-trace: ")

	listSpans := flag.Bool("spans", false, "list every recovery span, one line each")
	perfettoPath := flag.String("perfetto", "", "write recovery spans as Chrome trace-event JSON")
	sloPath := flag.String("slo", "", "SLO spec file: re-derive health verdicts from the trace")
	flag.Parse()

	if flag.NArg() != 1 {
		log.Fatal("usage: sharqfec-trace [-spans] [-perfetto out.json] [-slo spec] <trace.jsonl | ->")
	}
	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	var spec *health.Spec
	var raw []byte
	if *sloPath != "" {
		f, err := os.Open(*sloPath)
		if err != nil {
			log.Fatal(err)
		}
		spec, err = health.ParseSpec(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		// The health replay needs its own pass over the trace; buffer
		// stdin / the file once so both consumers read identical bytes.
		raw, err = io.ReadAll(in)
		if err != nil {
			log.Fatal(err)
		}
		in = bytes.NewReader(raw)
	}

	asm, err := spans.Replay(in)
	if err != nil {
		log.Fatal(err)
	}
	rep := analysis.BuildRecoveryReport(asm)
	fmt.Print(rep.String())

	if *listSpans {
		fmt.Println()
		for _, s := range asm.Spans() {
			fmt.Println(s.Format())
		}
	}
	if *perfettoPath != "" {
		f, err := os.Create(*perfettoPath)
		if err != nil {
			log.Fatal(err)
		}
		err = spans.WritePerfetto(f, asm.Spans(), asm.View())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	if spec != nil {
		healthReplay(bytes.NewReader(raw), spec)
	}
	if rep.OpenSpans > 0 {
		log.Fatalf("span accounting broken: %d spans never saw a terminal event", rep.OpenSpans)
	}
}

// healthReplay re-derives the SLO verdicts from the trace, prints the
// table, and enforces the replay-equality gate against any recorded
// health events. Fatal on drift or a FAIL verdict.
func healthReplay(r io.Reader, spec *health.Spec) {
	eng, recorded, err := health.Replay(r, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	hr := eng.Report()
	fmt.Print(hr.String())
	if len(recorded) > 0 {
		derived := eng.Emitted()
		if !health.SameAlerts(derived, recorded) {
			log.Fatalf("replay drift: trace recorded %d health events, replay derived %d — offline and live verdicts disagree",
				len(recorded), len(derived))
		}
		fmt.Printf("replay gate: %d recorded health events reproduced exactly\n", len(recorded))
	}
	if !hr.Passed() {
		log.Fatalf("SLO FAIL: %d violations", hr.Violations())
	}
}
