// Command sharqfec-trace replays a JSONL protocol-event trace (as
// written by sharqfec-sim -trace-events) offline and prints the same
// causal recovery-span report the live run produced — no simulator, no
// topology file: the trace preamble carries the zone hierarchy.
//
// Usage:
//
//	sharqfec-trace [flags] <trace.jsonl | ->
//
//	-spans     also list every recovery span, one line each
//	-perfetto  write the spans as Chrome trace-event JSON loadable in
//	           Perfetto / chrome://tracing
//
// A trace file of "-" reads from stdin. The exit status is non-zero
// when the trace is malformed or span accounting is broken (a loss
// without a terminal decode / loss_unrecovered event).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"sharqfec/internal/analysis"
	"sharqfec/internal/telemetry/spans"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sharqfec-trace: ")

	listSpans := flag.Bool("spans", false, "list every recovery span, one line each")
	perfettoPath := flag.String("perfetto", "", "write recovery spans as Chrome trace-event JSON")
	flag.Parse()

	if flag.NArg() != 1 {
		log.Fatal("usage: sharqfec-trace [-spans] [-perfetto out.json] <trace.jsonl | ->")
	}
	var in io.Reader = os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}

	asm, err := spans.Replay(in)
	if err != nil {
		log.Fatal(err)
	}
	rep := analysis.BuildRecoveryReport(asm)
	fmt.Print(rep.String())

	if *listSpans {
		fmt.Println()
		for _, s := range asm.Spans() {
			fmt.Println(s.Format())
		}
	}
	if *perfettoPath != "" {
		f, err := os.Create(*perfettoPath)
		if err != nil {
			log.Fatal(err)
		}
		err = spans.WritePerfetto(f, asm.Spans(), asm.View())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	if rep.OpenSpans > 0 {
		log.Fatalf("span accounting broken: %d spans never saw a terminal event", rep.OpenSpans)
	}
}
