// Command sharqfec-node runs one SHARQFEC session member over real UDP —
// the protocol engines unchanged from the simulator, bound to sockets
// via the udpmesh transport.
//
// Every member of a session must be started with the same -topology and
// -base-port; member n listens on 127.0.0.1:(base-port+n). For example,
// a four-node chain on one machine:
//
//	sharqfec-node -topology chain:4 -node 0 -source -packets 64 &
//	sharqfec-node -topology chain:4 -node 1 &
//	sharqfec-node -topology chain:4 -node 2 &
//	sharqfec-node -topology chain:4 -node 3 &
//
// Or run the whole session in one process:
//
//	sharqfec-node -demo -topology chain:4 -loss 0.15 -packets 64
//
// Synthetic per-destination loss (-loss) stands in for lossy links so
// the repair machinery has something to do on a reliable loopback.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"sharqfec/internal/core"
	"sharqfec/internal/eventq"
	"sharqfec/internal/scoping"
	"sharqfec/internal/simrand"
	"sharqfec/internal/telemetry"
	"sharqfec/internal/telemetry/census"
	"sharqfec/internal/telemetry/health"
	"sharqfec/internal/topology"
	"sharqfec/internal/udpmesh"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sharqfec-node: ")

	topoFlag := flag.String("topology", "chain:4", "chain:N or tree:FxF — must match across members")
	nodeID := flag.Int("node", 0, "this member's node ID")
	source := flag.Bool("source", false, "act as the data source")
	basePort := flag.Int("base-port", 9000, "member n listens on 127.0.0.1:(base-port+n)")
	loss := flag.Float64("loss", 0.15, "synthetic per-destination loss on data/repairs")
	packets := flag.Int("packets", 64, "data packets to stream (multiple of 16)")
	rate := flag.Float64("rate", 800e3, "stream rate, bits/s")
	warmup := flag.Duration("warmup", 2*time.Second, "session warm-up before the source streams")
	timeout := flag.Duration("timeout", 60*time.Second, "give up after this long")
	demo := flag.Bool("demo", false, "run every member in this process")
	seed := flag.Uint64("seed", 7, "loss / protocol RNG seed")
	metricsAddr := flag.String("metrics-addr", "", "serve live metrics on this address (/metrics Prometheus text, /debug/vars expvar, /healthz)")
	sloPath := flag.String("slo", "", "SLO spec file: evaluate streaming health objectives live (needs -metrics-addr)")
	flag.Parse()

	spec, err := parseTopology(*topoFlag)
	if err != nil {
		log.Fatal(err)
	}
	h, err := scoping.Build(spec.Zones)
	if err != nil {
		log.Fatal(err)
	}

	var slo *health.Spec
	if *sloPath != "" {
		f, err := os.Open(*sloPath)
		if err != nil {
			log.Fatal(err)
		}
		slo, err = health.ParseSpec(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if *metricsAddr == "" {
			log.Fatal("-slo needs -metrics-addr (the health engine rides the metrics bus)")
		}
	}

	cfg := core.DefaultConfig()
	cfg.Source = spec.Source
	cfg.NumPackets = *packets
	cfg.Rate = *rate
	var cens *census.Engine
	if *metricsAddr != "" {
		cfg.Telemetry, cens = serveMetrics(*metricsAddr, h, spec.Graph.NumNodes(), slo)
	}

	if *demo {
		runDemo(spec, h, cfg, cens, *loss, *seed, *warmup, *timeout)
		return
	}

	mesh := &udpmesh.Mesh{H: h, Addrs: addressPlan(spec, *basePort), Loss: *loss, Seed: *seed}
	id := topology.NodeID(*nodeID)
	node, err := udpmesh.NewNode(mesh, id, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	ag, err := core.New(id, node, cfg, simrand.New(*seed))
	if err != nil {
		log.Fatal(err)
	}
	registerProbe(cens, id, node, ag)
	groups := cfg.NumGroups()
	done := make(chan struct{}, groups)
	if !*source {
		ag.OnComplete = func(_ eventq.Time, gid uint32, _ [][]byte) {
			fmt.Printf("group %d complete\n", gid)
			done <- struct{}{}
		}
	}
	node.Do(func() { ag.Join() })
	log.Printf("node %d up on %s (%d members, %d zones)", id, mesh.Addrs[id], len(spec.Members()), h.NumZones())

	if *source {
		time.Sleep(*warmup)
		node.Do(func() { ag.StartSource() })
		streamLen := time.Duration(float64(*packets)*cfg.InterPacket()*float64(time.Second)) + *timeout
		log.Printf("streaming %d packets; serving repairs for up to %v", *packets, streamLen)
		time.Sleep(streamLen)
		return
	}
	completed := 0
	deadline := time.After(*timeout)
	for completed < groups {
		select {
		case <-done:
			completed++
		case <-deadline:
			log.Fatalf("timed out with %d/%d groups", completed, groups)
		}
	}
	log.Printf("all %d groups reconstructed", groups)
}

// serveMetrics starts the live observability endpoint: a telemetry bus
// whose registry is exposed as Prometheus text (with HELP/TYPE
// metadata) on /metrics, as expvar JSON on /debug/vars, and — when an
// SLO spec is given — judged live on /healthz (200 while every
// objective holds, 503 with one active violation per line otherwise).
// The protocol goroutines only touch atomic counters on the scrape
// path, and the health engine serializes behind its own mutex, so
// scrapes never block the session.
//
// The returned census engine rides the same bus and registry, so the
// census_* families (scope-addressed traffic by class, per-zone state,
// session RTT tables) appear on /metrics too. There is no link matrix
// or virtual scheduler on a live node; state probes are registered per
// agent and sampled by a wall-clock ticker.
func serveMetrics(addr string, h *scoping.Hierarchy, numNodes int, slo *health.Spec) (*telemetry.Bus, *census.Engine) {
	bus := telemetry.NewBus()
	m := telemetry.NewMetrics(nil, h, numNodes)
	bus.Attach(m.Sink())
	cens := census.New(m.Reg, h, numNodes)
	bus.Attach(cens.Sink())
	start := time.Now()
	go func() {
		for range time.Tick(time.Second) {
			cens.Snapshot(time.Since(start).Seconds())
		}
	}()
	var eng *health.Engine
	if slo != nil {
		eng = health.NewEngine(slo, bus)
		bus.Attach(eng.Sink())
	}
	// The same self-describing preamble the simulator emits: the health
	// engine (like the span assembler) learns the zone hierarchy from
	// zone_info / zone_member events, never from side channels.
	for z := 0; z < h.NumZones(); z++ {
		zone := scoping.ZoneID(z)
		parent := int64(-1)
		if p := h.Parent(zone); p != scoping.NoZone {
			parent = int64(p)
		}
		bus.Emit(telemetry.Event{
			Kind: telemetry.KindZoneInfo, Node: topology.NoNode, Zone: zone,
			Group: -1, A: parent, B: int64(h.Level(zone)),
		})
		for _, mem := range h.Leaves(zone) {
			bus.Emit(telemetry.Event{
				Kind: telemetry.KindZoneMember, Node: mem, Zone: zone, Group: -1,
			})
		}
	}
	expvar.Publish("sharqfec", expvar.Func(func() any { return m.Reg.Snapshot() }))
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = m.Reg.WritePrometheusMeta(w, telemetry.PromHelp)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if eng == nil {
			fmt.Fprintln(w, "ok (no SLO configured)")
			return
		}
		if lines := eng.ActiveLines(); len(lines) > 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			for _, l := range lines {
				fmt.Fprintln(w, l)
			}
			return
		}
		fmt.Fprintln(w, "ok")
	})
	go func() {
		log.Printf("metrics on http://%s/metrics, health on /healthz", addr)
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("metrics endpoint: %v", err)
		}
	}()
	return bus, cens
}

// registerProbe installs the agent's state-census probe, hopping onto
// the node's executor so the read never races the protocol goroutine.
// A node that closes (or wedges) mid-probe reports zero after a grace
// period rather than blocking the census ticker.
func registerProbe(c *census.Engine, id topology.NodeID, node *udpmesh.Node, ag *core.Agent) {
	if c == nil {
		return
	}
	c.SetProbe(id, func() census.State {
		res := make(chan core.StateCensus, 1)
		node.Do(func() { res <- ag.StateCensus() })
		select {
		case st := <-res:
			return census.State{
				Groups:         int64(st.ActiveGroups),
				Timers:         int64(st.PendingTimers),
				RepairQueue:    int64(st.RepairQueue),
				ResidentBytes:  int64(st.ResidentBytes),
				SessionEntries: int64(st.SessionEntries),
				MemBytes:       int64(st.MemBytes),
			}
		case <-time.After(time.Second):
			return census.State{}
		}
	})
}

// runDemo hosts every member in-process on ephemeral ports.
func runDemo(spec *topology.Spec, h *scoping.Hierarchy, cfg core.Config, cens *census.Engine, loss float64, seed uint64, warmup, timeout time.Duration) {
	_, nodes, err := udpmesh.NewLocalMesh(h, spec.Members(), loss, seed)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	src := simrand.New(seed)
	type completion struct{ node topology.NodeID }
	done := make(chan completion, 1024)
	agents := map[topology.NodeID]*core.Agent{}
	for _, m := range spec.Members() {
		ag, err := core.New(m, nodes[m], cfg, src)
		if err != nil {
			log.Fatal(err)
		}
		node := m
		if m != spec.Source {
			ag.OnComplete = func(eventq.Time, uint32, [][]byte) { done <- completion{node} }
		}
		agents[m] = ag
		registerProbe(cens, m, nodes[m], ag)
	}
	for _, m := range spec.Members() {
		ag := agents[m]
		nodes[m].Do(func() { ag.Join() })
	}
	log.Printf("demo: %d members over UDP loopback, %.0f%% synthetic loss", len(spec.Members()), 100*loss)
	time.Sleep(warmup)
	srcAgent := agents[spec.Source]
	nodes[spec.Source].Do(func() { srcAgent.StartSource() })

	want := (len(spec.Members()) - 1) * cfg.NumGroups()
	got := 0
	start := time.Now()
	deadline := time.After(timeout)
	for got < want {
		select {
		case <-done:
			got++
		case <-deadline:
			log.Fatalf("timed out: %d/%d (receiver,group) pairs", got, want)
		}
	}
	log.Printf("every receiver reconstructed every group in %.2fs of wall time", time.Since(start).Seconds())
}

func addressPlan(spec *topology.Spec, basePort int) map[topology.NodeID]*net.UDPAddr {
	addrs := map[topology.NodeID]*net.UDPAddr{}
	for _, m := range spec.Members() {
		addrs[m] = &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: basePort + int(m)}
	}
	return addrs
}

func parseTopology(s string) (*topology.Spec, error) {
	switch {
	case strings.HasPrefix(s, "chain:"):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "chain:"))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad chain size %q", s)
		}
		spec := topology.Chain(n, 10e6, 0.010, 0)
		if n > 2 {
			var rest []topology.NodeID
			for i := 1; i < n; i++ {
				rest = append(rest, topology.NodeID(i))
			}
			spec.Zones = []topology.ZoneSpec{
				{ID: 0, Parent: -1, Leaves: []topology.NodeID{0}},
				{ID: 1, Parent: 0, Leaves: rest},
			}
		}
		return spec, nil
	case strings.HasPrefix(s, "tree:"):
		var fanout []int
		for _, part := range strings.Split(strings.TrimPrefix(s, "tree:"), "x") {
			f, err := strconv.Atoi(part)
			if err != nil || f < 1 {
				return nil, fmt.Errorf("bad tree fanout %q", s)
			}
			fanout = append(fanout, f)
		}
		return topology.BalancedTree(fanout, 10e6, 0.020, 0), nil
	}
	return nil, fmt.Errorf("unknown topology %q (chain:N or tree:FxF)", s)
}
