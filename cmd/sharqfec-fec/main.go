// Command sharqfec-fec demonstrates the Reed–Solomon erasure substrate
// on real data: it splits stdin into a FEC group, simulates share loss,
// reconstructs the input from the survivors, and verifies the result.
//
// Usage:
//
//	sharqfec-fec [-k 16] [-h 4] [-lose 0,3,7] < input > output
//
// It exits non-zero if reconstruction fails or the output would not
// match the input.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"sharqfec/internal/fec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sharqfec-fec: ")
	k := flag.Int("k", 16, "data shares per group")
	h := flag.Int("h", 4, "repair shares to generate")
	lose := flag.String("lose", "", "comma-separated share indices to drop (default: the first h data shares)")
	flag.Parse()

	input, err := io.ReadAll(os.Stdin)
	if err != nil {
		log.Fatalf("reading stdin: %v", err)
	}
	if len(input) == 0 {
		log.Fatal("empty input")
	}

	codec, err := fec.NewCodec(*k)
	if err != nil {
		log.Fatal(err)
	}

	// Split into k equal shares (zero-padded).
	shareLen := (len(input) + *k - 1) / *k
	data := make([][]byte, *k)
	for i := range data {
		data[i] = make([]byte, shareLen)
		lo := i * shareLen
		if lo < len(input) {
			hi := lo + shareLen
			if hi > len(input) {
				hi = len(input)
			}
			copy(data[i], input[lo:hi])
		}
	}
	repairs, err := codec.Repairs(data, *h)
	if err != nil {
		log.Fatal(err)
	}

	drop := map[int]bool{}
	if *lose == "" {
		for i := 0; i < *h && i < *k; i++ {
			drop[i] = true
		}
	} else {
		for _, part := range strings.Split(*lose, ",") {
			idx, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				log.Fatalf("bad -lose index %q", part)
			}
			drop[idx] = true
		}
	}

	var surviving []fec.Share
	for i := 0; i < *k; i++ {
		if !drop[i] {
			surviving = append(surviving, fec.Share{Index: i, Data: data[i]})
		}
	}
	for _, r := range repairs {
		if !drop[r.Index] {
			surviving = append(surviving, r)
		}
	}
	fmt.Fprintf(os.Stderr, "group: k=%d h=%d shareLen=%d; dropped %d shares, %d survive\n",
		*k, *h, shareLen, len(drop), len(surviving))

	decoded, err := codec.Decode(surviving)
	if err != nil {
		log.Fatalf("decode: %v", err)
	}
	var out bytes.Buffer
	for _, d := range decoded {
		out.Write(d)
	}
	result := out.Bytes()[:len(input)]
	if !bytes.Equal(result, input) {
		log.Fatal("reconstruction mismatch")
	}
	if _, err := os.Stdout.Write(result); err != nil {
		log.Fatalf("writing output: %v", err)
	}
	fmt.Fprintln(os.Stderr, "reconstruction verified")
}
