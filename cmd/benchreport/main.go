// Command benchreport turns `go test -bench` output into a JSON summary
// and gates benchmark regressions against a committed baseline.
//
// Summarize (reads the bench output from stdin):
//
//	go test -run '^$' -bench FEC -benchmem -count 5 . | benchreport -out bench.json
//
// Repeated runs of the same benchmark (from -count) collapse to the
// median, which is what benchstat reports as the center and is robust
// to one noisy run on shared CI hardware.
//
// Compare (exits non-zero when a gated benchmark regresses):
//
//	benchreport -compare -threshold 10 -gate 'FECEncode|FECDecode|EventQueue' baseline.json current.json
//
// ns/op regressions beyond -threshold percent fail the gate; allocs/op
// must never regress at all (an alloc on a zero-alloc path is a bug, not
// noise). Benchmarks present in only one file are reported but not
// gated, so adding or retiring benchmarks never breaks the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is the summarized measurement for one benchmark.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Runs        int     `json:"runs"`
}

// Report is the file format (BENCH_5.json and the CI artifact).
type Report struct {
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
	// Speedups records, for every benchmark family with shards=K
	// sub-benchmarks, the wall-clock ratio of the shards=1 width to
	// each wider run (>1 means the parallel engine won). Derived from
	// the medians above; meaningful only on a runner with ≥K cores.
	Speedups map[string]float64 `json:"speedups,omitempty"`
}

func main() {
	out := flag.String("out", "", "write the JSON summary to this file (default stdout)")
	note := flag.String("note", "", "free-form note recorded in the summary")
	compare := flag.Bool("compare", false, "compare two summary files: benchreport -compare baseline.json current.json")
	threshold := flag.Float64("threshold", 10, "percent ns/op regression allowed before the gate fails")
	gate := flag.String("gate", "FECEncode|FECDecode|EventQueue", "regexp of benchmark names the regression gate enforces")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal("compare mode needs exactly two files: baseline.json current.json")
		}
		if err := compareReports(flag.Arg(0), flag.Arg(1), *threshold, *gate); err != nil {
			fatal(err.Error())
		}
		return
	}

	rep, err := summarize(os.Stdin, *note)
	if err != nil {
		fatal(err.Error())
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err.Error())
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err.Error())
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "benchreport:", msg)
	os.Exit(1)
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkFECEncode-8   36489   29361 ns/op   544.93 MB/s   4224 B/op   2 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

func summarize(r *os.File, note string) (*Report, error) {
	samples := map[string][]Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		res := Result{Runs: 1}
		res.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		for _, metric := range strings.Split(m[4], "\t") {
			fields := strings.Fields(metric)
			if len(fields) != 2 {
				continue
			}
			v, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				continue
			}
			switch fields[1] {
			case "B/op":
				res.BPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		samples[m[1]] = append(samples[m[1]], res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	rep := &Report{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, Note: note,
		Benchmarks: make(map[string]Result, len(samples)),
	}
	for name, runs := range samples {
		rep.Benchmarks[name] = Result{
			NsPerOp:     median(runs, func(r Result) float64 { return r.NsPerOp }),
			BPerOp:      median(runs, func(r Result) float64 { return r.BPerOp }),
			AllocsPerOp: median(runs, func(r Result) float64 { return r.AllocsPerOp }),
			Runs:        len(runs),
		}
	}
	rep.Speedups = speedups(rep.Benchmarks)
	return rep, nil
}

// shardSuffix splits "Family/shards=K" benchmark names.
var shardSuffix = regexp.MustCompile(`^(.+)/shards=(\d+)$`)

// speedups derives shards=1 ÷ shards=K wall-clock ratios for every
// benchmark family that ran shard-width sub-benchmarks.
func speedups(benchmarks map[string]Result) map[string]float64 {
	out := map[string]float64{}
	for name, res := range benchmarks {
		m := shardSuffix.FindStringSubmatch(name)
		if m == nil || m[2] == "1" || res.NsPerOp <= 0 {
			continue
		}
		base, ok := benchmarks[m[1]+"/shards=1"]
		if !ok || base.NsPerOp <= 0 {
			continue
		}
		out[name] = base.NsPerOp / res.NsPerOp
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func median(runs []Result, get func(Result) float64) float64 {
	vs := make([]float64, len(runs))
	for i, r := range runs {
		vs[i] = get(r)
	}
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

func loadReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func compareReports(basePath, curPath string, threshold float64, gatePat string) error {
	base, err := loadReport(basePath)
	if err != nil {
		return err
	}
	cur, err := loadReport(curPath)
	if err != nil {
		return err
	}
	gateRe, err := regexp.Compile(gatePat)
	if err != nil {
		return fmt.Errorf("bad -gate pattern: %w", err)
	}

	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	fmt.Printf("%-40s %14s %14s %8s\n", "benchmark", "base ns/op", "cur ns/op", "delta")
	for _, name := range names {
		c := cur.Benchmarks[name]
		b, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("%-40s %14s %14.1f %8s\n", name, "-", c.NsPerOp, "new")
			continue
		}
		delta := 100 * (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		status := ""
		if gateRe.MatchString(name) {
			if delta > threshold {
				status = "  FAIL"
				failures = append(failures, fmt.Sprintf("%s: ns/op regressed %.1f%% (%.1f -> %.1f, limit %.0f%%)",
					name, delta, b.NsPerOp, c.NsPerOp, threshold))
			}
			if c.AllocsPerOp > b.AllocsPerOp {
				status = "  FAIL"
				failures = append(failures, fmt.Sprintf("%s: allocs/op regressed (%.0f -> %.0f)",
					name, b.AllocsPerOp, c.AllocsPerOp))
			}
		}
		fmt.Printf("%-40s %14.1f %14.1f %+7.1f%%%s\n", name, b.NsPerOp, c.NsPerOp, delta, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Println("regression gate passed")
	return nil
}
