// Command sharqfec-figures regenerates the paper's evaluation artifacts:
// every figure and table from SIGCOMM '98 "Scoped Hybrid Automatic
// Repeat reQuest with Forward Error Correction (SHARQFEC)".
//
// Usage:
//
//	sharqfec-figures [-fig ID] [-seed N] [-series]
//
// IDs: 1, 8, 8m (the measured Figure-8 census sweep), 11, 12, 13, 14,
// 15, 16, 17, 18, 19, 20, 21, zcr, session, plus the extensions sweep,
// failover, latejoin, reports, cascade, or "all" (default). See
// DESIGN.md's experiment index for what each regenerates.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sharqfec"
)

var (
	seed   = flag.Uint64("seed", 1998, "RNG seed")
	series = flag.Bool("series", false, "print full per-0.1s series for traffic figures")
	shards = flag.Int("shards", 0, "fig 8m: run the census sweep on the zone-sharded parallel engine with N shards (0 = sequential)")
	large  = flag.Bool("large", false, "fig 8m: national 18x18x18 hierarchy swept up to ~1.05e5 receivers (E21; pair with -shards)")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sharqfec-figures: ")
	fig := flag.String("fig", "all", "figure/table to regenerate")
	flag.Parse()

	figures := map[string]func() error{
		"1":        fig1,
		"8":        fig8,
		"8m":       fig8Measured,
		"11":       func() error { return figRTT(11, 3) },
		"12":       func() error { return figRTT(12, 25) },
		"13":       func() error { return figRTT(13, 36) },
		"14":       fig14,
		"15":       fig15,
		"16":       fig16,
		"17":       fig17,
		"18":       fig18,
		"19":       fig19,
		"20":       fig20,
		"21":       fig21,
		"zcr":      figZCR,
		"session":  figSession,
		"sweep":    figSweep,
		"failover": figFailover,
		"latejoin": figLateJoin,
		"reports":  figReports,
		"cascade":  figCascade,
	}
	order := []string{"1", "8", "8m", "zcr", "11", "12", "13", "14", "15", "16", "17", "18", "19", "20", "21", "session", "sweep", "failover", "latejoin", "reports", "cascade"}

	if *fig == "all" {
		for _, id := range order {
			if err := figures[id](); err != nil {
				log.Fatalf("figure %s: %v", id, err)
			}
		}
		return
	}
	fn, ok := figures[*fig]
	if !ok {
		log.Printf("unknown figure %q; known: %v", *fig, order)
		os.Exit(2)
	}
	if err := fn(); err != nil {
		log.Fatalf("figure %s: %v", *fig, err)
	}
}

func header(title string) {
	fmt.Printf("\n==== %s ====\n", title)
}

func fig1() error {
	header("Figure 1 — non-scoped FEC example tree (analytic)")
	fmt.Print(sharqfec.Figure1Report())
	return nil
}

func fig8() error {
	header("Figure 8 — national hierarchy state reduction (analytic)")
	fmt.Print(sharqfec.Figure8Report())
	return nil
}

func fig8Measured() error {
	cfg := sharqfec.ScalingSweepConfig{Seed: *seed, Shards: *shards}
	if *large {
		// E21: the paper's 10⁵-receiver regime, measured. The flat
		// side of every point sits above the O(N²) cutoff, so flat
		// columns are analytic while the scoped side is simulated.
		// ZCRs are pre-designated (deployment model): bootstrap
		// elections are Θ(N²) hop events and measured at small N in
		// E20; at 10⁵ receivers they would bury the steady state.
		header("Figure 8 — measured scaling at 10⁵ receivers (census sweep, E21)")
		cfg.Regions, cfg.Cities, cfg.Suburbs = 18, 18, 18
		cfg.Subscribers = []int{2, 6, 18}
		cfg.DesignateZCRs = true
		// The idealized model undercounts per-node state by a stable
		// ~2× on the wide national hierarchy (ZCR link tables and
		// per-zone session overheads scale with the 18-way fan-out;
		// measured drift is 49% on all three points — see E21). The
		// gate should catch movement from that known offset, not the
		// offset itself.
		cfg.Tolerance = 0.55
	} else {
		header("Figure 8 — measured state & control-traffic scaling (census sweep, E20)")
	}
	rep, err := sharqfec.RunScalingSweep(cfg)
	if err != nil {
		return err
	}
	fmt.Print(rep.String())
	return nil
}

func figRTT(figNo, sender int) error {
	header(fmt.Sprintf("Figure %d — estimated/actual RTT ratio, NACKs from receiver %d", figNo, sender))
	res, err := sharqfec.RunRTT(sharqfec.RTTConfig{Sender: sender, Seed: *seed, Probes: 10})
	if err != nil {
		return err
	}
	fmt.Printf("probe  estimators  medianRatio\n")
	for p := range res.Ratios {
		fmt.Printf("%5d  %10d  %11.3f\n", p+1, res.Able[p], res.MedianRatio(p))
	}
	fmt.Printf("final: %.0f%% of estimates within 10%% of truth, %.0f%% within 25%% (paper: >50%% within a few %%)\n",
		100*res.FinalFractionWithin(0.10), 100*res.FinalFractionWithin(0.25))
	return nil
}

// compare runs two protocols on the paper scenario and prints the series
// the figure plots.
func compare(title string, a, b sharqfec.Protocol, pick func(*sharqfec.DataResult) sharqfec.Series, unit string) error {
	header(title)
	ra, err := sharqfec.RunData(sharqfec.DataConfig{Protocol: a, Seed: *seed})
	if err != nil {
		return err
	}
	rb, err := sharqfec.RunData(sharqfec.DataConfig{Protocol: b, Seed: *seed})
	if err != nil {
		return err
	}
	sa, sb := pick(ra), pick(rb)
	fmt.Printf("%-28s total=%8.1f peak=%6.1f  completion=%.2f%%\n", a, sa.Sum(), peak(sa), 100*ra.CompletionRate)
	fmt.Printf("%-28s total=%8.1f peak=%6.1f  completion=%.2f%%\n", b, sb.Sum(), peak(sb), 100*rb.CompletionRate)
	if *series {
		fmt.Printf("# t(s)\t%s[%s]\t%s[%s]\n", a, unit, b, unit)
		n := len(sa.Bins)
		if len(sb.Bins) > n {
			n = len(sb.Bins)
		}
		for i := 0; i < n; i++ {
			fmt.Printf("%.1f\t%.3f\t%.3f\n", float64(i)*sa.BinWidth, bin(sa, i), bin(sb, i))
		}
	}
	return nil
}

func peak(s sharqfec.Series) float64 { v, _ := s.Max(); return v }

func bin(s sharqfec.Series, i int) float64 {
	if i < len(s.Bins) {
		return s.Bins[i]
	}
	return 0
}

func avgDataRepair(r *sharqfec.DataResult) sharqfec.Series { return r.AvgDataRepair }
func avgNACKs(r *sharqfec.DataResult) sharqfec.Series      { return r.AvgNACKs }
func srcDataRepair(r *sharqfec.DataResult) sharqfec.Series { return r.SourceDataRepair }
func srcNACKs(r *sharqfec.DataResult) sharqfec.Series      { return r.SourceNACKs }

func fig14() error {
	return compare("Figure 14 — data+repair per receiver: SRM vs SHARQFEC(ns,ni,so)/ECSRM",
		sharqfec.SRM, sharqfec.ECSRM, avgDataRepair, "pkts/rcvr/0.1s")
}

func fig15() error {
	return compare("Figure 15 — NACKs per receiver: SRM vs SHARQFEC(ns,ni,so)/ECSRM",
		sharqfec.SRM, sharqfec.ECSRM, avgNACKs, "nacks/rcvr/0.1s")
}

func fig16() error {
	return compare("Figure 16 — data+repair: SHARQFEC(ns,ni) vs SHARQFEC(ns)",
		sharqfec.SHARQFECNoScopeNoInject, sharqfec.SHARQFECNoScope, avgDataRepair, "pkts/rcvr/0.1s")
}

func fig17() error {
	return compare("Figure 17 — data+repair: SHARQFEC(ns,ni,so) vs full SHARQFEC",
		sharqfec.ECSRM, sharqfec.SHARQFEC, avgDataRepair, "pkts/rcvr/0.1s")
}

func fig18() error {
	return compare("Figure 18 — data+repair: SHARQFEC(ni) vs SHARQFEC (injection is free)",
		sharqfec.SHARQFECNoInject, sharqfec.SHARQFEC, avgDataRepair, "pkts/rcvr/0.1s")
}

func fig19() error {
	return compare("Figure 19 — NACKs: SHARQFEC(ns,ni,so) vs full SHARQFEC",
		sharqfec.ECSRM, sharqfec.SHARQFEC, avgNACKs, "nacks/rcvr/0.1s")
}

func fig20() error {
	return compare("Figure 20 — data+repair seen by the source: ECSRM vs SHARQFEC",
		sharqfec.ECSRM, sharqfec.SHARQFEC, srcDataRepair, "pkts/0.1s")
}

func fig21() error {
	return compare("Figure 21 — NACKs seen by the source: ECSRM vs SHARQFEC",
		sharqfec.ECSRM, sharqfec.SHARQFEC, srcNACKs, "nacks/0.1s")
}

func figZCR() error {
	header("§6.1 — ZCR elections (chain / fork / tree / figure-10)")
	for _, c := range []struct {
		name string
		top  *sharqfec.Topology
	}{
		{"chain-6", sharqfec.ChainTopology(6, 0)},
		{"star-5", sharqfec.StarTopology(5, 0)},
		{"tree-3x2", sharqfec.TreeTopology([]int{3, 2}, 0)},
		{"figure10", sharqfec.Figure10Topology()},
	} {
		res, err := sharqfec.RunZCRElection(c.top, *seed, 30)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s zones=%2d  correct=%v  takeovers=%d\n",
			c.name, len(res.PerZone), res.Correct, res.Takeovers)
	}
	return nil
}

func figSweep() error {
	header("§7 — suppression-timer constant sweep (extension)")
	pts, err := sharqfec.RunTimerSweep(*seed, []float64{0.5, 1, 2, 4})
	if err != nil {
		return err
	}
	fmt.Printf("%6s %8s %8s %10s %12s %11s\n", "mult", "NACKs", "repairs", "dupShares", "meanRecov(s)", "completion")
	for _, p := range pts {
		fmt.Printf("%6.1f %8d %8d %10d %12.3f %10.1f%%\n",
			p.Multiplier, p.NACKs, p.Repairs, p.DupShares, p.MeanRecovery, 100*p.Completion)
	}
	fmt.Println("wider windows suppress more duplicates; narrower windows recover faster")
	return nil
}

func figFailover() error {
	header("§3.2/§5.2 — ZCR failure robustness (extension)")
	res, err := sharqfec.RunZCRFailover(*seed)
	if err != nil {
		return err
	}
	fmt.Println(res)
	return nil
}

func figLateJoin() error {
	header("§7 — localized late-join recovery (extension)")
	res, err := sharqfec.RunLateJoin(*seed, 0)
	if err != nil {
		return err
	}
	fmt.Println(res)
	return nil
}

func figReports() error {
	header("§7 — hierarchical receiver-report aggregation (extension)")
	res, err := sharqfec.RunReceiverReports(*seed)
	if err != nil {
		return err
	}
	fmt.Printf("source's aggregated worst loss %.1f%% (true worst %.1f%%), covering %d/%d receivers\n",
		100*res.SourceWorstLoss, 100*res.TrueWorstLoss, res.SourceMembers, res.Receivers)
	fmt.Printf("direct reporters heard by the source: %d (vs %d receivers without aggregation)\n",
		res.DirectReporters, res.Receivers)
	return nil
}

func figCascade() error {
	header("Figure 2 — analytic redundancy cascade (extension)")
	fmt.Print(sharqfec.CascadeReport())
	return nil
}

func figSession() error {
	header("§5.1 — scoped vs flat session traffic (measured, scaled national hierarchy)")
	res, err := sharqfec.RunSessionScaling(sharqfec.NationalTopology(3, 3, 3, 5), *seed, 10)
	if err != nil {
		return err
	}
	fmt.Printf("members=%d  scoped=%d deliveries  flat=%d deliveries  reduction=%.1fx\n",
		res.Members, res.ScopedDeliveries, res.FlatDeliveries, res.Reduction)
	fmt.Printf("state: scoped max %d peers/node vs flat %d peers/node\n",
		res.ScopedMaxState, res.FlatStatePerNode)
	return nil
}
