// Command sharqfec-sim runs a single reliable-multicast simulation and
// prints its traffic series and recovery summary.
//
// Usage:
//
//	sharqfec-sim [flags]
//
//	-protocol  srm | sharqfec | sharqfec-ns | sharqfec-ni |
//	           sharqfec-ns-ni | ecsrm            (default sharqfec)
//	-topology  figure10 | chain:N | star:N | tree:FxF (default figure10)
//	-loss      per-link loss for chain/star/tree      (default 0.08)
//	-packets   original data packets                  (default 1024)
//	-seed      RNG seed                               (default 1)
//	-until     simulated end time, seconds            (default 30)
//	-series    also print the per-0.1 s traffic series
//	-faults    fault-plan file replayed against the run; one
//	           "<seconds> <keyword> <args...>" event per line
//	           (link-down/link-up <link>, crash/restart/leave <node>,
//	           partition-zone/heal-zone <zone>,
//	           gilbert-link <link> <mean> <burst>,
//	           gilbert-all <mean> <burst>, gilbert-equal-mean <burst>)
//	-packet-trace      write an ns-style packet trace ("+" transmissions,
//	                   "r" deliveries) to this file
//	-cpuprofile        write a pprof CPU profile of the run to this file
//	-memprofile        write a pprof heap profile (after the run) to
//	                   this file
//	-trace             write a runtime/trace execution trace to this file
//	-trace-events      write a JSONL protocol-event trace to this file
//	-metrics-out       write the per-zone metrics time series to this
//	                   file (CSV, or a JSON array when the file name
//	                   ends in .json)
//	-metrics-interval  virtual seconds between snapshots (default 1)
//	-spans             assemble causal recovery spans and print the
//	                   per-zone recovery-latency report
//	-perfetto          write the recovery spans as Chrome trace-event
//	                   JSON (Perfetto / chrome://tracing); implies -spans
//	-flight-recorder   keep a ring of the last N control-plane events
//	-slo               SLO spec file: evaluate streaming health
//	                   objectives during the run, print the per-zone
//	                   verdict table, and exit 1 on any violation
//	                   ("<metric> [pNN] <=|>= <value> [window=W]
//	                   [fast=F] [min=N]" per line, '#' comments,
//	                   optional "interval <seconds>")
//	-ratecontrol       preemptive-FEC sizing policy: off | static |
//	                   adaptive (default off; static is byte-identical
//	                   to off per seed, adaptive sizes redundancy from
//	                   an online Gilbert–Elliott burst-loss fit)
//	-rc-budget         adaptive repair budget as a fraction of the
//	                   group size (default 0.5)
//	-census            arm the cost-census engine: per-class link and
//	                   zone-boundary traffic matrices, protocol-state
//	                   accounting and scheduler gauges; prints the
//	                   census digest and adds the census columns to
//	                   -metrics-out exports
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strconv"
	"strings"

	"sharqfec"
	"sharqfec/internal/telemetry/census"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sharqfec-sim: ")

	// Registered before the profiler defers so they still flush on an
	// SLO-violation exit (defers run LIFO; this one runs last).
	sloViolated := false
	defer func() {
		if sloViolated {
			os.Exit(1)
		}
	}()

	protoFlag := flag.String("protocol", "sharqfec", "protocol variant")
	topoFlag := flag.String("topology", "figure10", "topology (figure10 | chain:N | star:N | tree:FxF)")
	lossFlag := flag.Float64("loss", 0.08, "per-link loss for chain/star/tree topologies")
	packets := flag.Int("packets", 1024, "original data packets (multiple of 16)")
	seed := flag.Uint64("seed", 1, "RNG seed")
	until := flag.Float64("until", 30, "simulated end time (s)")
	series := flag.Bool("series", false, "print per-bin traffic series")
	tracePath := flag.String("packet-trace", "", "write an ns-style packet trace to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	execTrace := flag.String("trace", "", "write a runtime/trace execution trace to this file")
	faultsPath := flag.String("faults", "", "fault-plan file to replay against the run")
	eventsPath := flag.String("trace-events", "", "write a JSONL protocol-event trace to this file")
	metricsPath := flag.String("metrics-out", "", "write per-zone metrics time series to this file (.json for JSON, else CSV)")
	metricsInterval := flag.Float64("metrics-interval", 1, "virtual seconds between metrics snapshots")
	spansFlag := flag.Bool("spans", false, "assemble causal recovery spans and print the recovery report")
	perfettoPath := flag.String("perfetto", "", "write recovery spans as Chrome trace-event JSON (implies -spans)")
	flightRec := flag.Int("flight-recorder", 0, "keep a ring of the last N control-plane events")
	sloPath := flag.String("slo", "", "SLO spec file; exit 1 when any objective is violated")
	rcFlag := flag.String("ratecontrol", "off", "rate-control policy (off | static | adaptive)")
	rcBudget := flag.Float64("rc-budget", 0, "adaptive repair budget as a fraction of group size (0 = default 0.5)")
	censusFlag := flag.Bool("census", false, "arm the cost-census engine and print its traffic/state digest")
	shardsFlag := flag.Int("shards", 0, "run on the zone-sharded parallel engine with N shards (0 = sequential; its own deterministic family, incompatible with telemetry/trace flags)")
	flag.Parse()

	proto, err := sharqfec.ParseProtocol(*protoFlag)
	if err != nil {
		log.Fatal(err)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *execTrace != "" {
		f, err := os.Create(*execTrace)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			log.Fatal(err)
		}
		defer trace.Stop()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained state
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}
	top, err := parseTopology(*topoFlag, *lossFlag)
	if err != nil {
		log.Fatal(err)
	}

	cfg := sharqfec.DataConfig{
		Protocol:   proto,
		Topology:   top,
		Seed:       *seed,
		NumPackets: *packets,
		Until:      *until,
		Shards:     *shardsFlag,
	}
	rcMode, err := sharqfec.ParseRateControlMode(*rcFlag)
	if err != nil {
		log.Fatal(err)
	}
	if rcMode != sharqfec.RateControlOff {
		cfg.RateControl = &sharqfec.RateControlConfig{Mode: rcMode, Budget: *rcBudget}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		cfg.TraceWriter = f
	}
	if *faultsPath != "" {
		f, err := os.Open(*faultsPath)
		if err != nil {
			log.Fatal(err)
		}
		plan, err := sharqfec.ParseFaultPlan(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		cfg.Faults = plan
	}
	wantSpans := *spansFlag || *perfettoPath != ""
	var slo *sharqfec.SLOSpec
	if *sloPath != "" {
		f, err := os.Open(*sloPath)
		if err != nil {
			log.Fatal(err)
		}
		slo, err = sharqfec.ParseSLOSpec(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	var eventsFile *os.File
	if *eventsPath != "" || *metricsPath != "" || wantSpans || *flightRec > 0 || slo != nil || *censusFlag {
		cfg.Telemetry = &sharqfec.TelemetryConfig{
			MetricsInterval: *metricsInterval,
			Spans:           wantSpans,
			FlightRecorder:  *flightRec,
			SLO:             slo,
			Census:          *censusFlag,
		}
		if *eventsPath != "" {
			f, err := os.Create(*eventsPath)
			if err != nil {
				log.Fatal(err)
			}
			eventsFile = f
			cfg.Telemetry.Events = f
		}
	}
	res, err := sharqfec.RunData(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if eventsFile != nil {
		if err := eventsFile.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *metricsPath != "" {
		if err := writeMetrics(*metricsPath, res.Telemetry); err != nil {
			log.Fatal(err)
		}
	}
	if *perfettoPath != "" {
		f, err := os.Create(*perfettoPath)
		if err != nil {
			log.Fatal(err)
		}
		err = res.Telemetry.WritePerfetto(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("protocol:         %s\n", res.Protocol)
	fmt.Printf("topology:         %s (%d receivers)\n", res.Topology, res.Receivers)
	fmt.Printf("completion:       %.2f%%\n", 100*res.CompletionRate)
	fmt.Printf("payloads verified: %v\n", res.Verified)
	fmt.Printf("NACKs sent:       %d\n", res.NACKsSent)
	fmt.Printf("repairs sent:     %d (preemptively injected: %d)\n", res.RepairsSent, res.RepairsInjected)
	if rcMode != sharqfec.RateControlOff {
		fmt.Printf("rate control:     %s", rcMode)
		if t := res.Telemetry; t != nil {
			fmt.Printf(" (%d decisions, max h %d)", t.ControllerDecisions, t.ControllerMaxH)
		}
		fmt.Println()
	}
	fmt.Printf("session packets:  %d\n", res.SessionPackets)
	fmt.Printf("avg pkts/receiver:     %.1f (data+repair)\n", res.AvgDataRepair.Sum())
	fmt.Printf("avg NACKs/receiver:    %.1f\n", res.AvgNACKs.Sum())
	fmt.Printf("source-visible pkts:   %.0f data+repair, %.0f NACKs\n",
		res.SourceDataRepair.Sum(), res.SourceNACKs.Sum())
	peak, at := res.AvgDataRepair.Max()
	fmt.Printf("peak bin:              %.1f pkts/receiver at t=%.1fs\n", peak, at)
	if len(res.FaultLog) > 0 {
		fmt.Printf("fault drops:           %d\n", res.FaultDrops)
		fmt.Println("faults applied:")
		for _, f := range res.FaultLog {
			fmt.Printf("  %s\n", f)
		}
	}
	if t := res.Telemetry; t != nil {
		fmt.Printf("telemetry:             %d events (%d traced), %d snapshots\n",
			t.EventsEmitted, t.EventsWritten, t.NumSamples())
		fmt.Printf("NACK suppression:      %.1f%%\n", 100*t.SuppressionRatio)
		fmt.Printf("zone-local repairs:    %.1f%%\n", 100*t.LocalRepairFrac)
		if wantSpans {
			fmt.Println()
			fmt.Print(t.RecoveryReport().String())
		}
	}
	if cs := res.Telemetry.CensusSummary(); cs != nil {
		fmt.Println("\ncost census (link crossings by class):")
		fmt.Printf("  %-8s %12s %14s %14s\n", "class", "pkts", "bytes", "boundary pkts")
		for c := census.Class(0); c < census.NumClasses; c++ {
			fmt.Printf("  %-8s %12d %14d %14d\n",
				c, cs.LinkPkts[c], cs.LinkBytes[c], cs.BoundaryPkts[c])
		}
		fmt.Printf("preemptive shares:     %d\n", cs.FECShares)
		fmt.Printf("peak RTT entries/node: %d\n", cs.PeakRTT)
		fmt.Printf("scheduler:             %d dispatched, depth %d, free %d, %.0f ev/s\n",
			cs.Queue.Dispatched, cs.Queue.Depth, cs.Queue.Free, cs.Queue.FireRate)
	}
	if hr := res.Telemetry.HealthReport(); hr != nil {
		fmt.Println()
		fmt.Print(hr.String())
		if d := res.Telemetry.TriggeredDumps(); len(d) > 0 {
			fmt.Printf("forensic dumps:        %d (first at t=%.3fs: %s)\n",
				len(d), d[0].T, d[0].Reason)
		}
		sloViolated = !hr.Passed()
	}

	if *series {
		fmt.Println("\n# t(s)\tdata+repair/rcvr\tNACKs/rcvr")
		for i, v := range res.AvgDataRepair.Bins {
			t := res.AvgDataRepair.Start + float64(i)*res.AvgDataRepair.BinWidth
			n := 0.0
			if i < len(res.AvgNACKs.Bins) {
				n = res.AvgNACKs.Bins[i]
			}
			fmt.Printf("%.1f\t%.3f\t%.3f\n", t, v, n)
		}
	}
}

// writeMetrics renders the time series to path: JSON when the name ends
// in .json, CSV otherwise.
func writeMetrics(path string, t *sharqfec.TelemetryReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = t.WriteMetricsJSON(f)
	} else {
		err = t.WriteMetricsCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// parseTopology resolves the -topology flag.
func parseTopology(s string, loss float64) (*sharqfec.Topology, error) {
	switch {
	case s == "figure10":
		return sharqfec.Figure10Topology(), nil
	case strings.HasPrefix(s, "chain:"):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "chain:"))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad chain size in %q", s)
		}
		return sharqfec.ChainTopology(n, loss), nil
	case strings.HasPrefix(s, "star:"):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "star:"))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad star size in %q", s)
		}
		return sharqfec.StarTopology(n, loss), nil
	case strings.HasPrefix(s, "tree:"):
		var fanout []int
		for _, part := range strings.Split(strings.TrimPrefix(s, "tree:"), "x") {
			f, err := strconv.Atoi(part)
			if err != nil || f < 1 {
				return nil, fmt.Errorf("bad tree fanout in %q", s)
			}
			fanout = append(fanout, f)
		}
		if len(fanout) == 0 {
			return nil, fmt.Errorf("empty tree fanout in %q", s)
		}
		return sharqfec.TreeTopology(fanout, loss), nil
	}
	return nil, fmt.Errorf("unknown topology %q", s)
}
