// Command sharqfec-top is a live terminal view of a running
// sharqfec-node metrics endpoint: it polls the node's expvar JSON
// (/debug/vars) and health endpoint (/healthz) and redraws a per-zone
// table of the protocol's vital signs — NACK pressure and suppression,
// repair traffic, loss/decode progress, SLO alert counts, and (when
// the node runs the census engine) the per-zone cost census: resident
// protocol state and boundary traffic. Active SLO violations print
// inline below the table.
//
// Usage:
//
//	sharqfec-top [-addr host:port] [-interval 1s] [-once]
//
// Point -addr at the address given to sharqfec-node -metrics-addr.
// -once prints a single snapshot and exits (no screen clearing), which
// is also the scriptable mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sharqfec-top: ")

	addr := flag.String("addr", "127.0.0.1:8080", "sharqfec-node metrics address (host:port)")
	interval := flag.Duration("interval", time.Second, "poll interval")
	once := flag.Bool("once", false, "print one snapshot and exit")
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	for {
		vars, err := fetchVars(client, *addr)
		if err != nil {
			log.Fatal(err)
		}
		frame := renderFrame(snapshot{
			Addr:   *addr,
			Time:   time.Now(),
			Vars:   vars,
			Health: fetchHealth(client, *addr),
		})
		if *once {
			fmt.Print(frame)
			return
		}
		// ANSI clear + home: repaint in place like top(1).
		fmt.Print("\x1b[2J\x1b[H" + frame)
		time.Sleep(*interval)
	}
}

// fetchVars pulls /debug/vars and returns the flat "sharqfec" metric
// map: "name{label=\"v\",...}" → value.
func fetchVars(client *http.Client, addr string) (map[string]float64, error) {
	resp, err := client.Get("http://" + addr + "/debug/vars")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var doc struct {
		Sharqfec map[string]float64 `json:"sharqfec"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("parsing /debug/vars: %w", err)
	}
	if doc.Sharqfec == nil {
		return nil, fmt.Errorf("no \"sharqfec\" expvar at %s (is -metrics-addr set on the node?)", addr)
	}
	return doc.Sharqfec, nil
}

// fetchHealth decodes /healthz; a missing endpoint is reported, not
// fatal (older nodes).
func fetchHealth(client *http.Client, addr string) healthStatus {
	resp, err := client.Get("http://" + addr + "/healthz")
	if err != nil {
		return healthStatus{Summary: "unreachable (" + err.Error() + ")"}
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	text := strings.TrimSpace(string(body))
	if resp.StatusCode == http.StatusOK {
		return healthStatus{OK: true, Summary: firstLine(text)}
	}
	return healthStatus{Alerts: strings.Split(text, "\n")}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
