// Command sharqfec-top is a live terminal view of a running
// sharqfec-node metrics endpoint: it polls the node's expvar JSON
// (/debug/vars) and health endpoint (/healthz) and redraws a per-zone
// table of the protocol's vital signs — NACK pressure and suppression,
// repair traffic, loss/decode progress, and SLO alert counts.
//
// Usage:
//
//	sharqfec-top [-addr host:port] [-interval 1s] [-once]
//
// Point -addr at the address given to sharqfec-node -metrics-addr.
// -once prints a single snapshot and exits (no screen clearing), which
// is also the scriptable mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sharqfec-top: ")

	addr := flag.String("addr", "127.0.0.1:8080", "sharqfec-node metrics address (host:port)")
	interval := flag.Duration("interval", time.Second, "poll interval")
	once := flag.Bool("once", false, "print one snapshot and exit")
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	for {
		frame, err := render(client, *addr)
		if err != nil {
			log.Fatal(err)
		}
		if *once {
			fmt.Print(frame)
			return
		}
		// ANSI clear + home: repaint in place like top(1).
		fmt.Print("\x1b[2J\x1b[H" + frame)
		time.Sleep(*interval)
	}
}

// render fetches one snapshot and formats the whole frame.
func render(client *http.Client, addr string) (string, error) {
	vars, err := fetchVars(client, addr)
	if err != nil {
		return "", err
	}
	healthLine := fetchHealth(client, addr)

	var b strings.Builder
	fmt.Fprintf(&b, "sharqfec-top — %s — %s\n", addr, time.Now().Format("15:04:05"))
	fmt.Fprintf(&b, "health: %s\n\n", healthLine)
	b.WriteString(table(vars))
	return b.String(), nil
}

// fetchVars pulls /debug/vars and returns the flat "sharqfec" metric
// map: "name{label=\"v\",...}" → value.
func fetchVars(client *http.Client, addr string) (map[string]float64, error) {
	resp, err := client.Get("http://" + addr + "/debug/vars")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var doc struct {
		Sharqfec map[string]float64 `json:"sharqfec"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("parsing /debug/vars: %w", err)
	}
	if doc.Sharqfec == nil {
		return nil, fmt.Errorf("no \"sharqfec\" expvar at %s (is -metrics-addr set on the node?)", addr)
	}
	return doc.Sharqfec, nil
}

// fetchHealth summarizes /healthz in one line; a missing endpoint is
// reported, not fatal (older nodes).
func fetchHealth(client *http.Client, addr string) string {
	resp, err := client.Get("http://" + addr + "/healthz")
	if err != nil {
		return "unreachable (" + err.Error() + ")"
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	text := strings.TrimSpace(string(body))
	if resp.StatusCode == http.StatusOK {
		return "OK — " + firstLine(text)
	}
	lines := strings.Split(text, "\n")
	return fmt.Sprintf("VIOLATING (%d) — %s", len(lines), strings.Join(lines, "; "))
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// columns are the per-zone vital signs, in display order, each backed
// by one registry counter family.
var columns = []struct{ header, metric string }{
	{"nack", "nacks_sent"},
	{"supp", "nacks_suppressed"},
	{"repair", "repairs_sent"},
	{"inject", "repairs_injected"},
	{"loss", "losses_detected"},
	{"decoded", "groups_decoded"},
	{"unrec", "losses_unrecovered"},
	{"alerts", "health_alerts"},
}

// table renders the per-zone metric rows. The session aggregate (keys
// with no zone label) prints as zone "all"; zone rows sort numerically.
func table(vars map[string]float64) string {
	rows := map[string]map[string]float64{} // zone → metric → value
	for key, v := range vars {
		name, labels := splitKey(key)
		if strings.Contains(key, ".") || labels["node"] != "" || labels["kind"] != "" {
			continue // histogram parts and finer-grained families stay off the board
		}
		zone, ok := labels["zone"]
		if !ok {
			zone = "all"
		}
		m := rows[zone]
		if m == nil {
			m = map[string]float64{}
			rows[zone] = m
		}
		m[name] += v
	}

	zones := make([]string, 0, len(rows))
	for z := range rows {
		if z != "all" {
			zones = append(zones, z)
		}
	}
	sort.Slice(zones, func(i, j int) bool {
		a, _ := strconv.Atoi(zones[i])
		b, _ := strconv.Atoi(zones[j])
		return a < b
	})
	if _, ok := rows["all"]; ok {
		zones = append(zones, "all")
	}

	w := new(strings.Builder)
	tw := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	tw("%6s", "zone")
	for _, c := range columns {
		tw(" %8s", c.header)
	}
	tw(" %7s\n", "supp%")
	for _, z := range zones {
		m := rows[z]
		tw("%6s", z)
		for _, c := range columns {
			tw(" %8.0f", m[c.metric])
		}
		sent, supp := m["nacks_sent"], m["nacks_suppressed"]
		if sent+supp > 0 {
			tw(" %6.1f%%", 100*supp/(sent+supp))
		} else {
			tw(" %7s", "-")
		}
		tw("\n")
	}
	if len(zones) == 0 {
		tw("(no metrics yet)\n")
	}
	return w.String()
}

// splitKey parses `name{k="v",...}` into the bare name and its labels.
func splitKey(key string) (string, map[string]string) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key, nil
	}
	name := key[:i]
	labels := map[string]string{}
	body := strings.TrimSuffix(key[i+1:], "}")
	for _, part := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			continue
		}
		labels[k] = strings.Trim(v, `"`)
	}
	return name, labels
}
