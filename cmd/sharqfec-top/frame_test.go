package main

import (
	"strings"
	"testing"
	"time"
)

func testVars() map[string]float64 {
	return map[string]float64{
		`nacks_sent{zone="0"}`:       4,
		`nacks_sent{zone="10"}`:      7,
		`nacks_sent{zone="2"}`:       1,
		`nacks_suppressed{zone="0"}`: 12,
		`repairs_sent{zone="0"}`:     3,
		`nacks_sent`:                 12, // aggregate, no zone label
		// Finer-grained families that must stay off the board.
		`nacks_sent{node="3"}`:                        99,
		`decode_latency_s.bucket{zone="0",le="+Inf"}`: 50,
	}
}

func frameOf(t *testing.T, vars map[string]float64, h healthStatus) string {
	t.Helper()
	return renderFrame(snapshot{
		Addr:   "127.0.0.1:8080",
		Time:   time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Vars:   vars,
		Health: h,
	})
}

func TestRenderFrameZoneOrderAndAggregate(t *testing.T) {
	frame := frameOf(t, testVars(), healthStatus{OK: true, Summary: "ok"})
	// Zones sort numerically (0, 2, 10), aggregate row last.
	i0 := strings.Index(frame, "\n     0")
	i2 := strings.Index(frame, "\n     2")
	i10 := strings.Index(frame, "\n    10")
	iAll := strings.Index(frame, "\n   all")
	if !(i0 >= 0 && i0 < i2 && i2 < i10 && i10 < iAll) {
		t.Fatalf("zone rows out of order (0@%d 2@%d 10@%d all@%d):\n%s", i0, i2, i10, iAll, frame)
	}
	// The node-labelled and histogram keys must not leak into any row.
	if strings.Contains(frame, "99") || strings.Contains(frame, "50") {
		t.Fatalf("finer-grained families leaked into the table:\n%s", frame)
	}
	// Suppression percentage for zone 0: 12/(4+12) = 75%.
	if !strings.Contains(frame, "75.0%") {
		t.Fatalf("missing suppression ratio:\n%s", frame)
	}
}

func TestRenderFrameHealthVerdicts(t *testing.T) {
	ok := frameOf(t, testVars(), healthStatus{OK: true, Summary: "ok"})
	if !strings.Contains(ok, "health: OK — ok") {
		t.Fatalf("missing OK health line:\n%s", ok)
	}
	if strings.Contains(ok, "active alerts") {
		t.Fatalf("healthy frame lists alerts:\n%s", ok)
	}

	bad := frameOf(t, testVars(), healthStatus{Alerts: []string{
		"zone 2: nacks_per_loss >= 3 (got 4.1)",
		"zone 0: suppression_ratio <= 0.5 (got 0.41)",
	}})
	if !strings.Contains(bad, "health: VIOLATING (2)") {
		t.Fatalf("missing violation verdict:\n%s", bad)
	}
	// Every active alert renders inline, in order.
	a1 := strings.Index(bad, "! zone 2: nacks_per_loss")
	a2 := strings.Index(bad, "! zone 0: suppression_ratio")
	if a1 < 0 || a2 < 0 || a2 < a1 {
		t.Fatalf("alert lines missing or out of order:\n%s", bad)
	}

	unreachable := frameOf(t, testVars(), healthStatus{Summary: "unreachable (refused)"})
	if !strings.Contains(unreachable, "health: unreachable (refused)") {
		t.Fatalf("missing unreachable line:\n%s", unreachable)
	}
}

func TestRenderFrameCensusColumns(t *testing.T) {
	vars := testVars()
	// Without census families the census columns stay hidden.
	plain := frameOf(t, vars, healthStatus{OK: true, Summary: "ok"})
	if strings.Contains(plain, "res_kb") {
		t.Fatalf("census columns shown without census metrics:\n%s", plain)
	}

	vars[`census_groups{zone="0"}`] = 5
	vars[`census_resident_bytes{zone="0"}`] = 2048
	vars[`census_rtt_entries{zone="0"}`] = 17
	vars[`census_boundary_pkts_data{zone="0"}`] = 30
	vars[`census_boundary_pkts_ctrl{zone="0"}`] = 12
	withCensus := frameOf(t, vars, healthStatus{OK: true, Summary: "ok"})
	for _, h := range []string{"groups", "timers", "repq", "res_kb", "rtt", "bnd_pkt"} {
		if !strings.Contains(withCensus, h) {
			t.Fatalf("census header %q missing:\n%s", h, withCensus)
		}
	}
	// resident bytes render in KiB; boundary classes sum.
	if !strings.Contains(withCensus, "2.0") {
		t.Fatalf("resident KiB not rendered:\n%s", withCensus)
	}
	if !strings.Contains(withCensus, "42") {
		t.Fatalf("boundary classes not summed:\n%s", withCensus)
	}
}

func TestRenderFrameEmpty(t *testing.T) {
	frame := frameOf(t, map[string]float64{}, healthStatus{Summary: "unreachable"})
	if !strings.Contains(frame, "(no metrics yet)") {
		t.Fatalf("missing empty-table notice:\n%s", frame)
	}
}

func TestSplitKey(t *testing.T) {
	name, labels := splitKey(`nacks_sent{zone="3",node="1"}`)
	if name != "nacks_sent" || labels["zone"] != "3" || labels["node"] != "1" {
		t.Fatalf("splitKey = %q %v", name, labels)
	}
	name, labels = splitKey("plain")
	if name != "plain" || labels != nil {
		t.Fatalf("splitKey bare = %q %v", name, labels)
	}
}
