package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// snapshot is everything one frame renders from: the polled metric map,
// the health endpoint's verdict, and the poll identity. It carries no
// connection state, so renderFrame is a pure function of it (testable
// without a node).
type snapshot struct {
	Addr   string
	Time   time.Time
	Vars   map[string]float64
	Health healthStatus
}

// healthStatus is the decoded /healthz verdict. Exactly one of the
// three shapes holds: OK (Summary set), violating (Alerts non-empty),
// or unreachable/unknown (Summary set, OK false).
type healthStatus struct {
	OK      bool
	Summary string
	Alerts  []string
}

// renderFrame formats one whole frame: the title line, the health
// verdict, the per-zone table, and — when the node is violating its
// SLOs — every active alert inline below the table.
func renderFrame(s snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sharqfec-top — %s — %s\n", s.Addr, s.Time.Format("15:04:05"))
	switch {
	case s.Health.OK:
		fmt.Fprintf(&b, "health: OK — %s\n\n", s.Health.Summary)
	case len(s.Health.Alerts) > 0:
		fmt.Fprintf(&b, "health: VIOLATING (%d)\n\n", len(s.Health.Alerts))
	default:
		fmt.Fprintf(&b, "health: %s\n\n", s.Health.Summary)
	}
	b.WriteString(table(s.Vars))
	if len(s.Health.Alerts) > 0 {
		b.WriteString("\nactive alerts:\n")
		for _, a := range s.Health.Alerts {
			fmt.Fprintf(&b, "  ! %s\n", a)
		}
	}
	return b.String()
}

// columns are the per-zone vital signs, in display order, each backed
// by one registry counter family.
var columns = []struct{ header, metric string }{
	{"nack", "nacks_sent"},
	{"supp", "nacks_suppressed"},
	{"repair", "repairs_sent"},
	{"inject", "repairs_injected"},
	{"loss", "losses_detected"},
	{"decoded", "groups_decoded"},
	{"unrec", "losses_unrecovered"},
	{"alerts", "health_alerts"},
}

// censusColumns are the cost-census gauges appended when the node runs
// the census engine: resident protocol state per zone and cumulative
// boundary crossings.
var censusColumns = []struct{ header, metric string }{
	{"groups", "census_groups"},
	{"timers", "census_timers"},
	{"repq", "census_repair_queue"},
	{"res_kb", "census_resident_bytes"}, // rendered in KiB
	{"rtt", "census_rtt_entries"},
	{"b/rcvr", "census_bytes_per_rcvr"}, // slab-accounted memory per member
	{"bnd_pkt", ""},                     // derived: Σ census_boundary_pkts_<class>
}

// censusClasses mirrors census.Class display order for the derived
// boundary column (the cmd keeps its own list so the frame renderer
// stays a pure string → float64 map consumer).
var censusClasses = [...]string{"data", "nack", "repair", "fec", "ctrl"}

// hasCensus reports whether any census family is present in the metric
// map; without one the census columns stay off the board entirely.
func hasCensus(vars map[string]float64) bool {
	for key := range vars {
		if strings.HasPrefix(key, "census_") {
			return true
		}
	}
	return false
}

// table renders the per-zone metric rows. The session aggregate (keys
// with no zone label) prints as zone "all"; zone rows sort numerically.
// Census columns appear only when the node exports census families.
func table(vars map[string]float64) string {
	rows := map[string]map[string]float64{} // zone → metric → value
	for key, v := range vars {
		name, labels := splitKey(key)
		if strings.Contains(key, ".") || labels["node"] != "" || labels["kind"] != "" {
			continue // histogram parts and finer-grained families stay off the board
		}
		zone, ok := labels["zone"]
		if !ok {
			zone = "all"
		}
		m := rows[zone]
		if m == nil {
			m = map[string]float64{}
			rows[zone] = m
		}
		m[name] += v
	}

	zones := make([]string, 0, len(rows))
	for z := range rows {
		if z != "all" {
			zones = append(zones, z)
		}
	}
	sort.Slice(zones, func(i, j int) bool {
		a, _ := strconv.Atoi(zones[i])
		b, _ := strconv.Atoi(zones[j])
		return a < b
	})
	if _, ok := rows["all"]; ok {
		zones = append(zones, "all")
	}

	census := hasCensus(vars)
	w := new(strings.Builder)
	tw := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	tw("%6s", "zone")
	for _, c := range columns {
		tw(" %8s", c.header)
	}
	tw(" %7s", "supp%")
	if census {
		for _, c := range censusColumns {
			tw(" %8s", c.header)
		}
	}
	tw("\n")
	for _, z := range zones {
		m := rows[z]
		tw("%6s", z)
		for _, c := range columns {
			tw(" %8.0f", m[c.metric])
		}
		sent, supp := m["nacks_sent"], m["nacks_suppressed"]
		if sent+supp > 0 {
			tw(" %6.1f%%", 100*supp/(sent+supp))
		} else {
			tw(" %7s", "-")
		}
		if census {
			for _, c := range censusColumns {
				switch c.header {
				case "res_kb":
					tw(" %8.1f", m[c.metric]/1024)
				case "bnd_pkt":
					var bnd float64
					for _, cl := range censusClasses {
						bnd += m["census_boundary_pkts_"+cl]
					}
					tw(" %8.0f", bnd)
				default:
					tw(" %8.0f", m[c.metric])
				}
			}
		}
		tw("\n")
	}
	if len(zones) == 0 {
		tw("(no metrics yet)\n")
	}
	return w.String()
}

// splitKey parses `name{k="v",...}` into the bare name and its labels.
func splitKey(key string) (string, map[string]string) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key, nil
	}
	name := key[:i]
	labels := map[string]string{}
	body := strings.TrimSuffix(key[i+1:], "}")
	for _, part := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			continue
		}
		labels[k] = strings.Trim(v, `"`)
	}
	return name, labels
}
