package sharqfec

import (
	"sharqfec/internal/core"
	"sharqfec/internal/eventq"
	"sharqfec/internal/netsim"
	"sharqfec/internal/scoping"
	"sharqfec/internal/simrand"
	"sharqfec/internal/topology"
)

// sweepParallelism caps the worker pool RunTimerSweep (and RunEnsemble)
// fan out to. Overridable in tests.
var sweepParallelism = runtimeGOMAXPROCS

// TimerSweepPoint is one point of the §7 timer-constant exploration:
// SHARQFEC run with the request/reply constants scaled by Multiplier.
type TimerSweepPoint struct {
	Multiplier float64
	C1, C2     float64
	D1, D2     float64
	// NACKs and Repairs count transmissions; DupShares counts shares
	// received redundantly (the suppression-quality signal).
	NACKs, Repairs, DupShares int
	// MeanRecovery is the mean delay (s) from a group's last original
	// packet to its reconstruction, averaged over late completions
	// (groups completed after their transmission window).
	MeanRecovery float64
	Completion   float64
}

// RunTimerSweep runs SHARQFEC on the Figure-10 scenario once per
// multiplier, scaling all four suppression-timer constants. The paper's
// future-work note observes fixed constants cannot fit every topology;
// the sweep exposes the latency/duplicate-suppression trade-off the
// constants control.
// Points run in parallel across a bounded worker pool: each point is an
// independent simulation with its own event queue and a seed derived
// only from (seed, multiplier position), so results are deterministic
// and returned in multiplier order regardless of scheduling.
func RunTimerSweep(seed uint64, multipliers []float64) ([]TimerSweepPoint, error) {
	if len(multipliers) == 0 {
		multipliers = []float64{0.5, 1, 2, 4}
	}
	out := make([]TimerSweepPoint, len(multipliers))
	errs := make([]error, len(multipliers))
	runIndexed(len(multipliers), func(i int) {
		pt, err := runTimerPoint(seed, multipliers[i])
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = *pt
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func runTimerPoint(seed uint64, mult float64) (*TimerSweepPoint, error) {
	spec := topology.Figure10(topology.Figure10Params{})
	h, err := scoping.Build(spec.Zones)
	if err != nil {
		return nil, err
	}
	var q eventq.Queue
	src := simrand.New(seed)
	net := netsim.New(&q, spec.Graph, h, src)

	pcfg := core.DefaultConfig()
	pcfg.NumPackets = 256
	pcfg.C1 *= mult
	pcfg.C2 *= mult
	pcfg.D1 *= mult
	pcfg.D2 *= mult

	ipt := pcfg.InterPacket()
	k := pcfg.GroupK
	groupEnd := func(gid uint32) float64 {
		return 6 + float64(int(gid+1)*k)*ipt
	}

	agents := make(map[topology.NodeID]*core.Agent)
	completions := 0
	var recoverySum float64
	var recoveries int
	for _, m := range spec.Members() {
		ag, err := core.New(m, net, pcfg, src)
		if err != nil {
			return nil, err
		}
		if m != spec.Source {
			ag.OnComplete = func(now eventq.Time, gid uint32, _ [][]byte) {
				completions++
				if delay := now.Seconds() - groupEnd(gid); delay > 0 {
					recoverySum += delay
					recoveries++
				}
			}
		}
		agents[m] = ag
	}
	q.At(1, func(eventq.Time) {
		for _, ag := range agents {
			ag.Join()
		}
	})
	q.At(6, func(eventq.Time) { agents[spec.Source].StartSource() })
	q.RunUntil(60)

	pt := &TimerSweepPoint{
		Multiplier: mult,
		C1:         pcfg.C1, C2: pcfg.C2,
		D1: pcfg.D1, D2: pcfg.D2,
	}
	for _, ag := range agents {
		pt.NACKs += ag.Stats.NACKsSent
		pt.Repairs += ag.Stats.RepairsSent + ag.Stats.RepairsInjected
		pt.DupShares += ag.Stats.DupShares
	}
	if recoveries > 0 {
		pt.MeanRecovery = recoverySum / float64(recoveries)
	}
	pt.Completion = float64(completions) / float64(len(spec.Receivers)*pcfg.NumGroups())
	return pt, nil
}
