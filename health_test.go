package sharqfec

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sharqfec/internal/telemetry"
	"sharqfec/internal/telemetry/health"
)

// tightSLO is aggressive enough that the burst-loss scenario below is
// guaranteed to produce alerts — the replay and forensics tests need a
// non-trivial verdict sequence to compare.
const tightSLO = `
recovery_latency p95 <= 0.1 window=5 fast=1.25 min=2
suppression_ratio >= 0.5 window=10 min=8
repair_locality >= 0.6 window=10 min=8
budget_burn <= 0.5 window=10 min=4
`

func parseTestSLO(t *testing.T) *SLOSpec {
	t.Helper()
	spec, err := ParseSLOSpec(strings.NewReader(tightSLO))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestTelemetryRejectsNonFiniteMetricsInterval(t *testing.T) {
	for _, iv := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		cfg := DataConfig{Protocol: SHARQFEC, NumPackets: 16,
			Telemetry: &TelemetryConfig{MetricsInterval: iv}}
		if _, err := RunData(cfg); err == nil {
			t.Errorf("RunData accepted MetricsInterval = %v", iv)
		} else if !strings.Contains(err.Error(), "MetricsInterval") {
			t.Errorf("RunData(%v) error does not name the field: %v", iv, err)
		}
		ccfg := ChaosConfig{Seed: 1, NumPackets: 16,
			Telemetry: &TelemetryConfig{MetricsInterval: iv}}
		if _, err := RunChaos(ccfg); err == nil {
			t.Errorf("RunChaos accepted MetricsInterval = %v", iv)
		}
	}
}

// TestTelemetryRejectsInvalidSLOSpec covers the programmatic path
// around ParseSLOSpec: a spec assembled in code with a non-finite
// objective must be rejected up front, not silently judge nothing.
func TestTelemetryRejectsInvalidSLOSpec(t *testing.T) {
	for name, spec := range map[string]*health.Spec{
		"empty":      {},
		"NaN value":  {Objectives: []health.Objective{{Metric: 0, Quantile: 0.95, Value: math.NaN(), Window: 10}}},
		"Inf window": {Objectives: []health.Objective{{Metric: 0, Quantile: 0.95, Value: 0.5, Window: math.Inf(1)}}},
	} {
		cfg := DataConfig{Protocol: SHARQFEC, NumPackets: 16,
			Telemetry: &TelemetryConfig{SLO: &SLOSpec{spec: spec}}}
		if _, err := RunData(cfg); err == nil {
			t.Errorf("RunData accepted SLO spec %q", name)
		}
	}
}

// TestRateControlRejectsNonFinite: budget() treats Budget <= 0 as "use
// the default" and NaN fails that comparison too, so without explicit
// validation a NaN budget would reach the controller as a live bound.
func TestRateControlRejectsNonFinite(t *testing.T) {
	bad := []*RateControlConfig{
		{Mode: RateControlAdaptive, Budget: math.NaN()},
		{Mode: RateControlAdaptive, Budget: math.Inf(1)},
		{Mode: RateControlAdaptive, Budget: -0.5},
		{Mode: RateControlAdaptive, Budget: 1.5},
		{Mode: RateControlAdaptive, ArqPenalty: math.NaN()},
		{Mode: RateControlAdaptive, ArqPenalty: math.Inf(-1)},
		{Mode: "turbo"},
	}
	for _, rc := range bad {
		cfg := DataConfig{Protocol: SHARQFEC, NumPackets: 16, RateControl: rc}
		if _, err := RunData(cfg); err == nil {
			t.Errorf("RunData accepted rate-control config %+v", *rc)
		}
	}
	if _, err := RunControllerComparison(ControllerComparisonConfig{
		Base:   DataConfig{Protocol: SHARQFEC, NumPackets: 16},
		Budget: math.NaN(),
	}); err == nil {
		t.Error("RunControllerComparison accepted NaN budget")
	}
	ok := DataConfig{Protocol: SHARQFEC, NumPackets: 16,
		RateControl: &RateControlConfig{Mode: RateControlAdaptive, Budget: 0.5, ArqPenalty: 12}}
	if _, err := RunData(ok); err != nil {
		t.Errorf("valid rate-control config rejected: %v", err)
	}
}

// TestHealthReplayReproducesVerdicts is the offline-replay gate from the
// other side: a live run under an SLO writes its JSONL trace; replaying
// that trace through a fresh engine must reproduce the exact alert
// sequence and verdict table.
func TestHealthReplayReproducesVerdicts(t *testing.T) {
	spec := parseTestSLO(t)
	var trace bytes.Buffer
	res, err := RunData(DataConfig{
		Protocol:   SHARQFEC,
		Seed:       5,
		NumPackets: 256,
		Until:      30,
		Faults:     BurstLossPlan(8),
		Telemetry:  &TelemetryConfig{Events: &trace, SLO: spec},
	})
	if err != nil {
		t.Fatal(err)
	}
	live := res.Telemetry.HealthReport()
	if live == nil {
		t.Fatal("no health report despite SLO config")
	}
	if live.Passed() {
		t.Fatal("tight SLO unexpectedly passed; the replay test needs violations")
	}

	eng, recorded, err := health.Replay(bytes.NewReader(trace.Bytes()), spec.spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(recorded) == 0 {
		t.Fatal("trace recorded no health events")
	}
	if derived := eng.Emitted(); !health.SameAlerts(derived, recorded) {
		t.Fatalf("replay drift: %d recorded vs %d derived health events",
			len(recorded), len(derived))
	}
	if got, want := eng.Report().String(), live.String(); got != want {
		t.Fatalf("replayed report differs from live:\n--- live ---\n%s--- replay ---\n%s", want, got)
	}
}

func TestChaosSLOVerdict(t *testing.T) {
	res, err := RunChaos(ChaosConfig{
		Seed:       5,
		NumPackets: 256,
		Until:      30,
		Faults:     BurstLossPlan(8),
		Telemetry:  &TelemetryConfig{SLO: parseTestSLO(t)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Health == nil {
		t.Fatal("ChaosResult.Health nil despite SLO config")
	}
	if res.Health.Passed() {
		t.Fatal("tight SLO unexpectedly passed under burst loss")
	}
	if s := res.String(); !strings.Contains(s, "SLO FAIL") {
		t.Fatalf("chaos verdict line lacks SLO FAIL: %q", s)
	}
	// Without an SLO the same run carries no health verdict.
	res, err = RunChaos(ChaosConfig{Seed: 5, NumPackets: 256, Until: 30,
		Faults: BurstLossPlan(8)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Health != nil {
		t.Fatal("ChaosResult.Health non-nil without SLO config")
	}
	if strings.Contains(res.String(), "SLO") {
		t.Fatalf("SLO text in verdict line without SLO config: %q", res.String())
	}
}

// TestDumpTriggerOnRunData checks satellite forensics: a plain RunData
// session with a flight recorder gets alert-triggered dumps through the
// same bus-driven path RunChaos uses.
func TestDumpTriggerOnRunData(t *testing.T) {
	res, err := RunData(DataConfig{
		Protocol:   SHARQFEC,
		Seed:       5,
		NumPackets: 256,
		Until:      30,
		Faults:     BurstLossPlan(8),
		Telemetry:  &TelemetryConfig{FlightRecorder: 128, SLO: parseTestSLO(t)},
	})
	if err != nil {
		t.Fatal(err)
	}
	dumps := res.Telemetry.TriggeredDumps()
	if len(dumps) == 0 {
		t.Fatal("no triggered dumps despite violations and a recorder")
	}
	if len(dumps) > telemetry.MaxAutoDumps {
		t.Fatalf("%d auto dumps exceed the cap %d", len(dumps), telemetry.MaxAutoDumps)
	}
	first := dumps[0]
	if !strings.Contains(first.Reason, "health_alert") {
		t.Fatalf("dump reason %q does not name the alert", first.Reason)
	}
	if len(first.Events) == 0 {
		t.Fatal("triggered dump carries no events")
	}
	// The dump's last line is the alert that fired it (trigger attaches
	// after the recorder).
	last := first.Events[len(first.Events)-1]
	if !strings.Contains(last, "health_alert") {
		t.Fatalf("dump tail %q is not the triggering alert", last)
	}
}

// TestHealthEventsRoundTrip pushes the engine's real emissions through
// the JSONL writer and ParseEventLine: every health event must survive
// byte-exactly, which is what the offline replay gate stands on.
func TestHealthEventsRoundTrip(t *testing.T) {
	spec := parseTestSLO(t)
	var trace bytes.Buffer
	res, err := RunData(DataConfig{
		Protocol:   SHARQFEC,
		Seed:       5,
		NumPackets: 256,
		Until:      30,
		Faults:     BurstLossPlan(8),
		Telemetry:  &TelemetryConfig{Events: &trace, SLO: spec},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry.HealthReport().Passed() {
		t.Fatal("need violations for a meaningful round trip")
	}
	found := 0
	for _, line := range strings.Split(strings.TrimSpace(trace.String()), "\n") {
		e, err := telemetry.ParseEventLine([]byte(line))
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if e.Kind != telemetry.KindHealthAlert && e.Kind != telemetry.KindHealthClear {
			continue
		}
		found++
		var out bytes.Buffer
		w := telemetry.NewEventWriter(&out)
		w.Sink()(e)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if got := strings.TrimSpace(out.String()); got != line {
			t.Fatalf("health event did not round-trip:\n in: %s\nout: %s", line, got)
		}
	}
	if found == 0 {
		t.Fatal("trace contains no health events")
	}
}

// TestSpansTaggedByAlerts: recoveries in flight while an alert fires
// carry the alert count.
func TestSpansTaggedByAlerts(t *testing.T) {
	res, err := RunData(DataConfig{
		Protocol:   SHARQFEC,
		Seed:       5,
		NumPackets: 256,
		Until:      30,
		Faults:     BurstLossPlan(8),
		Telemetry:  &TelemetryConfig{Spans: true, SLO: parseTestSLO(t)},
	})
	if err != nil {
		t.Fatal(err)
	}
	tagged := 0
	for _, sp := range res.Telemetry.Spans() {
		if sp.Alerts > 0 {
			tagged++
			if !strings.Contains(sp.Format(), "alerts=") {
				t.Fatalf("tagged span line lacks alerts field: %s", sp.Format())
			}
		}
	}
	if tagged == 0 {
		t.Fatal("no spans tagged by alerts despite violations under burst loss")
	}
}

// TestHealthPassiveOnProtocol: attaching the health engine must not
// perturb the protocol execution — same seed, same results, with and
// without an SLO.
func TestHealthPassiveOnProtocol(t *testing.T) {
	run := func(slo *SLOSpec) *DataResult {
		res, err := RunData(DataConfig{
			Protocol:   SHARQFEC,
			Seed:       5,
			NumPackets: 256,
			Until:      30,
			Faults:     BurstLossPlan(8),
			Telemetry:  &TelemetryConfig{SLO: slo},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(nil)
	with := run(parseTestSLO(t))
	if base.CompletionRate != with.CompletionRate ||
		base.NACKsSent != with.NACKsSent ||
		base.RepairsSent != with.RepairsSent ||
		base.Telemetry.SuppressionRatio != with.Telemetry.SuppressionRatio {
		t.Fatalf("SLO engine perturbed the protocol:\nwithout: %+v\nwith:    %+v",
			base, with)
	}
}
