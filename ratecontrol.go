package sharqfec

import (
	"fmt"
	"math"

	"sharqfec/internal/analysis"
	"sharqfec/internal/core"
	"sharqfec/internal/ratecontrol"
	"sharqfec/internal/telemetry/spans"
	"sharqfec/internal/topology"
)

// RateControlMode selects how preemptive FEC injection is sized.
type RateControlMode string

const (
	// RateControlOff leaves the paper's behavior untouched (the static
	// EWMA predictor, attached implicitly). Identical to
	// RateControlStatic per seed; it exists so "no rate-control
	// plumbing requested" is expressible.
	RateControlOff RateControlMode = "off"
	// RateControlStatic explicitly attaches the static EWMA policy —
	// byte-identical to off per seed, which the fixed-seed digest tests
	// pin.
	RateControlStatic RateControlMode = "static"
	// RateControlAdaptive attaches the burst-aware optimizer
	// (internal/ratecontrol): per-zone redundancy sized by expected
	// recovery cost under a fitted Gilbert–Elliott loss model, subject
	// to a per-group repair budget.
	RateControlAdaptive RateControlMode = "adaptive"
)

// ParseRateControlMode resolves a -ratecontrol flag value.
func ParseRateControlMode(s string) (RateControlMode, error) {
	switch RateControlMode(s) {
	case RateControlOff, RateControlStatic, RateControlAdaptive:
		return RateControlMode(s), nil
	}
	return "", fmt.Errorf("sharqfec: unknown rate-control mode %q (off|static|adaptive)", s)
}

// RateControlConfig selects and tunes the rate-control policy for a
// data run. The zero value (and a nil *RateControlConfig) means off.
type RateControlConfig struct {
	Mode RateControlMode
	// Budget caps adaptive injection per group as a fraction of the
	// group size (default 0.5). Ignored by off/static.
	Budget float64
	// ArqPenalty is the adaptive policy's cost of one uncovered loss
	// relative to one preemptive share (default 12). Ignored by
	// off/static.
	ArqPenalty float64
}

// validate rejects non-finite or out-of-range tuning values before a
// run starts. The defaulting in budget() treats Budget <= 0 as "use
// the default", and NaN fails that comparison too — so without this
// check a NaN budget would flow into the controller as a real bound.
// Comparisons are written so NaN fails them.
func (c *RateControlConfig) validate() error {
	if c == nil {
		return nil
	}
	switch c.Mode {
	case "", RateControlOff, RateControlStatic, RateControlAdaptive:
	default:
		return fmt.Errorf("sharqfec: unknown rate-control mode %q (off|static|adaptive)", c.Mode)
	}
	if c.Budget != 0 && !(isFinite64(c.Budget) && c.Budget > 0 && c.Budget <= 1) {
		return fmt.Errorf("sharqfec: rate-control budget %g must be a finite fraction in (0,1]", c.Budget)
	}
	if c.ArqPenalty != 0 && !(isFinite64(c.ArqPenalty) && c.ArqPenalty > 0) {
		return fmt.Errorf("sharqfec: rate-control ARQ penalty %g must be finite and > 0", c.ArqPenalty)
	}
	return nil
}

// isFinite64 reports whether f is neither NaN nor ±Inf.
func isFinite64(f float64) bool {
	return f == f && f <= math.MaxFloat64 && f >= -math.MaxFloat64
}

// budget returns the configured budget with the package default
// applied, for reports.
func (c *RateControlConfig) budget() float64 {
	if c == nil || c.Budget <= 0 {
		return 0.5
	}
	return c.Budget
}

// factory maps the config to a core controller constructor; nil keeps
// core's built-in static default (off and static are deliberately the
// same decisions — static just makes the seam explicit).
func (c *RateControlConfig) factory(pcfg core.Config) func(topology.NodeID) core.Controller {
	if c == nil {
		return nil
	}
	switch c.Mode {
	case RateControlStatic:
		return func(topology.NodeID) core.Controller {
			return core.NewStaticController(pcfg.EWMAOld, pcfg.EWMANew)
		}
	case RateControlAdaptive:
		rcfg := ratecontrol.Config{
			Budget:     c.Budget,
			ArqPenalty: c.ArqPenalty,
			EWMAOld:    pcfg.EWMAOld,
			EWMANew:    pcfg.EWMANew,
		}
		return func(topology.NodeID) core.Controller {
			return ratecontrol.New(rcfg)
		}
	}
	return nil
}

// ControllerComparisonConfig parameterizes RunControllerComparison.
type ControllerComparisonConfig struct {
	// Base is the experiment both policies run under — topology, seed,
	// fault plan, durations. Its RateControl and Telemetry fields are
	// overridden per policy run (span tracing is forced on; an Events
	// writer, if set, is dropped to keep the two runs independent).
	Base DataConfig
	// Budget / ArqPenalty configure the adaptive policy (defaults 0.5 /
	// 12).
	Budget     float64
	ArqPenalty float64
	// Seeds, when non-empty, runs each policy once per seed (overriding
	// Base.Seed) and pools the spans and repair totals into one outcome
	// per policy. Single runs are noisy — the per-link burst chains
	// advance once per crossing packet, so any policy-induced traffic
	// difference diverges the whole loss realization — and the ensemble
	// averages that divergence out.
	Seeds []uint64
}

// RunControllerComparison runs the same experiment(s) twice — once
// under the static policy, once under the adaptive policy — and
// compares span recovery latency against repair overhead. The static
// runs are byte-identical to uncontrolled runs at the same seeds, so
// the comparison isolates the policy change.
func RunControllerComparison(cfg ControllerComparisonConfig) (*analysis.ControllerReport, error) {
	if err := (&RateControlConfig{Mode: RateControlAdaptive, Budget: cfg.Budget, ArqPenalty: cfg.ArqPenalty}).validate(); err != nil {
		return nil, err
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{cfg.Base.Seed}
	}
	run := func(mode RateControlMode) (analysis.PolicyOutcome, error) {
		var (
			pool                 []spans.Span
			sent, injected, maxH int64
			packets              int
		)
		for _, seed := range seeds {
			res, err := runPolicy(cfg, mode, seed)
			if err != nil {
				return analysis.PolicyOutcome{}, err
			}
			pool = append(pool, res.Telemetry.Spans()...)
			sent += int64(res.RepairsSent)
			injected += int64(res.RepairsInjected)
			if h := res.Telemetry.ControllerMaxH; h > maxH {
				maxH = h
			}
			np := cfg.Base.NumPackets
			if np == 0 {
				np = 1024
			}
			packets += np
		}
		return analysis.SummarizePolicy(string(mode), pool, sent, injected, packets, maxH), nil
	}
	static, err := run(RateControlStatic)
	if err != nil {
		return nil, err
	}
	adaptive, err := run(RateControlAdaptive)
	if err != nil {
		return nil, err
	}
	rc := &RateControlConfig{Mode: RateControlAdaptive, Budget: cfg.Budget}
	groupK := cfg.Base.GroupK
	if groupK == 0 {
		groupK = 16
	}
	return &analysis.ControllerReport{
		Static:   static,
		Adaptive: adaptive,
		Budget:   rc.budget(),
		GroupK:   groupK,
	}, nil
}

// runPolicy executes cfg.Base under one rate-control mode at one seed
// with span tracing forced on.
func runPolicy(cfg ControllerComparisonConfig, mode RateControlMode, seed uint64) (*DataResult, error) {
	base := cfg.Base
	base.Seed = seed
	base.RateControl = &RateControlConfig{
		Mode:       mode,
		Budget:     cfg.Budget,
		ArqPenalty: cfg.ArqPenalty,
	}
	tcfg := TelemetryConfig{Spans: true}
	if base.Telemetry != nil {
		tcfg = *base.Telemetry
		tcfg.Spans = true
		tcfg.Events = nil
	}
	base.Telemetry = &tcfg
	return RunData(base)
}
