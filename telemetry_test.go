package sharqfec

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"strconv"
	"strings"
	"testing"

	"sharqfec/internal/analysis"
	"sharqfec/internal/telemetry/spans"
)

// telemetryRunConfig is the shared scenario for the facade tests: short
// Figure-10 run with every exporter on.
func telemetryRunConfig(events *bytes.Buffer) DataConfig {
	return DataConfig{
		Protocol:   SHARQFEC,
		Seed:       11,
		NumPackets: 128,
		Until:      20,
		Telemetry: &TelemetryConfig{
			Events:          events,
			MetricsInterval: 1,
			FlightRecorder:  64,
		},
	}
}

// TestTelemetryDeterminism: two runs at the same seed must export
// byte-identical JSONL event traces and CSV time series.
func TestTelemetryDeterminism(t *testing.T) {
	var ev1, ev2, csv1, csv2 bytes.Buffer
	res1, err := RunData(telemetryRunConfig(&ev1))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := RunData(telemetryRunConfig(&ev2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ev1.Bytes(), ev2.Bytes()) {
		t.Error("JSONL event traces differ across identical seeds")
	}
	if err := res1.Telemetry.WriteMetricsCSV(&csv1); err != nil {
		t.Fatal(err)
	}
	if err := res2.Telemetry.WriteMetricsCSV(&csv2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1.Bytes(), csv2.Bytes()) {
		t.Error("metrics CSV differs across identical seeds")
	}
	if res1.Telemetry.EventsEmitted == 0 || res1.Telemetry.EventsWritten == 0 {
		t.Fatalf("no events flowed: %+v", res1.Telemetry)
	}
}

// TestTelemetryPassive: attaching the full observability stack must not
// change the protocol run — packet traces and report totals stay
// byte-identical to a telemetry-free run at the same seed.
func TestTelemetryPassive(t *testing.T) {
	var traceOff, traceOn, ev bytes.Buffer
	off := telemetryRunConfig(nil)
	off.Telemetry = nil
	off.TraceWriter = &traceOff
	resOff, err := RunData(off)
	if err != nil {
		t.Fatal(err)
	}
	on := telemetryRunConfig(&ev)
	on.TraceWriter = &traceOn
	resOn, err := RunData(on)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(traceOff.Bytes(), traceOn.Bytes()) {
		t.Error("telemetry perturbed the packet trace")
	}
	if resOff.NACKsSent != resOn.NACKsSent || resOff.RepairsSent != resOn.RepairsSent ||
		resOff.CompletionRate != resOn.CompletionRate {
		t.Errorf("telemetry perturbed totals: off %d/%d/%g on %d/%d/%g",
			resOff.NACKsSent, resOff.RepairsSent, resOff.CompletionRate,
			resOn.NACKsSent, resOn.RepairsSent, resOn.CompletionRate)
	}
	if resOff.Telemetry != nil {
		t.Error("telemetry report present on a disabled run")
	}

	// Span assembly rides the same bus and must be just as passive.
	var traceSpans bytes.Buffer
	withSpans := telemetryRunConfig(nil)
	withSpans.Telemetry.Events = nil // nil *bytes.Buffer must not become a typed-nil writer
	withSpans.Telemetry.Spans = true
	withSpans.TraceWriter = &traceSpans
	resSpans, err := RunData(withSpans)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(traceOff.Bytes(), traceSpans.Bytes()) {
		t.Error("span tracing perturbed the packet trace")
	}
	if resOff.NACKsSent != resSpans.NACKsSent || resOff.CompletionRate != resSpans.CompletionRate {
		t.Error("span tracing perturbed totals")
	}
	if len(resSpans.Telemetry.Spans()) == 0 {
		t.Error("spans enabled but none assembled")
	}
}

// TestTelemetryConsistentWithReport: the final aggregate row of the
// time series must agree with the end-of-run report totals, and the
// JSONL trace must parse line by line.
func TestTelemetryConsistentWithReport(t *testing.T) {
	var ev bytes.Buffer
	res, err := RunData(telemetryRunConfig(&ev))
	if err != nil {
		t.Fatal(err)
	}
	tel := res.Telemetry

	var csv bytes.Buffer
	if err := tel.WriteMetricsCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	last := strings.Split(lines[len(lines)-1], ",")
	header := strings.Split(lines[0], ",")
	if len(last) != len(header) {
		t.Fatalf("ragged CSV: %d columns vs %d header fields", len(last), len(header))
	}
	col := func(name string) string {
		for i, h := range header {
			if h == name {
				return last[i]
			}
		}
		t.Fatalf("no column %q", name)
		return ""
	}
	if col("zone") != "-1" {
		t.Fatalf("final row is not the aggregate: zone=%s", col("zone"))
	}
	if got := col("nacks_sent"); got != itoa(res.NACKsSent) {
		t.Errorf("CSV nacks_sent %s != report %d", got, res.NACKsSent)
	}
	if got := col("repairs_sent"); got != itoa(res.RepairsSent) {
		t.Errorf("CSV repairs_sent %s != report %d", got, res.RepairsSent)
	}
	if got := col("session_pkts"); got != itoa(res.SessionPackets) {
		t.Errorf("CSV session_pkts %s != report %d", got, res.SessionPackets)
	}
	if tel.NACKsSent != int64(res.NACKsSent) || tel.RepairsSent != int64(res.RepairsSent) {
		t.Errorf("registry totals %d/%d != report %d/%d",
			tel.NACKsSent, tel.RepairsSent, res.NACKsSent, res.RepairsSent)
	}
	if tel.SuppressionRatio <= 0 || tel.SuppressionRatio >= 1 {
		t.Errorf("implausible suppression ratio %g", tel.SuppressionRatio)
	}
	if tel.LocalRepairFrac <= 0 {
		t.Errorf("no repair localization measured: %g", tel.LocalRepairFrac)
	}

	sc := bufio.NewScanner(&ev)
	n := 0
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("bad JSONL line %d: %v\n%s", n+1, err, sc.Text())
		}
		for _, field := range []string{"t", "ev", "node"} {
			if _, ok := obj[field]; !ok {
				t.Fatalf("line %d missing %q: %s", n+1, field, sc.Text())
			}
		}
		n++
	}
	if uint64(n) != tel.EventsWritten {
		t.Fatalf("trace has %d lines, writer reports %d", n, tel.EventsWritten)
	}
}

// TestChaosRegistryBackedCounters: RunChaos's result counters now come
// from the telemetry registry; a nominal run must still report sane
// totals and keep the flight record empty.
func TestChaosRegistryBackedCounters(t *testing.T) {
	res, err := RunChaos(ChaosConfig{Seed: 5, NumPackets: 64, Until: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.NACKsSent <= 0 || res.RepairsSent <= 0 {
		t.Fatalf("registry counters empty: %d NACKs, %d repairs", res.NACKsSent, res.RepairsSent)
	}
	if res.LocalRepairFrac <= 0 || res.LocalRepairFrac > 1 {
		t.Fatalf("localization out of range: %g", res.LocalRepairFrac)
	}
	if res.Telemetry == nil || res.Telemetry.EventsEmitted == 0 {
		t.Fatal("chaos run carried no telemetry")
	}
	if res.CompletionRate == 1 && res.Verified && res.FlightRecord != nil {
		t.Fatal("flight record dumped on a nominal run")
	}
}

// TestChaosFlightRecorderDumpsOnAnomaly: crashing the source
// mid-stream strands the untransmitted groups, so the surviving
// receivers cannot complete and the flight recorder must dump.
func TestChaosFlightRecorderDumpsOnAnomaly(t *testing.T) {
	res, err := RunChaos(ChaosConfig{
		Seed:       5,
		NumPackets: 64,
		Until:      30,
		Faults:     NewFaultPlan().Crash(6.2, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionRate >= 1 {
		t.Skipf("partition did not prevent completion (%.3f); scenario lost its teeth", res.CompletionRate)
	}
	if len(res.FlightRecord) == 0 {
		t.Fatal("anomalous run dumped no flight record")
	}
	for _, line := range res.FlightRecord {
		if strings.TrimSpace(line) == "" {
			t.Fatal("empty flight-record line")
		}
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

// TestSpanAccountingUnderChaos is the span-tracing acceptance check on
// a seeded Figure-10 chaos run (ZCR crash): every loss_detected event
// resolves into exactly one span terminated by a decode or an explicit
// loss_unrecovered marker — none left open, duplicates folded.
func TestSpanAccountingUnderChaos(t *testing.T) {
	var ev bytes.Buffer
	res, err := RunChaos(ChaosConfig{
		Seed:       5,
		NumPackets: 128,
		Until:      60,
		Telemetry:  &TelemetryConfig{Events: &ev},
	})
	if err != nil {
		t.Fatal(err)
	}
	tel := res.Telemetry
	if tel.OpenSpans() != 0 {
		t.Fatalf("%d spans never saw a terminal event", tel.OpenSpans())
	}
	sps := tel.Spans()
	if len(sps) == 0 || tel.SpanLossEvents() == 0 {
		t.Fatal("chaos run assembled no spans")
	}
	accounted := uint64(0)
	for _, s := range sps {
		accounted += uint64(1 + s.DupLoss)
	}
	if accounted != tel.SpanLossEvents() {
		t.Fatalf("spans account for %d loss events, assembler consumed %d",
			accounted, tel.SpanLossEvents())
	}
	rep := tel.RecoveryReport()
	if rep.Recovered+rep.Unrecovered != rep.Spans {
		t.Fatalf("recovered %d + unrecovered %d != %d spans",
			rep.Recovered, rep.Unrecovered, rep.Spans)
	}

	// Offline replay of the JSONL trace must reproduce the identical
	// report — byte for byte — from the trace alone.
	replayed, err := spans.Replay(&ev)
	if err != nil {
		t.Fatal(err)
	}
	if live, offline := rep.String(), analysis.BuildRecoveryReport(replayed).String(); live != offline {
		t.Fatalf("offline replay diverges from live assembly:\n--- live ---\n%s--- replay ---\n%s", live, offline)
	}
}

// TestChaosAnomalyIncludesSpanSummary: an anomalous chaos dump now
// leads with the span ledger before the raw event tail.
func TestChaosAnomalyIncludesSpanSummary(t *testing.T) {
	res, err := RunChaos(ChaosConfig{
		Seed:       5,
		NumPackets: 64,
		Until:      30,
		Faults:     NewFaultPlan().Crash(6.2, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionRate >= 1 {
		t.Skipf("crash did not prevent completion (%.3f); scenario lost its teeth", res.CompletionRate)
	}
	if len(res.FlightRecord) == 0 || !strings.HasPrefix(res.FlightRecord[0], "recovery spans:") {
		t.Fatalf("flight record does not lead with the span ledger: %q", res.FlightRecord[:1])
	}
}

// TestFlightRecorderClamp: the configurable ring size respects its
// documented floor and cap, and off stays off.
func TestFlightRecorderClamp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 0},
		{-7, -7}, // "off" passes through untouched
		{1, MinFlightRecorder},
		{MinFlightRecorder, MinFlightRecorder},
		{500, 500},
		{MaxFlightRecorder, MaxFlightRecorder},
		{MaxFlightRecorder + 1, MaxFlightRecorder},
		{1 << 30, MaxFlightRecorder},
	} {
		if got := clampFlightRecorder(tc.in); got != tc.want {
			t.Errorf("clampFlightRecorder(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}

	// End to end: a below-floor config still yields a working recorder.
	res, err := RunData(DataConfig{
		Protocol:   SHARQFEC,
		Seed:       11,
		NumPackets: 64,
		Until:      20,
		Telemetry:  &TelemetryConfig{FlightRecorder: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := len(res.Telemetry.FlightRecord())
	if n == 0 || n > MinFlightRecorder {
		t.Fatalf("flight record holds %d lines, want 1..%d (clamped floor)", n, MinFlightRecorder)
	}
}

// TestPerfettoExport: the facade's exporter produces valid trace-event
// JSON whose slice count matches the span count.
func TestPerfettoExport(t *testing.T) {
	cfg := telemetryRunConfig(nil)
	cfg.Telemetry.Events = nil
	cfg.Telemetry.Spans = true
	res, err := RunData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Telemetry.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("perfetto export is not valid JSON: %v", err)
	}
	slices := 0
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" {
			slices++
		}
	}
	if want := len(res.Telemetry.Spans()); slices != want {
		t.Fatalf("perfetto has %d slices, run closed %d spans", slices, want)
	}

	// Spans off: the exporter refuses rather than writing an empty file.
	plain, err := RunData(telemetryRunConfig(&bytes.Buffer{}))
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Telemetry.WritePerfetto(io.Discard); err == nil {
		t.Fatal("WritePerfetto succeeded without span tracing")
	}
}
