package sharqfec

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// telemetryRunConfig is the shared scenario for the facade tests: short
// Figure-10 run with every exporter on.
func telemetryRunConfig(events *bytes.Buffer) DataConfig {
	return DataConfig{
		Protocol:   SHARQFEC,
		Seed:       11,
		NumPackets: 128,
		Until:      20,
		Telemetry: &TelemetryConfig{
			Events:          events,
			MetricsInterval: 1,
			FlightRecorder:  64,
		},
	}
}

// TestTelemetryDeterminism: two runs at the same seed must export
// byte-identical JSONL event traces and CSV time series.
func TestTelemetryDeterminism(t *testing.T) {
	var ev1, ev2, csv1, csv2 bytes.Buffer
	res1, err := RunData(telemetryRunConfig(&ev1))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := RunData(telemetryRunConfig(&ev2))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ev1.Bytes(), ev2.Bytes()) {
		t.Error("JSONL event traces differ across identical seeds")
	}
	if err := res1.Telemetry.WriteMetricsCSV(&csv1); err != nil {
		t.Fatal(err)
	}
	if err := res2.Telemetry.WriteMetricsCSV(&csv2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv1.Bytes(), csv2.Bytes()) {
		t.Error("metrics CSV differs across identical seeds")
	}
	if res1.Telemetry.EventsEmitted == 0 || res1.Telemetry.EventsWritten == 0 {
		t.Fatalf("no events flowed: %+v", res1.Telemetry)
	}
}

// TestTelemetryPassive: attaching the full observability stack must not
// change the protocol run — packet traces and report totals stay
// byte-identical to a telemetry-free run at the same seed.
func TestTelemetryPassive(t *testing.T) {
	var traceOff, traceOn, ev bytes.Buffer
	off := telemetryRunConfig(nil)
	off.Telemetry = nil
	off.TraceWriter = &traceOff
	resOff, err := RunData(off)
	if err != nil {
		t.Fatal(err)
	}
	on := telemetryRunConfig(&ev)
	on.TraceWriter = &traceOn
	resOn, err := RunData(on)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(traceOff.Bytes(), traceOn.Bytes()) {
		t.Error("telemetry perturbed the packet trace")
	}
	if resOff.NACKsSent != resOn.NACKsSent || resOff.RepairsSent != resOn.RepairsSent ||
		resOff.CompletionRate != resOn.CompletionRate {
		t.Errorf("telemetry perturbed totals: off %d/%d/%g on %d/%d/%g",
			resOff.NACKsSent, resOff.RepairsSent, resOff.CompletionRate,
			resOn.NACKsSent, resOn.RepairsSent, resOn.CompletionRate)
	}
	if resOff.Telemetry != nil {
		t.Error("telemetry report present on a disabled run")
	}
}

// TestTelemetryConsistentWithReport: the final aggregate row of the
// time series must agree with the end-of-run report totals, and the
// JSONL trace must parse line by line.
func TestTelemetryConsistentWithReport(t *testing.T) {
	var ev bytes.Buffer
	res, err := RunData(telemetryRunConfig(&ev))
	if err != nil {
		t.Fatal(err)
	}
	tel := res.Telemetry

	var csv bytes.Buffer
	if err := tel.WriteMetricsCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	last := strings.Split(lines[len(lines)-1], ",")
	header := strings.Split(lines[0], ",")
	if len(last) != len(header) {
		t.Fatalf("ragged CSV: %d columns vs %d header fields", len(last), len(header))
	}
	col := func(name string) string {
		for i, h := range header {
			if h == name {
				return last[i]
			}
		}
		t.Fatalf("no column %q", name)
		return ""
	}
	if col("zone") != "-1" {
		t.Fatalf("final row is not the aggregate: zone=%s", col("zone"))
	}
	if got := col("nacks_sent"); got != itoa(res.NACKsSent) {
		t.Errorf("CSV nacks_sent %s != report %d", got, res.NACKsSent)
	}
	if got := col("repairs_sent"); got != itoa(res.RepairsSent) {
		t.Errorf("CSV repairs_sent %s != report %d", got, res.RepairsSent)
	}
	if got := col("session_pkts"); got != itoa(res.SessionPackets) {
		t.Errorf("CSV session_pkts %s != report %d", got, res.SessionPackets)
	}
	if tel.NACKsSent != int64(res.NACKsSent) || tel.RepairsSent != int64(res.RepairsSent) {
		t.Errorf("registry totals %d/%d != report %d/%d",
			tel.NACKsSent, tel.RepairsSent, res.NACKsSent, res.RepairsSent)
	}
	if tel.SuppressionRatio <= 0 || tel.SuppressionRatio >= 1 {
		t.Errorf("implausible suppression ratio %g", tel.SuppressionRatio)
	}
	if tel.LocalRepairFrac <= 0 {
		t.Errorf("no repair localization measured: %g", tel.LocalRepairFrac)
	}

	sc := bufio.NewScanner(&ev)
	n := 0
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("bad JSONL line %d: %v\n%s", n+1, err, sc.Text())
		}
		for _, field := range []string{"t", "ev", "node"} {
			if _, ok := obj[field]; !ok {
				t.Fatalf("line %d missing %q: %s", n+1, field, sc.Text())
			}
		}
		n++
	}
	if uint64(n) != tel.EventsWritten {
		t.Fatalf("trace has %d lines, writer reports %d", n, tel.EventsWritten)
	}
}

// TestChaosRegistryBackedCounters: RunChaos's result counters now come
// from the telemetry registry; a nominal run must still report sane
// totals and keep the flight record empty.
func TestChaosRegistryBackedCounters(t *testing.T) {
	res, err := RunChaos(ChaosConfig{Seed: 5, NumPackets: 64, Until: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.NACKsSent <= 0 || res.RepairsSent <= 0 {
		t.Fatalf("registry counters empty: %d NACKs, %d repairs", res.NACKsSent, res.RepairsSent)
	}
	if res.LocalRepairFrac <= 0 || res.LocalRepairFrac > 1 {
		t.Fatalf("localization out of range: %g", res.LocalRepairFrac)
	}
	if res.Telemetry == nil || res.Telemetry.EventsEmitted == 0 {
		t.Fatal("chaos run carried no telemetry")
	}
	if res.CompletionRate == 1 && res.Verified && res.FlightRecord != nil {
		t.Fatal("flight record dumped on a nominal run")
	}
}

// TestChaosFlightRecorderDumpsOnAnomaly: crashing the source
// mid-stream strands the untransmitted groups, so the surviving
// receivers cannot complete and the flight recorder must dump.
func TestChaosFlightRecorderDumpsOnAnomaly(t *testing.T) {
	res, err := RunChaos(ChaosConfig{
		Seed:       5,
		NumPackets: 64,
		Until:      30,
		Faults:     NewFaultPlan().Crash(6.2, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionRate >= 1 {
		t.Skipf("partition did not prevent completion (%.3f); scenario lost its teeth", res.CompletionRate)
	}
	if len(res.FlightRecord) == 0 {
		t.Fatal("anomalous run dumped no flight record")
	}
	for _, line := range res.FlightRecord {
		if strings.TrimSpace(line) == "" {
			t.Fatal("empty flight-record line")
		}
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
