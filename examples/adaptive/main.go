// Adaptive: compares the paper's static EWMA preemptive-FEC sizing
// against the burst-aware adaptive controller (internal/ratecontrol)
// under Gilbert–Elliott burst loss. Both runs share one seed and one
// fault plan — every link's Bernoulli loss is replaced at t=0 by a
// burst process of equal mean with mean burst length 8 — so the only
// difference is the rate-control policy. The report puts span p50/p95/
// p99 recovery latency against repair overhead, with the adaptive
// policy's budget compliance checked explicitly.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"sharqfec"
)

func main() {
	log.SetFlags(0)

	fmt.Println("static vs adaptive preemptive FEC under burst loss")
	fmt.Println("(Figure-10 topology, equal-mean Gilbert loss, mean burst 8 packets)")
	fmt.Println()

	rep, err := sharqfec.RunControllerComparison(sharqfec.ControllerComparisonConfig{
		Base: sharqfec.DataConfig{
			Protocol: sharqfec.SHARQFEC,
			Faults:   sharqfec.BurstLossPlan(8),
		},
		// Pool a small seed ensemble: the burst chains advance per
		// crossing packet, so single-run comparisons are noisy (see
		// EXPERIMENTS.md E18 for the full 8-seed ensemble).
		Seeds: []uint64{1, 2, 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.String())
	fmt.Println()
	fmt.Println("The static policy sizes injection by predicted mean loss alone, so")
	fmt.Println("it under-protects when losses cluster: a burst that eats several")
	fmt.Println("shares of one group forces NACK rounds. The adaptive policy fits a")
	fmt.Println("two-state burst model online and buys extra shares exactly when the")
	fmt.Println("loss-count tail is fat — never more than its per-group budget.")
}
