// Quickstart: reliably multicast a stream over a small lossy tree with
// SHARQFEC and confirm every receiver reconstructed every byte.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sharqfec"
)

func main() {
	log.SetFlags(0)

	// A 2-level multicast tree (source + 6 receivers) where every link
	// drops 8% of data and repair packets.
	top := sharqfec.TreeTopology([]int{2, 2}, 0.08)

	res, err := sharqfec.RunData(sharqfec.DataConfig{
		Protocol:   sharqfec.SHARQFEC,
		Topology:   top,
		Seed:       42,
		NumPackets: 256, // 16 FEC groups of 16 × 1000-byte packets
		Until:      60,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("delivered %d packets to %d receivers over %s\n",
		256, res.Receivers, res.Topology)
	fmt.Printf("  recovery:        %.1f%% of groups completed\n", 100*res.CompletionRate)
	fmt.Printf("  integrity:       payloads verified = %v\n", res.Verified)
	fmt.Printf("  repair requests: %d NACKs (suppression keeps this far below the loss count)\n", res.NACKsSent)
	fmt.Printf("  repairs:         %d FEC shares sent, %d injected preemptively\n",
		res.RepairsSent, res.RepairsInjected)
	fmt.Printf("  per receiver:    %.1f data+repair packets, %.1f NACKs heard\n",
		res.AvgDataRepair.Sum(), res.AvgNACKs.Sum())

	if res.CompletionRate < 1 || !res.Verified {
		log.Fatal("quickstart failed: incomplete or corrupted delivery")
	}
	fmt.Println("ok: every receiver reconstructed the full stream")
}
