// Resilience: exercises the failure-handling and extension machinery in
// one run — ZCR failure with re-election, a receiver joining mid-stream
// with localized catch-up, and hierarchical receiver-report aggregation
// (the paper's §3.2 robustness claims and §7 future-work items).
//
//	go run ./examples/resilience
package main

import (
	"fmt"
	"log"

	"sharqfec"
)

func main() {
	log.SetFlags(0)

	fmt.Println("1. ZCR failure: kill a zone's representative mid-stream")
	fo, err := sharqfec.RunZCRFailover(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %s\n", fo)
	fmt.Println("   survivors re-elect and scope escalation covers the gap")
	fmt.Println()

	fmt.Println("2. Late join: a receiver subscribes after the stream ends")
	lj, err := sharqfec.RunLateJoin(100, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %s\n", lj)
	fmt.Println("   the zone's ZCR serves the catch-up; the backbone barely notices")
	fmt.Println()

	fmt.Println("3. Receiver reports: the source's view of session quality")
	rr, err := sharqfec.RunReceiverReports(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   source sees worst loss %.1f%% (truth %.1f%%) across %d receivers\n",
		100*rr.SourceWorstLoss, 100*rr.TrueWorstLoss, rr.SourceMembers)
	fmt.Printf("   ...from only %d aggregated reporters instead of %d\n",
		rr.DirectReporters, rr.Receivers)
}
