// Healthwatch: runs a burst-loss chaos scenario under a declarative
// SLO and shows the streaming health engine at work — per-zone
// verdicts with violation windows and witness samples, the health
// events as they landed on the bus, and the alert-triggered flight
// recorder dumps a post-mortem would start from.
//
//	go run ./examples/healthwatch
package main

import (
	"fmt"
	"log"
	"strings"

	"sharqfec"
)

// The SLO: the paper's headline claims, written as objectives. The
// latency bound is deliberately tight so burst loss produces some
// violations to look at.
const slo = `
# every loss recovers within 400ms at p95, judged over a 10s window
recovery_latency p95 <= 0.4 window=10 fast=2.5 min=4

# scoped NACK suppression keeps most NACKs unsent
suppression_ratio >= 0.5 window=10 min=8

# repairs stay inside sub-root scopes
repair_locality >= 0.6 window=10 min=8
`

func main() {
	log.SetFlags(0)

	spec, err := sharqfec.ParseSLOSpec(strings.NewReader(slo))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("objectives:")
	fmt.Print(indent(spec.String()))
	fmt.Println()

	fmt.Println("running SHARQFEC under Gilbert–Elliott burst loss (mean burst 8 pkts)...")
	res, err := sharqfec.RunChaos(sharqfec.ChaosConfig{
		Seed:       5,
		NumPackets: 512,
		Until:      60,
		Faults:     sharqfec.BurstLossPlan(8),
		Telemetry:  &sharqfec.TelemetryConfig{SLO: spec},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n\n", res)

	fmt.Print(res.Health.String())
	fmt.Println()

	if dumps := res.Telemetry.TriggeredDumps(); len(dumps) > 0 {
		fmt.Printf("forensics: %d flight-recorder dump(s) auto-triggered\n", len(dumps))
		d := dumps[0]
		fmt.Printf("  first at t=%.3fs — %s (%d events); tail:\n", d.T, d.Reason, len(d.Events))
		tail := d.Events
		if len(tail) > 5 {
			tail = tail[len(tail)-5:]
		}
		for _, line := range tail {
			fmt.Printf("    %s\n", line)
		}
	} else {
		fmt.Println("forensics: no dumps — every objective held all run")
	}
}

func indent(s string) string {
	out := ""
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		out += "  " + line + "\n"
	}
	return out
}
