// Wirecodec: shows the binary wire formats the protocols exchange, so a
// real datagram transport binding can interoperate with this
// implementation. It builds one of each packet type, hex-dumps the
// encodings, and round-trips them through the decoder.
//
//	go run ./examples/wirecodec
package main

import (
	"encoding/hex"
	"fmt"
	"log"

	"sharqfec/internal/packet"
)

func main() {
	log.SetFlags(0)

	packets := []packet.Packet{
		&packet.Data{Origin: 0, Seq: 160, Group: 10, Index: 0, GroupK: 16,
			Payload: []byte("first packet of group 10")},
		&packet.Repair{Origin: 5, Group: 10, Index: 18, GroupK: 16,
			NewMaxSeq: 19, Zone: 3, Payload: []byte{0xDE, 0xAD, 0xBE, 0xEF}},
		&packet.NACK{Origin: 11, Group: 10, LLC: 3, Needed: 2, MaxSeq: 176, Zone: 3,
			Ancestors: []packet.AncestorRTT{{ZCR: 5, RTT: 0.042}, {ZCR: 1, RTT: 0.081}}},
		&packet.Session{Origin: 11, Zone: 3, SentAt: 8.125, ZCR: 5,
			ZCRParentDist: 0.020, MaxSeq: 176,
			Entries: []packet.SessionEntry{{Peer: 12, SinceHeard: 0.4, RTT: 0.040, Echo: 7.7}}},
		&packet.ZCRChallenge{Origin: 5, Zone: 3, SentAt: 9.0},
		&packet.ZCRResponse{Origin: 1, Zone: 3, Challenger: 5, ProcDelay: 0},
		&packet.ZCRTakeover{Origin: 8, Zone: 3, DistToParent: 0.015},
	}

	for _, p := range packets {
		buf, err := p.MarshalBinary()
		if err != nil {
			log.Fatalf("%s: marshal: %v", p.Kind(), err)
		}
		fmt.Printf("%s (%d bytes on the wire)\n", p.Kind(), p.WireSize())
		fmt.Print(indent(hex.Dump(buf)))
		back, err := packet.Unmarshal(buf)
		if err != nil {
			log.Fatalf("%s: unmarshal: %v", p.Kind(), err)
		}
		if back.Kind() != p.Kind() || back.WireSize() != p.WireSize() {
			log.Fatalf("%s: round trip changed the packet", p.Kind())
		}
		fmt.Println()
	}
	fmt.Println("all seven packet types round-tripped")
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += "    " + s[start:i+1]
			start = i + 1
		}
	}
	return out
}
