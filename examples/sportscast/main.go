// Sportscast: the paper's motivating live-event scenario ("a live
// sporting event such as the Super Bowl") on the Figure-10 evaluation
// network. A CBR source streams to 112 receivers behind a heterogeneous
// lossy mesh; the example contrasts pure ARQ (SRM), non-scoped hybrid
// ARQ/FEC (ECSRM), and full SHARQFEC, showing how administrative scoping
// localizes repair traffic.
//
//	go run ./examples/sportscast
package main

import (
	"fmt"
	"log"

	"sharqfec"
)

func main() {
	log.SetFlags(0)

	fmt.Println("live stream: 1024 × 1000-byte packets at 800 kbit/s to 112 receivers")
	fmt.Println("loss: 13%–28% compound per receiver, repairs lossy too")
	fmt.Println()
	fmt.Printf("%-28s %12s %10s %12s %12s %11s\n",
		"protocol", "pkts/rcvr", "NACKs/rcvr", "src-visible", "repair-tail", "completion")

	type row struct {
		p    sharqfec.Protocol
		note string
	}
	for _, r := range []row{
		{sharqfec.SRM, "pure ARQ baseline"},
		{sharqfec.ECSRM, "hybrid ARQ/FEC, global scope"},
		{sharqfec.SHARQFEC, "scoped hybrid ARQ/FEC"},
	} {
		res, err := sharqfec.RunData(sharqfec.DataConfig{
			Protocol: r.p,
			Seed:     7,
		})
		if err != nil {
			log.Fatal(err)
		}
		// The repair tail is the traffic still flowing after the
		// source stops at t=16.24 s (Figure 14's long SRM tail).
		tail := res.AvgDataRepair.Window(16.3, 30)
		fmt.Printf("%-28s %12.1f %10.1f %12.0f %12.1f %10.1f%%\n",
			res.Protocol, res.AvgDataRepair.Sum(), res.AvgNACKs.Sum(),
			res.SourceDataRepair.Sum(), tail, 100*res.CompletionRate)
	}

	fmt.Println()
	fmt.Println("reading the table:")
	fmt.Println("  - FEC grouping (ECSRM) cuts both repair volume and NACKs vs SRM")
	fmt.Println("  - scoping (SHARQFEC) keeps repairs inside the zones that need them,")
	fmt.Println("    cutting what each receiver and the backbone/source must carry")
}
