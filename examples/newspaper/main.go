// Newspaper: the paper's other motivating workload — delivering "a large
// newspaper to a million subscribers". At that scale the binding
// constraint is session state and traffic, not data bandwidth: direct
// all-pairs RTT estimation needs O(n²) traffic and O(n) state per
// receiver. This example prints the paper's Figure-8 analytic table for
// the full 10,000,210-receiver national hierarchy, then *measures* the
// same effect on a scaled-down instance.
//
//	go run ./examples/newspaper
package main

import (
	"fmt"
	"log"

	"sharqfec"
)

func main() {
	log.SetFlags(0)

	fmt.Println("analytic: the paper's national distribution hierarchy")
	fmt.Println("(10 regions × 20 cities × 100 suburbs × 500 subscribers)")
	fmt.Println()
	fmt.Print(sharqfec.Figure8Report())

	fmt.Println()
	fmt.Println("measured: session traffic on a scaled-down hierarchy")
	top := sharqfec.NationalTopology(3, 4, 3, 6)
	res, err := sharqfec.RunSessionScaling(top, 11, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  members:               %d\n", res.Members)
	fmt.Printf("  scoped session pkts:   %d over 10 s\n", res.ScopedDeliveries)
	fmt.Printf("  flat session pkts:     %d over 10 s\n", res.FlatDeliveries)
	fmt.Printf("  traffic reduction:     %.1fx\n", res.Reduction)
	fmt.Printf("  state per node:        %d (scoped, worst case) vs %d (flat)\n",
		res.ScopedMaxState, res.FlatStatePerNode)
	fmt.Println()
	fmt.Println("the reduction grows with hierarchy depth and fanout: at the paper's")
	fmt.Println("scale each suburb subscriber tracks 630 peers instead of 10,000,210")
}
