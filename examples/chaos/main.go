// Chaos: drives the scripted fault-injection engine through its
// headline scenarios — a ZCR crash with timed re-election, a backbone
// link flap mid-burst, a zone partition that heals, and Gilbert–Elliott
// burst loss at equal mean rate compared against the Bernoulli
// baseline. Every run is deterministic for its seed.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"
	"strings"

	"sharqfec"
)

func main() {
	log.SetFlags(0)

	fmt.Println("1. ZCR crash: the first leaf-zone representative dies at t=9s")
	res, err := sharqfec.RunChaos(sharqfec.ChaosConfig{Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %s\n", res)
	fmt.Println("   the zone re-elects within a measurement bin; delivery is unharmed")
	fmt.Println()

	fmt.Println("2. Backbone flap: a mesh uplink fails for 1.5s during the burst")
	res, err = sharqfec.RunChaos(sharqfec.ChaosConfig{
		Seed:       11,
		NumPackets: 512,
		Faults:     sharqfec.BackboneFlapPlan(),
		Until:      60,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %s\n", res)
	fmt.Println("   routing heals over the lateral mesh ring; ARQ recovers the gap")
	fmt.Println()

	fmt.Println("3. Zone partition: a subtree is cut off for 3s, then healed")
	res, err = sharqfec.RunChaos(sharqfec.ChaosConfig{
		Seed:       17,
		NumPackets: 512,
		Faults:     sharqfec.ZonePartitionPlan(2, 8, 11),
		Until:      90,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %s\n", res)
	fmt.Println("   the isolated zone catches up from its ZCR after the heal")
	fmt.Println()

	fmt.Println("4. Burst loss at equal mean: Gilbert-Elliott vs Bernoulli")
	nacks := func(proto sharqfec.Protocol, plan *sharqfec.FaultPlan) int {
		r, err := sharqfec.RunData(sharqfec.DataConfig{
			Protocol:   proto,
			Seed:       5,
			NumPackets: 256,
			Until:      30,
			Faults:     plan,
		})
		if err != nil {
			log.Fatal(err)
		}
		return r.NACKsSent
	}
	burst := sharqfec.BurstLossPlan(8)
	srmB, srmG := nacks(sharqfec.SRM, nil), nacks(sharqfec.SRM, burst)
	shqB, shqG := nacks(sharqfec.SHARQFEC, nil), nacks(sharqfec.SHARQFEC, burst)
	fmt.Printf("   NACKs, Bernoulli -> bursts (mean burst 8 pkts, same mean loss):\n")
	fmt.Printf("   SRM      %4d -> %4d  (x%.2f)\n", srmB, srmG, float64(srmG)/float64(srmB))
	fmt.Printf("   SHARQFEC %4d -> %4d  (x%.2f)\n", shqB, shqG, float64(shqG)/float64(shqB))
	fmt.Println("   bursts inflate plain-ARQ NACKing; FEC groups absorb them")
	fmt.Println()

	fmt.Println("5. The same crash, scripted as a plan file")
	plan, err := sharqfec.ParseFaultPlan(strings.NewReader("9 crash 8\n"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   echo '9 crash 8' > plan.txt && sharqfec-sim -faults plan.txt\n")
	fmt.Printf("   parsed events: %v\n", plan.Events())
}
