package sharqfec

import (
	"sharqfec/internal/core"
	"sharqfec/internal/eventq"
	"sharqfec/internal/netsim"
	"sharqfec/internal/scoping"
	"sharqfec/internal/simrand"
	"sharqfec/internal/telemetry"
	"sharqfec/internal/topology"
)

// ReceiverReportResult measures the §7 extension: RTCP-style receiver
// reports aggregated through the ZCR hierarchy. The source should learn
// the session's worst reception quality from O(zones) summaries instead
// of hearing every receiver.
type ReceiverReportResult struct {
	// SourceWorstLoss is the worst loss fraction visible to the source
	// through the aggregated root-scope summaries.
	SourceWorstLoss float64
	// SourceMembers is how many receivers those summaries cover.
	SourceMembers int
	// TrueWorstLoss is the actual worst per-receiver raw loss fraction
	// observed during the run (before repair).
	TrueWorstLoss float64
	// DirectReporters counts distinct origins whose summaries the
	// source heard at root scope — the announcement load on the source.
	DirectReporters int
	Receivers       int
}

// RunReceiverReports streams the paper scenario over Figure-10 with
// every receiver publishing its raw loss fraction, and compares the
// source's aggregated view against ground truth.
func RunReceiverReports(seed uint64) (*ReceiverReportResult, error) {
	spec := topology.Figure10(topology.Figure10Params{})
	h, err := scoping.Build(spec.Zones)
	if err != nil {
		return nil, err
	}
	var q eventq.Queue
	src := simrand.New(seed)
	net := netsim.New(&q, spec.Graph, h, src)

	pcfg := core.DefaultConfig()
	pcfg.NumPackets = 512

	agents := make(map[topology.NodeID]*core.Agent)
	for _, m := range spec.Members() {
		ag, err := core.New(m, net, pcfg, src)
		if err != nil {
			return nil, err
		}
		agents[m] = ag
	}
	q.At(1, func(eventq.Time) {
		for _, ag := range agents {
			ag.Join()
		}
	})
	q.At(6, func(eventq.Time) { agents[spec.Source].StartSource() })
	q.RunUntil(30)

	worst, members := agents[spec.Source].Session().AggregatedReport(h.Root())
	res := &ReceiverReportResult{
		SourceWorstLoss: worst,
		SourceMembers:   int(members),
		Receivers:       len(spec.Receivers),
	}
	// Ground truth goes through the telemetry registry — one gauge per
	// receiver — so the "actual worst" is the same query a live metrics
	// endpoint would answer.
	reg := telemetry.NewRegistry()
	for _, m := range spec.Receivers {
		reg.Gauge(telemetry.Key{
			Name: "raw_loss_fraction", Node: m, Zone: scoping.NoZone,
		}).Set(agents[m].RawLossFraction())
	}
	if _, worst, ok := reg.MaxGauge("raw_loss_fraction"); ok {
		res.TrueWorstLoss = worst
	}
	res.DirectReporters = agents[spec.Source].Session().ReportersHeard(h.Root())
	return res, nil
}
