package sharqfec

import (
	"fmt"

	"sharqfec/internal/analysis"
	"sharqfec/internal/eventq"
	"sharqfec/internal/netsim"
	"sharqfec/internal/scoping"
	"sharqfec/internal/session"
	"sharqfec/internal/simrand"
	"sharqfec/internal/telemetry"
	"sharqfec/internal/telemetry/census"
	"sharqfec/internal/topology"
)

// ScalingSweepConfig shapes the measured Figure-8 sweep: a national
// hierarchy with fixed upper levels whose suburb population sweeps
// through Subscribers, each point measured with the census engine on a
// scoped and a flat (single-zone) session-only run.
type ScalingSweepConfig struct {
	// Regions/Cities/Suburbs fix the upper hierarchy (defaults 2/2/2).
	Regions, Cities, Suburbs int
	// Subscribers lists the per-suburb population sweep (default
	// 2,4,6,8).
	Subscribers []int
	Seed        uint64
	// Seconds of steady state measured per run (default 10).
	Seconds float64
	// Tolerance is the acceptable relative drift between the measured
	// and analytic state-reduction ratios before a row is flagged
	// (default 0.40). The measured ratio sits systematically below the
	// idealized model's — StateSize also counts ZCR link tables, and
	// small zones carry fixed session overheads the model ignores — and
	// converges toward it as populations grow; see EXPERIMENTS.md E20.
	Tolerance float64
	// Shards > 0 runs each census point on the zone-sharded parallel
	// engine with that many shards (see DataConfig.Shards). The
	// national session runs are lossless, so sharded and sequential
	// measurements agree exactly; sharding is what makes the 10⁵-
	// receiver points tractable. 0 keeps the sequential engine.
	Shards int
	// DesignateZCRs pre-seeds every zone's ZCR (the zone's lowest-ID
	// member; the source for the root zone) before the session layer
	// starts, modelling the paper's deployments where zone
	// representatives are configured rather than elected. Without it
	// every receiver probes its region zone on the short bootstrap
	// window and each probe floods the root scope — Θ(N²) hop events,
	// which at 10⁵ receivers is ~10¹⁰ and dwarfs the steady state being
	// measured. Designated runs skip only that bootstrap storm; duty
	// challenges, distance measurement and takeovers still run, and
	// bootstrap election cost itself is measured at small N (E20).
	DesignateZCRs bool
	// FlatCutoff bounds the receiver count up to which the flat
	// (unscoped) side is actually simulated. Above it the flat session
	// is O(N²) in state and messages — at 10⁵ receivers that is ~10¹⁰
	// RTT entries — so the flat columns switch to the analytic model
	// and the row is flagged FlatAnalytic. Default 4096.
	FlatCutoff int
}

// scalingMeasure is what one census-armed session-only run yields.
type scalingMeasure struct {
	peakState int64 // largest per-node session RTT table observed
	ctrlLink  int64 // session-message link crossings
	escape    int64 // crossings of region (level-1) zone boundaries
}

// RunScalingSweep measures the Figure-8 scaling claims: for each
// receiver count it runs the session layer census-armed on the scoped
// hierarchy and on the flattened topology, then lines the measured
// state tables, reduction ratios and control-traffic locality up
// against the analytic model, flagging drift beyond the tolerance.
// Points run concurrently on the shared sweep worker pool.
func RunScalingSweep(cfg ScalingSweepConfig) (*analysis.ScalingReport, error) {
	if cfg.Regions == 0 {
		cfg.Regions = 2
	}
	if cfg.Cities == 0 {
		cfg.Cities = 2
	}
	if cfg.Suburbs == 0 {
		cfg.Suburbs = 2
	}
	if len(cfg.Subscribers) == 0 {
		cfg.Subscribers = []int{2, 4, 6, 8}
	}
	if cfg.Seconds == 0 {
		cfg.Seconds = 10
	}
	if cfg.Tolerance == 0 {
		cfg.Tolerance = 0.40
	}
	if cfg.FlatCutoff == 0 {
		cfg.FlatCutoff = 4096
	}

	measure := func(spec *topology.Spec, acct, part []topology.ZoneSpec) (scalingMeasure, error) {
		if cfg.Shards > 0 {
			return runSessionCensusSharded(spec, acct, part, cfg.Seed, cfg.Seconds, cfg.Shards, cfg.DesignateZCRs)
		}
		return runSessionCensus(spec, acct, cfg.Seed, cfg.Seconds, cfg.DesignateZCRs)
	}

	points := make([]analysis.ScalingPoint, len(cfg.Subscribers))
	errs := make([]error, len(cfg.Subscribers))
	runIndexed(len(cfg.Subscribers), func(i int) {
		p := topology.NationalParams{
			Regions: cfg.Regions, Cities: cfg.Cities,
			Suburbs: cfg.Suburbs, SubscribersPerSuburb: cfg.Subscribers[i],
		}
		top := NationalTopology(cfg.Regions, cfg.Cities, cfg.Suburbs, cfg.Subscribers[i])
		// Both runs account against the scoped zone geometry — the
		// census is passive, so the flat protocol run can be measured
		// against the boundaries scoping would have enforced. The
		// partition (sharded runs) always uses the native zones too:
		// flattening changes scoping, not physical locality.
		scoped, err := measure(top.spec, top.spec.Zones, top.spec.Zones)
		if err != nil {
			errs[i] = err
			return
		}
		var flat scalingMeasure
		flatMeasured := p.TotalReceivers() <= cfg.FlatCutoff
		if flatMeasured {
			flat, err = measure(globalized(top.spec), top.spec.Zones, top.spec.Zones)
			if err != nil {
				errs[i] = err
				return
			}
		}

		// Analytic leaf-level row: the deepest (suburb) receivers carry
		// the most state, so they bound the scoped side; the flat side
		// is the all-pairs count.
		leaf := analysis.Figure8Table(p)[3]
		pt := analysis.ScalingPoint{
			Receivers:           p.TotalReceivers(),
			ScopedStateMeasured: scoped.peakState,
			FlatStateMeasured:   flat.peakState,
			ScopedStateAnalytic: leaf.RTTsMaintained,
			FlatStateAnalytic:   p.TotalReceivers(),
			ScopedMsgs:          scoped.ctrlLink,
			FlatMsgs:            flat.ctrlLink,
			FlatAnalytic:        !flatMeasured,
		}
		if scoped.peakState > 0 {
			if flatMeasured {
				pt.StateRatioMeasured = float64(flat.peakState) / float64(scoped.peakState)
			} else {
				// Hybrid ratio: measured scoped state against the
				// analytic flat table, so drift still reports how far
				// the scoped measurement sits from the model.
				pt.StateRatioMeasured = float64(pt.FlatStateAnalytic) / float64(scoped.peakState)
			}
		}
		pt.StateRatioAnalytic = leaf.StateReductionInv
		pt.StateDrift = pt.Drift()
		if scoped.ctrlLink > 0 {
			if flatMeasured {
				pt.MsgReduction = float64(flat.ctrlLink) / float64(scoped.ctrlLink)
			}
			pt.ScopedEscapeFrac = float64(scoped.escape) / float64(scoped.ctrlLink)
		}
		if flat.ctrlLink > 0 {
			pt.FlatEscapeFrac = float64(flat.escape) / float64(flat.ctrlLink)
		}
		points[i] = pt
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &analysis.ScalingReport{
		Topology: fmt.Sprintf("national %dx%dx%d, %d s/run, seed %d",
			cfg.Regions, cfg.Cities, cfg.Suburbs, int(cfg.Seconds), cfg.Seed),
		Tolerance: cfg.Tolerance,
		Points:    points,
	}, nil
}

// runSessionCensus runs the session layer alone on spec with the
// census engine armed: link matrices bound, per-member state probes
// registered, epoch snapshots every virtual second. The protocol runs
// against spec.Zones while the census accounts against acctZones, so a
// flat run can be measured against the scoped zone geometry. It
// returns the census-measured state peak and control-traffic matrix
// entries.
func runSessionCensus(spec *topology.Spec, acctZones []topology.ZoneSpec, seed uint64, seconds float64, designate bool) (scalingMeasure, error) {
	h, err := scoping.Build(spec.Zones)
	if err != nil {
		return scalingMeasure{}, err
	}
	hAcct, err := scoping.Build(acctZones)
	if err != nil {
		return scalingMeasure{}, err
	}
	var designated map[scoping.ZoneID]topology.NodeID
	if designate {
		designated = designatedZCRs(h, spec.Source)
	}
	var q eventq.Queue
	src := simrand.New(seed)
	net := netsim.New(&q, spec.Graph, h, src)
	cen := census.New(telemetry.NewRegistry(), hAcct, spec.Graph.NumNodes())
	cen.BindLinks(spec.Graph)
	cen.BindQueue(&q)
	net.SetHopTap(cen.ObserveHop)
	for _, m := range spec.Members() {
		mgr := session.New(m, net, session.DefaultConfig(), src.StreamN("session", int(m)))
		net.Attach(m, sessionOnlyAgent{mgr})
		cen.SetProbe(m, func() census.State {
			return census.State{
				Timers:         int64(mgr.CensusTimers()),
				SessionEntries: int64(mgr.StateSize()),
			}
		})
		isSource := m == spec.Source
		q.At(1, func(eventq.Time) {
			seedDesignated(mgr, designated)
			mgr.Start(isSource)
		})
	}
	for t := 2.0; t <= 1+seconds; t++ {
		at := t
		q.At(eventq.Time(at), func(now eventq.Time) { cen.Snapshot(float64(now)) })
	}
	q.RunUntil(secondsToTime(1 + seconds))
	cen.Snapshot(1 + seconds)

	return scalingMeasure{
		peakState: cen.PeakSessionEntries(),
		ctrlLink:  cen.LinkPkts(census.ClassControl),
		// Level 1 is the region tier of the accounting hierarchy:
		// traffic crossing it has escaped the region scoping should
		// have confined it to.
		escape: cen.BoundaryPktsAtLevel(1, census.ClassControl),
	}, nil
}

// runSessionCensusSharded is runSessionCensus on the zone-sharded
// parallel engine: partZones drives the physical partition (always the
// native zone geometry, even when the protocol runs globalized), every
// shard view feeds the one census hop tap (ObserveHop is atomic), and
// member starts plus epoch snapshots run at Sync barriers so they see
// a globally consistent virtual time. The national sweeps are
// lossless, so this measures exactly what the sequential engine would.
func runSessionCensusSharded(spec *topology.Spec, acctZones, partZones []topology.ZoneSpec, seed uint64, seconds float64, shards int, designate bool) (scalingMeasure, error) {
	h, err := scoping.Build(spec.Zones)
	if err != nil {
		return scalingMeasure{}, err
	}
	hAcct, err := scoping.Build(acctZones)
	if err != nil {
		return scalingMeasure{}, err
	}
	var designated map[scoping.ZoneID]topology.NodeID
	if designate {
		designated = designatedZCRs(h, spec.Source)
	}
	owner, lookahead := topology.PartitionByZone(spec.Graph, partZones, shards)
	if lookahead <= 0 {
		return scalingMeasure{}, fmt.Errorf("sharded census: partition yields no positive lookahead")
	}
	src := simrand.New(seed)
	grp := eventq.NewShardGroup(shards, lookahead)
	cluster, err := netsim.NewCluster(grp, spec.Graph, h, src, owner)
	if err != nil {
		return scalingMeasure{}, err
	}
	cen := census.New(telemetry.NewRegistry(), hAcct, spec.Graph.NumNodes())
	cen.BindLinks(spec.Graph)
	cen.BindQueue(grp.Queue(0))
	for i := 0; i < cluster.NumShards(); i++ {
		cluster.Shard(i).SetHopTap(cen.ObserveHop)
	}
	members := spec.Members()
	mgrs := make([]*session.Manager, len(members))
	for i, m := range members {
		mgr := session.New(m, cluster.NetFor(m), session.DefaultConfig(), src.StreamN("session", int(m)))
		cluster.NetFor(m).Attach(m, sessionOnlyAgent{mgr})
		mgrs[i] = mgr
		cen.SetProbe(m, func() census.State {
			return census.State{
				Timers:         int64(mgr.CensusTimers()),
				SessionEntries: int64(mgr.StateSize()),
			}
		})
	}
	grp.Sync(1, func(eventq.Time) {
		for i, m := range members {
			seedDesignated(mgrs[i], designated)
			mgrs[i].Start(m == spec.Source)
		}
	})
	for t := 2.0; t <= 1+seconds; t++ {
		grp.Sync(eventq.Time(t), func(now eventq.Time) { cen.Snapshot(float64(now)) })
	}
	grp.Run(secondsToTime(1 + seconds))
	cen.Snapshot(1 + seconds)

	return scalingMeasure{
		peakState: cen.PeakSessionEntries(),
		ctrlLink:  cen.LinkPkts(census.ClassControl),
		escape:    cen.BoundaryPktsAtLevel(1, census.ClassControl),
	}, nil
}

// designatedZCRs returns the deployment-style ZCR assignment for every
// zone of h: the data source for the root zone (Start(true) declares it
// there anyway) and the lowest-ID member elsewhere. Purely a function
// of the hierarchy, so sequential and sharded runs seed identically and
// shard-count invariance is preserved.
func designatedZCRs(h *scoping.Hierarchy, source topology.NodeID) map[scoping.ZoneID]topology.NodeID {
	d := make(map[scoping.ZoneID]topology.NodeID, h.NumZones())
	for z := scoping.ZoneID(0); int(z) < h.NumZones(); z++ {
		if h.Parent(z) == scoping.NoZone {
			d[z] = source
			continue
		}
		best := topology.NoNode
		for _, m := range h.Members(z) {
			if best == topology.NoNode || m < best {
				best = m
			}
		}
		if best != topology.NoNode {
			d[z] = best
		}
	}
	return d
}

// seedDesignated pre-installs the designated ZCR of every zone in the
// manager's chain. A nil map (designation off) is a no-op.
func seedDesignated(mgr *session.Manager, designated map[scoping.ZoneID]topology.NodeID) {
	if designated == nil {
		return
	}
	for _, z := range mgr.Chain() {
		if d, ok := designated[z]; ok {
			mgr.SeedZCR(z, d)
		}
	}
}
