package sharqfec

import (
	"reflect"
	"strings"
	"testing"
)

// TestRunChaosZCRCrash is the headline dynamics scenario: the first
// leaf-zone ZCR crashes mid-stream, the zone re-elects a live
// replacement, and every surviving receiver still recovers the whole
// stream.
func TestRunChaosZCRCrash(t *testing.T) {
	res, err := RunChaos(ChaosConfig{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reelections) != 1 {
		t.Fatalf("got %d re-elections, want 1", len(res.Reelections))
	}
	re := res.Reelections[0]
	if re.Crashed != 8 {
		t.Errorf("crashed node = %d, want 8", re.Crashed)
	}
	if re.NewZCR < 0 || re.NewZCR == re.Crashed {
		t.Errorf("new ZCR = %d, want a live replacement", re.NewZCR)
	}
	if re.RecoverySeconds < 0 {
		t.Error("zone never agreed on a replacement ZCR")
	}
	if re.RecoverySeconds > 30 {
		t.Errorf("re-election took %.1fs, want well under the run", re.RecoverySeconds)
	}
	if res.CompletionRate != 1 {
		t.Errorf("survivor completion = %v, want 1 despite the crash", res.CompletionRate)
	}
	if !res.Verified {
		t.Error("recovered payloads did not match the source")
	}
	if res.LocalRepairFrac == 0 {
		t.Error("no zone-local repairs observed")
	}
	if len(res.FaultLog) != 1 || !strings.Contains(res.FaultLog[0], "crash 8") {
		t.Errorf("fault log = %v, want one crash entry", res.FaultLog)
	}
}

// TestRunChaosBackboneFlap takes a backbone link down mid-burst and
// back up; routing heals around it and delivery still completes.
func TestRunChaosBackboneFlap(t *testing.T) {
	res, err := RunChaos(ChaosConfig{
		Seed:       11,
		NumPackets: 512,
		Faults:     BackboneFlapPlan(),
		Until:      60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionRate != 1 {
		t.Errorf("completion = %v, want 1 (reroute over the mesh ring)", res.CompletionRate)
	}
	if !res.Verified {
		t.Error("recovered payloads did not match the source")
	}
	if len(res.FaultLog) != 2 {
		t.Errorf("fault log = %v, want down+up", res.FaultLog)
	}
}

// TestRunChaosDeterminism runs a mixed fault scenario twice at one seed
// and requires identical results.
func TestRunChaosDeterminism(t *testing.T) {
	run := func() *ChaosResult {
		res, err := RunChaos(ChaosConfig{
			Topology:   ChainTopology(6, 0.08),
			Seed:       42,
			NumPackets: 64,
			Until:      50,
			Faults: NewFaultPlan().
				Crash(9, 1).
				LinkDown(10, 3).LinkUp(12, 3).
				GilbertLink(14, 4, 0.2, 5),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical seeds diverged:\n a: %+v\n b: %+v", a, b)
	}
}

func TestRunChaosRejectsSRM(t *testing.T) {
	if _, err := RunChaos(ChaosConfig{Protocol: SRM}); err == nil {
		t.Fatal("RunChaos accepted SRM, want error (no ZCRs to re-elect)")
	}
}

// TestEmptyFaultPlanZeroDrift is the byte-identity contract: attaching
// a nil or empty plan to RunData must reproduce the fault-free result
// exactly, for both protocol families.
func TestEmptyFaultPlanZeroDrift(t *testing.T) {
	for _, proto := range []Protocol{SHARQFEC, SRM} {
		run := func(plan *FaultPlan) *DataResult {
			res, err := RunData(DataConfig{
				Protocol:   proto,
				Topology:   ChainTopology(4, 0.08),
				Seed:       1,
				NumPackets: 64,
				Until:      90,
				Faults:     plan,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		bare := run(nil)
		empty := run(NewFaultPlan())
		if !reflect.DeepEqual(bare, empty) {
			t.Errorf("%s: empty fault plan drifted from fault-free run:\n bare:  %+v\n empty: %+v", proto, bare, empty)
		}
	}
}

// TestGilbertDegradesSRMMore checks the burst-loss claim: at equal mean
// loss, Gilbert–Elliott bursts inflate plain-ARQ SRM's NACK traffic
// while full SHARQFEC absorbs bursts inside FEC groups and NACKs less.
func TestGilbertDegradesSRMMore(t *testing.T) {
	nacks := func(proto Protocol, plan *FaultPlan) int {
		res, err := RunData(DataConfig{
			Protocol:   proto,
			Seed:       5,
			NumPackets: 256,
			Until:      30,
			Faults:     plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.CompletionRate != 1 {
			t.Fatalf("%s completion = %v, want 1", proto, res.CompletionRate)
		}
		return res.NACKsSent
	}
	srmBern := nacks(SRM, nil)
	srmGE := nacks(SRM, BurstLossPlan(8))
	shqBern := nacks(SHARQFEC, nil)
	shqGE := nacks(SHARQFEC, BurstLossPlan(8))
	srmRatio := float64(srmGE) / float64(srmBern)
	shqRatio := float64(shqGE) / float64(shqBern)
	if srmRatio <= shqRatio {
		t.Errorf("burst-loss NACK inflation: SRM ×%.2f vs SHARQFEC ×%.2f, want SRM hit harder", srmRatio, shqRatio)
	}
	if shqRatio >= 1 {
		t.Errorf("SHARQFEC NACKs grew ×%.2f under bursts, want FEC groups to absorb them", shqRatio)
	}
}

func TestParseFaultPlanFacade(t *testing.T) {
	p, err := ParseFaultPlan(strings.NewReader("9 crash 8\n10.5 link-down 3\n# note\n12 link-up 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Empty() {
		t.Fatal("parsed plan reports empty")
	}
	want := []string{"9 crash 8", "10.5 link-down 3", "12 link-up 3"}
	if !reflect.DeepEqual(p.Events(), want) {
		t.Errorf("Events() = %v, want %v", p.Events(), want)
	}
	if _, err := ParseFaultPlan(strings.NewReader("9 melt-down 8")); err == nil {
		t.Error("bad keyword accepted")
	}
	var nilPlan *FaultPlan
	if !nilPlan.Empty() {
		t.Error("nil plan should be empty")
	}
}

// TestRunChaosRestart crashes a ZCR and restarts it as a late joiner;
// the node must count as live again and catch up on the stream.
func TestRunChaosRestart(t *testing.T) {
	res, err := RunChaos(ChaosConfig{
		Seed:       13,
		NumPackets: 256,
		Faults:     NewFaultPlan().Crash(8, 8).Restart(20, 8),
		Until:      90,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionRate != 1 {
		t.Errorf("completion = %v, want 1 including the restarted node", res.CompletionRate)
	}
	if len(res.FaultLog) != 2 {
		t.Errorf("fault log = %v, want crash+restart", res.FaultLog)
	}
}
