package sharqfec

import (
	"sharqfec/internal/analysis"
	"sharqfec/internal/eventq"
	"sharqfec/internal/netsim"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/session"
	"sharqfec/internal/simrand"
	"sharqfec/internal/topology"
)

// ZCRResult reports a §6.1 ZCR-election experiment: whether every zone
// elected the receiver closest to its parent ZCR, and how the membership
// converged.
type ZCRResult struct {
	Topology string
	// PerZone maps zone ID → (elected, expected) node IDs as seen by
	// the zone's members (unanimity required for Elected to be set).
	PerZone map[int]ZoneElection
	// Correct is true when every zone unanimously elected the expected
	// node.
	Correct bool
	// Takeovers counts ZCR changes observed across all members — the
	// paper reports elections settling within one or two challenges.
	Takeovers int
}

// ZoneElection is one zone's outcome.
type ZoneElection struct {
	Elected   int // -1 when members disagree or none elected
	Expected  int
	Unanimous bool
}

// RunZCRElection runs the session layer alone on a topology and checks
// that every zone elects its closest receiver as ZCR (§5.2's guarantee:
// "the challenge process always results in the closest receiver in the
// zone being elected").
func RunZCRElection(top *Topology, seed uint64, until float64) (*ZCRResult, error) {
	if top == nil {
		top = Figure10Topology()
	}
	if until == 0 {
		until = 30
	}
	spec := top.spec
	h, err := scoping.Build(spec.Zones)
	if err != nil {
		return nil, err
	}
	var q eventq.Queue
	src := simrand.New(seed)
	net := netsim.New(&q, spec.Graph, h, src)
	mgrs := make(map[topology.NodeID]*session.Manager)
	for _, m := range spec.Members() {
		mgr := session.New(m, net, session.DefaultConfig(), src.StreamN("session", int(m)))
		mgrs[m] = mgr
		net.Attach(m, sessionOnlyAgent{mgr})
	}
	q.At(1, func(eventq.Time) {
		for _, m := range spec.Members() {
			mgrs[m].Start(m == spec.Source)
		}
	})
	q.RunUntil(secondsToTime(until))

	res := &ZCRResult{Topology: spec.Name, PerZone: map[int]ZoneElection{}, Correct: true}
	tree := spec.Graph.SPFTree(spec.Source)
	for z := scoping.ZoneID(0); int(z) < h.NumZones(); z++ {
		if h.Parent(z) == scoping.NoZone {
			continue
		}
		// Expected: the zone member closest (by latency) to the source
		// along the delivery tree — with nested zones rooted at
		// subtree heads this is also the member closest to the parent
		// ZCR.
		expected := topology.NoNode
		best := eventq.Duration(1e18)
		for _, m := range h.Members(z) {
			if tree.Dist[m] < best {
				best = tree.Dist[m]
				expected = m
			}
		}
		elected := topology.NoNode
		unanimous := true
		for i, m := range h.Members(z) {
			got := mgrs[m].ZCR(z)
			if i == 0 {
				elected = got
			} else if got != elected {
				unanimous = false
			}
		}
		el := ZoneElection{Elected: int(elected), Expected: int(expected), Unanimous: unanimous}
		if !unanimous {
			el.Elected = -1
		}
		res.PerZone[int(z)] = el
		if !unanimous || elected != expected {
			res.Correct = false
		}
	}
	for _, m := range spec.Members() {
		res.Takeovers += mgrs[m].Elections
	}
	return res, nil
}

type sessionOnlyAgent struct{ m *session.Manager }

func (a sessionOnlyAgent) Receive(now eventq.Time, d netsim.Delivery) { a.m.Receive(now, d.Pkt) }

// SessionScalingResult compares scoped SHARQFEC session traffic with the
// flat all-pairs equivalent on the same topology (experiment E13; the
// measured counterpart of Figure 8).
type SessionScalingResult struct {
	Topology         string
	Members          int
	ScopedDeliveries int
	FlatDeliveries   int
	Reduction        float64 // flat ÷ scoped
	ScopedMaxState   int     // worst-case peers tracked by one member
	FlatStatePerNode int
}

// RunSessionScaling measures session-message deliveries over `seconds`
// of steady state, with the topology's zone hierarchy and with a single
// flat zone.
func RunSessionScaling(top *Topology, seed uint64, seconds float64) (*SessionScalingResult, error) {
	if top == nil {
		top = NationalTopology(2, 3, 4, 5)
	}
	if seconds == 0 {
		seconds = 10
	}
	run := func(spec *topology.Spec) (int, int, error) {
		h, err := scoping.Build(spec.Zones)
		if err != nil {
			return 0, 0, err
		}
		var q eventq.Queue
		src := simrand.New(seed)
		net := netsim.New(&q, spec.Graph, h, src)
		deliveries := 0
		net.AddTap(func(_ eventq.Time, _ topology.NodeID, d netsim.Delivery) {
			if d.Pkt.Kind() == packet.TypeSession {
				deliveries++
			}
		})
		mgrs := make([]*session.Manager, 0, len(spec.Members()))
		for _, m := range spec.Members() {
			mgr := session.New(m, net, session.DefaultConfig(), src.StreamN("session", int(m)))
			mgrs = append(mgrs, mgr)
			net.Attach(m, sessionOnlyAgent{mgr})
		}
		q.At(1, func(eventq.Time) {
			for i, m := range spec.Members() {
				mgrs[i].Start(m == spec.Source)
			}
		})
		q.RunUntil(secondsToTime(1 + seconds))
		maxState := 0
		for _, m := range mgrs {
			if s := m.StateSize(); s > maxState {
				maxState = s
			}
		}
		return deliveries, maxState, nil
	}

	scoped, scopedState, err := run(top.spec)
	if err != nil {
		return nil, err
	}
	flat, _, err := run(globalized(top.spec))
	if err != nil {
		return nil, err
	}
	res := &SessionScalingResult{
		Topology:         top.spec.Name,
		Members:          len(top.spec.Members()),
		ScopedDeliveries: scoped,
		FlatDeliveries:   flat,
		ScopedMaxState:   scopedState,
		FlatStatePerNode: len(top.spec.Members()) - 1,
	}
	if scoped > 0 {
		res.Reduction = float64(flat) / float64(scoped)
	}
	return res, nil
}

// CascadeReport returns the Figure-2 redundancy-cascade expectations for
// the reproduction's Figure-10 topology (extension; validated against
// the simulator's converged injection predictors in the test suite).
func CascadeReport() string { return analysis.CascadeReport(16) }

// Figure1Report returns the §3.1 analytic example (experiment E1).
func Figure1Report() string { return analysis.Figure1Report() }

// Figure8Report returns the national-hierarchy state table (E2) for the
// paper's parameters.
func Figure8Report() string { return analysis.Figure8Report(topology.PaperNational()) }

// Figure8ReportFor returns the table for custom hierarchy parameters.
func Figure8ReportFor(regions, cities, suburbs, subscribers int) string {
	return analysis.Figure8Report(topology.NationalParams{
		Regions: regions, Cities: cities,
		Suburbs: suburbs, SubscribersPerSuburb: subscribers,
	})
}
