package sharqfec

import (
	"bytes"
	"fmt"
	"io"

	"sharqfec/internal/core"
	"sharqfec/internal/eventq"
	"sharqfec/internal/faults"
	"sharqfec/internal/netsim"
	"sharqfec/internal/scoping"
	"sharqfec/internal/simrand"
	"sharqfec/internal/telemetry/health"
	"sharqfec/internal/topology"
)

// FaultPlan is a deterministic timeline of scripted network faults —
// link failures, node crashes and restarts, member leaves, zone
// partitions, and Gilbert–Elliott burst-loss takeovers — replayed
// against a running simulation. A nil or empty plan changes nothing:
// runs are byte-identical to fault-free runs at the same seed.
type FaultPlan struct {
	plan faults.Plan
}

// NewFaultPlan returns an empty plan for the chainable builders below.
func NewFaultPlan() *FaultPlan { return &FaultPlan{} }

// ParseFaultPlan reads the plan-file format (one `<seconds> <keyword>
// <args...>` event per line; '#' comments):
//
//	10.5 link-down 3
//	12.0 link-up 3
//	9.0  crash 8
//	20.0 restart 8
//	9.0  leave 17
//	10.0 partition-zone 2
//	14.0 heal-zone 2
//	0    gilbert-link 3 0.08 6
//	0    gilbert-all 0.08 6
//	0    gilbert-equal-mean 6
func ParseFaultPlan(r io.Reader) (*FaultPlan, error) {
	p, err := faults.ParsePlan(r)
	if err != nil {
		return nil, err
	}
	return &FaultPlan{plan: *p}, nil
}

// Empty reports whether the plan schedules no events.
func (p *FaultPlan) Empty() bool {
	return p == nil || p.plan.Empty()
}

// Events renders the plan's timeline in plan-file syntax.
func (p *FaultPlan) Events() []string {
	if p == nil {
		return nil
	}
	out := make([]string, len(p.plan.Events))
	for i, e := range p.plan.Events {
		out[i] = e.String()
	}
	return out
}

// LinkDown schedules a link failure at time at (seconds).
func (p *FaultPlan) LinkDown(at float64, link int) *FaultPlan {
	p.plan.LinkDown(at, link)
	return p
}

// LinkUp schedules a link recovery.
func (p *FaultPlan) LinkUp(at float64, link int) *FaultPlan {
	p.plan.LinkUp(at, link)
	return p
}

// Crash schedules a member failure: its agent stops sending and
// reacting (the §3.2/§5.2 ZCR failure model).
func (p *FaultPlan) Crash(at float64, node int) *FaultPlan {
	p.plan.Crash(at, topology.NodeID(node))
	return p
}

// Restart schedules a crashed member's revival as a fresh late joiner.
func (p *FaultPlan) Restart(at float64, node int) *FaultPlan {
	p.plan.Restart(at, topology.NodeID(node))
	return p
}

// Leave schedules a member's clean departure from the session.
func (p *FaultPlan) Leave(at float64, node int) *FaultPlan {
	p.plan.Leave(at, topology.NodeID(node))
	return p
}

// PartitionZone schedules the isolation of a zone: every link joining
// its members to the rest of the network goes down.
func (p *FaultPlan) PartitionZone(at float64, zone int) *FaultPlan {
	p.plan.PartitionZone(at, scoping.ZoneID(zone))
	return p
}

// HealZone re-enables the links a matching PartitionZone disabled.
func (p *FaultPlan) HealZone(at float64, zone int) *FaultPlan {
	p.plan.HealZone(at, scoping.ZoneID(zone))
	return p
}

// GilbertLink replaces one link's Bernoulli loss with a Gilbert–Elliott
// burst process (both directions).
func (p *FaultPlan) GilbertLink(at float64, link int, meanLoss, burstLen float64) *FaultPlan {
	p.plan.GilbertLink(at, link, meanLoss, burstLen)
	return p
}

// GilbertAll installs the burst process on every link.
func (p *FaultPlan) GilbertAll(at float64, meanLoss, burstLen float64) *FaultPlan {
	p.plan.GilbertAll(at, meanLoss, burstLen)
	return p
}

// GilbertEqualMean installs per-link burst processes whose mean equals
// each link direction's configured Bernoulli rate — bursty arrivals at
// identical long-run loss, the comparison i.i.d. analyses assume away.
func (p *FaultPlan) GilbertEqualMean(at float64, burstLen float64) *FaultPlan {
	p.plan.GilbertEqualMean(at, burstLen)
	return p
}

// Preset plans for the Figure-10 topology.

// ZCRCrashPlan crashes node 8 — the first leaf-zone ZCR — at t=9 s,
// mid-stream: the scenario of RunZCRFailover, as a scriptable plan.
func ZCRCrashPlan() *FaultPlan {
	return NewFaultPlan().Crash(9, 8)
}

// BackboneFlapPlan takes the source→mesh backbone link of mesh node 4
// (the highest-loss subtree) down at t=10.5 s and restores it at
// t=12 s, forcing that subtree onto the lateral mesh ring and back.
func BackboneFlapPlan() *FaultPlan {
	return NewFaultPlan().LinkDown(10.5, 3).LinkUp(12, 3)
}

// BurstLossPlan replaces every link's Bernoulli loss with Gilbert–
// Elliott bursts of the given mean length at the same per-link mean
// rate, from the start of the run.
func BurstLossPlan(burstLen float64) *FaultPlan {
	return NewFaultPlan().GilbertEqualMean(0, burstLen)
}

// ZonePartitionPlan isolates a zone between at and healAt seconds.
func ZonePartitionPlan(zone int, at, healAt float64) *FaultPlan {
	return NewFaultPlan().PartitionZone(at, zone).HealZone(healAt, zone)
}

// ChaosConfig parameterizes a fault-injection experiment on the full
// protocol. The zero value (plus a plan) runs SHARQFEC on Figure-10
// with 512 packets, join at 1 s, source on at 6 s, until 90 s.
type ChaosConfig struct {
	// Protocol must be a SHARQFEC variant (SRM has no ZCRs to re-elect;
	// compare it under faults via DataConfig.Faults instead).
	Protocol Protocol
	Topology *Topology
	Seed     uint64
	// NumPackets defaults to 512 (a multiple of GroupK).
	NumPackets int
	GroupK     int
	// JoinAt / SourceOnAt / Until default to 1 s / 6 s / 90 s.
	JoinAt, SourceOnAt, Until float64
	// Faults defaults to ZCRCrashPlan().
	Faults *FaultPlan
	// Telemetry configures extra exports (JSONL trace, snapshot
	// interval, ring size). RunChaos keeps a bus, metrics registry,
	// span assembler and 512-event flight recorder running even when
	// this is nil — its result counters are registry-backed, and
	// anomalous endings dump a span ledger with the event tail.
	Telemetry *TelemetryConfig
}

func (c *ChaosConfig) applyDefaults() {
	if c.Protocol == "" {
		c.Protocol = SHARQFEC
	}
	if c.Topology == nil {
		c.Topology = Figure10Topology()
	}
	if c.NumPackets == 0 {
		c.NumPackets = 512
	}
	if c.JoinAt == 0 {
		c.JoinAt = 1
	}
	if c.SourceOnAt == 0 {
		c.SourceOnAt = 6
	}
	if c.Until == 0 {
		c.Until = 90
	}
	if c.Faults == nil {
		c.Faults = ZCRCrashPlan()
	}
}

// Reelection reports the session's recovery from one scripted crash.
type Reelection struct {
	// Crashed is the failed node and Zone its leaf zone (-1 when the
	// crashed node was not a zone member).
	Crashed, Zone int
	// NewZCR is the replacement the zone's surviving members agreed on
	// (-1 if they never agreed on a live one).
	NewZCR int
	// CrashAt is when the crash fired; RecoverySeconds is how long the
	// zone took to agree on a live replacement ZCR afterwards, sampled
	// on the 0.1 s measurement grid (-1 if it never recovered).
	CrashAt, RecoverySeconds float64
}

// ChaosResult reports a fault-injection run: delivery despite the
// faults, ZCR failover timing, and repair-traffic localization.
type ChaosResult struct {
	Protocol  Protocol
	Topology  string
	Receivers int

	// CompletionRate is the fraction of (receiver, group) pairs fully
	// recovered by live members (crashed-and-not-restarted and departed
	// members excluded).
	CompletionRate float64
	// Verified is true when every recovered payload matched the source.
	Verified bool
	// Reelections has one entry per scripted crash of a zone member.
	Reelections []Reelection
	// LocalRepairFrac is the fraction of repair packets delivered under
	// a non-global scope (the localization claim under dynamics).
	LocalRepairFrac float64
	// FaultDrops counts packets that died on administratively-down
	// links; FaultLog is the timeline of faults as applied.
	FaultDrops int
	FaultLog   []string

	NACKsSent, RepairsSent int

	// FlightRecord is the flight recorder's control-plane tail, dumped
	// only when the run ended anomalously (incomplete delivery among
	// survivors, or a verification failure).
	FlightRecord []string
	// Health carries the per-zone SLO verdicts when the run declared
	// objectives (ChaosConfig.Telemetry.SLO); nil otherwise. A chaos
	// scenario passes only if delivery completed, payloads verified, AND
	// Health (when present) reports no violations.
	Health *health.Report
	// Telemetry is the full observability report for the run.
	Telemetry *TelemetryReport
}

// RunChaos runs the full protocol against a scripted fault plan and
// reports recovery and localization metrics.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	cfg.applyDefaults()
	if err := cfg.Telemetry.validate(); err != nil {
		return nil, err
	}
	opts, ok := cfg.Protocol.options()
	if !ok {
		return nil, fmt.Errorf("sharqfec: RunChaos needs a SHARQFEC variant, got %q", cfg.Protocol)
	}

	spec := cfg.Topology.spec
	if !opts.Scoping {
		spec = globalized(spec)
	}
	if !cfg.Faults.Empty() {
		// The plan mutates link state; never contaminate a shared spec.
		s := *spec
		s.Graph = spec.Graph.Clone()
		spec = &s
	}
	h, err := scoping.Build(spec.Zones)
	if err != nil {
		return nil, err
	}
	var q eventq.Queue
	src := simrand.New(cfg.Seed)
	net := netsim.New(&q, spec.Graph, h, src)

	// Chaos runs always carry telemetry: the result's traffic counters
	// come from the metrics registry, and the flight recorder preserves
	// the control-plane tail for anomalous endings.
	tcfg := TelemetryConfig{}
	if cfg.Telemetry != nil {
		tcfg = *cfg.Telemetry
	}
	if tcfg.FlightRecorder <= 0 {
		tcfg.FlightRecorder = 512
	}
	// Chaos runs are exactly where causal recovery spans earn their keep:
	// always assemble them, so anomalous endings can report which zone
	// and mechanism each stranded loss died in.
	tcfg.Spans = true
	tel := startTelemetry(&tcfg, &q, h, spec.Graph.NumNodes(), cfg.Until)
	net.SetTelemetry(tel.bus)

	pcfg := core.DefaultConfig()
	pcfg.Source = spec.Source
	pcfg.NumPackets = cfg.NumPackets
	pcfg.Options = opts
	pcfg.Telemetry = tel.bus
	if cfg.GroupK > 0 {
		pcfg.GroupK = cfg.GroupK
	}

	type nodeGroup struct {
		node  topology.NodeID
		group uint32
	}
	completed := make(map[nodeGroup]bool)
	verified := true
	agents := make(map[topology.NodeID]*core.Agent, len(spec.Receivers)+1)
	// allAgents keeps every agent ever created (creation order), including
	// crashed ones a restart replaced in the map: their stranded losses
	// still need terminal loss_unrecovered events at session end.
	var allAgents []*core.Agent
	var sourceAgent *core.Agent
	wire := func(m topology.NodeID, ag *core.Agent) {
		ag.OnComplete = func(_ eventq.Time, gid uint32, data [][]byte) {
			completed[nodeGroup{m, gid}] = true
			want := sourceAgent.SentGroup(gid)
			for i := range want {
				if !bytes.Equal(data[i], want[i]) {
					verified = false
				}
			}
		}
	}
	for _, m := range spec.Members() {
		ag, err := core.New(m, net, pcfg, src)
		if err != nil {
			return nil, err
		}
		agents[m] = ag
		allAgents = append(allAgents, ag)
		if m == spec.Source {
			sourceAgent = ag
			continue
		}
		wire(m, ag)
	}

	res := &ChaosResult{
		Protocol:  cfg.Protocol,
		Topology:  spec.Name,
		Receivers: len(spec.Receivers),
	}
	gone := make(map[topology.NodeID]bool) // crashed or departed, not restarted

	eng := faults.NewEngine(net, src, &cfg.Faults.plan)
	eng.Telemetry = tel.bus
	eng.OnCrash = func(now eventq.Time, node topology.NodeID) {
		ag, ok := agents[node]
		if !ok {
			return
		}
		ag.Stop()
		gone[node] = true
		zone := h.LeafZone(node)
		rec := Reelection{
			Crashed: int(node), Zone: int(zone), NewZCR: -1,
			CrashAt: now.Seconds(), RecoverySeconds: -1,
		}
		res.Reelections = append(res.Reelections, rec)
		if zone == scoping.NoZone {
			return
		}
		idx := len(res.Reelections) - 1
		// Sample on the paper's 0.1 s measurement grid until the zone's
		// surviving members unanimously report a live replacement ZCR.
		var poll func(eventq.Time)
		poll = func(pnow eventq.Time) {
			if zcr, ok := zoneAgreement(h, agents, zone, node); ok {
				r := &res.Reelections[idx]
				r.NewZCR = int(zcr)
				r.RecoverySeconds = pnow.Seconds() - r.CrashAt
				return
			}
			if pnow.Seconds() < cfg.Until {
				q.After(0.1, poll)
			}
		}
		q.After(0.1, poll)
	}
	eng.OnRestart = func(now eventq.Time, node topology.NodeID) {
		if node == spec.Source {
			return
		}
		ag, err := core.New(node, net, pcfg, src) // re-attaches over the dead agent
		if err != nil {
			return
		}
		agents[node] = ag
		allAgents = append(allAgents, ag)
		wire(node, ag)
		delete(gone, node)
		ag.JoinLate()
	}
	eng.OnLeave = func(now eventq.Time, node topology.NodeID) {
		if ag, ok := agents[node]; ok {
			ag.Stop()
			gone[node] = true
		}
	}
	if err := eng.Start(); err != nil {
		return nil, err
	}

	q.At(secondsToTime(cfg.JoinAt), func(eventq.Time) {
		for _, ag := range agents {
			ag.Join()
		}
	})
	q.At(secondsToTime(cfg.SourceOnAt), func(eventq.Time) { sourceAgent.StartSource() })
	q.RunUntil(secondsToTime(cfg.Until))

	live := 0
	liveDone := 0
	for _, m := range spec.Receivers {
		if gone[m] {
			continue
		}
		live++
		for g := 0; g < pcfg.NumGroups(); g++ {
			if completed[nodeGroup{m, uint32(g)}] {
				liveDone++
			}
		}
	}
	if live > 0 {
		res.CompletionRate = float64(liveDone) / float64(live*pcfg.NumGroups())
	}
	res.Verified = verified
	for _, a := range eng.Log() {
		res.FaultLog = append(res.FaultLog, fmt.Sprintf("%s %s", a.At, a.Desc))
	}

	// Close the books before the final snapshot: every loss that never
	// decoded gets its terminal event so no recovery span stays open.
	for _, ag := range allAgents {
		ag.EmitUnrecoveredLosses(q.Now())
	}

	// Traffic counters come straight from the registry — the hand-rolled
	// delivery tap and per-agent tallies this replaced double-counted
	// nothing the event stream doesn't already carry.
	rep, err := tel.finish(cfg.Until)
	if err != nil {
		return nil, err
	}
	res.Telemetry = rep
	res.Health = rep.HealthReport()
	res.LocalRepairFrac = rep.LocalRepairFrac
	res.FaultDrops = int(rep.FaultDrops)
	res.NACKsSent = int(rep.NACKsSent)
	res.RepairsSent = int(rep.RepairsSent)
	if res.CompletionRate < 1 || !res.Verified {
		// Anomalous endings go through the same forensic path as
		// health alerts: one more triggered snapshot, taken after the
		// final accounting so the tail includes every terminal event.
		tel.trigger.Fire(cfg.Until, fmt.Sprintf(
			"anomalous end: completion=%.4f verified=%v", res.CompletionRate, res.Verified))
		d := tel.trigger.Dumps()
		rep.dumps = d
		res.FlightRecord = d[len(d)-1].Events
		// Lead the dump with the span ledger: how many losses closed, by
		// which mechanism, and how many died open — the summary a post-
		// mortem reads before the raw event tail.
		if rr := rep.RecoveryReport(); rr != nil {
			res.FlightRecord = append(rr.SummaryLines(), res.FlightRecord...)
		}
	}
	return res, nil
}

// zoneAgreement reports the live replacement ZCR the zone's surviving
// members unanimously see, if any.
func zoneAgreement(h *scoping.Hierarchy, agents map[topology.NodeID]*core.Agent,
	zone scoping.ZoneID, crashed topology.NodeID) (topology.NodeID, bool) {

	agreed := topology.NodeID(-2)
	for _, m := range h.Members(zone) {
		ag, ok := agents[m]
		if !ok || ag.Stopped() {
			continue
		}
		got := ag.Session().ZCR(zone)
		if got == topology.NoNode || got == crashed {
			return topology.NoNode, false
		}
		if other, ok := agents[got]; ok && other.Stopped() {
			return topology.NoNode, false
		}
		if agreed == -2 {
			agreed = got
		} else if got != agreed {
			return topology.NoNode, false
		}
	}
	if agreed < 0 {
		return topology.NoNode, false
	}
	return agreed, true
}

// String renders the chaos result for CLI output.
func (r *ChaosResult) String() string {
	s := fmt.Sprintf("%s on %s: completion %.2f%%, %.0f%% of repairs zone-local, %d fault drops",
		r.Protocol, r.Topology, 100*r.CompletionRate, 100*r.LocalRepairFrac, r.FaultDrops)
	for _, re := range r.Reelections {
		if re.RecoverySeconds >= 0 {
			s += fmt.Sprintf("; ZCR %d (zone %d) → %d in %.1fs", re.Crashed, re.Zone, re.NewZCR, re.RecoverySeconds)
		} else {
			s += fmt.Sprintf("; ZCR %d (zone %d) not recovered", re.Crashed, re.Zone)
		}
	}
	if r.Health != nil {
		if r.Health.Passed() {
			s += "; SLO PASS"
		} else {
			s += fmt.Sprintf("; SLO FAIL (%d violations)", r.Health.Violations())
		}
	}
	return s
}
