package sharqfec

import (
	"fmt"
	"io"

	"sharqfec/internal/eventq"
	"sharqfec/internal/scoping"
	"sharqfec/internal/telemetry"
)

// TelemetryConfig turns on the observability layer for a run. A nil
// *TelemetryConfig disables telemetry entirely: no bus is created, no
// snapshot events are scheduled, and the run is byte-identical to one
// on a build without the layer. A non-nil config always builds the
// metrics registry and per-zone time series; the trace and flight
// recorder are opt-in on top.
type TelemetryConfig struct {
	// Events, when non-nil, receives a JSONL trace of every protocol
	// event (one object per line).
	Events io.Writer
	// MetricsInterval is the virtual-clock spacing of time-series
	// snapshots in seconds (default 1.0). A final snapshot is always
	// taken at the end of the run.
	MetricsInterval float64
	// FlightRecorder, when > 0, keeps a ring of the last N
	// control-plane events for post-mortem dumps.
	FlightRecorder int
}

// TelemetryReport is what a telemetry-enabled run hands back: end-of-run
// totals derived from the metrics registry plus the sampled per-zone
// time series.
type TelemetryReport struct {
	// EventsEmitted counts every event the bus fanned out;
	// EventsWritten counts JSONL lines successfully written (0 when no
	// Events writer was configured).
	EventsEmitted, EventsWritten uint64
	// SuppressionRatio is suppressed/(suppressed+sent) NACKs over the
	// whole session.
	SuppressionRatio float64
	// LocalRepairFrac is the fraction of repair deliveries under a
	// non-root scope.
	LocalRepairFrac float64
	// NACKsSent / RepairsSent are registry totals across all zones.
	NACKsSent, RepairsSent int64
	// FaultDrops counts packets dropped on administratively-down links.
	FaultDrops int64

	rows   []telemetry.ZoneSample
	flight []string
}

// NumSamples returns how many time-series snapshots were taken.
func (r *TelemetryReport) NumSamples() int {
	n := 0
	for _, row := range r.rows {
		if row.Zone == -1 {
			n++
		}
	}
	return n
}

// WriteMetricsCSV renders the per-zone time series as CSV (one row per
// zone per snapshot, plus a Zone=-1 aggregate row per snapshot).
func (r *TelemetryReport) WriteMetricsCSV(w io.Writer) error {
	return telemetry.WriteCSV(w, r.rows)
}

// WriteMetricsJSON renders the same series as a JSON array.
func (r *TelemetryReport) WriteMetricsJSON(w io.Writer) error {
	return telemetry.WriteJSON(w, r.rows)
}

// FlightRecord returns the recorded control-plane tail (nil when the
// flight recorder was off).
func (r *TelemetryReport) FlightRecord() []string { return r.flight }

// telemetryRun bundles the live pieces a run wires together: the bus the
// protocol layers emit into, and the sinks consuming it.
type telemetryRun struct {
	bus     *telemetry.Bus
	metrics *telemetry.Metrics
	sampler *telemetry.Sampler
	events  *telemetry.EventWriter
	rec     *telemetry.Recorder
}

// busOf returns the run's bus, nil-safe, for wiring into configs that
// accept a possibly-nil *telemetry.Bus.
func (t *telemetryRun) busOf() *telemetry.Bus {
	if t == nil {
		return nil
	}
	return t.bus
}

// startTelemetry builds the bus, sinks and snapshot schedule for one
// run. A nil cfg returns nil and schedules nothing, so disabled runs
// stay byte-identical. Snapshot events only read atomic counters, so
// inserting them cannot perturb protocol-event ordering.
func startTelemetry(cfg *TelemetryConfig, q *eventq.Queue, h *scoping.Hierarchy,
	numNodes int, until float64) *telemetryRun {

	if cfg == nil {
		return nil
	}
	t := &telemetryRun{bus: telemetry.NewBus()}
	t.metrics = telemetry.NewMetrics(nil, h, numNodes)
	t.bus.Attach(t.metrics.Sink())
	t.sampler = telemetry.NewSampler(t.metrics)
	if cfg.Events != nil {
		t.events = telemetry.NewEventWriter(cfg.Events)
		t.bus.Attach(t.events.Sink())
	}
	if cfg.FlightRecorder > 0 {
		t.rec = telemetry.NewRecorder(cfg.FlightRecorder, telemetry.ControlPlaneOnly)
		t.bus.Attach(t.rec.Sink())
	}
	iv := cfg.MetricsInterval
	if iv <= 0 {
		iv = 1.0
	}
	for k := 1; float64(k)*iv < until; k++ {
		at := float64(k) * iv
		q.At(eventq.Time(at), func(eventq.Time) { t.sampler.Sample(at) })
	}
	return t
}

// finish takes the final snapshot, flushes the event trace, and builds
// the report. The returned error surfaces any JSONL write failure.
func (t *telemetryRun) finish(until float64) (*TelemetryReport, error) {
	if t == nil {
		return nil, nil
	}
	t.sampler.Sample(until)
	rep := &TelemetryReport{
		EventsEmitted:    t.bus.Count(),
		SuppressionRatio: t.metrics.SuppressionRatio(),
		NACKsSent:        t.metrics.NACKsSent(),
		RepairsSent:      t.metrics.RepairsSent(),
		FaultDrops:       t.metrics.FaultDrops(),
		rows:             t.sampler.Rows(),
	}
	if local, global := t.metrics.RepairLocalization(); local+global > 0 {
		rep.LocalRepairFrac = float64(local) / float64(local+global)
	}
	if t.rec != nil {
		rep.flight = t.rec.Dump()
	}
	if t.events != nil {
		rep.EventsWritten = t.events.Count()
		if err := t.events.Flush(); err != nil {
			return rep, fmt.Errorf("sharqfec: telemetry event trace: %w", err)
		}
	}
	return rep, nil
}
