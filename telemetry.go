package sharqfec

import (
	"fmt"
	"io"
	"math"

	"sharqfec/internal/analysis"
	"sharqfec/internal/eventq"
	"sharqfec/internal/scoping"
	"sharqfec/internal/telemetry"
	"sharqfec/internal/telemetry/census"
	"sharqfec/internal/telemetry/health"
	"sharqfec/internal/telemetry/spans"
	"sharqfec/internal/topology"
)

// SLOSpec is a parsed set of health objectives (see ParseSLOSpec).
// Wrapping the internal spec keeps the health package's types out of
// the public config surface.
type SLOSpec struct {
	spec *health.Spec
}

// ParseSLOSpec reads an SLO file: one objective per line in the form
//
//	<metric> [pNN] <= | >= <value> [window=W] [fast=F] [min=N]
//
// with metrics recovery_latency, suppression_ratio, repair_locality and
// budget_burn, plus an optional "interval <seconds>" directive setting
// the evaluation tick. '#' starts a comment.
func ParseSLOSpec(r io.Reader) (*SLOSpec, error) {
	spec, err := health.ParseSpec(r)
	if err != nil {
		return nil, err
	}
	return &SLOSpec{spec: spec}, nil
}

// String renders the spec's objectives in canonical form, one per line.
func (s *SLOSpec) String() string { return s.spec.String() }

// TelemetryConfig turns on the observability layer for a run. A nil
// *TelemetryConfig disables telemetry entirely: no bus is created, no
// snapshot events are scheduled, and the run is byte-identical to one
// on a build without the layer. A non-nil config always builds the
// metrics registry and per-zone time series; the trace and flight
// recorder are opt-in on top.
type TelemetryConfig struct {
	// Events, when non-nil, receives a JSONL trace of every protocol
	// event (one object per line).
	Events io.Writer
	// MetricsInterval is the virtual-clock spacing of time-series
	// snapshots in seconds (default 1.0). A final snapshot is always
	// taken at the end of the run.
	MetricsInterval float64
	// FlightRecorder, when > 0, keeps a ring of the last N
	// control-plane events for post-mortem dumps. Values are clamped to
	// [MinFlightRecorder, MaxFlightRecorder].
	FlightRecorder int
	// Spans enables causal recovery tracing: every loss_detected event
	// is stitched into a span ending at the group's decode (or an
	// explicit loss_unrecovered marker), tagged with the resolving
	// mechanism, blame zone, requester→repairer hop distance and
	// end-to-end latency. Adds per-zone / per-level recovery-latency
	// histograms (with p50/p95/p99 gauges) to the metrics registry.
	// Like the rest of the layer it is strictly passive.
	Spans bool
	// Census arms the cost-accounting engine: per-link and
	// per-zone-boundary traffic matrices by packet class, a per-node /
	// per-zone protocol-state census sampled on the metrics epochs, and
	// event-queue scheduler gauges. Results surface as extra columns in
	// the metrics CSV/JSON, census_* registry families, Perfetto counter
	// tracks beside the recovery spans, and the report's CensusSummary.
	// Strictly passive, like the rest of the layer.
	Census bool
	// SLO, when non-nil, attaches the streaming health engine: the
	// objectives are evaluated on the virtual clock as the run executes,
	// and violations come back onto the bus as health_alert /
	// health_clear events — visible in the trace, the flight recorder,
	// open recovery spans, and the metrics registry. The engine is a
	// pure sink plus its own alert emissions; it feeds nothing into the
	// protocol, so a given seed's protocol execution is identical with
	// or without it.
	SLO *SLOSpec
}

// validate rejects configurations that would otherwise fail silently.
// A non-finite MetricsInterval slips past the iv <= 0 default check and
// produces an unbounded (or empty) snapshot schedule.
func (cfg *TelemetryConfig) validate() error {
	if cfg == nil {
		return nil
	}
	if iv := cfg.MetricsInterval; math.IsNaN(iv) || math.IsInf(iv, 0) {
		return fmt.Errorf("sharqfec: TelemetryConfig.MetricsInterval must be finite, got %v", iv)
	}
	// SLO specs built programmatically (not through ParseSLOSpec) get
	// the same bounds checks the parser applies — a NaN objective or
	// window would otherwise judge nothing, silently.
	if cfg.SLO != nil && cfg.SLO.spec != nil {
		if err := cfg.SLO.spec.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Flight-recorder ring bounds: below MinFlightRecorder a dump carries
// too little history to explain an anomaly; above MaxFlightRecorder the
// preallocated ring stops being "cheap to always keep on".
const (
	MinFlightRecorder = 16
	MaxFlightRecorder = 1 << 16
)

// clampFlightRecorder applies the documented floor and cap (0 and
// negative values mean "off" and pass through).
func clampFlightRecorder(n int) int {
	if n <= 0 {
		return n
	}
	if n < MinFlightRecorder {
		return MinFlightRecorder
	}
	if n > MaxFlightRecorder {
		return MaxFlightRecorder
	}
	return n
}

// TelemetryReport is what a telemetry-enabled run hands back: end-of-run
// totals derived from the metrics registry plus the sampled per-zone
// time series.
type TelemetryReport struct {
	// EventsEmitted counts every event the bus fanned out;
	// EventsWritten counts JSONL lines successfully written (0 when no
	// Events writer was configured).
	EventsEmitted, EventsWritten uint64
	// SuppressionRatio is suppressed/(suppressed+sent) NACKs over the
	// whole session.
	SuppressionRatio float64
	// LocalRepairFrac is the fraction of repair deliveries under a
	// non-root scope.
	LocalRepairFrac float64
	// NACKsSent / RepairsSent are registry totals across all zones.
	NACKsSent, RepairsSent int64
	// FaultDrops counts packets dropped on administratively-down links.
	FaultDrops int64
	// ControllerDecisions counts rate-control decisions (one per group
	// completion per deciding agent); ControllerMaxH is the largest
	// per-group repair injection any decision owed — the witness the
	// adaptive policy's budget compliance is checked against.
	ControllerDecisions int64
	ControllerMaxH      int64

	rows         []telemetry.ZoneSample
	flight       []string
	asm          *spans.Assembler
	health       *health.Report
	dumps        []telemetry.TriggeredDump
	censusSum    *census.Summary
	censusEpochs []census.EpochRow
}

// CensusSummary returns the run-level cost-census digest (nil when
// TelemetryConfig.Census was off). Safe on a nil report.
func (r *TelemetryReport) CensusSummary() *census.Summary {
	if r == nil {
		return nil
	}
	return r.censusSum
}

// CensusEpochs returns the census epoch history — one row per metrics
// snapshot with per-zone state and scheduler gauges (nil when the
// census was off). Safe on a nil report.
func (r *TelemetryReport) CensusEpochs() []census.EpochRow {
	if r == nil {
		return nil
	}
	return r.censusEpochs
}

// HealthReport returns the per-zone SLO verdicts (nil when the run had
// no TelemetryConfig.SLO). Safe on a nil report.
func (r *TelemetryReport) HealthReport() *health.Report {
	if r == nil {
		return nil
	}
	return r.health
}

// TriggeredDumps returns every alert- or anomaly-triggered flight
// recorder snapshot, oldest first (nil when no recorder was configured
// or nothing fired). Safe on a nil report.
func (r *TelemetryReport) TriggeredDumps() []telemetry.TriggeredDump {
	if r == nil {
		return nil
	}
	return r.dumps
}

// NumSamples returns how many time-series snapshots were taken.
func (r *TelemetryReport) NumSamples() int {
	n := 0
	for _, row := range r.rows {
		if row.Zone == -1 {
			n++
		}
	}
	return n
}

// WriteMetricsCSV renders the per-zone time series as CSV (one row per
// zone per snapshot, plus a Zone=-1 aggregate row per snapshot).
func (r *TelemetryReport) WriteMetricsCSV(w io.Writer) error {
	return telemetry.WriteCSV(w, r.rows)
}

// WriteMetricsJSON renders the same series as a JSON array.
func (r *TelemetryReport) WriteMetricsJSON(w io.Writer) error {
	return telemetry.WriteJSON(w, r.rows)
}

// FlightRecord returns the recorded control-plane tail (nil when the
// flight recorder was off).
func (r *TelemetryReport) FlightRecord() []string { return r.flight }

// Spans returns every closed recovery span in canonical order (nil
// unless TelemetryConfig.Spans was set).
func (r *TelemetryReport) Spans() []spans.Span {
	if r.asm == nil {
		return nil
	}
	return r.asm.Spans()
}

// OpenSpans returns how many recovery spans never saw a terminal event
// (0 on a well-accounted run: every loss decodes or is explicitly
// marked unrecovered at session end).
func (r *TelemetryReport) OpenSpans() int {
	if r.asm == nil {
		return 0
	}
	return r.asm.Open()
}

// SpanLossEvents returns how many loss_detected events the span
// assembler consumed, duplicates included.
func (r *TelemetryReport) SpanLossEvents() uint64 {
	if r.asm == nil {
		return 0
	}
	return r.asm.LossEvents()
}

// RecoveryReport aggregates the spans into per-zone / per-level
// recovery-latency percentiles (nil when span tracing was off).
func (r *TelemetryReport) RecoveryReport() *analysis.RecoveryReport {
	if r.asm == nil {
		return nil
	}
	return analysis.BuildRecoveryReport(r.asm)
}

// WritePerfetto renders the recovery spans as Chrome trace-event JSON
// loadable in Perfetto / chrome://tracing. When the census was armed,
// its epoch history rides along as counter tracks (per-zone protocol
// state and the scheduler series) next to the span slices.
func (r *TelemetryReport) WritePerfetto(w io.Writer) error {
	if r.asm == nil {
		return fmt.Errorf("sharqfec: span tracing was not enabled")
	}
	return spans.WritePerfettoCounters(w, r.asm.Spans(), r.asm.View(), censusCounters(r.censusEpochs))
}

// censusCounters flattens census epochs into Perfetto counter samples:
// one per-zone "census state" track (zones that ever held state) and a
// global "census eventq" track.
func censusCounters(epochs []census.EpochRow) []spans.CounterSample {
	if len(epochs) == 0 {
		return nil
	}
	// Emit only zones that ever report state, so idle interior zones do
	// not add empty tracks.
	live := map[scoping.ZoneID]bool{}
	for _, ep := range epochs {
		for _, zs := range ep.Zones {
			if zs.Groups != 0 || zs.Timers != 0 || zs.RepairQueue != 0 ||
				zs.ResidentBytes != 0 || zs.RTTEntries != 0 {
				live[zs.Zone] = true
			}
		}
	}
	var out []spans.CounterSample
	for _, ep := range epochs {
		for _, zs := range ep.Zones {
			if !live[zs.Zone] {
				continue
			}
			out = append(out, spans.CounterSample{
				Name: "census state", Zone: zs.Zone, T: ep.T,
				Values: map[string]float64{
					"groups":       float64(zs.Groups),
					"timers":       float64(zs.Timers),
					"repair_queue": float64(zs.RepairQueue),
					"resident_kb":  float64(zs.ResidentBytes) / 1024,
					"rtt_entries":  float64(zs.RTTEntries),
					"mem_kb":       float64(zs.MemBytes) / 1024,
					"b_per_rcvr":   zs.BytesPerReceiver(),
				},
			})
		}
		out = append(out, spans.CounterSample{
			Name: "census eventq", Zone: scoping.NoZone, T: ep.T,
			Values: map[string]float64{
				"depth":     float64(ep.Queue.Depth),
				"free":      float64(ep.Queue.Free),
				"fire_rate": ep.Queue.FireRate,
			},
		})
	}
	return out
}

// telemetryRun bundles the live pieces a run wires together: the bus the
// protocol layers emit into, and the sinks consuming it.
type telemetryRun struct {
	bus     *telemetry.Bus
	metrics *telemetry.Metrics
	sampler *telemetry.Sampler
	events  *telemetry.EventWriter
	rec     *telemetry.Recorder
	spans   *spans.Assembler
	health  *health.Engine
	trigger *telemetry.DumpTrigger
	census  *census.Engine
}

// censusOf returns the run's census engine, nil-safe: runs that did not
// arm the census (and disabled runs) get nil.
func (t *telemetryRun) censusOf() *census.Engine {
	if t == nil {
		return nil
	}
	return t.census
}

// snapshot takes one epoch sample: the census first (it refreshes the
// registry gauges), then the time-series sampler, so the sampled rows
// carry fresh census columns.
func (t *telemetryRun) snapshot(at float64) {
	if t.census != nil {
		t.census.Snapshot(at)
	}
	t.sampler.Sample(at)
}

// busOf returns the run's bus, nil-safe, for wiring into configs that
// accept a possibly-nil *telemetry.Bus.
func (t *telemetryRun) busOf() *telemetry.Bus {
	if t == nil {
		return nil
	}
	return t.bus
}

// startTelemetry builds the bus, sinks and snapshot schedule for one
// run. A nil cfg returns nil and schedules nothing, so disabled runs
// stay byte-identical. Snapshot events only read atomic counters, so
// inserting them cannot perturb protocol-event ordering.
func startTelemetry(cfg *TelemetryConfig, q *eventq.Queue, h *scoping.Hierarchy,
	numNodes int, until float64) *telemetryRun {

	if cfg == nil {
		return nil
	}
	t := &telemetryRun{bus: telemetry.NewBus()}
	t.metrics = telemetry.NewMetrics(nil, h, numNodes)
	t.bus.Attach(t.metrics.Sink())
	t.sampler = telemetry.NewSampler(t.metrics)
	if cfg.Census {
		t.census = census.New(t.metrics.Reg, h, numNodes)
		t.census.BindQueue(q)
		t.bus.Attach(t.census.Sink())
		t.sampler.Census = t.census
	}
	if cfg.Spans {
		t.spans = spans.NewAssembler()
		t.spans.Observer = func(s *spans.Span) {
			if s.Recovered {
				t.metrics.ObserveRecovery(s.BlameZone, s.BlameLevel, s.Latency())
			}
		}
		t.bus.Attach(t.spans.Sink())
	}
	if cfg.Events != nil {
		t.events = telemetry.NewEventWriter(cfg.Events)
		t.bus.Attach(t.events.Sink())
	}
	if rec := clampFlightRecorder(cfg.FlightRecorder); rec > 0 {
		t.rec = telemetry.NewRecorder(rec, telemetry.ControlPlaneOnly)
		t.bus.Attach(t.rec.Sink())
	}
	if cfg.SLO != nil {
		// The engine attaches after the recorder so its alert emissions
		// (which fan out reentrantly) land in the ring before the dump
		// trigger below fires — a dump always shows the alert that
		// caused it.
		t.health = health.NewEngine(cfg.SLO.spec, t.bus)
		t.bus.Attach(t.health.Sink())
	}
	if t.rec != nil {
		// One bus-driven forensic path for every run with a recorder:
		// alert-triggered snapshots here, end-of-run anomaly snapshots
		// via trigger.Fire (RunChaos).
		t.trigger = telemetry.NewDumpTrigger(t.rec)
		t.bus.Attach(t.trigger.Sink())
	}
	// Self-describing preamble at T = 0: the run descriptor, then the
	// zone hierarchy rendered as events, so an exported JSONL trace
	// replays offline with identical blame attribution and identical
	// health verdicts (cmd/sharqfec-trace needs no topology input).
	t.bus.Emit(telemetry.Event{
		Kind: telemetry.KindRunInfo, Node: topology.NoNode, Zone: scoping.NoZone,
		Group: -1, F: until,
	})
	for z := 0; z < h.NumZones(); z++ {
		zone := scoping.ZoneID(z)
		parent := int64(-1)
		if p := h.Parent(zone); p != scoping.NoZone {
			parent = int64(p)
		}
		t.bus.Emit(telemetry.Event{
			Kind: telemetry.KindZoneInfo, Node: topology.NoNode, Zone: zone,
			Group: -1, A: parent, B: int64(h.Level(zone)),
		})
		for _, m := range h.Leaves(zone) {
			t.bus.Emit(telemetry.Event{
				Kind: telemetry.KindZoneMember, Node: m, Zone: zone, Group: -1,
			})
		}
	}
	iv := cfg.MetricsInterval
	if iv <= 0 {
		iv = 1.0
	}
	for k := 1; float64(k)*iv < until; k++ {
		at := float64(k) * iv
		q.At(eventq.Time(at), func(eventq.Time) { t.snapshot(at) })
	}
	return t
}

// finish takes the final snapshot, flushes the event trace, and builds
// the report. The returned error surfaces any JSONL write failure.
func (t *telemetryRun) finish(until float64) (*TelemetryReport, error) {
	if t == nil {
		return nil, nil
	}
	if t.health != nil {
		// Close the health engine first: its final evaluation may still
		// emit alerts/clears that the recorder, span assembler and dump
		// trigger should see before anything freezes.
		t.health.Finish(until)
	}
	if t.spans != nil {
		t.metrics.FinishRecovery()
		// Observers only fire during the run; drop the closure so two
		// identically-seeded reports stay reflect.DeepEqual-comparable
		// (func values never compare equal).
		t.spans.Observer = nil
	}
	t.snapshot(until)
	rep := &TelemetryReport{
		EventsEmitted:       t.bus.Count(),
		SuppressionRatio:    t.metrics.SuppressionRatio(),
		NACKsSent:           t.metrics.NACKsSent(),
		RepairsSent:         t.metrics.RepairsSent(),
		FaultDrops:          t.metrics.FaultDrops(),
		ControllerDecisions: t.metrics.ControllerDecisions(),
		ControllerMaxH:      t.metrics.ControllerMaxH(),
		rows:                t.sampler.Rows(),
	}
	if local, global := t.metrics.RepairLocalization(); local+global > 0 {
		rep.LocalRepairFrac = float64(local) / float64(local+global)
	}
	rep.asm = t.spans
	if t.census != nil {
		sum := t.census.Summarize()
		rep.censusSum = &sum
		rep.censusEpochs = t.census.Epochs()
	}
	if t.health != nil {
		rep.health = t.health.Report()
	}
	if t.rec != nil {
		rep.flight = t.rec.Dump()
	}
	if t.trigger != nil {
		// Snapshot, not the trigger itself: the report must stay free of
		// func values for reflect.DeepEqual comparability, and the
		// trigger holds the recorder (whose filter is a func).
		rep.dumps = t.trigger.Dumps()
	}
	if t.events != nil {
		rep.EventsWritten = t.events.Count()
		if err := t.events.Flush(); err != nil {
			return rep, fmt.Errorf("sharqfec: telemetry event trace: %w", err)
		}
	}
	return rep, nil
}
