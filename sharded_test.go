package sharqfec

// Shard-count invariance gate for the zone-sharded parallel engine:
// the same config and seed must yield byte-identical DataResults at
// every shard count. The five cases mirror the sequential determinism
// suite's coverage — plain SHARQFEC, SRM, ECSRM under Gilbert bursts,
// a ZCR crash plan and a backbone flap plan (the chaos seeds are
// expressed as RunData+FaultPlan here; RunChaos hard-wires telemetry,
// which sharded runs reject). The K=1 digests are pinned: a drift
// means the sharded family's results changed, breaking comparability
// with recorded large-N experiments.

import (
	"fmt"
	"os"
	"testing"
)

var shardMatrixCases = []struct {
	name   string
	cfg    DataConfig
	golden string
}{
	{
		name:   "sharqfec-seed21",
		cfg:    DataConfig{Protocol: SHARQFEC, Seed: 21},
		golden: "951f9816c99dcb0e6a9972cb0f2b2a3d631d5a36bd27777fb4fa6fe66602c4fa",
	},
	{
		name:   "srm-seed22",
		cfg:    DataConfig{Protocol: SRM, Seed: 22, NumPackets: 512},
		golden: "adb0b7e80c0cb7213d5b97e6bb1d242028b69fdfd0a6f6007d366b30b6713e5b",
	},
	{
		name: "ecsrm-gilbert-seed5",
		cfg: DataConfig{
			Protocol: ECSRM, Seed: 5, NumPackets: 256, Until: 30,
			Faults: BurstLossPlan(8),
		},
		golden: "2b5da0d48cb4e05cc61ab45efc03120e3f9064be8a2801e52bfe50f8eb689ef4",
	},
	{
		name:   "sharqfec-crash-seed31",
		cfg:    DataConfig{Protocol: SHARQFEC, Seed: 31, Faults: ZCRCrashPlan()},
		golden: "a09b7d1279b96b86a61c2dfb0fc8c8a3b15117f27d712ffe22e92f86982ccfce",
	},
	{
		name: "sharqfec-backbone-seed11",
		cfg: DataConfig{
			Protocol: SHARQFEC, Seed: 11, NumPackets: 512, Until: 60,
			Faults: BackboneFlapPlan(),
		},
		golden: "6ab8c14e33968d4f275732a98d51bcc88513fe5186a1b6de6336e5a23dc3445a",
	},
}

// TestShardCountInvarianceMatrix runs every case at 1, 2 and 4 shards
// and requires all three digests to match the pinned golden.
func TestShardCountInvarianceMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run digest suite")
	}
	for _, tc := range shardMatrixCases {
		t.Run(tc.name, func(t *testing.T) {
			for _, k := range []int{1, 2, 4} {
				cfg := tc.cfg
				cfg.Shards = k
				res, err := RunData(cfg)
				if err != nil {
					t.Fatalf("shards=%d: %v", k, err)
				}
				if got := dataDigest(res); got != tc.golden {
					t.Errorf("shards=%d digest drifted:\n got  %s\n want %s", k, got, tc.golden)
				}
				if res.CompletionRate <= 0 {
					t.Errorf("shards=%d: completion rate %v; the run did nothing", k, res.CompletionRate)
				}
			}
		})
	}
}

// TestShardedRejectsUnsupportedConfigs pins the error surface: the
// combinations the sharded engine cannot yet honor must fail loudly,
// never silently fall back to sequential.
func TestShardedRejectsUnsupportedConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  DataConfig
	}{
		{"telemetry", DataConfig{Protocol: SHARQFEC, Shards: 2, Telemetry: &TelemetryConfig{}}},
		{"adaptive-ratecontrol", DataConfig{Protocol: SHARQFEC, Shards: 2,
			RateControl: &RateControlConfig{Mode: RateControlAdaptive}}},
		{"negative-shards", DataConfig{Protocol: SHARQFEC, Shards: -3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := RunData(tc.cfg); err == nil {
				t.Error("want an error, got success")
			}
		})
	}
}

// TestShardedStaticRateControlMatchesOff mirrors the sequential seam
// pin: static rate control must be a rename of off, sharded too.
func TestShardedStaticRateControlMatchesOff(t *testing.T) {
	run := func(rc *RateControlConfig) string {
		t.Helper()
		res, err := RunData(DataConfig{Protocol: SHARQFEC, Seed: 21, Shards: 2, RateControl: rc})
		if err != nil {
			t.Fatal(err)
		}
		return dataDigest(res)
	}
	if off, static := run(nil), run(&RateControlConfig{Mode: RateControlStatic}); off != static {
		t.Errorf("sharded static rate control diverged from off:\n off    %s\n static %s", off, static)
	}
}

// TestShardMatrixHarvest prints the current K=1 digests for re-pinning
// after an intentional behavior change:
//
//	SHARD_HARVEST=1 go test -run TestShardMatrixHarvest -v
//
// It only prints; pins are updated by hand.
func TestShardMatrixHarvest(t *testing.T) {
	if os.Getenv("SHARD_HARVEST") == "" {
		t.Skip("harvest helper; run with SHARD_HARVEST=1 and -v")
	}
	for _, tc := range shardMatrixCases {
		cfg := tc.cfg
		cfg.Shards = 1
		res, err := RunData(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		fmt.Printf("HARVEST %s %s\n", tc.name, dataDigest(res))
	}
}
