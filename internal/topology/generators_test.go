package topology_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"testing"

	"sharqfec/internal/scoping"
	"sharqfec/internal/topology"
)

// specDigest hashes a generated topology — nodes, links (including
// bandwidth/latency/loss), receivers and zone layout — so one pinned
// seed guards generator determinism across refactors.
func specDigest(s *topology.Spec) string {
	h := sha256.New()
	fmt.Fprintf(h, "name=%s nodes=%d source=%d\n", s.Name, s.Graph.NumNodes(), s.Source)
	for i := 0; i < s.Graph.NumLinks(); i++ {
		l := s.Graph.Link(i)
		fmt.Fprintf(h, "link %d %d %g %g %g %g\n", l.A, l.B, l.Bandwidth, float64(l.Latency), l.LossAB, l.LossBA)
	}
	fmt.Fprintf(h, "receivers %v\n", s.Receivers)
	for _, z := range s.Zones {
		fmt.Fprintf(h, "zone %d parent %d leaves %v\n", z.ID, z.Parent, z.Leaves)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// checkZoneTree asserts the structural invariants every generator must
// hold: dense zone IDs, a single root, acyclic parent chains, and a
// layout scoping.Build accepts.
func checkZoneTree(t *testing.T, s *topology.Spec, wantLeafDepth int) *scoping.Hierarchy {
	t.Helper()
	for i, z := range s.Zones {
		if z.ID != i {
			t.Fatalf("zone %d has ID %d; IDs must be dense", i, z.ID)
		}
		if i == 0 {
			if z.Parent != -1 {
				t.Fatalf("zone 0 must be the root, has parent %d", z.Parent)
			}
		} else if z.Parent < 0 || z.Parent >= i {
			t.Fatalf("zone %d parent %d out of range (must precede child)", i, z.Parent)
		}
	}
	h, err := scoping.Build(s.Zones)
	if err != nil {
		t.Fatalf("scoping.Build: %v", err)
	}
	// Every subscriber (non-infrastructure leaf) sits at the expected
	// hierarchy depth.
	maxDepth := 0
	for _, r := range s.Receivers {
		if d := len(h.ZonesOf(r)); d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth != wantLeafDepth {
		t.Fatalf("leaf zone depth = %d, want %d", maxDepth, wantLeafDepth)
	}
	return h
}

func TestPowerLawISPStructure(t *testing.T) {
	p := topology.PowerLawParams{Seed: 7, Loss: 0.02}
	spec := topology.PowerLawISP(p)
	g := spec.Graph

	if g.NumLinks() != g.NumNodes()-1 {
		t.Fatalf("powerlaw must be a tree: %d links for %d nodes", g.NumLinks(), g.NumNodes())
	}
	checkZoneTree(t, spec, 4) // root → PoP → aggregation → leaf

	counts := topology.PowerLawSubscriberCounts(p)
	sum := 0
	for i, c := range counts {
		if c < 1 {
			t.Fatalf("PoP %d got %d subscribers; every PoP must serve someone", i, c)
		}
		sum += c
	}
	if sum != 1024 {
		t.Fatalf("subscriber total = %d, want the 1024 default target", sum)
	}
	// Power-law shape: the largest PoP dwarfs the median.
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	if median := sorted[len(sorted)/2]; sorted[len(sorted)-1] < 3*median {
		t.Fatalf("distribution not heavy-tailed: max %d < 3×median %d", sorted[len(sorted)-1], median)
	}
	// Degree bound: no router fans out past MaxDegree subscriber ports
	// (+1 uplink, +aggregation trunks at the PoP tier).
	for v := 0; v < g.NumNodes(); v++ {
		deg := len(g.Neighbors(topology.NodeID(v)))
		if deg > 64+1+(1024+63)/64 {
			t.Fatalf("node %d degree %d exceeds the MaxDegree-derived bound", v, deg)
		}
	}
	// Receivers = every node but the source.
	if len(spec.Receivers) != g.NumNodes()-1 {
		t.Fatalf("receivers = %d, want %d", len(spec.Receivers), g.NumNodes()-1)
	}
}

func TestFlatFanoutStructure(t *testing.T) {
	spec := topology.FlatFanout(topology.FlatParams{Routers: 6, ReceiversPerRouter: 50, Loss: 0.05})
	g := spec.Graph
	if got, want := g.NumNodes(), 1+6*51; got != want {
		t.Fatalf("nodes = %d, want %d", got, want)
	}
	if g.NumLinks() != g.NumNodes()-1 {
		t.Fatalf("flat fan-out must be a tree")
	}
	checkZoneTree(t, spec, 3) // root → router → leaf
	if deg := len(g.Neighbors(0)); deg != 6 {
		t.Fatalf("source degree = %d, want Routers=6", deg)
	}
	// Wide and flat: 3 zone levels, router zones count = Routers.
	level1 := 0
	for _, z := range spec.Zones {
		if z.Parent == 0 {
			level1++
		}
	}
	if level1 != 6 {
		t.Fatalf("router zones = %d, want 6", level1)
	}
}

// TestGeneratorSeedStability pins one generated instance per generator:
// a changed digest means generated experiments are no longer
// reproducible against recorded results.
func TestGeneratorSeedStability(t *testing.T) {
	const pinPowerLaw = "cf0768c9ae39b5870b8b684104b681a46c3c3deaa469bde5df315c3b085db87d"
	const pinFlat = "b436e30ab62bdb9d2ad59b67b05f63ee928561d07f1dff24594dfb3b308ef5c1"
	gotPL := specDigest(topology.PowerLawISP(topology.PowerLawParams{Seed: 7, Loss: 0.02}))
	if gotPL != pinPowerLaw {
		t.Errorf("powerlaw seed-7 digest = %s, want %s", gotPL, pinPowerLaw)
	}
	gotFlat := specDigest(topology.FlatFanout(topology.FlatParams{Loss: 0.05}))
	if gotFlat != pinFlat {
		t.Errorf("flat default digest = %s, want %s", gotFlat, pinFlat)
	}
	// Different seeds must generate different instances.
	other := specDigest(topology.PowerLawISP(topology.PowerLawParams{Seed: 8, Loss: 0.02}))
	if other == gotPL {
		t.Error("seeds 7 and 8 generated identical power-law instances")
	}
}
