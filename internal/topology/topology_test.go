package topology

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"sharqfec/internal/eventq"
)

func TestChainBasics(t *testing.T) {
	s := Chain(5, 10e6, 0.01, 0.02)
	if s.Graph.NumNodes() != 5 || s.Graph.NumLinks() != 4 {
		t.Fatalf("chain-5: %d nodes %d links", s.Graph.NumNodes(), s.Graph.NumLinks())
	}
	if len(s.Receivers) != 4 {
		t.Fatalf("receivers = %d", len(s.Receivers))
	}
	if len(s.Members()) != 5 {
		t.Fatalf("members = %d", len(s.Members()))
	}
}

func TestSPFTreeChain(t *testing.T) {
	s := Chain(5, 10e6, 0.01, 0)
	tr := s.Graph.SPFTree(0)
	for v := 1; v < 5; v++ {
		if tr.Parent[v] != NodeID(v-1) {
			t.Fatalf("parent[%d] = %d", v, tr.Parent[v])
		}
		want := eventq.Duration(0.01 * float64(v))
		if math.Abs(float64(tr.Dist[v]-want)) > 1e-12 {
			t.Fatalf("dist[%d] = %v, want %v", v, tr.Dist[v], want)
		}
	}
	if tr.Parent[0] != 0 {
		t.Fatal("root parent should be itself")
	}
}

func TestSPFPicksShorterPath(t *testing.T) {
	g := New(3)
	g.AddLink(0, 1, 1e6, 0.050, 0)
	g.AddLink(0, 2, 1e6, 0.010, 0)
	g.AddLink(2, 1, 1e6, 0.010, 0)
	tr := g.SPFTree(0)
	if tr.Parent[1] != 2 {
		t.Fatalf("node 1 should route via 2, parent = %d", tr.Parent[1])
	}
	if tr.Dist[1] != 0.020 {
		t.Fatalf("dist[1] = %v", tr.Dist[1])
	}
}

func TestTreeChildrenConsistent(t *testing.T) {
	s := BalancedTree([]int{3, 2}, 10e6, 0.02, 0)
	tr := s.Graph.SPFTree(0)
	count := 0
	for v := 0; v < s.Graph.NumNodes(); v++ {
		for _, c := range tr.Children[v] {
			if tr.Parent[c] != NodeID(v) {
				t.Fatalf("child %d of %d has parent %d", c, v, tr.Parent[c])
			}
			count++
		}
	}
	if count != s.Graph.NumNodes()-1 {
		t.Fatalf("tree edge count %d, want %d", count, s.Graph.NumNodes()-1)
	}
}

func TestPathLinks(t *testing.T) {
	s := Chain(4, 1e6, 0.01, 0)
	tr := s.Graph.SPFTree(0)
	p := tr.PathLinks(3)
	if len(p) != 3 {
		t.Fatalf("path to node 3 has %d links", len(p))
	}
	if tr.PathLinks(0) != nil {
		t.Fatal("path to root should be nil")
	}
	// links must connect consecutively from the root
	at := NodeID(0)
	for _, li := range p {
		l := s.Graph.Link(li)
		switch at {
		case l.A:
			at = l.B
		case l.B:
			at = l.A
		default:
			t.Fatalf("path link %d does not touch node %d", li, at)
		}
	}
	if at != 3 {
		t.Fatalf("path ends at %d, want 3", at)
	}
}

func TestCompoundLoss(t *testing.T) {
	s := Chain(3, 1e6, 0.01, 0.1)
	tr := s.Graph.SPFTree(0)
	got := s.Graph.CompoundLoss(tr, 2)
	want := 1 - 0.9*0.9
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("compound loss = %v, want %v", got, want)
	}
	if s.Graph.CompoundLoss(tr, 0) != 0 {
		t.Fatal("loss to root should be 0")
	}
}

func TestAsymmetricLoss(t *testing.T) {
	g := New(2)
	li := g.AddLinkAsym(0, 1, 1e6, 0.01, 0.2, 0.05)
	if g.LossFrom(li, 0) != 0.2 {
		t.Fatalf("LossFrom A = %v", g.LossFrom(li, 0))
	}
	if g.LossFrom(li, 1) != 0.05 {
		t.Fatalf("LossFrom B = %v", g.LossFrom(li, 1))
	}
}

func TestRTTSymmetric(t *testing.T) {
	s := BalancedTree([]int{2, 2}, 1e6, 0.01, 0)
	for _, a := range []NodeID{0, 1, 3} {
		for _, b := range []NodeID{2, 4, 5} {
			if s.Graph.RTT(a, b) != s.Graph.RTT(b, a) {
				t.Fatalf("RTT(%d,%d) asymmetric", a, b)
			}
		}
	}
}

func TestStarLatencies(t *testing.T) {
	s := Star(4, 1e6, 0.01, 0)
	tr := s.Graph.SPFTree(0)
	for i := 1; i < 4; i++ {
		want := eventq.Duration(0.01 * float64(i))
		if math.Abs(float64(tr.Dist[i]-want)) > 1e-12 {
			t.Fatalf("star dist[%d] = %v, want %v", i, tr.Dist[i], want)
		}
	}
}

func TestBalancedTreeZones(t *testing.T) {
	s := BalancedTree([]int{3, 2}, 1e6, 0.01, 0)
	if len(s.Zones) != 4 { // global + 3 subtrees
		t.Fatalf("zones = %d, want 4", len(s.Zones))
	}
	seen := map[NodeID]bool{}
	for _, z := range s.Zones {
		for _, v := range z.Leaves {
			if seen[v] {
				t.Fatalf("node %d in two leaf zones", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != s.Graph.NumNodes() {
		t.Fatalf("leaf zones cover %d of %d nodes", len(seen), s.Graph.NumNodes())
	}
}

func TestFigure10Shape(t *testing.T) {
	s := Figure10(Figure10Params{})
	if s.Graph.NumNodes() != 113 {
		t.Fatalf("figure10 nodes = %d, want 113", s.Graph.NumNodes())
	}
	if len(s.Receivers) != 112 {
		t.Fatalf("figure10 receivers = %d, want 112", len(s.Receivers))
	}
	// 7 source links + 7 ring links + 7*3 child + 7*12 grandchild = 119
	if s.Graph.NumLinks() != 119 {
		t.Fatalf("figure10 links = %d, want 119", s.Graph.NumLinks())
	}
	// zones: 1 global + 7 intermediate + 21 leaf = 29
	if len(s.Zones) != 29 {
		t.Fatalf("figure10 zones = %d, want 29", len(s.Zones))
	}
}

func TestFigure10LossCalibration(t *testing.T) {
	s := Figure10(Figure10Params{})
	tr := s.Graph.SPFTree(0)
	var worst, best float64 = 0, 1
	for v := NodeID(8); v < 113; v++ {
		// grandchildren are the leaves: nodes with no children
		if len(tr.Children[v]) != 0 {
			continue
		}
		l := s.Graph.CompoundLoss(tr, v)
		if l > worst {
			worst = l
		}
		if l < best {
			best = l
		}
	}
	if math.Abs(worst-0.283) > 0.01 {
		t.Fatalf("worst leaf loss %.4f, want ≈0.283", worst)
	}
	if math.Abs(best-0.134) > 0.01 {
		t.Fatalf("best leaf loss %.4f, want ≈0.134", best)
	}
}

func TestFigure10WorstSubtreeIsTree4(t *testing.T) {
	s := Figure10(Figure10Params{})
	tr := s.Graph.SPFTree(0)
	// Tree 4 occupies nodes 53..67 per DESIGN.md numbering.
	l53 := s.Graph.CompoundLoss(tr, 57) // a grandchild in tree 4
	for v := NodeID(8); v < 113; v++ {
		if len(tr.Children[v]) != 0 || (v >= 53 && v <= 67) {
			continue
		}
		if s.Graph.CompoundLoss(tr, v) > l53+1e-9 {
			t.Fatalf("node %d lossier (%.4f) than tree-4 leaves (%.4f)", v, s.Graph.CompoundLoss(tr, v), l53)
		}
	}
}

func TestFigure10ZonesNested(t *testing.T) {
	s := Figure10(Figure10Params{})
	byID := map[int]ZoneSpec{}
	for _, z := range s.Zones {
		byID[z.ID] = z
	}
	roots := 0
	for _, z := range s.Zones {
		if z.Parent == -1 {
			roots++
			continue
		}
		if _, ok := byID[z.Parent]; !ok {
			t.Fatalf("zone %d has unknown parent %d", z.ID, z.Parent)
		}
	}
	if roots != 1 {
		t.Fatalf("zone roots = %d, want 1", roots)
	}
}

func TestNationalCounts(t *testing.T) {
	p := NationalParams{Regions: 2, Cities: 3, Suburbs: 2, SubscribersPerSuburb: 4}
	s := National(p, 1e6, 0.01, 0)
	wantReceivers := 2 + 2*3 + 2*3*2*4
	if len(s.Receivers) != wantReceivers {
		t.Fatalf("national receivers = %d, want %d", len(s.Receivers), wantReceivers)
	}
	if p.TotalReceivers() != wantReceivers {
		t.Fatalf("TotalReceivers = %d, want %d", p.TotalReceivers(), wantReceivers)
	}
	// zones: 1 + regions + regions*cities + regions*cities*suburbs
	wantZones := 1 + 2 + 6 + 12
	if len(s.Zones) != wantZones {
		t.Fatalf("national zones = %d, want %d", len(s.Zones), wantZones)
	}
}

func TestPaperNationalScale(t *testing.T) {
	if got := PaperNational().TotalReceivers(); got != 10000210 {
		t.Fatalf("paper national receivers = %d, want 10000210", got)
	}
}

func TestAddLinkValidation(t *testing.T) {
	g := New(2)
	for _, fn := range []func(){
		func() { g.AddLink(0, 0, 1e6, 0.01, 0) },
		func() { g.AddLink(0, 5, 1e6, 0.01, 0) },
		func() { g.AddLink(0, 1, 0, 0.01, 0) },
		func() { g.AddLink(0, 1, 1e6, -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid AddLink did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestNeighbors(t *testing.T) {
	s := Star(4, 1e6, 0.01, 0)
	nb := s.Graph.Neighbors(0)
	if len(nb) != 3 {
		t.Fatalf("hub neighbors = %d", len(nb))
	}
	if len(s.Graph.Neighbors(2)) != 1 {
		t.Fatal("spoke should have one neighbor")
	}
}

// Property: in any chain, compound loss is monotonically nondecreasing
// with distance from the source.
func TestPropertyChainLossMonotone(t *testing.T) {
	f := func(nRaw, lossRaw uint8) bool {
		n := int(nRaw%20) + 2
		loss := float64(lossRaw%50) / 100
		s := Chain(n, 1e6, 0.01, loss)
		tr := s.Graph.SPFTree(0)
		prev := -1.0
		for v := 0; v < n; v++ {
			l := s.Graph.CompoundLoss(tr, NodeID(v))
			if l < prev-1e-12 {
				return false
			}
			prev = l
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: SPF distances satisfy the triangle property along tree edges:
// dist[child] = dist[parent] + latency(link).
func TestPropertyTreeDistances(t *testing.T) {
	s := Figure10(Figure10Params{})
	tr := s.Graph.SPFTree(0)
	for v := 1; v < s.Graph.NumNodes(); v++ {
		li := tr.ParentLink[v]
		if li < 0 {
			t.Fatalf("node %d unreachable", v)
		}
		want := tr.Dist[tr.Parent[v]] + s.Graph.Link(li).Latency
		if math.Abs(float64(tr.Dist[v]-want)) > 1e-12 {
			t.Fatalf("dist[%d] inconsistent", v)
		}
	}
}

func TestRandomTreeShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	s := RandomTree(rng, 20, 3, 0.02, 0.2)
	if s.Graph.NumNodes() != 20 || s.Graph.NumLinks() != 19 {
		t.Fatalf("random tree: %d nodes %d links", s.Graph.NumNodes(), s.Graph.NumLinks())
	}
	tr := s.Graph.SPFTree(0)
	for v := 0; v < 20; v++ {
		if len(tr.Children[v]) > 3 {
			t.Fatalf("node %d fanout %d > 3", v, len(tr.Children[v]))
		}
	}
	// Zones partition all nodes.
	seen := map[NodeID]bool{}
	for _, z := range s.Zones {
		for _, v := range z.Leaves {
			if seen[v] {
				t.Fatalf("node %d in two leaf zones", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != 20 {
		t.Fatalf("zones cover %d/20 nodes", len(seen))
	}
}

// Property: random trees are connected with in-range losses.
func TestPropertyRandomTreeValid(t *testing.T) {
	f := func(seed uint64, nRaw, fanRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		n := int(nRaw%30) + 2
		fan := int(fanRaw%4) + 1
		s := RandomTree(rng, n, fan, 0.01, 0.3)
		tr := s.Graph.SPFTree(0)
		for v := 0; v < n; v++ {
			if tr.Parent[v] < 0 {
				return false // disconnected
			}
		}
		for i := 0; i < s.Graph.NumLinks(); i++ {
			l := s.Graph.Link(i)
			if l.LossAB < 0.01 || l.LossAB > 0.3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
