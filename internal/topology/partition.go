package topology

import (
	"math"

	"sharqfec/internal/eventq"
)

// PartitionByZone assigns every node to one of k shards, keeping each
// top-level zone's whole subtree (the paper's unit of recovery
// locality) on a single shard, and returns the conservative lookahead
// for the resulting partition: the minimum latency of any link joining
// two different shards. Zones whose parent is the root form the
// indivisible blocks; blocks are balanced across shards by node count
// (largest first onto the lightest shard — deterministic, ties to the
// lower shard ID). Nodes in no top-level block — typically just the
// source in the root zone — land on shard 0.
//
// When the partition has no boundary links at all (k=1, or a single
// block), the lookahead falls back to the minimum latency over every
// link: still a valid conservative window, since no cross-shard
// influence exists to bound.
//
// The zone layout passed in should be the topology's native one even
// for globalized (unscoped) protocol runs: administrative flattening
// changes packet scoping, not the physical locality the partition
// exploits.
func PartitionByZone(g *Graph, zones []ZoneSpec, k int) (owner []int32, lookahead eventq.Duration) {
	if k < 1 {
		k = 1
	}
	owner = make([]int32, g.NumNodes())

	// blockNodes[b] collects the node set of top-level zone block b.
	var blockNodes [][]NodeID
	blockOf := make(map[int]int) // zone ID → block index
	for _, z := range zones {
		switch {
		case z.Parent < 0:
			continue // root zone: its direct leaves stay on shard 0
		case z.Parent == zones[0].ID:
			blockOf[z.ID] = len(blockNodes)
			blockNodes = append(blockNodes, append([]NodeID(nil), z.Leaves...))
		default:
			if b, ok := blockOf[z.Parent]; ok {
				blockOf[z.ID] = b
				blockNodes[b] = append(blockNodes[b], z.Leaves...)
			}
		}
	}

	// Largest block first onto the lightest shard. Sorting is by
	// (size desc, block index asc) via a simple selection over the
	// small block count, so assignment is fully deterministic.
	loads := make([]int, k)
	assigned := make([]bool, len(blockNodes))
	for range blockNodes {
		best := -1
		for b := range blockNodes {
			if assigned[b] {
				continue
			}
			if best < 0 || len(blockNodes[b]) > len(blockNodes[best]) {
				best = b
			}
		}
		assigned[best] = true
		shard := 0
		for s := 1; s < k; s++ {
			if loads[s] < loads[shard] {
				shard = s
			}
		}
		loads[shard] += len(blockNodes[best])
		for _, v := range blockNodes[best] {
			owner[v] = int32(shard)
		}
	}

	boundary := eventq.Duration(math.MaxFloat64)
	all := eventq.Duration(math.MaxFloat64)
	for i := 0; i < g.NumLinks(); i++ {
		l := g.Link(i)
		if l.Latency < all {
			all = l.Latency
		}
		if owner[l.A] != owner[l.B] && l.Latency < boundary {
			boundary = l.Latency
		}
	}
	lookahead = boundary
	if lookahead == eventq.Duration(math.MaxFloat64) {
		lookahead = all
	}
	return owner, lookahead
}
