package topology

import (
	"fmt"
	"math/rand/v2"

	"sharqfec/internal/eventq"
)

// ZoneSpec describes one administratively scoped zone as plain data, so
// builders can hand zone layouts to the scoping package without an import
// cycle. Zones form a tree via Parent (Parent == -1 for the root zone).
// Leaves lists the nodes whose *smallest* zone this is; membership in
// ancestor zones is implied.
type ZoneSpec struct {
	ID     int
	Parent int
	Leaves []NodeID
}

// Spec bundles a built graph with the roles and zone layout an experiment
// needs.
type Spec struct {
	Graph  *Graph
	Source NodeID
	// Receivers lists every session member other than the source.
	Receivers []NodeID
	// Zones is the administrative scoping layout (root zone first).
	Zones []ZoneSpec
	// Name describes the topology for logs and experiment output.
	Name string
}

// Members returns the source plus all receivers.
func (s *Spec) Members() []NodeID {
	out := make([]NodeID, 0, len(s.Receivers)+1)
	out = append(out, s.Source)
	out = append(out, s.Receivers...)
	return out
}

// Chain builds a linear chain of n nodes (0—1—…—n-1) with the given link
// parameters and node 0 as the source. A single global zone covers all
// nodes. Used by the §6.1 ZCR-election tests.
func Chain(n int, bandwidth float64, latency eventq.Duration, loss float64) *Spec {
	if n < 2 {
		panic("topology: chain needs >= 2 nodes")
	}
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddLink(NodeID(i), NodeID(i+1), bandwidth, latency, loss)
	}
	return &Spec{
		Graph:     g,
		Source:    0,
		Receivers: seqNodes(1, n),
		Zones:     []ZoneSpec{{ID: 0, Parent: -1, Leaves: seqNodes(0, n)}},
		Name:      fmt.Sprintf("chain-%d", n),
	}
}

// Star builds a hub-and-spoke graph: node 0 is the source at the hub with
// n-1 spokes. Spoke i's latency is latency×i to make election distances
// distinct. Used by the §6.1 ZCR "fork" tests.
func Star(n int, bandwidth float64, latency eventq.Duration, loss float64) *Spec {
	if n < 2 {
		panic("topology: star needs >= 2 nodes")
	}
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddLink(0, NodeID(i), bandwidth, latency*eventq.Duration(i), loss)
	}
	return &Spec{
		Graph:     g,
		Source:    0,
		Receivers: seqNodes(1, n),
		Zones:     []ZoneSpec{{ID: 0, Parent: -1, Leaves: seqNodes(0, n)}},
		Name:      fmt.Sprintf("star-%d", n),
	}
}

// BalancedTree builds a rooted tree where level i has fanout[i] children
// per node. Node 0 (the root) is the source. Each subtree under a depth-1
// node becomes a child zone of the global zone. Used by §6.1 tests.
func BalancedTree(fanout []int, bandwidth float64, latency eventq.Duration, loss float64) *Spec {
	if len(fanout) == 0 {
		panic("topology: empty fanout")
	}
	total := 1
	level := 1
	for _, f := range fanout {
		level *= f
		total += level
	}
	g := New(total)
	next := NodeID(1)
	frontier := []NodeID{0}
	for _, f := range fanout {
		var newFrontier []NodeID
		for _, p := range frontier {
			for c := 0; c < f; c++ {
				g.AddLink(p, next, bandwidth, latency, loss)
				newFrontier = append(newFrontier, next)
				next++
			}
		}
		frontier = newFrontier
	}
	spec := &Spec{
		Graph:     g,
		Source:    0,
		Receivers: seqNodes(1, total),
		Name:      fmt.Sprintf("tree-%v", fanout),
	}
	// Zones: global zone holds the root; each depth-1 subtree is a zone.
	spec.Zones = append(spec.Zones, ZoneSpec{ID: 0, Parent: -1, Leaves: []NodeID{0}})
	tree := g.SPFTree(0)
	for i, c := range tree.Children[0] {
		zone := ZoneSpec{ID: i + 1, Parent: 0}
		var collect func(v NodeID)
		collect = func(v NodeID) {
			zone.Leaves = append(zone.Leaves, v)
			for _, ch := range tree.Children[v] {
				collect(ch)
			}
		}
		collect(c)
		spec.Zones = append(spec.Zones, zone)
	}
	return spec
}

// Figure10Params control the calibrated parts of the Figure-10 topology.
// Zero values select the defaults described in DESIGN.md.
type Figure10Params struct {
	// MeshPathLoss[i] is the compound loss applied on the source→mesh
	// link for mesh node i+1. Defaults reproduce the loss spread the
	// paper states (worst subtree ≈28.3 % compound, best ≈13.4 %).
	MeshPathLoss [7]float64
	// MeshLatency[i] is the backbone latency for mesh node i+1.
	MeshLatency [7]eventq.Duration
}

func (p *Figure10Params) applyDefaults() {
	var zeroLoss [7]float64
	if p.MeshPathLoss == zeroLoss {
		// Calibrated so compound source→leaf loss spans ≈13.4 %…28.3 %:
		// through a tree, compound = 1-(1-m)(1-0.08)(1-0.04).
		// m=0.188 → 28.3 %; m=0.020 → 13.4 %. Tree 4 (receivers 53–67)
		// gets the worst path; trees 6 and 7 the best, matching the
		// receiver ranges the paper calls out.
		p.MeshPathLoss = [7]float64{0.08, 0.05, 0.11, 0.188, 0.14, 0.02, 0.02}
	}
	var zeroLat [7]eventq.Duration
	if p.MeshLatency == zeroLat {
		p.MeshLatency = [7]eventq.Duration{0.010, 0.015, 0.020, 0.040, 0.030, 0.025, 0.012}
	}
}

// Figure10 builds the §6 evaluation topology: source node 0 feeds a mesh
// of 7 backbone nodes (45 Mbit/s links); each mesh node roots a balanced
// tree of 3 children × 4 grandchildren (10 Mbit/s, 20 ms links), for 112
// receivers / 113 nodes. Tree-link losses are 8 % (mesh→child) and 4 %
// (child→grandchild) as the paper states. Mesh latencies and losses are
// calibrated per DESIGN.md. Zones: Z0 global; one intermediate zone per
// mesh subtree; one leaf zone per child subtree.
func Figure10(params Figure10Params) *Spec {
	params.applyDefaults()
	const (
		meshBW  = 45e6
		treeBW  = 10e6
		treeLat = eventq.Duration(0.020)
	)
	g := New(113)
	// Mesh nodes 1..7, each with a direct backbone path from the source
	// and lateral mesh links joining neighbours (a ring), so repair
	// traffic between subtrees has non-source routes.
	for i := 0; i < 7; i++ {
		g.AddLink(0, NodeID(i+1), meshBW, params.MeshLatency[i], params.MeshPathLoss[i])
	}
	for i := 0; i < 7; i++ {
		a, b := NodeID(i+1), NodeID((i+1)%7+1)
		g.AddLink(a, b, meshBW, 0.035, 0.03)
	}
	spec := &Spec{Graph: g, Source: 0, Name: "figure10"}
	spec.Zones = append(spec.Zones, ZoneSpec{ID: 0, Parent: -1, Leaves: []NodeID{0}})

	next := NodeID(8)
	zoneID := 1
	for m := 0; m < 7; m++ {
		mesh := NodeID(m + 1)
		spec.Receivers = append(spec.Receivers, mesh)
		interZone := ZoneSpec{ID: zoneID, Parent: 0, Leaves: []NodeID{mesh}}
		interID := zoneID
		zoneID++
		var leafZones []ZoneSpec
		for c := 0; c < 3; c++ {
			child := next
			next++
			g.AddLink(mesh, child, treeBW, treeLat, 0.08)
			spec.Receivers = append(spec.Receivers, child)
			leaf := ZoneSpec{ID: zoneID, Parent: interID, Leaves: []NodeID{child}}
			zoneID++
			for gc := 0; gc < 4; gc++ {
				grand := next
				next++
				g.AddLink(child, grand, treeBW, treeLat, 0.04)
				spec.Receivers = append(spec.Receivers, grand)
				leaf.Leaves = append(leaf.Leaves, grand)
			}
			leafZones = append(leafZones, leaf)
		}
		spec.Zones = append(spec.Zones, interZone)
		spec.Zones = append(spec.Zones, leafZones...)
	}
	if int(next) != 113 {
		panic("topology: figure10 node count mismatch")
	}
	return spec
}

// NationalParams describe the Figure-7 national distribution hierarchy:
// Regions regions, each with Cities cities, each with Suburbs suburbs of
// SubscribersPerSuburb receivers; dedicated caching receivers act as ZCRs
// at each bifurcation point.
type NationalParams struct {
	Regions              int
	Cities               int
	Suburbs              int
	SubscribersPerSuburb int
}

// PaperNational returns the parameters of the paper's worked example:
// 10 regions × 20 cities × 100 suburbs × 500 subscribers (10,000,210
// receivers including the dedicated caches).
func PaperNational() NationalParams {
	return NationalParams{Regions: 10, Cities: 20, Suburbs: 100, SubscribersPerSuburb: 500}
}

// TotalReceivers returns the total receiver count including the dedicated
// regional and city caches (the paper's 10,000,210 for PaperNational).
func (p NationalParams) TotalReceivers() int {
	return p.Regions + p.Regions*p.Cities + p.Regions*p.Cities*p.Suburbs*p.SubscribersPerSuburb
}

// National builds a (scaled-down) national hierarchy graph for measured
// session-scaling experiments. For the paper-scale analytic table use
// internal/analysis, which does not materialize the graph.
func National(p NationalParams, bandwidth float64, latency eventq.Duration, loss float64) *Spec {
	total := 1 + p.Regions + p.Regions*p.Cities + p.Regions*p.Cities*p.Suburbs*p.SubscribersPerSuburb
	g := New(total)
	spec := &Spec{Graph: g, Source: 0, Name: fmt.Sprintf("national-%d", total)}
	spec.Zones = append(spec.Zones, ZoneSpec{ID: 0, Parent: -1, Leaves: []NodeID{0}})
	next := NodeID(1)
	zoneID := 1
	for r := 0; r < p.Regions; r++ {
		region := next
		next++
		g.AddLink(0, region, bandwidth, latency, loss)
		spec.Receivers = append(spec.Receivers, region)
		regionZone := zoneID
		spec.Zones = append(spec.Zones, ZoneSpec{ID: regionZone, Parent: 0, Leaves: []NodeID{region}})
		zoneID++
		for c := 0; c < p.Cities; c++ {
			city := next
			next++
			g.AddLink(region, city, bandwidth, latency, loss)
			spec.Receivers = append(spec.Receivers, city)
			cityZone := zoneID
			spec.Zones = append(spec.Zones, ZoneSpec{ID: cityZone, Parent: regionZone, Leaves: []NodeID{city}})
			zoneID++
			for s := 0; s < p.Suburbs; s++ {
				suburbZone := ZoneSpec{ID: zoneID, Parent: cityZone}
				zoneID++
				for k := 0; k < p.SubscribersPerSuburb; k++ {
					sub := next
					next++
					g.AddLink(city, sub, bandwidth, latency, loss)
					spec.Receivers = append(spec.Receivers, sub)
					suburbZone.Leaves = append(suburbZone.Leaves, sub)
				}
				spec.Zones = append(spec.Zones, suburbZone)
			}
		}
	}
	return spec
}

func seqNodes(from, to int) []NodeID {
	out := make([]NodeID, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, NodeID(i))
	}
	return out
}

// RandomTree builds a random rooted tree of n nodes: each new node
// attaches under a uniformly chosen existing node (capped at maxFanout
// children), with per-link loss drawn uniformly from [lossLo, lossHi]
// and latency from [5, 45] ms. Depth-1 subtrees become child zones.
// Used by robustness property tests: the protocol must recover on any
// such topology.
func RandomTree(rng *rand.Rand, n, maxFanout int, lossLo, lossHi float64) *Spec {
	if n < 2 {
		panic("topology: random tree needs >= 2 nodes")
	}
	if maxFanout < 1 {
		maxFanout = 1
	}
	g := New(n)
	children := make([]int, n)
	for v := 1; v < n; v++ {
		// Pick a parent with spare fanout.
		var candidates []NodeID
		for p := 0; p < v; p++ {
			if children[p] < maxFanout {
				candidates = append(candidates, NodeID(p))
			}
		}
		parent := candidates[rng.IntN(len(candidates))]
		children[parent]++
		loss := lossLo + (lossHi-lossLo)*rng.Float64()
		latency := eventq.Duration(0.005 + 0.040*rng.Float64())
		g.AddLink(parent, NodeID(v), 10e6, latency, loss)
	}
	spec := &Spec{
		Graph:     g,
		Source:    0,
		Receivers: seqNodes(1, n),
		Name:      fmt.Sprintf("random-tree-%d", n),
	}
	spec.Zones = append(spec.Zones, ZoneSpec{ID: 0, Parent: -1, Leaves: []NodeID{0}})
	tree := g.SPFTree(0)
	for i, c := range tree.Children[0] {
		zone := ZoneSpec{ID: i + 1, Parent: 0}
		var collect func(v NodeID)
		collect = func(v NodeID) {
			zone.Leaves = append(zone.Leaves, v)
			for _, ch := range tree.Children[v] {
				collect(ch)
			}
		}
		collect(c)
		spec.Zones = append(spec.Zones, zone)
	}
	return spec
}
