// Package topology models the simulated network: nodes joined by duplex
// links with bandwidth, propagation latency and per-direction loss rates,
// plus shortest-path routing and source-rooted multicast trees.
//
// It also provides builders for every network the paper uses: chains,
// stars and balanced trees (ZCR-election tests, §6.1), the Figure-10
// hybrid mesh-tree used for all data/repair simulations (§6.2), and the
// 4-level national distribution hierarchy of Figures 7–8.
package topology

import (
	"fmt"
	"math"

	"sharqfec/internal/eventq"
)

// NodeID identifies a node. IDs are dense, starting at zero.
type NodeID int

// NoNode is the sentinel for "no node" (unknown ZCR, absent peer).
const NoNode = NodeID(-1)

// Link is a duplex link between two nodes.
type Link struct {
	A, B NodeID
	// Bandwidth is the transmission rate in bits per second (per
	// direction).
	Bandwidth float64
	// Latency is the one-way propagation delay.
	Latency eventq.Duration
	// LossAB and LossBA are the packet loss probabilities in each
	// direction, applied to loss-eligible packets only.
	LossAB, LossBA float64
}

// edge is one direction of a link in the adjacency structure.
type edge struct {
	peer NodeID
	link int // index into Graph.links
}

// Graph is an undirected multigraph of nodes and duplex links.
type Graph struct {
	n     int
	links []Link
	adj   [][]edge
	// down marks administratively disabled links (fault injection).
	// nil until the first SetLinkUp(false), so static simulations pay
	// nothing for the feature.
	down []bool
}

// New creates a graph with n nodes and no links.
func New(n int) *Graph {
	if n < 1 {
		panic("topology: graph needs at least one node")
	}
	return &Graph{n: n, adj: make([][]edge, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumLinks returns the number of duplex links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Link returns the i'th link.
func (g *Graph) Link(i int) Link { return g.links[i] }

// AddLink adds a duplex link with symmetric loss and returns its index.
func (g *Graph) AddLink(a, b NodeID, bandwidth float64, latency eventq.Duration, loss float64) int {
	return g.AddLinkAsym(a, b, bandwidth, latency, loss, loss)
}

// AddLinkAsym adds a duplex link with per-direction loss rates and returns
// its index.
func (g *Graph) AddLinkAsym(a, b NodeID, bandwidth float64, latency eventq.Duration, lossAB, lossBA float64) int {
	if a < 0 || int(a) >= g.n || b < 0 || int(b) >= g.n {
		panic(fmt.Sprintf("topology: link %d-%d out of range (n=%d)", a, b, g.n))
	}
	if a == b {
		panic("topology: self-link")
	}
	if bandwidth <= 0 {
		panic("topology: non-positive bandwidth")
	}
	if latency < 0 {
		panic("topology: negative latency")
	}
	idx := len(g.links)
	g.links = append(g.links, Link{A: a, B: b, Bandwidth: bandwidth, Latency: latency, LossAB: lossAB, LossBA: lossBA})
	g.adj[a] = append(g.adj[a], edge{peer: b, link: idx})
	g.adj[b] = append(g.adj[b], edge{peer: a, link: idx})
	return idx
}

// SetLinkUp enables or disables link i. Disabled links are skipped by
// SPFTree, so routing recomputes around them; callers that cache trees
// must invalidate after a change (netsim.Network.SetLinkUp does).
func (g *Graph) SetLinkUp(i int, up bool) {
	if i < 0 || i >= len(g.links) {
		panic(fmt.Sprintf("topology: SetLinkUp on unknown link %d", i))
	}
	if g.down == nil {
		if up {
			return
		}
		g.down = make([]bool, len(g.links))
	}
	g.down[i] = !up
}

// LinkUp reports whether link i is enabled (all links start enabled).
func (g *Graph) LinkUp(i int) bool { return g.down == nil || !g.down[i] }

// Clone returns a deep copy of the graph, so fault-injection runs can
// mutate link state without contaminating a shared topology spec.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, links: append([]Link(nil), g.links...), adj: make([][]edge, g.n)}
	for v := range g.adj {
		c.adj[v] = append([]edge(nil), g.adj[v]...)
	}
	if g.down != nil {
		c.down = append([]bool(nil), g.down...)
	}
	return c
}

// LossFrom returns the loss probability for traffic flowing out of node
// from over link i.
func (g *Graph) LossFrom(i int, from NodeID) float64 {
	l := g.links[i]
	if from == l.A {
		return l.LossAB
	}
	return l.LossBA
}

// Neighbors returns the IDs of nodes adjacent to v.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	out := make([]NodeID, len(g.adj[v]))
	for i, e := range g.adj[v] {
		out[i] = e.peer
	}
	return out
}

// Tree is a source-rooted routing tree: the union of latency-shortest
// paths from Root to every reachable node.
type Tree struct {
	Root NodeID
	// Parent[v] is v's parent toward the root; Parent[Root] = Root.
	// Unreachable nodes have Parent = -1.
	Parent []NodeID
	// ParentLink[v] is the index of the link joining v to Parent[v],
	// or -1 for the root / unreachable nodes.
	ParentLink []int
	// Children[v] lists v's children in the tree.
	Children [][]NodeID
	// Dist[v] is the total propagation latency from the root to v
	// (eventq.Never if unreachable).
	Dist []eventq.Duration
}

// SPFTree computes the shortest-path (by propagation latency) tree rooted
// at src using Dijkstra's algorithm. Ties are broken toward the
// lower-numbered parent for determinism.
func (g *Graph) SPFTree(src NodeID) *Tree {
	const inf = eventq.Duration(math.MaxFloat64)
	dist := make([]eventq.Duration, g.n)
	parent := make([]NodeID, g.n)
	plink := make([]int, g.n)
	done := make([]bool, g.n)
	for i := range dist {
		dist[i] = inf
		parent[i] = -1
		plink[i] = -1
	}
	dist[src] = 0
	parent[src] = src

	// The graphs here are small (≤ tens of thousands of nodes), so a
	// simple O(n²) selection loop is clear and fast enough; the national
	// hierarchy experiment uses the analytic model instead of routing.
	for {
		best := NodeID(-1)
		bd := inf
		for v := 0; v < g.n; v++ {
			if !done[v] && dist[v] < bd {
				bd = dist[v]
				best = NodeID(v)
			}
		}
		if best < 0 {
			break
		}
		done[best] = true
		for _, e := range g.adj[best] {
			if g.down != nil && g.down[e.link] {
				continue
			}
			nd := dist[best] + g.links[e.link].Latency
			if nd < dist[e.peer] || (nd == dist[e.peer] && parent[e.peer] >= 0 && best < parent[e.peer] && !done[e.peer]) {
				dist[e.peer] = nd
				parent[e.peer] = best
				plink[e.peer] = e.link
			}
		}
	}

	children := make([][]NodeID, g.n)
	for v := 0; v < g.n; v++ {
		if NodeID(v) != src && parent[v] >= 0 {
			children[parent[v]] = append(children[parent[v]], NodeID(v))
		}
	}
	for v := range dist {
		if dist[v] == inf {
			dist[v] = eventq.Duration(math.MaxFloat64)
		}
	}
	return &Tree{Root: src, Parent: parent, ParentLink: plink, Children: children, Dist: dist}
}

// PathLinks returns the link indices along the tree path from the root to
// v, in root→v order. It returns nil for the root and for unreachable
// nodes.
func (t *Tree) PathLinks(v NodeID) []int {
	if v == t.Root || t.Parent[v] < 0 {
		return nil
	}
	var rev []int
	for u := v; u != t.Root; u = t.Parent[u] {
		rev = append(rev, t.ParentLink[u])
	}
	out := make([]int, len(rev))
	for i, l := range rev {
		out[len(rev)-1-i] = l
	}
	return out
}

// CompoundLoss returns the probability that a loss-eligible packet sent by
// the root fails to reach v, compounding per-link loss along the tree
// path: 1 - Π(1 - loss_i).
func (g *Graph) CompoundLoss(t *Tree, v NodeID) float64 {
	if v == t.Root {
		return 0
	}
	pOK := 1.0
	u := v
	for u != t.Root {
		li := t.ParentLink[u]
		if li < 0 {
			return 1
		}
		pOK *= 1 - g.LossFrom(li, t.Parent[u])
		u = t.Parent[u]
	}
	return 1 - pOK
}

// RTT returns the round-trip propagation latency between a and b along
// shortest paths (2 × one-way latency; the graphs here are symmetric).
func (g *Graph) RTT(a, b NodeID) eventq.Duration {
	t := g.SPFTree(a)
	return 2 * t.Dist[b]
}
