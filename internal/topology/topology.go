// Package topology models the simulated network: nodes joined by duplex
// links with bandwidth, propagation latency and per-direction loss rates,
// plus shortest-path routing and source-rooted multicast trees.
//
// It also provides builders for every network the paper uses: chains,
// stars and balanced trees (ZCR-election tests, §6.1), the Figure-10
// hybrid mesh-tree used for all data/repair simulations (§6.2), and the
// 4-level national distribution hierarchy of Figures 7–8.
package topology

import (
	"fmt"
	"math"

	"sharqfec/internal/eventq"
)

// NodeID identifies a node. IDs are dense, starting at zero.
type NodeID int

// NoNode is the sentinel for "no node" (unknown ZCR, absent peer).
const NoNode = NodeID(-1)

// Link is a duplex link between two nodes.
type Link struct {
	A, B NodeID
	// Bandwidth is the transmission rate in bits per second (per
	// direction).
	Bandwidth float64
	// Latency is the one-way propagation delay.
	Latency eventq.Duration
	// LossAB and LossBA are the packet loss probabilities in each
	// direction, applied to loss-eligible packets only.
	LossAB, LossBA float64
}

// edge is one direction of a link in the adjacency structure.
type edge struct {
	peer NodeID
	link int // index into Graph.links
}

// Graph is an undirected multigraph of nodes and duplex links.
type Graph struct {
	n     int
	links []Link
	adj   [][]edge
	// down marks administratively disabled links (fault injection).
	// nil until the first SetLinkUp(false), so static simulations pay
	// nothing for the feature. ndown counts currently disabled links.
	down  []bool
	ndown int
}

// New creates a graph with n nodes and no links.
func New(n int) *Graph {
	if n < 1 {
		panic("topology: graph needs at least one node")
	}
	return &Graph{n: n, adj: make([][]edge, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumLinks returns the number of duplex links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Link returns the i'th link.
func (g *Graph) Link(i int) Link { return g.links[i] }

// AddLink adds a duplex link with symmetric loss and returns its index.
func (g *Graph) AddLink(a, b NodeID, bandwidth float64, latency eventq.Duration, loss float64) int {
	return g.AddLinkAsym(a, b, bandwidth, latency, loss, loss)
}

// AddLinkAsym adds a duplex link with per-direction loss rates and returns
// its index.
func (g *Graph) AddLinkAsym(a, b NodeID, bandwidth float64, latency eventq.Duration, lossAB, lossBA float64) int {
	if a < 0 || int(a) >= g.n || b < 0 || int(b) >= g.n {
		panic(fmt.Sprintf("topology: link %d-%d out of range (n=%d)", a, b, g.n))
	}
	if a == b {
		panic("topology: self-link")
	}
	if bandwidth <= 0 {
		panic("topology: non-positive bandwidth")
	}
	if latency < 0 {
		panic("topology: negative latency")
	}
	idx := len(g.links)
	g.links = append(g.links, Link{A: a, B: b, Bandwidth: bandwidth, Latency: latency, LossAB: lossAB, LossBA: lossBA})
	g.adj[a] = append(g.adj[a], edge{peer: b, link: idx})
	g.adj[b] = append(g.adj[b], edge{peer: a, link: idx})
	return idx
}

// SetLinkUp enables or disables link i. Disabled links are skipped by
// SPFTree, so routing recomputes around them; callers that cache trees
// must invalidate after a change (netsim.Network.SetLinkUp does).
func (g *Graph) SetLinkUp(i int, up bool) {
	if i < 0 || i >= len(g.links) {
		panic(fmt.Sprintf("topology: SetLinkUp on unknown link %d", i))
	}
	if g.down == nil {
		if up {
			return
		}
		g.down = make([]bool, len(g.links))
	}
	if g.down[i] == !up {
		return
	}
	g.down[i] = !up
	if up {
		g.ndown--
	} else {
		g.ndown++
	}
}

// LinkUp reports whether link i is enabled (all links start enabled).
func (g *Graph) LinkUp(i int) bool { return g.down == nil || !g.down[i] }

// AllLinksUp reports whether no link is currently disabled — the guard
// for fast paths (like tree-climbing multicast plans) that assume the
// graph's static connectivity.
func (g *Graph) AllLinksUp() bool { return g.ndown == 0 }

// Clone returns a deep copy of the graph, so fault-injection runs can
// mutate link state without contaminating a shared topology spec.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, links: append([]Link(nil), g.links...), adj: make([][]edge, g.n)}
	for v := range g.adj {
		c.adj[v] = append([]edge(nil), g.adj[v]...)
	}
	if g.down != nil {
		c.down = append([]bool(nil), g.down...)
		c.ndown = g.ndown
	}
	return c
}

// LossFrom returns the loss probability for traffic flowing out of node
// from over link i.
func (g *Graph) LossFrom(i int, from NodeID) float64 {
	l := g.links[i]
	if from == l.A {
		return l.LossAB
	}
	return l.LossBA
}

// LinkBetween returns the index of a link joining u and v, or -1 if
// they are not adjacent. With parallel links the lowest index wins.
func (g *Graph) LinkBetween(u, v NodeID) int {
	for _, e := range g.adj[u] {
		if e.peer == v {
			return e.link
		}
	}
	return -1
}

// Neighbors returns the IDs of nodes adjacent to v.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	out := make([]NodeID, len(g.adj[v]))
	for i, e := range g.adj[v] {
		out[i] = e.peer
	}
	return out
}

// Tree is a source-rooted routing tree: the union of latency-shortest
// paths from Root to every reachable node.
type Tree struct {
	Root NodeID
	// Parent[v] is v's parent toward the root; Parent[Root] = Root.
	// Unreachable nodes have Parent = -1.
	Parent []NodeID
	// ParentLink[v] is the index of the link joining v to Parent[v],
	// or -1 for the root / unreachable nodes.
	ParentLink []int
	// Children[v] lists v's children in the tree.
	Children [][]NodeID
	// Dist[v] is the total propagation latency from the root to v
	// (eventq.Never if unreachable).
	Dist []eventq.Duration
}

// SPFTree computes the shortest-path (by propagation latency) tree rooted
// at src using Dijkstra's algorithm. Ties are broken toward the
// lower-numbered parent for determinism.
func (g *Graph) SPFTree(src NodeID) *Tree {
	const inf = eventq.Duration(math.MaxFloat64)
	dist := make([]eventq.Duration, g.n)
	parent := make([]NodeID, g.n)
	plink := make([]int, g.n)
	done := make([]bool, g.n)
	for i := range dist {
		dist[i] = inf
		parent[i] = -1
		plink[i] = -1
	}
	dist[src] = 0
	parent[src] = src

	// Lazy-deletion binary heap keyed (dist, node id). This replaces the
	// original O(n²) selection scan — which that scan's "first strictly
	// smaller" rule made pick the lowest-numbered node among the
	// minimum-distance frontier — with the identical extraction order at
	// O((n+m) log n), the difference between seconds and hours on the
	// 10⁵-node sharded-scaling topologies. Entries are pushed only on
	// strict distance improvements; an equal-distance parent improvement
	// leaves the node's key unchanged, so no re-push is needed and the
	// pop order (hence the whole tree) is byte-identical to the scan.
	type heapNode struct {
		d eventq.Duration
		v NodeID
	}
	h := make([]heapNode, 0, 64)
	hless := func(a, b heapNode) bool {
		if a.d != b.d {
			return a.d < b.d
		}
		return a.v < b.v
	}
	push := func(d eventq.Duration, v NodeID) {
		h = append(h, heapNode{d, v})
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if !hless(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	pop := func() heapNode {
		top := h[0]
		n := len(h) - 1
		h[0] = h[n]
		h = h[:n]
		for i := 0; ; {
			c := 2*i + 1
			if c >= n {
				break
			}
			if c+1 < n && hless(h[c+1], h[c]) {
				c++
			}
			if !hless(h[c], h[i]) {
				break
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
		return top
	}
	push(0, src)
	for len(h) > 0 {
		top := pop()
		best := top.v
		if done[best] || top.d != dist[best] {
			continue // stale entry superseded by a strict improvement
		}
		done[best] = true
		for _, e := range g.adj[best] {
			if g.down != nil && g.down[e.link] {
				continue
			}
			nd := dist[best] + g.links[e.link].Latency
			if nd < dist[e.peer] {
				dist[e.peer] = nd
				parent[e.peer] = best
				plink[e.peer] = e.link
				push(nd, e.peer)
			} else if nd == dist[e.peer] && parent[e.peer] >= 0 && best < parent[e.peer] && !done[e.peer] {
				// Tie toward the lower-numbered parent, as before; the
				// node's distance key is unchanged, so its existing heap
				// entry stays valid.
				parent[e.peer] = best
				plink[e.peer] = e.link
			}
		}
	}

	children := make([][]NodeID, g.n)
	for v := 0; v < g.n; v++ {
		if NodeID(v) != src && parent[v] >= 0 {
			children[parent[v]] = append(children[parent[v]], NodeID(v))
		}
	}
	for v := range dist {
		if dist[v] == inf {
			dist[v] = eventq.Duration(math.MaxFloat64)
		}
	}
	return &Tree{Root: src, Parent: parent, ParentLink: plink, Children: children, Dist: dist}
}

// PathLinks returns the link indices along the tree path from the root to
// v, in root→v order. It returns nil for the root and for unreachable
// nodes.
func (t *Tree) PathLinks(v NodeID) []int {
	if v == t.Root || t.Parent[v] < 0 {
		return nil
	}
	var rev []int
	for u := v; u != t.Root; u = t.Parent[u] {
		rev = append(rev, t.ParentLink[u])
	}
	out := make([]int, len(rev))
	for i, l := range rev {
		out[len(rev)-1-i] = l
	}
	return out
}

// CompoundLoss returns the probability that a loss-eligible packet sent by
// the root fails to reach v, compounding per-link loss along the tree
// path: 1 - Π(1 - loss_i).
func (g *Graph) CompoundLoss(t *Tree, v NodeID) float64 {
	if v == t.Root {
		return 0
	}
	pOK := 1.0
	u := v
	for u != t.Root {
		li := t.ParentLink[u]
		if li < 0 {
			return 1
		}
		pOK *= 1 - g.LossFrom(li, t.Parent[u])
		u = t.Parent[u]
	}
	return 1 - pOK
}

// RTT returns the round-trip propagation latency between a and b along
// shortest paths (2 × one-way latency; the graphs here are symmetric).
func (g *Graph) RTT(a, b NodeID) eventq.Duration {
	t := g.SPFTree(a)
	return 2 * t.Dist[b]
}
