package topology

import (
	"fmt"
	"math"
	"math/rand/v2"

	"sharqfec/internal/eventq"
)

// This file holds the size-parameterized topology generators used by
// the large-N measured scaling experiments, beyond the paper's fixed
// 4-level national hierarchy: ISP-like power-law hierarchies (a few
// giant points of presence, a long tail of small ones) and wide/flat
// fan-out shapes (the worst case for scoping, since almost every
// receiver is one hop from the backbone). Both follow the builders.go
// conventions: node 0 is the source, infrastructure caches are
// receivers with their own zones, and zone IDs are dense in creation
// order with zone 0 the root.

// PowerLawParams sizes an ISP-like hierarchy. Subscriber mass across
// points of presence follows a bounded power law: PoP ranked r gets
// weight (r+1)^-Alpha, scaled to the receiver target, so a few PoPs are
// huge and most are small — the degree shape measured in real ISP maps.
// Each PoP splays its subscribers across aggregation routers of at most
// MaxDegree ports.
type PowerLawParams struct {
	// PoPs is the number of tier-1 points of presence (default 16).
	PoPs int
	// Subscribers is the target leaf-subscriber total (default 1024).
	Subscribers int
	// Alpha is the power-law exponent (default 2.2; larger = more skew).
	Alpha float64
	// MaxDegree caps any router's subscriber fan-out (default 64).
	MaxDegree int
	// Seed drives the ±30% jitter applied to each PoP's rank weight, so
	// different seeds give different (but reproducible) instances.
	Seed uint64

	// Link parameters; zero values default to 45 Mbit/s 15 ms core
	// links and 10 Mbit/s 8 ms edge links with Loss on the edge only.
	CoreBandwidth, EdgeBandwidth float64
	CoreLatency, EdgeLatency     eventq.Duration
	Loss                         float64
}

func (p *PowerLawParams) defaults() {
	if p.PoPs == 0 {
		p.PoPs = 16
	}
	if p.Subscribers == 0 {
		p.Subscribers = 1024
	}
	if p.Alpha == 0 {
		p.Alpha = 2.2
	}
	if p.MaxDegree == 0 {
		p.MaxDegree = 64
	}
	if p.CoreBandwidth == 0 {
		p.CoreBandwidth = 45e6
	}
	if p.EdgeBandwidth == 0 {
		p.EdgeBandwidth = 10e6
	}
	if p.CoreLatency == 0 {
		p.CoreLatency = 0.015
	}
	if p.EdgeLatency == 0 {
		p.EdgeLatency = 0.008
	}
}

// PowerLawSubscriberCounts returns the per-PoP subscriber allocation the
// generator will use — exported so tests can assert the distribution's
// shape without rebuilding the graph.
func PowerLawSubscriberCounts(p PowerLawParams) []int {
	p.defaults()
	rng := rand.New(rand.NewPCG(p.Seed, 0x9e3779b97f4a7c15))
	weights := make([]float64, p.PoPs)
	total := 0.0
	for r := range weights {
		w := math.Pow(float64(r+1), -p.Alpha)
		w *= 0.7 + 0.6*rng.Float64() // reproducible instance jitter
		weights[r] = w
		total += w
	}
	counts := make([]int, p.PoPs)
	assigned := 0
	for r, w := range weights {
		c := int(math.Round(w / total * float64(p.Subscribers)))
		if c < 1 {
			c = 1 // every PoP serves someone
		}
		counts[r] = c
		assigned += c
	}
	// Rounding drift lands on the largest PoP, keeping the tail intact.
	counts[0] += p.Subscribers - assigned
	if counts[0] < 1 {
		counts[0] = 1
	}
	return counts
}

// PowerLawISP builds the ISP-like hierarchy: source → PoP routers
// (power-law subscriber mass) → aggregation routers (≤ MaxDegree ports)
// → subscribers. PoP and aggregation routers are dedicated caching
// receivers rooting their own zones, exactly like the national
// hierarchy's regional and city caches.
func PowerLawISP(p PowerLawParams) *Spec {
	p.defaults()
	counts := PowerLawSubscriberCounts(p)

	total := 1 + p.PoPs // source + PoP routers
	for _, c := range counts {
		aggs := (c + p.MaxDegree - 1) / p.MaxDegree
		total += aggs + c
	}
	g := New(total)
	spec := &Spec{Graph: g, Source: 0, Name: fmt.Sprintf("powerlaw-%d-%d", p.PoPs, p.Subscribers)}
	spec.Zones = append(spec.Zones, ZoneSpec{ID: 0, Parent: -1, Leaves: []NodeID{0}})

	next := NodeID(1)
	zoneID := 1
	for r, c := range counts {
		pop := next
		next++
		g.AddLink(0, pop, p.CoreBandwidth, p.CoreLatency, 0)
		spec.Receivers = append(spec.Receivers, pop)
		popZone := zoneID
		spec.Zones = append(spec.Zones, ZoneSpec{ID: popZone, Parent: 0, Leaves: []NodeID{pop}})
		zoneID++

		aggs := (c + p.MaxDegree - 1) / p.MaxDegree
		left := c
		for a := 0; a < aggs; a++ {
			agg := next
			next++
			g.AddLink(pop, agg, p.EdgeBandwidth, p.CoreLatency, 0)
			spec.Receivers = append(spec.Receivers, agg)
			aggZone := zoneID
			spec.Zones = append(spec.Zones, ZoneSpec{ID: aggZone, Parent: popZone, Leaves: []NodeID{agg}})
			zoneID++

			ports := p.MaxDegree
			if left < ports {
				ports = left
			}
			left -= ports
			leaf := ZoneSpec{ID: zoneID, Parent: aggZone}
			zoneID++
			for s := 0; s < ports; s++ {
				sub := next
				next++
				g.AddLink(agg, sub, p.EdgeBandwidth, p.EdgeLatency, p.Loss)
				spec.Receivers = append(spec.Receivers, sub)
				leaf.Leaves = append(leaf.Leaves, sub)
			}
			spec.Zones = append(spec.Zones, leaf)
		}
		_ = r
	}
	if int(next) != total {
		panic("topology: powerlaw node count mismatch")
	}
	return spec
}

// FlatParams sizes a wide/flat fan-out shape: the source feeds Routers
// edge routers, each serving ReceiversPerRouter subscribers — only two
// hops deep no matter how wide it grows. It is the stress case for
// scoped recovery (zones barely nest) and the natural shape for CDN-pop
// style distribution.
type FlatParams struct {
	// Routers is the edge-router count (default 8).
	Routers int
	// ReceiversPerRouter is each router's subscriber count (default 128).
	ReceiversPerRouter int

	// Link parameters; zero values default to 45 Mbit/s 12 ms trunk
	// links and 10 Mbit/s 8 ms subscriber links with Loss on the edge.
	TrunkBandwidth, EdgeBandwidth float64
	TrunkLatency, EdgeLatency     eventq.Duration
	Loss                          float64
}

func (p *FlatParams) defaults() {
	if p.Routers == 0 {
		p.Routers = 8
	}
	if p.ReceiversPerRouter == 0 {
		p.ReceiversPerRouter = 128
	}
	if p.TrunkBandwidth == 0 {
		p.TrunkBandwidth = 45e6
	}
	if p.EdgeBandwidth == 0 {
		p.EdgeBandwidth = 10e6
	}
	if p.TrunkLatency == 0 {
		p.TrunkLatency = 0.012
	}
	if p.EdgeLatency == 0 {
		p.EdgeLatency = 0.008
	}
}

// FlatFanout builds the wide/flat shape. Each edge router is a caching
// receiver rooting a two-level zone (router zone → subscriber leaf
// zone), so the hierarchy is as shallow as the network.
func FlatFanout(p FlatParams) *Spec {
	p.defaults()
	total := 1 + p.Routers*(1+p.ReceiversPerRouter)
	g := New(total)
	spec := &Spec{Graph: g, Source: 0, Name: fmt.Sprintf("flat-%dx%d", p.Routers, p.ReceiversPerRouter)}
	spec.Zones = append(spec.Zones, ZoneSpec{ID: 0, Parent: -1, Leaves: []NodeID{0}})

	next := NodeID(1)
	zoneID := 1
	for r := 0; r < p.Routers; r++ {
		router := next
		next++
		g.AddLink(0, router, p.TrunkBandwidth, p.TrunkLatency, 0)
		spec.Receivers = append(spec.Receivers, router)
		routerZone := zoneID
		spec.Zones = append(spec.Zones, ZoneSpec{ID: routerZone, Parent: 0, Leaves: []NodeID{router}})
		zoneID++
		leaf := ZoneSpec{ID: zoneID, Parent: routerZone}
		zoneID++
		for s := 0; s < p.ReceiversPerRouter; s++ {
			sub := next
			next++
			g.AddLink(router, sub, p.EdgeBandwidth, p.EdgeLatency, p.Loss)
			spec.Receivers = append(spec.Receivers, sub)
			leaf.Leaves = append(leaf.Leaves, sub)
		}
		spec.Zones = append(spec.Zones, leaf)
	}
	if int(next) != total {
		panic("topology: flat fan-out node count mismatch")
	}
	return spec
}
