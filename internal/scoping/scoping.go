// Package scoping models a hierarchy of administratively scoped multicast
// zones (SHARQFEC §3.2). Zones form a tree rooted at the global zone Z0.
// Each session member has a *smallest* (leaf) zone and is implicitly a
// member of every ancestor zone up to the root, so a packet multicast
// "with the scope of" zone Z reaches exactly the members whose leaf-zone
// chain includes Z.
package scoping

import (
	"fmt"
	"sort"

	"sharqfec/internal/topology"
)

// ZoneID identifies a zone within a Hierarchy.
type ZoneID int

// NoZone is returned by lookups that find no zone.
const NoZone = ZoneID(-1)

type zone struct {
	id       ZoneID
	parent   ZoneID
	children []ZoneID
	level    int // 0 = root
	leaves   []topology.NodeID
	members  []topology.NodeID // leaves of this zone and all descendants
}

// Hierarchy is an immutable zone tree built from a topology zone spec.
type Hierarchy struct {
	zones    []zone
	root     ZoneID
	leafZone map[topology.NodeID]ZoneID
}

// Build constructs a Hierarchy from builder zone specs. Exactly one spec
// must have Parent == -1 (the global zone). Every node may appear in at
// most one spec's Leaves.
func Build(specs []topology.ZoneSpec) (*Hierarchy, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("scoping: no zones")
	}
	h := &Hierarchy{
		zones:    make([]zone, len(specs)),
		root:     NoZone,
		leafZone: make(map[topology.NodeID]ZoneID),
	}
	index := make(map[int]ZoneID, len(specs))
	for i, s := range specs {
		if _, dup := index[s.ID]; dup {
			return nil, fmt.Errorf("scoping: duplicate zone id %d", s.ID)
		}
		index[s.ID] = ZoneID(i)
	}
	for i, s := range specs {
		z := &h.zones[i]
		z.id = ZoneID(i)
		z.leaves = append([]topology.NodeID(nil), s.Leaves...)
		if s.Parent == -1 {
			if h.root != NoZone {
				return nil, fmt.Errorf("scoping: multiple root zones")
			}
			h.root = ZoneID(i)
			z.parent = NoZone
			continue
		}
		p, ok := index[s.Parent]
		if !ok {
			return nil, fmt.Errorf("scoping: zone %d has unknown parent %d", s.ID, s.Parent)
		}
		z.parent = p
	}
	if h.root == NoZone {
		return nil, fmt.Errorf("scoping: no root zone")
	}
	for i := range h.zones {
		if p := h.zones[i].parent; p != NoZone {
			h.zones[p].children = append(h.zones[p].children, ZoneID(i))
		}
	}
	// Levels + cycle detection via BFS from root.
	seen := make([]bool, len(h.zones))
	queue := []ZoneID{h.root}
	seen[h.root] = true
	for len(queue) > 0 {
		z := queue[0]
		queue = queue[1:]
		for _, c := range h.zones[z].children {
			if seen[c] {
				return nil, fmt.Errorf("scoping: cycle at zone %d", c)
			}
			seen[c] = true
			h.zones[c].level = h.zones[z].level + 1
			queue = append(queue, c)
		}
	}
	for i, s := range seen {
		if !s {
			return nil, fmt.Errorf("scoping: zone %d unreachable from root", i)
		}
	}
	// Leaf-zone map and member sets.
	for i := range h.zones {
		for _, n := range h.zones[i].leaves {
			if _, dup := h.leafZone[n]; dup {
				return nil, fmt.Errorf("scoping: node %d has two leaf zones", n)
			}
			h.leafZone[n] = ZoneID(i)
		}
	}
	for n, z := range h.leafZone {
		for cur := z; cur != NoZone; cur = h.zones[cur].parent {
			h.zones[cur].members = append(h.zones[cur].members, n)
		}
	}
	for i := range h.zones {
		m := h.zones[i].members
		sort.Slice(m, func(a, b int) bool { return m[a] < m[b] })
	}
	return h, nil
}

// MustBuild is Build but panics on error; for builders whose specs are
// constructed programmatically and cannot be invalid.
func MustBuild(specs []topology.ZoneSpec) *Hierarchy {
	h, err := Build(specs)
	if err != nil {
		panic(err)
	}
	return h
}

// Specs reconstructs the builder zone specs this hierarchy was built
// from, in zone-ID order, so a modified copy can be rebuilt with
// identical ZoneID numbering.
func (h *Hierarchy) Specs() []topology.ZoneSpec {
	specs := make([]topology.ZoneSpec, len(h.zones))
	for i := range h.zones {
		parent := -1
		if h.zones[i].parent != NoZone {
			parent = int(h.zones[i].parent)
		}
		specs[i] = topology.ZoneSpec{
			ID:     i,
			Parent: parent,
			Leaves: append([]topology.NodeID(nil), h.zones[i].leaves...),
		}
	}
	return specs
}

// WithoutMember returns a new hierarchy with node n removed from the
// session (its leaf zone keeps its place in the tree, so ZoneIDs are
// unchanged). It is the membership-change seam the fault engine uses for
// mid-session leaves; pair it with netsim.Network.SetHierarchy so cached
// delivery sets are invalidated.
func (h *Hierarchy) WithoutMember(n topology.NodeID) (*Hierarchy, error) {
	z, ok := h.leafZone[n]
	if !ok {
		return nil, fmt.Errorf("scoping: node %d is not a session member", n)
	}
	specs := h.Specs()
	leaves := specs[z].Leaves[:0]
	for _, l := range specs[z].Leaves {
		if l != n {
			leaves = append(leaves, l)
		}
	}
	specs[z].Leaves = leaves
	return Build(specs)
}

// Root returns the global zone.
func (h *Hierarchy) Root() ZoneID { return h.root }

// NumZones returns the number of zones.
func (h *Hierarchy) NumZones() int { return len(h.zones) }

// Parent returns z's parent zone, or NoZone for the root.
func (h *Hierarchy) Parent(z ZoneID) ZoneID { return h.zones[z].parent }

// Children returns z's child zones.
func (h *Hierarchy) Children(z ZoneID) []ZoneID { return h.zones[z].children }

// Level returns z's depth (root = 0).
func (h *Hierarchy) Level(z ZoneID) int { return h.zones[z].level }

// LeafZone returns the smallest zone containing node n, or NoZone if n is
// not a session member.
func (h *Hierarchy) LeafZone(n topology.NodeID) ZoneID {
	z, ok := h.leafZone[n]
	if !ok {
		return NoZone
	}
	return z
}

// ZonesOf returns the chain of zones containing n, smallest first and the
// root last. It returns nil for non-members.
func (h *Hierarchy) ZonesOf(n topology.NodeID) []ZoneID {
	z, ok := h.leafZone[n]
	if !ok {
		return nil
	}
	var out []ZoneID
	for cur := z; cur != NoZone; cur = h.zones[cur].parent {
		out = append(out, cur)
	}
	return out
}

// Members returns every session member of zone z (nodes whose leaf-zone
// chain includes z), sorted by node ID. The returned slice is shared; do
// not modify it.
func (h *Hierarchy) Members(z ZoneID) []topology.NodeID { return h.zones[z].members }

// Leaves returns the nodes whose smallest zone is z. The returned slice
// is shared; do not modify it.
func (h *Hierarchy) Leaves(z ZoneID) []topology.NodeID { return h.zones[z].leaves }

// Contains reports whether node n is a member of zone z.
func (h *Hierarchy) Contains(z ZoneID, n topology.NodeID) bool {
	for cur, ok := h.leafZone[n]; ok && cur != NoZone; cur = h.zones[cur].parent {
		if cur == z {
			return true
		}
	}
	return false
}

// IsAncestor reports whether a is an ancestor of (or equal to) b.
func (h *Hierarchy) IsAncestor(a, b ZoneID) bool {
	for cur := b; cur != NoZone; cur = h.zones[cur].parent {
		if cur == a {
			return true
		}
	}
	return false
}

// Escalate returns the next-largest zone above z, or z itself if z is
// already the root. Receivers use it to widen NACK scope (§4, repair
// phase rules).
func (h *Hierarchy) Escalate(z ZoneID) ZoneID {
	if p := h.zones[z].parent; p != NoZone {
		return p
	}
	return z
}

// CommonZone returns the smallest zone containing both a and b, or NoZone
// if either is not a member.
func (h *Hierarchy) CommonZone(a, b topology.NodeID) ZoneID {
	za := h.ZonesOf(a)
	zb := h.ZonesOf(b)
	if za == nil || zb == nil {
		return NoZone
	}
	inB := make(map[ZoneID]bool, len(zb))
	for _, z := range zb {
		inB[z] = true
	}
	for _, z := range za {
		if inB[z] {
			return z
		}
	}
	return NoZone
}
