package scoping

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"sharqfec/internal/topology"
)

// threeLevel builds the Figure-3-style hierarchy used across these tests:
//
//	Z0 {0} — Z1 {1} — Z3 {3,4}, Z4 {5,6}
//	        \ Z2 {2} — Z5 {7,8}, Z6 {9,10}
func threeLevel(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := Build([]topology.ZoneSpec{
		{ID: 0, Parent: -1, Leaves: []topology.NodeID{0}},
		{ID: 1, Parent: 0, Leaves: []topology.NodeID{1}},
		{ID: 2, Parent: 0, Leaves: []topology.NodeID{2}},
		{ID: 3, Parent: 1, Leaves: []topology.NodeID{3, 4}},
		{ID: 4, Parent: 1, Leaves: []topology.NodeID{5, 6}},
		{ID: 5, Parent: 2, Leaves: []topology.NodeID{7, 8}},
		{ID: 6, Parent: 2, Leaves: []topology.NodeID{9, 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestBuildBasics(t *testing.T) {
	h := threeLevel(t)
	if h.NumZones() != 7 {
		t.Fatalf("zones = %d", h.NumZones())
	}
	if h.Level(h.Root()) != 0 {
		t.Fatal("root level != 0")
	}
}

func TestLevels(t *testing.T) {
	h := threeLevel(t)
	if h.Level(1) != 1 || h.Level(3) != 2 {
		t.Fatalf("levels wrong: %d %d", h.Level(1), h.Level(3))
	}
}

func TestLeafZone(t *testing.T) {
	h := threeLevel(t)
	cases := map[topology.NodeID]ZoneID{0: 0, 1: 1, 2: 2, 3: 3, 5: 4, 8: 5, 10: 6}
	for n, want := range cases {
		if got := h.LeafZone(n); got != want {
			t.Fatalf("LeafZone(%d) = %d, want %d", n, got, want)
		}
	}
	if h.LeafZone(99) != NoZone {
		t.Fatal("non-member should have NoZone")
	}
}

func TestZonesOfChain(t *testing.T) {
	h := threeLevel(t)
	got := h.ZonesOf(5)
	want := []ZoneID{4, 1, 0}
	if len(got) != len(want) {
		t.Fatalf("ZonesOf(5) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ZonesOf(5) = %v, want %v", got, want)
		}
	}
	if h.ZonesOf(42) != nil {
		t.Fatal("ZonesOf(non-member) should be nil")
	}
}

func TestMembersAggregation(t *testing.T) {
	h := threeLevel(t)
	if got := len(h.Members(0)); got != 11 {
		t.Fatalf("|members(Z0)| = %d, want 11", got)
	}
	if got := len(h.Members(1)); got != 5 { // 1,3,4,5,6
		t.Fatalf("|members(Z1)| = %d, want 5", got)
	}
	if got := len(h.Members(4)); got != 2 {
		t.Fatalf("|members(Z4)| = %d, want 2", got)
	}
	// Members must be sorted.
	m := h.Members(1)
	for i := 1; i < len(m); i++ {
		if m[i-1] >= m[i] {
			t.Fatalf("members not sorted: %v", m)
		}
	}
}

func TestContains(t *testing.T) {
	h := threeLevel(t)
	if !h.Contains(0, 10) {
		t.Fatal("Z0 should contain node 10")
	}
	if !h.Contains(2, 7) {
		t.Fatal("Z2 should contain node 7")
	}
	if h.Contains(1, 7) {
		t.Fatal("Z1 should not contain node 7")
	}
	if h.Contains(3, 99) {
		t.Fatal("non-member contained")
	}
}

func TestIsAncestor(t *testing.T) {
	h := threeLevel(t)
	if !h.IsAncestor(0, 6) || !h.IsAncestor(2, 5) || !h.IsAncestor(3, 3) {
		t.Fatal("ancestor relations wrong")
	}
	if h.IsAncestor(1, 5) {
		t.Fatal("Z1 is not an ancestor of Z5")
	}
}

func TestEscalate(t *testing.T) {
	h := threeLevel(t)
	if h.Escalate(4) != 1 {
		t.Fatalf("Escalate(Z4) = %d", h.Escalate(4))
	}
	if h.Escalate(1) != 0 {
		t.Fatalf("Escalate(Z1) = %d", h.Escalate(1))
	}
	if h.Escalate(0) != 0 {
		t.Fatal("Escalate(root) should be root")
	}
}

func TestCommonZone(t *testing.T) {
	h := threeLevel(t)
	if z := h.CommonZone(3, 4); z != 3 {
		t.Fatalf("CommonZone(3,4) = %d, want 3", z)
	}
	if z := h.CommonZone(3, 5); z != 1 {
		t.Fatalf("CommonZone(3,5) = %d, want 1", z)
	}
	if z := h.CommonZone(3, 9); z != 0 {
		t.Fatalf("CommonZone(3,9) = %d, want 0", z)
	}
	if z := h.CommonZone(3, 99); z != NoZone {
		t.Fatal("CommonZone with non-member should be NoZone")
	}
}

func TestParentChildren(t *testing.T) {
	h := threeLevel(t)
	if h.Parent(h.Root()) != NoZone {
		t.Fatal("root parent should be NoZone")
	}
	if len(h.Children(0)) != 2 || len(h.Children(1)) != 2 || len(h.Children(3)) != 0 {
		t.Fatal("children counts wrong")
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name  string
		specs []topology.ZoneSpec
	}{
		{"empty", nil},
		{"no root", []topology.ZoneSpec{{ID: 0, Parent: 1}, {ID: 1, Parent: 0}}},
		{"two roots", []topology.ZoneSpec{{ID: 0, Parent: -1}, {ID: 1, Parent: -1}}},
		{"unknown parent", []topology.ZoneSpec{{ID: 0, Parent: -1}, {ID: 1, Parent: 9}}},
		{"duplicate id", []topology.ZoneSpec{{ID: 0, Parent: -1}, {ID: 0, Parent: 0}}},
		{"dup leaf node", []topology.ZoneSpec{
			{ID: 0, Parent: -1, Leaves: []topology.NodeID{1}},
			{ID: 1, Parent: 0, Leaves: []topology.NodeID{1}},
		}},
	}
	for _, c := range cases {
		if _, err := Build(c.specs); err == nil {
			t.Fatalf("%s: Build succeeded, want error", c.name)
		}
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on invalid spec")
		}
	}()
	MustBuild(nil)
}

func TestFigure10Hierarchy(t *testing.T) {
	spec := topology.Figure10(topology.Figure10Params{})
	h, err := Build(spec.Zones)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumZones() != 29 {
		t.Fatalf("zones = %d", h.NumZones())
	}
	if got := len(h.Members(h.Root())); got != 113 {
		t.Fatalf("global members = %d, want 113", got)
	}
	// Every receiver's zone chain has length 3 (leaf, intermediate,
	// global) except mesh nodes (2) and the source (1).
	for _, r := range spec.Receivers {
		n := len(h.ZonesOf(r))
		if r >= 1 && r <= 7 {
			if n != 2 {
				t.Fatalf("mesh node %d chain length %d, want 2", r, n)
			}
		} else if n != 3 {
			t.Fatalf("receiver %d chain length %d, want 3", r, n)
		}
	}
	if len(h.ZonesOf(spec.Source)) != 1 {
		t.Fatal("source should subscribe only to the global zone")
	}
}

// Property: for every node in the Figure-10 hierarchy, Members(z) for each
// z in ZonesOf(node) contains the node, and member sets grow (nest) as the
// scope widens.
func TestPropertyNestedMembership(t *testing.T) {
	spec := topology.Figure10(topology.Figure10Params{})
	h := MustBuild(spec.Zones)
	for _, n := range spec.Members() {
		chain := h.ZonesOf(n)
		prev := 0
		for _, z := range chain {
			ms := h.Members(z)
			found := false
			for _, m := range ms {
				if m == n {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("node %d missing from zone %d members", n, z)
			}
			if len(ms) < prev {
				t.Fatalf("zone %d smaller than descendant", z)
			}
			prev = len(ms)
		}
	}
}

// Property: for random zone trees, every invariant of the membership
// model holds: each member's chain is strictly nested, Members(root)
// covers everyone, and CommonZone is an ancestor of both arguments'
// leaf zones.
func TestPropertyRandomHierarchies(t *testing.T) {
	f := func(seed uint64, zRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		zones := int(zRaw%10) + 1
		nodes := int(nRaw%40) + 1
		specs := []topology.ZoneSpec{{ID: 0, Parent: -1}}
		for z := 1; z < zones; z++ {
			specs = append(specs, topology.ZoneSpec{ID: z, Parent: rng.IntN(z)})
		}
		for n := 0; n < nodes; n++ {
			z := rng.IntN(zones)
			specs[z].Leaves = append(specs[z].Leaves, topology.NodeID(n))
		}
		h, err := Build(specs)
		if err != nil {
			return false
		}
		if len(h.Members(h.Root())) != nodes {
			return false
		}
		for n := 0; n < nodes; n++ {
			chain := h.ZonesOf(topology.NodeID(n))
			if len(chain) == 0 || chain[len(chain)-1] != h.Root() {
				return false
			}
			for i := 1; i < len(chain); i++ {
				if h.Parent(chain[i-1]) != chain[i] {
					return false
				}
			}
		}
		if nodes >= 2 {
			a, b := topology.NodeID(0), topology.NodeID(1)
			cz := h.CommonZone(a, b)
			if cz == NoZone || !h.Contains(cz, a) || !h.Contains(cz, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
