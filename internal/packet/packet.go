// Package packet defines the wire formats exchanged by SHARQFEC, SRM and
// the session-management machinery: original data packets, FEC repair
// packets, NACKs, session messages, and the three ZCR-election messages.
//
// Each type has a compact big-endian binary encoding with a one-byte type
// tag, so the protocols simulated here could be bound to a real datagram
// transport without change. Inside the simulator packets travel as typed
// Go values; WireSize reports the bytes they would occupy on a link and
// drives transmission-delay and bandwidth accounting.
package packet

import (
	"encoding/binary"
	"fmt"
	"math"

	"sharqfec/internal/topology"
)

// Type tags a packet on the wire.
type Type uint8

// Wire type tags. The zero value is invalid so that an all-zeros buffer
// never decodes silently.
const (
	TypeInvalid Type = iota
	TypeData
	TypeRepair
	TypeNACK
	TypeSession
	TypeZCRChallenge
	TypeZCRResponse
	TypeZCRTakeover
)

// String returns the mnemonic used in traces and test failures.
func (t Type) String() string {
	switch t {
	case TypeData:
		return "DATA"
	case TypeRepair:
		return "REPAIR"
	case TypeNACK:
		return "NACK"
	case TypeSession:
		return "SESSION"
	case TypeZCRChallenge:
		return "ZCR-CHALLENGE"
	case TypeZCRResponse:
		return "ZCR-RESPONSE"
	case TypeZCRTakeover:
		return "ZCR-TAKEOVER"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// Packet is implemented by every wire message.
type Packet interface {
	// Kind returns the wire type tag.
	Kind() Type
	// WireSize returns the number of bytes the packet occupies on a
	// link, including headers and payload.
	WireSize() int
	// Lossy reports whether links may drop the packet. Following the
	// paper's simulation setup (§6.2), data and repair packets are
	// lossy; NACKs and session traffic are not.
	Lossy() bool
	// MarshalBinary encodes the packet, type tag first.
	MarshalBinary() ([]byte, error)
}

// Data is an original data packet within a group (§4 Loss Detection
// Phase). Seq numbers are global across the stream; Group/Index locate
// the packet within its FEC group.
type Data struct {
	Origin  topology.NodeID // stream source
	Seq     uint32          // global packet identifier
	Group   uint32          // FEC group number
	Index   uint8           // share index within the group (0..GroupSize-1)
	GroupK  uint8           // number of data packets in the group (k)
	Payload []byte          // application bytes (the FEC share content)
}

const dataHeader = 1 + 4 + 4 + 4 + 1 + 1 + 2

// Kind implements Packet.
func (p *Data) Kind() Type { return TypeData }

// WireSize implements Packet.
func (p *Data) WireSize() int { return dataHeader + len(p.Payload) }

// Lossy implements Packet.
func (p *Data) Lossy() bool { return true }

// MarshalBinary implements Packet.
func (p *Data) MarshalBinary() ([]byte, error) {
	if len(p.Payload) > math.MaxUint16 {
		return nil, fmt.Errorf("packet: data payload %d exceeds 64 KiB", len(p.Payload))
	}
	b := make([]byte, 0, p.WireSize())
	b = append(b, byte(TypeData))
	b = be32(b, uint32(p.Origin))
	b = be32(b, p.Seq)
	b = be32(b, p.Group)
	b = append(b, p.Index, p.GroupK)
	b = be16(b, uint16(len(p.Payload)))
	return append(b, p.Payload...), nil
}

// Repair is an FEC repair share for a group, injected preemptively by a
// ZCR or sent in response to NACKs (§4 Repair Phase). NewMaxSeq carries
// "what will be the new highest packet identifier" so repliers avoid
// duplicating each other's shares.
type Repair struct {
	Origin    topology.NodeID
	Group     uint32
	Index     uint8 // share index (>= GroupK)
	GroupK    uint8
	NewMaxSeq uint32 // highest share identifier after this sender's burst
	Zone      int16  // scope zone the repair is addressed to
	Payload   []byte

	// Preemptive marks shares injected ahead of demand by the
	// preemptive-FEC path, as opposed to NACK-triggered repairs. It is
	// simulator-side accounting metadata only: receivers do not act on
	// it, and it is deliberately not serialized (WireSize and
	// MarshalBinary are unchanged), so it is lost over a real transport.
	Preemptive bool
}

const repairHeader = 1 + 4 + 4 + 1 + 1 + 4 + 2 + 2

// Kind implements Packet.
func (p *Repair) Kind() Type { return TypeRepair }

// WireSize implements Packet.
func (p *Repair) WireSize() int { return repairHeader + len(p.Payload) }

// Lossy implements Packet.
func (p *Repair) Lossy() bool { return true }

// MarshalBinary implements Packet.
func (p *Repair) MarshalBinary() ([]byte, error) {
	if len(p.Payload) > math.MaxUint16 {
		return nil, fmt.Errorf("packet: repair payload %d exceeds 64 KiB", len(p.Payload))
	}
	b := make([]byte, 0, p.WireSize())
	b = append(b, byte(TypeRepair))
	b = be32(b, uint32(p.Origin))
	b = be32(b, p.Group)
	b = append(b, p.Index, p.GroupK)
	b = be32(b, p.NewMaxSeq)
	b = be16(b, uint16(p.Zone))
	b = be16(b, uint16(len(p.Payload)))
	return append(b, p.Payload...), nil
}

// AncestorRTT is one (ZCR, RTT) pair a sender attaches to NACKs so that
// distant receivers can estimate the RTT to it indirectly (§5.1).
type AncestorRTT struct {
	ZCR topology.NodeID
	RTT float64 // seconds
}

// NACK requests additional repair shares for a group. Unlike SRM NACKs it
// names a *count* of shares needed, not an individual packet (§4). The
// LLC becomes the new ZLC for the scope zone at every hearer.
type NACK struct {
	Origin    topology.NodeID
	Group     uint32
	LLC       uint8 // sender's local loss count for the group
	Needed    uint8 // repair shares needed to complete the group
	MaxSeq    uint32
	Zone      int16 // scope zone the NACK is addressed to
	Ancestors []AncestorRTT
}

const nackHeader = 1 + 4 + 4 + 1 + 1 + 4 + 2 + 1

// Kind implements Packet.
func (p *NACK) Kind() Type { return TypeNACK }

// WireSize implements Packet.
func (p *NACK) WireSize() int { return nackHeader + len(p.Ancestors)*8 }

// Lossy implements Packet.
func (p *NACK) Lossy() bool { return false }

// MarshalBinary implements Packet.
func (p *NACK) MarshalBinary() ([]byte, error) {
	if len(p.Ancestors) > math.MaxUint8 {
		return nil, fmt.Errorf("packet: %d ancestor entries exceed 255", len(p.Ancestors))
	}
	b := make([]byte, 0, p.WireSize())
	b = append(b, byte(TypeNACK))
	b = be32(b, uint32(p.Origin))
	b = be32(b, p.Group)
	b = append(b, p.LLC, p.Needed)
	b = be32(b, p.MaxSeq)
	b = be16(b, uint16(p.Zone))
	b = append(b, byte(len(p.Ancestors)))
	for _, a := range p.Ancestors {
		b = be32(b, uint32(a.ZCR))
		b = be32(b, math.Float32bits(float32(a.RTT)))
	}
	return b, nil
}

// SessionEntry reports one peer heard by the sender of a session message
// (§5: identity, time since last heard, sender's RTT estimate). Echo
// carries the SentAt timestamp of the last session message heard from
// Peer, so Peer can compute an RTT sample as
// now − Echo − SinceHeard (the RTCP LSR/DLSR construction).
type SessionEntry struct {
	Peer       topology.NodeID
	SinceHeard float64 // seconds between hearing Peer and this message
	RTT        float64 // sender's RTT estimate to Peer, seconds
	Echo       float64 // SentAt of the last message heard from Peer
}

// Session is a periodic session-management message, scoped to one zone.
//
// RRWorstLoss/RRMembers implement the paper's §7 proposal of folding
// RTCP Receiver-Report summaries into the session hierarchy: each
// message carries the worst loss fraction and member count for the
// subtree its sender represents, so higher levels (ultimately the
// source) learn aggregate reception quality without per-receiver
// reports.
type Session struct {
	Origin        topology.NodeID
	Zone          int16
	SentAt        float64 // sender timestamp, seconds
	ZCR           topology.NodeID
	ZCRParentDist float64 // recorded distance ZCR → parent-zone ZCR
	MaxSeq        uint32  // highest data identifier seen (SRM tail-loss detection)
	RRWorstLoss   float64 // worst loss fraction in the represented subtree
	RRMembers     uint32  // receivers summarized (0 = no report)
	Entries       []SessionEntry
}

const sessionHeader = 1 + 4 + 2 + 8 + 4 + 4 + 4 + 4 + 4 + 2

// Kind implements Packet.
func (p *Session) Kind() Type { return TypeSession }

// WireSize implements Packet.
func (p *Session) WireSize() int { return sessionHeader + len(p.Entries)*20 }

// Lossy implements Packet.
func (p *Session) Lossy() bool { return false }

// MarshalBinary implements Packet.
func (p *Session) MarshalBinary() ([]byte, error) {
	if len(p.Entries) > math.MaxUint16 {
		return nil, fmt.Errorf("packet: %d session entries exceed 65535", len(p.Entries))
	}
	b := make([]byte, 0, p.WireSize())
	b = append(b, byte(TypeSession))
	b = be32(b, uint32(p.Origin))
	b = be16(b, uint16(p.Zone))
	b = be64(b, math.Float64bits(p.SentAt))
	b = be32(b, uint32(p.ZCR))
	b = be32(b, math.Float32bits(float32(p.ZCRParentDist)))
	b = be32(b, p.MaxSeq)
	b = be32(b, math.Float32bits(float32(p.RRWorstLoss)))
	b = be32(b, p.RRMembers)
	b = be16(b, uint16(len(p.Entries)))
	for _, e := range p.Entries {
		b = be32(b, uint32(e.Peer))
		b = be32(b, math.Float32bits(float32(e.SinceHeard)))
		b = be32(b, math.Float32bits(float32(e.RTT)))
		b = be64(b, math.Float64bits(e.Echo))
	}
	return b, nil
}

// ZCRChallenge starts a ZCR election round: the current (or would-be) ZCR
// of Zone probes its distance to the parent ZCR (§5.2).
type ZCRChallenge struct {
	Origin topology.NodeID
	Zone   int16
	SentAt float64
}

const zcrChallengeSize = 1 + 4 + 2 + 8

// Kind implements Packet.
func (p *ZCRChallenge) Kind() Type { return TypeZCRChallenge }

// WireSize implements Packet.
func (p *ZCRChallenge) WireSize() int { return zcrChallengeSize }

// Lossy implements Packet.
func (p *ZCRChallenge) Lossy() bool { return false }

// MarshalBinary implements Packet.
func (p *ZCRChallenge) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, zcrChallengeSize)
	b = append(b, byte(TypeZCRChallenge))
	b = be32(b, uint32(p.Origin))
	b = be16(b, uint16(p.Zone))
	b = be64(b, math.Float64bits(p.SentAt))
	return b, nil
}

// ZCRResponse is the parent ZCR's answer to a challenge, carrying the
// processing delay between receiving the challenge and replying so
// hearers can subtract it (§5.2).
type ZCRResponse struct {
	Origin     topology.NodeID // the parent ZCR
	Zone       int16           // the child zone being elected
	Challenger topology.NodeID
	ProcDelay  float64 // seconds between challenge receipt and this reply
}

const zcrResponseSize = 1 + 4 + 2 + 4 + 4

// Kind implements Packet.
func (p *ZCRResponse) Kind() Type { return TypeZCRResponse }

// WireSize implements Packet.
func (p *ZCRResponse) WireSize() int { return zcrResponseSize }

// Lossy implements Packet.
func (p *ZCRResponse) Lossy() bool { return false }

// MarshalBinary implements Packet.
func (p *ZCRResponse) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, zcrResponseSize)
	b = append(b, byte(TypeZCRResponse))
	b = be32(b, uint32(p.Origin))
	b = be16(b, uint16(p.Zone))
	b = be32(b, uint32(p.Challenger))
	b = be32(b, math.Float32bits(float32(p.ProcDelay)))
	return b, nil
}

// ZCRTakeover announces that Origin is closer to the parent ZCR than the
// incumbent and is assuming the ZCR role for Zone (§5.2). It is sent to
// both the child zone and the parent zone.
type ZCRTakeover struct {
	Origin       topology.NodeID
	Zone         int16
	DistToParent float64 // claimed one-way distance to the parent ZCR
}

const zcrTakeoverSize = 1 + 4 + 2 + 4

// Kind implements Packet.
func (p *ZCRTakeover) Kind() Type { return TypeZCRTakeover }

// WireSize implements Packet.
func (p *ZCRTakeover) WireSize() int { return zcrTakeoverSize }

// Lossy implements Packet.
func (p *ZCRTakeover) Lossy() bool { return false }

// MarshalBinary implements Packet.
func (p *ZCRTakeover) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, zcrTakeoverSize)
	b = append(b, byte(TypeZCRTakeover))
	b = be32(b, uint32(p.Origin))
	b = be16(b, uint16(p.Zone))
	b = be32(b, math.Float32bits(float32(p.DistToParent)))
	return b, nil
}

func be16(b []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(b, v) }
func be32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func be64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
