package packet

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"sharqfec/internal/topology"
)

// roundTrip marshals p, checks the length against WireSize, unmarshals
// and returns the decoded packet.
func roundTrip(t *testing.T, p Packet) Packet {
	t.Helper()
	b, err := p.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal %s: %v", p.Kind(), err)
	}
	if len(b) != p.WireSize() {
		t.Fatalf("%s: marshal length %d != WireSize %d", p.Kind(), len(b), p.WireSize())
	}
	q, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("unmarshal %s: %v", p.Kind(), err)
	}
	if q.Kind() != p.Kind() {
		t.Fatalf("round trip changed kind %s -> %s", p.Kind(), q.Kind())
	}
	return q
}

func TestDataRoundTrip(t *testing.T) {
	p := &Data{Origin: 7, Seq: 123456, Group: 77, Index: 3, GroupK: 16, Payload: []byte("hello sharqfec")}
	q := roundTrip(t, p).(*Data)
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("data round trip mismatch:\n%+v\n%+v", p, q)
	}
}

func TestDataEmptyPayload(t *testing.T) {
	p := &Data{Origin: 1, Seq: 2, Group: 3, Index: 0, GroupK: 4}
	q := roundTrip(t, p).(*Data)
	if len(q.Payload) != 0 {
		t.Fatalf("payload = %v", q.Payload)
	}
}

func TestRepairRoundTrip(t *testing.T) {
	p := &Repair{Origin: 55, Group: 9, Index: 18, GroupK: 16, NewMaxSeq: 160, Zone: -1, Payload: bytes.Repeat([]byte{0xAB}, 1000)}
	q := roundTrip(t, p).(*Repair)
	if !reflect.DeepEqual(p, q) {
		t.Fatal("repair round trip mismatch")
	}
}

func TestNACKRoundTrip(t *testing.T) {
	p := &NACK{
		Origin: 101, Group: 4, LLC: 5, Needed: 3, MaxSeq: 80, Zone: 12,
		Ancestors: []AncestorRTT{{ZCR: 5, RTT: 0.125}, {ZCR: 2, RTT: 0.0625}},
	}
	q := roundTrip(t, p).(*NACK)
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("nack round trip mismatch:\n%+v\n%+v", p, q)
	}
}

func TestNACKNoAncestors(t *testing.T) {
	p := &NACK{Origin: 1, Group: 2, LLC: 3, Needed: 1, MaxSeq: 10, Zone: 0}
	q := roundTrip(t, p).(*NACK)
	if len(q.Ancestors) != 0 {
		t.Fatal("ancestors should be empty")
	}
}

func TestSessionRoundTrip(t *testing.T) {
	p := &Session{
		Origin: 11, Zone: 4, SentAt: 6.75, ZCR: 5, ZCRParentDist: 0.25, MaxSeq: 512,
		RRWorstLoss: 0.25, RRMembers: 17,
		Entries: []SessionEntry{
			{Peer: 12, SinceHeard: 1.5, RTT: 0.0078125, Echo: 6.125},
			{Peer: 13, SinceHeard: 0.5, RTT: 0.015625, Echo: 6.25},
			{Peer: 5, SinceHeard: 2, RTT: 0.03125, Echo: 5.5},
		},
	}
	q := roundTrip(t, p).(*Session)
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("session round trip mismatch:\n%+v\n%+v", p, q)
	}
}

func TestZCRMessagesRoundTrip(t *testing.T) {
	for _, p := range []Packet{
		&ZCRChallenge{Origin: 3, Zone: 2, SentAt: 1.0625},
		&ZCRResponse{Origin: 0, Zone: 2, Challenger: 3, ProcDelay: 0.001953125},
		&ZCRTakeover{Origin: 4, Zone: 2, DistToParent: 0.125},
	} {
		q := roundTrip(t, p)
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("%s round trip mismatch:\n%+v\n%+v", p.Kind(), p, q)
		}
	}
}

func TestLossyFlags(t *testing.T) {
	lossy := []Packet{&Data{}, &Repair{}}
	lossless := []Packet{&NACK{}, &Session{}, &ZCRChallenge{}, &ZCRResponse{}, &ZCRTakeover{}}
	for _, p := range lossy {
		if !p.Lossy() {
			t.Fatalf("%s should be lossy", p.Kind())
		}
	}
	for _, p := range lossless {
		if p.Lossy() {
			t.Fatalf("%s should be lossless (paper §6.2 setup)", p.Kind())
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("empty buffer accepted")
	}
	if _, err := Unmarshal([]byte{0}); err == nil {
		t.Fatal("invalid tag accepted")
	}
	if _, err := Unmarshal([]byte{99}); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	packets := []Packet{
		&Data{Origin: 1, Seq: 2, Group: 3, GroupK: 8, Payload: []byte{1, 2, 3}},
		&Repair{Origin: 1, Group: 2, Index: 9, GroupK: 8, Payload: []byte{9}},
		&NACK{Origin: 1, Group: 2, Ancestors: []AncestorRTT{{ZCR: 1, RTT: 1}}},
		&Session{Origin: 1, Entries: []SessionEntry{{Peer: 2}}},
		&ZCRChallenge{Origin: 1},
		&ZCRResponse{Origin: 1},
		&ZCRTakeover{Origin: 1},
	}
	for _, p := range packets {
		b, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		for cut := 1; cut < len(b); cut++ {
			if _, err := Unmarshal(b[:cut]); err == nil {
				t.Fatalf("%s truncated to %d bytes accepted", p.Kind(), cut)
			}
		}
	}
}

func TestUnmarshalTrailingBytes(t *testing.T) {
	b, _ := (&ZCRChallenge{Origin: 1, Zone: 0, SentAt: 1}).MarshalBinary()
	if _, err := Unmarshal(append(b, 0xFF)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestNegativeZoneSurvives(t *testing.T) {
	p := &NACK{Origin: 1, Group: 1, Zone: -7}
	q := roundTrip(t, p).(*NACK)
	if q.Zone != -7 {
		t.Fatalf("zone = %d, want -7", q.Zone)
	}
}

func TestTypeStrings(t *testing.T) {
	if TypeData.String() != "DATA" || TypeNACK.String() != "NACK" {
		t.Fatal("type strings wrong")
	}
	if Type(200).String() != "TYPE(200)" {
		t.Fatalf("unknown type string = %q", Type(200).String())
	}
}

func TestPaperPacketSize(t *testing.T) {
	// The paper's source sends thousand-byte data packets; the payload
	// needed to hit exactly 1000 wire bytes is 1000 - header.
	p := &Data{Payload: make([]byte, 1000-dataHeader)}
	if p.WireSize() != 1000 {
		t.Fatalf("WireSize = %d, want 1000", p.WireSize())
	}
}

// Property: Data packets survive round trips for arbitrary field values.
func TestPropertyDataRoundTrip(t *testing.T) {
	f := func(origin uint16, seq, group uint32, index, groupK uint8, payload []byte) bool {
		if len(payload) > math.MaxUint16 {
			payload = payload[:math.MaxUint16]
		}
		p := &Data{Origin: topology.NodeID(origin), Seq: seq, Group: group, Index: index, GroupK: groupK, Payload: payload}
		b, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		q, err := Unmarshal(b)
		if err != nil {
			return false
		}
		d := q.(*Data)
		return d.Origin == p.Origin && d.Seq == p.Seq && d.Group == p.Group &&
			d.Index == p.Index && d.GroupK == p.GroupK && bytes.Equal(d.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: NACK ancestor lists survive round trips (float32 precision on
// the wire, so compare at float32 resolution).
func TestPropertyNACKRoundTrip(t *testing.T) {
	f := func(origin uint16, group uint32, llc, needed uint8, zone int16, rtts []float32) bool {
		if len(rtts) > 255 {
			rtts = rtts[:255]
		}
		p := &NACK{Origin: topology.NodeID(origin), Group: group, LLC: llc, Needed: needed, Zone: zone}
		for i, r := range rtts {
			p.Ancestors = append(p.Ancestors, AncestorRTT{ZCR: topology.NodeID(i), RTT: float64(r)})
		}
		b, err := p.MarshalBinary()
		if err != nil {
			return false
		}
		q, err := Unmarshal(b)
		if err != nil {
			return false
		}
		n := q.(*NACK)
		if len(n.Ancestors) != len(p.Ancestors) {
			return false
		}
		for i := range n.Ancestors {
			got := float32(n.Ancestors[i].RTT)
			want := rtts[i]
			if got != want && !(math.IsNaN(float64(got)) && math.IsNaN(float64(want))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Unmarshal never panics on arbitrary input — it either
// decodes or returns an error.
func TestPropertyUnmarshalNeverPanics(t *testing.T) {
	f := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: flipping any single byte of a valid encoding either fails to
// decode or decodes without panicking — no corruption crashes.
func TestPropertyBitflipSafety(t *testing.T) {
	packets := []Packet{
		&Data{Origin: 1, Seq: 2, Group: 3, Index: 1, GroupK: 16, Payload: []byte("payload")},
		&NACK{Origin: 1, Group: 2, LLC: 3, Needed: 1, MaxSeq: 10, Zone: 1,
			Ancestors: []AncestorRTT{{ZCR: 5, RTT: 0.1}}},
		&Session{Origin: 1, Zone: 2, SentAt: 3, ZCR: 4, MaxSeq: 5,
			Entries: []SessionEntry{{Peer: 6, SinceHeard: 1, RTT: 0.1, Echo: 2}}},
	}
	for _, p := range packets {
		buf, err := p.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		for i := range buf {
			for _, flip := range []byte{0x01, 0x80, 0xFF} {
				mut := append([]byte(nil), buf...)
				mut[i] ^= flip
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("%s: panic on byte %d flip %#x: %v", p.Kind(), i, flip, r)
						}
					}()
					_, _ = Unmarshal(mut)
				}()
			}
		}
	}
}

func TestWireSizesReasonable(t *testing.T) {
	// Control packets must stay far smaller than data packets — the
	// protocol's overhead story depends on it.
	if (&NACK{Ancestors: make([]AncestorRTT, 3)}).WireSize() > 64 {
		t.Fatal("NACK too large")
	}
	if (&ZCRChallenge{}).WireSize() > 32 || (&ZCRResponse{}).WireSize() > 32 || (&ZCRTakeover{}).WireSize() > 32 {
		t.Fatal("ZCR messages too large")
	}
	s := &Session{Entries: make([]SessionEntry, 10)}
	if s.WireSize() > 300 {
		t.Fatalf("session message with 10 entries is %d bytes", s.WireSize())
	}
}
