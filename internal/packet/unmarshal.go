package packet

import (
	"encoding/binary"
	"fmt"
	"math"

	"sharqfec/internal/topology"
)

// Unmarshal decodes one packet from b, dispatching on the leading type
// tag. It returns an error for truncated, oversized or unknown input.
func Unmarshal(b []byte) (Packet, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("packet: empty buffer")
	}
	r := reader{buf: b[1:]}
	var p Packet
	var err error
	switch Type(b[0]) {
	case TypeData:
		p, err = unmarshalData(&r)
	case TypeRepair:
		p, err = unmarshalRepair(&r)
	case TypeNACK:
		p, err = unmarshalNACK(&r)
	case TypeSession:
		p, err = unmarshalSession(&r)
	case TypeZCRChallenge:
		p, err = unmarshalZCRChallenge(&r)
	case TypeZCRResponse:
		p, err = unmarshalZCRResponse(&r)
	case TypeZCRTakeover:
		p, err = unmarshalZCRTakeover(&r)
	default:
		return nil, fmt.Errorf("packet: unknown type tag %d", b[0])
	}
	if err != nil {
		return nil, fmt.Errorf("packet: decoding %s: %w", Type(b[0]), err)
	}
	if len(r.buf) != r.off {
		return nil, fmt.Errorf("packet: %d trailing bytes after %s", len(r.buf)-r.off, Type(b[0]))
	}
	return p, nil
}

func unmarshalData(r *reader) (Packet, error) {
	p := &Data{}
	p.Origin = topology.NodeID(int32(r.u32()))
	p.Seq = r.u32()
	p.Group = r.u32()
	p.Index = r.u8()
	p.GroupK = r.u8()
	n := int(r.u16())
	p.Payload = r.bytes(n)
	return p, r.err
}

func unmarshalRepair(r *reader) (Packet, error) {
	p := &Repair{}
	p.Origin = topology.NodeID(int32(r.u32()))
	p.Group = r.u32()
	p.Index = r.u8()
	p.GroupK = r.u8()
	p.NewMaxSeq = r.u32()
	p.Zone = int16(r.u16())
	n := int(r.u16())
	p.Payload = r.bytes(n)
	return p, r.err
}

func unmarshalNACK(r *reader) (Packet, error) {
	p := &NACK{}
	p.Origin = topology.NodeID(int32(r.u32()))
	p.Group = r.u32()
	p.LLC = r.u8()
	p.Needed = r.u8()
	p.MaxSeq = r.u32()
	p.Zone = int16(r.u16())
	n := int(r.u8())
	for i := 0; i < n && r.err == nil; i++ {
		p.Ancestors = append(p.Ancestors, AncestorRTT{
			ZCR: topology.NodeID(int32(r.u32())),
			RTT: float64(math.Float32frombits(r.u32())),
		})
	}
	return p, r.err
}

func unmarshalSession(r *reader) (Packet, error) {
	p := &Session{}
	p.Origin = topology.NodeID(int32(r.u32()))
	p.Zone = int16(r.u16())
	p.SentAt = math.Float64frombits(r.u64())
	p.ZCR = topology.NodeID(int32(r.u32()))
	p.ZCRParentDist = float64(math.Float32frombits(r.u32()))
	p.MaxSeq = r.u32()
	p.RRWorstLoss = float64(math.Float32frombits(r.u32()))
	p.RRMembers = r.u32()
	n := int(r.u16())
	for i := 0; i < n && r.err == nil; i++ {
		p.Entries = append(p.Entries, SessionEntry{
			Peer:       topology.NodeID(int32(r.u32())),
			SinceHeard: float64(math.Float32frombits(r.u32())),
			RTT:        float64(math.Float32frombits(r.u32())),
			Echo:       math.Float64frombits(r.u64()),
		})
	}
	return p, r.err
}

func unmarshalZCRChallenge(r *reader) (Packet, error) {
	p := &ZCRChallenge{}
	p.Origin = topology.NodeID(int32(r.u32()))
	p.Zone = int16(r.u16())
	p.SentAt = math.Float64frombits(r.u64())
	return p, r.err
}

func unmarshalZCRResponse(r *reader) (Packet, error) {
	p := &ZCRResponse{}
	p.Origin = topology.NodeID(int32(r.u32()))
	p.Zone = int16(r.u16())
	p.Challenger = topology.NodeID(int32(r.u32()))
	p.ProcDelay = float64(math.Float32frombits(r.u32()))
	return p, r.err
}

func unmarshalZCRTakeover(r *reader) (Packet, error) {
	p := &ZCRTakeover{}
	p.Origin = topology.NodeID(int32(r.u32()))
	p.Zone = int16(r.u16())
	p.DistToParent = float64(math.Float32frombits(r.u32()))
	return p, r.err
}

// reader is a bounds-checked big-endian cursor; after any short read it
// records an error and returns zeros, so decoders stay linear.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("truncated at offset %d (need %d of %d)", r.off, n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) bytes(n int) []byte {
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
