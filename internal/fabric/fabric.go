// Package fabric defines the seam between the protocol engines
// (internal/core, internal/session, internal/srm) and whatever carries
// their packets. Two implementations exist:
//
//   - internal/netsim: the deterministic discrete-event simulator used
//     for every experiment in the paper's evaluation, and
//   - internal/udpmesh: a wall-clock binding that exchanges the same
//     wire-encoded packets over real UDP sockets.
//
// The protocols only ever talk to these interfaces, so they run
// unchanged on either substrate.
package fabric

import (
	"sharqfec/internal/eventq"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/topology"
)

// Delivery is one packet arriving at a node.
type Delivery struct {
	From  topology.NodeID
	Scope scoping.ZoneID
	Pkt   packet.Packet
}

// Agent is a protocol endpoint attached to a node. Receive is always
// invoked serially for a given agent (the simulator is single-threaded;
// the UDP mesh serializes per node), and must not block.
type Agent interface {
	Receive(now eventq.Time, d Delivery)
}

// Timer is a cancellable scheduled callback.
type Timer interface {
	// Stop cancels the timer, reporting whether it prevented the fire.
	Stop() bool
	// Active reports whether the timer is still pending.
	Active() bool
}

// Scheduler provides time and timers. In the simulator, time is virtual
// and deterministic; in the UDP mesh it is the wall clock measured from
// process start.
type Scheduler interface {
	// Now returns the current time.
	Now() eventq.Time
	// After schedules fn to run d from now.
	After(d eventq.Duration, fn func(now eventq.Time)) Timer
}

// Network is what a protocol engine needs from its substrate.
type Network interface {
	// Sched returns the node's scheduler.
	Sched() Scheduler
	// Hierarchy returns the administrative zone layout.
	Hierarchy() *scoping.Hierarchy
	// Multicast sends pkt to every member of zone other than the
	// sender.
	Multicast(from topology.NodeID, zone scoping.ZoneID, pkt packet.Packet)
	// Attach binds an agent to a node.
	Attach(node topology.NodeID, a Agent)
}
