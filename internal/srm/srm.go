// Package srm implements the Scalable Reliable Multicast protocol of
// Floyd, Jacobson, McCanne, Liu and Zhang (SIGCOMM '95) — the pure-ARQ
// baseline of the paper's Figures 14–15.
//
// SRM has no FEC and no scoping: every packet is individually NACKed and
// retransmitted at global scope, with receiver-based repair and
// distance-proportional suppression timers. Session messages carry
// all-pairs RTT state (the O(n²) cost SHARQFEC's hierarchy removes).
// Following the paper's setup, the simulation runs SRM "with adaptive
// timers turned on for best possible performance": the request and reply
// timer constants adapt to observed duplicate requests/replies in the
// style of the SRM paper's adaptive algorithm.
package srm

import (
	"fmt"
	"sort"

	"sharqfec/internal/eventq"
	"sharqfec/internal/fabric"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/session"
	"sharqfec/internal/simrand"
	"sharqfec/internal/telemetry"
	"sharqfec/internal/topology"
)

// Config carries SRM's parameters. Timer constants are initial values;
// with Adaptive set they evolve within the documented bounds.
type Config struct {
	Source      topology.NodeID
	PayloadSize int
	Rate        float64
	NumPackets  int

	// C1, C2 shape the request timer 2^i·U[C1·d, (C1+C2)·d].
	C1, C2 float64
	// D1, D2 shape the reply timer U[D1·d, (D1+D2)·d].
	D1, D2 float64
	// Adaptive enables timer-constant adaptation.
	Adaptive bool
	// HoldDown is the quiet period (in units of one-way distance to the
	// requester) after sending or hearing a repair during which new
	// requests for the same packet are ignored (the SRM paper's "3·d"
	// ignore-backoff).
	HoldDown float64

	Session session.Config

	// Telemetry, when non-nil, receives request/repair lifecycle
	// events (the SRM analogue of core's emissions).
	Telemetry *telemetry.Bus
}

// DefaultConfig returns SRM defaults matching the paper's simulations
// (same stream as SHARQFEC; adaptive timers on).
func DefaultConfig() Config {
	return Config{
		Source:      0,
		PayloadSize: 1000 - 17,
		Rate:        800e3,
		NumPackets:  1024,
		C1:          2, C2: 2,
		D1: 1, D2: 1,
		Adaptive: true,
		HoldDown: 3,
		Session:  session.DefaultConfig(),
	}
}

// InterPacket returns the source's data inter-packet interval in seconds.
func (c *Config) InterPacket() float64 {
	return float64(c.PayloadSize+17) * 8 / c.Rate
}

// Stats are per-agent counters.
type Stats struct {
	RequestsSent       int
	RequestsSuppressed int
	RepairsSent        int
	RepairsSuppressed  int
	DataReceived       int
	DupRepairs         int
	PacketsHeld        int
}

// pktState tracks one sequence number at one receiver.
type pktState struct {
	have     bool
	payload  []byte
	reqTimer fabric.Timer
	reqExp   int // i in 2^i·[C1 d, (C1+C2) d]; 0 initially per SRM
	repTimer fabric.Timer
	holdTill eventq.Time // ignore requests until then (hold-down)
	// dupReq/dupRep count duplicates observed for timer adaptation.
	dupReq, dupRep int
	requestedAt    eventq.Time
	// lossDetected/lostAt record the first loss_detected emission so
	// hold can close the recovery span (and session-end accounting can
	// mark it unrecovered) with the true detection timestamp.
	lossDetected bool
	lostAt       eventq.Time
}

// Agent is one SRM session member.
type Agent struct {
	node topology.NodeID
	net  fabric.Network
	cfg  Config
	rng  *simrand.Rand
	sess *session.Manager
	tel  *telemetry.Bus // nil when telemetry is disabled

	isSource bool
	root     scoping.ZoneID

	pkts   map[uint32]*pktState
	maxSeq int64

	// adaptive timer state (EWMAs of duplicates and delay ratios)
	c1, c2, d1, d2 float64
	aveDupReq      float64
	aveDupRep      float64

	sendData map[uint32][]byte

	// OnDeliver fires for every original packet the first time it is
	// held (received or repaired).
	OnDeliver func(now eventq.Time, seq uint32, payload []byte)

	stopped bool

	Stats Stats
}

// New creates an SRM agent and attaches it to the network. SRM ignores
// the zone hierarchy: all traffic uses the root (global) scope.
func New(node topology.NodeID, net fabric.Network, cfg Config, src *simrand.Source) (*Agent, error) {
	if cfg.NumPackets <= 0 {
		return nil, fmt.Errorf("srm: NumPackets must be positive")
	}
	a := &Agent{
		node:     node,
		net:      net,
		cfg:      cfg,
		rng:      src.StreamN("srm", int(node)),
		isSource: node == cfg.Source,
		root:     net.Hierarchy().Root(),
		pkts:     make(map[uint32]*pktState),
		maxSeq:   -1,
		c1:       cfg.C1, c2: cfg.C2,
		d1: cfg.D1, d2: cfg.D2,
		tel: cfg.Telemetry,
	}
	cfg.Session.Telemetry = cfg.Telemetry
	a.sess = session.New(node, net, cfg.Session, src.StreamN("session", int(node)))
	if a.isSource {
		a.sendData = make(map[uint32][]byte)
	}
	net.Attach(node, a)
	return a, nil
}

// Node returns the agent's node ID.
func (a *Agent) Node() topology.NodeID { return a.node }

// Join starts session management (the source heads the global zone).
func (a *Agent) Join() { a.sess.Start(a.isSource) }

// Stop fails the member (the crash model the fault engine uses): it
// stops sending and reacting entirely, while the network keeps
// forwarding through its attachment point — mirroring core.Agent.Stop.
func (a *Agent) Stop() {
	a.stopped = true
	a.sess.Stop()
}

// Stopped reports whether Stop was called.
func (a *Agent) Stopped() bool { return a.stopped }

// StartSource schedules the CBR stream from the current simulated time.
func (a *Agent) StartSource() {
	if !a.isSource {
		panic("srm: StartSource on a receiver")
	}
	ipt := eventq.Duration(a.cfg.InterPacket())
	for s := 0; s < a.cfg.NumPackets; s++ {
		seq := uint32(s)
		a.net.Sched().After(eventq.Duration(float64(s))*ipt, func(now eventq.Time) {
			a.sourceSend(now, seq)
		})
	}
}

func (a *Agent) sourceSend(now eventq.Time, seq uint32) {
	if a.stopped {
		return
	}
	payload := make([]byte, a.cfg.PayloadSize)
	for j := range payload {
		payload[j] = byte(a.rng.IntN(256))
	}
	a.sendData[seq] = payload
	st := a.state(seq)
	st.have = true
	st.payload = payload
	a.net.Multicast(a.node, a.root, &packet.Data{
		Origin:  a.node,
		Seq:     seq,
		Group:   seq, // SRM has no groups; mirror seq for the codecs
		Index:   0,
		GroupK:  1,
		Payload: payload,
	})
	a.sess.MaxSeq = seq + 1
}

func (a *Agent) state(seq uint32) *pktState {
	st := a.pkts[seq]
	if st == nil {
		st = &pktState{}
		a.pkts[seq] = st
	}
	return st
}

// Receive implements fabric.Agent.
func (a *Agent) Receive(now eventq.Time, d fabric.Delivery) {
	if a.stopped {
		return
	}
	if sp, ok := d.Pkt.(*packet.Session); ok {
		if hw := int64(sp.MaxSeq) - 1; !a.isSource && hw > a.maxSeq {
			for s := a.maxSeq + 1; s <= hw; s++ {
				a.noteLoss(now, uint32(s))
			}
			a.maxSeq = hw
		}
	}
	if a.sess.Receive(now, d.Pkt) {
		return
	}
	switch p := d.Pkt.(type) {
	case *packet.Data:
		a.handleData(now, p)
	case *packet.Repair:
		a.handleRepair(now, p)
	case *packet.NACK:
		a.handleRequest(now, p)
	}
}

// handleData stores an original packet and opens loss gaps.
func (a *Agent) handleData(now eventq.Time, p *packet.Data) {
	if a.isSource {
		return
	}
	a.Stats.DataReceived++
	a.hold(now, p.Seq, p.Payload)
	if int64(p.Seq) > a.maxSeq {
		for s := a.maxSeq + 1; s < int64(p.Seq); s++ {
			a.noteLoss(now, uint32(s))
		}
		a.maxSeq = int64(p.Seq)
		if a.sess.MaxSeq < p.Seq+1 {
			a.sess.MaxSeq = p.Seq + 1
		}
	}
}

// hold records possession of seq's payload and cancels pending timers.
func (a *Agent) hold(now eventq.Time, seq uint32, payload []byte) {
	st := a.state(seq)
	if st.have {
		return
	}
	st.have = true
	st.payload = payload
	a.Stats.PacketsHeld++
	if st.reqTimer != nil && st.reqTimer.Active() {
		st.reqTimer.Stop()
	}
	if st.lossDetected {
		// SRM's per-packet analogue of a group decode: a previously
		// declared loss is now held, closing its recovery span.
		// F = detection-to-recovery latency.
		a.emit(now, telemetry.KindGroupDecoded, seq, 0, 1, now.Sub(st.lostAt).Seconds())
	}
	if a.OnDeliver != nil {
		a.OnDeliver(now, seq, payload)
	}
}

// emit posts a protocol event when telemetry is attached.
func (a *Agent) emit(now eventq.Time, kind telemetry.Kind, seq uint32, av, bv int64, f float64) {
	if a.tel == nil {
		return
	}
	a.tel.Emit(telemetry.Event{
		T: now.Seconds(), Kind: kind, Node: a.node, Zone: a.root,
		Group: int64(seq), A: av, B: bv, F: f,
	})
}

// noteLoss arms a request timer for a newly detected missing packet.
func (a *Agent) noteLoss(now eventq.Time, seq uint32) {
	st := a.state(seq)
	if st.have {
		return
	}
	if st.reqTimer == nil {
		// First detection of this sequence number (re-arms after
		// suppression or loss of the repair are not new losses).
		st.lossDetected = true
		st.lostAt = now
		a.emit(now, telemetry.KindLossDetected, seq, int64(seq), 0, 0)
	}
	a.armRequestTimer(now, seq, st)
}

// armRequestTimer draws the SRM request delay 2^i·U[C1·d, (C1+C2)·d]
// with d the one-way distance estimate to the source.
func (a *Agent) armRequestTimer(now eventq.Time, seq uint32, st *pktState) {
	if st.have || (st.reqTimer != nil && st.reqTimer.Active()) {
		return
	}
	if st.reqExp > 8 {
		st.reqExp = 8
	}
	d := a.sess.Dist(a.cfg.Source, nil)
	f := float64(uint(1) << uint(st.reqExp))
	delay := eventq.Duration(a.rng.Uniform(f*a.c1*d, f*(a.c1+a.c2)*d))
	st.reqTimer = a.net.Sched().After(delay, func(fire eventq.Time) {
		a.requestFired(fire, seq, st)
	})
	a.emit(now, telemetry.KindNACKScheduled, seq, 1, int64(st.reqExp), delay.Seconds())
}

func (a *Agent) requestFired(now eventq.Time, seq uint32, st *pktState) {
	if st.have || a.stopped {
		return
	}
	a.net.Multicast(a.node, a.root, &packet.NACK{
		Origin:    a.node,
		Group:     seq,
		LLC:       1,
		Needed:    1,
		MaxSeq:    uint32(a.maxSeq + 1),
		Zone:      int16(a.root),
		Ancestors: a.sess.AncestorList(),
	})
	a.Stats.RequestsSent++
	a.emit(now, telemetry.KindNACKSent, seq, 1, 1, 0)
	st.requestedAt = now
	// Back off and re-arm in case the repair is lost (SRM request
	// timers double after each transmission).
	st.reqExp++
	a.armRequestTimer(now, seq, st)
}

// handleRequest reacts to a repair request: requesters back off, holders
// schedule a suppressed retransmission.
func (a *Agent) handleRequest(now eventq.Time, p *packet.NACK) {
	seq := p.Group
	st := a.state(seq)

	// Tail-loss discovery from the request's high-water mark.
	if hw := int64(p.MaxSeq) - 1; hw > a.maxSeq && !a.isSource {
		for s := a.maxSeq + 1; s <= hw; s++ {
			a.noteLoss(now, uint32(s))
		}
		a.maxSeq = hw
	}

	if !st.have {
		// A peer asked for the same packet: exponential back-off and
		// re-draw (SRM request suppression).
		if st.reqTimer != nil && st.reqTimer.Active() {
			st.reqTimer.Stop()
			st.reqExp++
			st.dupReq++
			a.Stats.RequestsSuppressed++
			a.emit(now, telemetry.KindNACKSuppressed, seq, 0, int64(st.reqExp), 0)
			a.armRequestTimer(now, seq, st)
		} else {
			a.noteLoss(now, seq)
		}
		return
	}

	// Holder: schedule a repair unless held down or already pending.
	if now < st.holdTill {
		st.dupReq++
		return
	}
	if st.repTimer != nil && st.repTimer.Active() {
		st.dupReq++
		return
	}
	d := a.sess.Dist(p.Origin, p.Ancestors)
	delay := eventq.Duration(a.rng.Uniform(a.d1*d, (a.d1+a.d2)*d))
	st.repTimer = a.net.Sched().After(delay, func(fire eventq.Time) {
		a.replyFired(fire, seq, st, d)
	})
	a.emit(now, telemetry.KindRepairScheduled, seq, 0, 0, delay.Seconds())
}

func (a *Agent) replyFired(now eventq.Time, seq uint32, st *pktState, d float64) {
	if a.stopped {
		return
	}
	if now < st.holdTill {
		return // someone else repaired while we waited
	}
	a.net.Multicast(a.node, a.root, &packet.Repair{
		Origin:  a.node,
		Group:   seq,
		Index:   0,
		GroupK:  1,
		Zone:    int16(a.root),
		Payload: st.payload,
	})
	a.Stats.RepairsSent++
	a.emit(now, telemetry.KindRepairSent, seq, 0, 0, 0)
	st.holdTill = now.Add(eventq.Duration(a.cfg.HoldDown * d))
	a.adaptAfterReply(st)
}

// handleRepair stores a retransmission and suppresses pending replies.
func (a *Agent) handleRepair(now eventq.Time, p *packet.Repair) {
	seq := p.Group
	st := a.state(seq)
	if st.have {
		a.Stats.DupRepairs++
		st.dupRep++
		if st.repTimer != nil && st.repTimer.Active() {
			st.repTimer.Stop()
			a.Stats.RepairsSuppressed++
			a.emit(now, telemetry.KindRepairSuppressed, seq, 0, 0, 0)
		}
		st.holdTill = now.Add(eventq.Duration(a.cfg.HoldDown * a.sess.Dist(p.Origin, nil)))
		a.adaptAfterReply(st)
		return
	}
	if !a.isSource {
		a.hold(now, seq, p.Payload)
	}
	st.reqExp = 0 // repair arrived: reset back-off (SRM)
	st.holdTill = now.Add(eventq.Duration(a.cfg.HoldDown * a.sess.Dist(p.Origin, nil)))
	a.adaptRequestTimers(st)
}

// adaptRequestTimers implements the spirit of SRM's adaptive request
// algorithm: many duplicate requests widen the window (raise C1/C2);
// clean rounds shrink it toward faster recovery. Constants stay within
// documented bounds.
func (a *Agent) adaptRequestTimers(st *pktState) {
	if !a.cfg.Adaptive {
		return
	}
	a.aveDupReq = 0.75*a.aveDupReq + 0.25*float64(st.dupReq)
	st.dupReq = 0
	if a.aveDupReq > 1 {
		a.c1 += 0.1
		a.c2 += 0.5
	} else if a.aveDupReq < 0.5 {
		a.c2 -= 0.1
		a.c1 -= 0.05
	}
	a.c1 = clamp(a.c1, 0.5, 4)
	a.c2 = clamp(a.c2, 1, 8)
}

// adaptAfterReply adapts the reply constants from duplicate repairs.
func (a *Agent) adaptAfterReply(st *pktState) {
	if !a.cfg.Adaptive {
		return
	}
	a.aveDupRep = 0.75*a.aveDupRep + 0.25*float64(st.dupRep)
	st.dupRep = 0
	if a.aveDupRep > 1 {
		a.d1 += 0.1
		a.d2 += 0.5
	} else if a.aveDupRep < 0.5 {
		a.d2 -= 0.1
		a.d1 -= 0.05
	}
	a.d1 = clamp(a.d1, 0.5, 4)
	a.d2 = clamp(a.d2, 1, 8)
}

// EmitUnrecoveredLosses posts a terminal KindLossUnrecovered event for
// every detected loss still missing when the run ends — the SRM mirror
// of core.Agent.EmitUnrecoveredLosses. Deterministic order (ascending
// sequence); a no-op when telemetry is disabled.
func (a *Agent) EmitUnrecoveredLosses(now eventq.Time) {
	if a.tel == nil {
		return
	}
	seqs := make([]uint32, 0, len(a.pkts))
	for seq := range a.pkts {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		st := a.pkts[seq]
		if st.lossDetected && !st.have && int(seq) < a.cfg.NumPackets {
			a.emit(now, telemetry.KindLossUnrecovered, seq, int64(seq), 0, 0)
		}
	}
}

// Held reports how many original packets this agent holds.
func (a *Agent) Held() int {
	n := 0
	for seq, st := range a.pkts {
		if st.have && int(seq) < a.cfg.NumPackets {
			n++
		}
	}
	return n
}

// Payload returns the held payload for seq, if any.
func (a *Agent) Payload(seq uint32) ([]byte, bool) {
	st := a.pkts[seq]
	if st == nil || !st.have {
		return nil, false
	}
	return st.payload, true
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
