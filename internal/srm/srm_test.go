package srm

import (
	"bytes"
	"testing"

	"sharqfec/internal/eventq"
	"sharqfec/internal/netsim"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/simrand"
	"sharqfec/internal/topology"
)

// world wires SRM agents over a spec with a single global zone (SRM is
// unscoped).
type world struct {
	spec   *topology.Spec
	net    *netsim.Network
	agents map[topology.NodeID]*Agent
}

// globalZone flattens a spec's zones into a single root zone.
func globalZone(spec *topology.Spec) []topology.ZoneSpec {
	var all []topology.NodeID
	all = append(all, spec.Members()...)
	return []topology.ZoneSpec{{ID: 0, Parent: -1, Leaves: all}}
}

func newWorld(t *testing.T, spec *topology.Spec, cfg Config, seed uint64) *world {
	t.Helper()
	h, err := scoping.Build(globalZone(spec))
	if err != nil {
		t.Fatal(err)
	}
	var q eventq.Queue
	src := simrand.New(seed)
	n := netsim.New(&q, spec.Graph, h, src)
	w := &world{spec: spec, net: n, agents: map[topology.NodeID]*Agent{}}
	cfg.Source = spec.Source
	for _, m := range spec.Members() {
		ag, err := New(m, n, cfg, src)
		if err != nil {
			t.Fatal(err)
		}
		w.agents[m] = ag
	}
	return w
}

func (w *world) run(until float64) {
	w.net.Q.At(1, func(eventq.Time) {
		for _, ag := range w.agents {
			ag.Join()
		}
	})
	w.net.Q.At(6, func(eventq.Time) { w.agents[w.spec.Source].StartSource() })
	w.net.Q.RunUntil(eventq.Time(until))
}

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.NumPackets = 64
	return cfg
}

func (w *world) verifyAll(t *testing.T, cfg Config) {
	t.Helper()
	src := w.agents[w.spec.Source]
	for _, m := range w.spec.Receivers {
		ag := w.agents[m]
		if held := ag.Held(); held != cfg.NumPackets {
			t.Fatalf("node %d holds %d/%d packets", m, held, cfg.NumPackets)
		}
		for seq := uint32(0); seq < uint32(cfg.NumPackets); seq += 7 {
			got, ok := ag.Payload(seq)
			if !ok || !bytes.Equal(got, src.sendData[seq]) {
				t.Fatalf("node %d packet %d corrupted or missing", m, seq)
			}
		}
	}
}

func TestLosslessNoRequests(t *testing.T) {
	spec := topology.BalancedTree([]int{2, 2}, 10e6, 0.010, 0)
	cfg := smallCfg()
	w := newWorld(t, spec, cfg, 1)
	w.run(30)
	w.verifyAll(t, cfg)
	for _, ag := range w.agents {
		if ag.Stats.RequestsSent != 0 {
			t.Fatalf("node %d sent requests on a lossless network", ag.node)
		}
	}
}

func TestLossyChainRecovers(t *testing.T) {
	spec := topology.Chain(4, 10e6, 0.010, 0.10)
	cfg := smallCfg()
	w := newWorld(t, spec, cfg, 2)
	w.run(90)
	w.verifyAll(t, cfg)
	reqs, reps := 0, 0
	for _, ag := range w.agents {
		reqs += ag.Stats.RequestsSent
		reps += ag.Stats.RepairsSent
	}
	if reqs == 0 || reps == 0 {
		t.Fatalf("expected requests and repairs: reqs=%d reps=%d", reqs, reps)
	}
	t.Logf("srm chain: reqs=%d reps=%d", reqs, reps)
}

func TestSuppressionAmongSiblings(t *testing.T) {
	// Shared lossy backbone: correlated losses at 6 receivers; requests
	// must be suppressed below one per receiver per loss.
	g := topology.New(8)
	g.AddLink(0, 1, 10e6, 0.010, 0.15)
	for i := 2; i < 8; i++ {
		g.AddLink(1, topology.NodeID(i), 10e6, 0.005, 0)
	}
	spec := &topology.Spec{
		Graph: g, Source: 0,
		Receivers: []topology.NodeID{1, 2, 3, 4, 5, 6, 7},
		Zones:     []topology.ZoneSpec{{ID: 0, Parent: -1, Leaves: []topology.NodeID{0, 1, 2, 3, 4, 5, 6, 7}}},
	}
	cfg := smallCfg()
	w := newWorld(t, spec, cfg, 3)
	w.run(90)
	w.verifyAll(t, cfg)
	suppressed := 0
	for _, ag := range w.agents {
		suppressed += ag.Stats.RequestsSuppressed
	}
	if suppressed == 0 {
		t.Fatal("expected request suppression among siblings")
	}
}

func TestRepairTail(t *testing.T) {
	// Losing repairs as well as data (the paper's setup) must still
	// converge via re-request after back-off.
	spec := topology.Chain(3, 10e6, 0.010, 0.25)
	cfg := smallCfg()
	w := newWorld(t, spec, cfg, 4)
	w.run(120)
	w.verifyAll(t, cfg)
}

func TestFigure10SRM(t *testing.T) {
	if testing.Short() {
		t.Skip("full topology run")
	}
	spec := topology.Figure10(topology.Figure10Params{})
	cfg := DefaultConfig()
	cfg.NumPackets = 128
	w := newWorld(t, spec, cfg, 5)
	w.run(120)
	w.verifyAll(t, cfg)
	reqs, reps := 0, 0
	for _, ag := range w.agents {
		reqs += ag.Stats.RequestsSent
		reps += ag.Stats.RepairsSent
	}
	t.Logf("srm figure10: reqs=%d reps=%d", reqs, reps)
}

func TestAdaptiveConstantsStayBounded(t *testing.T) {
	spec := topology.Chain(4, 10e6, 0.010, 0.20)
	cfg := smallCfg()
	w := newWorld(t, spec, cfg, 6)
	w.run(90)
	for _, ag := range w.agents {
		if ag.c1 < 0.5 || ag.c1 > 4 || ag.c2 < 1 || ag.c2 > 8 {
			t.Fatalf("node %d request constants out of bounds: C1=%v C2=%v", ag.node, ag.c1, ag.c2)
		}
		if ag.d1 < 0.5 || ag.d1 > 4 || ag.d2 < 1 || ag.d2 > 8 {
			t.Fatalf("node %d reply constants out of bounds: D1=%v D2=%v", ag.node, ag.d1, ag.d2)
		}
	}
}

func TestNonAdaptiveKeepsConstants(t *testing.T) {
	spec := topology.Chain(3, 10e6, 0.010, 0.15)
	cfg := smallCfg()
	cfg.Adaptive = false
	w := newWorld(t, spec, cfg, 7)
	w.run(90)
	for _, ag := range w.agents {
		if ag.c1 != cfg.C1 || ag.c2 != cfg.C2 || ag.d1 != cfg.D1 || ag.d2 != cfg.D2 {
			t.Fatal("constants changed with Adaptive off")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	spec := topology.Chain(2, 10e6, 0.010, 0)
	h, _ := scoping.Build(globalZone(spec))
	var q eventq.Queue
	n := netsim.New(&q, spec.Graph, h, simrand.New(1))
	cfg := DefaultConfig()
	cfg.NumPackets = 0
	if _, err := New(0, n, cfg, simrand.New(1)); err == nil {
		t.Fatal("zero-packet stream accepted")
	}
}

func TestStartSourcePanicsOnReceiver(t *testing.T) {
	spec := topology.Chain(2, 10e6, 0.010, 0)
	cfg := smallCfg()
	w := newWorld(t, spec, cfg, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.agents[1].StartSource()
}

func TestDeterministic(t *testing.T) {
	run := func() int {
		spec := topology.Chain(5, 10e6, 0.010, 0.12)
		cfg := smallCfg()
		w := newWorld(t, spec, cfg, 42)
		w.run(90)
		total := 0
		for _, ag := range w.agents {
			total += ag.Stats.RequestsSent + ag.Stats.RepairsSent
		}
		return total
	}
	if run() != run() {
		t.Fatal("SRM runs diverged for fixed seed")
	}
}

func TestHoldDownSuppressesRepeatReplies(t *testing.T) {
	// After answering a request, a holder ignores further requests for
	// the same packet within the hold-down window (SRM's ignore-backoff).
	spec := topology.Chain(3, 10e6, 0.010, 0)
	cfg := smallCfg()
	cfg.NumPackets = 16
	w := newWorld(t, spec, cfg, 20)
	w.run(30) // deliver everything losslessly
	holder := w.agents[1]
	before := holder.Stats.RepairsSent
	// Two immediate back-to-back requests for the same packet.
	req := &packet.NACK{Origin: 2, Group: 3, LLC: 1, Needed: 1, MaxSeq: 16, Zone: 0}
	now := w.net.Q.Now()
	holder.handleRequest(now, req)
	w.net.Q.RunUntil(now + 2) // let the first reply fire
	mid := holder.Stats.RepairsSent
	if mid != before+1 {
		t.Fatalf("first request produced %d repairs, want 1", mid-before)
	}
	holder.handleRequest(w.net.Q.Now(), req)
	w.net.Q.RunUntil(w.net.Q.Now() + 0.01) // within hold-down
	if holder.Stats.RepairsSent != mid {
		t.Fatal("request inside hold-down produced a repair")
	}
}

func TestRequestBackoffDoubles(t *testing.T) {
	// Hearing a peer's request for a packet we are also missing doubles
	// the back-off exponent (SRM request suppression).
	spec := topology.Chain(3, 10e6, 0.010, 0)
	cfg := smallCfg()
	w := newWorld(t, spec, cfg, 21)
	a := w.agents[2]
	st := a.state(5)
	a.noteLoss(1.0, 5)
	if st.reqTimer == nil || !st.reqTimer.Active() {
		t.Fatal("request timer not armed")
	}
	expBefore := st.reqExp
	a.handleRequest(1.0, &packet.NACK{Origin: 1, Group: 5, LLC: 1, Needed: 1, MaxSeq: 6, Zone: 0})
	if st.reqExp != expBefore+1 {
		t.Fatalf("reqExp = %d, want %d", st.reqExp, expBefore+1)
	}
}

func TestSessionTrafficIsGlobal(t *testing.T) {
	// SRM's all-pairs session cost: with n members over t seconds,
	// deliveries ≈ n·(n-1)·t — the O(n²) the paper's §5 removes.
	spec := topology.BalancedTree([]int{2, 2}, 10e6, 0.010, 0)
	cfg := smallCfg()
	w := newWorld(t, spec, cfg, 22)
	sessions := 0
	w.net.AddTap(func(_ eventq.Time, _ topology.NodeID, d netsim.Delivery) {
		if d.Pkt.Kind() == packet.TypeSession {
			sessions++
		}
	})
	w.run(11) // 10 steady seconds, no data
	n := float64(len(spec.Members()))
	expect := n * (n - 1) * 10
	if float64(sessions) < 0.7*expect || float64(sessions) > 1.4*expect {
		t.Fatalf("session deliveries = %d, want ≈%.0f (all-pairs)", sessions, expect)
	}
}
