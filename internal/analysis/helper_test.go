package analysis

import "math/rand/v2"

// newTestRand returns a seeded generator for Monte-Carlo checks.
func newTestRand(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 1)) }
