package analysis

import (
	"fmt"
	"math"
	"strings"
)

// ScalingPoint is one receiver-count point of the measured Figure-8
// sweep: a census-armed scoped run and its flat (single-zone)
// counterpart on the same national topology, next to the analytic
// model's prediction for the same parameters.
type ScalingPoint struct {
	Receivers int // session members excluding the source

	// Protocol state, in session RTT entries per node: the measured
	// values are the census engine's peak per-node session-table size;
	// the analytic values are the Figure-8 leaf-level "RTTs maintained"
	// and the flat all-pairs count.
	ScopedStateMeasured int64
	FlatStateMeasured   int64
	ScopedStateAnalytic int
	FlatStateAnalytic   int

	// State-reduction ratios (flat ÷ scoped): the paper's Figure-8
	// claim, measured and analytic, plus the relative drift between
	// them.
	StateRatioMeasured float64
	StateRatioAnalytic float64
	StateDrift         float64 // |measured − analytic| ÷ analytic

	// Control traffic: session-message link crossings observed by the
	// census hop tap, and the flat ÷ scoped reduction.
	ScopedMsgs   int64
	FlatMsgs     int64
	MsgReduction float64

	// Locality: the fraction of control link-crossings that cross a
	// region (level-1) boundary of the scoped zone geometry — both runs
	// account against the same geometry, so the flat fraction shows the
	// chatter scoping would have confined. Scoped should sit well below
	// flat.
	ScopedEscapeFrac float64
	FlatEscapeFrac   float64

	// FlatAnalytic marks points whose flat side was NOT measured: above
	// the sweep's flat cutoff the unscoped session is O(N²) in both
	// state and messages, so the flat columns are the analytic model's
	// and the state ratio compares measured-scoped against analytic-
	// flat. Rendered with a trailing '~' on the flat state column.
	FlatAnalytic bool
}

// Drift computes the relative disagreement between the measured and
// analytic state-reduction ratios.
func (p *ScalingPoint) Drift() float64 {
	if p.StateRatioAnalytic == 0 {
		return 0
	}
	return math.Abs(p.StateRatioMeasured-p.StateRatioAnalytic) / p.StateRatioAnalytic
}

// ScalingReport is the measured counterpart of the Figure-8 table: one
// row per receiver count, each comparing measurement against the
// analytic model and flagging rows whose state-ratio drift exceeds
// Tolerance.
type ScalingReport struct {
	Topology  string
	Tolerance float64
	Points    []ScalingPoint
}

// Drifted returns the points whose state-ratio drift exceeds the
// report's tolerance.
func (r *ScalingReport) Drifted() []ScalingPoint {
	var out []ScalingPoint
	for _, p := range r.Points {
		if p.StateDrift > r.Tolerance {
			out = append(out, p)
		}
	}
	return out
}

// String renders the measured-vs-analytic table. Rows outside the
// tolerance carry a trailing "DRIFT" marker.
func (r *ScalingReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Measured Figure 8 — %s (tolerance ±%.0f%%)\n", r.Topology, 100*r.Tolerance)
	fmt.Fprintf(&b, "%8s | %21s | %19s | %8s | %17s\n",
		"", "state entries/node", "state ratio 1:N", "ctrl", "region-escape frac")
	fmt.Fprintf(&b, "%8s | %10s %10s | %6s %6s %5s | %8s | %8s %8s\n",
		"rcvrs", "scoped", "flat", "meas", "model", "drift", "redux", "scoped", "flat")
	for _, p := range r.Points {
		flag := ""
		if p.StateDrift > r.Tolerance {
			flag = "  DRIFT"
		}
		flat := fmt.Sprintf("%10d", p.FlatStateMeasured)
		// Above the flat cutoff the flat run was not simulated, so the
		// columns derived from its traffic have no measured value: leave
		// them blank rather than printing a fake zero.
		redux, flatEsc := fmt.Sprintf("%7.1fx", p.MsgReduction), fmt.Sprintf("%8.4f", p.FlatEscapeFrac)
		if p.FlatAnalytic {
			flat = fmt.Sprintf("%9d~", p.FlatStateAnalytic)
			flag += "  (flat analytic)"
			redux, flatEsc = fmt.Sprintf("%8s", "--"), fmt.Sprintf("%8s", "--")
		}
		fmt.Fprintf(&b, "%8d | %10d %s | %6.1f %6.1f %4.0f%% | %s | %8.4f %s%s\n",
			p.Receivers, p.ScopedStateMeasured, flat,
			p.StateRatioMeasured, p.StateRatioAnalytic, 100*p.StateDrift,
			redux, p.ScopedEscapeFrac, flatEsc, flag)
	}
	if d := r.Drifted(); len(d) > 0 {
		fmt.Fprintf(&b, "%d/%d points drift beyond tolerance\n", len(d), len(r.Points))
	} else {
		fmt.Fprintf(&b, "all %d points within tolerance of the analytic model\n", len(r.Points))
	}
	return b.String()
}
