package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sharqfec/internal/telemetry/spans"
)

// PolicyOutcome summarizes one rate-control policy's run: session-wide
// recovery-latency percentiles over its recovery spans plus the repair
// spending that bought them.
type PolicyOutcome struct {
	// Policy names the controller ("static", "adaptive", "off").
	Policy string

	// Spans / Recovered / Unrecovered count the run's recovery spans.
	Spans       int
	Recovered   int
	Unrecovered int

	// P50/P95/P99/Mean are nearest-rank percentiles and mean of
	// end-to-end recovery latency (seconds) over ALL spans. An
	// unrecovered span enters at its censored latency — loss detection
	// to the session-end unrecovered declaration — so a policy cannot
	// improve its percentiles by abandoning hard losses (the censored
	// value is a lower bound on the true recovery latency).
	P50, P95, P99, Mean float64

	// RepairsSent counts every repair transmission; RepairsInjected the
	// preemptively injected subset. NumPackets is the original stream
	// length, the denominator of the overhead ratios.
	RepairsSent     int64
	RepairsInjected int64
	NumPackets      int

	// MaxH is the largest per-group injection any controller decision
	// owed — the witness against the per-group budget cap.
	MaxH int64
}

// RepairOverhead returns repairs sent per original packet.
func (o PolicyOutcome) RepairOverhead() float64 {
	if o.NumPackets == 0 {
		return 0
	}
	return float64(o.RepairsSent) / float64(o.NumPackets)
}

// InjectedOverhead returns preemptively injected repairs per original
// packet.
func (o PolicyOutcome) InjectedOverhead() float64 {
	if o.NumPackets == 0 {
		return 0
	}
	return float64(o.RepairsInjected) / float64(o.NumPackets)
}

// SummarizePolicy builds a PolicyOutcome from a run's recovery spans
// and repair totals. Latency percentiles are session-wide (across all
// zones), nearest-rank like the per-zone RecoveryReport rows, with
// unrecovered spans included at their censored latencies.
func SummarizePolicy(policy string, sps []spans.Span, repairsSent, repairsInjected int64,
	numPackets int, maxH int64) PolicyOutcome {

	o := PolicyOutcome{
		Policy:          policy,
		Spans:           len(sps),
		RepairsSent:     repairsSent,
		RepairsInjected: repairsInjected,
		NumPackets:      numPackets,
		MaxH:            maxH,
	}
	lats := make([]float64, 0, len(sps))
	for i := range sps {
		if sps[i].Recovered {
			o.Recovered++
		} else {
			o.Unrecovered++
		}
		lats = append(lats, sps[i].Latency())
	}
	if len(lats) == 0 {
		return o
	}
	sort.Float64s(lats)
	sum := 0.0
	for _, l := range lats {
		sum += l
	}
	o.Mean = sum / float64(len(lats))
	o.P50 = percentile(lats, 0.50)
	o.P95 = percentile(lats, 0.95)
	o.P99 = percentile(lats, 0.99)
	return o
}

// ControllerReport compares the static and adaptive rate-control
// policies on identically-seeded runs: recovery-latency percentiles
// versus repair overhead, with the budget-compliance witness the
// acceptance criterion needs (adaptive must improve tail latency
// without exceeding the configured repair-overhead budget).
type ControllerReport struct {
	Static   PolicyOutcome
	Adaptive PolicyOutcome

	// Budget is the adaptive policy's per-group redundancy cap as a
	// fraction of the group size GroupK.
	Budget float64
	GroupK int
}

// BudgetH returns the per-group injection cap, ceil(Budget·GroupK).
func (r *ControllerReport) BudgetH() int64 {
	return int64(math.Ceil(r.Budget * float64(r.GroupK)))
}

// WithinBudget reports whether every adaptive decision respected the
// per-group cap.
func (r *ControllerReport) WithinBudget() bool {
	return r.Adaptive.MaxH <= r.BudgetH()
}

// P95Improvement returns the relative p95 recovery-latency improvement
// of adaptive over static (positive = adaptive faster).
func (r *ControllerReport) P95Improvement() float64 {
	if r.Static.P95 == 0 {
		return 0
	}
	return (r.Static.P95 - r.Adaptive.P95) / r.Static.P95
}

// OverheadDelta returns the repair-overhead difference, adaptive minus
// static, in repairs per original packet.
func (r *ControllerReport) OverheadDelta() float64 {
	return r.Adaptive.RepairOverhead() - r.Static.RepairOverhead()
}

// String renders the comparison as a fixed-width table plus the
// verdict lines, deterministically for a given pair of outcomes.
func (r *ControllerReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rate-control comparison (budget %.3g => h <= %d per group of %d):\n",
		r.Budget, r.BudgetH(), r.GroupK)
	fmt.Fprintf(&b, "  %-9s %7s %7s %9s %9s %9s %9s %9s %6s\n",
		"policy", "spans", "unrec", "p50(s)", "p95(s)", "p99(s)", "mean(s)", "rep/pkt", "maxh")
	for _, o := range []PolicyOutcome{r.Static, r.Adaptive} {
		fmt.Fprintf(&b, "  %-9s %7d %7d %9.4f %9.4f %9.4f %9.4f %9.4f %6d\n",
			o.Policy, o.Spans, o.Unrecovered, o.P50, o.P95, o.P99, o.Mean,
			o.RepairOverhead(), o.MaxH)
	}
	fmt.Fprintf(&b, "  p95 improvement:  %+.1f%%\n", 100*r.P95Improvement())
	fmt.Fprintf(&b, "  overhead delta:   %+.4f repairs/pkt (injected %.4f -> %.4f)\n",
		r.OverheadDelta(), r.Static.InjectedOverhead(), r.Adaptive.InjectedOverhead())
	fmt.Fprintf(&b, "  within budget:    %v\n", r.WithinBudget())
	return b.String()
}
