package analysis

import (
	"math"
	"strings"
	"testing"

	"sharqfec/internal/topology"
)

func TestFigure1AllReceiveProbability(t *testing.T) {
	tree := NewFigure1Tree()
	got := tree.AllReceiveProbability()
	if math.Abs(got-0.27) > 0.005 {
		t.Fatalf("Pr(all receive) = %.4f, want ≈0.270 (paper)", got)
	}
}

func TestFigure1WorstReceiver(t *testing.T) {
	tree := NewFigure1Tree()
	got := tree.WorstReceiverLoss()
	if math.Abs(got-0.0973) > 0.0005 {
		t.Fatalf("worst receiver loss = %.4f, want ≈0.0973 (paper)", got)
	}
	// X must actually be the worst leaf.
	for _, leaf := range tree.Leaves() {
		if tree.CompoundLoss(leaf) > got+1e-12 {
			t.Fatalf("leaf %d lossier than X", leaf)
		}
	}
}

func TestFigure1TreeShape(t *testing.T) {
	tree := NewFigure1Tree()
	if len(tree.Loss) != 30 {
		t.Fatalf("links = %d, want 30", len(tree.Loss))
	}
	if got := len(tree.Leaves()); got != 24 {
		t.Fatalf("leaves = %d, want 24", got)
	}
	if tree.NumNodes() != 31 {
		t.Fatalf("nodes = %d", tree.NumNodes())
	}
}

func TestFigure1Volume(t *testing.T) {
	tree := NewFigure1Tree()
	vol := tree.NonScopedFECVolume()
	// The source must transmit 1/(1-0.0973) ≈ 1.108 normalized volume.
	if math.Abs(vol[0]-1.108) > 0.002 {
		t.Fatalf("source volume = %.4f, want ≈1.108", vol[0])
	}
	// Every other node sees less than the source's volume but (for this
	// tree) more than 1.0 — the needless redundancy the paper's bottom
	// tree illustrates.
	for n := 1; n < tree.NumNodes(); n++ {
		if vol[n] >= vol[0] {
			t.Fatalf("node %d volume %.4f >= source", n, vol[n])
		}
	}
	// X receives just about 1.0 (exactly enough to reconstruct).
	x := vol[tree.WorstNode]
	if math.Abs(x-1.0) > 0.001 {
		t.Fatalf("X volume = %.4f, want ≈1.0", x)
	}
}

func TestFigure1Report(t *testing.T) {
	r := Figure1Report()
	for _, want := range []string{"27.0%", "9.73%", "leaf"} {
		if !strings.Contains(r, want) {
			t.Fatalf("report missing %q:\n%s", want, r)
		}
	}
}

func TestFigure8PaperNumbers(t *testing.T) {
	rows := Figure8Table(topology.PaperNational())
	wantRTTs := []int{10, 30, 130, 630}
	wantTraffic := []float64{100, 500, 10500, 260500}
	for i, r := range rows {
		if r.RTTsMaintained != wantRTTs[i] {
			t.Fatalf("%s RTTs = %d, want %d", r.Level, r.RTTsMaintained, wantRTTs[i])
		}
		if r.ScopedTraffic != wantTraffic[i] {
			t.Fatalf("%s traffic = %v, want %v", r.Level, r.ScopedTraffic, wantTraffic[i])
		}
	}
	// State ratios: 1,000,021 / {1,3,13,63}.
	wantRatio := []float64{1000021, 1000021.0 / 3, 1000021.0 / 13, 1000021.0 / 63}
	for i, r := range rows {
		if math.Abs(r.StateReductionInv-wantRatio[i])/wantRatio[i] > 0.001 {
			t.Fatalf("%s state ratio = %v, want %v", r.Level, r.StateReductionInv, wantRatio[i])
		}
	}
}

func TestFigure8Receivers(t *testing.T) {
	rows := Figure8Table(topology.PaperNational())
	if rows[3].NumReceivers != 10000000 {
		t.Fatalf("suburb receivers = %d", rows[3].NumReceivers)
	}
	if rows[1].NumZones != 10 || rows[2].NumZones != 200 || rows[3].NumZones != 20000 {
		t.Fatalf("zone counts wrong: %+v", rows)
	}
}

func TestFigure8Report(t *testing.T) {
	r := Figure8Report(topology.PaperNational())
	for _, want := range []string{"National", "Suburb", "630"} {
		if !strings.Contains(r, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestFigure8ScalesWithParams(t *testing.T) {
	small := topology.NationalParams{Regions: 2, Cities: 2, Suburbs: 2, SubscribersPerSuburb: 10}
	rows := Figure8Table(small)
	if rows[3].RTTsMaintained != 2+2+2+10 {
		t.Fatalf("small suburb RTTs = %d", rows[3].RTTsMaintained)
	}
	if rows[0].NonScopedTraffic != float64(small.TotalReceivers())*float64(small.TotalReceivers()) {
		t.Fatal("non-scoped traffic wrong")
	}
}

func TestExpectedZLCBasics(t *testing.T) {
	if ExpectedZLC(16, 0, 5) != 0 {
		t.Fatal("zero loss should predict zero")
	}
	if ExpectedZLC(0, 0.1, 5) != 0 {
		t.Fatal("zero group size should predict zero")
	}
	// Single contender: exactly the binomial mean.
	if got := ExpectedZLC(16, 0.25, 1); math.Abs(got-4) > 1e-12 {
		t.Fatalf("single-contender ZLC = %v, want 4", got)
	}
	// More contenders raise the expectation (max over more draws).
	if ExpectedZLC(16, 0.1, 8) <= ExpectedZLC(16, 0.1, 2) {
		t.Fatal("expected ZLC not monotone in contenders")
	}
}

func TestExpectedZLCAgainstMonteCarlo(t *testing.T) {
	// Validate the mean-plus-spread approximation against simulation.
	const k, p, m, trials = 16, 0.08, 3, 20000
	rng := newTestRand(99)
	sum := 0.0
	for tr := 0; tr < trials; tr++ {
		maxLoss := 0
		for member := 0; member < m; member++ {
			loss := 0
			for i := 0; i < k; i++ {
				if rng.Float64() < p {
					loss++
				}
			}
			if loss > maxLoss {
				maxLoss = loss
			}
		}
		sum += float64(maxLoss)
	}
	mc := sum / trials
	model := ExpectedZLC(k, p, m)
	if math.Abs(model-mc) > 0.6 {
		t.Fatalf("cascade model %.3f vs Monte Carlo %.3f", model, mc)
	}
}

func TestFigure10CascadeShape(t *testing.T) {
	exp := CascadeExpectation(16, Figure10Cascade())
	if len(exp) != 3 {
		t.Fatalf("levels = %d", len(exp))
	}
	// The cascade decreases down the hierarchy: the backbone stage is
	// the lossiest, leaves the cleanest.
	if !(exp[0] > exp[1] && exp[1] > exp[2]) {
		t.Fatalf("cascade not decreasing: %v", exp)
	}
	// Root injection for the 18.8% worst path ≈ 3 shares of 16.
	if exp[0] < 2.5 || exp[0] > 3.6 {
		t.Fatalf("root cascade = %v, want ≈3", exp[0])
	}
}

func TestCascadeReport(t *testing.T) {
	r := CascadeReport(16)
	for _, want := range []string{"k=16", "source→mesh", "leaf injection"} {
		if !strings.Contains(r, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}
