// Package analysis implements the paper's two analytic artifacts: the
// Figure-1 example delivery tree (delivery probability and normalized
// non-scoped-FEC traffic volume) and the Figure-8 national-distribution
// state/traffic reduction table.
package analysis

import (
	"fmt"
	"strings"

	"sharqfec/internal/topology"
)

// Figure1Tree is the §3.1 example: a source-rooted tree whose link losses
// are calibrated so that the probability every receiver gets a given
// packet is ≈27.0 % and the worst receiver (the paper's receiver X)
// compounds to ≈9.73 % loss. The exact per-link figures in the paper's
// Figure 1 are only legible in the image, so DESIGN.md documents this
// calibrated substitution.
type Figure1Tree struct {
	// Loss[i] is the loss rate of link i; Parent[i] names the upstream
	// node of node i+1 (node 0 is the source).
	Loss   []float64
	Parent []int
	// WorstNode is the paper's receiver X.
	WorstNode int
}

// NewFigure1Tree builds the calibrated example tree: the source feeds 6
// interior nodes, each feeding 4 leaves (30 links). Interior links lose
// 5 %; receiver X's leaf link loses 4.98 % so its compound loss is the
// paper's 9.73 % (1 − 0.95·0.9502); the other leaf links lose 4.05 %,
// keeping every other receiver below X while the whole-tree product
// Π(1−ℓ) lands on the paper's 27.0 %.
func NewFigure1Tree() *Figure1Tree {
	t := &Figure1Tree{}
	node := 1
	for i := 0; i < 6; i++ {
		t.Loss = append(t.Loss, 0.05) // source → interior i
		t.Parent = append(t.Parent, 0)
		interior := node
		node++
		for l := 0; l < 4; l++ {
			loss := 0.0405
			if i == 0 && l == 0 {
				loss = 0.0498 // receiver X
				t.WorstNode = node
			}
			t.Loss = append(t.Loss, loss)
			t.Parent = append(t.Parent, interior)
			node++
		}
	}
	return t
}

// NumNodes returns the node count (source included).
func (t *Figure1Tree) NumNodes() int { return len(t.Loss) + 1 }

// linkTo returns the index of the link whose downstream node is n.
func (t *Figure1Tree) linkTo(n int) int { return n - 1 }

// CompoundLoss returns the probability a packet from the source fails to
// reach node n (the paper's total-loss product formula).
func (t *Figure1Tree) CompoundLoss(n int) float64 {
	pOK := 1.0
	for n != 0 {
		li := t.linkTo(n)
		pOK *= 1 - t.Loss[li]
		n = t.Parent[li]
	}
	return 1 - pOK
}

// AllReceiveProbability returns Π(1-loss) over every link: the chance
// that all receivers get a given packet (paper: 27.0 %).
func (t *Figure1Tree) AllReceiveProbability() float64 {
	p := 1.0
	for _, l := range t.Loss {
		p *= 1 - l
	}
	return p
}

// WorstReceiverLoss returns receiver X's compound loss (paper: 9.73 %).
func (t *Figure1Tree) WorstReceiverLoss() float64 {
	return t.CompoundLoss(t.WorstNode)
}

// Leaves returns the leaf node IDs.
func (t *Figure1Tree) Leaves() []int {
	hasChild := make([]bool, t.NumNodes())
	for _, p := range t.Parent {
		hasChild[p] = true
	}
	var out []int
	for n := 1; n < t.NumNodes(); n++ {
		if !hasChild[n] {
			out = append(out, n)
		}
	}
	return out
}

// NonScopedFECVolume returns, per node, the normalized traffic volume
// (received packets ÷ original k) when the source adds just enough
// global FEC redundancy to cover the worst receiver — the bottom tree of
// Figure 1. The source must send k/(1-lossX) packets per k originals;
// node n then sees that volume thinned by its own compound loss.
func (t *Figure1Tree) NonScopedFECVolume() []float64 {
	overhead := 1 / (1 - t.WorstReceiverLoss())
	out := make([]float64, t.NumNodes())
	out[0] = overhead // the source's own transmission volume
	for n := 1; n < t.NumNodes(); n++ {
		out[n] = overhead * (1 - t.CompoundLoss(n))
	}
	return out
}

// Figure1Report renders the experiment E1 summary.
func Figure1Report() string {
	t := NewFigure1Tree()
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — non-scoped FEC example tree (%d links)\n", len(t.Loss))
	fmt.Fprintf(&b, "Pr(all receivers get a packet) = %.1f%% (paper: 27.0%%)\n", 100*t.AllReceiveProbability())
	fmt.Fprintf(&b, "Worst receiver (X) compound loss = %.2f%% (paper: 9.73%%)\n", 100*t.WorstReceiverLoss())
	vol := t.NonScopedFECVolume()
	fmt.Fprintf(&b, "Normalized traffic with redundancy for X: source %.3f\n", vol[0])
	for _, leaf := range t.Leaves() {
		fmt.Fprintf(&b, "  leaf %2d: loss %.2f%%  volume %.3f\n", leaf, 100*t.CompoundLoss(leaf), vol[leaf])
	}
	return b.String()
}

// Figure8Row is one column of the paper's Figure-8 table (one hierarchy
// level).
type Figure8Row struct {
	Level             string
	ReceiversPerZone  int
	NumZones          int
	NumReceivers      int
	RTTsMaintained    int     // per receiver at this level
	ScopedTraffic     float64 // Σ participants² over observable zones
	NonScopedTraffic  float64 // (total members)²
	ScopedState       int
	NonScopedState    int
	StateReductionInv float64 // non-scoped ÷ scoped state
}

// Figure8Table computes the national-hierarchy reduction table for the
// given parameters (PaperNational reproduces the published numbers:
// RTTs maintained 10/30/130/630, state ratios 1:3:13:63 per 1,000,021).
func Figure8Table(p topology.NationalParams) []Figure8Row {
	counts := []int{p.Regions, p.Cities, p.Suburbs, p.SubscribersPerSuburb}
	levels := []string{"National", "Regional", "City", "Suburb"}
	zones := []int{1, p.Regions, p.Regions * p.Cities, p.Regions * p.Cities * p.Suburbs}
	receivers := []int{
		0,
		p.Regions,
		p.Regions * p.Cities,
		p.Regions * p.Cities * p.Suburbs * p.SubscribersPerSuburb,
	}
	total := p.TotalReceivers()

	rows := make([]Figure8Row, 4)
	for i := range rows {
		maintained := 0
		traffic := 0.0
		for j := 0; j <= i; j++ {
			maintained += counts[j]
			traffic += float64(counts[j]) * float64(counts[j])
		}
		rows[i] = Figure8Row{
			Level:            levels[i],
			ReceiversPerZone: perZone(p, i),
			NumZones:         zones[i],
			NumReceivers:     receivers[i],
			RTTsMaintained:   maintained,
			ScopedTraffic:    traffic,
			NonScopedTraffic: float64(total) * float64(total),
			ScopedState:      maintained,
			NonScopedState:   total,
		}
		rows[i].StateReductionInv = float64(total) / float64(maintained)
	}
	return rows
}

func perZone(p topology.NationalParams, level int) int {
	switch level {
	case 0:
		return 0 // the national zone holds only the sender
	case 1, 2:
		return 1 // one dedicated cache per regional/city zone
	default:
		return p.SubscribersPerSuburb
	}
}

// Figure8Report renders experiment E2 next to the paper's numbers.
func Figure8Report(p topology.NationalParams) string {
	rows := Figure8Table(p)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — national hierarchy (%d receivers)\n", p.TotalReceivers())
	fmt.Fprintf(&b, "%-9s %6s %8s %10s %8s %14s %16s\n",
		"Level", "Zones", "Rcv/Zone", "Receivers", "RTTs", "ScopedTraffic", "State 1:N")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-9s %6d %8d %10d %8d %14.0f %16.0f\n",
			r.Level, r.NumZones, r.ReceiversPerZone, r.NumReceivers,
			r.RTTsMaintained, r.ScopedTraffic, r.StateReductionInv)
	}
	b.WriteString("(paper: RTTs 10/30/130/630; state ratios 1,3,13,63 per 1,000,021)\n")
	return b.String()
}
