package analysis

import (
	"fmt"
	"math"
	"strings"
)

// Figure-2 redundancy cascade model: with scoping, "the source need only
// add sufficient redundancy to guarantee delivery of each group to
// receiver Y, which will in turn add just enough redundancy to ensure
// delivery of each group to receiver Z." Each level's Zone Closest
// Receiver therefore injects enough FEC shares to cover the loss of the
// stage *entering* its zone. This model predicts those per-level
// injection amounts, which the simulator's EWMA-driven predictors should
// converge to.

// CascadeLevel is one stage of the hierarchy.
type CascadeLevel struct {
	// Name labels the stage ("source→mesh", "mesh→child", …).
	Name string
	// Loss is the per-packet loss probability of the stage's link(s).
	Loss float64
	// Contenders is how many members' loss counts the stage's ZLC
	// maximizes over (the paper's ZLC is the max LLC in the zone).
	Contenders int
}

// ExpectedZLC returns the expected zone loss count for a group of k
// packets crossing a stage: the mean of the maximum of `contenders`
// independent Binomial(k, p) draws, via the normal approximation and
// Blom's order-statistic formula
// E[max of m] ≈ μ + σ·Φ⁻¹((m − 0.375)/(m + 0.25)),
// accurate to a fraction of a packet across the paper's parameter range.
func ExpectedZLC(k int, p float64, contenders int) float64 {
	if p <= 0 || k <= 0 {
		return 0
	}
	mean := float64(k) * p
	if contenders <= 1 {
		return mean
	}
	sigma := math.Sqrt(float64(k) * p * (1 - p))
	m := float64(contenders)
	return mean + sigma*invNorm((m-0.375)/(m+0.25))
}

// invNorm is the standard normal quantile function Φ⁻¹ (Acklam's
// rational approximation, relative error < 1.2e-9 on (0, 1)).
func invNorm(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("analysis: invNorm domain")
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// CascadeExpectation returns, per level, the redundancy (FEC shares per
// group) the level's injector is expected to add: the predicted ZLC of
// the stage entering its zone.
func CascadeExpectation(k int, levels []CascadeLevel) []float64 {
	out := make([]float64, len(levels))
	for i, l := range levels {
		out[i] = ExpectedZLC(k, l.Loss, l.Contenders)
	}
	return out
}

// Figure10Cascade returns the cascade levels of the reproduction's
// Figure-10 topology: the source covers the worst source→mesh path
// (18.8 %, maximized over 7 mesh nodes), mesh ZCRs cover the 8 %
// mesh→child links (3 contenders each), and child ZCRs cover the 4 %
// child→grandchild links (4 contenders).
func Figure10Cascade() []CascadeLevel {
	return []CascadeLevel{
		{Name: "source→mesh (root injection)", Loss: 0.188, Contenders: 1},
		{Name: "mesh→child (intermediate injection)", Loss: 0.08, Contenders: 3},
		{Name: "child→grandchild (leaf injection)", Loss: 0.04, Contenders: 4},
	}
}

// CascadeReport renders the model for groups of k packets.
func CascadeReport(k int) string {
	levels := Figure10Cascade()
	exp := CascadeExpectation(k, levels)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure-2 redundancy cascade (k=%d)\n", k)
	for i, l := range levels {
		fmt.Fprintf(&b, "  %-38s loss=%4.1f%%  expected shares/group=%.2f\n",
			l.Name, 100*l.Loss, exp[i])
	}
	return b.String()
}
