package analysis

import (
	"strings"
	"testing"

	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/telemetry"
	"sharqfec/internal/telemetry/spans"
	"sharqfec/internal/topology"
)

// buildAssembler synthesizes a small run: two ARQ recoveries blamed on
// zone 1 (level 1), one preemptive-FEC recovery blamed on zone 2
// (level 2), one cross-group decode, one unrecovered late-data loss.
func buildAssembler() *spans.Assembler {
	a := spans.NewAssembler()
	sink := a.Sink()
	sink(telemetry.Event{Kind: telemetry.KindZoneInfo, Node: topology.NoNode, Zone: 0, Group: -1, A: -1, B: 0})
	sink(telemetry.Event{Kind: telemetry.KindZoneInfo, Node: topology.NoNode, Zone: 1, Group: -1, A: 0, B: 1})
	sink(telemetry.Event{Kind: telemetry.KindZoneInfo, Node: topology.NoNode, Zone: 2, Group: -1, A: 1, B: 2})

	repair := func(t float64, node topology.NodeID, group int64, zone scoping.ZoneID, hops int64) {
		sink(telemetry.Event{T: t, Kind: telemetry.KindPacketDelivered, Node: node, Zone: zone,
			Group: group, A: int64(packet.TypeRepair), Origin: 0, Hops: hops})
	}
	// Two ARQ spans on node 1, groups 0 and 1, latencies 0.4 and 0.8.
	for i, lat := range []float64{0.4, 0.8} {
		g := int64(i)
		sink(telemetry.Event{T: 1, Kind: telemetry.KindLossDetected, Node: 1, Group: g, A: g * 16})
		sink(telemetry.Event{T: 1.1, Kind: telemetry.KindNACKSent, Node: 1, Group: g})
		repair(1.2, 1, g, 1, 2)
		sink(telemetry.Event{T: 1 + lat, Kind: telemetry.KindGroupDecoded, Node: 1, Group: g})
	}
	// One preemptive-FEC span on node 2, latency 0.2, blamed on zone 2.
	repair(1.9, 2, 5, 2, 4)
	sink(telemetry.Event{T: 2, Kind: telemetry.KindLossDetected, Node: 2, Group: 5, A: 80})
	sink(telemetry.Event{T: 2.2, Kind: telemetry.KindGroupDecoded, Node: 2, Group: 5})
	// One cross-group decode (no repairs) on node 2.
	sink(telemetry.Event{T: 3, Kind: telemetry.KindLossDetected, Node: 2, Group: 6, A: 96})
	sink(telemetry.Event{T: 3.3, Kind: telemetry.KindGroupDecoded, Node: 2, Group: 6})
	// One unrecovered late-data loss on node 1.
	sink(telemetry.Event{T: 4, Kind: telemetry.KindLossDetected, Node: 1, Group: 7, A: 112})
	sink(telemetry.Event{T: 9, Kind: telemetry.KindLossUnrecovered, Node: 1, Group: 7, A: 112, B: 1})
	return a
}

func TestBuildRecoveryReport(t *testing.T) {
	r := BuildRecoveryReport(buildAssembler())
	if r.Spans != 5 || r.Recovered != 4 || r.Unrecovered != 1 || r.LateData != 1 {
		t.Fatalf("counts wrong: %+v", r)
	}
	if r.LossEvents != 5 || r.OpenSpans != 0 {
		t.Fatalf("accounting wrong: loss events %d, open %d", r.LossEvents, r.OpenSpans)
	}
	if r.ByMechanism[spans.MechARQ] != 2 || r.ByMechanism[spans.MechFEC] != 1 || r.ByMechanism[spans.MechData] != 1 {
		t.Fatalf("mechanisms = %v", r.ByMechanism)
	}

	if len(r.Zones) != 2 || r.Zones[0].Zone != 1 || r.Zones[1].Zone != 2 {
		t.Fatalf("zones = %+v", r.Zones)
	}
	z1 := r.Zones[0]
	if z1.Spans != 2 || z1.Level != 1 {
		t.Fatalf("zone 1 row = %+v", z1)
	}
	approx := func(got, want float64) bool { return got > want-1e-9 && got < want+1e-9 }
	// Nearest-rank percentiles over {0.4, 0.8}.
	if !approx(z1.P50, 0.4) || !approx(z1.P95, 0.8) || !approx(z1.P99, 0.8) {
		t.Fatalf("zone 1 percentiles = %v/%v/%v", z1.P50, z1.P95, z1.P99)
	}
	if !approx(z1.Mean, 0.6) {
		t.Fatalf("zone 1 mean = %v, want 0.6", z1.Mean)
	}
	if z1.MeanHops != 2 {
		t.Fatalf("zone 1 mean hops = %v, want 2", z1.MeanHops)
	}
	z2 := r.Zones[1]
	if z2.Spans != 1 || z2.Level != 2 || z2.MeanHops != 4 {
		t.Fatalf("zone 2 row = %+v", z2)
	}

	if len(r.Levels) != 2 || r.Levels[0].Level != 1 || r.Levels[1].Level != 2 {
		t.Fatalf("levels = %+v", r.Levels)
	}
	if r.Unattributed.Spans != 1 {
		t.Fatalf("unattributed = %+v", r.Unattributed)
	}
}

func TestRecoveryReportString(t *testing.T) {
	r := BuildRecoveryReport(buildAssembler())
	s := r.String()
	for _, want := range []string{
		"recovery spans: 5 (4 recovered, 1 unrecovered, 1 late-data) from 5 loss events, 0 open",
		"mechanisms: arq 2, preemptive-fec 1, cross-group 1",
		"blame zone latency:",
		"z1/l1",
		"blame level latency:",
		"unattributed (cross-group):",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	if s != BuildRecoveryReport(buildAssembler()).String() {
		t.Fatal("report rendering is not deterministic")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(vals, 0.50); p != 5 {
		t.Fatalf("p50 = %v, want 5", p)
	}
	if p := percentile(vals, 0.95); p != 10 {
		t.Fatalf("p95 = %v, want 10", p)
	}
	if p := percentile(vals, 0.99); p != 10 {
		t.Fatalf("p99 = %v, want 10", p)
	}
	if p := percentile([]float64{7}, 0.5); p != 7 {
		t.Fatalf("single-value p50 = %v", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty p50 = %v", p)
	}
}
