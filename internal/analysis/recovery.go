package analysis

import (
	"fmt"
	"sort"
	"strings"

	"sharqfec/internal/scoping"
	"sharqfec/internal/telemetry/spans"
)

// ZoneRecovery summarizes the recovery spans blamed on one zone (or,
// for the per-level rows, on all zones of one hierarchy level).
type ZoneRecovery struct {
	Zone  scoping.ZoneID // NoZone on level rows
	Level int
	Spans int

	// Exact (nearest-rank) percentiles and mean of recovery latency in
	// virtual seconds, over the recovered spans blamed here.
	P50, P95, P99, Mean float64
	// MeanHops is the average requester→repairer routing-tree distance.
	MeanHops float64
}

// RecoveryReport aggregates a run's recovery spans into the per-zone /
// per-level latency views the paper's localization figures are about.
// Build one with BuildRecoveryReport; String renders it determin-
// istically, so live assembly and offline trace replay can be compared
// byte for byte.
type RecoveryReport struct {
	Spans       int
	Recovered   int
	Unrecovered int
	LateData    int
	LossEvents  uint64
	OpenSpans   int

	// ByMechanism counts recovered spans per resolving mechanism,
	// indexed by spans.Mechanism.
	ByMechanism [4]int

	Zones  []ZoneRecovery // per blame zone, ascending zone id
	Levels []ZoneRecovery // per blame level, ascending level
	// Unattributed holds the recovered spans with no blame zone
	// (cross-group decodes).
	Unattributed ZoneRecovery
}

// percentile returns the nearest-rank q-th percentile of sorted values
// (0 when empty).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

type latAccum struct {
	lats []float64
	hops int64
}

func (la *latAccum) summarize(zr *ZoneRecovery) {
	zr.Spans = len(la.lats)
	if zr.Spans == 0 {
		return
	}
	sort.Float64s(la.lats)
	zr.P50 = percentile(la.lats, 0.50)
	zr.P95 = percentile(la.lats, 0.95)
	zr.P99 = percentile(la.lats, 0.99)
	var sum float64
	for _, v := range la.lats {
		sum += v
	}
	zr.Mean = sum / float64(zr.Spans)
	zr.MeanHops = float64(la.hops) / float64(zr.Spans)
}

// BuildRecoveryReport folds an assembler's closed spans into the
// report.
func BuildRecoveryReport(a *spans.Assembler) *RecoveryReport {
	r := &RecoveryReport{
		LossEvents: a.LossEvents(),
		OpenSpans:  a.Open(),
	}
	view := a.View()
	byZone := map[scoping.ZoneID]*latAccum{}
	byLevel := map[int]*latAccum{}
	var unatt latAccum
	for _, s := range a.Spans() {
		r.Spans++
		if s.LateData {
			r.LateData++
		}
		if !s.Recovered {
			r.Unrecovered++
			continue
		}
		r.Recovered++
		r.ByMechanism[s.Mechanism]++
		if s.BlameZone == scoping.NoZone {
			unatt.lats = append(unatt.lats, s.Latency())
			continue
		}
		za := byZone[s.BlameZone]
		if za == nil {
			za = &latAccum{}
			byZone[s.BlameZone] = za
		}
		za.lats = append(za.lats, s.Latency())
		za.hops += s.Hops
		la := byLevel[s.BlameLevel]
		if la == nil {
			la = &latAccum{}
			byLevel[s.BlameLevel] = la
		}
		la.lats = append(la.lats, s.Latency())
		la.hops += s.Hops
	}

	zones := make([]scoping.ZoneID, 0, len(byZone))
	for z := range byZone {
		zones = append(zones, z)
	}
	sort.Slice(zones, func(i, j int) bool { return zones[i] < zones[j] })
	for _, z := range zones {
		zr := ZoneRecovery{Zone: z, Level: view.Level(z)}
		byZone[z].summarize(&zr)
		r.Zones = append(r.Zones, zr)
	}
	levels := make([]int, 0, len(byLevel))
	for l := range byLevel {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	for _, l := range levels {
		zr := ZoneRecovery{Zone: scoping.NoZone, Level: l}
		byLevel[l].summarize(&zr)
		r.Levels = append(r.Levels, zr)
	}
	r.Unattributed.Zone = scoping.NoZone
	r.Unattributed.Level = -1
	unatt.summarize(&r.Unattributed)
	return r
}

// SummaryLines returns the report's headline lines — the form appended
// to chaos flight-recorder dumps.
func (r *RecoveryReport) SummaryLines() []string {
	lines := []string{
		fmt.Sprintf("recovery spans: %d (%d recovered, %d unrecovered, %d late-data) from %d loss events, %d open",
			r.Spans, r.Recovered, r.Unrecovered, r.LateData, r.LossEvents, r.OpenSpans),
		fmt.Sprintf("mechanisms: arq %d, preemptive-fec %d, cross-group %d",
			r.ByMechanism[spans.MechARQ], r.ByMechanism[spans.MechFEC], r.ByMechanism[spans.MechData]),
	}
	return lines
}

// String renders the full report: headline, mechanism split, and the
// per-zone / per-level latency tables. Deterministic for a given span
// set.
func (r *RecoveryReport) String() string {
	var b strings.Builder
	for _, l := range r.SummaryLines() {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	row := func(tag string, zr ZoneRecovery) {
		fmt.Fprintf(&b, "%-8s %5d  p50 %8.4fs  p95 %8.4fs  p99 %8.4fs  mean %8.4fs  hops %.2f\n",
			tag, zr.Spans, zr.P50, zr.P95, zr.P99, zr.Mean, zr.MeanHops)
	}
	if len(r.Zones) > 0 {
		b.WriteString("blame zone latency:\n")
		for _, zr := range r.Zones {
			row(fmt.Sprintf("z%d/l%d", zr.Zone, zr.Level), zr)
		}
	}
	if len(r.Levels) > 0 {
		b.WriteString("blame level latency:\n")
		for _, zr := range r.Levels {
			row(fmt.Sprintf("l%d", zr.Level), zr)
		}
	}
	if r.Unattributed.Spans > 0 {
		b.WriteString("unattributed (cross-group):\n")
		row("-", r.Unattributed)
	}
	return b.String()
}
