package ratecontrol

import (
	"math"

	"sharqfec/internal/core"
	"sharqfec/internal/scoping"
)

// maxLossProb caps the per-packet loss probability the optimizer
// models: beyond it the DP saturates (every affordable h fails) and
// the clamp keeps the Gilbert calibration pGB = p·pBG/(1-p) finite.
const maxLossProb = 0.95

// Config tunes the adaptive controller. The zero value picks the
// documented defaults.
type Config struct {
	// Budget caps injected redundancy per group as a fraction of the
	// group size k: a decision never owes more than ceil(Budget·k)
	// shares. Default 0.5 (at most half a group of extra repairs).
	Budget float64
	// ArqPenalty is the relative cost of one loss left uncovered by
	// preemptive redundancy (it must be repaired through a NACK round:
	// a request timer plus a full RTT, hundreds of milliseconds on the
	// Figure-10 topology) versus sending one more preemptive repair
	// share (~5 ms of pacing plus its bandwidth). Default 12, the knee
	// of the latency/overhead curve on the Figure-10 burst-loss
	// ensemble (see EXPERIMENTS.md E18); raising it buys lower tail
	// latency with more repair traffic, up to the Budget cap.
	ArqPenalty float64
	// InjectCost is the cost of one preemptive repair share (the unit
	// the penalty is measured against). Default 1.
	InjectCost float64
	// EWMAOld/EWMANew weight the per-zone predicted-ZLC filter — the
	// same magnitude predictor the static policy uses, so the two
	// policies differ only in how they turn the prediction into
	// redundancy. Default 0.75/0.25 (the paper's).
	EWMAOld, EWMANew float64
	// MinObservations is how many packets the loss estimator must see
	// before its burst model is trusted; below it the controller
	// assumes independent losses at the predicted mean. Default 64.
	MinObservations uint64
	// Window is the estimator's sliding observation window in packets
	// (0 = never forget). Default 4096.
	Window int
}

func (cfg Config) withDefaults() Config {
	if cfg.Budget <= 0 {
		cfg.Budget = 0.5
	}
	if cfg.ArqPenalty <= 0 {
		cfg.ArqPenalty = 12
	}
	if cfg.InjectCost <= 0 {
		cfg.InjectCost = 1
	}
	if cfg.EWMAOld == 0 && cfg.EWMANew == 0 {
		cfg.EWMAOld, cfg.EWMANew = 0.75, 0.25
	}
	if cfg.MinObservations == 0 {
		cfg.MinObservations = 64
	}
	if cfg.Window == 0 {
		cfg.Window = 4096
	}
	return cfg
}

// Controller is the adaptive policy: it keeps the static policy's
// per-zone EWMA loss-magnitude predictor, fits a Gilbert–Elliott burst
// model to the agent's own reception sequence, and sizes each group's
// redundancy h by minimizing the expected recovery cost
//
//	cost(h) = E[max(L(k+h) − h, 0)]·ArqPenalty + h·InjectCost
//
// over h in [0, ceil(Budget·k)], where L(n) is the loss count among n
// transmissions of the fitted chain. The first term is the expected
// number of shares the group will still be short — each one costs a
// NACK round trip — so partial coverage of a long burst still pays,
// and the optimizer buys shares until the marginal share no longer
// removes ArqPenalty-weighted expected shortfall. The distribution of
// L is computed exactly by dynamic programming from the chain's
// stationary state, so burstiness (not just the mean) shapes the
// decision: at equal mean loss, longer bursts fatten the loss-count
// tail and buy more protection.
//
// Decide is allocation-free in steady state: the DP scratch buffers
// are preallocated and reused.
type Controller struct {
	cfg  Config
	est  *Estimator
	pred map[scoping.ZoneID]float64

	// DP scratch: probability of (state, losses-so-far) by loss count,
	// double-buffered.
	pg, pb, qg, qb []float64
}

// New returns an adaptive controller. Each agent needs its own (the
// estimator follows that agent's reception sequence).
func New(cfg Config) *Controller {
	return &Controller{
		cfg:  cfg.withDefaults(),
		est:  NewEstimator(cfg.withDefaults().Window),
		pred: make(map[scoping.ZoneID]float64),
	}
}

// Name implements core.Controller.
func (c *Controller) Name() string { return "adaptive" }

// Estimator exposes the controller's loss-model fit (for reports and
// tests).
func (c *Controller) Estimator() *Estimator { return c.est }

// ObservePacket implements core.Controller: the agent's reception
// sequence feeds the burst-model fit.
func (c *Controller) ObservePacket(lost bool) { c.est.Observe(lost) }

// ObserveZLC implements core.Controller with the paper's EWMA filter —
// magnitude tracking is identical to the static policy by design.
func (c *Controller) ObserveZLC(z scoping.ZoneID, sample float64) {
	c.pred[z] = c.cfg.EWMAOld*c.pred[z] + c.cfg.EWMANew*sample
}

// Predict implements core.Controller.
func (c *Controller) Predict(z scoping.ZoneID) float64 { return c.pred[z] }

// MaxH returns the redundancy cap the budget allows for group size k.
func (c *Controller) MaxH(k int) int {
	return int(math.Ceil(c.cfg.Budget * float64(k)))
}

// Decide implements core.Controller.
func (c *Controller) Decide(z scoping.ZoneID, k, repairsHeard int) core.Decision {
	pred := c.pred[z]
	h := c.optimalH(pred, k)
	return core.Decision{K: k, H: h - repairsHeard, Pred: pred}
}

// optimalH minimizes cost(h) over the budgeted range for a zone whose
// predicted per-group loss count is pred.
func (c *Controller) optimalH(pred float64, k int) int {
	if pred <= 0 || k <= 0 {
		return 0
	}
	p := pred / float64(k)
	if p > maxLossProb {
		p = maxLossProb
	}
	// Fit the chain: burst length from the estimator once it has seen
	// enough traffic, independent losses otherwise. The mean is always
	// the zone predictor's — the estimator watches this agent's inbound
	// link mix, but injection must cover the whole zone's loss (the
	// ZLC), so only the correlation structure is taken from it.
	pBG := 1 - p // i.i.d.: mean burst 1/(1-p)
	if c.est.Observations() >= c.cfg.MinObservations {
		if b := c.est.MeanBurstLen(); b > 1 {
			pBG = 1 / b
		}
	}
	pGB := p * pBG / (1 - p)
	if pGB > 1 {
		pGB = 1
	}

	hMax := c.MaxH(k)
	n := k + hMax
	c.ensureScratch(n + 2)
	pg, pb := c.pg[:n+2], c.pb[:n+2]
	qg, qb := c.qg[:n+2], c.qb[:n+2]
	for i := range pg {
		pg[i], pb[i] = 0, 0
	}
	// Start from the stationary distribution of the fitted chain.
	stat := pGB / (pGB + pBG)
	pg[0], pb[0] = 1-stat, stat

	// advance one transmission: a packet is lost iff the chain is in
	// the Bad state (classic Gilbert), then the state steps.
	advance := func(steps int) {
		for i := 0; i <= steps+1; i++ {
			qg[i], qb[i] = 0, 0
		}
		for l := 0; l <= steps; l++ {
			if g := pg[l]; g > 0 {
				qg[l] += g * (1 - pGB)
				qb[l] += g * pGB
			}
			if b := pb[l]; b > 0 {
				qg[l+1] += b * pBG
				qb[l+1] += b * (1 - pBG)
			}
		}
		copy(pg[:steps+2], qg[:steps+2])
		copy(pb[:steps+2], qb[:steps+2])
	}

	steps := 0
	for ; steps < k; steps++ {
		advance(steps)
	}
	bestH, bestCost := 0, math.Inf(1)
	for h := 0; h <= hMax; h++ {
		if h > 0 {
			// Repairs ride the same lossy links: extend the chain by
			// one transmission per extra share.
			advance(steps)
			steps++
		}
		// Expected shortfall: losses beyond the h shares in hand each
		// need an ARQ round. Max losses after k+h steps is k+h.
		short := 0.0
		for l := h + 1; l <= steps; l++ {
			short += float64(l-h) * (pg[l] + pb[l])
		}
		cost := short*c.cfg.ArqPenalty + float64(h)*c.cfg.InjectCost
		if cost < bestCost {
			bestCost, bestH = cost, h
		}
	}
	return bestH
}

func (c *Controller) ensureScratch(n int) {
	if cap(c.pg) >= n {
		return
	}
	c.pg = make([]float64, n)
	c.pb = make([]float64, n)
	c.qg = make([]float64, n)
	c.qb = make([]float64, n)
}
