package ratecontrol_test

import (
	"math"
	"testing"

	"sharqfec/internal/faults"
	"sharqfec/internal/ratecontrol"
	"sharqfec/internal/scoping"
	"sharqfec/internal/simrand"
)

// TestEstimatorConvergesOnBurstStreams is the ground-truth property
// test: fed the drop sequence of the faults engine's own burst-loss
// RNG streams (the classic Gilbert model faults.NewBurst installs),
// the estimator's stationary loss rate and mean burst length must
// converge to the generating chain's across a seed ensemble.
func TestEstimatorConvergesOnBurstStreams(t *testing.T) {
	const packets = 200_000
	cases := []struct{ mean, burst float64 }{
		{0.05, 2},
		{0.10, 5},
		{0.20, 8},
		{0.30, 16},
	}
	for _, tc := range cases {
		for seed := uint64(1); seed <= 8; seed++ {
			src := simrand.New(seed)
			model, err := faults.NewBurst(src.Stream("test/burst"), tc.mean, tc.burst)
			if err != nil {
				t.Fatal(err)
			}
			est := ratecontrol.NewEstimator(0)
			for i := 0; i < packets; i++ {
				est.Observe(model.Drop())
			}
			wantLoss := model.StationaryLoss()
			if got := est.StationaryLoss(); math.Abs(got-wantLoss) > 0.02 {
				t.Errorf("mean=%.2f burst=%.0f seed=%d: stationary loss %.4f, ground truth %.4f",
					tc.mean, tc.burst, seed, got, wantLoss)
			}
			wantBurst := model.MeanBurstLen()
			if got := est.MeanBurstLen(); math.Abs(got-wantBurst) > 0.15*wantBurst {
				t.Errorf("mean=%.2f burst=%.0f seed=%d: burst length %.2f, ground truth %.2f",
					tc.mean, tc.burst, seed, got, wantBurst)
			}
			_, pBG, _, _ := model.Params()
			if got := est.PBadGood(); math.Abs(got-pBG) > 0.15*pBG+0.01 {
				t.Errorf("mean=%.2f burst=%.0f seed=%d: PBadGood %.4f, ground truth %.4f",
					tc.mean, tc.burst, seed, got, pBG)
			}
		}
	}
}

// TestEstimatorBernoulliStream: on an independent-loss stream the fit
// must recover the Bernoulli rate (stationary loss = p, bursts near
// the geometric 1/(1-p)).
func TestEstimatorBernoulliStream(t *testing.T) {
	src := simrand.New(7)
	rng := src.Stream("test/bernoulli")
	est := ratecontrol.NewEstimator(0)
	const p = 0.15
	for i := 0; i < 200_000; i++ {
		est.Observe(rng.Bernoulli(p))
	}
	if got := est.StationaryLoss(); math.Abs(got-p) > 0.01 {
		t.Fatalf("stationary loss %.4f, want ~%.2f", got, p)
	}
	want := 1 / (1 - p)
	if got := est.MeanBurstLen(); math.Abs(got-want) > 0.1*want {
		t.Fatalf("mean burst %.3f, want ~%.3f", got, want)
	}
}

// TestEstimatorWindowTracksRegimeChange: with a sliding window the fit
// must follow a shift from light independent loss to heavy bursts.
func TestEstimatorWindowTracksRegimeChange(t *testing.T) {
	src := simrand.New(11)
	rng := src.Stream("test/regime")
	est := ratecontrol.NewEstimator(2000)
	for i := 0; i < 50_000; i++ {
		est.Observe(rng.Bernoulli(0.02))
	}
	model, err := faults.NewBurst(src.Stream("test/regime-burst"), 0.25, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50_000; i++ {
		est.Observe(model.Drop())
	}
	if got := est.StationaryLoss(); math.Abs(got-0.25) > 0.05 {
		t.Fatalf("windowed fit stuck at %.4f after regime change, want ~0.25", got)
	}
	if got := est.MeanBurstLen(); got < 5 {
		t.Fatalf("windowed burst fit %.2f did not follow the burst regime", got)
	}
}

// TestAdaptiveProtectsBurstsMore: at the same predicted mean loss, a
// burstier fitted chain must buy at least as much redundancy — the
// whole point of modeling correlation.
func TestAdaptiveProtectsBurstsMore(t *testing.T) {
	decide := func(burst float64) int {
		c := ratecontrol.New(ratecontrol.Config{Budget: 0.5})
		src := simrand.New(3)
		model, err := faults.NewBurst(src.Stream("t"), 0.10, burst)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50_000; i++ {
			c.ObservePacket(model.Drop())
		}
		zone := scoping.ZoneID(1)
		c.ObserveZLC(zone, 6) // pred = 1.5 after one sample
		c.ObserveZLC(zone, 6)
		return c.Decide(zone, 16, 0).H
	}
	light := decide(1.5)
	heavy := decide(12)
	if heavy < light {
		t.Fatalf("burst=12 chose h=%d < burst=1.5 h=%d", heavy, light)
	}
	if heavy <= 0 {
		t.Fatalf("heavy bursts at 10%% mean loss bought no redundancy (h=%d)", heavy)
	}
}

// TestAdaptiveRespectsBudget: no decision may exceed ceil(Budget·k),
// even with an absurd predictor.
func TestAdaptiveRespectsBudget(t *testing.T) {
	for _, budget := range []float64{0.125, 0.25, 0.5} {
		c := ratecontrol.New(ratecontrol.Config{Budget: budget, ArqPenalty: 1e6})
		zone := scoping.ZoneID(2)
		for i := 0; i < 20; i++ {
			c.ObserveZLC(zone, 64)
		}
		const k = 16
		dec := c.Decide(zone, k, 0)
		if max := c.MaxH(k); dec.H > max {
			t.Fatalf("budget %.3f: h=%d exceeds cap %d", budget, dec.H, max)
		}
	}
}

// TestAdaptiveZeroPrediction: a quiet zone owes nothing, and heard
// repairs are netted out like the static policy does.
func TestAdaptiveZeroPrediction(t *testing.T) {
	c := ratecontrol.New(ratecontrol.Config{})
	if dec := c.Decide(scoping.ZoneID(0), 16, 0); dec.H != 0 {
		t.Fatalf("h=%d for an untouched zone, want 0", dec.H)
	}
	if dec := c.Decide(scoping.ZoneID(0), 16, 3); dec.H != -3 {
		t.Fatalf("h=%d with 3 repairs heard, want -3", dec.H)
	}
}

// TestDecideSteadyStateZeroAlloc pins the 0-alloc contract the CI
// benchmark gate enforces: after the first decision warms the scratch
// buffers, Decide must not allocate.
func TestDecideSteadyStateZeroAlloc(t *testing.T) {
	c := ratecontrol.New(ratecontrol.Config{})
	src := simrand.New(5)
	model, err := faults.NewBurst(src.Stream("t"), 0.15, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		c.ObservePacket(model.Drop())
	}
	zone := scoping.ZoneID(3)
	c.ObserveZLC(zone, 4)
	c.Decide(zone, 16, 0) // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		c.Decide(zone, 16, 1)
	})
	if allocs != 0 {
		t.Fatalf("Decide allocates %.1f objects/op in steady state, want 0", allocs)
	}
}

// FuzzEstimatorIngest fuzzes the event-ingest path: arbitrary binary
// sequences (with arbitrary window sizes) must never produce NaN,
// out-of-range probabilities, or a panicking decision.
func FuzzEstimatorIngest(f *testing.F) {
	f.Add([]byte{0, 1, 1, 0}, 0)
	f.Add([]byte{1, 1, 1, 1, 1, 1}, 16)
	f.Add([]byte{}, -3)
	f.Add([]byte{0}, 1)
	f.Fuzz(func(t *testing.T, data []byte, window int) {
		if window > 1<<20 {
			window = 1 << 20
		}
		est := ratecontrol.NewEstimator(window)
		c := ratecontrol.New(ratecontrol.Config{Window: window})
		zone := scoping.ZoneID(0)
		for i, b := range data {
			lost := b&1 == 1
			est.Observe(lost)
			c.ObservePacket(lost)
			if b&2 != 0 {
				c.ObserveZLC(zone, float64(b>>2))
			}
			if i%17 == 0 {
				if dec := c.Decide(zone, 16, int(b>>4)); dec.H > c.MaxH(16) {
					t.Fatalf("decision h=%d over budget cap %d", dec.H, c.MaxH(16))
				}
			}
		}
		for name, v := range map[string]float64{
			"PGoodBad":       est.PGoodBad(),
			"PBadGood":       est.PBadGood(),
			"StationaryLoss": est.StationaryLoss(),
		} {
			if math.IsNaN(v) || v < 0 || v > 1 {
				t.Fatalf("%s = %v out of [0,1]", name, v)
			}
		}
		if b := est.MeanBurstLen(); math.IsNaN(b) || b < 1-1e-9 || math.IsInf(b, 0) {
			t.Fatalf("MeanBurstLen = %v", b)
		}
	})
}
