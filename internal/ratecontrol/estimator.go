// Package ratecontrol implements burst-aware adaptive per-zone FEC
// rate control for SHARQFEC (the ROADMAP's TAROT direction): an online
// Gilbert–Elliott loss estimator fit from the reception sequence each
// agent already observes, and an adaptive core.Controller policy that
// sizes per-group redundancy by minimizing expected recovery cost
// subject to a repair-overhead budget.
//
// The paper's static policy (EWMA predicted-ZLC, rounded) protects
// against the *mean* loss per group. Under correlated burst loss the
// same mean concentrates into few groups, so the static h is too small
// exactly when it matters and nonzero when it doesn't. The adaptive
// policy models the loss process as a two-state Markov chain and picks
// the smallest h whose marginal cost (one more paced repair share)
// outweighs the marginal drop in P(group needs an ARQ round).
package ratecontrol

// Estimator fits a two-state Gilbert–Elliott loss model online from a
// binary received/lost sequence by counting state transitions. For the
// classic Gilbert parameterization (loss probability 0 in Good, 1 in
// Bad — what faults.NewBurst installs) the observed loss sequence *is*
// the hidden state sequence, so transition counting is the exact
// maximum-likelihood fit; for leaky variants (LossGood > 0) it
// estimates the observable loss-run process instead, which is what
// redundancy sizing needs anyway.
//
// A sliding exponential window (see NewEstimator) lets the fit track
// regime changes; the zero window never forgets. The estimator is
// RNG-free and allocation-free per observation.
type Estimator struct {
	started  bool
	prevLost bool
	// Exponentially-decayed transition counts: nXY counts prev-state X
	// → next-state Y, with 0 = received, 1 = lost.
	n00, n01, n10, n11 float64
	decay              float64
	obs                uint64
}

// NewEstimator returns an estimator with an effective observation
// window of roughly `window` packets (counts decay by 1-1/window per
// observation). window <= 0 means an infinite window: every
// observation keeps full weight forever.
func NewEstimator(window int) *Estimator {
	d := 1.0
	if window > 0 {
		d = 1 - 1/float64(window)
	}
	return &Estimator{decay: d}
}

// Observe ingests the next packet of the sequence: lost = true when it
// was declared lost, false when it arrived. Order matters — the fit is
// over consecutive pairs.
func (e *Estimator) Observe(lost bool) {
	e.obs++
	if e.decay != 1 {
		e.n00 *= e.decay
		e.n01 *= e.decay
		e.n10 *= e.decay
		e.n11 *= e.decay
	}
	if e.started {
		switch {
		case !e.prevLost && !lost:
			e.n00++
		case !e.prevLost && lost:
			e.n01++
		case e.prevLost && !lost:
			e.n10++
		default:
			e.n11++
		}
	}
	e.started = true
	e.prevLost = lost
}

// Observations returns how many packets have been ingested.
func (e *Estimator) Observations() uint64 { return e.obs }

// PGoodBad returns the fitted Good→Bad transition probability
// (0 before any received→X transition is seen).
func (e *Estimator) PGoodBad() float64 {
	if t := e.n00 + e.n01; t > 0 {
		return e.n01 / t
	}
	return 0
}

// PBadGood returns the fitted Bad→Good transition probability
// (1 before any lost→X transition is seen: bursts of length 1 until
// the data says otherwise).
func (e *Estimator) PBadGood() float64 {
	if t := e.n10 + e.n11; t > 0 {
		return e.n10 / t
	}
	return 1
}

// StationaryLoss returns the fitted chain's stationary mean loss rate,
// PGoodBad/(PGoodBad+PBadGood) — directly comparable to the generating
// model's calibrated mean (faults.GilbertElliott.StationaryLoss).
func (e *Estimator) StationaryLoss() float64 {
	pGB, pBG := e.PGoodBad(), e.PBadGood()
	if pGB+pBG <= 0 {
		return 0
	}
	return pGB / (pGB + pBG)
}

// MeanBurstLen returns the fitted mean loss-burst length in packets,
// 1/PBadGood (1 before any loss is observed). An all-lost history has
// PBadGood = 0; the result is capped so callers never see +Inf.
func (e *Estimator) MeanBurstLen() float64 {
	pBG := e.PBadGood()
	if pBG < 1e-9 {
		pBG = 1e-9
	}
	return 1 / pBG
}
