package core

import (
	"sort"

	"sharqfec/internal/eventq"
	"sharqfec/internal/scoping"
	"sharqfec/internal/telemetry"
)

// EmitUnrecoveredLosses posts a terminal KindLossUnrecovered event for
// every loss this agent declared whose group never decoded, so span
// assembly can distinguish slow recoveries from permanent ones instead
// of inferring the difference from silence. The facade calls it once
// per agent when the run ends (crashed agents included — their stranded
// losses are exactly the interesting ones). Emission order is
// deterministic: ascending group id, ascending sequence. A no-op when
// telemetry is disabled.
//
// B = 1 marks a loss whose original did arrive late while the group
// still fell short of k shares — data in hand, group never verified.
func (a *Agent) EmitUnrecoveredLosses(now eventq.Time) {
	if a.tel == nil {
		return
	}
	gids := make([]uint32, 0, len(a.groups))
	for gid := range a.groups {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		g := a.groups[gid]
		if g.complete {
			continue
		}
		base := int64(gid) * int64(a.cfg.GroupK)
		for idx := 0; idx < g.k; idx++ {
			if !g.lossed(idx) {
				continue
			}
			late := int64(0)
			if g.seen(idx) {
				late = 1
			}
			a.emit(now, telemetry.KindLossUnrecovered, scoping.NoZone, int64(gid), base+int64(idx), late, 0)
		}
	}
}
