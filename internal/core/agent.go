package core

import (
	"fmt"

	"sharqfec/internal/eventq"
	"sharqfec/internal/fabric"
	"sharqfec/internal/fec"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/session"
	"sharqfec/internal/simrand"
	"sharqfec/internal/telemetry"
	"sharqfec/internal/topology"
)

// Stats are per-agent protocol counters.
type Stats struct {
	NACKsSent        int
	NACKsSuppressed  int
	RepairsSent      int
	RepairsInjected  int
	GroupsCompleted  int
	DataReceived     int
	RepairsReceived  int
	DupShares        int
	ScopeEscalations int
}

// Agent is one SHARQFEC session member (sender or receiver).
type Agent struct {
	node  topology.NodeID
	net   fabric.Network
	cfg   Config
	rng   *simrand.Rand
	sess  *session.Manager
	codec *fec.Codec
	tel   *telemetry.Bus // nil when telemetry is disabled

	isSource bool
	root     scoping.ZoneID
	chain    []scoping.ZoneID // scope chain used for NACKs (collapsed when !Scoping)

	groups   map[uint32]*group
	slab     groupSlab // arena backing every group's index bitsets
	maxSeq   int64     // highest original data seq seen; -1 before any
	ipt      float64
	iptInit  bool
	lastData eventq.Time

	// ctrl sizes preemptive FEC injection: the predicted zone loss
	// counts maintained by the sender (root scope) and by ZCRs (their
	// zones) live behind it. Always non-nil; the static policy is the
	// default.
	ctrl Controller

	// sendData holds the source's original payloads by group.
	sendData map[uint32][][]byte

	// OnComplete, if set, fires when a group is fully reconstructed at
	// this node.
	OnComplete func(now eventq.Time, group uint32, data [][]byte)

	joined  bool
	stopped bool

	// late-join state (see latejoin.go)
	lateJoiner    bool
	joinSeq       int64 // first seq of the group current at join; -1 until known
	catchUpQueue  []uint32
	catchUpActive map[uint32]bool

	// receiver-report tallies (original packets observed lost / total)
	rrLost, rrTotal int

	// adaptive request-timer state (§7 extension; see adaptive.go)
	c1, c2     float64
	aveDupNACK float64

	Stats Stats
}

// New creates a SHARQFEC agent for node and attaches it to the network.
func New(node topology.NodeID, net fabric.Network, cfg Config, src *simrand.Source) (*Agent, error) {
	if cfg.NumPackets%cfg.GroupK != 0 {
		return nil, fmt.Errorf("core: NumPackets (%d) must be a multiple of GroupK (%d)", cfg.NumPackets, cfg.GroupK)
	}
	codec, err := fec.NewCodec(cfg.GroupK)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	a := &Agent{
		node:          node,
		net:           net,
		cfg:           cfg,
		rng:           src.StreamN("core", int(node)),
		codec:         codec,
		isSource:      node == cfg.Source,
		root:          net.Hierarchy().Root(),
		groups:        make(map[uint32]*group),
		maxSeq:        -1,
		catchUpActive: make(map[uint32]bool),
		c1:            cfg.C1,
		c2:            cfg.C2,
		ipt:           cfg.InterPacket(), // advertised rate bootstraps the estimate
		tel:           cfg.Telemetry,
	}
	if cfg.NewController != nil {
		a.ctrl = cfg.NewController(node)
	}
	if a.ctrl == nil {
		a.ctrl = NewStaticController(cfg.EWMAOld, cfg.EWMANew)
	}
	cfg.Session.Telemetry = cfg.Telemetry
	a.sess = session.New(node, net, cfg.Session, src.StreamN("session", int(node)))
	if cfg.Options.Scoping {
		a.chain = net.Hierarchy().ZonesOf(node)
	} else {
		a.chain = []scoping.ZoneID{a.root}
	}
	if a.isSource {
		a.sendData = make(map[uint32][][]byte)
	}
	net.Attach(node, a)
	return a, nil
}

// Node returns the agent's node ID.
func (a *Agent) Node() topology.NodeID { return a.node }

// Session exposes the agent's session manager (for experiments that
// inspect RTT state).
func (a *Agent) Session() *session.Manager { return a.sess }

// RawLossFraction returns the fraction of original packets this
// receiver observed missing at group loss-detection deadlines — its
// published receiver report.
func (a *Agent) RawLossFraction() float64 {
	if a.rrTotal == 0 {
		return 0
	}
	return float64(a.rrLost) / float64(a.rrTotal)
}

// SentGroup returns the original payloads the source transmitted for a
// group (nil on receivers or for groups not yet sent).
func (a *Agent) SentGroup(gid uint32) [][]byte {
	if a.sendData == nil {
		return nil
	}
	return a.sendData[gid]
}

// Join subscribes the member: packets are processed from this moment and
// session management starts. The source declares itself the root-zone
// ZCR.
func (a *Agent) Join() {
	a.joined = true
	a.sess.Start(a.isSource)
}

// Stop fails the member: it stops sending and reacting entirely, while
// the network keeps forwarding through its attachment point — the ZCR
// failure model of §3.2/§5.2.
func (a *Agent) Stop() {
	a.stopped = true
	a.sess.Stop()
}

// Stopped reports whether Stop was called.
func (a *Agent) Stopped() bool { return a.stopped }

// StartSource schedules the source's CBR transmission beginning at the
// current simulation time: NumPackets data packets at the configured
// rate, in groups of GroupK, with preemptive redundancy per group when
// injection is enabled. Payload bytes are generated deterministically
// from the agent's random stream.
func (a *Agent) StartSource() {
	if !a.isSource {
		panic("core: StartSource on a receiver")
	}
	ipt := eventq.Duration(a.cfg.InterPacket())
	for s := 0; s < a.cfg.NumPackets; s++ {
		seq := uint32(s)
		at := eventq.Duration(float64(s)) * ipt
		a.net.Sched().After(at, func(now eventq.Time) { a.sourceSend(now, seq) })
	}
}

// sourceSend transmits data packet seq and, at each group boundary,
// performs the sender's repair-phase entry (§4 RP rules).
func (a *Agent) sourceSend(now eventq.Time, seq uint32) {
	if a.stopped {
		return
	}
	k := a.cfg.GroupK
	gid := seq / uint32(k)
	idx := int(seq) % k
	data := a.sendData[gid]
	if data == nil {
		// One block per group, sliced per payload (capacity-clipped so
		// an append can never bleed into a neighbor): k payloads cost
		// one allocation instead of k, and the bytes and RNG draw order
		// are identical to per-payload allocation.
		data = make([][]byte, k)
		sz := a.cfg.PayloadSize
		block := make([]byte, k*sz)
		for i := range data {
			p := block[i*sz : (i+1)*sz : (i+1)*sz]
			for j := range p {
				p[j] = byte(a.rng.IntN(256))
			}
			data[i] = p
		}
		a.sendData[gid] = data
	}
	pkt := &packet.Data{
		Origin:  a.node,
		Seq:     seq,
		Group:   gid,
		Index:   uint8(idx),
		GroupK:  uint8(k),
		Payload: data[idx],
	}
	a.net.Multicast(a.node, a.root, pkt)
	a.sess.MaxSeq = seq + 1 // advertised as one past the high-water mark

	lastOfGroup := idx == k-1 || int(seq) == a.cfg.NumPackets-1
	if lastOfGroup {
		a.senderGroupEnd(now, gid)
	}
}

// senderGroupEnd runs when the source finishes a group's original
// packets: preemptive redundancy (if enabled), immediate service of any
// NACK-queued repairs, and scheduling of the ZLC sample for the EWMA.
func (a *Agent) senderGroupEnd(now eventq.Time, gid uint32) {
	g := a.ensureGroup(gid)
	g.complete = true // the source trivially holds all data
	g.maxShare = a.cfg.GroupK - 1

	if a.cfg.Options.Injection {
		// The source's own stream never saw upstream injections, so
		// nothing is netted out: repairsHeard = 0.
		dec := a.decide(now, g, a.root, 0)
		if dec.H > 0 {
			a.injectRepairs(now, g, a.root, dec.H)
			a.Stats.RepairsInjected += dec.H
		}
	}
	// Serve any repairs NACKed during the loss-detection phase,
	// starting immediately (§4 RP: "immediately generating and
	// transmitting the first of any queued repairs in the largest
	// scope zone").
	a.serveQueuedRepairs(now, g)
	a.scheduleZLCSample(now, g, a.root)
}

// Receive implements fabric.Agent: session packets go to the session
// manager; data-plane packets to the protocol handlers.
func (a *Agent) Receive(now eventq.Time, d fabric.Delivery) {
	if a.stopped || !a.joined {
		return
	}
	if sp, ok := d.Pkt.(*packet.Session); ok {
		// Session messages advertise the stream high-water mark, which
		// is the only way to detect losses at the very tail of the
		// stream (no later data packet opens the gap). A late joiner
		// instead learns the stream position from it and starts the
		// paced catch-up queue.
		hw := int64(sp.MaxSeq) - 1
		if a.lateJoiner && a.joinSeq < 0 && hw >= 0 {
			a.observeStreamPosition(now, hw)
		}
		if !a.isSource && hw > a.maxSeq {
			for s := a.maxSeq + 1; s <= hw; s++ {
				a.noteLoss(now, uint32(s))
			}
			a.maxSeq = hw
		}
	}
	if a.sess.Receive(now, d.Pkt) {
		return
	}
	switch p := d.Pkt.(type) {
	case *packet.Data:
		a.handleData(now, p)
	case *packet.Repair:
		a.handleRepair(now, p)
	case *packet.NACK:
		a.handleNACK(now, p)
	default:
		// Unknown data-plane packet: ignore (forward compatibility).
	}
}

// ensureGroup returns (creating if needed) the state for group gid.
func (a *Agent) ensureGroup(gid uint32) *group {
	g := a.groups[gid]
	if g == nil {
		g = newGroup(gid, a.cfg.GroupK, &a.slab)
		a.groups[gid] = g
	}
	return g
}

// scopeZone maps a scope index (into the agent's chain) to a zone.
func (a *Agent) scopeZone(idx int) scoping.ZoneID {
	if idx >= len(a.chain) {
		idx = len(a.chain) - 1
	}
	return a.chain[idx]
}

// nackScope returns the initial NACK scope per §4: the smallest zone,
// unless the source is a member of it, in which case the largest scope
// is used instead. A zone's own ZCR additionally starts at the parent
// scope: every member of its zone is downstream of it and shares its
// losses, and the Figure-2 redundancy cascade needs the next level up
// (ultimately the source) to hear the ZCR's loss count so its ZLC
// predictor covers the zone's inbound losses.
func (a *Agent) nackScope() int {
	if !a.cfg.Options.Scoping {
		return 0
	}
	if a.net.Hierarchy().Contains(a.chain[0], a.cfg.Source) {
		return len(a.chain) - 1
	}
	for i := 0; i < len(a.chain)-1; i++ {
		if !a.isZCR(a.chain[i]) {
			return i
		}
	}
	return len(a.chain) - 1
}

// distToSource estimates the one-way transit time to the data source for
// the request timer (d_{S,A}).
func (a *Agent) distToSource() float64 {
	return a.sess.Dist(a.cfg.Source, nil)
}

// canRepair reports whether this agent may generate repairs once it holds
// a complete group.
func (a *Agent) canRepair() bool {
	return a.isSource || !a.cfg.Options.SenderOnly
}

// emit posts a protocol event when telemetry is attached. Events carry
// no protocol state and consume no randomness, so instrumented and
// plain runs are byte-identical per seed.
func (a *Agent) emit(now eventq.Time, kind telemetry.Kind, zone scoping.ZoneID,
	group, av, bv int64, f float64) {

	if a.tel == nil {
		return
	}
	a.tel.Emit(telemetry.Event{
		T: now.Seconds(), Kind: kind, Node: a.node, Zone: zone,
		Group: group, A: av, B: bv, F: f,
	})
}

// decide consults the rate controller for one zone's injection size and
// publishes the decision as a telemetry event (Zone = target zone,
// A = shares owed, B = group size, F = predictor state). Emission is
// passive, so instrumented and plain runs stay byte-identical per seed.
func (a *Agent) decide(now eventq.Time, g *group, z scoping.ZoneID, repairsHeard int) Decision {
	dec := a.ctrl.Decide(z, g.k, repairsHeard)
	a.emit(now, telemetry.KindControllerDecision, z, int64(g.id), int64(dec.H), int64(dec.K), dec.Pred)
	return dec
}

// PredictedZLC exposes the controller's predicted zone loss count for
// z (0 before any ZLC sample), for tests and experiment reports.
func (a *Agent) PredictedZLC(z scoping.ZoneID) float64 { return a.ctrl.Predict(z) }

// isZCR reports whether this agent is currently the ZCR of zone z (the
// source acts as the root's ZCR; the role is disabled entirely without
// scoping, where the source is the only injector).
func (a *Agent) isZCR(z scoping.ZoneID) bool {
	if !a.cfg.Options.Scoping {
		return a.isSource && z == a.root
	}
	if z == a.root {
		return a.isSource
	}
	return a.sess.IsZCR(z)
}
