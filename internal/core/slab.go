package core

// Struct-of-arrays backing store for per-group receiver state. Every
// group used to carry three separate []bool slices (seen / counted /
// lossed), i.e. three heap objects plus headers per group — at 10⁵–10⁶
// agents times hundreds of groups that is the dominant allocation count
// of a large run. The slab packs all three as bit lanes in one
// contiguous []uint64 arena per agent: one append-only allocation site,
// 3·⌈k/64⌉ words per group (a single word for the usual k=16), and an
// exact byte figure for the census memory-footprint gauge.
//
// References are word offsets, not sub-slices, so arena growth (which
// reallocates the backing array) never invalidates them. Lanes are
// write-once-grow-only bookkeeping; nothing is ever freed — group
// lifetime is the run, matching the previous slices' behavior exactly.

import "unsafe"

// Bit lanes of one group's allocation, in arena order.
const (
	laneSeen    = iota // original data index arrived as a data packet
	laneCounted        // index counted into the LLC as lost
	laneLossed         // index ever emitted a loss_detected event
	numLanes
)

// groupSlab is one agent's arena. The zero value is ready to use; k is
// fixed at first alloc (GroupK is constant per run).
type groupSlab struct {
	words []uint64
	wpl   int32 // words per lane, ⌈k/64⌉
}

// alloc reserves the lanes for one k-share group and returns the base
// word offset. All bits start clear, like freshly made []bool slices.
func (s *groupSlab) alloc(k int) int32 {
	if s.wpl == 0 {
		s.wpl = int32((k + 63) / 64)
	}
	base := int32(len(s.words))
	for i := int32(0); i < s.wpl*numLanes; i++ {
		s.words = append(s.words, 0)
	}
	return base
}

// get reads bit i of the given lane of the group at base.
func (s *groupSlab) get(base int32, lane, i int) bool {
	w := base + int32(lane)*s.wpl + int32(i>>6)
	return s.words[w]&(1<<uint(i&63)) != 0
}

// set sets bit i of the given lane of the group at base.
func (s *groupSlab) set(base int32, lane, i int) {
	w := base + int32(lane)*s.wpl + int32(i>>6)
	s.words[w] |= 1 << uint(i&63)
}

// clear clears bit i of the given lane of the group at base.
func (s *groupSlab) clear(base int32, lane, i int) {
	w := base + int32(lane)*s.wpl + int32(i>>6)
	s.words[w] &^= 1 << uint(i&63)
}

// bytes is the arena's retained footprint (capacity, not length: the
// slack is held memory too).
func (s *groupSlab) bytes() int { return cap(s.words) * 8 }

// Estimated bytes per map entry (key + value + bucket share) across the
// small per-group maps. The census wants a stable, honest order of
// magnitude, not malloc ground truth.
const mapEntryBytes = 48

// footprintBytes estimates the agent's total resident protocol memory:
// the bitset arena, the group structs and their map entries, payload
// bytes held in share/data buffers and the source's transmit store.
// Purely observational — reading it mutates nothing.
func (a *Agent) footprintBytes() int {
	b := a.slab.bytes()
	b += len(a.groups) * (int(unsafe.Sizeof(group{})) + mapEntryBytes)
	for _, g := range a.groups {
		entries := len(g.shares) + len(g.zlc) + len(g.pending) +
			len(g.zlcSampled) + len(g.injected)
		b += entries * mapEntryBytes
		for _, p := range g.shares {
			b += len(p)
		}
		for _, p := range g.data {
			b += len(p)
		}
	}
	for _, d := range a.sendData {
		b += mapEntryBytes
		for _, p := range d {
			b += len(p)
		}
	}
	return b
}
