package core

import "testing"

// TestGroupSlabLanes exercises the bitset arena directly: lane
// isolation, clear semantics, growth across many groups (the arena
// reallocates; offsets must survive), and the footprint figure.
func TestGroupSlabLanes(t *testing.T) {
	var s groupSlab
	const k = 16
	refs := make([]int32, 100)
	for i := range refs {
		refs[i] = s.alloc(k)
	}
	// Set a distinct pattern per group and lane, then verify nothing
	// bled across lane or group boundaries.
	for gi, base := range refs {
		s.set(base, laneSeen, gi%k)
		s.set(base, laneCounted, (gi+1)%k)
		s.set(base, laneLossed, (gi+2)%k)
	}
	for gi, base := range refs {
		for i := 0; i < k; i++ {
			if got := s.get(base, laneSeen, i); got != (i == gi%k) {
				t.Fatalf("group %d seen[%d] = %v", gi, i, got)
			}
			if got := s.get(base, laneCounted, i); got != (i == (gi+1)%k) {
				t.Fatalf("group %d counted[%d] = %v", gi, i, got)
			}
			if got := s.get(base, laneLossed, i); got != (i == (gi+2)%k) {
				t.Fatalf("group %d lossed[%d] = %v", gi, i, got)
			}
		}
	}
	s.clear(refs[7], laneCounted, 8)
	if s.get(refs[7], laneCounted, 8) {
		t.Fatal("clear did not clear")
	}
	if s.get(refs[7], laneSeen, 7) != true {
		t.Fatal("clear disturbed another lane")
	}
	if s.bytes() < 100*numLanes*8 {
		t.Fatalf("footprint %d bytes below the %d words allocated", s.bytes(), 100*numLanes)
	}
}

// TestGroupSlabWideK covers k > 64: multiple words per lane.
func TestGroupSlabWideK(t *testing.T) {
	var s groupSlab
	base := s.alloc(130)
	for _, i := range []int{0, 63, 64, 129} {
		s.set(base, laneLossed, i)
	}
	for i := 0; i < 130; i++ {
		want := i == 0 || i == 63 || i == 64 || i == 129
		if got := s.get(base, laneLossed, i); got != want {
			t.Fatalf("wide lossed[%d] = %v, want %v", i, got, want)
		}
		if s.get(base, laneSeen, i) || s.get(base, laneCounted, i) {
			t.Fatalf("wide k bled into another lane at %d", i)
		}
	}
}

// TestFootprintBytesGrows pins that the census memory figure moves with
// protocol state: an agent that has tracked groups reports strictly
// more than a fresh one.
func TestFootprintBytesGrows(t *testing.T) {
	a := &Agent{groups: map[uint32]*group{}}
	empty := a.footprintBytes()
	g := newGroup(0, 16, &a.slab)
	g.shares[3] = make([]byte, 512)
	a.groups[0] = g
	if grown := a.footprintBytes(); grown <= empty+512 {
		t.Fatalf("footprint %d after a group with a 512B share; empty was %d", grown, empty)
	}
}
