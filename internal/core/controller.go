package core

import (
	"sharqfec/internal/scoping"
)

// This file defines the rate-control seam: the Controller interface an
// agent consults to size preemptive FEC, and the static policy — the
// paper's EWMA predicted-ZLC filter — implemented behind it. The
// refactor is behavior-preserving: with the static controller (the
// default when Config.NewController is nil) every decision reproduces
// the pre-refactor arithmetic bit for bit, which the fixed-seed digest
// tests pin.

// Decision is one rate-control output: how many repair shares to owe a
// zone for one FEC group.
type Decision struct {
	// K is the group size the decision covers.
	K int
	// H is the number of repair shares to inject now, net of redundancy
	// already heard. H <= 0 means nothing is owed.
	H int
	// Pred is the predictor state behind the decision (the predicted
	// zone loss count), carried on telemetry events.
	Pred float64
}

// Controller sizes preemptive FEC injection per zone. One controller
// serves one agent; implementations need not be safe for concurrent
// use (the simulator is single-threaded per run).
//
// ObservePacket feeds the agent's own data-plane reception sequence —
// one call per original packet, in sequence order, lost = true when the
// packet was declared lost (gap, LDP expiry or high-water discovery)
// and false when it arrived. Burst-aware policies fit their loss model
// from this stream; the static policy ignores it.
//
// ObserveZLC absorbs one end-of-group zone loss count measurement (the
// §4 sample taken ZLCWaitRTTs after a group ends). Predict exposes the
// current predicted ZLC for a zone (0 before any sample), and Decide
// turns the prediction into a concrete injection size given the group
// size k and the repair shares already heard for the group.
type Controller interface {
	ObservePacket(lost bool)
	ObserveZLC(z scoping.ZoneID, sample float64)
	Predict(z scoping.ZoneID) float64
	Decide(z scoping.ZoneID, k, repairsHeard int) Decision
	// Name identifies the policy ("static", "adaptive") on reports.
	Name() string
}

// staticController is the paper's §4 predictor: per-zone EWMA over ZLC
// samples, injection sized by rounding the prediction, net of repairs
// already heard. It consumes no randomness and ignores the packet
// stream, so attaching it (or swapping it for the pre-refactor inline
// code) cannot perturb a seeded run.
type staticController struct {
	old, new float64
	pred     map[scoping.ZoneID]float64
}

// NewStaticController returns the paper's EWMA policy with the given
// filter weights (DefaultConfig: 0.75/0.25).
func NewStaticController(ewmaOld, ewmaNew float64) Controller {
	return &staticController{
		old:  ewmaOld,
		new:  ewmaNew,
		pred: make(map[scoping.ZoneID]float64),
	}
}

func (c *staticController) Name() string { return "static" }

func (c *staticController) ObservePacket(lost bool) {}

func (c *staticController) ObserveZLC(z scoping.ZoneID, sample float64) {
	c.pred[z] = c.old*c.pred[z] + c.new*sample
}

func (c *staticController) Predict(z scoping.ZoneID) float64 { return c.pred[z] }

func (c *staticController) Decide(z scoping.ZoneID, k, repairsHeard int) Decision {
	p := c.pred[z]
	return Decision{K: k, H: int(p+0.5) - repairsHeard, Pred: p}
}
