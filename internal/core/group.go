package core

import (
	"sharqfec/internal/eventq"
	"sharqfec/internal/fabric"
	"sharqfec/internal/fec"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/telemetry"
)

// group is per-FEC-group receiver/repairer state.
type group struct {
	id uint32
	k  int

	// shares maps share index → payload for every distinct share held.
	shares map[int][]byte
	// data holds the decoded original payloads once complete.
	data [][]byte
	// sl/bits back the seen/counted/lossed index bitsets, packed as
	// lanes in the agent's slab arena (see slab.go):
	//   seen     — which original data indices arrived as data packets;
	//   counted  — indices already counted into the LLC;
	//   lossed   — indices that ever emitted a loss_detected event.
	//     Unlike counted it is never cleared when the original shows up
	//     late, so session-end accounting can close every opened
	//     recovery span.
	sl   *groupSlab
	bits int32

	llc          int
	zlc          map[scoping.ZoneID]int
	maxShare     int // highest share index known used anywhere
	complete     bool
	inRepair     bool // repair phase entered (LDP over)
	repairsHeard int  // distinct repair shares received

	// request side
	reqTimer    fabric.Timer
	reqExp      int // the paper's i, initially 1
	scopeIdx    int // current NACK scope (index into the agent's chain)
	attempts    int // NACKs sent at the current scope
	outstanding int // repairs requested by zone peers, minus repairs heard

	// reply side (repairer)
	pending    map[scoping.ZoneID]int // speculative repairs owed per zone
	replyTimer fabric.Timer
	sendBusy   bool         // a repair burst is being paced out
	lastNACK   *packet.NACK // most recent request heard, for reply timing

	ldpTimer   fabric.Timer
	zlcSampled map[scoping.ZoneID]bool
	injected   map[scoping.ZoneID]bool
	firstSeen  eventq.Time
	doneAt     eventq.Time
	catchUp    bool // late-join recovery group (never counts as loss)
	dupNACKs   int  // NACKs heard that failed to raise the ZLC
}

func newGroup(id uint32, k int, sl *groupSlab) *group {
	return &group{
		id:         id,
		k:          k,
		shares:     make(map[int][]byte),
		sl:         sl,
		bits:       sl.alloc(k),
		zlc:        make(map[scoping.ZoneID]int),
		maxShare:   k - 1,
		reqExp:     1,
		pending:    make(map[scoping.ZoneID]int),
		zlcSampled: make(map[scoping.ZoneID]bool),
		injected:   make(map[scoping.ZoneID]bool),
	}
}

// Bitset accessors over the slab lanes; see the field doc above.
func (g *group) seen(i int) bool    { return g.sl.get(g.bits, laneSeen, i) }
func (g *group) markSeen(i int)     { g.sl.set(g.bits, laneSeen, i) }
func (g *group) counted(i int) bool { return g.sl.get(g.bits, laneCounted, i) }
func (g *group) markCounted(i int)  { g.sl.set(g.bits, laneCounted, i) }
func (g *group) uncount(i int)      { g.sl.clear(g.bits, laneCounted, i) }
func (g *group) lossed(i int) bool  { return g.sl.get(g.bits, laneLossed, i) }
func (g *group) markLossed(i int)   { g.sl.set(g.bits, laneLossed, i) }

// needed returns how many more distinct shares complete the group.
func (g *group) needed() int {
	n := g.k - len(g.shares)
	if n < 0 {
		return 0
	}
	return n
}

// handleData processes an original data packet.
func (a *Agent) handleData(now eventq.Time, p *packet.Data) {
	if a.isSource {
		return // routing artifact: the source ignores its own stream
	}
	a.Stats.DataReceived++
	a.updateIPT(now)
	if a.lateJoiner && a.joinSeq < 0 {
		a.observeStreamPosition(now, int64(p.Seq))
	}

	g := a.ensureGroup(p.Group)
	if g.firstSeen == 0 {
		g.firstSeen = now
		g.scopeIdx = a.nackScope()
		a.armLDPTimer(now, g, int(p.Index))
	}
	idx := int(p.Index)
	if !g.seen(idx) {
		g.markSeen(idx)
		if _, dup := g.shares[idx]; !dup && !g.complete {
			g.shares[idx] = p.Payload
		}
		if g.counted(idx) {
			// The packet was presumed lost (a peer's high-water mark
			// raced ahead of it) but was merely in flight: un-count.
			g.uncount(idx)
			g.llc--
		}
	} else {
		a.Stats.DupShares++
	}

	// Gap-based loss detection across the whole stream: every original
	// seq between the previous high-water mark and this packet that we
	// did not receive was dropped upstream.
	if int64(p.Seq) > a.maxSeq {
		for s := a.maxSeq + 1; s < int64(p.Seq); s++ {
			a.noteLoss(now, uint32(s))
		}
		// The arrival itself, fed after the gap it revealed so the
		// controller sees the stream in sequence order.
		a.ctrl.ObservePacket(false)
		a.maxSeq = int64(p.Seq)
		if a.sess.MaxSeq < p.Seq+1 {
			a.sess.MaxSeq = p.Seq + 1
		}
	}
	a.maybeComplete(now, g)
}

// updateIPT refines the inter-packet-arrival estimate (EWMA over
// consecutive data arrivals), used for LDP timers and repair spacing.
func (a *Agent) updateIPT(now eventq.Time) {
	if !a.iptInit {
		a.iptInit = true
		a.lastData = now
		return
	}
	delta := now.Sub(a.lastData).Seconds()
	a.lastData = now
	if delta <= 0 || delta > 10*a.cfg.InterPacket() {
		return // loss gap or idle period; not a cadence sample
	}
	a.ipt = 0.75*a.ipt + 0.25*delta
}

// noteLoss records the loss of original data seq s in its group's LLC
// and schedules a repair request if the LLC now exceeds the zone loss
// count (§4 LDP rules).
func (a *Agent) noteLoss(now eventq.Time, s uint32) {
	k := uint32(a.cfg.GroupK)
	gid := s / k
	idx := int(s % k)
	g := a.ensureGroup(gid)
	if g.firstSeen == 0 {
		g.firstSeen = now
		g.scopeIdx = a.nackScope()
		a.armLDPTimer(now, g, idx)
	}
	if g.seen(idx) || g.counted(idx) {
		return
	}
	g.markCounted(idx)
	g.markLossed(idx)
	g.llc++
	a.ctrl.ObservePacket(true)
	a.emit(now, telemetry.KindLossDetected, scoping.NoZone, int64(gid), int64(s), 0, 0)
	if g.complete {
		return
	}
	scope := a.scopeZone(g.scopeIdx)
	if g.llc > g.zlc[scope] {
		a.armRequestTimer(now, g)
	}
}

// armLDPTimer sets the loss-detection-phase timer: the estimated time by
// which the group's remaining packets should arrive, plus slack.
func (a *Agent) armLDPTimer(now eventq.Time, g *group, idxSeen int) {
	remaining := float64(g.k-1-idxSeen) + a.cfg.LDPSlackPackets
	if remaining < a.cfg.LDPSlackPackets {
		remaining = a.cfg.LDPSlackPackets
	}
	d := eventq.Duration(remaining * a.ipt)
	g.ldpTimer = a.net.Sched().After(d, func(fire eventq.Time) { a.ldpExpired(fire, g) })
}

// ldpExpired ends the loss-detection phase: any unseen original packets
// are counted as lost and the repair phase begins.
func (a *Agent) ldpExpired(now eventq.Time, g *group) {
	if a.stopped {
		return
	}
	// Receiver report (§7 extension): the fraction of original packets
	// that failed to arrive in this group feeds the member's published
	// reception quality, aggregated up the ZCR hierarchy.
	if !g.catchUp {
		base := int(g.id) * a.cfg.GroupK
		for idx := 0; idx < g.k && base+idx < a.cfg.NumPackets; idx++ {
			a.rrTotal++
			if !g.seen(idx) {
				a.rrLost++
			}
		}
		if a.rrTotal > 0 {
			a.sess.SetLocalLossReport(float64(a.rrLost) / float64(a.rrTotal))
		}
	}
	if g.complete {
		return
	}
	base := g.id * uint32(a.cfg.GroupK)
	for idx := 0; idx < g.k; idx++ {
		if int(base)+idx >= a.cfg.NumPackets {
			break
		}
		if !g.seen(idx) && !g.counted(idx) {
			g.markCounted(idx)
			g.markLossed(idx)
			g.llc++
			a.ctrl.ObservePacket(true)
			a.emit(now, telemetry.KindLossDetected, scoping.NoZone, int64(g.id), int64(base)+int64(idx), 0, 0)
		}
	}
	g.inRepair = true
	if g.needed() > 0 {
		scope := a.scopeZone(g.scopeIdx)
		if g.llc > g.zlc[scope] || g.outstanding < g.needed() {
			a.armRequestTimer(now, g)
		}
	}
}

// armRequestTimer starts (or restarts) the NACK request timer with the
// paper's window: uniform on 2^i·[C1·d, (C1+C2)·d], d = dist to source.
func (a *Agent) armRequestTimer(now eventq.Time, g *group) {
	if g.complete {
		return
	}
	if g.reqTimer != nil && g.reqTimer.Active() {
		return
	}
	if g.reqExp > 6 {
		g.reqExp = 6 // cap the back-off so retries stay timely
	}
	d := a.distToSource()
	c1, c2 := a.timerC1C2()
	factor := float64(uint(1) << uint(g.reqExp))
	lo := factor * c1 * d
	hi := factor * (c1 + c2) * d
	delay := eventq.Duration(a.rng.Uniform(lo, hi))
	g.reqTimer = a.net.Sched().After(delay, func(fire eventq.Time) { a.requestTimerFired(fire, g) })
	a.emit(now, telemetry.KindNACKScheduled, a.scopeZone(g.scopeIdx), int64(g.id), int64(g.llc), int64(g.reqExp), delay.Seconds())
}

// requestTimerFired sends a NACK if the group still needs repairs that
// nobody else has requested, escalating scope after EscalateAfter
// attempts per zone (§4 RP rules).
func (a *Agent) requestTimerFired(now eventq.Time, g *group) {
	if a.stopped {
		return
	}
	if g.complete {
		return
	}
	needed := g.needed()
	if !g.inRepair {
		// During the loss-detection phase later group packets are
		// still in flight: request only for detected losses, and only
		// while our LLC exceeds the zone's (§4 LDP rules).
		scope := a.scopeZone(g.scopeIdx)
		if g.llc <= g.zlc[scope] {
			return
		}
		if n := g.llc - g.repairsHeard; n < needed {
			needed = n
		}
	}
	if needed <= 0 {
		return
	}
	// Suppression at fire time: enough repairs are already on order.
	// The in-flight estimate decays each suppressed round so that
	// repairs lost on the way to us are eventually re-requested.
	// The decay alone paces retries (adding back-off here compounds
	// into minutes-long stalls for receivers behind very lossy tails).
	if g.outstanding >= needed {
		a.Stats.NACKsSuppressed++
		a.emit(now, telemetry.KindNACKSuppressed, a.scopeZone(g.scopeIdx), int64(g.id), 1, int64(g.reqExp), 0)
		g.outstanding /= 2
		a.armRequestTimer(now, g)
		return
	}
	if g.attempts >= a.cfg.EscalateAfter && g.scopeIdx < len(a.chain)-1 {
		g.scopeIdx++
		g.attempts = 0
		a.Stats.ScopeEscalations++
		a.emit(now, telemetry.KindScopeEscalated, a.scopeZone(g.scopeIdx), int64(g.id), 0, 0, 0)
	}
	scope := a.scopeZone(g.scopeIdx)
	llc := g.llc
	if llc > 255 {
		llc = 255
	}
	nack := &packet.NACK{
		Origin:    a.node,
		Group:     g.id,
		LLC:       uint8(llc),
		Needed:    uint8(min(needed, 255)),
		MaxSeq:    uint32(a.maxSeq + 1), // one past the high-water mark
		Zone:      int16(scope),
		Ancestors: a.sess.AncestorList(),
	}
	a.net.Multicast(a.node, scope, nack)
	a.Stats.NACKsSent++
	a.emit(now, telemetry.KindNACKSent, scope, int64(g.id), int64(g.llc), int64(needed), 0)
	g.attempts++
	if g.zlc[scope] < g.llc {
		g.zlc[scope] = g.llc // our own NACK sets the new ZLC
	}
	g.outstanding = needed
	// Re-arm at the current back-off so lost repairs are re-requested;
	// i itself only grows on suppression events (§4 LDP rules).
	a.armRequestTimer(now, g)
}

// handleNACK processes a repair request heard at scope zone(p.Zone).
func (a *Agent) handleNACK(now eventq.Time, p *packet.NACK) {
	scope := scoping.ZoneID(p.Zone)
	g := a.ensureGroup(p.Group)

	if a.lateJoiner && a.joinSeq < 0 {
		a.observeStreamPosition(now, int64(p.MaxSeq)-1)
	}
	// Tail-loss discovery from the NACK's high-water mark (§4: "checks
	// to see if the NACK's last received packet identifier causes the
	// detection of any further lost packets").
	if hw := int64(p.MaxSeq) - 1; hw > a.maxSeq && !a.isSource {
		for s := a.maxSeq + 1; s <= hw; s++ {
			a.noteLoss(now, uint32(s))
		}
		a.maxSeq = hw
	}

	// ZLC bookkeeping and NACK suppression.
	prevZLC := g.zlc[scope]
	increased := false
	if int(p.LLC) > prevZLC {
		g.zlc[scope] = int(p.LLC)
		increased = true
	}
	if !g.complete {
		if g.llc <= g.zlc[scope] && g.reqTimer != nil && g.reqTimer.Active() {
			// Their request covers ours; suppress this round (the
			// timer re-arms with backoff so lost repairs still get
			// re-requested).
			g.reqTimer.Stop()
			a.Stats.NACKsSuppressed++
			a.emit(now, telemetry.KindNACKSuppressed, scope, int64(g.id), 0, int64(g.reqExp), 0)
			g.reqExp++
			a.armRequestTimer(now, g)
		} else if !increased {
			// §4: a NACK that does not increase the ZLC backs the
			// request timer off.
			g.reqExp++
		}
	}
	if !increased {
		// Duplication evidence for timer adaptation, observed whether
		// or not this hearer still needs the group.
		g.dupNACKs++
	}
	if int(p.Needed) > g.outstanding {
		g.outstanding = int(p.Needed)
	}

	// Speculative reply queue for repairers (§4): remember how many
	// repairs this zone needs and schedule a reply. The sender and the
	// scope's ZCR serve immediately (their repairs are authoritative
	// for the zone); other repairers wait out a suppression timer.
	if a.canRepair() && a.memberOf(scope) {
		if int(p.Needed) > g.pending[scope] {
			g.pending[scope] = int(p.Needed)
		}
		g.lastNACK = p
		if g.complete {
			if a.isSource || a.isZCR(scope) {
				a.serveQueuedRepairs(now, g)
			} else {
				a.armReplyTimer(now, g, p)
			}
		}
		// Incomplete repairers serve the queue once they complete.
	}
}

// memberOf reports whether this node belongs to zone z.
func (a *Agent) memberOf(z scoping.ZoneID) bool {
	if z == a.root {
		return true
	}
	return a.net.Hierarchy().Contains(z, a.node)
}

// handleRepair processes an FEC repair share.
func (a *Agent) handleRepair(now eventq.Time, p *packet.Repair) {
	a.Stats.RepairsReceived++
	g := a.ensureGroup(p.Group)
	scope := scoping.ZoneID(p.Zone)

	// The announced burst end ("what will be the new highest packet
	// identifier", §4) both moves the share high-water mark and credits
	// the entire in-flight burst against request/reply queues at once —
	// the paper's defence against duplicate repairs from racing
	// repairers.
	oldMax := g.maxShare
	if int(p.Index) > g.maxShare {
		g.maxShare = int(p.Index)
	}
	if int(p.NewMaxSeq) > g.maxShare {
		g.maxShare = int(p.NewMaxSeq)
	}
	credit := g.maxShare - oldMax
	if credit < 1 {
		credit = 1
	}

	if !g.complete {
		if _, dup := g.shares[int(p.Index)]; dup {
			a.Stats.DupShares++
		} else {
			g.shares[int(p.Index)] = p.Payload
			if int(p.Index) >= g.k {
				g.repairsHeard++
			}
		}
	} else if int(p.Index) >= g.k {
		g.repairsHeard++
	}

	// A repair resets the request backoff (§4) and counts against both
	// what we asked for and what we owe (repairs from larger zones are
	// heard by, and credit, the smaller ones).
	g.reqExp = 1
	g.outstanding -= credit
	if g.outstanding < 0 {
		g.outstanding = 0
	}
	for _, z := range a.chain {
		if g.pending[z] > 0 && a.net.Hierarchy().IsAncestor(scope, z) {
			g.pending[z] -= credit
			if g.pending[z] < 0 {
				g.pending[z] = 0
			}
		}
	}
	// Cancel the reply timer only once the whole repair is covered.
	if g.replyTimer != nil && g.replyTimer.Active() && a.totalPending(g) == 0 {
		g.replyTimer.Stop()
		a.emit(now, telemetry.KindRepairSuppressed, scope, int64(g.id), 0, 0, 0)
	}
	a.maybeComplete(now, g)
}

func (a *Agent) totalPending(g *group) int {
	t := 0
	for _, n := range g.pending {
		t += n
	}
	return t
}

// maybeComplete reconstructs the group once K distinct shares are held,
// fires the completion callback, and turns the node into a repairer.
func (a *Agent) maybeComplete(now eventq.Time, g *group) {
	if g.complete || len(g.shares) < g.k {
		return
	}
	shares := make([]fec.Share, 0, len(g.shares))
	for idx, payload := range g.shares {
		shares = append(shares, fec.Share{Index: idx, Data: payload})
	}
	data, err := a.codec.Decode(shares)
	if err != nil {
		// Cannot happen with k distinct valid shares; treat as still
		// incomplete so the protocol keeps requesting.
		return
	}
	g.complete = true
	g.doneAt = now
	g.data = data
	g.shares = nil // release share buffers; data holds the originals
	a.Stats.GroupsCompleted++
	lat := 0.0
	if g.firstSeen > 0 {
		lat = now.Sub(g.firstSeen).Seconds()
	}
	a.emit(now, telemetry.KindGroupDecoded, scoping.NoZone, int64(g.id), int64(g.repairsHeard), int64(g.llc), lat)
	if g.reqTimer != nil {
		g.reqTimer.Stop()
	}
	// The LDP timer deliberately keeps running: its expiry also samples
	// the group's arrival quality for the receiver report.
	if a.OnComplete != nil {
		a.OnComplete(now, g.id, data)
	}
	if g.catchUp {
		a.catchUpDone(now, g)
	}
	a.scheduleTimerAdaptation(g)
	a.becomeRepairer(now, g)
	// Ordinary receivers retire the payloads after a grace period;
	// the source and ZCRs stay able to repair indefinitely.
	if a.cfg.RetainData > 0 && !a.isSource {
		a.net.Sched().After(eventq.Duration(a.cfg.RetainData), func(eventq.Time) {
			if !a.anyZCRDuty() {
				g.data = nil
			}
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
