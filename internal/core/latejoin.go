package core

import (
	"sharqfec/internal/eventq"
)

// Late-join recovery (the extension the paper's §7 defers to the
// author's thesis): a receiver that joins mid-stream recovers the groups
// it missed *sequentially* through zone-scoped requests, so one member's
// catch-up is served by its zone's ZCR (which retains group data) rather
// than flooding wider scopes. Missed groups are explicitly not treated
// as network losses: they never contribute to LLC/ZLC, keeping the loss
// predictor honest.

// JoinLate starts session management for a receiver joining mid-stream.
// The agent watches for the stream's current position (first data packet
// or session high-water mark), then recovers every earlier group through
// the catch-up queue, CatchUpWindow groups at a time.
func (a *Agent) JoinLate() {
	if a.isSource {
		panic("core: JoinLate on the source")
	}
	a.joined = true
	a.lateJoiner = true
	a.joinSeq = -1
	a.sess.Start(false)
}

// IsCatchingUp reports whether late-join recovery is still running.
func (a *Agent) IsCatchingUp() bool {
	return a.lateJoiner && (a.joinSeq < 0 || len(a.catchUpQueue) > 0 || len(a.catchUpActive) > 0)
}

// observeStreamPosition runs on the first evidence of the stream's
// high-water mark hw (inclusive); it enqueues all fully-missed groups
// and pins maxSeq so ordinary gap detection does not flood.
func (a *Agent) observeStreamPosition(now eventq.Time, hw int64) {
	if !a.lateJoiner || a.joinSeq >= 0 || hw < 0 {
		return
	}
	k := int64(a.cfg.GroupK)
	// Join mid-group: the current group is handled by normal loss
	// detection; everything before it goes through catch-up.
	currentGroup := hw / k
	a.joinSeq = currentGroup * k
	a.maxSeq = a.joinSeq - 1
	for gid := int64(0); gid < currentGroup; gid++ {
		a.catchUpQueue = append(a.catchUpQueue, uint32(gid))
	}
	a.pumpCatchUp(now)
}

// pumpCatchUp starts recovery of queued groups up to the configured
// window.
func (a *Agent) pumpCatchUp(now eventq.Time) {
	if a.stopped {
		return
	}
	window := a.cfg.CatchUpWindow
	if window <= 0 {
		window = 2
	}
	for len(a.catchUpActive) < window && len(a.catchUpQueue) > 0 {
		gid := a.catchUpQueue[0]
		a.catchUpQueue = a.catchUpQueue[1:]
		g := a.ensureGroup(gid)
		if g.complete {
			continue
		}
		a.catchUpActive[gid] = true
		if g.firstSeen == 0 {
			g.firstSeen = now
			g.scopeIdx = a.nackScope()
		}
		g.inRepair = true
		g.catchUp = true
		g.reqExp = 0 // dedicated recovery: no initial back-off factor
		// Count the whole group as needing recovery, but keep it out
		// of the loss counters (it was never "lost" on a link).
		a.armRequestTimer(now, g)
	}
}

// catchUpDone marks a catch-up group complete and pulls the next one.
func (a *Agent) catchUpDone(now eventq.Time, g *group) {
	if !a.catchUpActive[g.id] {
		return
	}
	delete(a.catchUpActive, g.id)
	a.pumpCatchUp(now)
}
