// Package core implements the SHARQFEC protocol (paper §4): two-phase
// group delivery (Loss Detection Phase, Repair Phase), LLC/ZLC loss
// accounting, SRM-style NACK and reply suppression timers with the
// paper's modifications, speculative repair queues, preemptive FEC
// injection by Zone Closest Receivers driven by an EWMA loss predictor,
// and scope escalation for unserved repairs.
//
// The feature flags in Options turn individual mechanisms off to produce
// the ablated protocols the paper evaluates: SHARQFEC(ns), SHARQFEC(ni),
// SHARQFEC(so) and their combinations — SHARQFEC(ns,ni,so) being the
// ECSRM-like baseline of Figures 14–15.
package core

import (
	"sharqfec/internal/session"
	"sharqfec/internal/telemetry"
	"sharqfec/internal/topology"
)

// Options are the ablation switches of §6.2.
type Options struct {
	// Scoping enables the administrative zone hierarchy. When false
	// ("ns"), every NACK and repair uses the global scope and only the
	// source injects preemptive FEC.
	Scoping bool
	// Injection enables preemptive FEC: the sender appends predicted
	// redundancy to each group, and ZCRs inject predicted repairs into
	// their zones without waiting for NACKs. When false ("ni"), all
	// repairs are NACK-driven.
	Injection bool
	// SenderOnly restricts repair generation to the source ("so");
	// receivers never become repairers.
	SenderOnly bool
	// AdaptiveTimers enables the §7 future-work extension: request
	// timer constants adapt to observed duplicate NACKs (see
	// adaptive.go). Off by default — the paper's simulations use fixed
	// timers.
	AdaptiveTimers bool
}

// Full returns the options for the complete protocol.
func Full() Options { return Options{Scoping: true, Injection: true} }

// ECSRM returns the SHARQFEC(ns,ni,so) ablation: hybrid ARQ/FEC with no
// scoping, no preemptive injection, sender-only repairs — the paper's
// stand-in for Gemmell's ECSRM with RTT-based timer windows.
func ECSRM() Options { return Options{SenderOnly: true} }

// Config carries all protocol constants. DefaultConfig reproduces the
// values the paper states for its simulations.
type Config struct {
	// Source is the data sender's node ID.
	Source topology.NodeID
	// GroupK is the number of data packets per FEC group (paper: 16).
	GroupK int
	// PayloadSize is the application payload per data packet, sized so
	// the wire packet is the paper's 1000 bytes.
	PayloadSize int
	// Rate is the source's constant bit rate in bits/s (paper: 800 kbit/s).
	Rate float64
	// NumPackets is the number of original data packets (paper: 1024).
	NumPackets int
	// C1, C2 shape the request timer: delay ~ 2^i·U[C1·d, (C1+C2)·d]
	// with d the estimated one-way distance to the source (paper: 2, 2).
	C1, C2 float64
	// D1, D2 shape the reply timer: delay ~ U[D1·d, (D1+D2)·d] with d
	// the distance to the NACK sender (paper: 1, 1). No backoff.
	D1, D2 float64
	// EWMAOld/EWMANew weight the predicted-ZLC filter
	// (paper: 0.75 / 0.25).
	EWMAOld, EWMANew float64
	// ZLCWaitRTTs is how many RTTs (to the most distant zone member) a
	// ZCR waits after a group ends before sampling the true ZLC
	// (paper: 2.5).
	ZLCWaitRTTs float64
	// EscalateAfter is how many NACK attempts are made at each scope
	// before widening to the next-largest zone (paper: 2).
	EscalateAfter int
	// RepairSpacing is the interval between successive repair packets
	// from one repairer, as a fraction of the data inter-packet
	// interval (paper: 0.5).
	RepairSpacing float64
	// LDPSlackPackets pads the loss-detection-phase timer by this many
	// inter-packet intervals beyond the expected last arrival.
	LDPSlackPackets float64
	// RetainData is how long (seconds) an ordinary receiver keeps a
	// completed group's payloads available for repairing peers. The
	// source and ZCRs retain indefinitely.
	RetainData float64
	// CatchUpWindow bounds how many missed groups a late joiner
	// recovers concurrently, keeping its catch-up traffic paced.
	CatchUpWindow int

	Options Options
	Session session.Config

	// Telemetry, when non-nil, receives the agent's protocol events
	// (NACK/repair lifecycle, losses, decodes, injections). nil — the
	// default — keeps every emission site a single nil check.
	Telemetry *telemetry.Bus

	// NewController, when non-nil, builds the per-agent rate controller
	// sizing preemptive FEC injection (one controller per agent; the
	// node identifies it on reports). nil — the default — uses the
	// paper's static EWMA predictor, so the zero value stays
	// byte-identical to the pre-Controller protocol per seed.
	NewController func(node topology.NodeID) Controller
}

// DefaultConfig returns the paper's §6.2 parameters with the full
// protocol enabled.
func DefaultConfig() Config {
	return Config{
		Source:          0,
		GroupK:          16,
		PayloadSize:     1000 - 17, // data wire header is 17 bytes
		Rate:            800e3,
		NumPackets:      1024,
		C1:              2,
		C2:              2,
		D1:              1,
		D2:              1,
		EWMAOld:         0.75,
		EWMANew:         0.25,
		ZLCWaitRTTs:     2.5,
		EscalateAfter:   2,
		RepairSpacing:   0.5,
		LDPSlackPackets: 2,
		RetainData:      5,
		CatchUpWindow:   2,
		Options:         Full(),
		Session:         session.DefaultConfig(),
	}
}

// InterPacket returns the source's data inter-packet interval in seconds
// (wire size × 8 / rate) — 10 ms for the paper's parameters.
func (c *Config) InterPacket() float64 {
	wire := float64(c.PayloadSize + 17)
	return wire * 8 / c.Rate
}

// NumGroups returns the number of FEC groups the stream divides into.
func (c *Config) NumGroups() int {
	return (c.NumPackets + c.GroupK - 1) / c.GroupK
}
