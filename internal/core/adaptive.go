package core

import "sharqfec/internal/eventq"

// Adaptive suppression timers — the paper's primary future-work item
// (§7): "fixed timers are incapable of coping with all network
// topologies, and therefore inclusion of some mechanism for adjusting
// the timer constants can lead to enhanced performance. This task is
// complicated by the fact that SHARQFEC include[s] mechanisms that
// preemptively inject repairs."
//
// The adaptation follows the SRM paper's style, with the complication §7
// points out handled by measuring only NACK duplication (a duplicate
// NACK is one that failed to increase the ZLC): preemptively injected
// repairs suppress NACKs entirely, so they never register as duplicates
// and do not drag the window wider. Per completed group, each agent
// folds the group's duplicate count into an EWMA and nudges C1/C2:
// sustained duplicates widen the request window (more suppression),
// clean groups shrink it (faster recovery), within fixed bounds.

// scheduleTimerAdaptation samples a group's duplicate count once the
// stragglers have had time to arrive (2.5 RTTs past completion, like the
// ZLC measurement of §4) and folds it into the adaptation filter.
func (a *Agent) scheduleTimerAdaptation(g *group) {
	if !a.cfg.Options.AdaptiveTimers || a.isSource || g.llc == 0 {
		return
	}
	wait := eventq.Duration(a.cfg.ZLCWaitRTTs * a.sess.MostDistantRTT(a.chain[len(a.chain)-1]))
	a.net.Sched().After(wait, func(eventq.Time) { a.adaptTimers(g) })
}

// adaptTimers folds one loss event's duplicate count into the EWMA and
// nudges the constants.
func (a *Agent) adaptTimers(g *group) {
	if a.stopped {
		return
	}
	a.aveDupNACK = 0.75*a.aveDupNACK + 0.25*float64(g.dupNACKs)
	switch {
	case a.aveDupNACK > 1:
		// Step proportional to the excess, so heavy duplication opens
		// the window quickly while mild duplication nudges it.
		step := a.aveDupNACK - 1
		if step > 4 {
			step = 4
		}
		a.c1 += 0.1 * step
		a.c2 += 0.5 * step
	case a.aveDupNACK < 0.25:
		a.c1 -= 0.05
		a.c2 -= 0.1
	}
	a.c1 = clampF(a.c1, 0.5, 8)
	a.c2 = clampF(a.c2, 1, 16)
}

// timerC1C2 returns the request-timer constants currently in effect.
func (a *Agent) timerC1C2() (float64, float64) {
	if a.cfg.Options.AdaptiveTimers {
		return a.c1, a.c2
	}
	return a.cfg.C1, a.cfg.C2
}

// TimerConstants reports the request-timer constants in effect (equal to
// the configured C1/C2 unless adaptation has moved them).
func (a *Agent) TimerConstants() (c1, c2 float64) { return a.timerC1C2() }

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
