package core

// Unit-level tests for internal protocol mechanics, complementing the
// scenario tests in core_test.go.

import (
	"math"
	"testing"

	"sharqfec/internal/eventq"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/topology"
)

// quietWorld builds a world without starting anything, for poking at
// agent internals directly.
func quietWorld(t *testing.T, spec *topology.Spec, cfg Config, seed uint64) *world {
	t.Helper()
	return newWorld(t, spec, cfg, seed)
}

func TestIPTEstimatorConverges(t *testing.T) {
	spec := topology.Chain(2, 10e6, 0.010, 0)
	cfg := smallCfg()
	w := quietWorld(t, spec, cfg, 60)
	a := w.agents[1]
	a.joined = true
	// Feed arrivals at a 7 ms cadence (the advertised rate says 10 ms).
	now := eventq.Time(0)
	for i := 0; i < 100; i++ {
		a.updateIPT(now)
		now = now.Add(0.007)
	}
	if math.Abs(a.ipt-0.007) > 0.0005 {
		t.Fatalf("ipt = %v, want ≈0.007", a.ipt)
	}
}

func TestIPTIgnoresGapsAndIdle(t *testing.T) {
	spec := topology.Chain(2, 10e6, 0.010, 0)
	cfg := smallCfg()
	w := quietWorld(t, spec, cfg, 61)
	a := w.agents[1]
	a.updateIPT(1.000)
	a.updateIPT(1.010)
	before := a.ipt
	a.updateIPT(3.000) // 2 s gap: loss or idle, not cadence
	if a.ipt != before {
		t.Fatalf("idle gap changed ipt: %v -> %v", before, a.ipt)
	}
}

func TestBurstCreditClearsQueues(t *testing.T) {
	spec := topology.Chain(3, 10e6, 0.010, 0)
	cfg := smallCfg()
	w := quietWorld(t, spec, cfg, 62)
	a := w.agents[2]
	a.joined = true
	g := a.ensureGroup(0)
	g.outstanding = 5
	g.pending[a.root] = 5
	// One repair announcing a burst through share index 20 credits the
	// whole burst (16..20 = 5 shares) at once.
	a.handleRepair(1.0, &packet.Repair{
		Origin: 0, Group: 0, Index: 16, GroupK: 16,
		NewMaxSeq: 20, Zone: int16(a.root), Payload: []byte{1},
	})
	if g.outstanding != 0 {
		t.Fatalf("outstanding = %d after burst announcement, want 0", g.outstanding)
	}
	if g.pending[a.root] != 0 {
		t.Fatalf("pending = %d after burst announcement, want 0", g.pending[a.root])
	}
	if g.maxShare != 20 {
		t.Fatalf("maxShare = %d, want 20", g.maxShare)
	}
}

func TestRepairWithoutAnnouncementCreditsOne(t *testing.T) {
	spec := topology.Chain(3, 10e6, 0.010, 0)
	cfg := smallCfg()
	w := quietWorld(t, spec, cfg, 63)
	a := w.agents[2]
	a.joined = true
	g := a.ensureGroup(0)
	g.outstanding = 3
	a.handleRepair(1.0, &packet.Repair{
		Origin: 0, Group: 0, Index: 16, GroupK: 16,
		NewMaxSeq: 16, Zone: int16(a.root), Payload: []byte{1},
	})
	if g.outstanding != 2 {
		t.Fatalf("outstanding = %d, want 2", g.outstanding)
	}
}

func TestRepairResetsBackoffExponent(t *testing.T) {
	spec := topology.Chain(3, 10e6, 0.010, 0)
	cfg := smallCfg()
	w := quietWorld(t, spec, cfg, 64)
	a := w.agents[2]
	a.joined = true
	g := a.ensureGroup(0)
	g.reqExp = 5
	a.handleRepair(1.0, &packet.Repair{
		Origin: 0, Group: 0, Index: 16, GroupK: 16, NewMaxSeq: 16,
		Zone: int16(a.root), Payload: []byte{1},
	})
	if g.reqExp != 1 {
		t.Fatalf("reqExp = %d after repair, want 1 (§4)", g.reqExp)
	}
}

func TestNACKUpdatesZLCAndBackoff(t *testing.T) {
	spec := topology.Chain(3, 10e6, 0.010, 0)
	cfg := smallCfg()
	w := quietWorld(t, spec, cfg, 65)
	a := w.agents[2]
	a.joined = true
	g := a.ensureGroup(0)
	scope := a.root
	// First NACK raises the ZLC.
	a.handleNACK(1.0, &packet.NACK{Origin: 1, Group: 0, LLC: 4, Needed: 4, MaxSeq: 0, Zone: int16(scope)})
	if g.zlc[scope] != 4 {
		t.Fatalf("zlc = %d, want 4", g.zlc[scope])
	}
	// A second NACK with a lower LLC does not increase the ZLC and
	// therefore backs the request exponent off (§4 LDP rules).
	before := g.reqExp
	a.handleNACK(1.1, &packet.NACK{Origin: 1, Group: 0, LLC: 2, Needed: 2, MaxSeq: 0, Zone: int16(scope)})
	if g.zlc[scope] != 4 {
		t.Fatalf("zlc dropped to %d", g.zlc[scope])
	}
	if g.reqExp != before+1 {
		t.Fatalf("reqExp = %d, want %d", g.reqExp, before+1)
	}
}

func TestPredictedZLCFilter(t *testing.T) {
	// The 0.75/0.25 EWMA from §4, applied via scheduleZLCSample.
	spec := topology.Chain(2, 10e6, 0.010, 0)
	cfg := smallCfg()
	w := quietWorld(t, spec, cfg, 66)
	a := w.agents[0] // the source maintains predZLC for the root
	a.joined = true
	g := a.ensureGroup(0)
	g.zlc[a.root] = 4
	a.scheduleZLCSample(0, g, a.root)
	w.net.Q.Run()
	if math.Abs(a.PredictedZLC(a.root)-1.0) > 1e-9 { // 0.75·0 + 0.25·4
		t.Fatalf("predZLC = %v, want 1.0", a.PredictedZLC(a.root))
	}
	g2 := a.ensureGroup(1)
	g2.zlc[a.root] = 4
	a.scheduleZLCSample(0, g2, a.root)
	w.net.Q.Run()
	if math.Abs(a.PredictedZLC(a.root)-1.75) > 1e-9 { // 0.75·1 + 0.25·4
		t.Fatalf("predZLC = %v, want 1.75", a.PredictedZLC(a.root))
	}
}

func TestZLCSampleUsesOwnLLCWhenNoNACKs(t *testing.T) {
	spec := topology.Chain(2, 10e6, 0.010, 0)
	cfg := smallCfg()
	w := quietWorld(t, spec, cfg, 67)
	a := w.agents[0]
	g := a.ensureGroup(0)
	g.llc = 2 // no NACKs heard: the agent's own LLC stands in (§4)
	a.scheduleZLCSample(0, g, a.root)
	w.net.Q.Run()
	if math.Abs(a.PredictedZLC(a.root)-0.5) > 1e-9 {
		t.Fatalf("predZLC = %v, want 0.5", a.PredictedZLC(a.root))
	}
}

func TestNackScopeSkipsOwnZones(t *testing.T) {
	// After elections, a leaf-zone ZCR's initial NACK scope must be the
	// parent zone (its own zone is all downstream of it).
	spec := topology.Figure10(topology.Figure10Params{})
	cfg := DefaultConfig()
	cfg.NumPackets = 16
	w := quietWorld(t, spec, cfg, 68)
	w.net.Q.At(1, func(eventq.Time) {
		for _, ag := range w.agents {
			ag.Join()
		}
	})
	w.net.Q.RunUntil(20) // elections settle; no data sent
	// Node 8: leaf-zone ZCR → first NACK scope is the intermediate zone.
	a8 := w.agents[8]
	if got := a8.scopeZone(a8.nackScope()); w.net.H.Level(got) != 1 {
		t.Fatalf("leaf ZCR initial scope level = %d, want 1", w.net.H.Level(got))
	}
	// Node 9 (a grandchild): ordinary member → leaf scope.
	a9 := w.agents[9]
	if got := a9.scopeZone(a9.nackScope()); w.net.H.Level(got) != 2 {
		t.Fatalf("grandchild initial scope level = %d, want 2", w.net.H.Level(got))
	}
	// Node 1 (mesh, intermediate ZCR): root scope.
	a1 := w.agents[1]
	if got := a1.scopeZone(a1.nackScope()); got != w.net.H.Root() {
		t.Fatalf("mesh ZCR initial scope = %v, want root", got)
	}
}

func TestGroupNeededClamps(t *testing.T) {
	g := newGroup(0, 4, &groupSlab{})
	if g.needed() != 4 {
		t.Fatalf("needed = %d", g.needed())
	}
	for i := 0; i < 6; i++ {
		g.shares[i] = []byte{1}
	}
	if g.needed() != 0 {
		t.Fatalf("needed = %d with surplus shares", g.needed())
	}
}

func TestRepairForUnknownGroupCreatesState(t *testing.T) {
	spec := topology.Chain(2, 10e6, 0.010, 0)
	cfg := smallCfg()
	w := quietWorld(t, spec, cfg, 69)
	a := w.agents[1]
	a.joined = true
	a.handleRepair(1.0, &packet.Repair{
		Origin: 0, Group: 99, Index: 17, GroupK: 16, NewMaxSeq: 17,
		Zone: int16(a.root), Payload: []byte{1, 2},
	})
	g := a.groups[99]
	if g == nil || len(g.shares) != 1 {
		t.Fatal("repair for unknown group not recorded")
	}
}

func TestMemberOfRoot(t *testing.T) {
	spec := topology.Figure10(topology.Figure10Params{})
	cfg := DefaultConfig()
	w := quietWorld(t, spec, cfg, 70)
	for _, ag := range w.agents {
		if !ag.memberOf(ag.root) {
			t.Fatalf("node %d not a member of the root zone", ag.Node())
		}
	}
	if w.agents[0].memberOf(scoping.ZoneID(2)) {
		t.Fatal("source claims membership of a leaf zone")
	}
}

func TestRawLossFractionEmpty(t *testing.T) {
	spec := topology.Chain(2, 10e6, 0.010, 0)
	cfg := smallCfg()
	w := quietWorld(t, spec, cfg, 71)
	if w.agents[1].RawLossFraction() != 0 {
		t.Fatal("loss fraction nonzero before any groups")
	}
}
