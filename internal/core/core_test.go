package core

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"

	"sharqfec/internal/analysis"
	"sharqfec/internal/eventq"
	"sharqfec/internal/netsim"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/simrand"
	"sharqfec/internal/topology"
)

// world wires a full SHARQFEC session over a topology spec.
type world struct {
	spec   *topology.Spec
	net    *netsim.Network
	agents map[topology.NodeID]*Agent
	// completed[node][group] holds the reconstructed payloads.
	completed map[topology.NodeID]map[uint32][][]byte
}

func newWorld(t *testing.T, spec *topology.Spec, cfg Config, seed uint64) *world {
	t.Helper()
	h, err := scoping.Build(spec.Zones)
	if err != nil {
		t.Fatal(err)
	}
	var q eventq.Queue
	src := simrand.New(seed)
	n := netsim.New(&q, spec.Graph, h, src)
	w := &world{
		spec:      spec,
		net:       n,
		agents:    map[topology.NodeID]*Agent{},
		completed: map[topology.NodeID]map[uint32][][]byte{},
	}
	cfg.Source = spec.Source
	for _, m := range spec.Members() {
		ag, err := New(m, n, cfg, src)
		if err != nil {
			t.Fatal(err)
		}
		node := m
		w.completed[node] = map[uint32][][]byte{}
		ag.OnComplete = func(_ eventq.Time, gid uint32, data [][]byte) {
			w.completed[node][gid] = data
		}
		w.agents[m] = ag
	}
	return w
}

// run joins everyone at t=1, starts the source at t=6 (the paper's
// schedule) and runs until `until`.
func (w *world) run(until float64) {
	w.net.Q.At(1, func(eventq.Time) {
		for _, ag := range w.agents {
			ag.Join()
		}
	})
	w.net.Q.At(6, func(eventq.Time) { w.agents[w.spec.Source].StartSource() })
	w.net.Q.RunUntil(eventq.Time(until))
}

// smallCfg shrinks the stream for fast unit tests.
func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.NumPackets = 64 // 4 groups of 16
	return cfg
}

// verifyAll checks that every receiver completed every group with
// payloads identical to what the source sent.
func (w *world) verifyAll(t *testing.T, cfg Config) {
	t.Helper()
	src := w.agents[w.spec.Source]
	groups := cfg.NumGroups()
	for _, m := range w.spec.Receivers {
		got := w.completed[m]
		if len(got) != groups {
			t.Fatalf("node %d completed %d/%d groups", m, len(got), groups)
		}
		for gid := uint32(0); gid < uint32(groups); gid++ {
			want := src.sendData[gid]
			data := got[gid]
			if len(data) != len(want) {
				t.Fatalf("node %d group %d: %d shares, want %d", m, gid, len(data), len(want))
			}
			for i := range want {
				if !bytes.Equal(data[i], want[i]) {
					t.Fatalf("node %d group %d share %d corrupted", m, gid, i)
				}
			}
		}
	}
}

func totalStats(w *world) (nacks, repairs, injected int) {
	for _, ag := range w.agents {
		nacks += ag.Stats.NACKsSent
		repairs += ag.Stats.RepairsSent
		injected += ag.Stats.RepairsInjected
	}
	return
}

func TestLosslessDeliveryNoNACKs(t *testing.T) {
	spec := topology.BalancedTree([]int{2, 2}, 10e6, 0.010, 0)
	cfg := smallCfg()
	w := newWorld(t, spec, cfg, 1)
	w.run(30)
	w.verifyAll(t, cfg)
	nacks, _, _ := totalStats(w)
	if nacks != 0 {
		t.Fatalf("lossless run produced %d NACKs", nacks)
	}
}

func TestLossyChainRecovers(t *testing.T) {
	spec := topology.Chain(4, 10e6, 0.010, 0.10)
	cfg := smallCfg()
	w := newWorld(t, spec, cfg, 2)
	w.run(60)
	w.verifyAll(t, cfg)
	nacks, repairs, _ := totalStats(w)
	if repairs == 0 {
		t.Fatal("lossy run sent no repairs")
	}
	t.Logf("chain: nacks=%d repairs=%d", nacks, repairs)
}

func TestECSRMVariantRecovers(t *testing.T) {
	spec := topology.Chain(4, 10e6, 0.010, 0.10)
	cfg := smallCfg()
	cfg.Options = ECSRM()
	w := newWorld(t, spec, cfg, 3)
	w.run(60)
	w.verifyAll(t, cfg)
	// Sender-only: no receiver may send repairs.
	for _, m := range spec.Receivers {
		if w.agents[m].Stats.RepairsSent != 0 {
			t.Fatalf("receiver %d sent repairs under SenderOnly", m)
		}
	}
}

func TestNoScopingVariantRecovers(t *testing.T) {
	spec := topology.BalancedTree([]int{2, 2}, 10e6, 0.010, 0.08)
	cfg := smallCfg()
	cfg.Options = Options{Scoping: false, Injection: true, SenderOnly: false}
	w := newWorld(t, spec, cfg, 4)
	w.run(60)
	w.verifyAll(t, cfg)
}

func TestFigure10FullProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure-10 run")
	}
	spec := topology.Figure10(topology.Figure10Params{})
	cfg := DefaultConfig()
	cfg.NumPackets = 256 // 16 groups: enough to exercise everything
	w := newWorld(t, spec, cfg, 5)
	w.run(120)
	w.verifyAll(t, cfg)
	nacks, repairs, injected := totalStats(w)
	if repairs == 0 {
		t.Fatal("no repairs in a heavily lossy network")
	}
	t.Logf("figure10: nacks=%d repairs=%d injected=%d", nacks, repairs, injected)
}

func TestInjectionReducesNACKs(t *testing.T) {
	if testing.Short() {
		t.Skip("comparative run")
	}
	run := func(injection bool) int {
		spec := topology.Figure10(topology.Figure10Params{})
		cfg := DefaultConfig()
		cfg.NumPackets = 256
		cfg.Options = Options{Scoping: true, Injection: injection}
		w := newWorld(t, spec, cfg, 6)
		w.run(120)
		nacks, _, _ := totalStats(w)
		return nacks
	}
	with, without := run(true), run(false)
	t.Logf("nacks with injection=%d without=%d", with, without)
	if with >= without {
		t.Fatalf("injection did not reduce NACKs: with=%d without=%d", with, without)
	}
}

func TestSuppressionLimitsNACKs(t *testing.T) {
	// A shared lossy backbone link upstream of 6 receivers: losses are
	// correlated, so NACK suppression should keep requests well below
	// one per loss event per receiver.
	g := topology.New(8)
	g.AddLink(0, 1, 10e6, 0.010, 0.15) // lossy backbone
	for i := 2; i < 8; i++ {
		g.AddLink(1, topology.NodeID(i), 10e6, 0.005, 0)
	}
	spec := &topology.Spec{
		Graph:     g,
		Source:    0,
		Receivers: []topology.NodeID{1, 2, 3, 4, 5, 6, 7},
		Zones:     []topology.ZoneSpec{{ID: 0, Parent: -1, Leaves: []topology.NodeID{0, 1, 2, 3, 4, 5, 6, 7}}},
		Name:      "shared-loss",
	}
	cfg := smallCfg()
	w := newWorld(t, spec, cfg, 7)
	w.run(60)
	w.verifyAll(t, cfg)
	nacks, _, _ := totalStats(w)
	suppressed := 0
	for _, ag := range w.agents {
		suppressed += ag.Stats.NACKsSuppressed
	}
	// All 7 receivers share the same losses; without suppression each
	// loss would trigger 7 NACKs.
	lossEvents := 0
	for _, ag := range w.agents {
		if ag.node == 1 {
			lossEvents = ag.Stats.DataReceived // proxy: node 1 sees post-loss stream
		}
	}
	_ = lossEvents
	if nacks == 0 {
		t.Fatal("expected some NACKs on a 15% lossy backbone")
	}
	if suppressed == 0 {
		t.Fatal("expected suppression among 7 receivers sharing losses")
	}
	t.Logf("shared-loss: nacks=%d suppressed=%d", nacks, suppressed)
}

func TestConfigValidation(t *testing.T) {
	spec := topology.Chain(2, 10e6, 0.010, 0)
	h, _ := scoping.Build(spec.Zones)
	var q eventq.Queue
	n := netsim.New(&q, spec.Graph, h, simrand.New(1))
	cfg := DefaultConfig()
	cfg.NumPackets = 17 // not a multiple of 16
	if _, err := New(0, n, cfg, simrand.New(1)); err == nil {
		t.Fatal("partial final group accepted")
	}
}

func TestInterPacketInterval(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.InterPacket(); got != 0.010 {
		t.Fatalf("inter-packet = %v, want 10 ms (paper: 1000 B at 800 kbit/s)", got)
	}
	if cfg.NumGroups() != 64 {
		t.Fatalf("groups = %d, want 64", cfg.NumGroups())
	}
}

func TestStartSourcePanicsOnReceiver(t *testing.T) {
	spec := topology.Chain(2, 10e6, 0.010, 0)
	cfg := smallCfg()
	w := newWorld(t, spec, cfg, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("StartSource on receiver did not panic")
		}
	}()
	w.agents[1].StartSource()
}

func TestDeterministicRun(t *testing.T) {
	run := func() (int, int) {
		spec := topology.Chain(5, 10e6, 0.010, 0.12)
		cfg := smallCfg()
		w := newWorld(t, spec, cfg, 42)
		w.run(60)
		n, r, _ := totalStats(w)
		return n, r
	}
	n1, r1 := run()
	n2, r2 := run()
	if n1 != n2 || r1 != r2 {
		t.Fatalf("runs diverged: (%d,%d) vs (%d,%d)", n1, r1, n2, r2)
	}
}

func TestScopeEscalation(t *testing.T) {
	// Node 3 sits behind a severely lossy last hop: zone-scoped repairs
	// from its ZCR (node 2) are mostly lost too, so after two attempts
	// per zone its requests must widen to the global scope (§4 RP:
	// "the scope of successive attempts will be increased after two
	// attempts at each zone").
	g := topology.New(5)
	g.AddLink(0, 1, 10e6, 0.010, 0)
	g.AddLink(1, 2, 10e6, 0.010, 0)
	g.AddLink(2, 3, 10e6, 0.005, 0.6) // node 3's private disaster link
	g.AddLink(2, 4, 10e6, 0.005, 0)
	spec := &topology.Spec{
		Graph:     g,
		Source:    0,
		Receivers: []topology.NodeID{1, 2, 3, 4},
		Zones: []topology.ZoneSpec{
			{ID: 0, Parent: -1, Leaves: []topology.NodeID{0, 1}},
			{ID: 1, Parent: 0, Leaves: []topology.NodeID{2, 3, 4}},
		},
		Name: "escalation",
	}
	cfg := smallCfg()
	w := newWorld(t, spec, cfg, 9)
	w.run(120)
	w.verifyAll(t, cfg)
	esc := 0
	for _, ag := range w.agents {
		esc += ag.Stats.ScopeEscalations
	}
	if esc == 0 {
		t.Fatal("expected scope escalations behind a 60% lossy last hop")
	}
}

func TestZCRFailureDataRecovery(t *testing.T) {
	// §3.2: "the ability of receivers to increase the scope of their
	// NACKs without reconfiguring the hierarchy minimizes the
	// consequences of ZCR failure." Kill a leaf-zone ZCR mid-stream:
	// its zone members must still recover every group, via re-election
	// and scope escalation.
	spec := topology.Figure10(topology.Figure10Params{})
	cfg := DefaultConfig()
	cfg.NumPackets = 256
	w := newWorld(t, spec, cfg, 33)
	// Node 8 is the first tree child, ZCR of its leaf zone once
	// elections settle. Kill it at t=9 s, mid-stream.
	w.net.Q.At(9, func(eventq.Time) { w.agents[8].Stop() })
	w.run(120)
	groups := cfg.NumGroups()
	for _, m := range spec.Receivers {
		if m == 8 {
			continue // the dead node is excused
		}
		if got := len(w.completed[m]); got != groups {
			t.Fatalf("node %d completed %d/%d groups after ZCR failure", m, got, groups)
		}
	}
	// A survivor of node 8's leaf zone must see a new leaf ZCR.
	leaf := w.net.H.LeafZone(8)
	if got := w.agents[9].Session().ZCR(leaf); got == 8 || got == topology.NoNode {
		t.Fatalf("leaf-zone ZCR after failure = %d, want a live survivor", got)
	}
}

func TestStoppedAgentSendsNothing(t *testing.T) {
	spec := topology.Chain(4, 10e6, 0.010, 0.10)
	cfg := smallCfg()
	w := newWorld(t, spec, cfg, 34)
	w.net.Q.At(2, func(eventq.Time) { w.agents[2].Stop() })
	var from2 int
	w.net.AddSendTap(func(_ eventq.Time, from topology.NodeID, _ scoping.ZoneID, _ packet.Packet) {
		if from == 2 && w.net.Q.Now() > 2 {
			from2++
		}
	})
	w.run(60)
	if from2 != 0 {
		t.Fatalf("stopped agent transmitted %d packets", from2)
	}
	if !w.agents[2].Stopped() {
		t.Fatal("Stopped() false")
	}
}

func TestLateJoinRecoversEverything(t *testing.T) {
	// A receiver joining mid-stream recovers every missed group via the
	// paced catch-up queue, served locally by its zone's ZCR.
	spec := topology.Figure10(topology.Figure10Params{})
	cfg := DefaultConfig()
	cfg.NumPackets = 256
	w := newWorld(t, spec, cfg, 35)
	late := topology.NodeID(12) // a grandchild in tree 1
	// Everyone else joins at t=1; node 12 joins at t=7.5 (mid-stream,
	// groups 0–8 already sent).
	w.net.Q.At(1, func(eventq.Time) {
		for n, ag := range w.agents {
			if n != late {
				ag.Join()
			}
		}
	})
	w.net.Q.At(6, func(eventq.Time) { w.agents[0].StartSource() })
	w.net.Q.At(7.5, func(eventq.Time) { w.agents[late].JoinLate() })
	w.net.Q.RunUntil(120)

	groups := cfg.NumGroups()
	if got := len(w.completed[late]); got != groups {
		t.Fatalf("late joiner completed %d/%d groups", got, groups)
	}
	if w.agents[late].IsCatchingUp() {
		t.Fatal("late joiner still reports catching up")
	}
	// Integrity of a recovered pre-join group.
	src := w.agents[0]
	for i, share := range w.completed[late][0] {
		if !bytes.Equal(share, src.sendData[0][i]) {
			t.Fatalf("catch-up group 0 share %d corrupted", i)
		}
	}
}

func TestLateJoinLocalized(t *testing.T) {
	// Catch-up repair traffic should be dominated by zone-scoped
	// repairs (the joiner's leaf-zone ZCR retains the data), not
	// root-scoped floods.
	spec := topology.Figure10(topology.Figure10Params{})
	cfg := DefaultConfig()
	cfg.NumPackets = 256
	w := newWorld(t, spec, cfg, 36)
	late := topology.NodeID(12)
	repairScopeLevel := map[int]int{}
	w.net.AddTap(func(_ eventq.Time, at topology.NodeID, d netsim.Delivery) {
		if _, ok := d.Pkt.(*packet.Repair); ok && at == late && w.net.Q.Now() > 9.6 {
			repairScopeLevel[w.net.H.Level(d.Scope)]++
		}
	})
	w.net.Q.At(1, func(eventq.Time) {
		for n, ag := range w.agents {
			if n != late {
				ag.Join()
			}
		}
	})
	w.net.Q.At(6, func(eventq.Time) { w.agents[0].StartSource() })
	// Join after the stream ends so all observed repairs past t=9.6 are
	// overwhelmingly catch-up traffic.
	w.net.Q.At(9.6, func(eventq.Time) { w.agents[late].JoinLate() })
	w.net.Q.RunUntil(120)
	if got := len(w.completed[late]); got != cfg.NumGroups() {
		t.Fatalf("late joiner completed %d/%d groups", got, cfg.NumGroups())
	}
	local := repairScopeLevel[2] + repairScopeLevel[1]
	global := repairScopeLevel[0]
	t.Logf("late-join repairs by scope level: %v", repairScopeLevel)
	if local <= global {
		t.Fatalf("catch-up not localized: local=%d global=%d", local, global)
	}
}

func TestJoinLatePanicsOnSource(t *testing.T) {
	spec := topology.Chain(2, 10e6, 0.010, 0)
	cfg := smallCfg()
	w := newWorld(t, spec, cfg, 37)
	defer func() {
		if recover() == nil {
			t.Fatal("JoinLate on source did not panic")
		}
	}()
	w.agents[0].JoinLate()
}

func TestAdaptiveTimersReduceDuplicateNACKs(t *testing.T) {
	// A star with wildly uneven spoke latencies is the case the paper's
	// §7 says fixed timers cannot fit: the request windows of near and
	// far receivers barely overlap, so duplicate NACKs abound. The
	// adaptive variant must cut them.
	build := func(adaptive bool) int {
		// Equal long spokes: every receiver draws its request timer
		// from the same window, but NACKs take 300 ms to cross between
		// spokes — fires within that gap duplicate each other.
		g := topology.New(8)
		g.AddLink(0, 1, 10e6, 0.010, 0.15) // shared lossy first hop
		for i := 2; i < 8; i++ {
			g.AddLink(1, topology.NodeID(i), 10e6, 0.150, 0)
		}
		// Node 1 is a pure router (not a session member), so the six
		// equidistant spokes race each other without a near
		// deduplicator.
		spec := &topology.Spec{
			Graph: g, Source: 0,
			Receivers: []topology.NodeID{2, 3, 4, 5, 6, 7},
			Zones:     []topology.ZoneSpec{{ID: 0, Parent: -1, Leaves: []topology.NodeID{0, 2, 3, 4, 5, 6, 7}}},
			Name:      "wide-star",
		}
		cfg := DefaultConfig()
		cfg.NumPackets = 512
		cfg.Options = Options{Scoping: true, Injection: false, AdaptiveTimers: adaptive}
		w := newWorld(t, spec, cfg, 80)
		w.run(120)
		w.verifyAll(t, cfg)
		dups := 0
		widened := false
		for _, ag := range w.agents {
			for _, grp := range ag.groups {
				dups += grp.dupNACKs
			}
			if _, c2 := ag.TimerConstants(); c2 > cfg.C2+1 {
				widened = true
			}
		}
		if adaptive && !widened {
			t.Fatal("no agent widened its request window under heavy duplication")
		}
		return dups
	}
	fixed, adaptive := build(false), build(true)
	t.Logf("duplicate NACK observations: fixed=%d adaptive=%d", fixed, adaptive)
	// A 5-second stream allows only a handful of adaptation rounds, so
	// require a clear directional improvement rather than a large one.
	if float64(adaptive) > 0.9*float64(fixed) {
		t.Fatalf("adaptation did not reduce duplicates: fixed=%d adaptive=%d", fixed, adaptive)
	}
}

func TestAdaptiveConstantsMoveAndStayBounded(t *testing.T) {
	spec := topology.Chain(5, 10e6, 0.010, 0.15)
	cfg := smallCfg()
	cfg.NumPackets = 128
	cfg.Options.AdaptiveTimers = true
	w := newWorld(t, spec, cfg, 81)
	w.run(90)
	moved := false
	for _, ag := range w.agents {
		c1, c2 := ag.TimerConstants()
		if c1 < 0.5 || c1 > 8 || c2 < 1 || c2 > 16 {
			t.Fatalf("node %d constants out of bounds: %v/%v", ag.Node(), c1, c2)
		}
		if c1 != cfg.C1 || c2 != cfg.C2 {
			moved = true
		}
	}
	if !moved {
		t.Fatal("no agent's constants moved despite adaptation being on")
	}
}

func TestFixedTimersStayFixed(t *testing.T) {
	spec := topology.Chain(4, 10e6, 0.010, 0.15)
	cfg := smallCfg()
	w := newWorld(t, spec, cfg, 82)
	w.run(60)
	for _, ag := range w.agents {
		if c1, c2 := ag.TimerConstants(); c1 != cfg.C1 || c2 != cfg.C2 {
			t.Fatal("constants moved with adaptation off")
		}
	}
}

func TestInjectionPredictorMatchesCascadeModel(t *testing.T) {
	// Cross-validation: the EWMA-predicted ZLCs that drive preemptive
	// injection should converge near the analytic Figure-2 cascade
	// expectations (analysis.ExpectedZLC) for each hierarchy level.
	spec := topology.Figure10(topology.Figure10Params{})
	cfg := DefaultConfig()
	cfg.NumPackets = 1024
	w := newWorld(t, spec, cfg, 90)
	w.run(30)

	// Root: the source covers the worst source→mesh path (18.8%).
	wantRoot := analysis.ExpectedZLC(16, 0.188, 1)
	gotRoot := w.agents[0].PredictedZLC(w.net.H.Root())
	if math.Abs(gotRoot-wantRoot) > 1.5 {
		t.Fatalf("root predictor %.2f vs cascade model %.2f", gotRoot, wantRoot)
	}

	// Intermediate: mesh ZCRs cover the 8% mesh→child stage, ZLC
	// maximized over 3 children (plus their subtrees' shared loss).
	wantInter := analysis.ExpectedZLC(16, 0.08, 3)
	sum, n := 0.0, 0
	for mesh := topology.NodeID(1); mesh <= 7; mesh++ {
		ag := w.agents[mesh]
		for z := 0; z < w.net.H.NumZones(); z++ {
			zone := scoping.ZoneID(z)
			if w.net.H.Level(zone) != 1 {
				continue
			}
			if v := ag.PredictedZLC(zone); v > 0 {
				sum += v
				n++
			}
		}
	}
	if n == 0 {
		t.Fatal("no intermediate predictors converged")
	}
	gotInter := sum / float64(n)
	// The zone's ZLC also reflects grandchild losses compounded behind
	// the children, so allow a generous band around the stage model.
	if gotInter < 0.5*wantInter || gotInter > 3*wantInter {
		t.Fatalf("intermediate predictor %.2f vs cascade model %.2f", gotInter, wantInter)
	}
	t.Logf("cascade validation: root %.2f (model %.2f), intermediate %.2f (model %.2f)",
		gotRoot, wantRoot, gotInter, wantInter)
}

func TestPropertyRecoversOnRandomTopologies(t *testing.T) {
	// Robustness sweep: on random trees with random per-link losses up
	// to 25%, the full protocol must always recover every group at
	// every receiver with verified payloads.
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 17))
		spec := topology.RandomTree(rng, 6+rng.IntN(14), 1+rng.IntN(3), 0.02, 0.25)
		cfg := smallCfg()
		w := newWorld(t, spec, cfg, uint64(1000+trial))
		w.run(120)
		w.verifyAll(t, cfg)
	}
}
