package core

import (
	"sharqfec/internal/eventq"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/telemetry"
)

// This file implements the repairer half of §4's Repair Phase: reply
// timers with RTT-proportional suppression, paced repair bursts, ZCR
// preemptive injection, and the EWMA predicted-ZLC maintenance.

// becomeRepairer runs when a node completes a group. ZCRs inject
// predicted redundancy into their zones and serve their speculative
// queues; ordinary receivers serve queued NACKs through reply timers.
func (a *Agent) becomeRepairer(now eventq.Time, g *group) {
	if !a.canRepair() {
		return
	}
	if a.cfg.Options.Scoping && a.cfg.Options.Injection {
		for _, z := range a.chain {
			if z == a.root || !a.isZCR(z) || g.injected[z] {
				continue
			}
			g.injected[z] = true
			// Inject the predicted zone loss, net of the redundancy
			// that already flowed into the zone with the group
			// (repairs heard from upstream injections): "should too
			// much redundancy be injected at one level, receivers in
			// subservient zones will add less" (§3.2).
			dec := a.decide(now, g, z, g.repairsHeard)
			if dec.H > 0 {
				a.injectRepairs(now, g, z, dec.H)
				a.Stats.RepairsInjected += dec.H
			}
		}
	}
	if a.cfg.Options.Scoping {
		for _, z := range a.chain {
			if a.isZCR(z) && z != a.root {
				a.scheduleZLCSample(now, g, z)
			}
		}
	}
	// ZCRs "generate and transmit the first of any additional queued
	// repairs to the zone for which they are responsible" immediately;
	// other repairers wait out a suppression reply timer before serving
	// requests that queued while the group was incomplete.
	if a.anyZCRDuty() {
		a.serveQueuedRepairs(now, g)
	} else if a.totalPending(g) > 0 {
		a.armReplyTimer(now, g, g.lastNACK)
	}
}

// anyZCRDuty reports whether this agent heads any zone (or is the
// source, which heads the root).
func (a *Agent) anyZCRDuty() bool {
	if a.isSource {
		return true
	}
	if !a.cfg.Options.Scoping {
		return false
	}
	for _, z := range a.chain {
		if a.isZCR(z) {
			return true
		}
	}
	return false
}

// armReplyTimer schedules a suppressed reply to a NACK: uniform on
// [D1·d, (D1+D2)·d] where d is the estimated one-way distance to the
// NACK's sender. Increases to the queue do not reset a pending timer
// (§4), and there is no reply back-off.
func (a *Agent) armReplyTimer(now eventq.Time, g *group, nack *packet.NACK) {
	if g.replyTimer != nil && g.replyTimer.Active() {
		return
	}
	if g.sendBusy {
		return // a burst is already being paced out
	}
	d := a.cfg.Session.DefaultDist
	if nack != nil {
		d = a.sess.Dist(nack.Origin, nack.Ancestors)
	}
	delay := eventq.Duration(a.rng.Uniform(a.cfg.D1*d, (a.cfg.D1+a.cfg.D2)*d))
	g.replyTimer = a.net.Sched().After(delay, func(fire eventq.Time) {
		a.serveQueuedRepairs(fire, g)
	})
	a.emit(now, telemetry.KindRepairScheduled, scoping.NoZone, int64(g.id), 0, 0, delay.Seconds())
}

// serveQueuedRepairs sends the speculative repair queue for every zone
// this agent can serve, widest scope first so one repair covers as many
// nested queues as possible.
func (a *Agent) serveQueuedRepairs(now eventq.Time, g *group) {
	if a.stopped {
		return
	}
	if !g.complete || g.sendBusy {
		return
	}
	// Serve from the widest zone down: repairs at a wide scope are
	// heard by (and decrement) every nested queue.
	for i := len(a.chain) - 1; i >= 0; i-- {
		z := a.chain[i]
		n := g.pending[z]
		if n <= 0 {
			continue
		}
		// Shrink nested queues covered by this transmission.
		for j := 0; j <= i; j++ {
			inner := a.chain[j]
			if a.net.Hierarchy().IsAncestor(z, inner) || !a.cfg.Options.Scoping {
				g.pending[inner] = maxInt(0, g.pending[inner]-n)
			}
		}
		g.pending[z] = 0
		a.sendRepairBurst(now, g, z, n, false)
		return // pace one zone at a time; the burst end re-checks
	}
}

// sendRepairBurst transmits n fresh repair shares to zone z, spaced by
// RepairSpacing × the inter-packet interval (§4 RP sender rule), then
// re-checks the queues. preempt marks the shares as preemptive-FEC for
// the cost census (see packet.Repair.Preemptive); it does not change
// what is sent.
func (a *Agent) sendRepairBurst(now eventq.Time, g *group, z scoping.ZoneID, n int, preempt bool) {
	first, last := g.maxShare+1, g.maxShare+n
	if last >= a.codecMaxShare() {
		last = a.codecMaxShare() - 1
	}
	if first > last {
		return
	}
	g.maxShare = last
	g.sendBusy = true
	spacing := a.cfg.RepairSpacing * a.ipt
	for idx := first; idx <= last; idx++ {
		idx := idx
		offset := eventq.Duration(float64(idx-first) * spacing)
		a.net.Sched().After(offset, func(fire eventq.Time) {
			a.transmitRepair(fire, g, z, idx, last, preempt)
		})
	}
	a.net.Sched().After(eventq.Duration(float64(last-first+1)*spacing), func(fire eventq.Time) {
		g.sendBusy = false
		a.serveQueuedRepairs(fire, g)
	})
}

// transmitRepair encodes and multicasts one repair share.
func (a *Agent) transmitRepair(now eventq.Time, g *group, z scoping.ZoneID, idx, burstMax int, preempt bool) {
	if a.stopped {
		return
	}
	data := a.groupData(g)
	if data == nil {
		return
	}
	share, err := a.codec.Repair(data, idx)
	if err != nil {
		return
	}
	rep := &packet.Repair{
		Origin:     a.node,
		Group:      g.id,
		Index:      uint8(share.Index),
		GroupK:     uint8(g.k),
		NewMaxSeq:  uint32(burstMax),
		Zone:       int16(z),
		Payload:    share.Data,
		Preemptive: preempt,
	}
	a.net.Multicast(a.node, z, rep)
	a.Stats.RepairsSent++
	a.emit(now, telemetry.KindRepairSent, z, int64(g.id), int64(burstMax), int64(idx), 0)
}

// injectRepairs preemptively sends h repair shares into zone z (ZCR
// automatic injection, or the sender's per-group redundancy). The
// telemetry event carries the EWMA predictor state that sized the
// injection.
func (a *Agent) injectRepairs(now eventq.Time, g *group, z scoping.ZoneID, h int) {
	a.emit(now, telemetry.KindRepairInjected, z, int64(g.id), int64(h), int64(g.repairsHeard), a.ctrl.Predict(z))
	a.sendRepairBurst(now, g, z, h, true)
}

// groupData returns the original payloads for a completed group (the
// source reads its transmit buffer; receivers their decoded data).
func (a *Agent) groupData(g *group) [][]byte {
	if a.isSource {
		return a.sendData[g.id]
	}
	return g.data
}

// codecMaxShare returns the exclusive upper bound on share indices.
func (a *Agent) codecMaxShare() int { return 255 }

// scheduleZLCSample arms the predicted-ZLC measurement for zone z: the
// true ZLC is known 2.5 RTTs (to the most distant member) after the
// group ends (§4), at which point the controller's predictor absorbs
// it. When no NACK reported a loss, the agent's own LLC stands in for
// the ZLC.
func (a *Agent) scheduleZLCSample(now eventq.Time, g *group, z scoping.ZoneID) {
	if g.zlcSampled[z] {
		return
	}
	g.zlcSampled[z] = true
	wait := eventq.Duration(a.cfg.ZLCWaitRTTs * a.sess.MostDistantRTT(z))
	a.net.Sched().After(wait, func(eventq.Time) {
		sample := float64(g.zlc[z])
		if sample == 0 {
			sample = float64(g.llc)
		}
		a.ctrl.ObserveZLC(z, sample)
	})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
