package core

// StateCensus is a point-in-time accounting of the protocol state an
// agent holds resident, read by the telemetry census on virtual-clock
// epochs. Collecting it only inspects state — it never arms timers,
// consumes randomness or mutates groups.
type StateCensus struct {
	// ActiveGroups counts FEC groups still tracked: incomplete, or
	// complete but retaining share/data buffers for repair duty.
	ActiveGroups int
	// PendingTimers counts armed per-group request/reply/LDP timers
	// plus the session layer's election timers.
	PendingTimers int
	// RepairQueue is the speculative repair backlog: shares owed to
	// zone peers across every scope, summed over groups.
	RepairQueue int
	// ResidentBytes estimates the payload bytes held in share buffers,
	// decoded group data and (for the source) the transmit store.
	ResidentBytes int
	// SessionEntries is the session manager's RTT-entry count — the
	// "RTTs maintained per receiver" state quantity of Figure 8.
	SessionEntries int
	// MemBytes is the agent's estimated total protocol memory
	// footprint: the slab arena backing the group bitsets, group
	// bookkeeping structures and map entries, plus every payload byte
	// counted by ResidentBytes. It feeds the census bytes-per-receiver
	// gauge.
	MemBytes int
}

// StateCensus reads the agent's current census. A stopped (crashed)
// agent reports zero state: its successor probe owns the node.
func (a *Agent) StateCensus() StateCensus {
	var s StateCensus
	if a.stopped {
		return s
	}
	for _, g := range a.groups {
		resident := 0
		for _, p := range g.shares {
			resident += len(p)
		}
		for _, p := range g.data {
			resident += len(p)
		}
		if !g.complete || resident > 0 {
			s.ActiveGroups++
		}
		if g.reqTimer != nil && g.reqTimer.Active() {
			s.PendingTimers++
		}
		if g.replyTimer != nil && g.replyTimer.Active() {
			s.PendingTimers++
		}
		if g.ldpTimer != nil && g.ldpTimer.Active() {
			s.PendingTimers++
		}
		s.RepairQueue += a.totalPending(g)
		s.ResidentBytes += resident
	}
	for _, d := range a.sendData {
		for _, p := range d {
			s.ResidentBytes += len(p)
		}
	}
	s.PendingTimers += a.sess.CensusTimers()
	s.SessionEntries = a.sess.StateSize()
	s.MemBytes = a.footprintBytes()
	return s
}
