package parallel

import (
	"sync"
	"testing"
)

func TestBudgetBounds(t *testing.T) {
	restore := SetLimit(2)
	defer restore()
	if !TryAcquire() || !TryAcquire() {
		t.Fatal("budget of 2 should grant two tokens")
	}
	if TryAcquire() {
		t.Fatal("third token granted past the limit")
	}
	Release()
	if !TryAcquire() {
		t.Fatal("released token not reusable")
	}
	Release()
	Release()
	if Active() != 0 {
		t.Fatalf("Active = %d after all releases", Active())
	}
	if Peak() != 2 {
		t.Fatalf("Peak = %d, want 2", Peak())
	}
}

// TestNestedConsumersShareBudget is the oversubscription regression:
// two pool layers racing for tokens can never hold more than the
// budget combined, no matter the interleaving.
func TestNestedConsumersShareBudget(t *testing.T) {
	restore := SetLimit(3)
	defer restore()
	var wg sync.WaitGroup
	for outer := 0; outer < 4; outer++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each "pool" grabs as many tokens as it can, pretends to
			// work, then releases — the runIndexed/ShardGroup pattern.
			got := 0
			for got < 5 && TryAcquire() {
				got++
			}
			for i := 0; i < got; i++ {
				Release()
			}
		}()
	}
	wg.Wait()
	if Peak() > 3 {
		t.Fatalf("Peak = %d tokens, budget was 3: oversubscribed", Peak())
	}
	if Active() != 0 {
		t.Fatalf("Active = %d after teardown", Active())
	}
}

func TestReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Release()
}
