// Package parallel is the process-wide worker budget for everything in
// this repository that fans out onto OS threads: the ensemble/sweep
// worker pool (runIndexed) and the zone-shard runner (eventq.ShardGroup).
//
// Both consumers used to size themselves off GOMAXPROCS independently,
// so nesting them — an ensemble of sharded runs is the natural way to
// use both — oversubscribed the machine by up to GOMAXPROCS×. Instead,
// every pool here keeps exactly one implicit worker (the calling
// goroutine) and acquires tokens for any extra concurrency from one
// shared, bounded budget of GOMAXPROCS-1 tokens. TryAcquire never
// blocks: when the budget is exhausted a pool simply runs narrower (in
// the limit, sequentially on its caller), so arbitrary nesting degrades
// to sequential execution instead of deadlocking or thrashing.
//
// Results must never depend on how many tokens a pool actually won —
// consumers are required to produce identical output at any width, the
// same contract the shard runner's digest tests enforce.
package parallel

import (
	"runtime"
	"sync"
)

var (
	mu     sync.Mutex
	limit  = maxTokens()
	active int
	peak   int
)

func maxTokens() int {
	n := runtime.GOMAXPROCS(0) - 1
	if n < 0 {
		n = 0
	}
	return n
}

// TryAcquire claims one extra-worker token. It never blocks; false means
// the budget is spent and the caller should do the work on the
// goroutine it already has.
func TryAcquire() bool {
	mu.Lock()
	defer mu.Unlock()
	if active >= limit {
		return false
	}
	active++
	if active > peak {
		peak = active
	}
	return true
}

// Release returns one token claimed by TryAcquire.
func Release() {
	mu.Lock()
	defer mu.Unlock()
	if active == 0 {
		panic("parallel: Release without Acquire")
	}
	active--
}

// Active returns the number of tokens currently held.
func Active() int {
	mu.Lock()
	defer mu.Unlock()
	return active
}

// Peak returns the high-water mark of concurrently held tokens since
// process start (or the last SetLimit, which resets it).
func Peak() int {
	mu.Lock()
	defer mu.Unlock()
	return peak
}

// SetLimit overrides the token budget (n < 0 restores the GOMAXPROCS-1
// default) and resets the peak gauge. It returns a function restoring
// the previous budget — a test hook for pinning the pool narrow.
func SetLimit(n int) (restore func()) {
	mu.Lock()
	defer mu.Unlock()
	prev := limit
	if n < 0 {
		n = maxTokens()
	}
	limit = n
	peak = 0
	return func() {
		mu.Lock()
		defer mu.Unlock()
		limit = prev
		peak = 0
	}
}
