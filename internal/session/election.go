package session

import (
	"sharqfec/internal/eventq"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/topology"
)

// This file implements the ZCR challenge phase (§5.2): periodic probes by
// each zone's ZCR of its distance to the parent ZCR, passive distance
// measurement by the other zone members using the paper's formula, and
// suppressed takeover when a closer receiver exists. Elections run
// top-down: a zone can only challenge once its parent zone has a ZCR.

// startChallengeDuty arms the periodic challenge timer for a zone this
// node is the ZCR of.
func (m *Manager) startChallengeDuty(z scoping.ZoneID) {
	if m.challengeTimer[z] != nil && m.challengeTimer[z].Active() {
		return
	}
	if m.net.Hierarchy().Parent(z) == scoping.NoZone {
		return // the root zone has no parent to probe
	}
	d := eventq.Duration(m.rng.Uniform(m.cfg.ChallengeLo, m.cfg.ChallengeHi))
	m.challengeTimer[z] = m.net.Sched().After(d, func(now eventq.Time) {
		if m.stopped {
			return
		}
		if m.zcrOf(z) == m.node {
			m.issueChallenge(now, z)
			m.startChallengeDuty(z)
		}
	})
}

// resetWatchdog re-arms the non-ZCR watchdog for zone z. Its window is
// "slightly larger" than the ZCR's challenge window so a healthy ZCR
// always wins the race.
func (m *Manager) resetWatchdog(z scoping.ZoneID) {
	if t := m.watchdog[z]; t != nil {
		t.Stop()
	}
	var window float64
	if m.zcrOf(z) == topology.NoNode {
		// No ZCR yet: probe quickly so the initial election happens
		// within the session-stabilization window.
		window = m.rng.Uniform(m.cfg.BootstrapLo, m.cfg.BootstrapHi)
	} else {
		window = m.cfg.WatchdogFactor * m.cfg.ChallengeHi * m.rng.Uniform(1.0, 1.5)
	}
	m.watchdog[z] = m.net.Sched().After(eventq.Duration(window), func(now eventq.Time) {
		if m.stopped {
			return
		}
		if m.zcrOf(z) != m.node {
			// The incumbent has been silent for a whole watchdog
			// window: challenge, and treat its advertised distance as
			// stale so a takeover is not suppressed by a dead node
			// (a live incumbent simply reasserts, §5.2).
			if m.zcrOf(z) != topology.NoNode {
				m.suspectZCR[z] = true
			}
			m.issueChallenge(now, z)
		}
		m.resetWatchdog(z)
	})
}

// issueChallenge multicasts a ZCR challenge for zone z to the parent
// scope, provided the parent zone has elected a ZCR (top-down ordering).
func (m *Manager) issueChallenge(now eventq.Time, z scoping.ZoneID) {
	parent := m.net.Hierarchy().Parent(z)
	if parent == scoping.NoZone {
		return
	}
	pz := m.zcrOf(parent)
	if pz == topology.NoNode {
		return // back off until the parent zone has elected
	}
	ch := &packet.ZCRChallenge{Origin: m.node, Zone: int16(z), SentAt: now.Seconds()}
	m.lastChallenge[z] = challengeInfo{challenger: m.node, sentAt: now.Seconds(), recvAt: now}
	m.net.Multicast(m.node, parent, ch)
	if pz == m.node {
		// Degenerate case: we are also the parent ZCR, so no response
		// will arrive (no loopback). Answer our own probe so zone
		// members can still measure, and record a zero distance.
		m.myParentDist[z] = 0
		if m.zcrOf(z) == m.node {
			m.zcrDist[z] = 0
		}
		m.net.Multicast(m.node, parent, &packet.ZCRResponse{
			Origin: m.node, Zone: int16(z), Challenger: m.node, ProcDelay: 0,
		})
	}
}

// HandleChallenge processes a ZCR challenge heard at the parent scope.
func (m *Manager) HandleChallenge(now eventq.Time, msg *packet.ZCRChallenge) {
	z := scoping.ZoneID(msg.Zone)
	if m.net.Hierarchy().Contains(z, m.node) {
		m.lastChallenge[z] = challengeInfo{challenger: msg.Origin, sentAt: msg.SentAt, recvAt: now}
	}
	if msg.Origin == m.zcrOf(z) {
		m.zcrHeard[z] = now
		m.suspectZCR[z] = false
		m.resetWatchdog(z)
	}
	parent := m.net.Hierarchy().Parent(z)
	if parent != scoping.NoZone && m.zcrOf(parent) == m.node && msg.Origin != m.node {
		// We are the parent ZCR: respond immediately (processing delay
		// is effectively zero in this simulator, and is carried
		// explicitly so receivers can subtract it regardless).
		m.net.Multicast(m.node, parent, &packet.ZCRResponse{
			Origin: m.node, Zone: msg.Zone, Challenger: msg.Origin, ProcDelay: 0,
		})
		if m.net.Hierarchy().Contains(z, m.node) {
			// We are also a member of the child zone, at distance zero
			// from its parent ZCR (ourselves) — contest directly,
			// since we will never hear our own response.
			m.considerTakeover(now, z, 0)
		}
	}
}

// HandleResponse processes the parent ZCR's response to a challenge,
// computing this node's distance to the parent ZCR and contesting the
// ZCR role if closer (§5.2 formula and takeover rules).
func (m *Manager) HandleResponse(now eventq.Time, msg *packet.ZCRResponse) {
	z := scoping.ZoneID(msg.Zone)
	lc, ok := m.lastChallenge[z]
	if !ok || lc.challenger != msg.Challenger {
		return // stale or unmatched response
	}
	if !m.net.Hierarchy().Contains(z, m.node) {
		return // parent-zone bystander; nothing to measure
	}

	var dist float64
	switch {
	case msg.Challenger == m.node:
		// We probed: round trip halved, processing delay removed.
		dist = (now.Seconds() - lc.sentAt - msg.ProcDelay) / 2
	case msg.Challenger == m.zcrOf(z):
		// Passive measurement with the paper's formula:
		// dist = d(me→localZCR) + (t_replyRecv − t_challengeRecv)
		//        − procDelay − d(localZCR→parentZCR).
		rtt, ok := m.DirectRTT(m.zcrOf(z))
		if !ok {
			return
		}
		if _, known := m.zcr[z]; !known {
			return
		}
		dist = rtt/2 + (now.Sub(lc.recvAt).Seconds() - msg.ProcDelay) - m.zcrDist[z]
	default:
		return // challenge came from a usurper; only it can measure
	}
	if dist < 0 {
		dist = 0
	}
	m.considerTakeover(now, z, dist)
}

// considerTakeover schedules a distance-proportional suppressed takeover
// if this node appears closer to the parent ZCR than the incumbent.
func (m *Manager) considerTakeover(_ eventq.Time, z scoping.ZoneID, dist float64) {
	m.myParentDist[z] = dist
	cur := m.zcrOf(z)
	if cur == m.node {
		// Already the ZCR: refresh the advertised distance.
		m.zcrDist[z] = dist
		return
	}
	if cur != topology.NoNode && !m.suspectZCR[z] && dist+m.cfg.TakeoverEpsilon >= m.zcrDist[z] {
		return // not meaningfully closer (and the incumbent is alive)
	}
	if t := m.pendingTakeover[z]; t != nil && t.Active() {
		if m.pendingDist[z] <= dist {
			return // an earlier, closer attempt is already pending
		}
		t.Stop()
	}
	// Suppression: closer candidates fire earlier, so the closest
	// receiver in the zone wins the election.
	delay := eventq.Duration(0.001 + dist*m.rng.Uniform(1.0, 1.3))
	m.pendingDist[z] = dist
	m.pendingTakeover[z] = m.net.Sched().After(delay, func(fireAt eventq.Time) {
		if m.stopped {
			return
		}
		m.sendTakeover(fireAt, z, dist)
	})
}

// sendTakeover announces this node as zone z's new ZCR to both the child
// zone and the parent zone.
func (m *Manager) sendTakeover(now eventq.Time, z scoping.ZoneID, dist float64) {
	to := &packet.ZCRTakeover{Origin: m.node, Zone: int16(z), DistToParent: dist}
	m.net.Multicast(m.node, z, to)
	if parent := m.net.Hierarchy().Parent(z); parent != scoping.NoZone {
		m.net.Multicast(m.node, parent, to)
	}
	m.setZCR(now, z, m.node, dist)
}

// HandleTakeover processes a ZCR takeover announcement.
func (m *Manager) HandleTakeover(now eventq.Time, msg *packet.ZCRTakeover) {
	z := scoping.ZoneID(msg.Zone)
	// Suppress our own pending (not-closer) takeover.
	if t := m.pendingTakeover[z]; t != nil && t.Active() && m.pendingDist[z]+m.cfg.TakeoverEpsilon >= msg.DistToParent {
		t.Stop()
	}
	if m.zcrOf(z) == m.node && msg.Origin != m.node {
		if d, ok := m.myParentDist[z]; ok && d+m.cfg.TakeoverEpsilon < msg.DistToParent {
			// The usurper is farther than we are: reassert (§5.2).
			m.sendTakeover(now, z, d)
			return
		}
	}
	m.setZCR(now, z, msg.Origin, msg.DistToParent)
	m.resetWatchdog(z)
}

// Receive dispatches a session-layer packet to its handler and reports
// whether the packet was consumed (false for data-plane packets the
// owning protocol must handle).
func (m *Manager) Receive(now eventq.Time, pkt packet.Packet) bool {
	if m.stopped {
		switch pkt.(type) {
		case *packet.Session, *packet.ZCRChallenge, *packet.ZCRResponse, *packet.ZCRTakeover:
			return true // consumed but ignored: the member is dead
		}
		return false
	}
	switch p := pkt.(type) {
	case *packet.Session:
		m.HandleSession(now, p)
	case *packet.ZCRChallenge:
		m.HandleChallenge(now, p)
	case *packet.ZCRResponse:
		m.HandleResponse(now, p)
	case *packet.ZCRTakeover:
		m.HandleTakeover(now, p)
	default:
		return false
	}
	return true
}
