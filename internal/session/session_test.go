package session

import (
	"math"
	"testing"

	"sharqfec/internal/eventq"
	"sharqfec/internal/netsim"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/simrand"
	"sharqfec/internal/topology"
)

// sessAgent adapts a Manager to netsim.Agent for session-only tests.
type sessAgent struct{ m *Manager }

func (a *sessAgent) Receive(now eventq.Time, d netsim.Delivery) { a.m.Receive(now, d.Pkt) }

// harness wires managers for every member of a spec.
type harness struct {
	net  *netsim.Network
	mgrs map[topology.NodeID]*Manager
	spec *topology.Spec
}

func newHarness(t *testing.T, spec *topology.Spec, seed uint64) *harness {
	t.Helper()
	h, err := scoping.Build(spec.Zones)
	if err != nil {
		t.Fatal(err)
	}
	var q eventq.Queue
	src := simrand.New(seed)
	n := netsim.New(&q, spec.Graph, h, src)
	hs := &harness{net: n, mgrs: map[topology.NodeID]*Manager{}, spec: spec}
	for _, member := range spec.Members() {
		m := New(member, n, DefaultConfig(), src.StreamN("session", int(member)))
		hs.mgrs[member] = m
		n.Attach(member, &sessAgent{m: m})
	}
	return hs
}

// startAll starts every manager at t=1 s (the paper's join time) and runs
// the simulation until `until` seconds.
func (h *harness) startAll(until float64) {
	h.net.Q.At(1, func(eventq.Time) {
		for _, member := range h.spec.Members() {
			h.mgrs[member].Start(member == h.spec.Source)
		}
	})
	h.net.Q.RunUntil(eventq.Time(until))
}

// twoLevelChain is a 0—1—2—3 chain where {1,2,3} form a child zone under
// the root: node 1 is the true ZCR (closest to the source).
func twoLevelChain() *topology.Spec {
	spec := topology.Chain(4, 10e6, 0.010, 0)
	spec.Zones = []topology.ZoneSpec{
		{ID: 0, Parent: -1, Leaves: []topology.NodeID{0}},
		{ID: 1, Parent: 0, Leaves: []topology.NodeID{1, 2, 3}},
	}
	return spec
}

func TestDirectRTTMeasurement(t *testing.T) {
	spec := topology.Chain(2, 10e6, 0.025, 0)
	h := newHarness(t, spec, 5)
	h.startAll(10)
	rtt, ok := h.mgrs[0].DirectRTT(1)
	if !ok {
		t.Fatal("node 0 has no RTT estimate for node 1")
	}
	// True propagation RTT is 50 ms; session packets also pay two small
	// transmission delays, so allow a few percent.
	if math.Abs(rtt-0.050)/0.050 > 0.10 {
		t.Fatalf("RTT estimate %v, want ≈0.050", rtt)
	}
	rtt2, ok := h.mgrs[1].DirectRTT(0)
	if !ok || math.Abs(rtt2-0.050)/0.050 > 0.10 {
		t.Fatalf("reverse RTT %v ok=%v", rtt2, ok)
	}
}

func TestRootZCRAnnounced(t *testing.T) {
	spec := twoLevelChain()
	h := newHarness(t, spec, 6)
	h.startAll(5)
	for _, n := range spec.Members() {
		if got := h.mgrs[n].ZCR(0); got != 0 {
			t.Fatalf("node %d believes root ZCR is %d, want 0", n, got)
		}
	}
}

func TestChainElection(t *testing.T) {
	spec := twoLevelChain()
	h := newHarness(t, spec, 7)
	h.startAll(20)
	for _, n := range spec.Members() {
		if got := h.mgrs[n].ZCR(1); got != 1 {
			t.Fatalf("node %d believes zone-1 ZCR is %d, want 1 (closest to source)", n, got)
		}
	}
	// The elected ZCR's measured distance to the parent ZCR should be
	// close to the true 10 ms one-way latency.
	d := h.mgrs[1].myParentDist[1]
	if math.Abs(d-0.010) > 0.004 {
		t.Fatalf("ZCR distance to parent %v, want ≈0.010", d)
	}
}

func TestForkElection(t *testing.T) {
	// Star: hub 0, spokes at 10/20/30 ms. Zone {1,2,3} under root: node
	// 1 (10 ms) must win.
	spec := topology.Star(4, 10e6, 0.010, 0)
	spec.Zones = []topology.ZoneSpec{
		{ID: 0, Parent: -1, Leaves: []topology.NodeID{0}},
		{ID: 1, Parent: 0, Leaves: []topology.NodeID{1, 2, 3}},
	}
	h := newHarness(t, spec, 8)
	h.startAll(20)
	for _, n := range spec.Members() {
		if got := h.mgrs[n].ZCR(1); got != 1 {
			t.Fatalf("node %d believes fork ZCR is %d, want 1", n, got)
		}
	}
}

func TestElectionConvergesWithinTwoChallenges(t *testing.T) {
	// §6.1: "each election at each zone taking either one or two
	// challenges". After the bootstrap window plus two challenge
	// intervals (≈ 1 + 1 + 2×3 s) the right ZCR must be in place.
	spec := twoLevelChain()
	h := newHarness(t, spec, 9)
	h.startAll(9)
	if got := h.mgrs[3].ZCR(1); got != 1 {
		t.Fatalf("zone-1 ZCR after two challenge rounds = %d, want 1", got)
	}
}

func TestFigure10Elections(t *testing.T) {
	spec := topology.Figure10(topology.Figure10Params{})
	h := newHarness(t, spec, 10)
	h.startAll(30)
	hier := h.net.H
	// Intermediate zones (parents = root): ZCR must be the mesh node.
	// Leaf zones: ZCR must be the tree child (closest to the mesh).
	for z := scoping.ZoneID(0); int(z) < hier.NumZones(); z++ {
		parent := hier.Parent(z)
		if parent == scoping.NoZone {
			continue
		}
		leaves := hier.Leaves(z)
		want := leaves[0] // builders list the closest node first
		// Check from the viewpoint of every member of the zone.
		for _, n := range hier.Members(z) {
			if got := h.mgrs[n].ZCR(z); got != want {
				t.Fatalf("node %d: zone %d ZCR = %d, want %d", n, z, got, want)
			}
		}
	}
}

func TestIndirectRTTEstimation(t *testing.T) {
	spec := topology.Figure10(topology.Figure10Params{})
	h := newHarness(t, spec, 11)
	h.startAll(30)

	// Figures 11–13 procedure: a receiver sends a NACK-like message
	// carrying its ancestor list; every other receiver estimates the
	// RTT and we compare against ground truth.
	for _, sender := range []topology.NodeID{3, 25, 36} {
		anc := h.mgrs[sender].AncestorList()
		if len(anc) == 0 {
			t.Fatalf("sender %d has empty ancestor list", sender)
		}
		within := 0
		able := 0
		for _, n := range spec.Members() {
			if n == sender {
				continue
			}
			est, ok := h.mgrs[n].EstimateRTT(sender, anc)
			if !ok {
				continue
			}
			able++
			truth := 2 * float64(h.net.OneWayDelay(sender, n))
			if truth == 0 {
				continue
			}
			if math.Abs(est-truth)/truth < 0.25 {
				within++
			}
		}
		if able < len(spec.Members())/2 {
			t.Fatalf("sender %d: only %d receivers could estimate", sender, able)
		}
		if float64(within)/float64(able) < 0.5 {
			t.Fatalf("sender %d: only %d/%d estimates within 25%%", sender, within, able)
		}
	}
}

func TestSessionTrafficScoped(t *testing.T) {
	// Scoped session traffic must deliver far fewer packets than the
	// all-pairs equivalent: in Figure 10 each member hears only its
	// zone peers and ancestor-zone participants.
	spec := topology.Figure10(topology.Figure10Params{})
	h := newHarness(t, spec, 12)
	deliveries := 0
	h.net.AddTap(func(_ eventq.Time, _ topology.NodeID, d netsim.Delivery) {
		if d.Pkt.Kind() == packet.TypeSession {
			deliveries++
		}
	})
	h.startAll(11) // ten steady-state seconds
	// Non-scoped all-pairs would be ≈113 senders × 112 hearers × 10 s
	// ≈ 126k deliveries. Scoped must be well under a quarter of that.
	if deliveries > 32000 {
		t.Fatalf("scoped session deliveries = %d, want ≪ 126k", deliveries)
	}
	if deliveries < 1000 {
		t.Fatalf("suspiciously few session deliveries: %d", deliveries)
	}
}

func TestAncestorListOrdering(t *testing.T) {
	spec := topology.Figure10(topology.Figure10Params{})
	h := newHarness(t, spec, 13)
	h.startAll(30)
	// A grandchild's ancestors: leaf ZCR then intermediate ZCR; RTTs
	// must be nondecreasing (composed estimates).
	anc := h.mgrs[12].AncestorList()
	if len(anc) < 2 {
		t.Fatalf("grandchild ancestor list too short: %v", anc)
	}
	for i := 1; i < len(anc); i++ {
		if anc[i].RTT+1e-9 < anc[i-1].RTT {
			t.Fatalf("ancestor RTTs not nondecreasing: %v", anc)
		}
	}
}

func TestDistFallback(t *testing.T) {
	spec := topology.Chain(3, 10e6, 0.010, 0)
	h := newHarness(t, spec, 14)
	// Before any session traffic, Dist falls back to the default.
	if d := h.mgrs[0].Dist(2, nil); d != DefaultConfig().DefaultDist {
		t.Fatalf("fallback dist = %v", d)
	}
}

func TestMostDistantRTT(t *testing.T) {
	spec := twoLevelChain()
	h := newHarness(t, spec, 15)
	h.startAll(20)
	// Zone 1 spans nodes 1..3; from node 1 the most distant member is
	// node 3 at RTT ≈ 40 ms.
	got := h.mgrs[1].MostDistantRTT(1)
	if math.Abs(got-0.040)/0.040 > 0.2 {
		t.Fatalf("MostDistantRTT = %v, want ≈0.040", got)
	}
}

func TestEstimateRTTSelf(t *testing.T) {
	spec := topology.Chain(2, 10e6, 0.010, 0)
	h := newHarness(t, spec, 16)
	if rtt, ok := h.mgrs[0].EstimateRTT(0, nil); !ok || rtt != 0 {
		t.Fatalf("self RTT = %v ok=%v", rtt, ok)
	}
}

func TestZCRReassertsAgainstFartherUsurper(t *testing.T) {
	spec := twoLevelChain()
	h := newHarness(t, spec, 17)
	h.startAll(20)
	// Node 3 (farther) forges a takeover; node 1 must reassert and all
	// nodes settle back on node 1.
	h.net.Q.At(20, func(now eventq.Time) {
		forged := &packet.ZCRTakeover{Origin: 3, Zone: 1, DistToParent: 0.5}
		h.net.Multicast(3, 0, forged)
		h.net.Multicast(3, 1, forged)
		h.mgrs[3].setZCR(now, 1, 3, 0.5)
	})
	h.net.Q.RunUntil(30)
	for _, n := range spec.Members() {
		if got := h.mgrs[n].ZCR(1); got != 1 {
			t.Fatalf("node %d: ZCR = %d after forged takeover, want 1 restored", n, got)
		}
	}
}

func TestDeterministicElections(t *testing.T) {
	run := func() topology.NodeID {
		spec := topology.Figure10(topology.Figure10Params{})
		h := newHarness(t, spec, 99)
		h.startAll(25)
		return h.mgrs[50].ZCR(h.net.H.LeafZone(50))
	}
	if run() != run() {
		t.Fatal("elections not deterministic for fixed seed")
	}
}

func TestChainAccessors(t *testing.T) {
	spec := topology.Figure10(topology.Figure10Params{})
	h := newHarness(t, spec, 18)
	m := h.mgrs[12]
	if m.Node() != 12 {
		t.Fatal("Node accessor wrong")
	}
	if len(m.Chain()) != 3 {
		t.Fatalf("grandchild chain length %d, want 3", len(m.Chain()))
	}
}

func TestZCRFailureTriggersReelection(t *testing.T) {
	// Kill the elected zone ZCR mid-session; the watchdog must notice
	// the silence and the survivors must elect the next-closest member
	// (§5.2 robustness: "should the old ZCR leave the session").
	spec := twoLevelChain()
	h := newHarness(t, spec, 31)
	h.startAll(20)
	if got := h.mgrs[1].ZCR(1); got != 1 {
		t.Fatalf("precondition: ZCR = %d, want 1", got)
	}
	h.mgrs[1].Stop()
	h.net.Q.RunUntil(60)
	for _, n := range []topology.NodeID{2, 3} {
		if got := h.mgrs[n].ZCR(1); got != 2 {
			t.Fatalf("node %d: post-failure ZCR = %d, want 2 (next closest)", n, got)
		}
	}
}

func TestStoppedManagerStaysSilent(t *testing.T) {
	spec := twoLevelChain()
	h := newHarness(t, spec, 32)
	h.startAll(5)
	h.mgrs[3].Stop()
	if !h.mgrs[3].Stopped() {
		t.Fatal("Stopped() false after Stop")
	}
	var heardFrom3 bool
	h.net.AddTap(func(_ eventq.Time, _ topology.NodeID, d netsim.Delivery) {
		if s, ok := d.Pkt.(*packet.Session); ok && s.Origin == 3 {
			heardFrom3 = true
		}
	})
	h.net.Q.RunUntil(20)
	if heardFrom3 {
		t.Fatal("stopped manager kept sending session messages")
	}
}

func TestReceiverReportAggregation(t *testing.T) {
	// Figure-10: grandchildren publish distinct loss fractions; their
	// leaf ZCRs aggregate to the intermediate scope, mesh ZCRs to the
	// root, and the source's view converges on the session-wide worst.
	spec := topology.Figure10(topology.Figure10Params{})
	h := newHarness(t, spec, 40)
	h.net.Q.At(1, func(eventq.Time) {
		for _, member := range h.spec.Members() {
			h.mgrs[member].Start(member == h.spec.Source)
		}
	})
	// Publish reports at t=2: receiver n reports n/1000 loss, so the
	// worst is node 112's 0.112.
	h.net.Q.At(2, func(eventq.Time) {
		for _, member := range h.spec.Receivers {
			h.mgrs[member].SetLocalLossReport(float64(member) / 1000)
		}
	})
	h.net.Q.RunUntil(30)

	worst, members := h.mgrs[0].AggregatedReport(0)
	if worst < 0.111 || worst > 0.113 {
		t.Fatalf("source's worst-loss view = %v, want 0.112", worst)
	}
	if int(members) < 100 {
		t.Fatalf("source's aggregation covers %d members", members)
	}
	// The source should hear only root-scope participants (mesh ZCRs
	// and root-level peers), not all 112 receivers.
	if n := h.mgrs[0].ReportersHeard(0); n > 20 {
		t.Fatalf("source heard %d direct reporters", n)
	}
}

func TestSetLocalLossReportClamped(t *testing.T) {
	spec := topology.Chain(2, 10e6, 0.010, 0)
	h := newHarness(t, spec, 41)
	m := h.mgrs[1]
	m.SetLocalLossReport(-0.5)
	if m.rrLocal != 0 {
		t.Fatal("negative report not clamped")
	}
	m.SetLocalLossReport(1.5)
	if m.rrLocal != 1 {
		t.Fatal("overlarge report not clamped")
	}
}

func TestHopRTTReverseLookup(t *testing.T) {
	spec := twoLevelChain()
	h := newHarness(t, spec, 42)
	m := h.mgrs[3]
	// Record a one-directional link table and look it up both ways.
	m.zcrLink[5] = map[topology.NodeID]float64{7: 0.123}
	if rtt, ok := m.hopRTT(5, 7); !ok || rtt != 0.123 {
		t.Fatalf("forward hop = %v %v", rtt, ok)
	}
	if rtt, ok := m.hopRTT(7, 5); !ok || rtt != 0.123 {
		t.Fatalf("reverse hop = %v %v", rtt, ok)
	}
	if _, ok := m.hopRTT(7, 9); ok {
		t.Fatal("unknown hop resolved")
	}
}

func TestRTTToChainZCRUnknown(t *testing.T) {
	spec := twoLevelChain()
	h := newHarness(t, spec, 43)
	// No session traffic: no ZCRs known, composition must fail cleanly.
	if _, ok := h.mgrs[3].RTTToChainZCR(0); ok {
		t.Fatal("composed RTT with no election data")
	}
	if _, ok := h.mgrs[3].RTTToChainZCR(-1); ok {
		t.Fatal("negative index accepted")
	}
	if _, ok := h.mgrs[3].RTTToChainZCR(99); ok {
		t.Fatal("out-of-range index accepted")
	}
}

func TestEstimateRTTViaDirectAncestor(t *testing.T) {
	spec := twoLevelChain()
	h := newHarness(t, spec, 44)
	m := h.mgrs[2]
	m.observeRTT(1, 0.040) // we know node 1 directly
	// Unknown sender 9 supplies its RTT to node 1: estimate composes.
	est, ok := m.EstimateRTT(9, []packet.AncestorRTT{{ZCR: 1, RTT: 0.020}})
	if !ok || math.Abs(est-0.060) > 1e-9 {
		t.Fatalf("composed estimate = %v %v, want 0.060", est, ok)
	}
}

func TestEstimateRTTNoPath(t *testing.T) {
	spec := twoLevelChain()
	h := newHarness(t, spec, 45)
	if _, ok := h.mgrs[2].EstimateRTT(9, nil); ok {
		t.Fatal("estimate formed with no information")
	}
}

func TestObserveRTTEWMA(t *testing.T) {
	spec := twoLevelChain()
	h := newHarness(t, spec, 46)
	m := h.mgrs[2]
	m.observeRTT(7, 0.100) // first sample taken whole
	if rtt, _ := m.DirectRTT(7); rtt != 0.100 {
		t.Fatalf("first sample = %v", rtt)
	}
	m.observeRTT(7, 0.200) // 0.75·0.1 + 0.25·0.2
	if rtt, _ := m.DirectRTT(7); math.Abs(rtt-0.125) > 1e-9 {
		t.Fatalf("EWMA = %v, want 0.125", rtt)
	}
}

func TestStateSizeCountsTables(t *testing.T) {
	spec := twoLevelChain()
	h := newHarness(t, spec, 47)
	m := h.mgrs[2]
	if m.StateSize() != 0 {
		t.Fatal("fresh manager has state")
	}
	m.observeRTT(1, 0.01)
	m.zcrLink[1] = map[topology.NodeID]float64{0: 0.02, 5: 0.03}
	if m.StateSize() != 3 {
		t.Fatalf("StateSize = %d, want 3", m.StateSize())
	}
}

func TestReportForWithoutLocalReport(t *testing.T) {
	spec := twoLevelChain()
	h := newHarness(t, spec, 48)
	loss, members := h.mgrs[2].reportFor(1)
	if loss != 0 || members != 0 {
		t.Fatalf("empty manager reported %v/%d", loss, members)
	}
}
