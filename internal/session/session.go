// Package session implements SHARQFEC's administratively scoped session
// management (paper §5): staggered per-zone session messages, echo-based
// round-trip-time measurement, the reduced hierarchical state tables,
// indirect RTT estimation through Zone Closest Receivers (§5.1), and the
// adaptive ZCR election / challenge protocol (§5.2).
//
// One Manager runs per session member. The enclosing protocol agent
// forwards SESSION / ZCR-* packets to the Manager and queries it for the
// distance estimates its suppression timers need.
package session

import (
	"sharqfec/internal/eventq"
	"sharqfec/internal/fabric"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/simrand"
	"sharqfec/internal/telemetry"
	"sharqfec/internal/topology"
)

// Config carries the session-management constants. Defaults (from
// DefaultConfig) are the values the paper's simulations used where it
// states them, and documented calibrations where it does not.
type Config struct {
	// SteadyLo/SteadyHi bound the uniform stagger between session
	// messages in steady state (paper: [0.9, 1.1] s).
	SteadyLo, SteadyHi float64
	// FastLo/FastHi bound the stagger for the first FastCount messages,
	// to speed convergence (paper: [0.05, 0.25] s for three messages).
	FastLo, FastHi float64
	FastCount      int
	// RTTAlpha is the weight of a new RTT sample in the EWMA merge.
	RTTAlpha float64
	// ChallengeLo/ChallengeHi bound the randomized interval between a
	// ZCR's periodic challenges.
	ChallengeLo, ChallengeHi float64
	// WatchdogFactor scales ChallengeHi into the non-ZCR watchdog
	// window ("slightly larger than that of their ZCR").
	WatchdogFactor float64
	// BootstrapLo/BootstrapHi bound the watchdog window used while a
	// zone has no known ZCR at all, so initial elections finish inside
	// the paper's five-second session-stabilization window.
	BootstrapLo, BootstrapHi float64
	// TakeoverEpsilon is the distance improvement (seconds, one-way)
	// required before a node attempts a takeover, preventing flapping
	// between near-equidistant candidates.
	TakeoverEpsilon float64
	// DefaultDist is the one-way distance assumed for peers with no
	// estimate yet (bootstraps suppression timers).
	DefaultDist float64

	// Telemetry, when non-nil, receives RTT-sample and ZCR-election
	// events. The owning protocol agent propagates its own bus here.
	Telemetry *telemetry.Bus
}

// DefaultConfig returns the paper-calibrated session constants.
func DefaultConfig() Config {
	return Config{
		SteadyLo: 0.9, SteadyHi: 1.1,
		FastLo: 0.05, FastHi: 0.25,
		FastCount:   3,
		RTTAlpha:    0.25,
		ChallengeLo: 2.0, ChallengeHi: 3.0,
		WatchdogFactor: 1.8,
		BootstrapLo:    0.4, BootstrapHi: 0.9,
		TakeoverEpsilon: 0.002,
		DefaultDist:     0.050,
	}
}

// echoInfo records the last session message heard from a peer at one
// scope, for the entry we will echo back.
type echoInfo struct {
	sentAt  float64     // peer's SentAt timestamp
	arrival eventq.Time // local arrival time
}

// peerInfo is the per-peer direct RTT state.
type peerInfo struct {
	rtt  float64
	have bool
}

// challengeInfo tracks the last challenge heard per zone so the matching
// response can be interpreted.
type challengeInfo struct {
	challenger topology.NodeID
	sentAt     float64     // challenger's timestamp
	recvAt     eventq.Time // when *we* heard the challenge
}

// Manager is the per-node session-management state machine.
type Manager struct {
	node topology.NodeID
	net  fabric.Network
	cfg  Config
	rng  *simrand.Rand

	chain []scoping.ZoneID // zones containing node, smallest first
	leaf  scoping.ZoneID

	direct  map[topology.NodeID]*peerInfo
	heardAt map[scoping.ZoneID]map[topology.NodeID]*echoInfo

	zcr          map[scoping.ZoneID]topology.NodeID
	zcrDist      map[scoping.ZoneID]float64 // announced one-way ZCR→parent-ZCR distance
	myParentDist map[scoping.ZoneID]float64 // measured when we are (or probe as) ZCR
	zcrLink      map[topology.NodeID]map[topology.NodeID]float64
	zcrHeard     map[scoping.ZoneID]eventq.Time

	lastChallenge   map[scoping.ZoneID]challengeInfo
	suspectZCR      map[scoping.ZoneID]bool // incumbent silent past watchdog
	pendingTakeover map[scoping.ZoneID]fabric.Timer
	pendingDist     map[scoping.ZoneID]float64
	challengeTimer  map[scoping.ZoneID]fabric.Timer
	watchdog        map[scoping.ZoneID]fabric.Timer

	msgCount int
	started  bool
	stopped  bool

	// receiver-report aggregation (reports.go)
	rrLocal float64
	rrSet   bool
	heardRR map[scoping.ZoneID]map[topology.NodeID]rrInfo

	// MaxSeq is advertised in session messages (SRM tail-loss
	// detection); the owning protocol keeps it current.
	MaxSeq uint32

	// Elections counts ZCR takeovers observed, for the §6.1 experiments.
	Elections int
}

// New creates a Manager for node. The node's zone chain comes from the
// network's scoping hierarchy.
func New(node topology.NodeID, net fabric.Network, cfg Config, rng *simrand.Rand) *Manager {
	m := &Manager{
		node:            node,
		net:             net,
		cfg:             cfg,
		rng:             rng,
		chain:           net.Hierarchy().ZonesOf(node),
		direct:          make(map[topology.NodeID]*peerInfo),
		heardAt:         make(map[scoping.ZoneID]map[topology.NodeID]*echoInfo),
		zcr:             make(map[scoping.ZoneID]topology.NodeID),
		zcrDist:         make(map[scoping.ZoneID]float64),
		myParentDist:    make(map[scoping.ZoneID]float64),
		zcrLink:         make(map[topology.NodeID]map[topology.NodeID]float64),
		zcrHeard:        make(map[scoping.ZoneID]eventq.Time),
		lastChallenge:   make(map[scoping.ZoneID]challengeInfo),
		suspectZCR:      make(map[scoping.ZoneID]bool),
		pendingTakeover: make(map[scoping.ZoneID]fabric.Timer),
		pendingDist:     make(map[scoping.ZoneID]float64),
		challengeTimer:  make(map[scoping.ZoneID]fabric.Timer),
		watchdog:        make(map[scoping.ZoneID]fabric.Timer),
		heardRR:         make(map[scoping.ZoneID]map[topology.NodeID]rrInfo),
	}
	if len(m.chain) == 0 {
		panic("session: node is not a member of any zone")
	}
	m.leaf = m.chain[0]
	return m
}

// Node returns the owning node's ID.
func (m *Manager) Node() topology.NodeID { return m.node }

// Chain returns the node's zone chain, smallest zone first.
func (m *Manager) Chain() []scoping.ZoneID { return m.chain }

// Start begins session timers. If root is true the node declares itself
// the ZCR of the global zone (the data source / top cache, "by design" in
// the paper's deployments).
func (m *Manager) Start(root bool) {
	if m.started {
		return
	}
	m.started = true
	now := m.net.Sched().Now()
	if root {
		rootZone := m.chain[len(m.chain)-1]
		m.zcr[rootZone] = m.node
		m.zcrDist[rootZone] = 0
		m.myParentDist[rootZone] = 0
		m.zcrHeard[rootZone] = now
	}
	m.scheduleSession()
	// Watchdogs for every non-root zone in the chain: if no ZCR makes
	// itself heard, this node will issue a challenge (election
	// bootstrap, §5.2).
	for _, z := range m.chain {
		if m.net.Hierarchy().Parent(z) == scoping.NoZone {
			continue
		}
		m.resetWatchdog(z)
	}
}

// SeedZCR installs n as the designated ZCR of zone z before elections
// run, modelling the paper's deployments where zone representatives
// (caches, designated routers) are configured rather than discovered —
// Start(true) already does exactly this for the root zone. Call it
// before Start: members that know an incumbent arm the steady-state
// watchdog window instead of the short bootstrap window, so a fully
// designated session skips the O(members × parent-scope) bootstrap
// challenge storm that otherwise dominates large runs. Everything after
// that is the unchanged protocol: duty challenges, passive distance
// measurement, suppression and takeovers all still operate, so a badly
// placed designee is corrected the normal way (§5.2).
func (m *Manager) SeedZCR(z scoping.ZoneID, n topology.NodeID) {
	m.setZCR(m.net.Sched().Now(), z, n, m.cfg.DefaultDist)
}

// Stop silences the manager: it ceases sending session messages,
// challenges and takeovers, and ignores further input — modelling the
// failure of the member (the host dies; the network keeps routing).
func (m *Manager) Stop() { m.stopped = true }

// Stopped reports whether Stop was called.
func (m *Manager) Stopped() bool { return m.stopped }

// scheduleSession arms the next session-message timer with the paper's
// staggering rule.
func (m *Manager) scheduleSession() {
	lo, hi := m.cfg.SteadyLo, m.cfg.SteadyHi
	if m.msgCount < m.cfg.FastCount {
		lo, hi = m.cfg.FastLo, m.cfg.FastHi
	}
	d := eventq.Duration(m.rng.Uniform(lo, hi))
	m.net.Sched().After(d, func(now eventq.Time) {
		if m.stopped {
			return
		}
		m.sendSessionMessages(now)
		m.scheduleSession()
	})
}

// sendSessionMessages emits this node's periodic messages: one scoped to
// its smallest zone, plus — for every zone it is the ZCR of — one to that
// (child) zone and one to the zone's parent (§5 rules: "the first session
// message lists entries for the child zone's receivers and is sent to the
// child zone, while the second is sent to the parent zone").
func (m *Manager) sendSessionMessages(now eventq.Time) {
	m.msgCount++
	sent := map[scoping.ZoneID]bool{m.leaf: true}
	m.sendSessionFor(now, m.leaf)
	for _, z := range m.chain {
		if m.zcr[z] != m.node {
			continue
		}
		if !sent[z] {
			sent[z] = true
			m.sendSessionFor(now, z)
		}
		if p := m.net.Hierarchy().Parent(z); p != scoping.NoZone && !sent[p] {
			sent[p] = true
			m.sendSessionFor(now, p)
		}
	}
}

// sendSessionFor builds and multicasts the session message for zone z.
func (m *Manager) sendSessionFor(now eventq.Time, z scoping.ZoneID) {
	msg := &packet.Session{
		Origin: m.node,
		Zone:   int16(z),
		SentAt: now.Seconds(),
		ZCR:    topology.NoNode,
		MaxSeq: m.MaxSeq,
	}
	msg.RRWorstLoss, msg.RRMembers = m.reportFor(z)
	if zcr, ok := m.zcr[z]; ok {
		msg.ZCR = zcr
		if zcr == m.node {
			msg.ZCRParentDist = m.myParentDist[z]
		} else {
			msg.ZCRParentDist = m.zcrDist[z]
		}
	}
	for peer, e := range m.heardAt[z] {
		entry := packet.SessionEntry{
			Peer:       peer,
			SinceHeard: now.Sub(e.arrival).Seconds(),
			Echo:       e.sentAt,
		}
		if pi := m.direct[peer]; pi != nil && pi.have {
			entry.RTT = pi.rtt
		}
		msg.Entries = append(msg.Entries, entry)
	}
	m.net.Multicast(m.node, z, msg)
}

// HandleSession processes a received session message.
func (m *Manager) HandleSession(now eventq.Time, msg *packet.Session) {
	z := scoping.ZoneID(msg.Zone)
	// Record the peer for echoing in our next message at this scope.
	peers := m.heardAt[z]
	if peers == nil {
		peers = make(map[topology.NodeID]*echoInfo)
		m.heardAt[z] = peers
	}
	peers[msg.Origin] = &echoInfo{sentAt: msg.SentAt, arrival: now}
	m.recordReport(z, msg)

	// RTT sample from the echo of our own previous message.
	for _, e := range msg.Entries {
		if e.Peer == m.node && e.Echo > 0 {
			sample := now.Seconds() - e.Echo - e.SinceHeard
			if sample >= 0 {
				m.observeRTT(msg.Origin, sample)
			}
		}
	}

	// Zone bookkeeping from the header.
	if msg.ZCR != topology.NoNode {
		if cur, ok := m.zcr[z]; !ok || cur != msg.ZCR {
			// Adopt announcements; the challenge protocol corrects
			// stale claims.
			if !ok || msg.Origin == msg.ZCR || msg.Origin == cur {
				m.setZCR(now, z, msg.ZCR, msg.ZCRParentDist)
			}
		} else if msg.Origin == msg.ZCR {
			m.zcrDist[z] = msg.ZCRParentDist
		}
	}
	if msg.Origin == m.zcrOf(z) {
		m.zcrHeard[z] = now
		m.suspectZCR[z] = false
		m.resetWatchdog(z)
	}

	// If the sender is one of our chain ZCRs, record its view of its
	// peers — the reduced state table of Figure 5.
	for _, c := range m.chain {
		if m.zcrOf(c) == msg.Origin {
			links := m.zcrLink[msg.Origin]
			if links == nil {
				links = make(map[topology.NodeID]float64)
				m.zcrLink[msg.Origin] = links
			}
			for _, e := range msg.Entries {
				if e.RTT > 0 {
					links[e.Peer] = e.RTT
				}
			}
			break
		}
	}
}

// observeRTT merges a new RTT sample for peer with the EWMA filter.
func (m *Manager) observeRTT(peer topology.NodeID, sample float64) {
	if m.cfg.Telemetry != nil {
		m.cfg.Telemetry.Emit(telemetry.Event{
			T: m.net.Sched().Now().Seconds(), Kind: telemetry.KindRTTSample,
			Node: m.node, Zone: scoping.NoZone, Group: -1,
			A: int64(peer), F: sample,
		})
	}
	pi := m.direct[peer]
	if pi == nil {
		pi = &peerInfo{}
		m.direct[peer] = pi
	}
	if !pi.have {
		pi.rtt = sample
		pi.have = true
		return
	}
	pi.rtt = (1-m.cfg.RTTAlpha)*pi.rtt + m.cfg.RTTAlpha*sample
}

// zcrOf returns the believed ZCR of z, or NoNode.
func (m *Manager) zcrOf(z scoping.ZoneID) topology.NodeID {
	if n, ok := m.zcr[z]; ok {
		return n
	}
	return topology.NoNode
}

// ZCR returns the node currently believed to be z's Zone Closest
// Receiver, or topology.NoNode if none is known yet.
func (m *Manager) ZCR(z scoping.ZoneID) topology.NodeID { return m.zcrOf(z) }

// IsZCR reports whether this node believes it is the ZCR of z.
func (m *Manager) IsZCR(z scoping.ZoneID) bool { return m.zcrOf(z) == m.node }

// StateSize returns the number of RTT entries this member maintains:
// direct peer estimates plus recorded ZCR link tables — the "RTTs
// maintained per receiver" quantity of Figure 8.
func (m *Manager) StateSize() int {
	n := len(m.direct)
	for _, links := range m.zcrLink {
		n += len(links)
	}
	return n
}

// CensusTimers returns the number of armed session-layer timers
// (pending takeovers, periodic challenges, ZCR watchdogs) for the
// telemetry census. Read-only: it never arms or cancels anything.
func (m *Manager) CensusTimers() int {
	n := 0
	for _, t := range m.pendingTakeover {
		if t != nil && t.Active() {
			n++
		}
	}
	for _, t := range m.challengeTimer {
		if t != nil && t.Active() {
			n++
		}
	}
	for _, t := range m.watchdog {
		if t != nil && t.Active() {
			n++
		}
	}
	return n
}

// DirectRTT returns the direct RTT estimate to peer, if one exists.
func (m *Manager) DirectRTT(peer topology.NodeID) (float64, bool) {
	if pi := m.direct[peer]; pi != nil && pi.have {
		return pi.rtt, true
	}
	return 0, false
}

// setZCR installs a new ZCR belief for z.
func (m *Manager) setZCR(now eventq.Time, z scoping.ZoneID, n topology.NodeID, dist float64) {
	prev, had := m.zcr[z]
	m.zcr[z] = n
	m.zcrDist[z] = dist
	m.zcrHeard[z] = now
	m.suspectZCR[z] = false
	if had && prev != n {
		m.Elections++
	}
	if m.cfg.Telemetry != nil && (!had || prev != n) {
		if !had {
			prev = topology.NoNode
		}
		m.cfg.Telemetry.Emit(telemetry.Event{
			T: now.Seconds(), Kind: telemetry.KindZCRElected,
			Node: m.node, Zone: z, Group: -1,
			A: int64(prev), B: int64(n),
		})
	}
	if n == m.node {
		m.startChallengeDuty(z)
	} else if t := m.challengeTimer[z]; t != nil {
		t.Stop()
		delete(m.challengeTimer, z)
	}
}
