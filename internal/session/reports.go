package session

import (
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/topology"
)

// Hierarchical receiver-report aggregation — the §7 proposal of using
// SHARQFEC's session hierarchy to solve the RTCP announcement problem.
// Each member publishes its own reception quality; every session message
// then carries a summary (worst loss fraction, member count) of the
// subtree its sender represents: ordinary members report themselves,
// ZCRs fold in everything they heard inside the zones they head. The
// summaries bubble one level per ZCR, so the source learns the session's
// worst reception quality with O(zones) rather than O(receivers)
// reports.

// rrInfo is one heard subtree summary.
type rrInfo struct {
	loss    float64
	members uint32
}

// SetLocalLossReport publishes this member's own reception quality: the
// fraction of original packets it lost in transit (before repair).
func (m *Manager) SetLocalLossReport(frac float64) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	m.rrLocal = frac
	m.rrSet = true
}

// recordReport stores a heard subtree summary for the scope it arrived
// on.
func (m *Manager) recordReport(z scoping.ZoneID, msg *packet.Session) {
	if msg.RRMembers == 0 {
		return
	}
	per := m.heardRR[z]
	if per == nil {
		per = make(map[topology.NodeID]rrInfo)
		m.heardRR[z] = per
	}
	per[msg.Origin] = rrInfo{loss: msg.RRWorstLoss, members: msg.RRMembers}
}

// reportFor computes the summary this member attaches to a message
// scoped to z: its own report plus the aggregates of every zone below z
// that it heads.
func (m *Manager) reportFor(z scoping.ZoneID) (loss float64, members uint32) {
	if m.rrSet {
		loss, members = m.rrLocal, 1
	}
	for _, c := range m.chain {
		if c == z || m.zcrOf(c) != m.node {
			continue
		}
		if !m.net.Hierarchy().IsAncestor(z, c) {
			continue
		}
		for origin, ri := range m.heardRR[c] {
			if origin == m.node {
				continue
			}
			if ri.loss > loss {
				loss = ri.loss
			}
			members += ri.members
		}
	}
	return loss, members
}

// ReportersHeard returns how many distinct origins have contributed a
// summary at scope z — the announcement load at that level.
func (m *Manager) ReportersHeard(z scoping.ZoneID) int { return len(m.heardRR[z]) }

// AggregatedReport returns this member's view of zone z's reception
// quality: the worst loss fraction reported by any summarized subtree
// and the number of receivers covered. The source calls this on the
// root zone for a session-wide view.
func (m *Manager) AggregatedReport(z scoping.ZoneID) (worstLoss float64, members uint32) {
	if m.rrSet && m.net.Hierarchy().Contains(z, m.node) {
		worstLoss, members = m.rrLocal, 1
	}
	for origin, ri := range m.heardRR[z] {
		if origin == m.node {
			continue
		}
		if ri.loss > worstLoss {
			worstLoss = ri.loss
		}
		members += ri.members
	}
	return worstLoss, members
}
