package session

import (
	"testing"

	"sharqfec/internal/eventq"
	"sharqfec/internal/scoping"
	"sharqfec/internal/topology"
)

// TestAggregatedReportEmptyRun: a session where nobody ever publishes a
// loss report must aggregate to zero everywhere — no phantom members, no
// reporters heard — because summaries with RRMembers == 0 are never
// recorded.
func TestAggregatedReportEmptyRun(t *testing.T) {
	spec := twoLevelChain()
	h := newHarness(t, spec, 50)
	h.startAll(20)
	for _, n := range spec.Members() {
		for z := scoping.ZoneID(0); z < 2; z++ {
			worst, members := h.mgrs[n].AggregatedReport(z)
			if worst != 0 || members != 0 {
				t.Fatalf("node %d zone %d: empty run aggregated (%v, %d), want (0, 0)", n, z, worst, members)
			}
			if heard := h.mgrs[n].ReportersHeard(z); heard != 0 {
				t.Fatalf("node %d zone %d: heard %d reporters with no reports published", n, z, heard)
			}
		}
	}
}

// TestAggregatedReportSingleZone: with only the root zone there is no
// hierarchy to fold through — every receiver's summary arrives at the
// source directly, so the announcement load equals the receiver count
// (the exact O(receivers) behavior scoping exists to avoid) while the
// aggregate still covers everyone and tracks the worst report.
func TestAggregatedReportSingleZone(t *testing.T) {
	spec := topology.Chain(5, 10e6, 0.010, 0)
	h := newHarness(t, spec, 51)
	h.net.Q.At(1, func(eventq.Time) {
		for _, member := range spec.Members() {
			h.mgrs[member].Start(member == spec.Source)
		}
	})
	h.net.Q.At(2, func(eventq.Time) {
		for _, r := range spec.Receivers {
			h.mgrs[r].SetLocalLossReport(float64(r) / 100)
		}
	})
	h.net.Q.RunUntil(20)

	worst, members := h.mgrs[spec.Source].AggregatedReport(0)
	if worst != 0.04 {
		t.Fatalf("flat session worst = %v, want node 4's 0.04", worst)
	}
	if int(members) != len(spec.Receivers) {
		t.Fatalf("flat session covers %d members, want %d", members, len(spec.Receivers))
	}
	if heard := h.mgrs[spec.Source].ReportersHeard(0); heard != len(spec.Receivers) {
		t.Fatalf("flat session: source heard %d reporters, want every one of %d", heard, len(spec.Receivers))
	}
}

// TestAggregatedReportAllLossesUnrecovered: when every receiver reports
// total loss the aggregate must saturate at exactly 1.0 — the clamp in
// SetLocalLossReport and the max-fold in reportFor may not push it
// beyond — while still counting every member.
func TestAggregatedReportAllLossesUnrecovered(t *testing.T) {
	spec := twoLevelChain()
	h := newHarness(t, spec, 52)
	h.net.Q.At(1, func(eventq.Time) {
		for _, member := range spec.Members() {
			h.mgrs[member].Start(member == spec.Source)
		}
	})
	h.net.Q.At(2, func(eventq.Time) {
		for _, r := range spec.Receivers {
			h.mgrs[r].SetLocalLossReport(2.0) // clamps to 1.0
		}
	})
	h.net.Q.RunUntil(20)

	worst, members := h.mgrs[spec.Source].AggregatedReport(0)
	if worst != 1.0 {
		t.Fatalf("all-lost session worst = %v, want exactly 1.0", worst)
	}
	if int(members) != len(spec.Receivers) {
		t.Fatalf("all-lost session covers %d members, want %d", members, len(spec.Receivers))
	}
	// The child-zone view from inside the zone agrees: node 1 heads zone
	// 1 and folds its subtree without double-counting itself.
	worst, members = h.mgrs[1].AggregatedReport(1)
	if worst != 1.0 || int(members) != 3 {
		t.Fatalf("zone-1 ZCR aggregate = (%v, %d), want (1.0, 3)", worst, members)
	}
}

// TestReportForSelfOnly: a member that heads no zones contributes
// exactly its own report at any scope — no subtree folding.
func TestReportForSelfOnly(t *testing.T) {
	spec := twoLevelChain()
	h := newHarness(t, spec, 53)
	h.startAll(10)
	m := h.mgrs[3] // leaf, never a ZCR on this chain
	loss, members := m.reportFor(0)
	if loss != 0 || members != 0 {
		t.Fatalf("unset report published (%v, %d), want (0, 0)", loss, members)
	}
	m.SetLocalLossReport(0.25)
	loss, members = m.reportFor(0)
	if loss != 0.25 || members != 1 {
		t.Fatalf("self-only report = (%v, %d), want (0.25, 1)", loss, members)
	}
}
