package session

import (
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/topology"
)

// RTTToChainZCR returns this node's composed RTT estimate to the ZCR of
// chain level idx (0 = leaf zone's ZCR), built by "adding the observed
// RTTs between successive generations" (§5 rules). The second result
// reports whether every hop of the composition is known.
func (m *Manager) RTTToChainZCR(idx int) (float64, bool) {
	if idx < 0 || idx >= len(m.chain) {
		return 0, false
	}
	total := 0.0
	prev := m.node
	for i := 0; i <= idx; i++ {
		z := m.zcrOf(m.chain[i])
		if z == topology.NoNode {
			return 0, false
		}
		if z == prev {
			continue // we (or the previous hop's ZCR) also head this zone
		}
		hop, ok := m.hopRTT(prev, z)
		if !ok {
			return 0, false
		}
		total += hop
		prev = z
	}
	return total, true
}

// hopRTT returns the RTT between from and to using the direct table (when
// from is this node) or the recorded ZCR link tables.
func (m *Manager) hopRTT(from, to topology.NodeID) (float64, bool) {
	if from == m.node {
		if rtt, ok := m.DirectRTT(to); ok {
			return rtt, true
		}
		return 0, false
	}
	if links := m.zcrLink[from]; links != nil {
		if rtt, ok := links[to]; ok {
			return rtt, true
		}
	}
	// Links are announced symmetrically often enough to try the reverse
	// direction too.
	if links := m.zcrLink[to]; links != nil {
		if rtt, ok := links[from]; ok {
			return rtt, true
		}
	}
	return 0, false
}

// AncestorList builds the (ZCR, RTT) entries a node attaches to outgoing
// NACKs: its estimate of the distance to each of the parent ZCRs that
// will hear the message (§5 rules). Unknown levels are omitted.
func (m *Manager) AncestorList() []packet.AncestorRTT {
	var out []packet.AncestorRTT
	for i := range m.chain {
		z := m.zcrOf(m.chain[i])
		if z == topology.NoNode || z == m.node {
			continue
		}
		if rtt, ok := m.RTTToChainZCR(i); ok {
			out = append(out, packet.AncestorRTT{ZCR: z, RTT: rtt})
		}
	}
	return out
}

// EstimateRTT estimates the RTT between this node and sender, using the
// direct table when the sender is a known peer and otherwise composing
// through sibling ZCRs with the sender-supplied ancestor list, exactly
// the Figure-6 construction. The boolean reports whether any estimate
// could be formed.
func (m *Manager) EstimateRTT(sender topology.NodeID, ancestors []packet.AncestorRTT) (float64, bool) {
	if sender == m.node {
		return 0, true
	}
	if rtt, ok := m.DirectRTT(sender); ok {
		return rtt, true
	}
	// Walk the sender's ancestors from the smallest scope outward; the
	// first join point gives the most local (most accurate) composition.
	for _, a := range ancestors {
		// Case 1: we know the sender's ancestor ZCR directly.
		if rtt, ok := m.DirectRTT(a.ZCR); ok {
			return rtt + a.RTT, true
		}
		// Case 2: the ancestor is one of our own chain ZCRs.
		for i := range m.chain {
			if m.zcrOf(m.chain[i]) == a.ZCR {
				if mine, ok := m.RTTToChainZCR(i); ok {
					return mine + a.RTT, true
				}
			}
		}
		// Case 3: one of our chain ZCRs has announced an RTT to the
		// sender's ancestor (sibling ZCRs heard in a shared parent
		// zone — receiver 13's path to receiver 8 in Figure 6).
		for i := range m.chain {
			z := m.zcrOf(m.chain[i])
			if z == topology.NoNode {
				continue
			}
			link, ok := m.hopRTT(z, a.ZCR)
			if !ok {
				continue
			}
			mine, ok := m.RTTToChainZCR(i)
			if !ok {
				if z == m.node {
					mine = 0
					ok = true
				}
			}
			if ok {
				return mine + link + a.RTT, true
			}
		}
	}
	return 0, false
}

// Dist returns the one-way distance estimate to peer (RTT/2), falling
// back to the configured default when nothing is known. Protocol timers
// are specified in terms of one-way transit times d_{S,A}.
func (m *Manager) Dist(peer topology.NodeID, ancestors []packet.AncestorRTT) float64 {
	if rtt, ok := m.EstimateRTT(peer, ancestors); ok && rtt > 0 {
		return rtt / 2
	}
	return m.cfg.DefaultDist
}

// MostDistantRTT returns the largest known RTT between this node and any
// member of zone z: direct estimates for participants heard at that
// scope, extended through child-zone ZCR link tables for obscured
// members. ZCRs use 2.5× this value to time their ZLC measurement (§4).
func (m *Manager) MostDistantRTT(z scoping.ZoneID) float64 {
	max := 0.0
	for peer := range m.heardAt[z] {
		if rtt, ok := m.DirectRTT(peer); ok && rtt > max {
			max = rtt
		}
	}
	for _, child := range m.net.Hierarchy().Children(z) {
		czcr := m.zcrOf(child)
		if czcr == topology.NoNode {
			continue
		}
		base, ok := m.DirectRTT(czcr)
		if !ok {
			continue
		}
		far := 0.0
		for _, rtt := range m.zcrLink[czcr] {
			if rtt > far {
				far = rtt
			}
		}
		if base+far > max {
			max = base + far
		}
	}
	if max == 0 {
		max = 2 * m.cfg.DefaultDist
	}
	return max
}
