package telemetry

import (
	"fmt"
	"sort"
	"sync/atomic"

	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/topology"
)

// DecodeLatencyBounds are the histogram buckets (seconds) for FEC group
// decode latency — first share seen to successful reconstruction.
var DecodeLatencyBounds = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5}

// RTTSampleBounds are the histogram buckets (seconds) for echo-based
// RTT samples.
var RTTSampleBounds = []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25}

// RecoveryLatencyBounds are the histogram buckets (seconds) for
// end-to-end loss-recovery latency — loss detected to group decoded.
// Recovery spans a full NACK/repair round trip (possibly several, with
// back-off), so the buckets reach further than DecodeLatencyBounds.
var RecoveryLatencyBounds = []float64{0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5, 10, 20}

const numPktTypes = int(packet.TypeZCRTakeover) + 1

// zoneCells holds one zone's hot counters, resolved to registry
// pointers at construction so event handling is lock-free.
type zoneCells struct {
	deliveredPkts  [numPktTypes]*Counter
	deliveredBytes [numPktTypes]*Counter
	sentPkts       [numPktTypes]*Counter
	nacksSent      *Counter
	nacksSupp      *Counter
	repairsSent    *Counter
	repairsInj     *Counter
	losses         *Counter
	decoded        *Counter
	escalations    *Counter
	elections      *Counter
	unrecovered    *Counter
	decodeLat      *Histogram

	// Rate-control gauges, set from controller_decision events: the
	// predictor state (predicted zone loss count) and the last decided
	// injection size for the zone. Gauges rather than counters so the
	// sampled time series traces the predictor trajectory.
	predZLC *Gauge
	ctrlH   *Gauge
}

// Metrics subscribes a Registry to a Bus, attributing each event to its
// zone:
//
//   - transport events (sent / delivered packets and bytes) to the
//     multicast's scope zone — the administrative scope the packet was
//     addressed to, which is what the paper's localization claims count;
//   - NACKs sent, repairs sent and preemptive injections to the scope
//     zone they were addressed to;
//   - losses detected, suppressions, decodes and escalations to the
//     observing node's leaf zone (they are local observations);
//   - drops (loss / tail / fault) to network-wide counters.
//
// The per-zone counter cells are pre-created for every zone of the
// hierarchy, so the sink path performs only bounds checks and atomic
// adds — no map lookups, no locks, no allocation.
type Metrics struct {
	Reg *Registry
	h   *scoping.Hierarchy

	zones []zoneCells
	leaf  []scoping.ZoneID // node → leaf zone, precomputed

	lossDrops  *Counter
	tailDrops  *Counter
	faultDrops *Counter
	faults     *Counter
	rttSamples *Histogram

	// Rate-control totals: decision count, and the largest per-group
	// injection size any decision owed (the budget-compliance witness).
	// ctrlMaxH is a monotonic atomic max because udpmesh drives one
	// emitting goroutine per node over a shared bus.
	ctrlDecisions *Counter
	ctrlMaxH      atomic.Int64

	// Recovery-latency histograms, fed by the span assembler via
	// ObserveRecovery rather than from raw events (a recovery span only
	// exists once causally stitched). Created lazily so runs without
	// span tracing keep their registry contents identical to before.
	recoveryAll   *Histogram
	recoveryZone  map[scoping.ZoneID]*Histogram
	recoveryLevel map[int]*Histogram
}

// NewMetrics builds the bridge for hierarchy h over reg (a fresh
// registry when nil) and returns it; attach its Sink to a Bus to start
// counting.
func NewMetrics(reg *Registry, h *scoping.Hierarchy, numNodes int) *Metrics {
	if reg == nil {
		reg = NewRegistry()
	}
	m := &Metrics{
		Reg:        reg,
		h:          h,
		zones:      make([]zoneCells, h.NumZones()),
		leaf:       make([]scoping.ZoneID, numNodes),
		lossDrops:  reg.Counter(Key{Name: "loss_drops", Node: topology.NoNode, Zone: scoping.NoZone}),
		tailDrops:  reg.Counter(Key{Name: "tail_drops", Node: topology.NoNode, Zone: scoping.NoZone}),
		faultDrops: reg.Counter(Key{Name: "fault_drops", Node: topology.NoNode, Zone: scoping.NoZone}),
		faults:     reg.Counter(Key{Name: "fault_events", Node: topology.NoNode, Zone: scoping.NoZone}),
		rttSamples: reg.Histogram(Key{Name: "rtt_sample_s", Node: topology.NoNode, Zone: scoping.NoZone}, RTTSampleBounds),
	}
	m.ctrlDecisions = reg.Counter(Key{Name: "controller_decisions", Node: topology.NoNode, Zone: scoping.NoZone})
	for n := range m.leaf {
		m.leaf[n] = h.LeafZone(topology.NodeID(n))
	}
	for z := range m.zones {
		zone := scoping.ZoneID(z)
		zk := func(name string) Key {
			return Key{Name: name, Node: topology.NoNode, Zone: zone}
		}
		cells := &m.zones[z]
		for t := 1; t < numPktTypes; t++ {
			pk := Key{Name: "delivered_pkts", Node: topology.NoNode, Zone: zone, Pkt: packet.Type(t)}
			cells.deliveredPkts[t] = reg.Counter(pk)
			pk.Name = "delivered_bytes"
			cells.deliveredBytes[t] = reg.Counter(pk)
			pk.Name = "sent_pkts"
			cells.sentPkts[t] = reg.Counter(pk)
		}
		cells.nacksSent = reg.Counter(zk("nacks_sent"))
		cells.nacksSupp = reg.Counter(zk("nacks_suppressed"))
		cells.repairsSent = reg.Counter(zk("repairs_sent"))
		cells.repairsInj = reg.Counter(zk("repairs_injected"))
		cells.losses = reg.Counter(zk("losses_detected"))
		cells.decoded = reg.Counter(zk("groups_decoded"))
		cells.escalations = reg.Counter(zk("scope_escalations"))
		cells.elections = reg.Counter(zk("zcr_elections"))
		cells.unrecovered = reg.Counter(zk("losses_unrecovered"))
		cells.decodeLat = reg.Histogram(zk("decode_latency_s"), DecodeLatencyBounds)
		cells.predZLC = reg.Gauge(zk("pred_zlc"))
		cells.ctrlH = reg.Gauge(zk("ctrl_h"))
	}
	return m
}

// cellsFor returns the zone cells for z, or nil when z is out of range
// (NoZone events, or a shrunk hierarchy after membership churn).
func (m *Metrics) cellsFor(z scoping.ZoneID) *zoneCells {
	if z < 0 || int(z) >= len(m.zones) {
		return nil
	}
	return &m.zones[z]
}

// leafOf returns the node's leaf-zone cells, or nil.
func (m *Metrics) leafOf(n topology.NodeID) *zoneCells {
	if n < 0 || int(n) >= len(m.leaf) {
		return nil
	}
	return m.cellsFor(m.leaf[n])
}

// Sink returns the counting sink for Bus.Attach.
func (m *Metrics) Sink() Sink {
	return func(e Event) {
		switch e.Kind {
		case KindPacketSent:
			if c := m.cellsFor(e.Zone); c != nil && e.A > 0 && int(e.A) < numPktTypes {
				c.sentPkts[e.A].Inc()
			}
		case KindPacketDelivered:
			if c := m.cellsFor(e.Zone); c != nil && e.A > 0 && int(e.A) < numPktTypes {
				c.deliveredPkts[e.A].Inc()
				c.deliveredBytes[e.A].Add(e.B)
			}
		case KindNACKSent:
			if c := m.cellsFor(e.Zone); c != nil {
				c.nacksSent.Inc()
			}
		case KindNACKSuppressed:
			if c := m.leafOf(e.Node); c != nil {
				c.nacksSupp.Inc()
			}
		case KindRepairSent:
			if c := m.cellsFor(e.Zone); c != nil {
				c.repairsSent.Inc()
			}
		case KindRepairInjected:
			if c := m.cellsFor(e.Zone); c != nil {
				c.repairsInj.Add(e.A)
			}
		case KindLossDetected:
			if c := m.leafOf(e.Node); c != nil {
				c.losses.Inc()
			}
		case KindGroupDecoded:
			if c := m.leafOf(e.Node); c != nil {
				c.decoded.Inc()
				c.decodeLat.Observe(e.F)
			}
		case KindScopeEscalated:
			if c := m.leafOf(e.Node); c != nil {
				c.escalations.Inc()
			}
		case KindLossUnrecovered:
			if c := m.leafOf(e.Node); c != nil {
				c.unrecovered.Inc()
			}
		case KindZCRElected:
			if c := m.cellsFor(e.Zone); c != nil {
				c.elections.Inc()
			}
		case KindRTTSample:
			m.rttSamples.Observe(e.F)
		case KindPacketLost:
			m.lossDrops.Inc()
		case KindTailDrop:
			m.tailDrops.Inc()
		case KindFaultDrop:
			m.faultDrops.Inc()
		case KindFault:
			m.faults.Inc()
		case KindControllerDecision:
			if c := m.cellsFor(e.Zone); c != nil {
				c.predZLC.Set(e.F)
				c.ctrlH.Set(float64(e.A))
			}
			m.ctrlDecisions.Inc()
			for {
				cur := m.ctrlMaxH.Load()
				if e.A <= cur || m.ctrlMaxH.CompareAndSwap(cur, e.A) {
					break
				}
			}
		case KindHealthAlert:
			m.healthEvent("health_alerts", e.Zone)
		case KindHealthClear:
			m.healthEvent("health_clears", e.Zone)
		}
	}
}

// NACKsSent returns the total NACK transmissions across all zones.
func (m *Metrics) NACKsSent() int64 {
	var t int64
	for z := range m.zones {
		t += m.zones[z].nacksSent.Value()
	}
	return t
}

// RepairsSent returns the total repair transmissions across all zones
// (injections included — they are sent repairs too).
func (m *Metrics) RepairsSent() int64 {
	var t int64
	for z := range m.zones {
		t += m.zones[z].repairsSent.Value()
	}
	return t
}

// RepairLocalization returns how many repair packets were delivered
// under a non-root scope versus the root scope — the paper's repair-
// localization measurement, counted from deliveries like the §6
// figures.
func (m *Metrics) RepairLocalization() (local, global int64) {
	for z := range m.zones {
		n := m.zones[z].deliveredPkts[packet.TypeRepair].Value()
		if m.h.Level(scoping.ZoneID(z)) > 0 {
			local += n
		} else {
			global += n
		}
	}
	return local, global
}

// SuppressionRatio returns suppressed/(suppressed+sent) NACKs over the
// whole session (0 when no NACK activity).
func (m *Metrics) SuppressionRatio() float64 {
	var sent, supp int64
	for z := range m.zones {
		sent += m.zones[z].nacksSent.Value()
		supp += m.zones[z].nacksSupp.Value()
	}
	if sent+supp == 0 {
		return 0
	}
	return float64(supp) / float64(sent+supp)
}

// ControllerDecisions returns how many rate-control decisions were
// published.
func (m *Metrics) ControllerDecisions() int64 { return m.ctrlDecisions.Value() }

// ControllerMaxH returns the largest per-group injection size any
// decision owed (0 when no decision ever owed shares) — the witness a
// budgeted policy stayed within its cap.
func (m *Metrics) ControllerMaxH() int64 { return m.ctrlMaxH.Load() }

// healthEvent counts one health transition, session-wide and (when the
// alert names a zone) per zone. Counters are created lazily through the
// registry — alerts are rare transitions, and runs without an SLO keep
// their registry contents byte-identical to before.
func (m *Metrics) healthEvent(name string, z scoping.ZoneID) {
	m.Reg.Counter(Key{Name: name, Node: topology.NoNode, Zone: scoping.NoZone}).Inc()
	if z != scoping.NoZone {
		m.Reg.Counter(Key{Name: name, Node: topology.NoNode, Zone: z}).Inc()
	}
}

// FaultDrops returns the fault-drop total.
func (m *Metrics) FaultDrops() int64 { return m.faultDrops.Value() }

// LossesUnrecovered returns the total terminal unrecovered-loss events
// across all zones.
func (m *Metrics) LossesUnrecovered() int64 {
	var t int64
	for z := range m.zones {
		t += m.zones[z].unrecovered.Value()
	}
	return t
}

// ObserveRecovery records one recovered span's end-to-end latency:
// always into the session-wide "recovery_latency_s" histogram, and —
// when the span has a blame zone — into that zone's histogram and its
// level's histogram. Not safe for concurrent use (the span assembler is
// a single-threaded simulator sink).
func (m *Metrics) ObserveRecovery(zone scoping.ZoneID, level int, latency float64) {
	if m.recoveryAll == nil {
		m.recoveryAll = m.Reg.Histogram(
			Key{Name: "recovery_latency_s", Node: topology.NoNode, Zone: scoping.NoZone},
			RecoveryLatencyBounds)
		m.recoveryZone = make(map[scoping.ZoneID]*Histogram)
		m.recoveryLevel = make(map[int]*Histogram)
	}
	m.recoveryAll.Observe(latency)
	if zone == scoping.NoZone {
		return
	}
	zh := m.recoveryZone[zone]
	if zh == nil {
		zh = m.Reg.Histogram(
			Key{Name: "recovery_latency_s", Node: topology.NoNode, Zone: zone},
			RecoveryLatencyBounds)
		m.recoveryZone[zone] = zh
	}
	zh.Observe(latency)
	if level < 0 {
		return
	}
	lh := m.recoveryLevel[level]
	if lh == nil {
		lh = m.Reg.Histogram(
			Key{Name: fmt.Sprintf("recovery_latency_l%d_s", level), Node: topology.NoNode, Zone: scoping.NoZone},
			RecoveryLatencyBounds)
		m.recoveryLevel[level] = lh
	}
	lh.Observe(latency)
}

// recoveryQuantiles maps the exported gauge suffix to its quantile.
var recoveryQuantiles = []struct {
	suffix string
	q      float64
}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}}

// FinishRecovery freezes p50/p95/p99 gauges next to every recovery
// histogram so the Prometheus export carries the percentiles directly.
// Call once at end of run; a no-op when no recoveries were observed.
func (m *Metrics) FinishRecovery() {
	if m.recoveryAll == nil {
		return
	}
	set := func(name string, zone scoping.ZoneID, h *Histogram) {
		for _, rq := range recoveryQuantiles {
			k := Key{Name: name + "_" + rq.suffix + "_s", Node: topology.NoNode, Zone: zone}
			m.Reg.Gauge(k).Set(h.Quantile(rq.q))
		}
	}
	set("recovery_latency", scoping.NoZone, m.recoveryAll)
	zones := make([]scoping.ZoneID, 0, len(m.recoveryZone))
	for z := range m.recoveryZone {
		zones = append(zones, z)
	}
	sort.Slice(zones, func(i, j int) bool { return zones[i] < zones[j] })
	for _, z := range zones {
		set("recovery_latency", z, m.recoveryZone[z])
	}
	levels := make([]int, 0, len(m.recoveryLevel))
	for l := range m.recoveryLevel {
		levels = append(levels, l)
	}
	sort.Ints(levels)
	for _, l := range levels {
		set(fmt.Sprintf("recovery_latency_l%d", l), scoping.NoZone, m.recoveryLevel[l])
	}
}
