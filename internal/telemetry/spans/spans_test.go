package spans

import (
	"bytes"
	"encoding/json"
	"testing"

	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/telemetry"
	"sharqfec/internal/topology"
)

// preamble feeds the assembler a three-level hierarchy: root z0 {1,2,3},
// child z1 (level 1), grandchild z2 (level 2) holding nodes 1 and 2.
func preamble(sink telemetry.Sink) {
	sink(telemetry.Event{Kind: telemetry.KindZoneInfo, Node: topology.NoNode, Zone: 0, Group: -1, A: -1, B: 0})
	sink(telemetry.Event{Kind: telemetry.KindZoneInfo, Node: topology.NoNode, Zone: 1, Group: -1, A: 0, B: 1})
	sink(telemetry.Event{Kind: telemetry.KindZoneInfo, Node: topology.NoNode, Zone: 2, Group: -1, A: 1, B: 2})
	for _, n := range []topology.NodeID{1, 2} {
		sink(telemetry.Event{Kind: telemetry.KindZoneMember, Node: n, Zone: 2, Group: -1})
	}
	sink(telemetry.Event{Kind: telemetry.KindZoneMember, Node: 3, Zone: 0, Group: -1})
}

func repairDelivered(t float64, node topology.NodeID, group int64, zone scoping.ZoneID,
	origin topology.NodeID, hops int64) telemetry.Event {
	return telemetry.Event{
		T: t, Kind: telemetry.KindPacketDelivered, Node: node, Zone: zone, Group: group,
		A: int64(packet.TypeRepair), Origin: origin, Hops: hops,
	}
}

func TestZoneViewFromPreamble(t *testing.T) {
	a := NewAssembler()
	preamble(a.Sink())
	v := a.View()
	if v.NumZones() != 3 {
		t.Fatalf("NumZones = %d, want 3", v.NumZones())
	}
	if v.Level(0) != 0 || v.Level(1) != 1 || v.Level(2) != 2 {
		t.Fatalf("levels = %d,%d,%d", v.Level(0), v.Level(1), v.Level(2))
	}
	if v.Parent(0) != scoping.NoZone || v.Parent(2) != 1 {
		t.Fatalf("parents = %v,%v", v.Parent(0), v.Parent(2))
	}
	if v.LeafZone(1) != 2 || v.LeafZone(3) != 0 || v.LeafZone(99) != scoping.NoZone {
		t.Fatal("leaf zones wrong")
	}
	if v.Level(99) != -1 || v.Level(scoping.NoZone) != -1 {
		t.Fatal("unknown zones must report level -1")
	}
}

// TestSpanARQ walks the full ARQ trajectory: loss → suppressed NACK with
// back-off → sent NACK → repair delivery → decode.
func TestSpanARQ(t *testing.T) {
	a := NewAssembler()
	sink := a.Sink()
	preamble(sink)

	sink(telemetry.Event{T: 1.0, Kind: telemetry.KindLossDetected, Node: 1, Group: 0, A: 5})
	if a.Open() != 1 {
		t.Fatalf("Open = %d, want 1", a.Open())
	}
	sink(telemetry.Event{T: 1.1, Kind: telemetry.KindNACKSuppressed, Node: 1, Group: 0, B: 2})
	sink(telemetry.Event{T: 1.2, Kind: telemetry.KindNACKSent, Node: 1, Group: 0})
	sink(telemetry.Event{T: 1.3, Kind: telemetry.KindScopeEscalated, Node: 1, Group: 0})
	sink(repairDelivered(1.4, 1, 0, 2, 2, 3))
	sink(telemetry.Event{T: 1.5, Kind: telemetry.KindGroupDecoded, Node: 1, Group: 0})

	if a.Open() != 0 || a.LossEvents() != 1 {
		t.Fatalf("Open = %d, LossEvents = %d", a.Open(), a.LossEvents())
	}
	sps := a.Spans()
	if len(sps) != 1 {
		t.Fatalf("got %d spans", len(sps))
	}
	s := sps[0]
	if !s.Recovered || s.Mechanism != MechARQ {
		t.Fatalf("mechanism = %v (recovered %v), want arq", s.Mechanism, s.Recovered)
	}
	if s.Node != 1 || s.Group != 0 || s.Seq != 5 || s.Start != 1.0 || s.End != 1.5 {
		t.Fatalf("span identity wrong: %+v", s)
	}
	if s.Latency() != 0.5 {
		t.Fatalf("latency = %v, want 0.5", s.Latency())
	}
	if s.BlameZone != 2 || s.BlameLevel != 2 || s.Repairer != 2 || s.Hops != 3 {
		t.Fatalf("blame wrong: %+v", s)
	}
	if s.NACKsSent != 1 || s.NACKsSuppressed != 1 || s.MaxBackoff != 2 || s.Escalations != 1 || s.RepairsHeard != 1 {
		t.Fatalf("tallies wrong: %+v", s)
	}
}

// TestSpanPreemptiveFEC: a repair lands before the loss is even declared
// and no NACK ever goes out — the span must classify as preemptive FEC
// and still carry the repair's blame zone.
func TestSpanPreemptiveFEC(t *testing.T) {
	a := NewAssembler()
	sink := a.Sink()
	preamble(sink)

	sink(repairDelivered(1.9, 1, 1, 1, 3, 2))
	sink(telemetry.Event{T: 2.0, Kind: telemetry.KindLossDetected, Node: 1, Group: 1, A: 17})
	sink(telemetry.Event{T: 2.3, Kind: telemetry.KindGroupDecoded, Node: 1, Group: 1})

	s := a.Spans()[0]
	if s.Mechanism != MechFEC {
		t.Fatalf("mechanism = %v, want preemptive-fec", s.Mechanism)
	}
	if s.BlameZone != 1 || s.BlameLevel != 1 || s.Repairer != 3 || s.Hops != 2 {
		t.Fatalf("blame wrong: %+v", s)
	}
}

// TestSpanCrossGroup: decode with zero repairs heard is a cross-group /
// late-data resolution and must carry no blame.
func TestSpanCrossGroup(t *testing.T) {
	a := NewAssembler()
	sink := a.Sink()
	preamble(sink)

	sink(telemetry.Event{T: 3.0, Kind: telemetry.KindLossDetected, Node: 2, Group: 2, A: 33})
	sink(telemetry.Event{T: 3.4, Kind: telemetry.KindGroupDecoded, Node: 2, Group: 2})

	s := a.Spans()[0]
	if s.Mechanism != MechData {
		t.Fatalf("mechanism = %v, want cross-group", s.Mechanism)
	}
	if s.BlameZone != scoping.NoZone || s.BlameLevel != -1 || s.Repairer != topology.NoNode || s.Hops != 0 {
		t.Fatalf("cross-group span must carry no blame: %+v", s)
	}
}

// TestBlameDeepestZone: with repairs heard under both a level-1 and a
// level-2 scope, blame goes to the deepest (smallest) one regardless of
// arrival order.
func TestBlameDeepestZone(t *testing.T) {
	for _, deepFirst := range []bool{true, false} {
		a := NewAssembler()
		sink := a.Sink()
		preamble(sink)

		sink(telemetry.Event{T: 1.0, Kind: telemetry.KindLossDetected, Node: 1, Group: 0, A: 1})
		deep := repairDelivered(1.1, 1, 0, 2, 2, 1)
		wide := repairDelivered(1.2, 1, 0, 1, 3, 4)
		if deepFirst {
			sink(deep)
			sink(wide)
		} else {
			sink(wide)
			sink(deep)
		}
		sink(telemetry.Event{T: 1.5, Kind: telemetry.KindGroupDecoded, Node: 1, Group: 0})

		s := a.Spans()[0]
		if s.BlameZone != 2 || s.BlameLevel != 2 || s.Repairer != 2 {
			t.Fatalf("deepFirst=%v: blame = z%d/l%d via n%d, want z2/l2 via n2",
				deepFirst, s.BlameZone, s.BlameLevel, s.Repairer)
		}
		if s.RepairsHeard != 2 {
			t.Fatalf("repairs heard = %d, want 2", s.RepairsHeard)
		}
	}
}

// TestMootLossAfterDecode: a loss declared after its group already
// decoded closes instantly as a recovered late-data span.
func TestMootLossAfterDecode(t *testing.T) {
	a := NewAssembler()
	sink := a.Sink()
	preamble(sink)

	sink(telemetry.Event{T: 4.0, Kind: telemetry.KindGroupDecoded, Node: 1, Group: 7})
	sink(telemetry.Event{T: 4.2, Kind: telemetry.KindLossDetected, Node: 1, Group: 7, A: 112})

	if a.Open() != 0 {
		t.Fatalf("Open = %d, want 0", a.Open())
	}
	s := a.Spans()[0]
	if !s.Recovered || !s.LateData || s.Latency() != 0 {
		t.Fatalf("moot loss span = %+v, want instant recovered late-data", s)
	}
}

// TestUnrecoveredTerminal: the explicit session-end marker closes the
// span unrecovered; a duplicate marker (crashed agent + restarted agent)
// is a no-op.
func TestUnrecoveredTerminal(t *testing.T) {
	a := NewAssembler()
	sink := a.Sink()
	preamble(sink)

	sink(telemetry.Event{T: 5.0, Kind: telemetry.KindLossDetected, Node: 2, Group: 3, A: 50})
	term := telemetry.Event{T: 9.0, Kind: telemetry.KindLossUnrecovered, Node: 2, Group: 3, A: 50, B: 1}
	sink(term)
	sink(term) // duplicate: idempotent

	if a.Open() != 0 {
		t.Fatalf("Open = %d, want 0", a.Open())
	}
	sps := a.Spans()
	if len(sps) != 1 {
		t.Fatalf("got %d spans, want 1", len(sps))
	}
	s := sps[0]
	if s.Recovered || !s.LateData || s.Mechanism != MechNone || s.End != 9.0 {
		t.Fatalf("unrecovered span = %+v", s)
	}
	// A terminal for a (node, group) never seen at all is also a no-op.
	sink(telemetry.Event{T: 9.0, Kind: telemetry.KindLossUnrecovered, Node: 3, Group: 99, A: 7})
	if len(a.Spans()) != 1 {
		t.Fatal("orphan terminal created a span")
	}
}

// TestDuplicateLossFolds: re-detection of the same (node, group, seq) —
// the agent-restart case — folds into the existing span.
func TestDuplicateLossFolds(t *testing.T) {
	a := NewAssembler()
	sink := a.Sink()
	preamble(sink)

	sink(telemetry.Event{T: 1.0, Kind: telemetry.KindLossDetected, Node: 1, Group: 0, A: 5})
	sink(telemetry.Event{T: 1.4, Kind: telemetry.KindLossDetected, Node: 1, Group: 0, A: 5})
	if a.LossEvents() != 2 || a.Open() != 1 {
		t.Fatalf("LossEvents = %d, Open = %d, want 2, 1", a.LossEvents(), a.Open())
	}
	sink(telemetry.Event{T: 2.0, Kind: telemetry.KindGroupDecoded, Node: 1, Group: 0})
	sps := a.Spans()
	if len(sps) != 1 || sps[0].DupLoss != 1 || sps[0].Start != 1.0 {
		t.Fatalf("spans = %+v, want one span from t=1.0 with DupLoss=1", sps)
	}
}

// TestCatchUpNACKsIgnored: NACK/suppression traffic for a (node, group)
// with no tracked state — a late joiner's catch-up requests — must not
// allocate state or leak into later spans.
func TestCatchUpNACKsIgnored(t *testing.T) {
	a := NewAssembler()
	sink := a.Sink()
	preamble(sink)

	sink(telemetry.Event{T: 0.5, Kind: telemetry.KindNACKSent, Node: 1, Group: 9})
	sink(telemetry.Event{T: 0.6, Kind: telemetry.KindNACKSuppressed, Node: 1, Group: 9, B: 4})
	if len(a.groups) != 0 {
		t.Fatalf("catch-up NACKs allocated %d group states", len(a.groups))
	}
	// Data-packet deliveries are ignored outright.
	sink(telemetry.Event{T: 0.7, Kind: telemetry.KindPacketDelivered, Node: 1, Group: 9,
		A: int64(packet.TypeData), Origin: 0, Hops: 2})
	if len(a.groups) != 0 {
		t.Fatal("data delivery allocated group state")
	}
}

// TestSinkSteadyStateAllocs: on the hot path — data deliveries and
// events against already-tracked groups — the assembler must not
// allocate at all.
func TestSinkSteadyStateAllocs(t *testing.T) {
	a := NewAssembler()
	sink := a.Sink()
	preamble(sink)
	sink(telemetry.Event{T: 1.0, Kind: telemetry.KindLossDetected, Node: 1, Group: 0, A: 5})
	sink(repairDelivered(1.1, 1, 0, 2, 2, 1))

	data := telemetry.Event{T: 2, Kind: telemetry.KindPacketDelivered, Node: 1, Group: 0,
		A: int64(packet.TypeData), Origin: 0, Hops: 2}
	repair := repairDelivered(2.1, 1, 0, 2, 2, 1)
	nack := telemetry.Event{T: 2.2, Kind: telemetry.KindNACKSent, Node: 1, Group: 0}
	supp := telemetry.Event{T: 2.3, Kind: telemetry.KindNACKSuppressed, Node: 1, Group: 0, B: 1}
	if n := testing.AllocsPerRun(200, func() {
		sink(data)
		sink(repair)
		sink(nack)
		sink(supp)
	}); n != 0 {
		t.Fatalf("steady-state sink allocates %.1f per 4 events, want 0", n)
	}
}

// TestPerfettoShape: the exporter emits valid Chrome trace-event JSON
// with one complete slice per span and metadata naming each track.
func TestPerfettoShape(t *testing.T) {
	a := NewAssembler()
	sink := a.Sink()
	preamble(sink)
	sink(telemetry.Event{T: 1.0, Kind: telemetry.KindLossDetected, Node: 1, Group: 0, A: 5})
	sink(repairDelivered(1.4, 1, 0, 2, 2, 3))
	sink(telemetry.Event{T: 1.5, Kind: telemetry.KindGroupDecoded, Node: 1, Group: 0})
	sink(telemetry.Event{T: 5.0, Kind: telemetry.KindLossDetected, Node: 3, Group: 1, A: 20})
	sink(telemetry.Event{T: 9.0, Kind: telemetry.KindLossUnrecovered, Node: 3, Group: 1, A: 20})

	var buf bytes.Buffer
	if err := WritePerfetto(&buf, a.Spans(), a.View()); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  int64          `json:"pid"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	slices, meta := 0, 0
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
			if ev.Dur == nil {
				t.Fatalf("slice %q has no dur", ev.Name)
			}
			if ev.Args["mechanism"] == nil {
				t.Fatalf("slice %q missing mechanism arg", ev.Name)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if slices != 2 {
		t.Fatalf("got %d slices, want 2", slices)
	}
	if meta == 0 {
		t.Fatal("no track-naming metadata events")
	}
	// The ARQ slice: ts in microseconds from a 1.0 s start, 0.5 s long.
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" && ev.Ts == 1.0*1e6 {
			if *ev.Dur != 0.5*1e6 {
				t.Fatalf("dur = %v µs, want 5e5", *ev.Dur)
			}
			if ev.Pid != 2+1 || ev.Tid != 1 {
				t.Fatalf("slice track = pid %d tid %d, want pid 3 (zone 2) tid 1", ev.Pid, ev.Tid)
			}
		}
	}
}

// TestReplayMatchesLive: the same event sequence fed live and through
// the JSONL encode/decode path must produce identical span sets.
func TestReplayMatchesLive(t *testing.T) {
	events := []telemetry.Event{
		{Kind: telemetry.KindZoneInfo, Node: topology.NoNode, Zone: 0, Group: -1, A: -1, B: 0},
		{Kind: telemetry.KindZoneInfo, Node: topology.NoNode, Zone: 1, Group: -1, A: 0, B: 1},
		{Kind: telemetry.KindZoneMember, Node: 1, Zone: 1, Group: -1},
		{T: 1.0, Kind: telemetry.KindLossDetected, Node: 1, Group: 0, A: 5},
		{T: 1.25, Kind: telemetry.KindNACKSent, Node: 1, Group: 0},
		repairDelivered(1.5, 1, 0, 1, 0, 2),
		{T: 1.75, Kind: telemetry.KindGroupDecoded, Node: 1, Group: 0},
		{T: 2.0, Kind: telemetry.KindLossDetected, Node: 1, Group: 1, A: 21},
		{T: 8.0, Kind: telemetry.KindLossUnrecovered, Node: 1, Group: 1, A: 21},
	}
	live := NewAssembler()
	var buf bytes.Buffer
	w := telemetry.NewEventWriter(&buf)
	for _, e := range events {
		live.Sink()(e)
		w.Sink()(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	replayed, err := Replay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := live.Spans(), replayed.Spans()
	if len(a) != len(b) {
		t.Fatalf("live %d spans, replay %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d diverges:\n live:   %+v\n replay: %+v", i, a[i], b[i])
		}
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	if _, err := Replay(bytes.NewReader([]byte("not json\n"))); err == nil {
		t.Fatal("Replay accepted garbage")
	}
}

func TestMechanismString(t *testing.T) {
	want := map[Mechanism]string{MechNone: "none", MechARQ: "arq", MechFEC: "preemptive-fec", MechData: "cross-group"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), s)
		}
	}
	if Mechanism(9).String() != "mechanism(9)" {
		t.Error("out-of-range mechanism string")
	}
}
