package spans

import (
	"encoding/json"
	"io"
	"strconv"

	"sharqfec/internal/scoping"
)

func itoa(n int64) string { return strconv.FormatInt(n, 10) }

// traceEvent is one Chrome trace-event object. Args is a plain map:
// encoding/json marshals map keys sorted, so output stays byte-stable
// across runs.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the Chrome trace-event JSON envelope Perfetto loads.
type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// CounterSample is one point on a Perfetto counter track: the named
// series' values at virtual time T, attached to the zone's process
// track (or the global pid-0 track when Zone is scoping.NoZone). The
// census engine's epoch history renders through these.
type CounterSample struct {
	Name   string
	Zone   scoping.ZoneID
	T      float64
	Values map[string]float64
}

// WritePerfetto renders spans as a Chrome trace-event JSON file
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing: one
// process track per leaf zone, one thread track per node, one complete
// ("X") slice per recovery span, with mechanism/blame/hop detail in the
// slice args. Virtual seconds map to trace microseconds.
func WritePerfetto(w io.Writer, sps []Span, view *ZoneView) error {
	return WritePerfettoCounters(w, sps, view, nil)
}

// WritePerfettoCounters is WritePerfetto plus counter ("C") tracks next
// to the recovery spans — one per CounterSample name/zone pair, e.g.
// the census engine's per-zone state and scheduler series.
func WritePerfettoCounters(w io.Writer, sps []Span, view *ZoneView, counters []CounterSample) error {
	const usPerSec = 1e6
	var evs []traceEvent

	// Metadata: name each zone track (pid = zone + 1; pid 0 is kept for
	// nodes outside any known zone) and each node track within it.
	pidOf := func(z scoping.ZoneID) int64 {
		if z == scoping.NoZone {
			return 0
		}
		return int64(z) + 1
	}
	type track struct{ pid, tid int64 }
	seen := map[track]bool{}
	meta := func(pid, tid int64, kind, name string) {
		evs = append(evs, traceEvent{
			Name: kind, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range sps {
		z := view.LeafZone(s.Node)
		tr := track{pidOf(z), int64(s.Node)}
		if seen[tr] {
			continue
		}
		seen[tr] = true
		if !seen[track{tr.pid, -1}] {
			seen[track{tr.pid, -1}] = true
			zoneName := "unzoned"
			if z != scoping.NoZone {
				zoneName = "zone " + itoa(int64(z)) + " (level " + itoa(int64(view.Level(z))) + ")"
			}
			meta(tr.pid, 0, "process_name", zoneName)
		}
		meta(tr.pid, tr.tid, "thread_name", "node "+itoa(tr.tid))
	}

	for _, s := range sps {
		dur := (s.End - s.Start) * usPerSec
		args := map[string]any{
			"mechanism":        s.Mechanism.String(),
			"recovered":        s.Recovered,
			"repairs_heard":    s.RepairsHeard,
			"nacks_sent":       s.NACKsSent,
			"nacks_suppressed": s.NACKsSuppressed,
		}
		if s.BlameZone != scoping.NoZone {
			args["blame_zone"] = int64(s.BlameZone)
			args["blame_level"] = s.BlameLevel
			args["repairer"] = int64(s.Repairer)
			args["hops"] = s.Hops
		}
		if s.Escalations > 0 {
			args["escalations"] = s.Escalations
		}
		if s.MaxBackoff > 0 {
			args["max_backoff"] = s.MaxBackoff
		}
		if s.LateData {
			args["late_data"] = true
		}
		if s.DupLoss > 0 {
			args["dup_loss"] = s.DupLoss
		}
		cat := s.Mechanism.String()
		evs = append(evs, traceEvent{
			Name: "g" + itoa(s.Group) + "/s" + itoa(s.Seq),
			Cat:  cat,
			Ph:   "X",
			Ts:   s.Start * usPerSec,
			Dur:  &dur,
			Pid:  pidOf(view.LeafZone(s.Node)),
			Tid:  int64(s.Node),
			Args: args,
		})
	}

	for _, c := range counters {
		pid := pidOf(c.Zone)
		if !seen[track{pid, -1}] {
			seen[track{pid, -1}] = true
			zoneName := "unzoned"
			if c.Zone != scoping.NoZone {
				zoneName = "zone " + itoa(int64(c.Zone)) + " (level " + itoa(int64(view.Level(c.Zone))) + ")"
			}
			meta(pid, 0, "process_name", zoneName)
		}
		args := make(map[string]any, len(c.Values))
		for k, v := range c.Values {
			args[k] = v
		}
		evs = append(evs, traceEvent{
			Name: c.Name, Ph: "C", Ts: c.T * usPerSec, Pid: pid, Args: args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{DisplayTimeUnit: "ms", TraceEvents: evs})
}
