// Package spans stitches the flat telemetry event stream into causal
// recovery spans: one span per detected loss, opened by
// KindLossDetected and terminated by the group's decode (or an explicit
// KindLossUnrecovered marker at session end). Each span is tagged with
// the resolving mechanism, the blame zone — the smallest scope whose
// repair traffic closed it — the hop distance from the requester to the
// repairer, and the end-to-end recovery latency on the virtual clock.
//
// The assembler is a pure Sink over the existing bus: it consumes no
// randomness and feeds nothing back into the protocol, so enabling it
// preserves the passivity guarantee of the telemetry layer. It works
// equally from a live bus or from a replayed JSONL trace (the trace
// preamble's zone_info/zone_member events carry the hierarchy), so
// cmd/sharqfec-trace reproduces the identical report offline.
package spans

import (
	"fmt"
	"sort"

	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/telemetry"
	"sharqfec/internal/topology"
)

// Mechanism says what finally resolved a recovery span.
type Mechanism uint8

const (
	// MechNone: nothing did — the span ended unrecovered.
	MechNone Mechanism = iota
	// MechARQ: the receiver NACKed and repair shares arrived.
	MechARQ
	// MechFEC: repair shares arrived without this receiver ever sending
	// a NACK — preemptive injection or a peer's request covered it.
	MechFEC
	// MechData: the group decoded from data already in hand (late
	// originals or surplus shares) with no repair traffic involved.
	MechData
)

var mechNames = [...]string{"none", "arq", "preemptive-fec", "cross-group"}

func (m Mechanism) String() string {
	if int(m) < len(mechNames) {
		return mechNames[m]
	}
	return fmt.Sprintf("mechanism(%d)", int(m))
}

// Span is one fully-assembled loss-recovery trajectory at one receiver.
type Span struct {
	Node  topology.NodeID // the receiver that detected the loss
	Group int64           // FEC group (SRM: the sequence number)
	Seq   int64           // lost sequence number
	Start float64         // loss detected (virtual seconds)
	End   float64         // decoded / declared unrecovered

	Recovered bool
	// LateData marks an unrecovered span whose original did arrive
	// (the group still fell short of k shares), and a recovered span
	// resolved after its group had already decoded (latency 0).
	LateData  bool
	Mechanism Mechanism

	// BlameZone is the smallest scope whose repair delivery closed the
	// span (scoping.NoZone when no repairs were involved); BlameLevel
	// its hierarchy level (-1 when unknown). Repairer and Hops identify
	// the sender of that repair and its routing-tree distance.
	BlameZone  scoping.ZoneID
	BlameLevel int
	Repairer   topology.NodeID
	Hops       int64

	// Per-(node, group) tallies accumulated while the span was live —
	// spans of the same group at the same receiver share the group's
	// control-plane history.
	RepairsHeard    int
	NACKsSent       int
	NACKsSuppressed int
	Escalations     int
	MaxBackoff      int64

	// DupLoss counts extra loss_detected events folded into this span
	// (re-detections after an agent restart).
	DupLoss int

	// Alerts counts health_alert events that fired while this span was
	// open — recoveries that ran under a declared SLO violation.
	Alerts int
}

// Latency returns the end-to-end recovery latency in virtual seconds.
func (s Span) Latency() float64 { return s.End - s.Start }

// Format renders the span as one stable line for reports and
// flight-recorder dumps.
func (s Span) Format() string {
	state := "unrecovered"
	if s.Recovered {
		state = s.Mechanism.String()
	}
	line := fmt.Sprintf("%10.4fs +%8.4fs n%-3d g%-3d s%-4d %-14s", s.Start, s.Latency(), s.Node, s.Group, s.Seq, state)
	if s.BlameZone != scoping.NoZone {
		line += fmt.Sprintf(" blame=z%d/l%d via n%d hops=%d", s.BlameZone, s.BlameLevel, s.Repairer, s.Hops)
	}
	line += fmt.Sprintf(" repairs=%d nacks=%d/%d", s.RepairsHeard, s.NACKsSent, s.NACKsSuppressed)
	if s.Escalations > 0 {
		line += fmt.Sprintf(" escal=%d", s.Escalations)
	}
	if s.LateData {
		line += " late-data"
	}
	if s.Alerts > 0 {
		line += fmt.Sprintf(" alerts=%d", s.Alerts)
	}
	return line
}

// ZoneView is the zone hierarchy as reconstructed from the trace
// preamble (zone_info / zone_member events), shared by live assembly
// and offline replay so both attribute blame identically.
type ZoneView struct {
	parent []scoping.ZoneID
	level  []int
	leaf   map[topology.NodeID]scoping.ZoneID
}

// NewZoneView returns an empty view; feed it preamble events via the
// assembler's sink.
func NewZoneView() *ZoneView {
	return &ZoneView{leaf: make(map[topology.NodeID]scoping.ZoneID)}
}

func (v *ZoneView) note(e telemetry.Event) {
	switch e.Kind {
	case telemetry.KindZoneInfo:
		z := int(e.Zone)
		if z < 0 {
			return
		}
		for len(v.parent) <= z {
			v.parent = append(v.parent, scoping.NoZone)
			v.level = append(v.level, -1)
		}
		v.parent[z] = scoping.ZoneID(e.A)
		v.level[z] = int(e.B)
	case telemetry.KindZoneMember:
		v.leaf[e.Node] = e.Zone
	}
}

// NumZones returns how many zones the preamble described.
func (v *ZoneView) NumZones() int { return len(v.parent) }

// Level returns the zone's hierarchy level (root = 0), or -1 when the
// zone is unknown.
func (v *ZoneView) Level(z scoping.ZoneID) int {
	if z < 0 || int(z) >= len(v.level) {
		return -1
	}
	return v.level[z]
}

// Parent returns the zone's parent (scoping.NoZone for the root or an
// unknown zone).
func (v *ZoneView) Parent(z scoping.ZoneID) scoping.ZoneID {
	if z < 0 || int(z) >= len(v.parent) {
		return scoping.NoZone
	}
	return v.parent[z]
}

// LeafZone returns the node's leaf zone (scoping.NoZone when unknown).
func (v *ZoneView) LeafZone(n topology.NodeID) scoping.ZoneID {
	if z, ok := v.leaf[n]; ok {
		return z
	}
	return scoping.NoZone
}

// key identifies the per-receiver, per-group assembly state.
type key struct {
	node  topology.NodeID
	group int64
}

// openSpan is a loss awaiting its terminal event.
type openSpan struct {
	seq    int64
	start  float64
	dup    int
	alerts int
}

// groupState accumulates one (receiver, group)'s control-plane history.
// NACK/repair events carry the group, not the individual sequence, so
// tallies are shared by every span of the group.
type groupState struct {
	open []openSpan

	nacksSent   int
	nacksSupp   int
	escalations int
	maxBackoff  int64

	repairs    int
	blame      scoping.ZoneID
	blameLevel int
	repairer   topology.NodeID
	hops       int64

	decoded   bool
	decodedAt float64
}

// Assembler consumes bus events and emits closed Spans. Attach with
// Bus.Attach(a.Sink()). Not safe for concurrent sinks — it is built for
// the single-threaded simulator (and offline replay), not the udpmesh
// live runner.
type Assembler struct {
	// Observer, when set, is called synchronously with each span as it
	// closes (the facade uses it to feed recovery-latency histograms).
	Observer func(*Span)

	view   *ZoneView
	groups map[key]*groupState
	closed []Span

	lossEvents uint64
	openCount  int
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{view: NewZoneView(), groups: make(map[key]*groupState)}
}

// View returns the zone hierarchy reconstructed from the preamble.
func (a *Assembler) View() *ZoneView { return a.view }

// LossEvents returns how many loss_detected events were consumed
// (duplicates included).
func (a *Assembler) LossEvents() uint64 { return a.lossEvents }

// Open returns how many spans are still awaiting a terminal event.
func (a *Assembler) Open() int { return a.openCount }

// Spans returns every closed span in canonical order (start time, then
// node, group, seq) — a fresh copy, safe to retain.
func (a *Assembler) Spans() []Span {
	out := make([]Span, len(a.closed))
	copy(out, a.closed)
	sort.Slice(out, func(i, j int) bool {
		x, y := out[i], out[j]
		if x.Start != y.Start {
			return x.Start < y.Start
		}
		if x.Node != y.Node {
			return x.Node < y.Node
		}
		if x.Group != y.Group {
			return x.Group < y.Group
		}
		return x.Seq < y.Seq
	})
	return out
}

// Sink returns the assembling sink for Bus.Attach.
func (a *Assembler) Sink() telemetry.Sink { return a.handle }

func (a *Assembler) handle(e telemetry.Event) {
	switch e.Kind {
	case telemetry.KindZoneInfo, telemetry.KindZoneMember:
		a.view.note(e)

	case telemetry.KindLossDetected:
		a.lossEvents++
		gs := a.ensure(e.Node, e.Group)
		for i := range gs.open {
			if gs.open[i].seq == e.A {
				gs.open[i].dup++
				return
			}
		}
		if gs.decoded {
			// The group decoded before this loss was even declared
			// (a gap discovered behind an already-complete group):
			// the span resolves instantly.
			sp := a.build(e.Node, e.Group, openSpan{seq: e.A, start: e.T}, gs, e.T, true)
			sp.LateData = true
			a.finish(sp)
			return
		}
		gs.open = append(gs.open, openSpan{seq: e.A, start: e.T})
		a.openCount++

	case telemetry.KindNACKSent:
		if gs := a.groups[key{e.Node, e.Group}]; gs != nil {
			gs.nacksSent++
		}
	case telemetry.KindNACKSuppressed:
		if gs := a.groups[key{e.Node, e.Group}]; gs != nil {
			gs.nacksSupp++
			if e.B > gs.maxBackoff {
				gs.maxBackoff = e.B
			}
		}
	case telemetry.KindScopeEscalated:
		if gs := a.groups[key{e.Node, e.Group}]; gs != nil {
			gs.escalations++
		}

	case telemetry.KindPacketDelivered:
		if e.A != int64(packet.TypeRepair) || e.Group < 0 || e.Hops <= 0 {
			return
		}
		// Repairs are tracked even before any loss is detected at this
		// receiver: preemptive FEC typically lands ahead of the LDP
		// timer that declares the loss.
		gs := a.ensure(e.Node, e.Group)
		gs.repairs++
		// Blame the deepest (smallest) scope seen carrying repairs for
		// this group; on equal depth the latest delivery wins, so the
		// blame matches the repair that completed the decode.
		if lvl := a.view.Level(e.Zone); lvl >= gs.blameLevel || gs.blame == scoping.NoZone {
			gs.blame = e.Zone
			gs.blameLevel = lvl
			gs.repairer = e.Origin
			gs.hops = e.Hops
		}

	case telemetry.KindGroupDecoded:
		gs := a.ensure(e.Node, e.Group)
		gs.decoded = true
		gs.decodedAt = e.T
		for _, o := range gs.open {
			a.finish(a.build(e.Node, e.Group, o, gs, e.T, true))
		}
		a.openCount -= len(gs.open)
		gs.open = gs.open[:0]

	case telemetry.KindHealthAlert:
		// Tag every in-flight recovery: it is now running under a
		// declared SLO violation.
		for _, gs := range a.groups {
			for i := range gs.open {
				gs.open[i].alerts++
			}
		}

	case telemetry.KindLossUnrecovered:
		gs := a.groups[key{e.Node, e.Group}]
		if gs == nil {
			return
		}
		for i := range gs.open {
			if gs.open[i].seq != e.A {
				continue
			}
			sp := a.build(e.Node, e.Group, gs.open[i], gs, e.T, false)
			sp.LateData = e.B == 1
			gs.open = append(gs.open[:i], gs.open[i+1:]...)
			a.openCount--
			a.finish(sp)
			return
		}
		// No matching open span: a crashed agent's duplicate terminal
		// for a loss the restarted agent already resolved. Idempotent.
	}
}

func (a *Assembler) ensure(n topology.NodeID, g int64) *groupState {
	k := key{n, g}
	gs := a.groups[k]
	if gs == nil {
		gs = &groupState{blame: scoping.NoZone, blameLevel: -1, repairer: topology.NoNode}
		a.groups[k] = gs
	}
	return gs
}

// build assembles the Span for one open loss from its group's state.
func (a *Assembler) build(n topology.NodeID, g int64, o openSpan, gs *groupState, end float64, recovered bool) Span {
	sp := Span{
		Node:            n,
		Group:           g,
		Seq:             o.seq,
		Start:           o.start,
		End:             end,
		Recovered:       recovered,
		BlameZone:       gs.blame,
		BlameLevel:      gs.blameLevel,
		Repairer:        gs.repairer,
		Hops:            gs.hops,
		RepairsHeard:    gs.repairs,
		NACKsSent:       gs.nacksSent,
		NACKsSuppressed: gs.nacksSupp,
		Escalations:     gs.escalations,
		MaxBackoff:      gs.maxBackoff,
		DupLoss:         o.dup,
		Alerts:          o.alerts,
	}
	if recovered {
		switch {
		case gs.repairs == 0:
			sp.Mechanism = MechData
			sp.BlameZone = scoping.NoZone
			sp.BlameLevel = -1
			sp.Repairer = topology.NoNode
			sp.Hops = 0
		case gs.nacksSent > 0:
			sp.Mechanism = MechARQ
		default:
			sp.Mechanism = MechFEC
		}
	}
	return sp
}

func (a *Assembler) finish(sp Span) {
	a.closed = append(a.closed, sp)
	if a.Observer != nil {
		a.Observer(&a.closed[len(a.closed)-1])
	}
}
