package spans

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"sharqfec/internal/telemetry"
)

// Replay feeds a JSONL event trace (as written by telemetry.EventWriter
// via sharqfec-sim -trace-events) through a fresh assembler and returns
// it. Because the trace preamble carries the zone hierarchy and every
// correlated field survives the JSONL round trip, the result is
// identical to what live assembly produced during the run.
func Replay(r io.Reader) (*Assembler, error) {
	a := NewAssembler()
	sink := a.Sink()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		e, err := telemetry.ParseEventLine(raw)
		if err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		sink(e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace line %d: %w", line, err)
	}
	return a, nil
}
