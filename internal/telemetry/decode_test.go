package telemetry

import (
	"bytes"
	"math/rand"
	"testing"

	"sharqfec/internal/scoping"
	"sharqfec/internal/topology"
)

// randomEvent draws an event over the writer's full representable range:
// every kind, sentinel and non-sentinel values for each omittable field,
// and Origin coupled to Hops the way emitters produce them.
func randomEvent(rng *rand.Rand) Event {
	e := Event{
		T:     float64(rng.Intn(100_000_000)) / 1e3, // [0, 1e5), 6 decimals exact
		Kind:  Kind(rng.Intn(int(numKinds))),
		Node:  topology.NodeID(rng.Intn(64) - 1), // includes NoNode
		Zone:  scoping.NoZone,
		Group: -1,
	}
	if rng.Intn(2) == 0 {
		e.Zone = scoping.ZoneID(rng.Intn(32))
	}
	if rng.Intn(2) == 0 {
		e.Group = int64(rng.Intn(256))
	}
	if rng.Intn(2) == 0 {
		e.Hops = int64(1 + rng.Intn(8))
		e.Origin = topology.NodeID(rng.Intn(64))
	}
	if rng.Intn(2) == 0 {
		e.A = int64(rng.Intn(1 << 20))
	}
	if rng.Intn(2) == 0 {
		e.B = int64(rng.Intn(64))
	}
	if rng.Intn(2) == 0 {
		e.F = float64(rng.Intn(1_000_000)) / 1e4
	}
	return e
}

// TestEventLineRoundTrip is the replay fidelity property: for random
// events, encode → ParseEventLine → re-encode reproduces the original
// JSONL bytes exactly, so offline span assembly sees what live assembly
// saw.
func TestEventLineRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var first, second bytes.Buffer
	w1 := NewEventWriter(&first)
	sink1 := w1.Sink()

	events := make([]Event, 500)
	for i := range events {
		events[i] = randomEvent(rng)
		sink1(events[i])
	}
	if err := w1.Flush(); err != nil {
		t.Fatal(err)
	}

	w2 := NewEventWriter(&second)
	sink2 := w2.Sink()
	lines := bytes.Split(bytes.TrimSuffix(first.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != len(events) {
		t.Fatalf("wrote %d lines, want %d", len(lines), len(events))
	}
	for i, line := range lines {
		e, err := ParseEventLine(line)
		if err != nil {
			t.Fatalf("line %d: %v (%s)", i, err, line)
		}
		if e.Kind != events[i].Kind || e.Node != events[i].Node {
			t.Fatalf("line %d decoded to kind=%v node=%v, want kind=%v node=%v",
				i, e.Kind, e.Node, events[i].Kind, events[i].Node)
		}
		sink2(e)
	}
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		a := bytes.Split(first.Bytes(), []byte("\n"))
		b := bytes.Split(second.Bytes(), []byte("\n"))
		for i := range a {
			if i >= len(b) || !bytes.Equal(a[i], b[i]) {
				t.Fatalf("re-encoded trace diverges at line %d:\n  first:  %s\n  second: %s", i, a[i], b[i])
			}
		}
		t.Fatal("re-encoded trace diverges")
	}
}

func TestParseEventLineRestoresSentinels(t *testing.T) {
	e, err := ParseEventLine([]byte(`{"t":1.5,"ev":"nack_sent","node":3}`))
	if err != nil {
		t.Fatal(err)
	}
	if e.Zone != scoping.NoZone || e.Group != -1 || e.Origin != topology.NoNode || e.Hops != 0 {
		t.Fatalf("sentinels not restored: %+v", e)
	}
	if e.T != 1.5 || e.Kind != KindNACKSent || e.Node != 3 {
		t.Fatalf("fields wrong: %+v", e)
	}
}

func TestParseEventLineErrors(t *testing.T) {
	for _, bad := range []string{
		`{"ev":"nack_sent","node":3}`,        // missing t
		`{"t":1,"node":3}`,                   // missing ev
		`{"t":1,"ev":"nack_sent"}`,           // missing node
		`{"t":1,"ev":"warp_drive","node":3}`, // unknown kind
		`{"t":1,`,                            // malformed JSON
	} {
		if _, err := ParseEventLine([]byte(bad)); err == nil {
			t.Errorf("ParseEventLine(%s) accepted, want error", bad)
		}
	}
}

func TestKindByName(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := KindByName("nope"); ok {
		t.Error("KindByName accepted an unknown name")
	}
}
