package health

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Metric names one health signal the engine can watch.
type Metric uint8

const (
	// MetricRecoveryLatency: seconds from the first loss_detected of a
	// (receiver, group) to its group_decoded; a loss_unrecovered
	// terminal observes into the overflow bucket ("worse than every
	// bound"), so a zone where nothing recovers still breaches.
	// Quantile metric, objective is an upper bound.
	MetricRecoveryLatency Metric = iota
	// MetricSuppressionRatio: suppressed/(suppressed+sent) NACKs,
	// windowed, attributed to the observing node's leaf zone. Ratio
	// metric, objective is a lower bound.
	MetricSuppressionRatio
	// MetricRepairLocality: fraction of repair deliveries under a
	// non-root scope, windowed, attributed to the receiving node's leaf
	// zone. Ratio metric, objective is a lower bound.
	MetricRepairLocality
	// MetricBudgetBurn: per controller decision, owed repair shares
	// over group size (h/k, clamped at 0), attributed to the decision's
	// target zone. Quantile metric, objective is an upper bound.
	MetricBudgetBurn

	numMetrics
)

var metricNames = [numMetrics]string{
	MetricRecoveryLatency:  "recovery_latency",
	MetricSuppressionRatio: "suppression_ratio",
	MetricRepairLocality:   "repair_locality",
	MetricBudgetBurn:       "budget_burn",
}

func (m Metric) String() string {
	if int(m) < len(metricNames) {
		return metricNames[m]
	}
	return fmt.Sprintf("metric(%d)", int(m))
}

// quantile reports whether the metric is summarized by a windowed
// quantile sketch (upper-bound objective) rather than a windowed ratio
// (lower-bound objective).
func (m Metric) quantile() bool {
	return m == MetricRecoveryLatency || m == MetricBudgetBurn
}

// Objective is one SLO line: a metric, the value it must stay on the
// healthy side of, and the multi-window burn-rate configuration. An
// objective is in violation only while BOTH the long window and the
// fast window breach — the SRE-style multi-window rule: the long window
// keeps one bad sample from paging, the fast window clears quickly once
// the signal recovers.
type Objective struct {
	Metric Metric
	// Quantile (0 < q ≤ 1) selects the sketch quantile for quantile
	// metrics; ignored for ratio metrics.
	Quantile float64
	// Value is the objective: quantile metrics must stay ≤ Value, ratio
	// metrics ≥ Value.
	Value float64
	// Window / Fast are the long and fast evaluation windows (seconds).
	Window, Fast float64
	// MinSamples is the long-window sample floor below which the
	// objective is never judged (insufficient evidence ≠ violation).
	MinSamples int64
}

// String renders the objective in canonical spec-line form.
func (o Objective) String() string {
	s := o.Metric.String()
	if o.Metric.quantile() {
		s += fmt.Sprintf(" p%g", o.Quantile*100)
	}
	op := ">="
	if o.Metric.quantile() {
		op = "<="
	}
	s += fmt.Sprintf(" %s %g window=%g fast=%g min=%d", op, o.Value, o.Window, o.Fast, o.MinSamples)
	return s
}

// breaching applies the multi-window rule to one measurement pair.
func (o Objective) breaching(long float64, nLong int64, fast float64, nFast int64) bool {
	if nLong < o.MinSamples || nFast < 1 {
		return false
	}
	if o.Metric.quantile() {
		return long > o.Value && fast > o.Value
	}
	return long < o.Value && fast < o.Value
}

// Spec is a declarative SLO: the objectives to evaluate and the
// evaluation tick. The zero Interval means 1 s.
type Spec struct {
	Objectives []Objective
	Interval   float64
}

// String renders the objectives in canonical spec-line form, one per
// line — parseable back by ParseSpec.
func (s *Spec) String() string {
	var b strings.Builder
	if s.Interval > 0 {
		fmt.Fprintf(&b, "interval %g\n", s.Interval)
	}
	for _, o := range s.Objectives {
		b.WriteString(o.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Validate checks a programmatically constructed spec the way
// ParseSpec checks the text form: finite bounds everywhere (NaN slips
// past ordinary comparisons, so each check is written to fail on it),
// quantiles in (0,1], ratio objectives in [0,1], positive windows with
// fast ≤ long, and at least one objective. Specs from ParseSpec always
// pass.
func (s *Spec) Validate() error {
	if len(s.Objectives) == 0 {
		return fmt.Errorf("health: spec declares no objectives")
	}
	if s.Interval != 0 && !(isFinite(s.Interval) && s.Interval > 0) {
		return fmt.Errorf("health: interval %g must be finite and > 0", s.Interval)
	}
	for i, o := range s.Objectives {
		if int(o.Metric) >= int(numMetrics) {
			return fmt.Errorf("health: objective %d: unknown metric %d", i, int(o.Metric))
		}
		if o.Metric.quantile() && !(isFinite(o.Quantile) && o.Quantile > 0 && o.Quantile <= 1) {
			return fmt.Errorf("health: objective %d (%s): quantile %g outside (0,1]", i, o.Metric, o.Quantile)
		}
		if !(isFinite(o.Value) && o.Value >= 0) {
			return fmt.Errorf("health: objective %d (%s): value %g must be finite and >= 0", i, o.Metric, o.Value)
		}
		if !o.Metric.quantile() && o.Value > 1 {
			return fmt.Errorf("health: objective %d (%s): %s is a fraction, objective %g > 1", i, o.Metric, o.Metric, o.Value)
		}
		if !(isFinite(o.Window) && o.Window > 0) {
			return fmt.Errorf("health: objective %d (%s): window %g must be finite and > 0", i, o.Metric, o.Window)
		}
		if o.Fast != 0 && !(isFinite(o.Fast) && o.Fast > 0) {
			return fmt.Errorf("health: objective %d (%s): fast window %g must be finite and > 0", i, o.Metric, o.Fast)
		}
		if o.Fast > o.Window {
			return fmt.Errorf("health: objective %d (%s): fast window %g exceeds long window %g", i, o.Metric, o.Fast, o.Window)
		}
		if o.MinSamples < 0 {
			return fmt.Errorf("health: objective %d (%s): negative min samples %d", i, o.Metric, o.MinSamples)
		}
	}
	return nil
}

// interval returns the effective evaluation tick.
func (s *Spec) interval() float64 {
	if s.Interval > 0 {
		return s.Interval
	}
	return 1
}

// ParseSpec reads the SLO spec format: one objective per line,
//
//	<metric> [pNN] <=|>= <value> [window=W] [fast=F] [min=N]
//
// plus an optional "interval <seconds>" directive and '#' comments.
// Metrics: recovery_latency, budget_burn (quantile, "<="),
// suppression_ratio, repair_locality (ratio, ">="). Defaults:
// window=10, fast=window/4, min=1, p95 for quantile metrics.
func ParseSpec(r io.Reader) (*Spec, error) {
	spec := &Spec{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "interval" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("slo line %d: interval takes one value", lineNo)
			}
			iv, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || !isFinite(iv) || iv <= 0 {
				return nil, fmt.Errorf("slo line %d: bad interval %q", lineNo, fields[1])
			}
			spec.Interval = iv
			continue
		}
		o, err := parseObjective(fields)
		if err != nil {
			return nil, fmt.Errorf("slo line %d: %w", lineNo, err)
		}
		spec.Objectives = append(spec.Objectives, o)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(spec.Objectives) == 0 {
		return nil, fmt.Errorf("slo spec declares no objectives")
	}
	return spec, nil
}

func parseObjective(fields []string) (Objective, error) {
	var o Objective
	m, ok := metricByName(fields[0])
	if !ok {
		return o, fmt.Errorf("unknown metric %q", fields[0])
	}
	o.Metric = m
	o.Quantile = 0.95
	o.Window = 10
	o.MinSamples = 1
	rest := fields[1:]
	if m.quantile() && len(rest) > 0 && strings.HasPrefix(rest[0], "p") {
		pct, err := strconv.ParseFloat(rest[0][1:], 64)
		if err != nil || !(pct > 0 && pct <= 100) {
			return o, fmt.Errorf("bad quantile %q (want p50..p100)", rest[0])
		}
		o.Quantile = pct / 100
		rest = rest[1:]
	}
	if len(rest) < 2 {
		return o, fmt.Errorf("missing <op> <value>")
	}
	wantOp := ">="
	if m.quantile() {
		wantOp = "<="
	}
	if rest[0] != wantOp {
		return o, fmt.Errorf("%s takes %q objectives, got %q", m, wantOp, rest[0])
	}
	v, err := strconv.ParseFloat(rest[1], 64)
	if err != nil || !isFinite(v) || v < 0 {
		return o, fmt.Errorf("bad objective value %q", rest[1])
	}
	if !m.quantile() && v > 1 {
		return o, fmt.Errorf("%s is a fraction, objective %g > 1", m, v)
	}
	o.Value = v
	fastSet := false
	for _, f := range rest[2:] {
		k, val, ok := strings.Cut(f, "=")
		if !ok {
			return o, fmt.Errorf("bad attribute %q (want key=value)", f)
		}
		switch k {
		case "window", "fast":
			w, err := strconv.ParseFloat(val, 64)
			if err != nil || !isFinite(w) || w <= 0 {
				return o, fmt.Errorf("bad %s %q", k, val)
			}
			if k == "window" {
				o.Window = w
			} else {
				o.Fast = w
				fastSet = true
			}
		case "min":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return o, fmt.Errorf("bad min %q", val)
			}
			o.MinSamples = n
		default:
			return o, fmt.Errorf("unknown attribute %q", k)
		}
	}
	if !fastSet {
		o.Fast = o.Window / 4
	}
	if o.Fast > o.Window {
		return o, fmt.Errorf("fast window %g exceeds long window %g", o.Fast, o.Window)
	}
	return o, nil
}

func metricByName(name string) (Metric, bool) {
	for m, n := range metricNames {
		if n == name {
			return Metric(m), true
		}
	}
	return 0, false
}
