package health

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"sharqfec/internal/telemetry"
)

// Replay feeds a JSONL event trace through a fresh engine under spec
// and returns the finished engine plus the health events the live run
// recorded into the trace (empty when it ran without an SLO). The
// engine ignores recorded health events during ingestion and re-derives
// its own, so comparing Emitted() against the recorded slice is the
// replay-equality gate: a live run and its trace must produce the
// identical verdict sequence.
//
// The run_info preamble event carries the live run's end time; without
// one, the last event's timestamp closes the final window instead.
func Replay(r io.Reader, spec *Spec) (*Engine, []telemetry.Event, error) {
	eng := NewEngine(spec, nil)
	sink := eng.Sink()
	var recorded []telemetry.Event
	until := 0.0
	haveRunInfo := false
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		e, err := telemetry.ParseEventLine(raw)
		if err != nil {
			return nil, nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		switch e.Kind {
		case telemetry.KindRunInfo:
			until = e.F
			haveRunInfo = true
		case telemetry.KindHealthAlert, telemetry.KindHealthClear:
			recorded = append(recorded, e)
		}
		if !haveRunInfo && e.T > until {
			until = e.T
		}
		sink(e)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("trace line %d: %w", line, err)
	}
	eng.Finish(until)
	return eng, recorded, nil
}

// SameAlerts reports whether two health event sequences are identical
// (events are flat value structs, so equality is exact).
func SameAlerts(a, b []telemetry.Event) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
