package health

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"sharqfec/internal/scoping"
	"sharqfec/internal/telemetry"
	"sharqfec/internal/topology"
)

func TestWindowSketchQuantileInterpolation(t *testing.T) {
	s := NewWindowSketch([]float64{1, 2, 4}, 8)
	// 4 samples in the (1,2] bucket at t=1.
	for i := 0; i < 4; i++ {
		s.Observe(1, 1.5)
	}
	v, n := s.Summary(1, 0.5)
	if n != 4 {
		t.Fatalf("count = %d, want 4", n)
	}
	// rank 2 of 4, all in (1,2]: 1 + 1*(2/4) = 1.5
	if v != 1.5 {
		t.Fatalf("p50 = %g, want 1.5", v)
	}
	// p100 lands at the bucket's upper bound.
	if v, _ := s.Summary(1, 1); v != 2 {
		t.Fatalf("p100 = %g, want 2", v)
	}
}

func TestWindowSketchOverflowReportsHighestBound(t *testing.T) {
	s := NewWindowSketch([]float64{1, 2, 4}, 8)
	s.Observe(1, math.Inf(1))
	s.Observe(1, 100)
	if v, n := s.Summary(1, 0.95); v != 4 || n != 2 {
		t.Fatalf("overflow summary = (%g, %d), want (4, 2)", v, n)
	}
}

func TestWindowSketchExpiry(t *testing.T) {
	s := NewWindowSketch([]float64{1}, 8) // epoch = 1s, 8 epochs
	s.Observe(0.5, 0.5)
	if _, n := s.Summary(7.9, 0.5); n != 1 {
		t.Fatalf("sample should still be in window at t=7.9, n=%d", n)
	}
	// At t=8 the epoch containing t=0.5 (epoch 0) is outside [1, 8].
	if _, n := s.Summary(8, 0.5); n != 0 {
		t.Fatalf("sample should have expired at t=8, n=%d", n)
	}
	// Ring reuse: a new sample 8 epochs later overwrites the stale slot.
	s.Observe(8.5, 0.5)
	if _, n := s.Summary(8.5, 0.5); n != 1 {
		t.Fatalf("ring slot not reused, n=%d", n)
	}
}

func TestWindowCounterExpiry(t *testing.T) {
	c := NewWindowCounter(8)
	c.Add(0.5, 3)
	c.Add(4, 2)
	if got := c.Sum(7.9); got != 5 {
		t.Fatalf("Sum(7.9) = %d, want 5", got)
	}
	if got := c.Sum(8); got != 2 {
		t.Fatalf("Sum(8) = %d, want 2 (first epoch expired)", got)
	}
	if got := c.Sum(50); got != 0 {
		t.Fatalf("Sum(50) = %d, want 0", got)
	}
}

func TestParseSpec(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(`
# comment
interval 0.5
recovery_latency p99 <= 0.25 window=20 fast=5 min=10
suppression_ratio >= 0.7
budget_burn <= 0.5
`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Interval != 0.5 || len(spec.Objectives) != 3 {
		t.Fatalf("parsed %+v", spec)
	}
	o := spec.Objectives[0]
	if o.Metric != MetricRecoveryLatency || o.Quantile != 0.99 || o.Value != 0.25 ||
		o.Window != 20 || o.Fast != 5 || o.MinSamples != 10 {
		t.Fatalf("objective 0 = %+v", o)
	}
	// Defaults: window 10, fast = window/4, min 1, p95.
	o = spec.Objectives[1]
	if o.Window != 10 || o.Fast != 2.5 || o.MinSamples != 1 {
		t.Fatalf("objective 1 defaults = %+v", o)
	}
	if spec.Objectives[2].Quantile != 0.95 {
		t.Fatalf("objective 2 quantile = %g", spec.Objectives[2].Quantile)
	}
	// Canonical String round-trips through the parser.
	spec2, err := ParseSpec(strings.NewReader(spec.String()))
	if err != nil {
		t.Fatalf("reparsing canonical form: %v", err)
	}
	if !reflect.DeepEqual(spec, spec2) {
		t.Fatalf("canonical round trip drifted:\n%+v\n%+v", spec, spec2)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"",                                  // no objectives
		"bogus_metric <= 1",                 // unknown metric
		"recovery_latency >= 1",             // wrong direction
		"suppression_ratio <= 0.5",          // wrong direction
		"suppression_ratio >= 1.5",          // ratio > 1
		"recovery_latency p0 <= 1",          // bad quantile
		"recovery_latency <= NaN",           // non-finite value
		"recovery_latency <= 1 window=-1",   // bad window
		"recovery_latency <= 1 fast=20",     // fast > window (default 10)
		"recovery_latency <= 1 bogus=1",     // unknown attribute
		"interval 0\nrecovery_latency <= 1", // bad interval
		"interval\nrecovery_latency <= 1",   // malformed interval
		"recovery_latency <= 1 min=0",       // bad min
	} {
		if _, err := ParseSpec(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// TestSpecValidate exercises the programmatic-construction path: specs
// built in code bypass ParseSpec, so Validate must apply the same
// bounds, including the NaN cases ordinary comparisons wave through.
func TestSpecValidate(t *testing.T) {
	good := func() *Spec {
		return &Spec{Objectives: []Objective{{
			Metric: MetricRecoveryLatency, Quantile: 0.95, Value: 0.5,
			Window: 10, Fast: 2.5, MinSamples: 1,
		}}}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantSub string
	}{
		{"no objectives", func(s *Spec) { s.Objectives = nil }, "no objectives"},
		{"NaN interval", func(s *Spec) { s.Interval = math.NaN() }, "interval"},
		{"Inf interval", func(s *Spec) { s.Interval = math.Inf(1) }, "interval"},
		{"negative interval", func(s *Spec) { s.Interval = -1 }, "interval"},
		{"unknown metric", func(s *Spec) { s.Objectives[0].Metric = numMetrics }, "unknown metric"},
		{"NaN quantile", func(s *Spec) { s.Objectives[0].Quantile = math.NaN() }, "quantile"},
		{"quantile > 1", func(s *Spec) { s.Objectives[0].Quantile = 1.5 }, "quantile"},
		{"NaN value", func(s *Spec) { s.Objectives[0].Value = math.NaN() }, "value"},
		{"Inf value", func(s *Spec) { s.Objectives[0].Value = math.Inf(1) }, "value"},
		{"negative value", func(s *Spec) { s.Objectives[0].Value = -0.5 }, "value"},
		{"ratio > 1", func(s *Spec) {
			s.Objectives[0] = Objective{Metric: MetricSuppressionRatio, Value: 1.5, Window: 10}
		}, "fraction"},
		{"NaN window", func(s *Spec) { s.Objectives[0].Window = math.NaN() }, "window"},
		{"zero window", func(s *Spec) { s.Objectives[0].Window = 0 }, "window"},
		{"NaN fast", func(s *Spec) { s.Objectives[0].Fast = math.NaN() }, "fast window"},
		{"fast > window", func(s *Spec) { s.Objectives[0].Fast = 20 }, "fast window"},
		{"negative min", func(s *Spec) { s.Objectives[0].MinSamples = -1 }, "min samples"},
	}
	for _, c := range cases {
		s := good()
		c.mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, s)
		} else if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.wantSub)
		}
	}
	// Everything ParseSpec emits must pass Validate.
	if err := testSpec(t).Validate(); err != nil {
		t.Errorf("parsed spec failed Validate: %v", err)
	}
}

// feedScenario drives a synthetic event stream that breaches a 1s-window
// latency objective between t≈2 and t≈5, then recovers.
func feedScenario(sink telemetry.Sink) {
	emit := func(t float64, kind telemetry.Kind, node topology.NodeID, group int64) {
		sink(telemetry.Event{T: t, Kind: kind, Node: node, Zone: scoping.NoZone,
			Group: group, Origin: topology.NoNode})
	}
	// Preamble: one zone (level 1), node 1 is its member.
	sink(telemetry.Event{Kind: telemetry.KindZoneInfo, Node: topology.NoNode,
		Zone: 0, Group: -1, A: -1, B: 0})
	sink(telemetry.Event{Kind: telemetry.KindZoneInfo, Node: topology.NoNode,
		Zone: 1, Group: -1, A: 0, B: 1})
	sink(telemetry.Event{Kind: telemetry.KindZoneMember, Node: 1, Zone: 1, Group: -1})
	g := int64(0)
	fastLoss := func(t float64) { // recovers in 50ms
		emit(t, telemetry.KindLossDetected, 1, g)
		emit(t+0.05, telemetry.KindGroupDecoded, 1, g)
		g++
	}
	slowLoss := func(t float64) { // recovers in 900ms
		emit(t, telemetry.KindLossDetected, 1, g)
		emit(t+0.9, telemetry.KindGroupDecoded, 1, g)
		g++
	}
	for t := 0.1; t < 2; t += 0.2 {
		fastLoss(t)
	}
	for t := 2.0; t < 4; t += 0.2 {
		slowLoss(t)
	}
	for t := 5.0; t < 9; t += 0.2 {
		fastLoss(t)
	}
}

func testSpec(t *testing.T) *Spec {
	t.Helper()
	spec, err := ParseSpec(strings.NewReader(
		"recovery_latency p95 <= 0.5 window=2 fast=1 min=2\n"))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestEngineAlertLifecycle(t *testing.T) {
	bus := telemetry.NewBus()
	eng := NewEngine(testSpec(t), bus)
	var seen []telemetry.Event
	bus.Attach(func(e telemetry.Event) {
		if e.Kind == telemetry.KindHealthAlert || e.Kind == telemetry.KindHealthClear {
			seen = append(seen, e)
		}
	})
	bus.Attach(eng.Sink())
	feedScenario(eng.Sink())
	eng.Finish(10)

	em := eng.Emitted()
	if len(em) == 0 {
		t.Fatal("no health events emitted")
	}
	if len(em) != len(seen) {
		t.Fatalf("bus saw %d health events, engine emitted %d", len(seen), len(em))
	}
	// Alert then clear, for both the aggregate (zone -1) and zone 1.
	var kinds []telemetry.Kind
	for _, e := range em {
		kinds = append(kinds, e.Kind)
		if e.A != 0 {
			t.Fatalf("objective index = %d, want 0", e.A)
		}
	}
	alerts, clears := 0, 0
	for _, k := range kinds {
		if k == telemetry.KindHealthAlert {
			alerts++
		} else {
			clears++
		}
	}
	if alerts != 2 || clears != 2 {
		t.Fatalf("got %d alerts, %d clears (events %v), want 2 and 2", alerts, clears, em)
	}

	rep := eng.Report()
	if rep.Passed() {
		t.Fatal("report passed despite violations")
	}
	if rep.Violations() != 2 {
		t.Fatalf("violations = %d, want 2 (aggregate + zone 1)", rep.Violations())
	}
	for _, row := range rep.Rows {
		if row.Active {
			t.Fatalf("row %+v still active after recovery", row)
		}
		for _, v := range row.Violations {
			if v.Start < 2 || v.End > 6 {
				t.Fatalf("violation window [%g, %g] outside breach period", v.Start, v.End)
			}
			if v.Witness <= 0.5 {
				t.Fatalf("witness %g does not exceed the objective", v.Witness)
			}
		}
	}
	if s := rep.String(); !strings.Contains(s, "FAIL") {
		t.Fatalf("report string lacks FAIL verdict:\n%s", s)
	}
}

func TestEngineDeterministic(t *testing.T) {
	run := func() (*Report, []telemetry.Event) {
		eng := NewEngine(testSpec(t), nil)
		feedScenario(eng.Sink())
		eng.Finish(10)
		return eng.Report(), eng.Emitted()
	}
	r1, e1 := run()
	r2, e2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("reports differ:\n%+v\n%+v", r1, r2)
	}
	if !SameAlerts(e1, e2) {
		t.Fatalf("event sequences differ:\n%v\n%v", e1, e2)
	}
}

func TestEngineIgnoresOwnAlerts(t *testing.T) {
	// An engine fed its own health events must not recurse or change
	// state: handle() drops them before locking.
	eng := NewEngine(testSpec(t), nil)
	sink := eng.Sink()
	sink(telemetry.Event{T: 1, Kind: telemetry.KindHealthAlert, Node: topology.NoNode,
		Zone: scoping.NoZone, Group: -1})
	sink(telemetry.Event{T: 2, Kind: telemetry.KindHealthClear, Node: topology.NoNode,
		Zone: scoping.NoZone, Group: -1})
	eng.Finish(3)
	if n := len(eng.Emitted()); n != 0 {
		t.Fatalf("engine emitted %d events from ingesting health events", n)
	}
}

func TestEngineActiveLines(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(
		"suppression_ratio >= 0.9 window=4 fast=1 min=1\n"))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(spec, nil)
	sink := eng.Sink()
	for i := 0; i < 8; i++ {
		sink(telemetry.Event{T: 0.2 + 0.1*float64(i), Kind: telemetry.KindNACKSent,
			Node: 1, Zone: scoping.NoZone, Group: int64(i), Origin: topology.NoNode})
	}
	// This event's arrival runs the t=1 tick, which sees 8 unsuppressed
	// NACKs in both windows and raises the alert.
	sink(telemetry.Event{T: 1.01, Kind: telemetry.KindNACKSent, Node: 1,
		Zone: scoping.NoZone, Group: 99, Origin: topology.NoNode})
	if got := eng.ActiveAlerts(); got != 1 {
		t.Fatalf("ActiveAlerts = %d, want 1 (session aggregate)", got)
	}
	lines := eng.ActiveLines()
	if len(lines) != 1 || !strings.Contains(lines[0], "suppression_ratio") {
		t.Fatalf("ActiveLines = %q", lines)
	}
}

func TestEngineSteadyStateZeroAlloc(t *testing.T) {
	spec, err := ParseSpec(strings.NewReader(
		"recovery_latency p95 <= 0.5 window=2 fast=1\n" +
			"suppression_ratio >= 0.5 window=2 fast=1\n"))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(spec, nil)
	sink := eng.Sink()
	feedScenario(sink) // warm up: zones grown, loss map sized
	now := 10.0
	g := int64(10_000)
	allocs := testing.AllocsPerRun(1000, func() {
		sink(telemetry.Event{T: now, Kind: telemetry.KindNACKSuppressed, Node: 1,
			Zone: scoping.NoZone, Group: g, Origin: topology.NoNode})
		sink(telemetry.Event{T: now + 0.01, Kind: telemetry.KindLossDetected, Node: 1,
			Zone: scoping.NoZone, Group: g, A: 1, Origin: topology.NoNode})
		sink(telemetry.Event{T: now + 0.05, Kind: telemetry.KindGroupDecoded, Node: 1,
			Zone: scoping.NoZone, Group: g, Origin: topology.NoNode})
		now += 0.1
		g++
	})
	if allocs != 0 {
		t.Fatalf("steady-state sink allocates %.1f allocs/op, want 0", allocs)
	}
}
