package health

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/telemetry"
	"sharqfec/internal/topology"
)

// instrument is one (objective, zone) measurement cell: a long/fast
// sketch pair for quantile metrics, or long/fast hit+total counter
// pairs for ratio metrics. ever counts lifetime samples so reports can
// skip zones a metric never touched.
type instrument struct {
	longSk, fastSk                     *WindowSketch
	longHit, longTot, fastHit, fastTot *WindowCounter
	ever                               int64
}

func newInstrument(o Objective) instrument {
	var in instrument
	if o.Metric.quantile() {
		bounds := telemetry.RecoveryLatencyBounds
		if o.Metric == MetricBudgetBurn {
			bounds = BudgetBurnBounds
		}
		in.longSk = NewWindowSketch(bounds, o.Window)
		in.fastSk = NewWindowSketch(bounds, o.Fast)
		return in
	}
	in.longHit = NewWindowCounter(o.Window)
	in.longTot = NewWindowCounter(o.Window)
	in.fastHit = NewWindowCounter(o.Fast)
	in.fastTot = NewWindowCounter(o.Fast)
	return in
}

// measure returns the long and fast window values and sample counts at
// evaluation time t.
func (in *instrument) measure(t float64, o Objective) (long float64, nLong int64, fast float64, nFast int64) {
	if o.Metric.quantile() {
		long, nLong = in.longSk.Summary(t, o.Quantile)
		fast, nFast = in.fastSk.Summary(t, o.Quantile)
		return
	}
	nLong = in.longTot.Sum(t)
	if nLong > 0 {
		long = float64(in.longHit.Sum(t)) / float64(nLong)
	}
	nFast = in.fastTot.Sum(t)
	if nFast > 0 {
		fast = float64(in.fastHit.Sum(t)) / float64(nFast)
	}
	return
}

// Violation is one closed (or still-open at end of run) breach window
// of an objective in a zone, with the witness measurement that raised
// the alert.
type Violation struct {
	Start, End float64
	// Witness is the long-window measurement at alert time; Samples its
	// sample count.
	Witness float64
	Samples int64
	// Ongoing marks a violation still active when the run ended.
	Ongoing bool
}

// sloState is the alert lifecycle state of one (objective, zone).
type sloState struct {
	active  bool
	since   float64
	witness float64
	samples int64
	viols   []Violation
}

// lossKey identifies an outstanding (receiver, group) loss for the
// recovery-latency metric.
type lossKey struct {
	node  topology.NodeID
	group int64
}

// Engine is the streaming health evaluator. Attach its Sink to the bus
// the run emits into; it ingests protocol events, evaluates every
// objective per zone (plus a session-wide aggregate) on a fixed virtual
// -clock tick, and emits health_alert / health_clear events back onto
// the bus at state transitions. All state is guarded by one mutex so
// the live udpmesh runner (one goroutine per node) can share it; in the
// simulator the lock is uncontended.
type Engine struct {
	mu   sync.Mutex
	spec *Spec
	bus  *telemetry.Bus

	nextEval float64
	end      float64
	done     bool

	byMetric [numMetrics][]int

	levels []int            // zone → hierarchy level, from zone_info (-1 unknown)
	leaf   []scoping.ZoneID // node → leaf zone, from zone_member

	// insts/states are [objective][zoneIdx] where zoneIdx 0 is the
	// session aggregate and z+1 is zone z. Rows grow as zones appear.
	insts  [][]instrument
	states [][]sloState

	openLoss map[lossKey]float64
	emitted  []telemetry.Event
}

// NewEngine builds an engine for spec. Alert events are emitted onto
// bus (nil for collect-only use, e.g. offline replay). The spec must
// have passed ParseSpec or be equivalently well-formed.
func NewEngine(spec *Spec, bus *telemetry.Bus) *Engine {
	e := &Engine{
		spec:     spec,
		bus:      bus,
		nextEval: spec.interval(),
		openLoss: make(map[lossKey]float64),
		insts:    make([][]instrument, len(spec.Objectives)),
		states:   make([][]sloState, len(spec.Objectives)),
	}
	for i, o := range spec.Objectives {
		e.byMetric[o.Metric] = append(e.byMetric[o.Metric], i)
		e.insts[i] = []instrument{newInstrument(o)} // session aggregate
		e.states[i] = []sloState{{}}
	}
	return e
}

// Sink returns the ingesting sink for Bus.Attach.
func (e *Engine) Sink() telemetry.Sink { return e.handle }

func (e *Engine) handle(ev telemetry.Event) {
	// The engine's own emissions fan back to every sink, including this
	// one; drop them before taking the lock (it is held while emitting).
	if ev.Kind == telemetry.KindHealthAlert || ev.Kind == telemetry.KindHealthClear {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	// Evaluate every tick boundary up to and including ev.T before
	// ingesting ev: a tick's window never sees events at or after it,
	// which makes the tick sequence a pure function of the event stream.
	e.evalTo(ev.T)
	switch ev.Kind {
	case telemetry.KindZoneInfo:
		z := int(ev.Zone)
		if z < 0 {
			return
		}
		for len(e.levels) <= z {
			e.levels = append(e.levels, -1)
		}
		e.levels[z] = int(ev.B)
		e.growZones(z)
	case telemetry.KindZoneMember:
		n := int(ev.Node)
		if n < 0 {
			return
		}
		for len(e.leaf) <= n {
			e.leaf = append(e.leaf, scoping.NoZone)
		}
		e.leaf[n] = ev.Zone

	case telemetry.KindLossDetected:
		k := lossKey{ev.Node, ev.Group}
		if _, open := e.openLoss[k]; !open {
			e.openLoss[k] = ev.T
		}
	case telemetry.KindGroupDecoded:
		k := lossKey{ev.Node, ev.Group}
		if t0, open := e.openLoss[k]; open {
			delete(e.openLoss, k)
			e.observeQuantile(MetricRecoveryLatency, e.leafOf(ev.Node), ev.T, ev.T-t0)
		}
	case telemetry.KindLossUnrecovered:
		k := lossKey{ev.Node, ev.Group}
		if _, open := e.openLoss[k]; open {
			delete(e.openLoss, k)
			// Never-recovered is worse than any latency bound: overflow.
			e.observeQuantile(MetricRecoveryLatency, e.leafOf(ev.Node), ev.T, math.Inf(1))
		}

	case telemetry.KindNACKSent:
		e.observeRatio(MetricSuppressionRatio, e.leafOf(ev.Node), ev.T, 0)
	case telemetry.KindNACKSuppressed:
		e.observeRatio(MetricSuppressionRatio, e.leafOf(ev.Node), ev.T, 1)

	case telemetry.KindPacketDelivered:
		if ev.A == int64(packet.TypeRepair) {
			hit := int64(0)
			if e.levelOf(ev.Zone) > 0 {
				hit = 1
			}
			e.observeRatio(MetricRepairLocality, e.leafOf(ev.Node), ev.T, hit)
		}

	case telemetry.KindControllerDecision:
		if ev.B > 0 {
			h := ev.A
			if h < 0 {
				h = 0
			}
			e.observeQuantile(MetricBudgetBurn, ev.Zone, ev.T, float64(h)/float64(ev.B))
		}
	}
}

func (e *Engine) leafOf(n topology.NodeID) scoping.ZoneID {
	if n < 0 || int(n) >= len(e.leaf) {
		return scoping.NoZone
	}
	return e.leaf[n]
}

func (e *Engine) levelOf(z scoping.ZoneID) int {
	if z < 0 || int(z) >= len(e.levels) {
		return -1
	}
	return e.levels[z]
}

// growZones ensures every objective has instrument/state rows for zone
// z (index z+1).
func (e *Engine) growZones(z int) {
	for o := range e.insts {
		for len(e.insts[o]) <= z+1 {
			e.insts[o] = append(e.insts[o], newInstrument(e.spec.Objectives[o]))
			e.states[o] = append(e.states[o], sloState{})
		}
	}
}

func (e *Engine) observeQuantile(m Metric, zone scoping.ZoneID, t, v float64) {
	for _, o := range e.byMetric[m] {
		in := &e.insts[o][0]
		in.longSk.Observe(t, v)
		in.fastSk.Observe(t, v)
		in.ever++
		if zone < 0 {
			continue
		}
		e.growZones(int(zone))
		in = &e.insts[o][zone+1]
		in.longSk.Observe(t, v)
		in.fastSk.Observe(t, v)
		in.ever++
	}
}

func (e *Engine) observeRatio(m Metric, zone scoping.ZoneID, t float64, hit int64) {
	for _, o := range e.byMetric[m] {
		in := &e.insts[o][0]
		in.longHit.Add(t, hit)
		in.longTot.Add(t, 1)
		in.fastHit.Add(t, hit)
		in.fastTot.Add(t, 1)
		in.ever++
		if zone < 0 {
			continue
		}
		e.growZones(int(zone))
		in = &e.insts[o][zone+1]
		in.longHit.Add(t, hit)
		in.longTot.Add(t, 1)
		in.fastHit.Add(t, hit)
		in.fastTot.Add(t, 1)
		in.ever++
	}
}

// evalTo runs every pending evaluation tick ≤ t.
func (e *Engine) evalTo(t float64) {
	for e.nextEval <= t {
		e.evaluate(e.nextEval)
		e.nextEval += e.spec.interval()
	}
}

// evaluate judges every (objective, zone) at tick time t and emits
// transition events.
func (e *Engine) evaluate(t float64) {
	for o := range e.insts {
		obj := e.spec.Objectives[o]
		for zi := range e.insts[o] {
			in := &e.insts[o][zi]
			st := &e.states[o][zi]
			if in.ever == 0 && !st.active {
				continue
			}
			long, nLong, fast, nFast := in.measure(t, obj)
			breach := obj.breaching(long, nLong, fast, nFast)
			switch {
			case breach && !st.active:
				st.active = true
				st.since = t
				st.witness = long
				st.samples = nLong
				e.emit(telemetry.KindHealthAlert, t, zi, o, nLong, long)
			case !breach && st.active:
				st.active = false
				st.viols = append(st.viols, Violation{
					Start: st.since, End: t, Witness: st.witness, Samples: st.samples,
				})
				e.emit(telemetry.KindHealthClear, t, zi, o, nLong, long)
			}
		}
	}
}

func (e *Engine) emit(kind telemetry.Kind, t float64, zi, obj int, n int64, v float64) {
	zone := scoping.NoZone
	if zi > 0 {
		zone = scoping.ZoneID(zi - 1)
	}
	ev := telemetry.Event{
		T: t, Kind: kind, Node: topology.NoNode, Zone: zone, Group: -1,
		A: int64(obj), B: n, F: v,
		Origin: topology.NoNode,
	}
	e.emitted = append(e.emitted, ev)
	e.bus.Emit(ev)
}

// Finish runs the remaining ticks through the end of the run, then a
// final end-of-run evaluation at exactly t = until (so terminal events
// emitted at the last instant — unrecovered-loss markers — are judged),
// and freezes still-active violations as ongoing. Idempotent per run;
// call exactly once, after the last protocol event.
func (e *Engine) Finish(until float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		return
	}
	e.evalTo(until)
	e.evaluate(until)
	for o := range e.states {
		for zi := range e.states[o] {
			st := &e.states[o][zi]
			if st.active {
				st.viols = append(st.viols, Violation{
					Start: st.since, End: until, Witness: st.witness,
					Samples: st.samples, Ongoing: true,
				})
			}
		}
	}
	e.end = until
	e.done = true
	// Drop the bus reference: nothing emits after Finish, and a
	// detached engine keeps reports reflect.DeepEqual-comparable
	// (bus sinks are func values, which never compare equal).
	e.bus = nil
}

// Emitted returns every health_alert / health_clear event the engine
// produced, in emission order (a copy).
func (e *Engine) Emitted() []telemetry.Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]telemetry.Event, len(e.emitted))
	copy(out, e.emitted)
	return out
}

// ActiveAlerts returns how many (objective, zone) states are currently
// in violation — the live /healthz signal.
func (e *Engine) ActiveAlerts() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for o := range e.states {
		for zi := range e.states[o] {
			if e.states[o][zi].active {
				n++
			}
		}
	}
	return n
}

// ActiveLines renders every currently-active violation as one line, for
// /healthz bodies and dashboards.
func (e *Engine) ActiveLines() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for o := range e.states {
		for zi := range e.states[o] {
			st := &e.states[o][zi]
			if !st.active {
				continue
			}
			out = append(out, fmt.Sprintf("%s %s: %g (%d samples) since t=%gs",
				zoneLabel(zi), e.spec.Objectives[o], st.witness, st.samples, st.since))
		}
	}
	return out
}

// Verdict is one (objective, zone) row of the end-of-run report.
type Verdict struct {
	// Index is the objective's position in the spec; Objective the
	// parsed line.
	Index     int
	Objective Objective
	// Zone is the judged zone, scoping.NoZone for the session
	// aggregate.
	Zone scoping.ZoneID
	// Samples counts every observation the cell ever ingested.
	Samples int64
	// Violations lists the breach windows; Active marks a violation
	// still open at end of run.
	Violations []Violation
	Active     bool
}

// Passed reports whether the row saw no violation.
func (v Verdict) Passed() bool { return len(v.Violations) == 0 }

// BreachSeconds totals the row's time in violation.
func (v Verdict) BreachSeconds() float64 {
	var s float64
	for _, viol := range v.Violations {
		s += viol.End - viol.Start
	}
	return s
}

// Report is the end-of-run health verdict: one row per objective per
// zone that ever produced a sample (plus the session aggregate).
type Report struct {
	Interval float64
	End      float64
	Rows     []Verdict
}

// Report builds the verdict table. Call after Finish.
func (e *Engine) Report() *Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := &Report{Interval: e.spec.interval(), End: e.end}
	for o := range e.insts {
		for zi := range e.insts[o] {
			in := &e.insts[o][zi]
			st := &e.states[o][zi]
			if in.ever == 0 && len(st.viols) == 0 {
				continue
			}
			zone := scoping.NoZone
			if zi > 0 {
				zone = scoping.ZoneID(zi - 1)
			}
			viols := make([]Violation, len(st.viols))
			copy(viols, st.viols)
			r.Rows = append(r.Rows, Verdict{
				Index: o, Objective: e.spec.Objectives[o], Zone: zone,
				Samples: in.ever, Violations: viols, Active: st.active,
			})
		}
	}
	return r
}

// Passed reports whether every row of the report is violation-free.
func (r *Report) Passed() bool {
	for _, row := range r.Rows {
		if !row.Passed() {
			return false
		}
	}
	return true
}

// Violations totals the breach windows across all rows.
func (r *Report) Violations() int {
	n := 0
	for _, row := range r.Rows {
		n += len(row.Violations)
	}
	return n
}

func zoneLabel(zi int) string {
	if zi == 0 {
		return "zone all"
	}
	return fmt.Sprintf("zone %d", zi-1)
}

// String renders the verdict table as a stable multi-line report.
func (r *Report) String() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Passed() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "SLO verdicts to t=%gs (tick %gs): %s — %d violations\n",
		r.End, r.Interval, verdict, r.Violations())
	last := -1
	for _, row := range r.Rows {
		if row.Index != last {
			fmt.Fprintf(&b, "  [%d] %s\n", row.Index, row.Objective)
			last = row.Index
		}
		label := "zone all"
		if row.Zone != scoping.NoZone {
			label = fmt.Sprintf("zone %-3d", row.Zone)
		}
		if row.Passed() {
			fmt.Fprintf(&b, "    %s PASS (%d samples)\n", label, row.Samples)
			continue
		}
		worst := row.Violations[0]
		for _, v := range row.Violations[1:] {
			if better(worst, v, row.Objective) {
				worst = v
			}
		}
		fmt.Fprintf(&b, "    %s FAIL — %d violations, %.1fs in breach, worst %.4g (%d samples) at t=%g..%gs",
			label, len(row.Violations), row.BreachSeconds(), worst.Witness, worst.Samples, worst.Start, worst.End)
		if row.Active {
			b.WriteString(" [ongoing]")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// better reports whether candidate v is a worse breach than cur under
// the objective's direction.
func better(cur, v Violation, o Objective) bool {
	if o.Metric.quantile() {
		return v.Witness > cur.Witness
	}
	return v.Witness < cur.Witness
}
