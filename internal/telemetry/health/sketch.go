// Package health is the streaming protocol-health engine: it attaches
// to the telemetry bus as one more passive sink, maintains per-zone
// sliding-window quantile sketches over the recovery metrics the paper
// cares about (recovery latency, NACK suppression, repair localization,
// controller budget burn), evaluates a declarative SLO spec against
// them on the virtual clock, and emits first-class health_alert /
// health_clear events back onto the bus.
//
// Everything is deterministic and fixed-memory: the sketches are rings
// of epoch-bucketed histograms (no wall clock, no randomness, no
// unbounded state), evaluation ticks are derived purely from event
// timestamps, and the engine works identically on a live bus or on a
// replayed JSONL trace — cmd/sharqfec-trace re-derives the exact
// verdict sequence offline.
package health

import (
	"math"
	"sort"
)

// epochsPerWindow is the ring resolution of every sliding window: a
// window of W seconds is covered by this many fixed epochs of W/8 each.
// Samples expire with epoch granularity — the classic fixed-memory
// sliding-window tradeoff — but expiry depends only on sample
// timestamps, so live and replayed evaluation agree exactly.
const epochsPerWindow = 8

// WindowSketch is a sliding-window quantile sketch: a ring of
// epoch-local bucketed histograms over fixed bounds. Observe and
// Summary are alloc-free after construction. Out-of-range (including
// +Inf) observations land in the implicit overflow bucket, whose
// quantile reports the highest finite bound — "at least this bad".
type WindowSketch struct {
	bounds []float64
	epoch  float64   // seconds per ring slot
	counts []uint32  // epochsPerWindow × (len(bounds)+1), row-major
	slotAt []int64   // epoch index each slot currently holds; -1 empty
	cum    []float64 // scratch for Summary, len(bounds)+1
}

// NewWindowSketch returns a sketch whose Summary covers roughly the
// last window seconds (rounded to epoch granularity).
func NewWindowSketch(bounds []float64, window float64) *WindowSketch {
	s := &WindowSketch{
		bounds: bounds,
		epoch:  window / epochsPerWindow,
		counts: make([]uint32, epochsPerWindow*(len(bounds)+1)),
		slotAt: make([]int64, epochsPerWindow),
		cum:    make([]float64, len(bounds)+1),
	}
	for i := range s.slotAt {
		s.slotAt[i] = -1
	}
	return s
}

// row returns the bucket row for the epoch containing t, clearing the
// slot when it last held an older epoch.
func (s *WindowSketch) row(t float64) []uint32 {
	ei := int64(t / s.epoch)
	slot := int(ei % epochsPerWindow)
	w := len(s.bounds) + 1
	row := s.counts[slot*w : (slot+1)*w]
	if s.slotAt[slot] != ei {
		for i := range row {
			row[i] = 0
		}
		s.slotAt[slot] = ei
	}
	return row
}

// Observe records one sample at virtual time t.
func (s *WindowSketch) Observe(t, v float64) {
	s.row(t)[sort.SearchFloat64s(s.bounds, v)]++
}

// Summary returns the q-th quantile (0 < q ≤ 1) and the sample count
// over the window ending at t. Quantiles interpolate linearly within
// the containing bucket (histogram_quantile semantics); an empty window
// returns (0, 0); ranks in the overflow bucket report the highest
// finite bound.
func (s *WindowSketch) Summary(t, q float64) (float64, int64) {
	ei := int64(t / s.epoch)
	lo := ei - epochsPerWindow + 1
	w := len(s.bounds) + 1
	for i := range s.cum {
		s.cum[i] = 0
	}
	var n int64
	for slot := 0; slot < epochsPerWindow; slot++ {
		at := s.slotAt[slot]
		if at < lo || at > ei {
			continue
		}
		row := s.counts[slot*w : (slot+1)*w]
		for i, c := range row {
			s.cum[i] += float64(c)
			n += int64(c)
		}
	}
	if n == 0 {
		return 0, 0
	}
	rank := q * float64(n)
	cum := 0.0
	for i, ub := range s.bounds {
		in := s.cum[i]
		if cum+in >= rank && in > 0 {
			low := 0.0
			if i > 0 {
				low = s.bounds[i-1]
			}
			return low + (ub-low)*(rank-cum)/in, n
		}
		cum += in
	}
	return s.bounds[len(s.bounds)-1], n
}

// WindowCounter is the ratio-metric counterpart of WindowSketch: a
// sliding-window sum with the same epoch-ring expiry semantics.
type WindowCounter struct {
	epoch  float64
	sums   [epochsPerWindow]int64
	slotAt [epochsPerWindow]int64
}

// NewWindowCounter returns a counter covering roughly the last window
// seconds.
func NewWindowCounter(window float64) *WindowCounter {
	c := &WindowCounter{epoch: window / epochsPerWindow}
	for i := range c.slotAt {
		c.slotAt[i] = -1
	}
	return c
}

// Add records n at virtual time t.
func (c *WindowCounter) Add(t float64, n int64) {
	ei := int64(t / c.epoch)
	slot := int(ei % epochsPerWindow)
	if c.slotAt[slot] != ei {
		c.sums[slot] = 0
		c.slotAt[slot] = ei
	}
	c.sums[slot] += n
}

// Sum returns the windowed total at virtual time t.
func (c *WindowCounter) Sum(t float64) int64 {
	ei := int64(t / c.epoch)
	lo := ei - epochsPerWindow + 1
	var total int64
	for slot := 0; slot < epochsPerWindow; slot++ {
		if at := c.slotAt[slot]; at >= lo && at <= ei {
			total += c.sums[slot]
		}
	}
	return total
}

// BudgetBurnBounds are the sketch buckets for the controller budget-burn
// ratio h/k (a decision's owed repair shares over its group size).
var BudgetBurnBounds = []float64{0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8, 1}

// isFinite reports whether v is a usable configuration value.
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
