// Package telemetry is the observability layer of the reproduction: a
// typed protocol-event bus, a metrics registry keyed by (node, zone,
// packet kind), periodic per-zone time-series snapshots driven off the
// simulation's virtual clock, and exporters (JSONL event trace, CSV/JSON
// time series, Prometheus-text / expvar-style endpoints).
//
// The layer is strictly passive: emitting an event consumes no
// randomness and mutates no protocol state, so attaching it cannot
// perturb a seeded run, and a nil *Bus makes every emission site a
// no-op with zero allocations (Event is a flat value struct and Emit
// has a nil-receiver guard), keeping instrumented hot paths free when
// telemetry is disabled.
package telemetry

import (
	"fmt"
	"sync/atomic"

	"sharqfec/internal/scoping"
	"sharqfec/internal/topology"
)

// Kind identifies a protocol event type.
type Kind uint8

// The event taxonomy. The A, B and F fields of Event are kind-specific;
// their meaning is documented per constant.
const (
	KindNone Kind = iota

	// Control-plane events from internal/core and internal/srm.

	// KindNACKScheduled: a request timer was armed. F = delay (s).
	KindNACKScheduled
	// KindNACKSuppressed: a planned NACK was cancelled. A = reason
	// (0 = a peer's NACK covered ours, 1 = enough repairs outstanding),
	// B = the request back-off exponent at suppression time.
	KindNACKSuppressed
	// KindNACKSent: Zone = scope addressed, A = local loss count (LLC),
	// B = shares still needed.
	KindNACKSent
	// KindRepairScheduled: a reply timer was armed. F = delay (s).
	KindRepairScheduled
	// KindRepairSuppressed: a planned reply was cancelled because the
	// heard repairs covered the whole queue.
	KindRepairSuppressed
	// KindRepairSent: one repair share multicast. Zone = scope,
	// A = burst end (highest share index of the burst), B = share index.
	KindRepairSent
	// KindRepairInjected: preemptive FEC entered a zone without a NACK.
	// Zone = scope, A = shares injected, F = the EWMA predicted zone
	// loss count driving the decision (predictor state).
	KindRepairInjected
	// KindLossDetected: an original data packet was declared lost.
	// Group = its FEC group, A = sequence number.
	KindLossDetected
	// KindGroupDecoded: a receiver reconstructed a full FEC group.
	// A = repair shares used, B = final LLC, F = decode latency (s,
	// first share seen → decode).
	KindGroupDecoded
	// KindScopeEscalated: a requester widened its NACK scope.
	// Zone = the new (wider) scope.
	KindScopeEscalated
	// KindLossUnrecovered: terminal marker emitted at session end for a
	// detected loss whose group never decoded, so span assembly can
	// distinguish "slow" from "never". Group = FEC group, A = sequence
	// number, B = 1 if the original arrived late (data in hand but the
	// group still short of k shares).
	KindLossUnrecovered

	// Session-layer events from internal/session.

	// KindZCRElected: a member's ZCR belief for Zone changed.
	// A = previous ZCR node (-1 = none), B = new ZCR node.
	KindZCRElected
	// KindRTTSample: an echo-based RTT measurement. A = peer node,
	// F = the raw sample (s).
	KindRTTSample

	// Fault-engine events from internal/faults.

	// KindFault: a scripted fault fired. A = the faults.Kind ordinal.
	KindFault

	// Transport events from internal/netsim.

	// KindPacketSent: one multicast transmission. Zone = scope,
	// A = packet.Type ordinal, B = wire bytes.
	KindPacketSent
	// KindPacketDelivered: one delivery to a session member. Zone =
	// scope, A = packet.Type ordinal, B = wire bytes.
	KindPacketDelivered
	// KindPacketLost: a loss-model drop on a link. Node = the far end
	// of the link, A = packet.Type ordinal, B = wire bytes.
	KindPacketLost
	// KindTailDrop: a transmit-queue overflow drop (same fields).
	KindTailDrop
	// KindFaultDrop: a drop on an administratively-down link (same
	// fields).
	KindFaultDrop

	// Trace-preamble events: the zone topology rendered as events at
	// T = 0, so an exported JSONL trace is self-describing and offline
	// replay (cmd/sharqfec-trace) can reconstruct blame attribution
	// without re-running the simulation. Node is topology.NoNode on
	// KindZoneInfo.

	// KindZoneInfo: one zone of the hierarchy. Zone = the zone,
	// A = parent zone (-1 for the root), B = level (root = 0).
	KindZoneInfo
	// KindZoneMember: Node is a leaf member of Zone.
	KindZoneMember

	// Rate-control events from internal/core's Controller seam.

	// KindControllerDecision: the rate controller sized one group's
	// preemptive redundancy for a zone. Zone = target zone, Group = the
	// FEC group, A = repair shares owed (<= 0 when upstream redundancy
	// already covers the prediction), B = group size k, F = the
	// predictor state (predicted zone loss count) behind the decision.
	KindControllerDecision

	// Run-metadata preamble event.

	// KindRunInfo: emitted once at T = 0 ahead of the zone preamble.
	// F = the run's configured end time (seconds), so offline replay
	// (health-verdict re-derivation in cmd/sharqfec-trace) evaluates its
	// final window at exactly the same instant the live run did.
	KindRunInfo

	// Health-engine events from internal/telemetry/health.

	// KindHealthAlert: an SLO objective entered violation. Zone = the
	// violating zone (scoping.NoZone for the session aggregate), A = the
	// objective's index in the SLO spec, B = the long-window sample
	// count behind the verdict, F = the measured value that breached.
	KindHealthAlert
	// KindHealthClear: the objective left violation (same fields; F =
	// the recovered measurement).
	KindHealthClear

	numKinds
)

var kindNames = [numKinds]string{
	KindNone:             "none",
	KindNACKScheduled:    "nack_scheduled",
	KindNACKSuppressed:   "nack_suppressed",
	KindNACKSent:         "nack_sent",
	KindRepairScheduled:  "repair_scheduled",
	KindRepairSuppressed: "repair_suppressed",
	KindRepairSent:       "repair_sent",
	KindRepairInjected:   "repair_injected",
	KindLossDetected:     "loss_detected",
	KindGroupDecoded:     "group_decoded",
	KindScopeEscalated:   "scope_escalated",
	KindLossUnrecovered:  "loss_unrecovered",
	KindZCRElected:       "zcr_elected",
	KindRTTSample:        "rtt_sample",
	KindFault:            "fault",
	KindPacketSent:       "packet_sent",
	KindPacketDelivered:  "packet_delivered",
	KindPacketLost:       "packet_lost",
	KindTailDrop:         "tail_drop",
	KindFaultDrop:        "fault_drop",
	KindZoneInfo:         "zone_info",
	KindZoneMember:       "zone_member",

	KindControllerDecision: "controller_decision",

	KindRunInfo:     "run_info",
	KindHealthAlert: "health_alert",
	KindHealthClear: "health_clear",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one protocol occurrence. It is a flat value struct — no
// pointers, no slices — so building one never allocates and sinks may
// retain copies freely. Zone is scoping.NoZone and Group is -1 when the
// kind has no scope / group.
type Event struct {
	T     float64 // simulated seconds
	Kind  Kind
	Node  topology.NodeID
	Zone  scoping.ZoneID
	Group int64
	A, B  int64
	F     float64

	// Origin and Hops correlate transport events with the packet they
	// carry: on KindPacketDelivered, Origin is the packet's original
	// sender (topology.NoNode for uncorrelated kinds such as session
	// packets) and Hops the routing-tree distance the packet travelled
	// to reach Node. Hops == 0 is the sentinel for "no correlation";
	// Origin is meaningless then (deliveries always cross ≥ 1 link).
	Origin topology.NodeID
	Hops   int64
}

// Format renders an event as a stable single line, for flight-recorder
// dumps and debugging.
func (e Event) Format() string {
	s := fmt.Sprintf("%10.4fs %-18s n%d", e.T, e.Kind, e.Node)
	if e.Zone != scoping.NoZone {
		s += fmt.Sprintf(" z%d", e.Zone)
	}
	if e.Group >= 0 {
		s += fmt.Sprintf(" g%d", e.Group)
	}
	if e.A != 0 || e.B != 0 {
		s += fmt.Sprintf(" a=%d b=%d", e.A, e.B)
	}
	if e.F != 0 {
		s += fmt.Sprintf(" f=%.6g", e.F)
	}
	if e.Hops > 0 {
		s += fmt.Sprintf(" src=n%d hops=%d", e.Origin, e.Hops)
	}
	return s
}

// Sink consumes events. Sinks run synchronously on the emitting
// goroutine and must not call back into the protocol.
type Sink func(Event)

// Bus fans events out to its sinks. A nil *Bus is the disabled state:
// Emit returns immediately and On reports false, so instrumented code
// holds a possibly-nil *Bus and pays only a nil check when telemetry is
// off.
type Bus struct {
	sinks []Sink
	// count is atomic: udpmesh drives one emitting goroutine per node
	// over a shared bus.
	count atomic.Uint64
}

// NewBus returns an empty (but enabled) bus.
func NewBus() *Bus { return &Bus{} }

// Attach registers a sink. Not safe concurrently with Emit.
func (b *Bus) Attach(s Sink) { b.sinks = append(b.sinks, s) }

// On reports whether emitting is worthwhile (non-nil bus with at least
// one sink). Hot paths may use it to skip assembling event fields.
func (b *Bus) On() bool { return b != nil && len(b.sinks) > 0 }

// Emit delivers e to every sink. Safe on a nil receiver (no-op).
func (b *Bus) Emit(e Event) {
	if b == nil {
		return
	}
	b.count.Add(1)
	for _, s := range b.sinks {
		s(e)
	}
}

// Count returns the number of events emitted so far.
func (b *Bus) Count() uint64 {
	if b == nil {
		return 0
	}
	return b.count.Load()
}
