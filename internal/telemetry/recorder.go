package telemetry

// Recorder is a fixed-capacity ring buffer of the most recent events —
// the flight recorder RunChaos dumps when a run ends anomalously. The
// buffer is allocated once up front; recording never allocates.
type Recorder struct {
	buf    []Event
	next   int
	n      int
	filter func(Kind) bool
}

// NewRecorder returns a recorder keeping the last capacity events.
// A non-nil filter restricts recording to kinds it accepts (the usual
// configuration skips the per-packet transport events so the ring holds
// control-plane history rather than the last few milliseconds of data
// deliveries).
func NewRecorder(capacity int, filter func(Kind) bool) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{buf: make([]Event, capacity), filter: filter}
}

// ControlPlaneOnly is the standard flight-recorder filter: everything
// except per-packet transport events and the static trace preamble.
// Health alerts and clears pass — a dump triggered by an alert should
// show the alert itself in the tail.
func ControlPlaneOnly(k Kind) bool {
	switch k {
	case KindPacketSent, KindPacketDelivered, KindPacketLost,
		KindZoneInfo, KindZoneMember, KindRunInfo:
		return false
	}
	return true
}

// Sink returns the recording sink for Bus.Attach.
func (r *Recorder) Sink() Sink {
	return func(e Event) {
		if r.filter != nil && !r.filter(e.Kind) {
			return
		}
		r.buf[r.next] = e
		r.next = (r.next + 1) % len(r.buf)
		if r.n < len(r.buf) {
			r.n++
		}
	}
}

// Len returns how many events the ring currently holds.
func (r *Recorder) Len() int { return r.n }

// Events returns the recorded events oldest-first (a copy).
func (r *Recorder) Events() []Event {
	out := make([]Event, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Dump renders the ring oldest-first with Event.Format.
func (r *Recorder) Dump() []string {
	evs := r.Events()
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.Format()
	}
	return out
}
