package telemetry

import "fmt"

// TriggeredDump is one flight-recorder snapshot with the reason that
// forced it.
type TriggeredDump struct {
	T      float64
	Reason string
	Events []string
}

// MaxAutoDumps caps how many alert-triggered snapshots a run keeps:
// an alert storm should not turn the forensic path into an allocator.
// Explicit Fire calls (end-of-run anomalies) are never capped.
const MaxAutoDumps = 16

// DumpTrigger is the single bus-driven forensic path: every
// health_alert event snapshots the flight recorder's ring, so the dump
// carries the control-plane history that led into the violation — for
// any run with a recorder, not just RunChaos. Like the Recorder it is
// built for the single-threaded simulator sink chain.
type DumpTrigger struct {
	rec   *Recorder
	auto  int
	dumps []TriggeredDump
}

// NewDumpTrigger watches rec.
func NewDumpTrigger(rec *Recorder) *DumpTrigger { return &DumpTrigger{rec: rec} }

// Sink returns the alert-watching sink for Bus.Attach. Attach it after
// the recorder's sink, so a dump includes the triggering alert itself.
func (d *DumpTrigger) Sink() Sink {
	return func(e Event) {
		if e.Kind != KindHealthAlert || d.auto >= MaxAutoDumps {
			return
		}
		d.auto++
		d.fire(e.T, fmt.Sprintf("health_alert slo=%d zone=%d value=%g", e.A, int(e.Zone), e.F))
	}
}

// Fire snapshots the ring for an out-of-band reason (e.g. an anomalous
// end of run).
func (d *DumpTrigger) Fire(t float64, reason string) { d.fire(t, reason) }

func (d *DumpTrigger) fire(t float64, reason string) {
	d.dumps = append(d.dumps, TriggeredDump{T: t, Reason: reason, Events: d.rec.Dump()})
}

// Dumps returns every snapshot taken so far, oldest first (a copy).
func (d *DumpTrigger) Dumps() []TriggeredDump {
	out := make([]TriggeredDump, len(d.dumps))
	copy(out, d.dumps)
	return out
}
