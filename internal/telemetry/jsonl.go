package telemetry

import (
	"bufio"
	"io"
	"strconv"

	"sharqfec/internal/scoping"
)

// EventWriter is a JSONL sink: one JSON object per event, assembled
// with strconv.Append* into a reusable buffer so steady-state writing
// does not allocate. Errors are sticky: the first write failure stops
// all output and is reported by Err and Flush (the same surfacing
// contract stats.Tracer follows).
//
// Line shape (fields with sentinel values are omitted):
//
//	{"t":6.0123,"ev":"nack_sent","node":14,"zone":2,"group":3,"a":1,"b":2,"f":0.01}
type EventWriter struct {
	w   *bufio.Writer
	buf []byte
	n   uint64
	err error
}

// NewEventWriter wraps w; call Flush when the run completes.
func NewEventWriter(w io.Writer) *EventWriter {
	return &EventWriter{w: bufio.NewWriter(w), buf: make([]byte, 0, 160)}
}

// Sink returns the writing sink for Bus.Attach.
func (ew *EventWriter) Sink() Sink { return ew.write }

func (ew *EventWriter) write(e Event) {
	if ew.err != nil {
		return
	}
	b := ew.buf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, e.T, 'f', 6, 64)
	b = append(b, `,"ev":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","node":`...)
	b = strconv.AppendInt(b, int64(e.Node), 10)
	if e.Zone != scoping.NoZone {
		b = append(b, `,"zone":`...)
		b = strconv.AppendInt(b, int64(e.Zone), 10)
	}
	if e.Group >= 0 {
		b = append(b, `,"group":`...)
		b = strconv.AppendInt(b, e.Group, 10)
	}
	if e.Hops > 0 {
		b = append(b, `,"origin":`...)
		b = strconv.AppendInt(b, int64(e.Origin), 10)
		b = append(b, `,"hops":`...)
		b = strconv.AppendInt(b, e.Hops, 10)
	}
	if e.A != 0 {
		b = append(b, `,"a":`...)
		b = strconv.AppendInt(b, e.A, 10)
	}
	if e.B != 0 {
		b = append(b, `,"b":`...)
		b = strconv.AppendInt(b, e.B, 10)
	}
	if e.F != 0 {
		b = append(b, `,"f":`...)
		b = strconv.AppendFloat(b, e.F, 'g', -1, 64)
	}
	b = append(b, "}\n"...)
	ew.buf = b
	if _, err := ew.w.Write(b); err != nil {
		ew.err = err
		return
	}
	ew.n++
}

// Count returns the number of lines written successfully.
func (ew *EventWriter) Count() uint64 { return ew.n }

// Err returns the first write error, if any.
func (ew *EventWriter) Err() error { return ew.err }

// Flush drains the buffer and returns the first error seen (write or
// flush).
func (ew *EventWriter) Flush() error {
	if err := ew.w.Flush(); err != nil && ew.err == nil {
		ew.err = err
	}
	return ew.err
}
