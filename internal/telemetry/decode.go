package telemetry

import (
	"encoding/json"
	"fmt"

	"sharqfec/internal/scoping"
	"sharqfec/internal/topology"
)

// kindByName inverts kindNames for trace replay.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, int(numKinds))
	for k, name := range kindNames {
		m[name] = Kind(k)
	}
	return m
}()

// KindByName resolves an event-kind name from a JSONL trace.
func KindByName(name string) (Kind, bool) {
	k, ok := kindByName[name]
	return k, ok
}

// jsonEvent mirrors one EventWriter line; pointer fields distinguish
// "absent" (sentinel value) from an explicit zero.
type jsonEvent struct {
	T      *float64 `json:"t"`
	Ev     *string  `json:"ev"`
	Node   *int64   `json:"node"`
	Zone   *int64   `json:"zone"`
	Group  *int64   `json:"group"`
	Origin *int64   `json:"origin"`
	Hops   *int64   `json:"hops"`
	A      int64    `json:"a"`
	B      int64    `json:"b"`
	F      float64  `json:"f"`
}

// ParseEventLine decodes one EventWriter JSONL line back into the Event
// it was written from, restoring the sentinel values of omitted fields,
// so encode → decode → encode reproduces the input bytes exactly.
func ParseEventLine(line []byte) (Event, error) {
	var je jsonEvent
	if err := json.Unmarshal(line, &je); err != nil {
		return Event{}, err
	}
	if je.T == nil || je.Ev == nil || je.Node == nil {
		return Event{}, fmt.Errorf(`event line missing required "t"/"ev"/"node": %s`, line)
	}
	k, ok := kindByName[*je.Ev]
	if !ok {
		return Event{}, fmt.Errorf("unknown event kind %q", *je.Ev)
	}
	e := Event{
		T:      *je.T,
		Kind:   k,
		Node:   topology.NodeID(*je.Node),
		Zone:   scoping.NoZone,
		Group:  -1,
		A:      je.A,
		B:      je.B,
		F:      je.F,
		Origin: topology.NoNode,
	}
	if je.Zone != nil {
		e.Zone = scoping.ZoneID(*je.Zone)
	}
	if je.Group != nil {
		e.Group = *je.Group
	}
	if je.Hops != nil {
		e.Hops = *je.Hops
		if je.Origin != nil {
			e.Origin = topology.NodeID(*je.Origin)
		}
	}
	return e, nil
}
