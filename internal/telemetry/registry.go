package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/topology"
)

// Key identifies one instrument in the registry: a metric name plus the
// (node, zone, packet kind) dimensions the SHARQFEC experiments slice
// by. Unused dimensions take their sentinels (NoNode, NoZone,
// packet.TypeInvalid), so the same name can exist at several
// granularities.
type Key struct {
	Name string
	Node topology.NodeID
	Zone scoping.ZoneID
	Pkt  packet.Type
}

func (k Key) labels() string {
	s := ""
	sep := ""
	if k.Node != topology.NoNode {
		s += fmt.Sprintf("%snode=%q", sep, strconv.Itoa(int(k.Node)))
		sep = ","
	}
	if k.Zone != scoping.NoZone {
		s += fmt.Sprintf("%szone=%q", sep, strconv.Itoa(int(k.Zone)))
		sep = ","
	}
	if k.Pkt != packet.TypeInvalid {
		s += fmt.Sprintf("%skind=%q", sep, k.Pkt.String())
	}
	if s == "" {
		return ""
	}
	return "{" + s + "}"
}

// Counter is a monotonically increasing integer, safe for concurrent
// update (the udpmesh runner drives one agent per goroutine).
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a concurrently-settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates float64 observations into fixed buckets
// (cumulative counts are computed at export, Prometheus-style).
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf bucket implicit
	counts []atomic.Int64
	sum    Gauge // running sum (single-writer in the simulator; racy sums are tolerable on live endpoints)
	n      atomic.Int64
}

// NewHistogram returns a histogram with the given ascending upper
// bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	h.sum.Set(h.sum.Value() + v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if n := h.n.Load(); n > 0 {
		return h.sum.Value() / float64(n)
	}
	return 0
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) from the bucket
// counts, interpolating linearly within the containing bucket
// (histogram_quantile semantics). The lowest bucket interpolates from
// zero; ranks landing in the implicit +Inf bucket report the highest
// finite bound. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	rank := q * float64(n)
	cum := float64(0)
	for i, ub := range h.bounds {
		in := float64(h.counts[i].Load())
		if cum+in >= rank && in > 0 {
			lo := float64(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (ub-lo)*(rank-cum)/in
		}
		cum += in
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry holds instruments by Key. Lookups take a mutex; hot paths
// should cache the returned pointers (Metrics does) so steady-state
// updates are lock-free atomic adds.
type Registry struct {
	mu       sync.Mutex
	counters map[Key]*Counter
	gauges   map[Key]*Gauge
	hists    map[Key]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[Key]*Counter),
		gauges:   make(map[Key]*Gauge),
		hists:    make(map[Key]*Histogram),
	}
}

// Counter returns (creating if needed) the counter for k.
func (r *Registry) Counter(k Key) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[k]
	if c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge for k.
func (r *Registry) Gauge(k Key) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[k]
	if g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram for k, using
// bounds only on creation.
func (r *Registry) Histogram(k Key, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[k]
	if h == nil {
		h = NewHistogram(bounds)
		r.hists[k] = h
	}
	return h
}

// SumCounters returns the sum of every counter named name, across all
// dimension values.
func (r *Registry) SumCounters(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t int64
	for k, c := range r.counters {
		if k.Name == name {
			t += c.Value()
		}
	}
	return t
}

// MaxGauge returns the maximum value among gauges named name and the
// key that holds it (ok=false when none exist).
func (r *Registry) MaxGauge(name string) (Key, float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var (
		best  Key
		bestV float64
		found bool
	)
	for k, g := range r.gauges {
		if k.Name != name {
			continue
		}
		v := g.Value()
		if !found || v > bestV || (v == bestV && keyLess(k, best)) {
			best, bestV, found = k, v, true
		}
	}
	return best, bestV, found
}

func (r *Registry) sortedCounterKeys() []Key {
	keys := make([]Key, 0, len(r.counters))
	for k := range r.counters {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}

func (r *Registry) sortedGaugeKeys() []Key {
	keys := make([]Key, 0, len(r.gauges))
	for k := range r.gauges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}

func (r *Registry) sortedHistKeys() []Key {
	keys := make([]Key, 0, len(r.hists))
	for k := range r.hists {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}

func keyLess(a, b Key) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Zone != b.Zone {
		return a.Zone < b.Zone
	}
	return a.Pkt < b.Pkt
}

// WritePrometheus renders the registry in Prometheus text exposition
// format, keys sorted, every metric prefixed "sharqfec_".
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range r.sortedCounterKeys() {
		if _, err := fmt.Fprintf(w, "sharqfec_%s_total%s %d\n", k.Name, k.labels(), r.counters[k].Value()); err != nil {
			return err
		}
	}
	for _, k := range r.sortedGaugeKeys() {
		if _, err := fmt.Fprintf(w, "sharqfec_%s%s %g\n", k.Name, k.labels(), r.gauges[k].Value()); err != nil {
			return err
		}
	}
	for _, k := range r.sortedHistKeys() {
		h := r.hists[k]
		cum := int64(0)
		for i, ub := range h.bounds {
			cum += h.counts[i].Load()
			lbl := k.labels()
			le := strconv.FormatFloat(ub, 'g', -1, 64)
			if lbl == "" {
				lbl = fmt.Sprintf("{le=%q}", le)
			} else {
				lbl = lbl[:len(lbl)-1] + fmt.Sprintf(",le=%q}", le)
			}
			if _, err := fmt.Fprintf(w, "sharqfec_%s_bucket%s %d\n", k.Name, lbl, cum); err != nil {
				return err
			}
		}
		lbl := k.labels()
		if lbl == "" {
			lbl = `{le="+Inf"}`
		} else {
			lbl = lbl[:len(lbl)-1] + `,le="+Inf"}`
		}
		if _, err := fmt.Fprintf(w, "sharqfec_%s_bucket%s %d\n", k.Name, lbl, h.Count()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "sharqfec_%s_sum%s %g\n", k.Name, k.labels(), h.Sum()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "sharqfec_%s_count%s %d\n", k.Name, k.labels(), h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns every counter and gauge as an expvar-style flat map:
// "name{node=...,zone=...,kind=...}" → value. Histograms export their
// count, sum and mean.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+3*len(r.hists))
	for k, c := range r.counters {
		out[k.Name+k.labels()] = c.Value()
	}
	for k, g := range r.gauges {
		out[k.Name+k.labels()] = g.Value()
	}
	for k, h := range r.hists {
		out[k.Name+k.labels()+".count"] = h.Count()
		out[k.Name+k.labels()+".sum"] = h.Sum()
		out[k.Name+k.labels()+".mean"] = h.Mean()
	}
	return out
}
