package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/topology"
)

// Key identifies one instrument in the registry: a metric name plus the
// (node, zone, packet kind) dimensions the SHARQFEC experiments slice
// by. Unused dimensions take their sentinels (NoNode, NoZone,
// packet.TypeInvalid), so the same name can exist at several
// granularities.
type Key struct {
	Name string
	Node topology.NodeID
	Zone scoping.ZoneID
	Pkt  packet.Type
}

func (k Key) labels() string {
	s := ""
	sep := ""
	if k.Node != topology.NoNode {
		s += fmt.Sprintf("%snode=%q", sep, strconv.Itoa(int(k.Node)))
		sep = ","
	}
	if k.Zone != scoping.NoZone {
		s += fmt.Sprintf("%szone=%q", sep, strconv.Itoa(int(k.Zone)))
		sep = ","
	}
	if k.Pkt != packet.TypeInvalid {
		s += fmt.Sprintf("%skind=%q", sep, k.Pkt.String())
	}
	if s == "" {
		return ""
	}
	return "{" + s + "}"
}

// Counter is a monotonically increasing integer, safe for concurrent
// update (the udpmesh runner drives one agent per goroutine).
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a concurrently-settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates float64 observations into fixed buckets
// (cumulative counts are computed at export, Prometheus-style).
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf bucket implicit
	counts []atomic.Int64
	sum    Gauge // running sum (single-writer in the simulator; racy sums are tolerable on live endpoints)
	n      atomic.Int64
}

// NewHistogram returns a histogram with the given ascending upper
// bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.n.Add(1)
	h.sum.Set(h.sum.Value() + v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if n := h.n.Load(); n > 0 {
		return h.sum.Value() / float64(n)
	}
	return 0
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) from the bucket
// counts, interpolating linearly within the containing bucket
// (histogram_quantile semantics). The lowest bucket interpolates from
// zero; ranks landing in the implicit +Inf bucket report the highest
// finite bound. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	rank := q * float64(n)
	cum := float64(0)
	for i, ub := range h.bounds {
		in := float64(h.counts[i].Load())
		if cum+in >= rank && in > 0 {
			lo := float64(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (ub-lo)*(rank-cum)/in
		}
		cum += in
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Registry holds instruments by Key. Lookups take a mutex; hot paths
// should cache the returned pointers (Metrics does) so steady-state
// updates are lock-free atomic adds.
type Registry struct {
	mu       sync.Mutex
	counters map[Key]*Counter
	gauges   map[Key]*Gauge
	hists    map[Key]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[Key]*Counter),
		gauges:   make(map[Key]*Gauge),
		hists:    make(map[Key]*Histogram),
	}
}

// Counter returns (creating if needed) the counter for k.
func (r *Registry) Counter(k Key) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[k]
	if c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge for k.
func (r *Registry) Gauge(k Key) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[k]
	if g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram for k, using
// bounds only on creation.
func (r *Registry) Histogram(k Key, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[k]
	if h == nil {
		h = NewHistogram(bounds)
		r.hists[k] = h
	}
	return h
}

// SumCounters returns the sum of every counter named name, across all
// dimension values.
func (r *Registry) SumCounters(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t int64
	for k, c := range r.counters {
		if k.Name == name {
			t += c.Value()
		}
	}
	return t
}

// MaxGauge returns the maximum value among gauges named name and the
// key that holds it (ok=false when none exist).
func (r *Registry) MaxGauge(name string) (Key, float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var (
		best  Key
		bestV float64
		found bool
	)
	for k, g := range r.gauges {
		if k.Name != name {
			continue
		}
		v := g.Value()
		if !found || v > bestV || (v == bestV && keyLess(k, best)) {
			best, bestV, found = k, v, true
		}
	}
	return best, bestV, found
}

func (r *Registry) sortedCounterKeys() []Key {
	keys := make([]Key, 0, len(r.counters))
	for k := range r.counters {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}

func (r *Registry) sortedGaugeKeys() []Key {
	keys := make([]Key, 0, len(r.gauges))
	for k := range r.gauges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}

func (r *Registry) sortedHistKeys() []Key {
	keys := make([]Key, 0, len(r.hists))
	for k := range r.hists {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	return keys
}

func keyLess(a, b Key) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Zone != b.Zone {
		return a.Zone < b.Zone
	}
	return a.Pkt < b.Pkt
}

// WritePrometheus renders the registry in Prometheus text exposition
// format, keys sorted, every metric prefixed "sharqfec_".
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeProm(w, nil, false)
}

// WritePrometheusMeta renders the same exposition with a "# TYPE" line
// per metric family, plus a "# HELP" line for families present in help
// (keyed by the bare metric name, without prefix or _total suffix).
// This is what a long-lived scrape endpoint should serve; the plain
// WritePrometheus output stays byte-stable for existing consumers.
func (r *Registry) WritePrometheusMeta(w io.Writer, help map[string]string) error {
	return r.writeProm(w, help, true)
}

// meta emits the HELP/TYPE header the first time a family appears.
func writeMeta(w io.Writer, last *string, name, exposed, typ string, help map[string]string) error {
	if exposed == *last {
		return nil
	}
	*last = exposed
	if h, ok := help[name]; ok {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", exposed, h); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", exposed, typ)
	return err
}

func (r *Registry) writeProm(w io.Writer, help map[string]string, meta bool) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	last := ""
	for _, k := range r.sortedCounterKeys() {
		if meta {
			if err := writeMeta(w, &last, k.Name, "sharqfec_"+k.Name+"_total", "counter", help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "sharqfec_%s_total%s %d\n", k.Name, k.labels(), r.counters[k].Value()); err != nil {
			return err
		}
	}
	for _, k := range r.sortedGaugeKeys() {
		if meta {
			if err := writeMeta(w, &last, k.Name, "sharqfec_"+k.Name, "gauge", help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "sharqfec_%s%s %g\n", k.Name, k.labels(), r.gauges[k].Value()); err != nil {
			return err
		}
	}
	for _, k := range r.sortedHistKeys() {
		if meta {
			if err := writeMeta(w, &last, k.Name, "sharqfec_"+k.Name, "histogram", help); err != nil {
				return err
			}
		}
		h := r.hists[k]
		cum := int64(0)
		for i, ub := range h.bounds {
			cum += h.counts[i].Load()
			lbl := k.labels()
			le := strconv.FormatFloat(ub, 'g', -1, 64)
			if lbl == "" {
				lbl = fmt.Sprintf("{le=%q}", le)
			} else {
				lbl = lbl[:len(lbl)-1] + fmt.Sprintf(",le=%q}", le)
			}
			if _, err := fmt.Fprintf(w, "sharqfec_%s_bucket%s %d\n", k.Name, lbl, cum); err != nil {
				return err
			}
		}
		lbl := k.labels()
		if lbl == "" {
			lbl = `{le="+Inf"}`
		} else {
			lbl = lbl[:len(lbl)-1] + `,le="+Inf"}`
		}
		if _, err := fmt.Fprintf(w, "sharqfec_%s_bucket%s %d\n", k.Name, lbl, h.Count()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "sharqfec_%s_sum%s %g\n", k.Name, k.labels(), h.Sum()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "sharqfec_%s_count%s %d\n", k.Name, k.labels(), h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// PromHelp is the curated HELP text for the families a live node
// exposes, keyed by bare metric name (WritePrometheusMeta adds the
// prefix and counter suffix).
var PromHelp = map[string]string{
	"nacks_sent":         "NACK transmissions, by addressed scope zone",
	"nacks_suppressed":   "NACKs cancelled by suppression, by observer leaf zone",
	"repairs_sent":       "repair-share transmissions, by addressed scope zone",
	"repairs_injected":   "preemptively injected repair shares, by scope zone",
	"losses_detected":    "data packets declared lost, by observer leaf zone",
	"groups_decoded":     "FEC groups fully reconstructed, by observer leaf zone",
	"losses_unrecovered": "losses never recovered by session end",
	"scope_escalations":  "NACK scope widenings, by observer leaf zone",
	"zcr_elections":      "ZCR belief changes, by zone",
	"delivered_pkts":     "packet deliveries, by scope zone and packet kind",
	"delivered_bytes":    "delivered wire bytes, by scope zone and packet kind",
	"sent_pkts":          "packet transmissions, by scope zone and packet kind",
	"loss_drops":         "loss-model packet drops",
	"tail_drops":         "transmit-queue overflow drops",
	"fault_drops":        "drops on administratively-down links",
	"fault_events":       "scripted fault activations",
	"decode_latency_s":   "FEC decode latency: first share seen to reconstruction",
	"rtt_sample_s":       "echo-based RTT samples",
	"recovery_latency_s": "end-to-end loss recovery latency",
	"pred_zlc":           "rate-control predicted zone loss count",
	"ctrl_h":             "rate-control decided per-group repair injection",
	"health_alerts":      "SLO objectives entering violation (health engine)",
	"health_clears":      "SLO objectives leaving violation (health engine)",

	// Cost-census families (internal/telemetry/census). The *_pkts /
	// *_bytes counters split into per-class families with a data / nack
	// / repair / fec / ctrl suffix.
	"census_scoped_pkts_data":      "scope-addressed data transmissions (census)",
	"census_scoped_pkts_nack":      "scope-addressed NACK transmissions (census)",
	"census_scoped_pkts_repair":    "scope-addressed repair transmissions (census)",
	"census_scoped_pkts_fec":       "scope-addressed preemptive-FEC transmissions (census)",
	"census_scoped_pkts_ctrl":      "scope-addressed control transmissions (census)",
	"census_scoped_bytes_data":     "scope-addressed data wire bytes (census)",
	"census_scoped_bytes_nack":     "scope-addressed NACK wire bytes (census)",
	"census_scoped_bytes_repair":   "scope-addressed repair wire bytes (census)",
	"census_scoped_bytes_fec":      "scope-addressed preemptive-FEC wire bytes (census)",
	"census_scoped_bytes_ctrl":     "scope-addressed control wire bytes (census)",
	"census_delivered_pkts_data":   "data deliveries by scope zone (census)",
	"census_delivered_pkts_nack":   "NACK deliveries by scope zone (census)",
	"census_delivered_pkts_repair": "repair deliveries by scope zone (census)",
	"census_delivered_pkts_fec":    "preemptive-FEC deliveries by scope zone (census)",
	"census_delivered_pkts_ctrl":   "control deliveries by scope zone (census)",
	"census_boundary_pkts_data":    "data packets crossing the zone boundary (census)",
	"census_boundary_pkts_nack":    "NACKs crossing the zone boundary (census)",
	"census_boundary_pkts_repair":  "repairs crossing the zone boundary (census)",
	"census_boundary_pkts_fec":     "preemptive FEC crossing the zone boundary (census)",
	"census_boundary_pkts_ctrl":    "control packets crossing the zone boundary (census)",
	"census_boundary_bytes":        "wire bytes crossing the zone boundary (census)",
	"census_fec_shares":            "preemptively injected shares, from repair_injected events (census)",
	"census_groups":                "FEC groups resident in the zone at the last epoch (census)",
	"census_timers":                "armed protocol timers in the zone at the last epoch (census)",
	"census_repair_queue":          "speculative repair backlog in the zone at the last epoch (census)",
	"census_resident_bytes":        "estimated resident protocol-state bytes in the zone (census)",
	"census_rtt_entries":           "session RTT entries maintained in the zone (census)",
	"census_eventq_depth":          "event-queue pending events at the last epoch (census)",
	"census_eventq_free":           "event-queue free-list occupancy at the last epoch (census)",
	"census_eventq_fire_rate":      "events dispatched per virtual second since the previous epoch (census)",
	"census_eventq_dispatched":     "events dispatched since the start of the run (census)",
}

// Snapshot returns every counter and gauge as an expvar-style flat map:
// "name{node=...,zone=...,kind=...}" → value. Histograms export their
// count, sum and mean.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+3*len(r.hists))
	for k, c := range r.counters {
		out[k.Name+k.labels()] = c.Value()
	}
	for k, g := range r.gauges {
		out[k.Name+k.labels()] = g.Value()
	}
	for k, h := range r.hists {
		out[k.Name+k.labels()+".count"] = h.Count()
		out[k.Name+k.labels()+".sum"] = h.Sum()
		out[k.Name+k.labels()+".mean"] = h.Mean()
	}
	return out
}
