// Package census is a streaming cost-accounting engine for SHARQFEC
// runs: it answers "where do the bytes actually flow and where does the
// protocol state actually live", the measured counterpart of the
// analytic Figure-8 model in internal/analysis.
//
// The engine maintains three kinds of series, all backed by the shared
// telemetry registry so every existing surface (CSV/JSON metrics,
// Prometheus/expvar, sharqfec-top) picks them up:
//
//   - traffic matrices: per-link and per-zone-boundary packet/byte
//     counts broken down by packet class (data, NACK, repair,
//     preemptive FEC, session/ZLC control), fed by a netsim hop tap
//     (link identity) and the zero-alloc event bus (scope identity);
//   - a protocol-state census: active groups, armed timers,
//     repair-queue depth, estimated resident bytes, and session RTT
//     entries, read from per-node probes on virtual-clock epochs;
//   - scheduler observability: event-queue depth, free-list occupancy
//     and dispatch fire-rate as registry gauges.
//
// The engine is strictly passive: it consumes no randomness, mutates no
// protocol state and schedules nothing, so arming it cannot change a
// fixed-seed run's protocol results. The hot ingest paths (ObserveHop
// and the bus Sink) are allocation-free in steady state; only epoch
// snapshots append history.
package census

import (
	"sync"
	"sync/atomic"

	"sharqfec/internal/eventq"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/telemetry"
	"sharqfec/internal/topology"
)

// Class buckets wire traffic for the cost matrices. It is coarser than
// packet.Type: the three ZCR-election messages and session messages are
// all "control", while repairs split into reactive (NACK-triggered) and
// preemptive FEC.
type Class uint8

// Traffic classes, in display order.
const (
	ClassData Class = iota
	ClassNACK
	ClassRepair // NACK-triggered repair shares
	ClassFEC    // preemptively injected repair shares
	ClassControl
	NumClasses
)

var classNames = [NumClasses]string{"data", "nack", "repair", "fec", "ctrl"}

// String returns the short name used in metric families and reports.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "other"
}

// ClassOf classifies a wire packet. Repairs split on the Preemptive
// accounting flag; everything that is neither data, NACK nor repair is
// control traffic.
func ClassOf(pkt packet.Packet) Class {
	switch p := pkt.(type) {
	case *packet.Data:
		return ClassData
	case *packet.NACK:
		return ClassNACK
	case *packet.Repair:
		if p.Preemptive {
			return ClassFEC
		}
		return ClassRepair
	default:
		return ClassControl
	}
}

// classOfType classifies bus events, which carry only the wire type
// tag: preemptive FEC is indistinguishable from reactive repair at this
// resolution (the hop tap sees the packet and keeps them apart).
func classOfType(t packet.Type) Class {
	switch t {
	case packet.TypeData:
		return ClassData
	case packet.TypeNACK:
		return ClassNACK
	case packet.TypeRepair:
		return ClassRepair
	default:
		return ClassControl
	}
}

// State is one probe's point-in-time accounting of resident protocol
// state at a node.
type State struct {
	Groups         int64 // FEC groups still tracked (incomplete or retaining buffers)
	Timers         int64 // armed request/reply/LDP and session timers
	RepairQueue    int64 // speculative repairs owed across zones
	ResidentBytes  int64 // estimated bytes held in share/data buffers
	SessionEntries int64 // RTT entries maintained (the Figure-8 state quantity)
	MemBytes       int64 // total estimated memory footprint (slab arena + structures + payloads)
}

// Probe reads one node's State. Probes run synchronously inside epoch
// snapshots on the simulator goroutine (or the census ticker on a live
// node), so they must not block.
type Probe func() State

// zoneCensus holds one zone's registry cells, pre-created so the ingest
// paths never touch the registry map.
type zoneCensus struct {
	scopedPkts    [NumClasses]*telemetry.Counter
	scopedBytes   [NumClasses]*telemetry.Counter
	deliveredPkts [NumClasses]*telemetry.Counter
	boundaryPkts  [NumClasses]*telemetry.Counter
	boundaryBytes *telemetry.Counter
	fecShares     *telemetry.Counter

	groups, timers, repairQ, resident, rtt *telemetry.Gauge
	mem, perRcvr                           *telemetry.Gauge
}

// linkCensus is one duplex link's traffic matrix; dir 0 is A→B.
type linkCensus struct {
	pkts  [2][NumClasses]atomic.Int64
	bytes [2][NumClasses]atomic.Int64
}

// ZoneState is one zone's aggregated protocol state at an epoch.
type ZoneState struct {
	Zone          scoping.ZoneID
	Groups        int64
	Timers        int64
	RepairQueue   int64
	ResidentBytes int64
	RTTEntries    int64
	MemBytes      int64
	Members       int64 // probed members inside the zone this epoch
}

// BytesPerReceiver is the zone's memory footprint averaged over its
// probed members — the per-receiver cost gauge of the slab allocator.
func (zs *ZoneState) BytesPerReceiver() float64 {
	if zs.Members == 0 {
		return 0
	}
	return float64(zs.MemBytes) / float64(zs.Members)
}

// QueueState is the scheduler's shape at an epoch.
type QueueState struct {
	Depth      int     // pending events
	Free       int     // free-list occupancy
	Dispatched uint64  // events executed so far
	FireRate   float64 // events dispatched per virtual second since the last epoch
}

// EpochRow is one epoch snapshot, retained for Perfetto counter tracks
// and reports.
type EpochRow struct {
	T     float64
	Zones []ZoneState
	Queue QueueState
}

// Engine is the streaming census. Ingest (ObserveHop, Sink) is
// lock-free; Snapshot and the read accessors serialize behind a mutex.
type Engine struct {
	reg   *telemetry.Registry
	h     *scoping.Hierarchy
	zones []zoneCensus
	leaf  []scoping.ZoneID // node → leaf zone (NoZone for non-members)

	links    []linkCensus
	boundary [][]scoping.ZoneID // link → zones whose boundary it crosses

	qDepth, qFree, qRate *telemetry.Gauge
	qDispatched          *telemetry.Gauge

	mu             sync.Mutex
	probes         []Probe // node → probe (nil when none registered)
	q              *eventq.Queue
	epochs         []EpochRow
	lastT          float64
	lastDispatched uint64
	peakSession    int64
}

// New creates a census engine over the registry reg for the given zone
// hierarchy and node count. Link matrices are armed separately with
// BindLinks (simulator runs only), the scheduler gauges with BindQueue.
func New(reg *telemetry.Registry, h *scoping.Hierarchy, numNodes int) *Engine {
	e := &Engine{
		reg:    reg,
		h:      h,
		zones:  make([]zoneCensus, h.NumZones()),
		leaf:   make([]scoping.ZoneID, numNodes),
		probes: make([]Probe, numNodes),
	}
	for n := 0; n < numNodes; n++ {
		e.leaf[n] = h.LeafZone(topology.NodeID(n))
	}
	for z := range e.zones {
		zc := &e.zones[z]
		zk := func(name string) telemetry.Key {
			return telemetry.Key{Name: name, Node: topology.NoNode, Zone: scoping.ZoneID(z)}
		}
		for c := Class(0); c < NumClasses; c++ {
			zc.scopedPkts[c] = reg.Counter(zk("census_scoped_pkts_" + c.String()))
			zc.scopedBytes[c] = reg.Counter(zk("census_scoped_bytes_" + c.String()))
			zc.deliveredPkts[c] = reg.Counter(zk("census_delivered_pkts_" + c.String()))
			zc.boundaryPkts[c] = reg.Counter(zk("census_boundary_pkts_" + c.String()))
		}
		zc.boundaryBytes = reg.Counter(zk("census_boundary_bytes"))
		zc.fecShares = reg.Counter(zk("census_fec_shares"))
		zc.groups = reg.Gauge(zk("census_groups"))
		zc.timers = reg.Gauge(zk("census_timers"))
		zc.repairQ = reg.Gauge(zk("census_repair_queue"))
		zc.resident = reg.Gauge(zk("census_resident_bytes"))
		zc.rtt = reg.Gauge(zk("census_rtt_entries"))
		zc.mem = reg.Gauge(zk("census_mem_bytes"))
		zc.perRcvr = reg.Gauge(zk("census_bytes_per_rcvr"))
	}
	gk := func(name string) telemetry.Key {
		return telemetry.Key{Name: name, Node: topology.NoNode, Zone: scoping.NoZone}
	}
	e.qDepth = reg.Gauge(gk("census_eventq_depth"))
	e.qFree = reg.Gauge(gk("census_eventq_free"))
	e.qRate = reg.Gauge(gk("census_eventq_fire_rate"))
	e.qDispatched = reg.Gauge(gk("census_eventq_dispatched"))
	return e
}

// BindLinks arms the per-link traffic matrices for graph g and
// precomputes, for every link, the set of zones whose boundary the link
// crosses (exactly one endpoint is a member). The hop tap walks that
// static slice, so boundary attribution stays allocation-free.
func (e *Engine) BindLinks(g *topology.Graph) {
	e.links = make([]linkCensus, g.NumLinks())
	e.boundary = make([][]scoping.ZoneID, g.NumLinks())
	for li := 0; li < g.NumLinks(); li++ {
		l := g.Link(li)
		var crossed []scoping.ZoneID
		for z := 0; z < e.h.NumZones(); z++ {
			zone := scoping.ZoneID(z)
			if e.h.Contains(zone, l.A) != e.h.Contains(zone, l.B) {
				crossed = append(crossed, zone)
			}
		}
		e.boundary[li] = crossed
	}
}

// BindQueue arms the scheduler gauges: epoch snapshots read depth,
// free-list occupancy and the dispatch counter from q.
func (e *Engine) BindQueue(q *eventq.Queue) {
	e.mu.Lock()
	e.q = q
	e.mu.Unlock()
}

// SetProbe installs (or replaces, e.g. after a crash/restart) the state
// probe for node. A nil probe removes it.
func (e *Engine) SetProbe(node topology.NodeID, p Probe) {
	e.mu.Lock()
	if int(node) >= 0 && int(node) < len(e.probes) {
		e.probes[node] = p
	}
	e.mu.Unlock()
}

// ObserveHop records one link crossing: a packet transmitted on link li
// in direction dir (0 = A→B). netsim calls it for every transmission
// attempt that reaches the wire, including packets later lost in
// flight; tail-dropped packets never occupied the link and are not
// counted. Allocation-free.
func (e *Engine) ObserveHop(li, dir int, pkt packet.Packet) {
	if li < 0 || li >= len(e.links) || dir < 0 || dir > 1 {
		return
	}
	cl := ClassOf(pkt)
	sz := int64(pkt.WireSize())
	lm := &e.links[li]
	lm.pkts[dir][cl].Add(1)
	lm.bytes[dir][cl].Add(sz)
	for _, z := range e.boundary[li] {
		zc := &e.zones[z]
		zc.boundaryPkts[cl].Inc()
		zc.boundaryBytes.Add(sz)
	}
}

// Sink returns the engine's bus sink: scope-addressed traffic tallies
// by class from packet_sent / packet_delivered, and preemptive share
// counts from repair_injected. Allocation-free in steady state.
func (e *Engine) Sink() telemetry.Sink {
	return func(ev telemetry.Event) {
		z := int(ev.Zone)
		if z < 0 || z >= len(e.zones) {
			return
		}
		zc := &e.zones[z]
		switch ev.Kind {
		case telemetry.KindPacketSent:
			cl := classOfType(packet.Type(ev.A))
			zc.scopedPkts[cl].Inc()
			zc.scopedBytes[cl].Add(ev.B)
		case telemetry.KindPacketDelivered:
			zc.deliveredPkts[classOfType(packet.Type(ev.A))].Inc()
		case telemetry.KindRepairInjected:
			zc.fecShares.Add(ev.A)
		}
	}
}

// Snapshot runs the state census at virtual time t: every registered
// probe is read, per-zone aggregates land in the registry gauges, the
// scheduler gauges refresh, and one EpochRow is appended to the history
// that feeds Perfetto counter tracks and reports.
func (e *Engine) Snapshot(t float64) {
	e.mu.Lock()
	defer e.mu.Unlock()

	perZone := make([]ZoneState, len(e.zones))
	for z := range perZone {
		perZone[z].Zone = scoping.ZoneID(z)
	}
	for n, probe := range e.probes {
		if probe == nil {
			continue
		}
		st := probe()
		if st.SessionEntries > e.peakSession {
			e.peakSession = st.SessionEntries
		}
		lz := e.leaf[n]
		if lz == scoping.NoZone {
			continue
		}
		// Attribute a node's state to every zone containing it, so a
		// zone row reads as "state resident inside this zone".
		for _, z := range e.h.ZonesOf(topology.NodeID(n)) {
			zs := &perZone[z]
			zs.Groups += st.Groups
			zs.Timers += st.Timers
			zs.RepairQueue += st.RepairQueue
			zs.ResidentBytes += st.ResidentBytes
			zs.RTTEntries += st.SessionEntries
			zs.MemBytes += st.MemBytes
			zs.Members++
		}
	}
	for z := range e.zones {
		zc := &e.zones[z]
		zs := &perZone[z]
		zc.groups.Set(float64(zs.Groups))
		zc.timers.Set(float64(zs.Timers))
		zc.repairQ.Set(float64(zs.RepairQueue))
		zc.resident.Set(float64(zs.ResidentBytes))
		zc.rtt.Set(float64(zs.RTTEntries))
		zc.mem.Set(float64(zs.MemBytes))
		zc.perRcvr.Set(zs.BytesPerReceiver())
	}

	var qs QueueState
	if e.q != nil {
		qs.Depth = e.q.Len()
		qs.Free = e.q.FreeLen()
		qs.Dispatched = e.q.Dispatched()
		if dt := t - e.lastT; dt > 0 && len(e.epochs) > 0 {
			qs.FireRate = float64(qs.Dispatched-e.lastDispatched) / dt
		}
		e.qDepth.Set(float64(qs.Depth))
		e.qFree.Set(float64(qs.Free))
		e.qRate.Set(qs.FireRate)
		e.qDispatched.Set(float64(qs.Dispatched))
		e.lastDispatched = qs.Dispatched
	}
	e.lastT = t
	e.epochs = append(e.epochs, EpochRow{T: t, Zones: perZone, Queue: qs})
}

// Epochs returns the snapshot history. The slice is shared; callers
// must not modify it.
func (e *Engine) Epochs() []EpochRow {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.epochs
}

// ZoneCensus implements telemetry.CensusSource: the last snapshot's
// protocol-state aggregates for one zone.
func (e *Engine) ZoneCensus(zone int) (groups, timers, repairQ, residentBytes, rttEntries int64) {
	if zone < 0 || zone >= len(e.zones) {
		return
	}
	zc := &e.zones[zone]
	return int64(zc.groups.Value()), int64(zc.timers.Value()),
		int64(zc.repairQ.Value()), int64(zc.resident.Value()), int64(zc.rtt.Value())
}

// ZoneMemory implements telemetry.CensusSource: the last snapshot's
// memory-footprint aggregates for one zone — total estimated bytes and
// the per-probed-member average (the slab allocator's bytes-per-
// receiver gauge).
func (e *Engine) ZoneMemory(zone int) (memBytes int64, bytesPerRcvr float64) {
	if zone < 0 || zone >= len(e.zones) {
		return
	}
	zc := &e.zones[zone]
	return int64(zc.mem.Value()), zc.perRcvr.Value()
}

// ZoneBoundary implements telemetry.CensusSource: cumulative traffic
// across one zone's boundary.
func (e *Engine) ZoneBoundary(zone int) (pkts, bytes int64) {
	if zone < 0 || zone >= len(e.zones) {
		return
	}
	zc := &e.zones[zone]
	for c := Class(0); c < NumClasses; c++ {
		pkts += zc.boundaryPkts[c].Value()
	}
	return pkts, zc.boundaryBytes.Value()
}

// LinkPkts returns the total link crossings of class cl summed over
// every link and direction.
func (e *Engine) LinkPkts(cl Class) int64 {
	var n int64
	for i := range e.links {
		n += e.links[i].pkts[0][cl].Load() + e.links[i].pkts[1][cl].Load()
	}
	return n
}

// BoundaryPktsAtLevel returns class-cl crossings of the boundaries of
// zones at the given hierarchy level, summed over those zones.
func (e *Engine) BoundaryPktsAtLevel(level int, cl Class) int64 {
	var n int64
	for z := range e.zones {
		if e.h.Level(scoping.ZoneID(z)) == level {
			n += e.zones[z].boundaryPkts[cl].Value()
		}
	}
	return n
}

// DeliveredPkts returns class-cl deliveries summed over every zone.
func (e *Engine) DeliveredPkts(cl Class) int64 {
	var n int64
	for z := range e.zones {
		n += e.zones[z].deliveredPkts[cl].Value()
	}
	return n
}

// PeakSessionEntries returns the largest per-node session RTT table
// observed by any snapshot — the measured "RTTs maintained per
// receiver" of Figure 8.
func (e *Engine) PeakSessionEntries() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.peakSession
}

// Summary is the run-level census digest embedded in reports. It is a
// plain value (no pointers, no funcs) so reports stay comparable with
// reflect.DeepEqual.
type Summary struct {
	LinkPkts     [NumClasses]int64 `json:"link_pkts"`
	LinkBytes    [NumClasses]int64 `json:"link_bytes"`
	BoundaryPkts [NumClasses]int64 `json:"boundary_pkts"`
	FECShares    int64             `json:"fec_shares"`
	PeakRTT      int64             `json:"peak_rtt_entries"`
	Epochs       int               `json:"epochs"`
	Queue        QueueState        `json:"queue"`
}

// Summarize digests the engine's cumulative matrices and history.
func (e *Engine) Summarize() Summary {
	var s Summary
	for c := Class(0); c < NumClasses; c++ {
		for i := range e.links {
			s.LinkPkts[c] += e.links[i].pkts[0][c].Load() + e.links[i].pkts[1][c].Load()
			s.LinkBytes[c] += e.links[i].bytes[0][c].Load() + e.links[i].bytes[1][c].Load()
		}
		for z := range e.zones {
			s.BoundaryPkts[c] += e.zones[z].boundaryPkts[c].Value()
		}
	}
	for z := range e.zones {
		s.FECShares += e.zones[z].fecShares.Value()
	}
	e.mu.Lock()
	s.PeakRTT = e.peakSession
	s.Epochs = len(e.epochs)
	if n := len(e.epochs); n > 0 {
		s.Queue = e.epochs[n-1].Queue
	}
	e.mu.Unlock()
	return s
}
