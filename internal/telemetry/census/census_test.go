package census

import (
	"sync"
	"testing"

	"sharqfec/internal/eventq"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/telemetry"
	"sharqfec/internal/topology"
)

// twoLevelChain is a 0—1—2—3 chain with {1,2,3} in a child zone: link
// 0 crosses the child-zone boundary, links 1 and 2 are internal to it,
// and nothing ever crosses the root (it contains every node).
func twoLevelChain() *topology.Spec {
	spec := topology.Chain(4, 10e6, 0.010, 0)
	spec.Zones = []topology.ZoneSpec{
		{ID: 0, Parent: -1, Leaves: []topology.NodeID{0}},
		{ID: 1, Parent: 0, Leaves: []topology.NodeID{1, 2, 3}},
	}
	return spec
}

func newTestEngine(t *testing.T) (*Engine, *topology.Spec) {
	t.Helper()
	spec := twoLevelChain()
	h, err := scoping.Build(spec.Zones)
	if err != nil {
		t.Fatal(err)
	}
	e := New(telemetry.NewRegistry(), h, spec.Graph.NumNodes())
	e.BindLinks(spec.Graph)
	return e, spec
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		pkt  packet.Packet
		want Class
	}{
		{&packet.Data{}, ClassData},
		{&packet.NACK{}, ClassNACK},
		{&packet.Repair{}, ClassRepair},
		{&packet.Repair{Preemptive: true}, ClassFEC},
		{&packet.Session{}, ClassControl},
		{&packet.ZCRChallenge{}, ClassControl},
	}
	for _, c := range cases {
		if got := ClassOf(c.pkt); got != c.want {
			t.Errorf("ClassOf(%T) = %v, want %v", c.pkt, got, c.want)
		}
	}
	// Bus events carry only the wire type, where preemptive FEC is
	// indistinguishable from reactive repair.
	if got := classOfType(packet.TypeRepair); got != ClassRepair {
		t.Errorf("classOfType(repair) = %v", got)
	}
	if got := classOfType(packet.TypeSession); got != ClassControl {
		t.Errorf("classOfType(session) = %v", got)
	}
}

func TestObserveHopBoundaryAttribution(t *testing.T) {
	e, _ := newTestEngine(t)
	d := &packet.Data{Payload: make([]byte, 100)}

	e.ObserveHop(0, 0, d) // 0→1 crosses the child-zone boundary
	e.ObserveHop(1, 0, d) // 1→2 is internal to the child zone
	e.ObserveHop(1, 1, d) // reverse direction counts too

	if got := e.LinkPkts(ClassData); got != 3 {
		t.Fatalf("LinkPkts(data) = %d, want 3", got)
	}
	if pkts, bytes := e.ZoneBoundary(1); pkts != 1 || bytes != int64(d.WireSize()) {
		t.Fatalf("child-zone boundary = (%d pkts, %d bytes), want (1, %d)", pkts, bytes, d.WireSize())
	}
	if pkts, _ := e.ZoneBoundary(0); pkts != 0 {
		t.Fatalf("root boundary crossed %d times; the root contains every node", pkts)
	}
	if got := e.BoundaryPktsAtLevel(1, ClassData); got != 1 {
		t.Fatalf("BoundaryPktsAtLevel(1, data) = %d, want 1", got)
	}

	// Out-of-range hops are dropped, not counted or panicked on.
	e.ObserveHop(-1, 0, d)
	e.ObserveHop(99, 0, d)
	e.ObserveHop(0, 2, d)
	if got := e.LinkPkts(ClassData); got != 3 {
		t.Fatalf("out-of-range hops changed the matrix: %d", got)
	}
}

func TestSinkClassifiesBusEvents(t *testing.T) {
	e, _ := newTestEngine(t)
	sink := e.Sink()
	sink(telemetry.Event{Kind: telemetry.KindPacketSent, Zone: 1,
		A: int64(packet.TypeData), B: 512})
	sink(telemetry.Event{Kind: telemetry.KindPacketSent, Zone: 1,
		A: int64(packet.TypeSession), B: 64})
	sink(telemetry.Event{Kind: telemetry.KindPacketDelivered, Zone: 1,
		A: int64(packet.TypeRepair)})
	sink(telemetry.Event{Kind: telemetry.KindRepairInjected, Zone: 1, A: 5})
	// Events outside the zone table are ignored.
	sink(telemetry.Event{Kind: telemetry.KindPacketSent, Zone: scoping.NoZone,
		A: int64(packet.TypeData), B: 1})
	sink(telemetry.Event{Kind: telemetry.KindPacketSent, Zone: 99,
		A: int64(packet.TypeData), B: 1})

	s := e.Summarize()
	if s.FECShares != 5 {
		t.Fatalf("FECShares = %d, want 5", s.FECShares)
	}
	if got := e.DeliveredPkts(ClassRepair); got != 1 {
		t.Fatalf("DeliveredPkts(repair) = %d, want 1", got)
	}
	if got := e.zones[1].scopedPkts[ClassData].Value(); got != 1 {
		t.Fatalf("scoped data pkts = %d, want 1", got)
	}
	if got := e.zones[1].scopedBytes[ClassControl].Value(); got != 64 {
		t.Fatalf("scoped ctrl bytes = %d, want 64", got)
	}
}

func TestSnapshotAggregatesProbesByZone(t *testing.T) {
	e, _ := newTestEngine(t)
	// Node 0 lives only in the root; node 2 in root and child zone.
	e.SetProbe(0, func() State {
		return State{Groups: 1, Timers: 2, SessionEntries: 3}
	})
	e.SetProbe(2, func() State {
		return State{Groups: 10, Timers: 20, RepairQueue: 1, ResidentBytes: 4096, SessionEntries: 30, MemBytes: 6000}
	})
	e.Snapshot(1)

	groups, timers, repairQ, resident, rtt := e.ZoneCensus(0)
	if groups != 11 || timers != 22 || repairQ != 1 || resident != 4096 || rtt != 33 {
		t.Fatalf("root census = (%d,%d,%d,%d,%d), want (11,22,1,4096,33)", groups, timers, repairQ, resident, rtt)
	}
	groups, timers, _, _, rtt = e.ZoneCensus(1)
	if groups != 10 || timers != 20 || rtt != 30 {
		t.Fatalf("child census = (%d,%d,rtt %d), want (10,20,30)", groups, timers, rtt)
	}
	// Memory footprint: the root holds both probed members (6000 bytes
	// over 2), the child only the one reporting 6000.
	if mem, per := e.ZoneMemory(0); mem != 6000 || per != 3000 {
		t.Fatalf("root memory = (%d, %.0f), want (6000, 3000)", mem, per)
	}
	if mem, per := e.ZoneMemory(1); mem != 6000 || per != 6000 {
		t.Fatalf("child memory = (%d, %.0f), want (6000, 6000)", mem, per)
	}
	if got := e.PeakSessionEntries(); got != 30 {
		t.Fatalf("PeakSessionEntries = %d, want 30", got)
	}

	// Probes can be replaced (crash/restart) and removed.
	e.SetProbe(2, nil)
	e.Snapshot(2)
	if groups, _, _, _, _ := e.ZoneCensus(1); groups != 0 {
		t.Fatalf("removed probe still contributes: groups = %d", groups)
	}
	// Peak is a high-water mark: it survives the probe's removal.
	if got := e.PeakSessionEntries(); got != 30 {
		t.Fatalf("peak dropped to %d after probe removal", got)
	}
	if n := len(e.Epochs()); n != 2 {
		t.Fatalf("epoch history has %d rows, want 2", n)
	}
}

func TestSnapshotQueueGauges(t *testing.T) {
	e, _ := newTestEngine(t)
	var q eventq.Queue
	e.BindQueue(&q)
	for i := 0; i < 10; i++ {
		q.At(eventq.Time(i), func(eventq.Time) {})
	}
	q.RunUntil(5) // dispatches events scheduled before t=5
	e.Snapshot(5)
	q.RunUntil(20)
	e.Snapshot(10)

	rows := e.Epochs()
	if len(rows) != 2 {
		t.Fatalf("epochs = %d, want 2", len(rows))
	}
	last := rows[1].Queue
	if last.Dispatched != 10 {
		t.Fatalf("dispatched = %d, want 10", last.Dispatched)
	}
	if last.FireRate <= 0 {
		t.Fatalf("fire rate %v not computed on second epoch", last.FireRate)
	}
	if last.Depth != 0 {
		t.Fatalf("depth = %d after draining", last.Depth)
	}
	s := e.Summarize()
	if s.Epochs != 2 || s.Queue != last {
		t.Fatalf("summary queue snapshot %+v != last epoch %+v", s.Queue, last)
	}
}

// TestConcurrentIngest exercises the lock-free ingest paths against
// concurrent snapshots and probe swaps — the live-node shape, where
// the census ticker runs on its own goroutine. Run under -race in CI.
func TestConcurrentIngest(t *testing.T) {
	e, spec := newTestEngine(t)
	d := &packet.Data{Payload: make([]byte, 64)}
	sink := e.Sink()
	nLinks := spec.Graph.NumLinks()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				e.ObserveHop(i%nLinks, i&1, d)
				sink(telemetry.Event{Kind: telemetry.KindPacketSent, Zone: 1,
					A: int64(packet.TypeData), B: 64})
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			e.SetProbe(2, func() State { return State{SessionEntries: int64(i)} })
			e.Snapshot(float64(i))
			e.Summarize()
		}
	}()
	wg.Wait()

	if got := e.LinkPkts(ClassData); got != 4*2000 {
		t.Fatalf("LinkPkts(data) = %d, want %d", got, 4*2000)
	}
	if got := e.zones[1].scopedPkts[ClassData].Value(); got != 4*2000 {
		t.Fatalf("scoped data pkts = %d, want %d", got, 4*2000)
	}
}

// TestIngestZeroAlloc pins the hot-path guarantee: ObserveHop and the
// bus sink allocate nothing in steady state.
func TestIngestZeroAlloc(t *testing.T) {
	e, _ := newTestEngine(t)
	d := &packet.Data{Payload: make([]byte, 64)}
	sink := e.Sink()
	ev := telemetry.Event{Kind: telemetry.KindPacketSent, Zone: 1,
		A: int64(packet.TypeData), B: 64}
	if avg := testing.AllocsPerRun(200, func() {
		e.ObserveHop(0, 0, d)
		sink(ev)
	}); avg != 0 {
		t.Fatalf("ingest allocates %v per op, want 0", avg)
	}
}
