package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
)

// ZoneSample is one row of the per-zone timeline: cumulative totals for
// one zone at one snapshot instant of the virtual clock. The Zone = -1
// row aggregates the whole session (and is the only row carrying the
// network-wide drop counters), so the final aggregate row matches the
// end-of-run report totals.
type ZoneSample struct {
	T     float64 `json:"t"`
	Zone  int     `json:"zone"`
	Depth int     `json:"depth"`

	// Deliveries at this scope, by packet kind, and total bytes.
	DataPkts    int64 `json:"data_pkts"`
	RepairPkts  int64 `json:"repair_pkts"`
	NACKPkts    int64 `json:"nack_pkts"`
	SessionPkts int64 `json:"session_pkts"`
	Bytes       int64 `json:"bytes"`

	// Control-plane tallies.
	NACKsSent         int64   `json:"nacks_sent"`
	NACKsSuppressed   int64   `json:"nacks_suppressed"`
	SuppressionRatio  float64 `json:"suppression_ratio"`
	RepairsSent       int64   `json:"repairs_sent"`
	RepairsInjected   int64   `json:"repairs_injected"`
	LossesDetected    int64   `json:"losses_detected"`
	NACKsPerLoss      float64 `json:"nacks_per_loss"`
	GroupsDecoded     int64   `json:"groups_decoded"`
	DecodeLatencyMean float64 `json:"decode_latency_mean_s"`
	Elections         int64   `json:"zcr_elections"`

	// Rate-control trajectory: the zone's predictor state (predicted
	// zone loss count) and last decided injection size at this snapshot.
	// The aggregate row carries the maximum across zones (the peak
	// predictor / widest decision at this instant).
	PredZLC float64 `json:"pred_zlc"`
	CtrlH   float64 `json:"ctrl_h"`

	// Aggregate-row-only fields (zero on per-zone rows).
	FaultDrops      int64   `json:"fault_drops"`
	LocalRepairFrac float64 `json:"local_repair_frac"`

	// Cost-census columns, filled when the run armed the census engine
	// (zero otherwise): the protocol state resident inside the zone at
	// this snapshot, and cumulative traffic across the zone's boundary.
	// On the aggregate row the state columns carry the root zone's
	// values (the root contains every member) and the boundary columns
	// the sum over all zone boundaries.
	StateGroups   int64   `json:"state_groups"`
	StateTimers   int64   `json:"state_timers"`
	RepairQueue   int64   `json:"repair_queue"`
	ResidentBytes int64   `json:"resident_bytes"`
	RTTEntries    int64   `json:"rtt_entries"`
	MemBytes      int64   `json:"mem_bytes"`
	BytesPerRcvr  float64 `json:"bytes_per_rcvr"`
	BoundaryPkts  int64   `json:"boundary_pkts"`
	BoundaryBytes int64   `json:"boundary_bytes"`
}

// CensusSource supplies the sampler's census columns. It is implemented
// by census.Engine; an interface here keeps the telemetry package from
// importing its own subpackage.
type CensusSource interface {
	// ZoneCensus returns the last snapshot's protocol-state aggregates
	// for one zone.
	ZoneCensus(zone int) (groups, timers, repairQ, residentBytes, rttEntries int64)
	// ZoneMemory returns the last snapshot's memory footprint for one
	// zone: total estimated bytes and the per-member average.
	ZoneMemory(zone int) (memBytes int64, bytesPerRcvr float64)
	// ZoneBoundary returns cumulative traffic across the zone boundary.
	ZoneBoundary(zone int) (pkts, bytes int64)
}

// Sampler turns a Metrics bridge into a per-zone time series: each
// Sample call appends one row per zone plus the aggregate row, all
// cumulative since the start of the run. Rows are appended in zone
// order, so two runs with identical seeds produce byte-identical
// exports.
type Sampler struct {
	m    *Metrics
	rows []ZoneSample

	// Census, when non-nil, fills the census columns of every row. Set
	// it before the first Sample; rows taken earlier keep zero columns.
	Census CensusSource
}

// NewSampler returns a sampler over m.
func NewSampler(m *Metrics) *Sampler { return &Sampler{m: m} }

// Sample captures one snapshot at virtual time t.
func (s *Sampler) Sample(t float64) {
	var agg ZoneSample
	agg.T = t
	agg.Zone = -1
	agg.Depth = -1
	for z := range s.m.zones {
		c := &s.m.zones[z]
		row := ZoneSample{
			T:               t,
			Zone:            z,
			Depth:           s.m.h.Level(scoping.ZoneID(z)),
			DataPkts:        c.deliveredPkts[packet.TypeData].Value(),
			RepairPkts:      c.deliveredPkts[packet.TypeRepair].Value(),
			NACKPkts:        c.deliveredPkts[packet.TypeNACK].Value(),
			SessionPkts:     c.deliveredPkts[packet.TypeSession].Value(),
			NACKsSent:       c.nacksSent.Value(),
			NACKsSuppressed: c.nacksSupp.Value(),
			RepairsSent:     c.repairsSent.Value(),
			RepairsInjected: c.repairsInj.Value(),
			LossesDetected:  c.losses.Value(),
			GroupsDecoded:   c.decoded.Value(),
			Elections:       c.elections.Value(),
			PredZLC:         c.predZLC.Value(),
			CtrlH:           c.ctrlH.Value(),
		}
		for pt := 1; pt < numPktTypes; pt++ {
			row.Bytes += c.deliveredBytes[pt].Value()
		}
		if n := c.nacksSent.Value() + c.nacksSupp.Value(); n > 0 {
			row.SuppressionRatio = float64(c.nacksSupp.Value()) / float64(n)
		}
		if row.LossesDetected > 0 {
			row.NACKsPerLoss = float64(row.NACKsSent) / float64(row.LossesDetected)
		}
		row.DecodeLatencyMean = c.decodeLat.Mean()
		if s.Census != nil {
			row.StateGroups, row.StateTimers, row.RepairQueue,
				row.ResidentBytes, row.RTTEntries = s.Census.ZoneCensus(z)
			row.MemBytes, row.BytesPerRcvr = s.Census.ZoneMemory(z)
			row.BoundaryPkts, row.BoundaryBytes = s.Census.ZoneBoundary(z)
		}
		s.rows = append(s.rows, row)

		agg.DataPkts += row.DataPkts
		agg.RepairPkts += row.RepairPkts
		agg.NACKPkts += row.NACKPkts
		agg.SessionPkts += row.SessionPkts
		agg.Bytes += row.Bytes
		agg.NACKsSent += row.NACKsSent
		agg.NACKsSuppressed += row.NACKsSuppressed
		agg.RepairsSent += row.RepairsSent
		agg.RepairsInjected += row.RepairsInjected
		agg.LossesDetected += row.LossesDetected
		agg.GroupsDecoded += row.GroupsDecoded
		agg.Elections += row.Elections
		if row.PredZLC > agg.PredZLC {
			agg.PredZLC = row.PredZLC
		}
		if row.CtrlH > agg.CtrlH {
			agg.CtrlH = row.CtrlH
		}
		// State is attributed to every containing zone, so the root
		// zone already holds the global totals: the max across zones is
		// the root's value. Boundary traffic sums per-boundary.
		if row.StateGroups > agg.StateGroups {
			agg.StateGroups = row.StateGroups
		}
		if row.StateTimers > agg.StateTimers {
			agg.StateTimers = row.StateTimers
		}
		if row.RepairQueue > agg.RepairQueue {
			agg.RepairQueue = row.RepairQueue
		}
		if row.ResidentBytes > agg.ResidentBytes {
			agg.ResidentBytes = row.ResidentBytes
		}
		if row.RTTEntries > agg.RTTEntries {
			agg.RTTEntries = row.RTTEntries
		}
		if row.MemBytes > agg.MemBytes {
			// The root zone contains every member, so the max across
			// zones is the global footprint — and its per-receiver
			// average is the global one.
			agg.MemBytes = row.MemBytes
			agg.BytesPerRcvr = row.BytesPerRcvr
		}
		agg.BoundaryPkts += row.BoundaryPkts
		agg.BoundaryBytes += row.BoundaryBytes
	}
	if n := agg.NACKsSent + agg.NACKsSuppressed; n > 0 {
		agg.SuppressionRatio = float64(agg.NACKsSuppressed) / float64(n)
	}
	if agg.LossesDetected > 0 {
		agg.NACKsPerLoss = float64(agg.NACKsSent) / float64(agg.LossesDetected)
	}
	var latSum float64
	var latN int64
	for z := range s.m.zones {
		latSum += s.m.zones[z].decodeLat.Sum()
		latN += s.m.zones[z].decodeLat.Count()
	}
	if latN > 0 {
		agg.DecodeLatencyMean = latSum / float64(latN)
	}
	agg.FaultDrops = s.m.faultDrops.Value()
	if local, global := s.m.RepairLocalization(); local+global > 0 {
		agg.LocalRepairFrac = float64(local) / float64(local+global)
	}
	s.rows = append(s.rows, agg)
}

// Rows returns every sampled row, oldest snapshot first.
func (s *Sampler) Rows() []ZoneSample { return s.rows }

// Last returns the aggregate row of the most recent snapshot (ok=false
// before the first Sample).
func (s *Sampler) Last() (ZoneSample, bool) {
	for i := len(s.rows) - 1; i >= 0; i-- {
		if s.rows[i].Zone == -1 {
			return s.rows[i], true
		}
	}
	return ZoneSample{}, false
}

// csvHeader lists the CSV columns, in struct order.
const csvHeader = "t,zone,depth,data_pkts,repair_pkts,nack_pkts,session_pkts,bytes," +
	"nacks_sent,nacks_suppressed,suppression_ratio,repairs_sent,repairs_injected," +
	"losses_detected,nacks_per_loss,groups_decoded,decode_latency_mean_s," +
	"zcr_elections,pred_zlc,ctrl_h,fault_drops,local_repair_frac," +
	"state_groups,state_timers,repair_queue,resident_bytes,rtt_entries," +
	"mem_bytes,bytes_per_rcvr,boundary_pkts,boundary_bytes"

// WriteCSV renders rows as CSV with a header line.
func WriteCSV(w io.Writer, rows []ZoneSample) error {
	if _, err := fmt.Fprintln(w, csvHeader); err != nil {
		return err
	}
	for _, r := range rows {
		_, err := fmt.Fprintf(w, "%.4f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%d,%d,%d,%.6f,%d,%.6f,%d,%.6f,%.6f,%d,%.6f,%d,%d,%d,%d,%d,%d,%.1f,%d,%d\n",
			r.T, r.Zone, r.Depth, r.DataPkts, r.RepairPkts, r.NACKPkts, r.SessionPkts, r.Bytes,
			r.NACKsSent, r.NACKsSuppressed, r.SuppressionRatio, r.RepairsSent, r.RepairsInjected,
			r.LossesDetected, r.NACKsPerLoss, r.GroupsDecoded, r.DecodeLatencyMean,
			r.Elections, r.PredZLC, r.CtrlH, r.FaultDrops, r.LocalRepairFrac,
			r.StateGroups, r.StateTimers, r.RepairQueue, r.ResidentBytes, r.RTTEntries,
			r.MemBytes, r.BytesPerRcvr, r.BoundaryPkts, r.BoundaryBytes)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders rows as a single JSON array.
func WriteJSON(w io.Writer, rows []ZoneSample) error {
	enc := json.NewEncoder(w)
	return enc.Encode(rows)
}
