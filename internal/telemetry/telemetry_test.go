package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/topology"
)

// testHierarchy builds root zone 0 holding nodes {0,1,2} with child
// zone 1 holding {1,2}.
func testHierarchy(t *testing.T) *scoping.Hierarchy {
	t.Helper()
	h, err := scoping.Build([]topology.ZoneSpec{
		{ID: 0, Parent: -1, Leaves: []topology.NodeID{0}},
		{ID: 1, Parent: 0, Leaves: []topology.NodeID{1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNilBusIsDisabled(t *testing.T) {
	var b *Bus
	if b.On() {
		t.Fatal("nil bus reports On")
	}
	b.Emit(Event{Kind: KindNACKSent}) // must not panic
	if b.Count() != 0 {
		t.Fatalf("nil bus count = %d", b.Count())
	}
	empty := NewBus()
	if empty.On() {
		t.Fatal("sink-less bus reports On")
	}
}

func TestBusFanout(t *testing.T) {
	b := NewBus()
	var got []Kind
	b.Attach(func(e Event) { got = append(got, e.Kind) })
	b.Attach(func(e Event) { got = append(got, e.Kind) })
	if !b.On() {
		t.Fatal("bus with sinks reports off")
	}
	b.Emit(Event{Kind: KindRepairSent})
	if len(got) != 2 || got[0] != KindRepairSent || got[1] != KindRepairSent {
		t.Fatalf("fanout got %v", got)
	}
	if b.Count() != 1 {
		t.Fatalf("count = %d, want 1", b.Count())
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if kindNames[k] == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestRecorderRingAndFilter(t *testing.T) {
	r := NewRecorder(3, ControlPlaneOnly)
	sink := r.Sink()
	for i := 0; i < 5; i++ {
		sink(Event{Kind: KindNACKSent, Group: int64(i)})
	}
	sink(Event{Kind: KindPacketDelivered}) // filtered out
	if r.Len() != 3 {
		t.Fatalf("ring holds %d, want 3", r.Len())
	}
	evs := r.Events()
	for i, want := range []int64{2, 3, 4} {
		if evs[i].Group != want {
			t.Fatalf("ring order %v", evs)
		}
	}
	if len(r.Dump()) != 3 {
		t.Fatalf("dump lines = %d", len(r.Dump()))
	}
}

type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestEventWriterStickyError(t *testing.T) {
	ew := NewEventWriter(&failAfter{n: 0})
	sink := ew.Sink()
	// Fill past bufio's buffer so the underlying writer is hit.
	for i := 0; i < 5000; i++ {
		sink(Event{T: 1, Kind: KindNACKSent, Node: 1, Zone: scoping.NoZone, Group: -1})
	}
	if err := ew.Flush(); err == nil {
		t.Fatal("Flush returned nil after write failure")
	}
	if ew.Err() == nil {
		t.Fatal("Err returned nil after write failure")
	}
	n := ew.Count()
	sink(Event{T: 2, Kind: KindNACKSent, Node: 1, Zone: scoping.NoZone, Group: -1})
	if ew.Count() != n {
		t.Fatal("writer kept counting after sticky error")
	}
}

func TestEventWriterLineShape(t *testing.T) {
	var buf bytes.Buffer
	ew := NewEventWriter(&buf)
	ew.Sink()(Event{T: 6.0123, Kind: KindNACKSent, Node: 14, Zone: 2, Group: 3, A: 1, B: 2, F: 0.01})
	ew.Sink()(Event{T: 1, Kind: KindRTTSample, Node: 0, Zone: scoping.NoZone, Group: -1, A: 5, F: 0.02})
	if err := ew.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || ew.Count() != 2 {
		t.Fatalf("lines = %d, count = %d", len(lines), ew.Count())
	}
	var first struct {
		T     float64 `json:"t"`
		Ev    string  `json:"ev"`
		Node  int     `json:"node"`
		Zone  int     `json:"zone"`
		Group int     `json:"group"`
		A, B  int64
		F     float64
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 1 is not JSON: %v\n%s", err, lines[0])
	}
	if first.Ev != "nack_sent" || first.Node != 14 || first.Zone != 2 || first.Group != 3 {
		t.Fatalf("line 1 fields: %+v", first)
	}
	// Sentinel fields must be omitted.
	if strings.Contains(lines[1], "zone") || strings.Contains(lines[1], "group") {
		t.Fatalf("sentinels not omitted: %s", lines[1])
	}
}

func TestRegistryCountersAndMaxGauge(t *testing.T) {
	reg := NewRegistry()
	k := Key{Name: "x", Node: topology.NoNode, Zone: 1}
	reg.Counter(k).Add(3)
	reg.Counter(k).Inc() // same instrument
	reg.Counter(Key{Name: "x", Node: topology.NoNode, Zone: 2}).Inc()
	if got := reg.SumCounters("x"); got != 5 {
		t.Fatalf("SumCounters = %d, want 5", got)
	}
	for n, v := range map[topology.NodeID]float64{1: 0.1, 2: 0.4, 3: 0.2} {
		reg.Gauge(Key{Name: "loss", Node: n, Zone: scoping.NoZone}).Set(v)
	}
	kk, v, ok := reg.MaxGauge("loss")
	if !ok || v != 0.4 || kk.Node != 2 {
		t.Fatalf("MaxGauge = %v %v %v", kk, v, ok)
	}
	if _, _, ok := reg.MaxGauge("absent"); ok {
		t.Fatal("MaxGauge found a gauge that does not exist")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1})
	for _, v := range []float64{0.05, 0.5, 2, 3} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 5.55 {
		t.Fatalf("count=%d sum=%g", h.Count(), h.Sum())
	}
	if m := h.Mean(); m < 1.38 || m > 1.39 {
		t.Fatalf("mean = %g", m)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Key{Name: "nacks_sent", Node: topology.NoNode, Zone: 1}).Add(7)
	reg.Gauge(Key{Name: "raw_loss_fraction", Node: 3, Zone: scoping.NoZone}).Set(0.25)
	reg.Histogram(Key{Name: "lat", Node: topology.NoNode, Zone: scoping.NoZone},
		[]float64{0.1}).Observe(0.05)
	reg.Counter(Key{Name: "delivered_pkts", Node: topology.NoNode, Zone: 0,
		Pkt: packet.TypeData}).Inc()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`sharqfec_nacks_sent_total{zone="1"} 7`,
		`sharqfec_raw_loss_fraction{node="3"} 0.25`,
		`sharqfec_lat_bucket{le="0.1"} 1`,
		`sharqfec_lat_bucket{le="+Inf"} 1`,
		`sharqfec_lat_count 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `kind="DATA"`) && !strings.Contains(out, `kind=`) {
		t.Errorf("packet-kind label missing:\n%s", out)
	}
	snap := reg.Snapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
}

func TestMetricsAttribution(t *testing.T) {
	h := testHierarchy(t)
	m := NewMetrics(nil, h, 3)
	bus := NewBus()
	bus.Attach(m.Sink())

	// Two repair deliveries in leaf zone 1, one at root.
	bus.Emit(Event{Kind: KindPacketDelivered, Zone: 1, A: int64(packet.TypeRepair), B: 100})
	bus.Emit(Event{Kind: KindPacketDelivered, Zone: 1, A: int64(packet.TypeRepair), B: 100})
	bus.Emit(Event{Kind: KindPacketDelivered, Zone: 0, A: int64(packet.TypeRepair), B: 100})
	local, global := m.RepairLocalization()
	if local != 2 || global != 1 {
		t.Fatalf("localization = %d local %d global", local, global)
	}

	// Suppression attributed to node 1's leaf zone; NACK to its scope.
	bus.Emit(Event{Kind: KindNACKSent, Node: 1, Zone: 1})
	bus.Emit(Event{Kind: KindNACKSuppressed, Node: 1, Zone: scoping.NoZone})
	bus.Emit(Event{Kind: KindNACKSuppressed, Node: 2, Zone: scoping.NoZone})
	if got := m.SuppressionRatio(); got < 0.66 || got > 0.67 {
		t.Fatalf("suppression ratio = %g", got)
	}
	if m.NACKsSent() != 1 {
		t.Fatalf("NACKsSent = %d", m.NACKsSent())
	}

	// Out-of-range zones and nodes must be ignored, not panic.
	bus.Emit(Event{Kind: KindPacketDelivered, Zone: 99, A: 1, B: 1})
	bus.Emit(Event{Kind: KindGroupDecoded, Node: 99})
	bus.Emit(Event{Kind: KindFaultDrop, Node: topology.NoNode})
	if m.FaultDrops() != 1 {
		t.Fatalf("FaultDrops = %d", m.FaultDrops())
	}
}

func TestSamplerAggregateRow(t *testing.T) {
	h := testHierarchy(t)
	m := NewMetrics(nil, h, 3)
	bus := NewBus()
	bus.Attach(m.Sink())
	bus.Emit(Event{Kind: KindNACKSent, Node: 1, Zone: 1})
	bus.Emit(Event{Kind: KindPacketDelivered, Zone: 1, A: int64(packet.TypeData), B: 1036})

	s := NewSampler(m)
	s.Sample(1)
	s.Sample(2)
	rows := s.Rows()
	if len(rows) != 2*(h.NumZones()+1) {
		t.Fatalf("rows = %d, want %d", len(rows), 2*(h.NumZones()+1))
	}
	agg, ok := s.Last()
	if !ok || agg.Zone != -1 || agg.T != 2 {
		t.Fatalf("Last = %+v ok=%v", agg, ok)
	}
	if agg.NACKsSent != 1 || agg.DataPkts != 1 || agg.Bytes != 1036 {
		t.Fatalf("aggregate row: %+v", agg)
	}

	var csv bytes.Buffer
	if err := WriteCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+len(rows) {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if got := strings.Count(lines[0], ",") + 1; got != strings.Count(lines[1], ",")+1 {
		t.Fatalf("header has %d columns, row has %d", got, strings.Count(lines[1], ",")+1)
	}
	var js bytes.Buffer
	if err := WriteJSON(&js, rows); err != nil {
		t.Fatal(err)
	}
	var decoded []ZoneSample
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(rows) {
		t.Fatalf("json rows = %d", len(decoded))
	}
}

// TestEmitNoAlloc pins the acceptance criterion: the delivery-path
// emission (build an Event, fan out to the metrics sink) allocates
// nothing, and the disabled path (nil bus) is free.
func TestEmitNoAlloc(t *testing.T) {
	h := testHierarchy(t)
	m := NewMetrics(nil, h, 3)
	bus := NewBus()
	bus.Attach(m.Sink())
	allocs := testing.AllocsPerRun(1000, func() {
		bus.Emit(Event{T: 1, Kind: KindPacketDelivered, Node: 1, Zone: 1,
			Group: -1, A: int64(packet.TypeData), B: 1036})
	})
	if allocs != 0 {
		t.Fatalf("enabled emit allocates %.1f/op", allocs)
	}
	var off *Bus
	allocs = testing.AllocsPerRun(1000, func() {
		if off.On() {
			off.Emit(Event{Kind: KindPacketDelivered})
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled emit allocates %.1f/op", allocs)
	}
}

func BenchmarkEmitMetrics(b *testing.B) {
	h, err := scoping.Build([]topology.ZoneSpec{
		{ID: 0, Parent: -1, Leaves: []topology.NodeID{0}},
		{ID: 1, Parent: 0, Leaves: []topology.NodeID{1, 2}},
	})
	if err != nil {
		b.Fatal(err)
	}
	m := NewMetrics(nil, h, 3)
	bus := NewBus()
	bus.Attach(m.Sink())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bus.Emit(Event{T: 1, Kind: KindPacketDelivered, Node: 1, Zone: 1,
			Group: -1, A: int64(packet.TypeData), B: 1036})
	}
}

func BenchmarkEmitDisabled(b *testing.B) {
	var bus *Bus
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if bus.On() {
			bus.Emit(Event{Kind: KindPacketDelivered})
		}
	}
}
