package faults

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"sharqfec/internal/eventq"
	"sharqfec/internal/netsim"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/simrand"
	"sharqfec/internal/topology"
)

// recorder logs deliveries so tests can compare runs byte-for-byte.
type recorder struct {
	got []arrival
}

type arrival struct {
	at  eventq.Time
	seq uint32
}

func (r *recorder) Receive(now eventq.Time, d Delivery) {
	if dp, ok := d.Pkt.(*packet.Data); ok {
		r.got = append(r.got, arrival{at: now, seq: dp.Seq})
	} else {
		r.got = append(r.got, arrival{at: now})
	}
}

// Delivery aliased locally to keep the recorder's signature readable.
type Delivery = netsim.Delivery

// build wires a network over a spec with a recorder on every member.
func build(t *testing.T, spec *topology.Spec, seed uint64) (*netsim.Network, *simrand.Source, map[topology.NodeID]*recorder) {
	t.Helper()
	h, err := scoping.Build(spec.Zones)
	if err != nil {
		t.Fatal(err)
	}
	var q eventq.Queue
	src := simrand.New(seed)
	n := netsim.New(&q, spec.Graph, h, src)
	recs := map[topology.NodeID]*recorder{}
	for _, m := range spec.Members() {
		r := &recorder{}
		recs[m] = r
		n.Attach(m, r)
	}
	return n, src, recs
}

func dataPkt(seq uint32) *packet.Data {
	return &packet.Data{Origin: 0, Seq: seq, Group: 0, Index: 0, GroupK: 16, Payload: make([]byte, 1000)}
}

func TestParsePlanRoundTrip(t *testing.T) {
	const text = `
# backbone flap during a crash
10.5 link-down 3
12.0 link-up 3   # recovery
9.0  crash 8
20.0 restart 8
9.5  leave 17
10.0 partition-zone 2
14.0 heal-zone 2
0    gilbert-link 3 0.08 6
0    gilbert-all 0.08 6
0    gilbert-equal-mean 6
`
	p, err := ParsePlan(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	want := (&Plan{}).
		LinkDown(10.5, 3).LinkUp(12, 3).
		Crash(9, 8).Restart(20, 8).Leave(9.5, 17).
		PartitionZone(10, 2).HealZone(14, 2).
		GilbertLink(0, 3, 0.08, 6).GilbertAll(0, 0.08, 6).GilbertEqualMean(0, 6)
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("parsed plan mismatch:\n got %+v\nwant %+v", p.Events, want.Events)
	}
	// Event.String must reparse to the same event.
	var b strings.Builder
	for _, ev := range p.Events {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	p2, err := ParsePlan(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("reparsing String output: %v", err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Fatalf("String round-trip mismatch:\n got %+v\nwant %+v", p2.Events, p.Events)
	}
}

func TestParsePlanErrors(t *testing.T) {
	cases := []struct{ text, wantSub string }{
		{"1.0 melt-down 3", "line 1"},
		{"x link-down 3", "bad time"},
		{"1.0 link-down", "1 argument"},
		{"1.0 link-down a", "bad integer"},
		{"1.0 gilbert-link 3 0.08", "3 argument"},
		{"1.0 crash 1 2", "1 argument"},
		{"NaN link-down 3", "bad time"},
		{"+Inf link-down 3", "bad time"},
		{"1.0 gilbert-all NaN 6", "bad number"},
		{"1.0 gilbert-all 0.08 Inf", "bad number"},
		{"1.0 gilbert-equal-mean -Inf", "bad number"},
	}
	for _, c := range cases {
		if _, err := ParsePlan(strings.NewReader(c.text)); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParsePlan(%q) err = %v, want substring %q", c.text, err, c.wantSub)
		}
	}
}

func TestValidate(t *testing.T) {
	spec := topology.Chain(4, 1e6, 0.010, 0)
	h := scoping.MustBuild(spec.Zones)
	g := spec.Graph
	bad := []*Plan{
		(&Plan{}).LinkDown(1, 99),
		(&Plan{}).LinkDown(-1, 0),
		(&Plan{}).Crash(1, 99),
		(&Plan{}).Leave(1, 0).Leave(1, 99),
		(&Plan{}).PartitionZone(1, 7),
		(&Plan{}).GilbertLink(1, 0, 1.0, 6),
		(&Plan{}).GilbertAll(1, 0.1, 0.5),
		(&Plan{}).GilbertEqualMean(1, 0),
		// Non-finite floats must not slip through the range checks:
		// NaN fails every ordinary comparison, so "x < 0" style guards
		// would wave it through.
		(&Plan{}).LinkDown(math.NaN(), 0),
		(&Plan{}).Crash(math.Inf(1), 1),
		(&Plan{}).GilbertAll(1, math.NaN(), 6),
		(&Plan{}).GilbertAll(1, 0.1, math.Inf(1)),
		(&Plan{}).GilbertEqualMean(1, math.NaN()),
	}
	for i, p := range bad {
		if err := p.Validate(g, h); err == nil {
			t.Errorf("plan %d (%v) validated, want error", i, p.Events)
		}
	}
	ok := (&Plan{}).LinkDown(0, 2).LinkUp(3, 2).Crash(1, 3).Leave(2, 1).GilbertEqualMean(0, 6)
	if err := ok.Validate(g, h); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestGilbertBurstCalibration(t *testing.T) {
	const meanLoss, burstLen = 0.1, 5.0
	m, err := NewBurst(simrand.New(7).Stream("test"), meanLoss, burstLen)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400000
	drops, bursts, run := 0, 0, 0
	var runs []int
	for i := 0; i < n; i++ {
		if m.Drop() {
			drops++
			run++
		} else if run > 0 {
			bursts++
			runs = append(runs, run)
			run = 0
		}
	}
	gotMean := float64(drops) / n
	if math.Abs(gotMean-meanLoss) > 0.01 {
		t.Errorf("mean loss %.4f, want %.2f ± 0.01", gotMean, meanLoss)
	}
	sum := 0
	for _, r := range runs {
		sum += r
	}
	gotBurst := float64(sum) / float64(bursts)
	if math.Abs(gotBurst-burstLen) > 0.5 {
		t.Errorf("mean burst length %.2f, want %.1f ± 0.5", gotBurst, burstLen)
	}
	if _, err := NewBurst(nil, 1.0, 5); err == nil {
		t.Error("NewBurst(mean=1) succeeded, want error")
	}
	if _, err := NewBurst(nil, 0.1, 0.5); err == nil {
		t.Error("NewBurst(burst=0.5) succeeded, want error")
	}
}

// TestLinkDownReroutes drops the direct link of a triangle and checks the
// route recomputes through the longer path.
func TestLinkDownReroutes(t *testing.T) {
	g := topology.New(3)
	g.AddLink(0, 1, 1e6, 0.010, 0)           // link 0
	g.AddLink(1, 2, 1e6, 0.010, 0)           // link 1
	direct := g.AddLink(0, 2, 1e6, 0.005, 0) // link 2: shortest 0→2
	spec := &topology.Spec{
		Graph:     g,
		Source:    0,
		Receivers: []topology.NodeID{1, 2},
		Zones:     []topology.ZoneSpec{{ID: 0, Parent: -1, Leaves: []topology.NodeID{0, 1, 2}}},
	}
	n, src, recs := build(t, spec, 1)
	eng := NewEngine(n, src, (&Plan{}).LinkDown(1.0, direct))
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	// Before the fault: 2 hears via the 5 ms direct link.
	n.Q.At(0.5, func(now eventq.Time) { n.Multicast(0, 0, dataPkt(1)) })
	// After: 2 hears via 0—1—2 (20 ms + transmission).
	n.Q.At(2.0, func(now eventq.Time) { n.Multicast(0, 0, dataPkt(2)) })
	n.Q.Run()
	got := recs[2].got
	if len(got) != 2 {
		t.Fatalf("node 2 got %d packets, want 2", len(got))
	}
	d1 := got[0].at.Sub(0.5).Seconds()
	d2 := got[1].at.Sub(2.0).Seconds()
	if d1 > 0.015 {
		t.Errorf("pre-fault delay %.4fs, want ≈ 5 ms path", d1)
	}
	if d2 < 0.020 {
		t.Errorf("post-fault delay %.4fs, want ≥ 20 ms (rerouted)", d2)
	}
	if len(eng.Log()) != 1 {
		t.Errorf("engine log has %d entries, want 1", len(eng.Log()))
	}
}

// TestLinkDownOnChainDropsAndRecovers cuts a chain's only path, counts
// the fault drops, then heals it.
func TestLinkDownOnChainDropsAndRecovers(t *testing.T) {
	spec := topology.Chain(3, 1e6, 0.010, 0)
	n, src, recs := build(t, spec, 1)
	eng := NewEngine(n, src, (&Plan{}).LinkDown(1.0, 1).LinkUp(3.0, 1))
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	for i, at := range []eventq.Time{0.5, 2.0, 3.5} {
		seq := uint32(i + 1)
		n.Q.At(at, func(now eventq.Time) { n.Multicast(0, 0, dataPkt(seq)) })
	}
	// In flight when the link fails: sent just before t=1, it reaches
	// node 1 after the failure and dies at the downed second hop.
	n.Q.At(0.999, func(now eventq.Time) { n.Multicast(0, 0, dataPkt(4)) })
	n.Q.Run()
	var seqs []uint32
	for _, a := range recs[2].got {
		seqs = append(seqs, a.seq)
	}
	if !reflect.DeepEqual(seqs, []uint32{1, 3}) {
		t.Errorf("node 2 received seqs %v, want [1 3] (2 and 4 lost to downed link)", seqs)
	}
	if n.FaultDrops() != 1 {
		t.Errorf("FaultDrops() = %d, want 1 (the in-flight packet)", n.FaultDrops())
	}
}

// TestPartitionHeal isolates a child zone and verifies delivery stops at
// the cut and resumes after healing.
func TestPartitionHeal(t *testing.T) {
	spec := topology.Chain(4, 1e6, 0.010, 0)
	spec.Zones = []topology.ZoneSpec{
		{ID: 0, Parent: -1, Leaves: []topology.NodeID{0, 1}},
		{ID: 1, Parent: 0, Leaves: []topology.NodeID{2, 3}},
	}
	n, src, recs := build(t, spec, 1)
	eng := NewEngine(n, src, (&Plan{}).PartitionZone(1.0, 1).HealZone(3.0, 1))
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	root := scoping.ZoneID(0)
	for i, at := range []eventq.Time{0.5, 2.0, 3.5} {
		seq := uint32(i + 1)
		n.Q.At(at, func(now eventq.Time) { n.Multicast(0, root, dataPkt(seq)) })
	}
	n.Q.Run()
	count := func(node topology.NodeID) int { return len(recs[node].got) }
	if count(1) != 3 {
		t.Errorf("node 1 (outside partition) got %d, want 3", count(1))
	}
	if count(3) != 2 {
		t.Errorf("node 3 (inside partition) got %d, want 2 (one cut off)", count(3))
	}
}

// TestLeaveShrinksDeliverySet removes a member mid-session and checks it
// stops receiving while others are unaffected.
func TestLeaveShrinksDeliverySet(t *testing.T) {
	spec := topology.Chain(3, 1e6, 0.010, 0)
	n, src, recs := build(t, spec, 1)
	var leftAt eventq.Time
	eng := NewEngine(n, src, (&Plan{}).Leave(1.0, 2))
	eng.OnLeave = func(now eventq.Time, node topology.NodeID) { leftAt = now }
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	n.Q.At(0.5, func(now eventq.Time) { n.Multicast(0, 0, dataPkt(1)) })
	n.Q.At(2.0, func(now eventq.Time) { n.Multicast(0, 0, dataPkt(2)) })
	n.Q.Run()
	if len(recs[2].got) != 1 {
		t.Errorf("departed node got %d packets, want 1 (pre-leave only)", len(recs[2].got))
	}
	if len(recs[1].got) != 2 {
		t.Errorf("remaining node got %d packets, want 2", len(recs[1].got))
	}
	if leftAt != 1.0 {
		t.Errorf("OnLeave fired at %v, want 1.0s", leftAt)
	}
}

// TestCrashRestartHooks verifies hook dispatch order and times.
func TestCrashRestartHooks(t *testing.T) {
	spec := topology.Chain(3, 1e6, 0.010, 0)
	n, src, _ := build(t, spec, 1)
	var calls []string
	eng := NewEngine(n, src, (&Plan{}).Crash(1.0, 2).Restart(2.0, 2))
	eng.OnCrash = func(now eventq.Time, node topology.NodeID) {
		calls = append(calls, "crash")
	}
	eng.OnRestart = func(now eventq.Time, node topology.NodeID) {
		calls = append(calls, "restart")
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	n.Q.Run()
	if !reflect.DeepEqual(calls, []string{"crash", "restart"}) {
		t.Fatalf("hook calls = %v, want [crash restart]", calls)
	}
}

// TestGilbertEqualMeanPreservesMean installs per-link burst processes at
// each link's configured rate and checks the long-run loss matches the
// Bernoulli mean.
func TestGilbertEqualMeanPreservesMean(t *testing.T) {
	const loss = 0.2
	spec := topology.Chain(2, 1e9, 0, loss)
	n, src, _ := build(t, spec, 3)
	eng := NewEngine(n, src, (&Plan{}).GilbertEqualMean(0, 6))
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	const trials = 20000
	for i := 0; i < trials; i++ {
		seq := uint32(i)
		n.Q.At(eventq.Time(float64(i)), func(now eventq.Time) { n.Multicast(0, 0, dataPkt(seq)) })
	}
	n.Q.Run()
	_, _, dropped := n.Stats()
	got := float64(dropped) / trials
	if math.Abs(got-loss) > 0.02 {
		t.Errorf("Gilbert equal-mean loss rate %.4f, want %.2f ± 0.02", got, loss)
	}
}

// TestStartRejectsInvalidPlan checks validation runs before scheduling.
func TestStartRejectsInvalidPlan(t *testing.T) {
	spec := topology.Chain(3, 1e6, 0.010, 0)
	n, src, _ := build(t, spec, 1)
	eng := NewEngine(n, src, (&Plan{}).LinkDown(1, 99))
	if err := eng.Start(); err == nil {
		t.Fatal("Start accepted out-of-range link, want error")
	}
	if n.Q.Len() != 0 {
		t.Errorf("invalid plan left %d events scheduled, want 0", n.Q.Len())
	}
}

// TestDeterminismWithFaults runs the same scripted scenario twice and
// requires byte-identical delivery traces.
func TestDeterminismWithFaults(t *testing.T) {
	run := func() (map[topology.NodeID][]arrival, []Applied) {
		spec := topology.Chain(4, 1e6, 0.010, 0.1)
		n, src, recs := build(t, spec, 42)
		plan := (&Plan{}).LinkDown(2.0, 1).LinkUp(4.0, 1).GilbertLink(5.0, 2, 0.3, 4)
		eng := NewEngine(n, src, plan)
		if err := eng.Start(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 60; i++ {
			seq := uint32(i)
			at := eventq.Time(float64(i) * 0.1)
			n.Q.At(at, func(now eventq.Time) { n.Multicast(0, 0, dataPkt(seq)) })
		}
		n.Q.Run()
		out := map[topology.NodeID][]arrival{}
		for id, r := range recs {
			out[id] = r.got
		}
		return out, eng.Log()
	}
	a1, l1 := run()
	a2, l2 := run()
	if !reflect.DeepEqual(a1, a2) {
		t.Error("delivery traces differ between identical runs")
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Error("fault logs differ between identical runs")
	}
}

// TestEmptyPlanIsByteIdentical attaches an engine with an empty plan to
// a lossy run and requires the exact trace of an engine-less run.
func TestEmptyPlanIsByteIdentical(t *testing.T) {
	run := func(withEngine bool) map[topology.NodeID][]arrival {
		spec := topology.Chain(4, 1e6, 0.010, 0.15)
		n, src, recs := build(t, spec, 99)
		if withEngine {
			eng := NewEngine(n, src, &Plan{})
			if err := eng.Start(); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 200; i++ {
			seq := uint32(i)
			at := eventq.Time(float64(i) * 0.05)
			n.Q.At(at, func(now eventq.Time) { n.Multicast(0, 0, dataPkt(seq)) })
		}
		n.Q.Run()
		out := map[topology.NodeID][]arrival{}
		for id, r := range recs {
			out[id] = r.got
		}
		return out
	}
	if !reflect.DeepEqual(run(false), run(true)) {
		t.Error("empty fault plan perturbed the simulation")
	}
}

func TestWithoutMemberValidation(t *testing.T) {
	spec := topology.Chain(3, 1e6, 0.010, 0)
	h := scoping.MustBuild(spec.Zones)
	if _, err := h.WithoutMember(99); err == nil {
		t.Error("WithoutMember(non-member) succeeded, want error")
	}
	h2, err := h.WithoutMember(2)
	if err != nil {
		t.Fatal(err)
	}
	if h2.LeafZone(2) != scoping.NoZone {
		t.Error("removed member still has a leaf zone")
	}
	if h2.NumZones() != h.NumZones() {
		t.Errorf("zone count changed: %d → %d", h.NumZones(), h2.NumZones())
	}
	if errors.Is(err, nil) && h.LeafZone(2) == scoping.NoZone {
		t.Error("WithoutMember mutated the original hierarchy")
	}
}
