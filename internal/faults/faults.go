// Package faults is the simulator's scripted fault-injection and
// network-dynamics engine. The paper's evaluation (§6) runs on static
// topologies with independent Bernoulli loss; its robustness claims —
// ZCRs are re-elected on failure (§3.2, §5.2), repair traffic stays
// localized — are about *dynamic* networks. This package closes that
// gap: a Plan is a deterministic timeline of network events (link
// down/up, node crash/restart, member leave, zone partition/heal,
// Gilbert–Elliott burst-loss processes replacing Bernoulli loss) that an
// Engine replays against a running netsim.Network through the same
// event queue the protocols run on.
//
// Determinism contract: all fault randomness flows through dedicated
// simrand streams ("faults/..."), so a simulation with an empty Plan is
// byte-identical to one without an Engine at all, and any scripted run
// is reproducible from its seed.
package faults

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"sharqfec/internal/scoping"
	"sharqfec/internal/topology"
)

// Kind enumerates the scripted event types.
type Kind int

const (
	// LinkDown administratively disables a link; routing trees and
	// pruned delivery sets recompute around it. Packets reaching the
	// dead link are discarded.
	LinkDown Kind = iota
	// LinkUp re-enables a previously downed link.
	LinkUp
	// Crash fails a session member: its agent stops sending and
	// reacting (the §3.2/§5.2 failure model), while the network keeps
	// forwarding through its attachment point.
	Crash
	// Restart revives a crashed member as a fresh late joiner.
	Restart
	// Leave removes a member from the session entirely: the scoping
	// hierarchy is rebuilt without it and delivery sets shrink.
	Leave
	// PartitionZone disables every link joining the zone's members to
	// the rest of the network, isolating the zone.
	PartitionZone
	// HealZone re-enables the links a matching PartitionZone disabled.
	HealZone
	// GilbertLink replaces one link's Bernoulli loss (both directions)
	// with a Gilbert–Elliott burst process of the given mean loss and
	// mean burst length.
	GilbertLink
	// GilbertAll installs the Gilbert–Elliott process on every link.
	GilbertAll
	// GilbertEqualMean installs per-link Gilbert–Elliott processes
	// whose mean equals each link direction's configured Bernoulli
	// rate — the "equal mean loss, bursty arrivals" sweep.
	GilbertEqualMean
)

// String returns the plan-file keyword for the kind.
func (k Kind) String() string {
	switch k {
	case LinkDown:
		return "link-down"
	case LinkUp:
		return "link-up"
	case Crash:
		return "crash"
	case Restart:
		return "restart"
	case Leave:
		return "leave"
	case PartitionZone:
		return "partition-zone"
	case HealZone:
		return "heal-zone"
	case GilbertLink:
		return "gilbert-link"
	case GilbertAll:
		return "gilbert-all"
	case GilbertEqualMean:
		return "gilbert-equal-mean"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one scripted fault at an absolute simulated time.
type Event struct {
	At   float64
	Kind Kind
	// Node is the subject of Crash/Restart/Leave events.
	Node topology.NodeID
	// Link is the subject of LinkDown/LinkUp/GilbertLink events.
	Link int
	// Zone is the subject of PartitionZone/HealZone events.
	Zone scoping.ZoneID
	// MeanLoss and BurstLen parameterize the Gilbert events.
	MeanLoss, BurstLen float64
}

// String renders the event in plan-file syntax.
func (e Event) String() string { return fmt.Sprintf("%g %s", e.At, e.desc()) }

// desc renders the event's keyword and arguments without its time.
func (e Event) desc() string {
	switch e.Kind {
	case LinkDown, LinkUp:
		return fmt.Sprintf("%s %d", e.Kind, e.Link)
	case Crash, Restart, Leave:
		return fmt.Sprintf("%s %d", e.Kind, e.Node)
	case PartitionZone, HealZone:
		return fmt.Sprintf("%s %d", e.Kind, e.Zone)
	case GilbertLink:
		return fmt.Sprintf("%s %d %g %g", e.Kind, e.Link, e.MeanLoss, e.BurstLen)
	case GilbertAll:
		return fmt.Sprintf("%s %g %g", e.Kind, e.MeanLoss, e.BurstLen)
	case GilbertEqualMean:
		return fmt.Sprintf("%s %g", e.Kind, e.BurstLen)
	}
	return e.Kind.String()
}

// Plan is a deterministic timeline of scripted faults. The zero value
// is the empty plan: attaching it to a simulation changes nothing.
type Plan struct {
	Events []Event
}

// Empty reports whether the plan schedules no events.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// The builder methods below append one event each and return the plan
// for chaining.

// LinkDown schedules a link failure at time at.
func (p *Plan) LinkDown(at float64, link int) *Plan {
	p.Events = append(p.Events, Event{At: at, Kind: LinkDown, Link: link})
	return p
}

// LinkUp schedules a link recovery at time at.
func (p *Plan) LinkUp(at float64, link int) *Plan {
	p.Events = append(p.Events, Event{At: at, Kind: LinkUp, Link: link})
	return p
}

// Crash schedules a member failure at time at.
func (p *Plan) Crash(at float64, node topology.NodeID) *Plan {
	p.Events = append(p.Events, Event{At: at, Kind: Crash, Node: node})
	return p
}

// Restart schedules a crashed member's revival at time at.
func (p *Plan) Restart(at float64, node topology.NodeID) *Plan {
	p.Events = append(p.Events, Event{At: at, Kind: Restart, Node: node})
	return p
}

// Leave schedules a member's departure from the session at time at.
func (p *Plan) Leave(at float64, node topology.NodeID) *Plan {
	p.Events = append(p.Events, Event{At: at, Kind: Leave, Node: node})
	return p
}

// PartitionZone schedules the isolation of a zone at time at.
func (p *Plan) PartitionZone(at float64, zone scoping.ZoneID) *Plan {
	p.Events = append(p.Events, Event{At: at, Kind: PartitionZone, Zone: zone})
	return p
}

// HealZone schedules the healing of a partitioned zone at time at.
func (p *Plan) HealZone(at float64, zone scoping.ZoneID) *Plan {
	p.Events = append(p.Events, Event{At: at, Kind: HealZone, Zone: zone})
	return p
}

// GilbertLink schedules a burst-loss takeover of one link at time at.
func (p *Plan) GilbertLink(at float64, link int, meanLoss, burstLen float64) *Plan {
	p.Events = append(p.Events, Event{At: at, Kind: GilbertLink, Link: link, MeanLoss: meanLoss, BurstLen: burstLen})
	return p
}

// GilbertAll schedules burst loss on every link at time at.
func (p *Plan) GilbertAll(at float64, meanLoss, burstLen float64) *Plan {
	p.Events = append(p.Events, Event{At: at, Kind: GilbertAll, MeanLoss: meanLoss, BurstLen: burstLen})
	return p
}

// GilbertEqualMean schedules per-link burst loss at each link's
// configured mean rate at time at.
func (p *Plan) GilbertEqualMean(at float64, burstLen float64) *Plan {
	p.Events = append(p.Events, Event{At: at, Kind: GilbertEqualMean, BurstLen: burstLen})
	return p
}

// Validate checks every event against the network it will run on.
func (p *Plan) Validate(g *topology.Graph, h *scoping.Hierarchy) error {
	for i, e := range p.Events {
		// Comparisons are written so NaN fails them: NaN < 0 is false,
		// so a bare "e.At < 0" would wave a NaN timestamp through and
		// wedge the event-queue schedule.
		if !(e.At >= 0) || math.IsInf(e.At, 0) {
			return fmt.Errorf("faults: event %d (%s): time must be finite and non-negative", i, e)
		}
		switch e.Kind {
		case LinkDown, LinkUp:
			if e.Link < 0 || e.Link >= g.NumLinks() {
				return fmt.Errorf("faults: event %d (%s): link %d out of range [0,%d)", i, e, e.Link, g.NumLinks())
			}
		case Crash, Restart, Leave:
			if e.Node < 0 || int(e.Node) >= g.NumNodes() {
				return fmt.Errorf("faults: event %d (%s): node %d out of range [0,%d)", i, e, e.Node, g.NumNodes())
			}
			if e.Kind == Leave && h.LeafZone(e.Node) == scoping.NoZone {
				return fmt.Errorf("faults: event %d (%s): node %d is not a session member", i, e, e.Node)
			}
		case PartitionZone, HealZone:
			if e.Zone < 0 || int(e.Zone) >= h.NumZones() {
				return fmt.Errorf("faults: event %d (%s): zone %d out of range [0,%d)", i, e, e.Zone, h.NumZones())
			}
		case GilbertLink:
			if e.Link < 0 || e.Link >= g.NumLinks() {
				return fmt.Errorf("faults: event %d (%s): link %d out of range [0,%d)", i, e, e.Link, g.NumLinks())
			}
			fallthrough
		case GilbertAll:
			if !(e.MeanLoss >= 0 && e.MeanLoss < 1) {
				return fmt.Errorf("faults: event %d (%s): mean loss %g outside [0,1)", i, e, e.MeanLoss)
			}
			fallthrough
		case GilbertEqualMean:
			if !(e.BurstLen >= 1) || math.IsInf(e.BurstLen, 0) {
				return fmt.Errorf("faults: event %d (%s): burst length %g must be finite and >= 1", i, e, e.BurstLen)
			}
		default:
			return fmt.Errorf("faults: event %d: unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// ParsePlan reads the plan-file format: one event per line,
//
//	<seconds> <keyword> <args...>
//
// with '#' comments and blank lines ignored. Keywords and argument
// counts match Event.String:
//
//	10.5 link-down 3
//	12.0 link-up 3
//	9.0  crash 8
//	20.0 restart 8
//	9.0  leave 17
//	10.0 partition-zone 2
//	14.0 heal-zone 2
//	0    gilbert-link 3 0.08 6
//	0    gilbert-all 0.08 6
//	0    gilbert-equal-mean 6
func ParsePlan(r io.Reader) (*Plan, error) {
	p := &Plan{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		ev, err := parseEvent(fields)
		if err != nil {
			return nil, fmt.Errorf("faults: line %d: %w", lineNo, err)
		}
		p.Events = append(p.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	return p, nil
}

func parseEvent(fields []string) (Event, error) {
	var ev Event
	at, err := strconv.ParseFloat(fields[0], 64)
	if err != nil || math.IsNaN(at) || math.IsInf(at, 0) {
		return ev, fmt.Errorf("bad time %q (want a finite number)", fields[0])
	}
	ev.At = at
	args := fields[2:]
	needArgs := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s takes %d argument(s), got %d", fields[1], n, len(args))
		}
		return nil
	}
	argInt := func(i int) (int, error) {
		v, err := strconv.Atoi(args[i])
		if err != nil {
			return 0, fmt.Errorf("bad integer %q: %w", args[i], err)
		}
		return v, nil
	}
	argFloat := func(i int) (float64, error) {
		v, err := strconv.ParseFloat(args[i], 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("bad number %q (want a finite number)", args[i])
		}
		return v, nil
	}
	switch fields[1] {
	case "link-down", "link-up":
		ev.Kind = LinkDown
		if fields[1] == "link-up" {
			ev.Kind = LinkUp
		}
		if err := needArgs(1); err != nil {
			return ev, err
		}
		ev.Link, err = argInt(0)
	case "crash", "restart", "leave":
		switch fields[1] {
		case "crash":
			ev.Kind = Crash
		case "restart":
			ev.Kind = Restart
		default:
			ev.Kind = Leave
		}
		if err := needArgs(1); err != nil {
			return ev, err
		}
		var n int
		n, err = argInt(0)
		ev.Node = topology.NodeID(n)
	case "partition-zone", "heal-zone":
		ev.Kind = PartitionZone
		if fields[1] == "heal-zone" {
			ev.Kind = HealZone
		}
		if err := needArgs(1); err != nil {
			return ev, err
		}
		var z int
		z, err = argInt(0)
		ev.Zone = scoping.ZoneID(z)
	case "gilbert-link":
		ev.Kind = GilbertLink
		if err := needArgs(3); err != nil {
			return ev, err
		}
		if ev.Link, err = argInt(0); err != nil {
			return ev, err
		}
		if ev.MeanLoss, err = argFloat(1); err != nil {
			return ev, err
		}
		ev.BurstLen, err = argFloat(2)
	case "gilbert-all":
		ev.Kind = GilbertAll
		if err := needArgs(2); err != nil {
			return ev, err
		}
		if ev.MeanLoss, err = argFloat(0); err != nil {
			return ev, err
		}
		ev.BurstLen, err = argFloat(1)
	case "gilbert-equal-mean":
		ev.Kind = GilbertEqualMean
		if err := needArgs(1); err != nil {
			return ev, err
		}
		ev.BurstLen, err = argFloat(0)
	default:
		return ev, fmt.Errorf("unknown event keyword %q", fields[1])
	}
	return ev, err
}
