package faults

import (
	"fmt"

	"sharqfec/internal/simrand"
)

// GilbertElliott is a two-state Markov burst-loss process implementing
// netsim.LossModel. The chain advances one step per loss-eligible packet
// crossing the link direction: in the Good state packets drop with
// probability LossGood, in the Bad state with LossBad, and the state
// transitions afterwards with probabilities PGoodBad / PBadGood. With
// LossGood = 0 and LossBad = 1 this is the classic Gilbert model: loss
// arrives in bursts of mean length 1/PBadGood, with stationary mean loss
// PGoodBad/(PGoodBad+PBadGood) — directly comparable to a Bernoulli link
// at the same mean, which is exactly what i.i.d.-loss analyses of hybrid
// ARQ/FEC assume away.
type GilbertElliott struct {
	rng                *simrand.Rand
	pGoodBad, pBadGood float64
	lossGood, lossBad  float64
	bad                bool
}

// NewGilbertElliott builds the general two-state model. The caller owns
// the stream; use a dedicated "faults/..." stream so installing the
// model never perturbs other draws.
func NewGilbertElliott(rng *simrand.Rand, pGoodBad, pBadGood, lossGood, lossBad float64) *GilbertElliott {
	return &GilbertElliott{
		rng:      rng,
		pGoodBad: pGoodBad, pBadGood: pBadGood,
		lossGood: lossGood, lossBad: lossBad,
	}
}

// NewBurst builds the classic Gilbert model (LossGood 0, LossBad 1)
// calibrated to a stationary mean loss rate and a mean burst length in
// packets: PBadGood = 1/burstLen and PGoodBad solves the stationary
// equation meanLoss = PGoodBad/(PGoodBad+PBadGood).
func NewBurst(rng *simrand.Rand, meanLoss, burstLen float64) (*GilbertElliott, error) {
	if meanLoss < 0 || meanLoss >= 1 {
		return nil, fmt.Errorf("faults: mean loss %g outside [0,1)", meanLoss)
	}
	if burstLen < 1 {
		return nil, fmt.Errorf("faults: burst length %g < 1", burstLen)
	}
	pBG := 1 / burstLen
	pGB := meanLoss * pBG / (1 - meanLoss)
	return NewGilbertElliott(rng, pGB, pBG, 0, 1), nil
}

// Params returns the chain's transition and per-state loss
// probabilities — the ground truth an online estimator (see
// internal/ratecontrol) should converge to.
func (g *GilbertElliott) Params() (pGoodBad, pBadGood, lossGood, lossBad float64) {
	return g.pGoodBad, g.pBadGood, g.lossGood, g.lossBad
}

// StationaryLoss returns the chain's stationary mean drop rate:
// the state-occupancy-weighted mix of the per-state loss probabilities.
func (g *GilbertElliott) StationaryLoss() float64 {
	if g.pGoodBad+g.pBadGood <= 0 {
		return g.lossGood
	}
	pBad := g.pGoodBad / (g.pGoodBad + g.pBadGood)
	return (1-pBad)*g.lossGood + pBad*g.lossBad
}

// MeanBurstLen returns the mean Bad-state sojourn in packets,
// 1/PBadGood (the mean loss-burst length for the classic model).
func (g *GilbertElliott) MeanBurstLen() float64 {
	if g.pBadGood <= 0 {
		return 1
	}
	return 1 / g.pBadGood
}

// Drop implements netsim.LossModel: emit from the current state, then
// advance the chain.
func (g *GilbertElliott) Drop() bool {
	p := g.lossGood
	if g.bad {
		p = g.lossBad
	}
	drop := g.rng.Bernoulli(p)
	if g.bad {
		if g.rng.Bernoulli(g.pBadGood) {
			g.bad = false
		}
	} else if g.rng.Bernoulli(g.pGoodBad) {
		g.bad = true
	}
	return drop
}
