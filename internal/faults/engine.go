package faults

import (
	"fmt"

	"sharqfec/internal/eventq"
	"sharqfec/internal/netsim"
	"sharqfec/internal/scoping"
	"sharqfec/internal/simrand"
	"sharqfec/internal/telemetry"
	"sharqfec/internal/topology"
)

// Engine replays a Plan against a running netsim.Network through the
// simulation's own event queue, so scripted faults interleave
// deterministically with protocol traffic. Network-level events (link
// state, loss models, membership) are applied directly; node-level
// events (crash, restart, leave) are delegated to the hooks, because
// only the layer that wired the protocol agents knows how to stop or
// respawn one.
type Engine struct {
	net  *netsim.Network
	src  *simrand.Source
	plan Plan

	// OnCrash, OnRestart and OnLeave are invoked when the corresponding
	// event fires. A nil hook makes the event a no-op (the network-level
	// part of Leave — shrinking the delivery sets — still happens).
	OnCrash   func(now eventq.Time, node topology.NodeID)
	OnRestart func(now eventq.Time, node topology.NodeID)
	OnLeave   func(now eventq.Time, node topology.NodeID)

	// Telemetry, when non-nil, receives a fault-transition event for
	// every plan event as it fires.
	Telemetry *telemetry.Bus

	// Schedule, when non-nil, overrides how plan events are placed on
	// the virtual clock. Zone-sharded runs point it at the shard
	// group's sync barriers, so topology mutations run while every
	// shard is quiescent; nil uses the network's own event queue.
	Schedule func(at eventq.Time, fn func(now eventq.Time))

	log []Applied
	// partitioned records, per zone, the links a PartitionZone event
	// disabled, so HealZone re-enables exactly those.
	partitioned map[scoping.ZoneID][]int
}

// Applied is one log entry: a fault that has fired.
type Applied struct {
	At   eventq.Time
	Desc string
}

// NewEngine creates an engine for net. Fault randomness (the
// Gilbert–Elliott processes) is drawn from dedicated "faults/..."
// streams of src, never from the streams the simulation already uses.
func NewEngine(net *netsim.Network, src *simrand.Source, plan *Plan) *Engine {
	e := &Engine{net: net, src: src, partitioned: make(map[scoping.ZoneID][]int)}
	if plan != nil {
		e.plan = *plan
	}
	return e
}

// Start validates the plan against the network and schedules every
// event on the simulation queue. With an empty plan it schedules
// nothing, leaving the simulation byte-identical to an engine-less run.
func (e *Engine) Start() error {
	if err := e.plan.Validate(e.net.G, e.net.H); err != nil {
		return err
	}
	sched := e.Schedule
	if sched == nil {
		sched = func(at eventq.Time, fn func(now eventq.Time)) { e.net.Q.At(at, fn) }
	}
	for _, ev := range e.plan.Events {
		ev := ev
		sched(eventq.Time(ev.At), func(now eventq.Time) {
			e.apply(now, ev)
		})
	}
	return nil
}

// Log returns the faults applied so far, in firing order.
func (e *Engine) Log() []Applied { return e.log }

func (e *Engine) apply(now eventq.Time, ev Event) {
	switch ev.Kind {
	case LinkDown:
		e.net.SetLinkUp(ev.Link, false)
	case LinkUp:
		e.net.SetLinkUp(ev.Link, true)
	case Crash:
		if e.OnCrash != nil {
			e.OnCrash(now, ev.Node)
		}
	case Restart:
		if e.OnRestart != nil {
			e.OnRestart(now, ev.Node)
		}
	case Leave:
		if h, err := e.net.H.WithoutMember(ev.Node); err == nil {
			e.net.SetHierarchy(h)
		}
		if e.OnLeave != nil {
			e.OnLeave(now, ev.Node)
		}
	case PartitionZone:
		e.partition(ev.Zone)
	case HealZone:
		for _, li := range e.partitioned[ev.Zone] {
			e.net.SetLinkUp(li, true)
		}
		delete(e.partitioned, ev.Zone)
	case GilbertLink:
		e.installGilbert(ev.Link, ev.MeanLoss, ev.MeanLoss, ev.BurstLen)
	case GilbertAll:
		for li := 0; li < e.net.G.NumLinks(); li++ {
			e.installGilbert(li, ev.MeanLoss, ev.MeanLoss, ev.BurstLen)
		}
	case GilbertEqualMean:
		// Per-direction mean equal to the configured Bernoulli rate:
		// bursty arrivals, identical long-run loss.
		for li := 0; li < e.net.G.NumLinks(); li++ {
			l := e.net.G.Link(li)
			e.installGilbert(li, l.LossAB, l.LossBA, ev.BurstLen)
		}
	}
	e.log = append(e.log, Applied{At: now, Desc: ev.desc()})
	if e.Telemetry != nil {
		node := topology.NoNode
		zone := scoping.NoZone
		switch ev.Kind {
		case Crash, Restart, Leave:
			node = ev.Node
		case PartitionZone, HealZone:
			zone = ev.Zone
		}
		e.Telemetry.Emit(telemetry.Event{
			T: now.Seconds(), Kind: telemetry.KindFault, Node: node, Zone: zone,
			Group: -1, A: int64(ev.Kind), B: int64(ev.Link),
		})
	}
}

// partition disables every enabled link with exactly one endpoint
// inside the zone's membership, recording them for HealZone.
func (e *Engine) partition(zone scoping.ZoneID) {
	inside := make([]bool, e.net.G.NumNodes())
	for _, m := range e.net.H.Members(zone) {
		inside[m] = true
	}
	var cut []int
	for li := 0; li < e.net.G.NumLinks(); li++ {
		if !e.net.G.LinkUp(li) {
			continue
		}
		l := e.net.G.Link(li)
		if inside[l.A] != inside[l.B] {
			e.net.SetLinkUp(li, false)
			cut = append(cut, li)
		}
	}
	e.partitioned[zone] = append(e.partitioned[zone], cut...)
}

// installGilbert puts a burst process on both directions of a link, one
// independent stream per direction. Directions whose mean is zero keep
// the default (lossless) path so the stream is never created.
func (e *Engine) installGilbert(link int, meanAB, meanBA, burstLen float64) {
	means := [2]float64{meanAB, meanBA}
	for dir := 0; dir < 2; dir++ {
		if means[dir] <= 0 {
			e.net.SetLossModel(link, dir, nil)
			continue
		}
		rng := e.src.StreamN2("faults/gilbert", link, dir)
		m, err := NewBurst(rng, means[dir], burstLen)
		if err != nil {
			// Validate bounds MeanLoss and BurstLen, so this is
			// unreachable for scripted events; guard anyway.
			panic(fmt.Sprintf("faults: installGilbert(%d): %v", link, err))
		}
		e.net.SetLossModel(link, dir, m)
	}
}
