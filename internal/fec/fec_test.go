package fec

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// --- GF(256) arithmetic ---

func TestGFMulCommutative(t *testing.T) {
	for a := 0; a < 256; a += 7 {
		for b := 0; b < 256; b += 11 {
			if gfMul(byte(a), byte(b)) != gfMul(byte(b), byte(a)) {
				t.Fatalf("mul not commutative at %d,%d", a, b)
			}
		}
	}
}

func TestGFMulIdentityAndZero(t *testing.T) {
	for a := 0; a < 256; a++ {
		if gfMul(byte(a), 1) != byte(a) {
			t.Fatalf("a*1 != a for a=%d", a)
		}
		if gfMul(byte(a), 0) != 0 {
			t.Fatalf("a*0 != 0 for a=%d", a)
		}
	}
}

func TestGFMulAssociative(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 2000; i++ {
		a, b, c := byte(r.IntN(256)), byte(r.IntN(256)), byte(r.IntN(256))
		if gfMul(gfMul(a, b), c) != gfMul(a, gfMul(b, c)) {
			t.Fatalf("mul not associative at %d,%d,%d", a, b, c)
		}
	}
}

func TestGFDistributive(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 2000; i++ {
		a, b, c := byte(r.IntN(256)), byte(r.IntN(256)), byte(r.IntN(256))
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("not distributive at %d,%d,%d", a, b, c)
		}
	}
}

func TestGFInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
	}
}

func TestGFDiv(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 2000; i++ {
		a, b := byte(r.IntN(256)), byte(1+r.IntN(255))
		if gfMul(gfDiv(a, b), b) != a {
			t.Fatalf("(a/b)*b != a for a=%d b=%d", a, b)
		}
	}
}

func TestGFDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("gfDiv by zero did not panic")
		}
	}()
	gfDiv(5, 0)
}

func TestGFInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("gfInv(0) did not panic")
		}
	}()
	gfInv(0)
}

func TestGFPow(t *testing.T) {
	if gfPow(0, 0) != 1 {
		t.Fatal("0^0 != 1")
	}
	if gfPow(0, 5) != 0 {
		t.Fatal("0^5 != 0")
	}
	for a := 1; a < 256; a += 3 {
		acc := byte(1)
		for n := 0; n < 10; n++ {
			if gfPow(byte(a), n) != acc {
				t.Fatalf("pow(%d, %d) mismatch", a, n)
			}
			acc = gfMul(acc, byte(a))
		}
	}
}

func TestGFExpLogRoundTrip(t *testing.T) {
	seen := map[byte]bool{}
	for i := 0; i < 255; i++ {
		v := gfExp[i]
		if seen[v] {
			t.Fatalf("generator not primitive: repeat at exponent %d", i)
		}
		seen[v] = true
	}
}

func TestMulSliceAgainstScalar(t *testing.T) {
	src := []byte{0, 1, 2, 3, 100, 200, 255}
	dst := make([]byte, len(src))
	for _, c := range []byte{0, 1, 2, 37, 255} {
		mulSlice(dst, src, c)
		for i := range src {
			if dst[i] != gfMul(src[i], c) {
				t.Fatalf("mulSlice c=%d i=%d: %d != %d", c, i, dst[i], gfMul(src[i], c))
			}
		}
	}
}

func TestAddMulSliceAgainstScalar(t *testing.T) {
	src := []byte{0, 1, 2, 3, 100, 200, 255}
	for _, c := range []byte{0, 1, 2, 37, 255} {
		dst := []byte{9, 9, 9, 9, 9, 9, 9}
		addMulSlice(dst, src, c)
		for i := range src {
			if dst[i] != 9^gfMul(src[i], c) {
				t.Fatalf("addMulSlice c=%d i=%d", c, i)
			}
		}
	}
}

// --- matrices ---

func TestMatrixInvertIdentity(t *testing.T) {
	id := identity(5)
	inv, err := id.invert()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(inv.data, id.data) {
		t.Fatal("inverse of identity is not identity")
	}
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.IntN(8)
		m := newMatrix(n, n)
		for i := range m.data {
			m.data[i] = byte(r.IntN(256))
		}
		inv, err := m.invert()
		if err != nil {
			continue // singular random matrix; skip
		}
		prod := m.mul(inv)
		if !bytes.Equal(prod.data, identity(n).data) {
			t.Fatalf("m * m^-1 != I for n=%d", n)
		}
	}
}

func TestMatrixSingularDetected(t *testing.T) {
	m := newMatrix(2, 2)
	m.set(0, 0, 3)
	m.set(0, 1, 5)
	m.set(1, 0, 3)
	m.set(1, 1, 5)
	if _, err := m.invert(); err == nil {
		t.Fatal("singular matrix inverted without error")
	}
}

func TestVandermondeAnyKRowsInvertible(t *testing.T) {
	const k = 5
	v := vandermonde(40, k)
	r := rand.New(rand.NewPCG(9, 10))
	for trial := 0; trial < 50; trial++ {
		rows := r.Perm(40)[:k]
		if _, err := v.subMatrixRows(rows).invert(); err != nil {
			t.Fatalf("vandermonde rows %v singular: %v", rows, err)
		}
	}
}

// --- codec ---

func mkData(r *rand.Rand, k, size int) [][]byte {
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, size)
		for j := range data[i] {
			data[i][j] = byte(r.IntN(256))
		}
	}
	return data
}

func TestCodecSystematic(t *testing.T) {
	c, err := NewCodec(4)
	if err != nil {
		t.Fatal(err)
	}
	data := mkData(rand.New(rand.NewPCG(1, 1)), 4, 64)
	shares := make([]Share, 4)
	for i := range shares {
		shares[i] = Share{Index: i, Data: data[i]}
	}
	dec, err := c.Decode(shares)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(dec[i], data[i]) {
			t.Fatalf("systematic decode altered share %d", i)
		}
	}
}

func TestCodecAllErasurePatterns(t *testing.T) {
	const k, h = 4, 4
	c, err := NewCodec(k)
	if err != nil {
		t.Fatal(err)
	}
	data := mkData(rand.New(rand.NewPCG(2, 2)), k, 32)
	repairs, err := c.Repairs(data, h)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]Share, 0, k+h)
	for i := 0; i < k; i++ {
		all = append(all, Share{Index: i, Data: data[i]})
	}
	all = append(all, repairs...)

	// Every subset of exactly k of the k+h shares must decode.
	n := k + h
	for mask := 0; mask < 1<<n; mask++ {
		if popcount(mask) != k {
			continue
		}
		var sub []Share
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, all[i])
			}
		}
		dec, err := c.Decode(sub)
		if err != nil {
			t.Fatalf("mask %b failed: %v", mask, err)
		}
		for i := range data {
			if !bytes.Equal(dec[i], data[i]) {
				t.Fatalf("mask %b wrong data at %d", mask, i)
			}
		}
	}
}

func popcount(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestCodecInsufficientShares(t *testing.T) {
	c, _ := NewCodec(4)
	data := mkData(rand.New(rand.NewPCG(3, 3)), 4, 16)
	_, err := c.Decode([]Share{{Index: 0, Data: data[0]}, {Index: 2, Data: data[2]}})
	if !errors.Is(err, ErrInsufficientShares) {
		t.Fatalf("want ErrInsufficientShares, got %v", err)
	}
}

func TestCodecDuplicateIndicesNotCounted(t *testing.T) {
	c, _ := NewCodec(3)
	data := mkData(rand.New(rand.NewPCG(4, 4)), 3, 16)
	shares := []Share{
		{Index: 0, Data: data[0]},
		{Index: 0, Data: data[0]},
		{Index: 1, Data: data[1]},
	}
	if _, err := c.Decode(shares); !errors.Is(err, ErrInsufficientShares) {
		t.Fatalf("duplicates satisfied decode: %v", err)
	}
}

func TestCodecMismatchedShareLength(t *testing.T) {
	c, _ := NewCodec(2)
	_, err := c.Decode([]Share{
		{Index: 0, Data: make([]byte, 8)},
		{Index: 1, Data: make([]byte, 9)},
	})
	if err == nil {
		t.Fatal("mismatched share lengths accepted")
	}
}

func TestCodecRepairIndexValidation(t *testing.T) {
	c, _ := NewCodec(4)
	data := mkData(rand.New(rand.NewPCG(5, 5)), 4, 8)
	if _, err := c.Repair(data, 3); err == nil {
		t.Fatal("repair index < k accepted")
	}
	if _, err := c.Repair(data, MaxShares); err == nil {
		t.Fatal("repair index >= MaxShares accepted")
	}
}

func TestCodecBadK(t *testing.T) {
	if _, err := NewCodec(0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewCodec(256); err == nil {
		t.Fatal("k=256 accepted")
	}
}

func TestCodecWrongDataCount(t *testing.T) {
	c, _ := NewCodec(4)
	if _, err := c.Repair(mkData(rand.New(rand.NewPCG(6, 6)), 3, 8), 4); err == nil {
		t.Fatal("wrong data share count accepted")
	}
}

func TestCodecK1(t *testing.T) {
	c, err := NewCodec(1)
	if err != nil {
		t.Fatal(err)
	}
	data := [][]byte{{1, 2, 3}}
	rep, err := c.Repair(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decode([]Share{rep})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec[0], data[0]) {
		t.Fatal("k=1 repair did not reconstruct")
	}
}

func TestCodecPaperGroupSize(t *testing.T) {
	// The paper sends groups of 16 packets; verify a realistic loss
	// pattern: 5 of 16 data packets lost, 5 repairs received.
	const k = 16
	c, err := NewCodec(k)
	if err != nil {
		t.Fatal(err)
	}
	data := mkData(rand.New(rand.NewPCG(7, 7)), k, 1000)
	repairs, err := c.Repairs(data, 5)
	if err != nil {
		t.Fatal(err)
	}
	var got []Share
	for i := 0; i < k; i++ {
		if i%3 == 0 && len(got) < k-5 { // drop 5 data shares
			got = append(got, Share{Index: i, Data: data[i]})
		} else if i%3 != 0 {
			got = append(got, Share{Index: i, Data: data[i]})
		}
	}
	got = got[:k-5]
	got = append(got, repairs...)
	dec, err := c.Decode(got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(dec[i], data[i]) {
			t.Fatalf("group-of-16 decode wrong at %d", i)
		}
	}
}

// Property: for random k, h, loss patterns, decode recovers the data as
// long as at least k distinct shares survive.
func TestPropertyCodecRecovers(t *testing.T) {
	f := func(seed uint64, kRaw, hRaw, sizeRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, 99))
		k := int(kRaw%12) + 1
		h := int(hRaw % 12)
		if k+h > MaxShares {
			h = MaxShares - k
		}
		size := int(sizeRaw%128) + 1
		c, err := NewCodec(k)
		if err != nil {
			return false
		}
		data := mkData(r, k, size)
		repairs, err := c.Repairs(data, h)
		if err != nil {
			return false
		}
		all := make([]Share, 0, k+h)
		for i := 0; i < k; i++ {
			all = append(all, Share{Index: i, Data: data[i]})
		}
		all = append(all, repairs...)
		r.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
		if len(all) < k {
			return true
		}
		surviving := all[:k+r.IntN(len(all)-k+1)]
		dec, err := c.Decode(surviving)
		if err != nil {
			return false
		}
		for i := range data {
			if !bytes.Equal(dec[i], data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecKAccessor(t *testing.T) {
	c, _ := NewCodec(9)
	if c.K() != 9 {
		t.Fatalf("K() = %d", c.K())
	}
}

func TestCodecRepairsCountValidation(t *testing.T) {
	c, _ := NewCodec(250)
	data := mkData(rand.New(rand.NewPCG(8, 8)), 250, 4)
	if _, err := c.Repairs(data, 6); err == nil {
		t.Fatal("k+h > MaxShares accepted")
	}
	if _, err := c.Repairs(data, -1); err == nil {
		t.Fatal("negative h accepted")
	}
}
