package fec

import "fmt"

// matrix is a dense row-major matrix over GF(2^8).
type matrix struct {
	rows, cols int
	data       []byte
}

func newMatrix(rows, cols int) *matrix {
	return &matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

func (m *matrix) at(r, c int) byte     { return m.data[r*m.cols+c] }
func (m *matrix) set(r, c int, v byte) { m.data[r*m.cols+c] = v }
func (m *matrix) row(r int) []byte     { return m.data[r*m.cols : (r+1)*m.cols] }
func (m *matrix) swapRows(i, j int) {
	ri, rj := m.row(i), m.row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// clone returns a deep copy.
func (m *matrix) clone() *matrix {
	c := newMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// identity returns the n×n identity matrix.
func identity(n int) *matrix {
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m.set(i, i, 1)
	}
	return m
}

// vandermonde returns the n×k matrix with entry (i, j) = x_i^j where the
// evaluation points x_i = i are distinct, so every k×k submatrix built
// from distinct rows is invertible (standard Vandermonde property after
// the systematic transform below).
func vandermonde(n, k int) *matrix {
	m := newMatrix(n, k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			m.set(i, j, gfPow(byte(i), j))
		}
	}
	return m
}

// mul returns m × o.
func (m *matrix) mul(o *matrix) *matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("fec: matrix size mismatch %dx%d × %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	out := newMatrix(m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.row(i)
		orow := out.row(i)
		for l, c := range mrow {
			if c != 0 {
				addMulSlice(orow, o.row(l), c)
			}
		}
	}
	return out
}

// invert returns m⁻¹ via Gauss–Jordan elimination, or an error if m is
// singular. m must be square; it is not modified.
func (m *matrix) invert() (*matrix, error) {
	if m.rows != m.cols {
		panic("fec: invert on non-square matrix")
	}
	n := m.rows
	a := m.clone()
	inv := identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if a.at(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("fec: singular matrix at column %d", col)
		}
		if pivot != col {
			a.swapRows(pivot, col)
			inv.swapRows(pivot, col)
		}
		// Scale pivot row to make the pivot 1.
		if p := a.at(col, col); p != 1 {
			ip := gfInv(p)
			mulSlice(a.row(col), a.row(col), ip)
			mulSlice(inv.row(col), inv.row(col), ip)
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if c := a.at(r, col); c != 0 {
				addMulSlice(a.row(r), a.row(col), c)
				addMulSlice(inv.row(r), inv.row(col), c)
			}
		}
	}
	return inv, nil
}

// subMatrixRows returns a new matrix formed from the given rows of m.
func (m *matrix) subMatrixRows(rows []int) *matrix {
	out := newMatrix(len(rows), m.cols)
	for i, r := range rows {
		copy(out.row(i), m.row(r))
	}
	return out
}
