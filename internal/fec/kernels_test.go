package fec

// Result-equality tests for the optimized kernels: the table-driven
// mulSlice/addMulSlice and the word-wide XOR path must be byte-identical
// to the retained scalar reference kernels on every length, alignment,
// and coefficient — that equality is what makes the fast paths
// determinism-preserving by construction.

import (
	"bytes"
	"math/rand/v2"
	"sync"
	"testing"
)

func TestGFMulTableMatchesRef(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := gfMul(byte(a), byte(b)), gfMulRef(byte(a), byte(b)); got != want {
				t.Fatalf("gfMul(%d, %d) = %d, ref = %d", a, b, got, want)
			}
		}
	}
}

// TestKernelsMatchScalarReference sweeps random lengths and slice
// offsets — including the unaligned head and the sub-word tail of the
// 8-byte-wide path — for every coefficient class (0, 1, arbitrary).
func TestKernelsMatchScalarReference(t *testing.T) {
	r := rand.New(rand.NewPCG(42, 43))
	backing := make([]byte, 4096)
	for i := range backing {
		backing[i] = byte(r.IntN(256))
	}
	coeffs := []byte{0, 1, 2, 3, 37, 128, 254, 255}
	for trial := 0; trial < 500; trial++ {
		off := r.IntN(64)
		length := r.IntN(300) // covers 0, <8 (pure tail), and multi-word
		src := backing[off : off+length]
		c := coeffs[r.IntN(len(coeffs))]
		if trial%3 == 0 {
			c = byte(r.IntN(256))
		}

		dstOpt := make([]byte, length)
		dstRef := make([]byte, length)
		for i := range dstOpt {
			v := byte(r.IntN(256))
			dstOpt[i], dstRef[i] = v, v
		}

		mulSlice(dstOpt, src, c)
		mulSliceRef(dstRef, src, c)
		if !bytes.Equal(dstOpt, dstRef) {
			t.Fatalf("mulSlice diverges from scalar ref: len=%d off=%d c=%d", length, off, c)
		}

		for i := range dstOpt {
			v := byte(r.IntN(256))
			dstOpt[i], dstRef[i] = v, v
		}
		addMulSlice(dstOpt, src, c)
		addMulSliceRef(dstRef, src, c)
		if !bytes.Equal(dstOpt, dstRef) {
			t.Fatalf("addMulSlice diverges from scalar ref: len=%d off=%d c=%d", length, off, c)
		}
	}
}

// TestXorSliceUnalignedTail pins the head/tail handling of the word-wide
// XOR path at every length around the 8-byte boundary.
func TestXorSliceUnalignedTail(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	for length := 0; length <= 40; length++ {
		src := make([]byte, length)
		dst := make([]byte, length)
		want := make([]byte, length)
		for i := 0; i < length; i++ {
			src[i] = byte(r.IntN(256))
			dst[i] = byte(r.IntN(256))
			want[i] = dst[i] ^ src[i]
		}
		xorSlice(dst, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("xorSlice wrong at length %d", length)
		}
	}
}

// TestGFPowLargeExponents verifies the mod-255 exponent reduction: a^n
// must equal a^(n mod 255) for exponents far beyond what the unreduced
// gfLog[a]*n product could safely represent, and must stay consistent
// with iterative multiplication.
func TestGFPowLargeExponents(t *testing.T) {
	for _, a := range []byte{1, 2, 3, 29, 255} {
		acc := byte(1)
		for n := 0; n < 600; n++ {
			if got := gfPow(a, n); got != acc {
				t.Fatalf("gfPow(%d, %d) = %d, iterative = %d", a, n, got, acc)
			}
			acc = gfMul(acc, a)
		}
		for _, n := range []int{1 << 20, 1<<40 + 17, 1<<62 - 1} {
			if got, want := gfPow(a, n), gfPow(a, n%255); got != want {
				t.Fatalf("gfPow(%d, %d) = %d, want a^(n mod 255) = %d", a, n, got, want)
			}
		}
	}
	if gfPow(7, -1) != gfInv(7) {
		t.Fatalf("gfPow(7, -1) = %d, want inverse %d", gfPow(7, -1), gfInv(7))
	}
}

// TestDecodeMatrixCacheHitMiss decodes the same erasure pattern twice
// through the shared (memoized) codec — the second decode is a cache
// hit — and checks both against a fresh cache-free codec instance.
func TestDecodeMatrixCacheHitMiss(t *testing.T) {
	const k = 8
	cached, err := NewCodec(k)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := newCodecUncached(k)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(11, 12))
	data := mkData(r, k, 200)
	repairs, err := cached.Repairs(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Erasure pattern: data shares 1 and 5 lost, replaced by repairs.
	shares := []Share{repairs[0], repairs[1]}
	for i := 0; i < k; i++ {
		if i != 1 && i != 5 {
			shares = append(shares, Share{Index: i, Data: data[i]})
		}
	}
	for pass := 0; pass < 2; pass++ { // pass 0 = miss, pass 1 = hit
		got, err := cached.Decode(shares)
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		want, err := fresh.Decode(shares)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("pass %d: cached decode diverges from cache-free at share %d", pass, i)
			}
			if !bytes.Equal(got[i], data[i]) {
				t.Fatalf("pass %d: decode did not recover share %d", pass, i)
			}
		}
	}
	cached.decMu.RLock()
	entries := len(cached.decCache)
	cached.decMu.RUnlock()
	if entries == 0 {
		t.Fatal("decode-matrix cache never populated")
	}
}

// TestNewCodecMemoized pins the memoization contract: same k returns the
// same instance; different k never does.
func TestNewCodecMemoized(t *testing.T) {
	a, err := NewCodec(16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCodec(16)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("NewCodec(16) returned distinct instances")
	}
	c, err := NewCodec(17)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("NewCodec(17) returned the k=16 instance")
	}
}

// TestCodecConcurrentDecode hammers one shared codec from many
// goroutines with distinct erasure patterns — the parallel-ensemble
// usage — and is meaningful under -race.
func TestCodecConcurrentDecode(t *testing.T) {
	const k = 8
	c, err := NewCodec(k)
	if err != nil {
		t.Fatal(err)
	}
	data := mkData(rand.New(rand.NewPCG(21, 22)), k, 128)
	repairs, err := c.Repairs(data, k)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewPCG(uint64(w), 7))
			for iter := 0; iter < 50; iter++ {
				lost := map[int]bool{}
				for len(lost) < 3 {
					lost[r.IntN(k)] = true
				}
				var shares []Share
				ri := 0
				for i := 0; i < k; i++ {
					if lost[i] {
						shares = append(shares, repairs[ri])
						ri++
					} else {
						shares = append(shares, Share{Index: i, Data: data[i]})
					}
				}
				dec, err := c.Decode(shares)
				if err != nil {
					t.Error(err)
					return
				}
				for i := range data {
					if !bytes.Equal(dec[i], data[i]) {
						t.Errorf("worker %d: wrong data at %d", w, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// FuzzAddMulSliceMatchesRef fuzzes the optimized add-multiply kernel
// against the scalar reference on arbitrary payloads, coefficients, and
// a fuzzer-chosen slice offset (alignment).
func FuzzAddMulSliceMatchesRef(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, byte(37), uint8(1))
	f.Add([]byte{0, 0, 0}, byte(0), uint8(0))
	f.Add(bytes.Repeat([]byte{0xAB}, 64), byte(1), uint8(7))
	f.Fuzz(func(t *testing.T, src []byte, c byte, off uint8) {
		if int(off) > len(src) {
			off = uint8(len(src))
		}
		src = src[off:]
		dstOpt := make([]byte, len(src))
		dstRef := make([]byte, len(src))
		for i := range src {
			dstOpt[i] = src[i] ^ 0x5C
			dstRef[i] = dstOpt[i]
		}
		addMulSlice(dstOpt, src, c)
		addMulSliceRef(dstRef, src, c)
		if !bytes.Equal(dstOpt, dstRef) {
			t.Fatalf("addMulSlice(c=%d, len=%d) diverges from scalar reference", c, len(src))
		}
	})
}

// FuzzMulSliceMatchesRef is the mulSlice counterpart.
func FuzzMulSliceMatchesRef(f *testing.F) {
	f.Add([]byte{255, 254, 1, 0}, byte(2))
	f.Add([]byte{}, byte(9))
	f.Fuzz(func(t *testing.T, src []byte, c byte) {
		dstOpt := make([]byte, len(src))
		dstRef := make([]byte, len(src))
		mulSlice(dstOpt, src, c)
		mulSliceRef(dstRef, src, c)
		if !bytes.Equal(dstOpt, dstRef) {
			t.Fatalf("mulSlice(c=%d, len=%d) diverges from scalar reference", c, len(src))
		}
	})
}
