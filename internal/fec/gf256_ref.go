package fec

// Scalar reference kernels: the original per-byte log/exp implementations
// the optimized table-driven kernels in gf256.go replaced. They are
// retained (not build-tagged away) as the ground truth for the
// result-equality property tests — the determinism guarantee of the fast
// paths is "byte-identical to these, on every length and alignment".

// gfMulRef multiplies in the log/exp domain, branching on zero.
func gfMulRef(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

// mulSliceRef is the scalar reference for mulSlice.
func mulSliceRef(dst, src []byte, c byte) {
	if c == 0 {
		clear(dst)
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	lc := gfLog[c]
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
		} else {
			dst[i] = gfExp[lc+gfLog[s]]
		}
	}
}

// addMulSliceRef is the scalar reference for addMulSlice.
func addMulSliceRef(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	lc := gfLog[c]
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[lc+gfLog[s]]
		}
	}
}
