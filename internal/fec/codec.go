package fec

import (
	"errors"
	"fmt"
	"sync"
)

// MaxShares is the largest total number of distinct shares (data + repair)
// a single codec can produce, bounded by the field size.
const MaxShares = 255

// Codec is a systematic Reed–Solomon erasure codec for groups of K data
// shares. Share indices 0..K-1 are the data shares verbatim; indices
// K..MaxShares-1 are repair shares. Any K shares with distinct indices
// reconstruct the group. Codec is safe for concurrent use: encode paths
// only read the generator matrix, and the decode-matrix cache is guarded
// by its own lock.
type Codec struct {
	k   int
	gen *matrix // MaxShares × k systematic generator: top k rows = identity

	// Decode-matrix cache, keyed by the erasure pattern (the sorted
	// share indices actually used to decode). Under stationary loss the
	// same patterns recur across groups — and across every agent sharing
	// this codec — so the Gauss–Jordan inversion amortizes to ~zero.
	decMu    sync.RWMutex
	decCache map[string]*matrix
}

// maxDecodeCache bounds the per-codec decode-matrix cache. Each entry is
// a k×k matrix (k²+O(k) bytes); when the bound is hit the cache resets
// rather than evicting — recurring patterns repopulate it immediately.
const maxDecodeCache = 2048

// codecCache memoizes NewCodec per k: codecs are immutable after
// construction (the decode cache is internally synchronized), and the
// Vandermonde build plus systematic transform is O(MaxShares·k²) — far
// too expensive to repeat for every agent in a large topology.
var codecCache struct {
	mu  sync.Mutex
	byK [MaxShares + 1]*Codec
}

// NewCodec returns the codec for groups of k data shares
// (1 <= k <= MaxShares). Codecs are memoized per k and shared: the
// returned value may be the same instance across calls (and goroutines),
// which is safe because all methods are concurrency-safe.
func NewCodec(k int) (*Codec, error) {
	if k < 1 || k > MaxShares {
		return nil, fmt.Errorf("fec: k must be in [1, %d], got %d", MaxShares, k)
	}
	codecCache.mu.Lock()
	defer codecCache.mu.Unlock()
	if c := codecCache.byK[k]; c != nil {
		return c, nil
	}
	c, err := newCodecUncached(k)
	if err != nil {
		return nil, err
	}
	codecCache.byK[k] = c
	return c, nil
}

// newCodecUncached builds a fresh codec, bypassing the memo (the
// cache-correctness tests compare cached and fresh instances).
func newCodecUncached(k int) (*Codec, error) {
	v := vandermonde(MaxShares, k)
	top, err := v.subMatrixRows(seq(k)).invert()
	if err != nil {
		// Cannot happen: the top k rows of a Vandermonde matrix with
		// distinct points are always invertible.
		return nil, err
	}
	return &Codec{k: k, gen: v.mul(top)}, nil
}

// K returns the number of data shares per group.
func (c *Codec) K() int { return c.k }

// Share is one encoded share of a group.
type Share struct {
	// Index identifies the share: 0..K-1 are data shares, >= K repairs.
	Index int
	// Data is the share payload. All shares of a group have equal length.
	Data []byte
}

// Repair produces the repair share with the given index (K <= index <
// MaxShares) from the full set of data shares. data must contain exactly K
// equal-length slices.
func (c *Codec) Repair(data [][]byte, index int) (Share, error) {
	if err := c.checkData(data); err != nil {
		return Share{}, err
	}
	if index < c.k || index >= MaxShares {
		return Share{}, fmt.Errorf("fec: repair index %d out of range [%d, %d)", index, c.k, MaxShares)
	}
	out := make([]byte, len(data[0]))
	c.repairInto(out, data, index)
	return Share{Index: index, Data: out}, nil
}

// repairInto accumulates the repair share for index into out (assumed
// zeroed, length len(data[0])).
func (c *Codec) repairInto(out []byte, data [][]byte, index int) {
	row := c.gen.row(index)
	for j, coeff := range row {
		addMulSlice(out, data[j], coeff)
	}
}

// Repairs produces h consecutive repair shares starting at index K. The
// share payloads are carved from one contiguous allocation.
func (c *Codec) Repairs(data [][]byte, h int) ([]Share, error) {
	if h < 0 || c.k+h > MaxShares {
		return nil, fmt.Errorf("fec: cannot produce %d repairs for k=%d", h, c.k)
	}
	if err := c.checkData(data); err != nil {
		return nil, err
	}
	size := len(data[0])
	slab := make([]byte, h*size)
	shares := make([]Share, h)
	for i := 0; i < h; i++ {
		buf := slab[i*size : (i+1)*size : (i+1)*size]
		c.repairInto(buf, data, c.k+i)
		shares[i] = Share{Index: c.k + i, Data: buf}
	}
	return shares, nil
}

// ErrInsufficientShares is returned by Decode when fewer than K distinct
// shares are supplied.
var ErrInsufficientShares = errors.New("fec: insufficient shares to decode")

// Decode reconstructs the K data shares from any K (or more) shares with
// distinct indices. Extra shares beyond K are ignored. The returned slice
// has length K with data[i] the i'th original data share. Data shares
// present in the input are returned by reference (not copied); treat
// share buffers as immutable.
func (c *Codec) Decode(shares []Share) ([][]byte, error) {
	// Select k distinct shares by index, first occurrence winning, via a
	// dense presence table (no per-call map).
	var pick [MaxShares]int32
	for i := range pick {
		pick[i] = -1
	}
	distinct := 0
	for i, s := range shares {
		if s.Index < 0 || s.Index >= MaxShares {
			return nil, fmt.Errorf("fec: share index %d out of range", s.Index)
		}
		if pick[s.Index] < 0 {
			pick[s.Index] = int32(i)
			distinct++
		}
	}
	if distinct < c.k {
		return nil, fmt.Errorf("%w: have %d distinct, need %d", ErrInsufficientShares, distinct, c.k)
	}
	// Deterministic selection: data shares first, then lowest repair
	// indices (lower indices make the decode matrix better conditioned in
	// terms of work, and determinism keeps simulations reproducible).
	var size = -1
	sel := make([]Share, 0, c.k)
	for idx := 0; idx < MaxShares && len(sel) < c.k; idx++ {
		if i := pick[idx]; i >= 0 {
			s := shares[i]
			if size < 0 {
				size = len(s.Data)
			} else if len(s.Data) != size {
				return nil, fmt.Errorf("fec: share %d has length %d, want %d", idx, len(s.Data), size)
			}
			sel = append(sel, s)
		}
	}

	out := make([][]byte, c.k)
	nmissing := 0
	for _, s := range sel {
		if s.Index < c.k {
			out[s.Index] = s.Data
		} else {
			nmissing++
		}
	}
	if nmissing == 0 {
		// All data shares present: nothing to invert.
		return out, nil
	}

	dec, err := c.decodeMatrix(sel)
	if err != nil {
		// Cannot happen: any k distinct rows of the systematic
		// Vandermonde generator are linearly independent.
		return nil, err
	}
	slab := make([]byte, nmissing*size)
	next := 0
	for i := 0; i < c.k; i++ {
		if out[i] != nil {
			continue
		}
		buf := slab[next*size : (next+1)*size : (next+1)*size]
		next++
		row := dec.row(i)
		for j, coeff := range row {
			addMulSlice(buf, sel[j].Data, coeff)
		}
		out[i] = buf
	}
	return out, nil
}

// decodeMatrix returns (computing and caching on miss) the inverse of the
// generator rows selected by sel. sel is sorted by index and has exactly
// k entries, so the index bytes form a canonical cache key.
func (c *Codec) decodeMatrix(sel []Share) (*matrix, error) {
	var keyBuf [MaxShares]byte
	for i, s := range sel {
		keyBuf[i] = byte(s.Index)
	}
	key := string(keyBuf[:len(sel)])

	c.decMu.RLock()
	dec, ok := c.decCache[key]
	c.decMu.RUnlock()
	if ok {
		return dec, nil
	}

	rows := make([]int, len(sel))
	for i, s := range sel {
		rows[i] = s.Index
	}
	dec, err := c.gen.subMatrixRows(rows).invert()
	if err != nil {
		return nil, err
	}
	c.decMu.Lock()
	if c.decCache == nil || len(c.decCache) >= maxDecodeCache {
		c.decCache = make(map[string]*matrix)
	}
	c.decCache[key] = dec
	c.decMu.Unlock()
	return dec, nil
}

func (c *Codec) checkData(data [][]byte) error {
	if len(data) != c.k {
		return fmt.Errorf("fec: need %d data shares, got %d", c.k, len(data))
	}
	for i, d := range data {
		if len(d) != len(data[0]) {
			return fmt.Errorf("fec: data share %d has length %d, want %d", i, len(d), len(data[0]))
		}
	}
	return nil
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
