package fec

import (
	"errors"
	"fmt"
)

// MaxShares is the largest total number of distinct shares (data + repair)
// a single codec can produce, bounded by the field size.
const MaxShares = 255

// Codec is a systematic Reed–Solomon erasure codec for groups of K data
// shares. Share indices 0..K-1 are the data shares verbatim; indices
// K..MaxShares-1 are repair shares. Any K shares with distinct indices
// reconstruct the group. Codec is safe for concurrent use: all methods
// only read the generator matrix.
type Codec struct {
	k   int
	gen *matrix // MaxShares × k systematic generator: top k rows = identity
}

// NewCodec builds a codec for groups of k data shares (1 <= k <= MaxShares).
func NewCodec(k int) (*Codec, error) {
	if k < 1 || k > MaxShares {
		return nil, fmt.Errorf("fec: k must be in [1, %d], got %d", MaxShares, k)
	}
	v := vandermonde(MaxShares, k)
	top, err := v.subMatrixRows(seq(k)).invert()
	if err != nil {
		// Cannot happen: the top k rows of a Vandermonde matrix with
		// distinct points are always invertible.
		return nil, err
	}
	return &Codec{k: k, gen: v.mul(top)}, nil
}

// K returns the number of data shares per group.
func (c *Codec) K() int { return c.k }

// Share is one encoded share of a group.
type Share struct {
	// Index identifies the share: 0..K-1 are data shares, >= K repairs.
	Index int
	// Data is the share payload. All shares of a group have equal length.
	Data []byte
}

// Repair produces the repair share with the given index (K <= index <
// MaxShares) from the full set of data shares. data must contain exactly K
// equal-length slices.
func (c *Codec) Repair(data [][]byte, index int) (Share, error) {
	if err := c.checkData(data); err != nil {
		return Share{}, err
	}
	if index < c.k || index >= MaxShares {
		return Share{}, fmt.Errorf("fec: repair index %d out of range [%d, %d)", index, c.k, MaxShares)
	}
	out := make([]byte, len(data[0]))
	row := c.gen.row(index)
	for j, coeff := range row {
		addMulSlice(out, data[j], coeff)
	}
	return Share{Index: index, Data: out}, nil
}

// Repairs produces h consecutive repair shares starting at index K.
func (c *Codec) Repairs(data [][]byte, h int) ([]Share, error) {
	if h < 0 || c.k+h > MaxShares {
		return nil, fmt.Errorf("fec: cannot produce %d repairs for k=%d", h, c.k)
	}
	shares := make([]Share, 0, h)
	for i := 0; i < h; i++ {
		s, err := c.Repair(data, c.k+i)
		if err != nil {
			return nil, err
		}
		shares = append(shares, s)
	}
	return shares, nil
}

// ErrInsufficientShares is returned by Decode when fewer than K distinct
// shares are supplied.
var ErrInsufficientShares = errors.New("fec: insufficient shares to decode")

// Decode reconstructs the K data shares from any K (or more) shares with
// distinct indices. Extra shares beyond K are ignored. The returned slice
// has length K with data[i] the i'th original data share. Data shares
// present in the input are returned by reference (not copied); treat
// share buffers as immutable.
func (c *Codec) Decode(shares []Share) ([][]byte, error) {
	// Select k distinct shares, preferring data shares (free to place).
	chosen := make(map[int]Share, c.k)
	for _, s := range shares {
		if s.Index < 0 || s.Index >= MaxShares {
			return nil, fmt.Errorf("fec: share index %d out of range", s.Index)
		}
		if _, dup := chosen[s.Index]; !dup {
			chosen[s.Index] = s
		}
	}
	if len(chosen) < c.k {
		return nil, fmt.Errorf("%w: have %d distinct, need %d", ErrInsufficientShares, len(chosen), c.k)
	}
	// Deterministic selection: data shares first, then lowest repair
	// indices (lower indices make the decode matrix better conditioned in
	// terms of work, and determinism keeps simulations reproducible).
	var size = -1
	sel := make([]Share, 0, c.k)
	for idx := 0; idx < MaxShares && len(sel) < c.k; idx++ {
		if s, ok := chosen[idx]; ok {
			if size < 0 {
				size = len(s.Data)
			} else if len(s.Data) != size {
				return nil, fmt.Errorf("fec: share %d has length %d, want %d", idx, len(s.Data), size)
			}
			sel = append(sel, s)
		}
	}

	out := make([][]byte, c.k)
	missing := false
	for _, s := range sel {
		if s.Index < c.k {
			out[s.Index] = s.Data
		} else {
			missing = true
		}
	}
	if !missing {
		// All data shares present: nothing to invert.
		return out, nil
	}

	rows := make([]int, len(sel))
	for i, s := range sel {
		rows[i] = s.Index
	}
	dec, err := c.gen.subMatrixRows(rows).invert()
	if err != nil {
		// Cannot happen: any k distinct rows of the systematic
		// Vandermonde generator are linearly independent.
		return nil, err
	}
	for i := 0; i < c.k; i++ {
		if out[i] != nil {
			continue
		}
		buf := make([]byte, size)
		row := dec.row(i)
		for j, coeff := range row {
			addMulSlice(buf, sel[j].Data, coeff)
		}
		out[i] = buf
	}
	return out, nil
}

func (c *Codec) checkData(data [][]byte) error {
	if len(data) != c.k {
		return fmt.Errorf("fec: need %d data shares, got %d", c.k, len(data))
	}
	for i, d := range data {
		if len(d) != len(data[0]) {
			return fmt.Errorf("fec: data share %d has length %d, want %d", i, len(d), len(data[0]))
		}
	}
	return nil
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
