// Package fec implements the forward-error-correction substrate SHARQFEC
// layers repairs on: a systematic Reed–Solomon erasure code over GF(2^8)
// in the style of Rizzo's "Effective Erasure Codes for Reliable Computer
// Communication Protocols" (CCR 1997), the paper's reference [14].
//
// A codec for k data packets can produce up to 255-k distinct repair
// packets; any k distinct packets of the combined set reconstruct the
// original k. SHARQFEC exploits the "any k of n" property so that repairs
// injected independently by different zones never duplicate information as
// long as their indices differ.
package fec

// GF(2^8) arithmetic with the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11D), the field used by Rizzo's code and by RFC 5510.

const (
	fieldSize = 256
	primPoly  = 0x11D
)

var (
	gfExp [2 * fieldSize]byte // generator powers, doubled to skip a mod
	gfLog [fieldSize]int
)

func init() {
	x := 1
	for i := 0; i < fieldSize-1; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= primPoly
		}
	}
	for i := fieldSize - 1; i < 2*fieldSize; i++ {
		gfExp[i] = gfExp[i-(fieldSize-1)]
	}
	gfLog[0] = -1 // log of zero is undefined; flagged for debugging
}

// gfMul returns a*b in GF(2^8).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

// gfDiv returns a/b in GF(2^8). b must be nonzero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("fec: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[gfLog[a]-gfLog[b]+(fieldSize-1)]
}

// gfInv returns the multiplicative inverse of a. a must be nonzero.
func gfInv(a byte) byte {
	if a == 0 {
		panic("fec: inverse of zero in GF(256)")
	}
	return gfExp[(fieldSize-1)-gfLog[a]]
}

// gfPow returns a^n in GF(2^8).
func gfPow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := (gfLog[a] * n) % (fieldSize - 1)
	if l < 0 {
		l += fieldSize - 1
	}
	return gfExp[l]
}

// mulSlice sets dst[i] = c*src[i] for all i. len(dst) must equal len(src).
func mulSlice(dst, src []byte, c byte) {
	if c == 0 {
		clear(dst)
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	lc := gfLog[c]
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
		} else {
			dst[i] = gfExp[lc+gfLog[s]]
		}
	}
}

// addMulSlice sets dst[i] ^= c*src[i] for all i — the inner loop of both
// encoding and decoding.
func addMulSlice(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i, s := range src {
			dst[i] ^= s
		}
		return
	}
	lc := gfLog[c]
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[lc+gfLog[s]]
		}
	}
}
