// Package fec implements the forward-error-correction substrate SHARQFEC
// layers repairs on: a systematic Reed–Solomon erasure code over GF(2^8)
// in the style of Rizzo's "Effective Erasure Codes for Reliable Computer
// Communication Protocols" (CCR 1997), the paper's reference [14].
//
// A codec for k data packets can produce up to 255-k distinct repair
// packets; any k distinct packets of the combined set reconstruct the
// original k. SHARQFEC exploits the "any k of n" property so that repairs
// injected independently by different zones never duplicate information as
// long as their indices differ.
package fec

import "encoding/binary"

// GF(2^8) arithmetic with the primitive polynomial x^8+x^4+x^3+x^2+1
// (0x11D), the field used by Rizzo's code and by RFC 5510.

const (
	fieldSize = 256
	primPoly  = 0x11D
)

var (
	gfExp [2 * fieldSize]byte // generator powers, doubled to skip a mod
	gfLog [fieldSize]int
	// gfMulTable[c] is the full product row c·x for every x, the
	// table-driven kernel Rizzo's paper identifies as the dominant-cost
	// optimization: the inner loops index one 256-byte row (L1-resident)
	// instead of doing two log lookups, an add, and an exp lookup with
	// two zero branches per byte. 64 KiB total, built once at init.
	gfMulTable [fieldSize][fieldSize]byte
)

func init() {
	x := 1
	for i := 0; i < fieldSize-1; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= primPoly
		}
	}
	for i := fieldSize - 1; i < 2*fieldSize; i++ {
		gfExp[i] = gfExp[i-(fieldSize-1)]
	}
	gfLog[0] = -1 // log of zero is undefined; flagged for debugging

	for a := 1; a < fieldSize; a++ {
		la := gfLog[a]
		for b := 1; b < fieldSize; b++ {
			gfMulTable[a][b] = gfExp[la+gfLog[b]]
		}
	}
}

// gfMul returns a*b in GF(2^8).
func gfMul(a, b byte) byte {
	return gfMulTable[a][b]
}

// gfDiv returns a/b in GF(2^8). b must be nonzero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("fec: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[gfLog[a]-gfLog[b]+(fieldSize-1)]
}

// gfInv returns the multiplicative inverse of a. a must be nonzero.
func gfInv(a byte) byte {
	if a == 0 {
		panic("fec: inverse of zero in GF(256)")
	}
	return gfExp[(fieldSize-1)-gfLog[a]]
}

// gfPow returns a^n in GF(2^8). The exponent is reduced mod 255 (the
// multiplicative group order) before entering the log domain, so large n
// cannot overflow the gfLog[a]*n product.
func gfPow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	e := n % (fieldSize - 1)
	if e < 0 {
		e += fieldSize - 1
	}
	l := (gfLog[a] * e) % (fieldSize - 1)
	return gfExp[l]
}

// mulSlice sets dst[i] = c*src[i] for all i. len(dst) must equal len(src).
func mulSlice(dst, src []byte, c byte) {
	if c == 0 {
		clear(dst)
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	mt := &gfMulTable[c]
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] = mt[s[0]]
		d[1] = mt[s[1]]
		d[2] = mt[s[2]]
		d[3] = mt[s[3]]
		d[4] = mt[s[4]]
		d[5] = mt[s[5]]
		d[6] = mt[s[6]]
		d[7] = mt[s[7]]
	}
	for i := n; i < len(src); i++ {
		dst[i] = mt[src[i]]
	}
}

// addMulSlice sets dst[i] ^= c*src[i] for all i — the inner loop of both
// encoding and decoding. c==1 (the XOR-only case: systematic rows and
// parity-like coefficients) takes an 8-byte-word path.
func addMulSlice(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		xorSlice(dst, src)
		return
	}
	mt := &gfMulTable[c]
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		s := src[i : i+8 : i+8]
		d := dst[i : i+8 : i+8]
		d[0] ^= mt[s[0]]
		d[1] ^= mt[s[1]]
		d[2] ^= mt[s[2]]
		d[3] ^= mt[s[3]]
		d[4] ^= mt[s[4]]
		d[5] ^= mt[s[5]]
		d[6] ^= mt[s[6]]
		d[7] ^= mt[s[7]]
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= mt[src[i]]
	}
}

// xorSlice sets dst[i] ^= src[i], eight bytes per iteration.
func xorSlice(dst, src []byte) {
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		v := binary.LittleEndian.Uint64(dst[i:]) ^ binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}
