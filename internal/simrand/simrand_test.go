package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42).Stream("timers")
	b := New(42).Stream("timers")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same (seed,name) diverged at draw %d", i)
		}
	}
}

func TestStreamIndependence(t *testing.T) {
	s := New(42)
	a := s.Stream("alpha")
	b := s.Stream("beta")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams alpha/beta agree on %d of 100 draws; not independent", same)
	}
}

func TestStreamNIndependence(t *testing.T) {
	s := New(7)
	seen := map[float64]bool{}
	for n := 0; n < 50; n++ {
		v := s.StreamN("node", n).Float64()
		if seen[v] {
			t.Fatalf("StreamN collision at n=%d", n)
		}
		seen[v] = true
	}
}

func TestStreamNDeterminism(t *testing.T) {
	if New(9).StreamN("x", 3).Float64() != New(9).StreamN("x", 3).Float64() {
		t.Fatal("StreamN not deterministic")
	}
}

func TestSeedsDiffer(t *testing.T) {
	if New(1).Stream("s").Float64() == New(2).Stream("s").Float64() {
		t.Fatal("different seeds produced identical first draw")
	}
}

func TestUniformRange(t *testing.T) {
	r := New(3).Stream("u")
	for i := 0; i < 1000; i++ {
		v := r.Uniform(2.5, 7.5)
		if v < 2.5 || v >= 7.5 {
			t.Fatalf("Uniform(2.5,7.5) = %v out of range", v)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	r := New(3).Stream("u")
	if v := r.Uniform(5, 5); v != 5 {
		t.Fatalf("Uniform(5,5) = %v, want 5", v)
	}
	if v := r.Uniform(5, 4); v != 5 {
		t.Fatalf("Uniform(5,4) = %v, want lo", v)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(3).Stream("b")
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(99).Stream("rate")
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.08) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.08) > 0.005 {
		t.Fatalf("Bernoulli(0.08) empirical rate %v", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	p := New(5).Stream("p").Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm(20) invalid: %v", p)
		}
		seen[v] = true
	}
}

// Property: Uniform always lands in [lo, hi) for lo < hi.
func TestPropertyUniformBounds(t *testing.T) {
	r := New(11).Stream("q")
	f := func(a, b float64) bool {
		lo, hi := a, b
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
			return true
		}
		if hi <= lo {
			return r.Uniform(lo, hi) == lo
		}
		v := r.Uniform(lo, hi)
		return v >= lo && v < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIntNRange(t *testing.T) {
	r := New(13).Stream("i")
	for i := 0; i < 1000; i++ {
		if v := r.IntN(7); v < 0 || v >= 7 {
			t.Fatalf("IntN(7) = %d", v)
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(17).Stream("sh")
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, 8)
	for _, v := range xs {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("element %d lost in shuffle", i)
		}
	}
}

func TestSeedAccessor(t *testing.T) {
	if New(123).Seed() != 123 {
		t.Fatal("Seed accessor wrong")
	}
}
