// Package simrand provides the deterministic random-number streams used by
// the simulator and protocols.
//
// Every simulation owns a single Source seeded from its config. Components
// that need independent randomness (per-node timers, per-link loss draws)
// derive named sub-streams with Stream, so adding a new consumer never
// perturbs the draws seen by existing ones — a property that keeps recorded
// experiment outputs stable as the codebase grows.
package simrand

import (
	"hash/fnv"
	"math/rand/v2"
)

// Source is the root of a simulation's deterministic randomness.
type Source struct {
	seed uint64
}

// New returns a Source for the given seed.
func New(seed uint64) *Source { return &Source{seed: seed} }

// Seed returns the root seed.
func (s *Source) Seed() uint64 { return s.seed }

// Stream derives an independent generator identified by name. The same
// (seed, name) pair always yields the same stream.
func (s *Source) Stream(name string) *Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return &Rand{r: rand.New(rand.NewPCG(s.seed, h.Sum64()))}
}

// StreamN derives an independent generator identified by a name and an
// integer (typically a node ID).
func (s *Source) StreamN(name string, n int) *Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	var buf [8]byte
	v := uint64(n)
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return &Rand{r: rand.New(rand.NewPCG(s.seed, h.Sum64()))}
}

// StreamN2 derives an independent generator identified by a name and two
// integers (typically a link index and a direction). Like Stream, the
// same (seed, name, a, b) tuple always yields the same stream, and
// deriving one never perturbs any other stream — the property the fault
// engine relies on so unscripted runs stay byte-identical.
func (s *Source) StreamN2(name string, a, b int) *Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	var buf [16]byte
	va, vb := uint64(a), uint64(b)
	for i := 0; i < 8; i++ {
		buf[i] = byte(va >> (8 * i))
		buf[8+i] = byte(vb >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return &Rand{r: rand.New(rand.NewPCG(s.seed, h.Sum64()))}
}

// Rand is a deterministic generator with the helpers the protocols need.
type Rand struct {
	r *rand.Rand
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// Uniform returns a uniform value in [lo, hi). It accepts lo >= hi, in
// which case it returns lo (the degenerate interval).
func (r *Rand) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	// Interpolate rather than offset so extreme ranges cannot overflow
	// past hi.
	f := r.r.Float64()
	v := lo*(1-f) + hi*f
	if v >= hi { // guard rounding at the top of tiny intervals
		v = lo
	}
	return v
}

// IntN returns a uniform int in [0, n). n must be positive.
func (r *Rand) IntN(n int) int { return r.r.IntN(n) }

// Bernoulli reports true with probability p (clamped to [0, 1]).
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.r.Shuffle(n, swap) }
