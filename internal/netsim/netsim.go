// Package netsim is the discrete-event network simulator the protocols
// run on — the reproduction's substitute for the UCB/LBNL ns simulator
// the paper used (§6).
//
// A Network joins a topology.Graph, a scoping.Hierarchy and an
// eventq.Queue. Protocol agents attach to nodes and exchange packets by
// multicasting to a scope zone: the packet travels the sender-rooted
// shortest-path tree, pruned to the branches that lead to members of the
// zone (administrative scoping), experiencing per-link store-and-forward
// transmission delay, FIFO queueing, propagation latency, and — for
// loss-eligible packets — independent Bernoulli loss per link, exactly the
// loss model the paper assumes.
package netsim

import (
	"errors"
	"fmt"

	"sharqfec/internal/eventq"
	"sharqfec/internal/fabric"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/simrand"
	"sharqfec/internal/telemetry"
	"sharqfec/internal/topology"
)

// Delivery is one packet arriving at a node (an alias of the transport
// seam's type, so protocols run unchanged on the UDP mesh).
type Delivery = fabric.Delivery

// Agent is a protocol endpoint attached to a node. Receive runs on the
// simulation goroutine and must not block; it may send packets and set
// timers.
type Agent = fabric.Agent

// Tap observes every delivery to a session member, for measurement.
type Tap func(now eventq.Time, at topology.NodeID, d Delivery)

// SendTap observes every multicast transmission at its sender, for
// measurements that include a node's own output (e.g. traffic visible at
// the source, Figures 20–21).
type SendTap func(now eventq.Time, from topology.NodeID, zone scoping.ZoneID, pkt packet.Packet)

// ErrUnknownNode is wrapped by MulticastE when the sender is not a node
// of the simulated graph.
var ErrUnknownNode = errors.New("unknown node")

// ErrUnknownZone is wrapped by MulticastE when the destination zone does
// not exist in the scoping hierarchy.
var ErrUnknownZone = errors.New("unknown zone")

// LossModel replaces the default per-link Bernoulli draw for one link
// direction. Drop is consulted once per loss-eligible packet crossing
// the direction and reports whether the packet is lost. Implementations
// own their randomness (typically a dedicated simrand stream), so
// installing a model never perturbs the draws of unaffected links.
type LossModel interface {
	Drop() bool
}

// Network simulates scoped multicast over a graph.
type Network struct {
	Q *eventq.Queue
	G *topology.Graph
	H *scoping.Hierarchy

	agents   []Agent
	lossRNG  *simrand.Rand
	taps     []Tap
	sendTaps []SendTap
	// tel, when non-nil, receives a transport event per transmission,
	// delivery and drop. nil (the default) keeps every path untouched.
	tel *telemetry.Bus
	// hopTap, when non-nil, observes every per-link transmission during
	// multicast fan-out (after queueing, before the loss draw): packets
	// lost in flight occupied the wire and are reported; tail-dropped
	// packets never transmitted and are not. nil keeps the path free.
	hopTap HopTap

	// lossModels[link][dir], when non-nil, overrides the Bernoulli draw
	// for that link direction. nil until the first SetLossModel, so the
	// paper's static runs take the unchanged default path.
	lossModels [][2]LossModel

	trees     map[topology.NodeID]*topology.Tree
	memberSet map[scoping.ZoneID][]bool
	// pruned[{src, zone}][v] lists v's tree children whose subtrees
	// contain at least one member of zone.
	pruned map[prunedKey][][]topology.NodeID
	// linkFree[link][dir] is when the link direction finishes its
	// current transmission; dir 0 = A→B, 1 = B→A.
	linkFree [][2]eventq.Time

	// hopFree recycles pendingHop structs (and their pre-bound handler
	// closures) across the multicast fan-out path, so a delivery hop
	// costs no allocation in steady state. Single-goroutine by design —
	// the simulation runs on one event loop — so a plain free list
	// suffices and stays deterministic.
	hopFree []*pendingHop
	// needScratch is the reusable membership-marking buffer for
	// prunedChildren cache builds.
	needScratch []bool

	// QueueLimit bounds each link direction's transmit backlog in
	// packets; beyond it, packets are tail-dropped (congestion loss).
	// Zero means unbounded (the paper's model: loss is Bernoulli only).
	QueueLimit int

	// cluster, when non-nil, marks this Network as one shard's view of
	// a zone-sharded parallel simulation (see cluster.go): multicasts
	// route through the cluster's fan plans and shared link state, and
	// topology mutations delegate cluster-wide. shard is this view's
	// shard index. Both stay zero on ordinary sequential networks.
	cluster *Cluster
	shard   int32
	// planHopFree recycles the sharded path's in-flight hop structs,
	// one pool per shard view (each view's queue runs its events on a
	// single goroutine per epoch, so no locking is needed).
	planHopFree []*planHop
	spanHopFree []*spanHop

	// Counters for coarse validation and benchmarks.
	sent       uint64
	delivered  uint64
	dropped    uint64
	taildrops  uint64
	faultdrops uint64
}

type prunedKey struct {
	src  topology.NodeID
	zone scoping.ZoneID
}

// New creates a network over g and h, drawing loss randomness from src.
func New(q *eventq.Queue, g *topology.Graph, h *scoping.Hierarchy, src *simrand.Source) *Network {
	return &Network{
		Q:         q,
		G:         g,
		H:         h,
		agents:    make([]Agent, g.NumNodes()),
		lossRNG:   src.Stream("netsim/loss"),
		trees:     make(map[topology.NodeID]*topology.Tree),
		memberSet: make(map[scoping.ZoneID][]bool),
		pruned:    make(map[prunedKey][][]topology.NodeID),
		linkFree:  make([][2]eventq.Time, g.NumLinks()),
	}
}

// Attach binds an agent to a node (joining the session). Passing nil
// detaches.
func (n *Network) Attach(node topology.NodeID, a Agent) {
	n.agents[node] = a
}

// AgentAt returns the agent attached to node, or nil.
func (n *Network) AgentAt(node topology.NodeID) Agent { return n.agents[node] }

// Sched implements fabric.Network over the virtual clock.
func (n *Network) Sched() fabric.Scheduler { return simScheduler{n.Q} }

// Hierarchy implements fabric.Network.
func (n *Network) Hierarchy() *scoping.Hierarchy { return n.H }

// simScheduler adapts the event queue to the fabric.Scheduler interface
// (the concrete *eventq.Timer satisfies fabric.Timer).
type simScheduler struct{ q *eventq.Queue }

func (s simScheduler) Now() eventq.Time { return s.q.Now() }
func (s simScheduler) After(d eventq.Duration, fn func(eventq.Time)) fabric.Timer {
	return s.q.After(d, fn)
}

var _ fabric.Network = (*Network)(nil)

// AddTap registers a delivery observer.
func (n *Network) AddTap(t Tap) { n.taps = append(n.taps, t) }

// AddSendTap registers a transmission observer.
func (n *Network) AddSendTap(t SendTap) { n.sendTaps = append(n.sendTaps, t) }

// SetTelemetry attaches (or, with nil, detaches) a telemetry bus that
// receives packet_sent / packet_delivered / drop events.
func (n *Network) SetTelemetry(b *telemetry.Bus) { n.tel = b }

// HopTap observes one per-link transmission: link index li, direction
// dir (0 = A→B, 1 = B→A) and the packet on the wire. Taps must be
// passive — they run inline on the forwarding path.
type HopTap func(li, dir int, pkt packet.Packet)

// SetHopTap attaches (or, with nil, detaches) a per-link transmission
// observer — the census engine's view of where bytes actually flow.
func (n *Network) SetHopTap(t HopTap) { n.hopTap = t }

// Stats returns (multicasts sent, packets delivered to members, packets
// dropped by link loss).
func (n *Network) Stats() (sent, delivered, dropped uint64) {
	return n.sent, n.delivered, n.dropped
}

// TailDrops returns the number of packets lost to transmit-queue
// overflow (only possible with QueueLimit > 0).
func (n *Network) TailDrops() uint64 { return n.taildrops }

// FaultDrops returns the number of packets discarded because their next
// link was administratively down (only possible after SetLinkUp).
func (n *Network) FaultDrops() uint64 { return n.faultdrops }

// InvalidateRoutes discards every cached routing tree and pruned
// delivery set. Call after any change that affects shortest paths.
func (n *Network) InvalidateRoutes() {
	if n.cluster != nil {
		n.cluster.invalidateRoutes()
		return
	}
	n.trees = make(map[topology.NodeID]*topology.Tree)
	n.pruned = make(map[prunedKey][][]topology.NodeID)
}

// invalidateMembership discards the cached zone member bitmaps and
// pruned delivery sets (routing trees stay valid).
func (n *Network) invalidateMembership() {
	n.memberSet = make(map[scoping.ZoneID][]bool)
	n.pruned = make(map[prunedKey][][]topology.NodeID)
}

// SetLinkUp enables or disables a link mid-simulation, recomputing the
// routing state that depended on it. Packets already in flight past the
// link still arrive (they were on the wire); packets reaching a downed
// link are discarded and counted by FaultDrops.
func (n *Network) SetLinkUp(link int, up bool) {
	if n.cluster != nil {
		n.cluster.SetLinkUp(link, up)
		return
	}
	if n.G.LinkUp(link) == up {
		return
	}
	n.G.SetLinkUp(link, up)
	n.InvalidateRoutes()
}

// SetHierarchy swaps the scoping hierarchy mid-simulation (membership
// change: a member left or rejoined), invalidating the delivery-set
// caches derived from it. The new hierarchy must use the same ZoneID
// numbering as the old one (scoping.WithoutMember guarantees this).
func (n *Network) SetHierarchy(h *scoping.Hierarchy) {
	if n.cluster != nil {
		n.cluster.SetHierarchy(h)
		return
	}
	n.H = h
	n.invalidateMembership()
}

// SetLossModel installs (or, with nil, removes) a loss-model override
// for one direction of a link (dir 0 = A→B, 1 = B→A). Links without a
// model keep the default Bernoulli draw from the graph's loss rates.
func (n *Network) SetLossModel(link, dir int, m LossModel) {
	if n.cluster != nil {
		n.cluster.SetLossModel(link, dir, m)
		return
	}
	if link < 0 || link >= n.G.NumLinks() || dir < 0 || dir > 1 {
		panic(fmt.Sprintf("netsim: SetLossModel(%d, %d) out of range", link, dir))
	}
	if n.lossModels == nil {
		if m == nil {
			return
		}
		n.lossModels = make([][2]LossModel, n.G.NumLinks())
	}
	n.lossModels[link][dir] = m
}

// Tree returns (building if necessary) the shortest-path tree rooted at
// src that all multicasts from src follow.
func (n *Network) Tree(src topology.NodeID) *topology.Tree {
	t, ok := n.trees[src]
	if !ok {
		t = n.G.SPFTree(src)
		n.trees[src] = t
	}
	return t
}

// prunedChildren returns, for each node, its tree children worth
// forwarding to when src multicasts to zone.
func (n *Network) prunedChildren(src topology.NodeID, zone scoping.ZoneID) [][]topology.NodeID {
	key := prunedKey{src, zone}
	if p, ok := n.pruned[key]; ok {
		return p
	}
	tree := n.Tree(src)
	if len(n.needScratch) < n.G.NumNodes() {
		n.needScratch = make([]bool, n.G.NumNodes())
	}
	needed := n.needScratch[:n.G.NumNodes()]
	clear(needed)
	for _, m := range n.H.Members(zone) {
		needed[m] = true
	}
	// Post-order accumulate: a child is forwarded to if its subtree
	// contains any member.
	var mark func(v topology.NodeID) bool
	mark = func(v topology.NodeID) bool {
		any := needed[v]
		for _, c := range tree.Children[v] {
			if mark(c) {
				any = true
			}
		}
		needed[v] = any
		return any
	}
	mark(src)
	out := make([][]topology.NodeID, n.G.NumNodes())
	var collect func(v topology.NodeID)
	collect = func(v topology.NodeID) {
		for _, c := range tree.Children[v] {
			if needed[c] {
				out[v] = append(out[v], c)
				collect(c)
			}
		}
	}
	collect(src)
	n.pruned[key] = out
	return out
}

// Multicast sends pkt from node `from` to every member of `zone` (other
// than the sender). Delivery is scheduled through the event queue; the
// call returns immediately. Invalid senders or zones are dropped
// silently (the fabric seam has no error channel); callers that want the
// cause should use MulticastE.
func (n *Network) Multicast(from topology.NodeID, zone scoping.ZoneID, pkt packet.Packet) {
	_ = n.MulticastE(from, zone, pkt)
}

// MulticastE is Multicast with validation: it reports a wrapped
// ErrUnknownNode / ErrUnknownZone instead of panicking on input that a
// public-API caller (custom topologies, scripted fault plans) can get
// wrong. A valid multicast to a zone with no other members is not an
// error; the packet simply reaches nobody.
func (n *Network) MulticastE(from topology.NodeID, zone scoping.ZoneID, pkt packet.Packet) error {
	if n.cluster != nil {
		return n.cluster.multicast(n, from, zone, pkt)
	}
	if from < 0 || int(from) >= n.G.NumNodes() {
		return fmt.Errorf("netsim: multicast from node %d: %w", from, ErrUnknownNode)
	}
	if zone < 0 || int(zone) >= n.H.NumZones() {
		return fmt.Errorf("netsim: multicast to zone %d: %w", zone, ErrUnknownZone)
	}
	n.sent++
	now := n.Q.Now()
	for _, tap := range n.sendTaps {
		tap(now, from, zone, pkt)
	}
	if n.tel.On() {
		_, group := pktCorrelation(pkt)
		n.tel.Emit(telemetry.Event{
			T: now.Seconds(), Kind: telemetry.KindPacketSent, Node: from, Zone: zone,
			Group: group, A: int64(pkt.Kind()), B: int64(pkt.WireSize()),
		})
	}
	children := n.prunedChildren(from, zone)
	isMember := n.members(zone)
	tree := n.Tree(from)
	for _, c := range children[from] {
		n.forward(now, tree, children, isMember, from, c, zone, pkt)
	}
	return nil
}

// members returns (caching) the zone's membership as a dense bitmap.
func (n *Network) members(zone scoping.ZoneID) []bool {
	if m, ok := n.memberSet[zone]; ok {
		return m
	}
	m := make([]bool, n.G.NumNodes())
	for _, v := range n.H.Members(zone) {
		m[v] = true
	}
	n.memberSet[zone] = m
	return m
}

// forward transmits pkt across the link from u to v at time t, then — on
// successful arrival — delivers to v (if a member) and recurses to v's
// pruned children.
func (n *Network) forward(t eventq.Time, tree *topology.Tree, children [][]topology.NodeID,
	isMember []bool, u, v topology.NodeID, zone scoping.ZoneID, pkt packet.Packet) {

	li := tree.ParentLink[v]
	if !n.G.LinkUp(li) {
		// The routing tree predates a link failure (multicasts in
		// flight keep their tree): the packet dies at the broken link.
		n.faultdrops++
		n.emitDrop(t, telemetry.KindFaultDrop, v, zone, pkt)
		return
	}
	link := n.G.Link(li)
	dir := 0
	if u == link.B {
		dir = 1
	}
	// FIFO store-and-forward: wait for the link direction to free up,
	// transmit at line rate, then propagate.
	start := t
	if n.linkFree[li][dir] > start {
		start = n.linkFree[li][dir]
	}
	txTime := eventq.Duration(float64(pkt.WireSize()*8) / link.Bandwidth)
	if n.QueueLimit > 0 {
		backlog := float64(start.Sub(t)) / float64(txTime)
		if backlog > float64(n.QueueLimit) {
			n.taildrops++
			n.emitDrop(t, telemetry.KindTailDrop, v, zone, pkt)
			return // congestion: the queue is full, the subtree misses it
		}
	}
	txDone := start.Add(txTime)
	n.linkFree[li][dir] = txDone
	arrive := txDone.Add(link.Latency)
	if n.hopTap != nil {
		n.hopTap(li, dir, pkt)
	}

	if pkt.Lossy() {
		if m := n.lossModel(li, dir); m != nil {
			if m.Drop() {
				n.dropped++
				n.emitDrop(t, telemetry.KindPacketLost, v, zone, pkt)
				return // whole subtree below v misses the packet
			}
		} else if n.lossRNG.Bernoulli(n.G.LossFrom(li, u)) {
			n.dropped++
			n.emitDrop(t, telemetry.KindPacketLost, v, zone, pkt)
			return // whole subtree below v misses the packet
		}
	}

	h := n.acquireHop()
	h.tree, h.children, h.isMember = tree, children, isMember
	h.v, h.zone, h.pkt = v, zone, pkt
	n.Q.At(arrive, h.fn)
}

// pendingHop is a packet in flight toward node v: the forwarding state
// its arrival handler needs, pooled on the Network so the per-hop
// closure and its captures are recycled instead of reallocated.
type pendingHop struct {
	n        *Network
	tree     *topology.Tree
	children [][]topology.NodeID
	isMember []bool
	v        topology.NodeID
	zone     scoping.ZoneID
	pkt      packet.Packet
	// fn is the handler bound once to this struct; reusing it across
	// recycles keeps steady-state hops allocation-free.
	fn eventq.Handler
}

// run delivers the arrived packet (if v is a member), forwards to v's
// pruned children, and returns the hop to the pool.
func (h *pendingHop) run(now eventq.Time) {
	n, tree, children, isMember := h.n, h.tree, h.children, h.isMember
	v, zone, pkt := h.v, h.zone, h.pkt
	n.releaseHop(h)
	if isMember[v] {
		n.deliver(now, tree, v, Delivery{From: tree.Root, Scope: zone, Pkt: pkt})
	}
	for _, c := range children[v] {
		n.forward(now, tree, children, isMember, v, c, zone, pkt)
	}
}

// acquireHop takes a hop from the free list (or allocates the first
// time), with its handler closure already bound.
func (n *Network) acquireHop() *pendingHop {
	if l := len(n.hopFree); l > 0 {
		h := n.hopFree[l-1]
		n.hopFree[l-1] = nil
		n.hopFree = n.hopFree[:l-1]
		return h
	}
	h := &pendingHop{n: n}
	h.fn = h.run
	return h
}

// releaseHop clears the hop's references (so recycled entries never pin
// packets or routing trees) and returns it to the pool.
func (n *Network) releaseHop(h *pendingHop) {
	h.tree, h.children, h.isMember, h.pkt = nil, nil, nil, nil
	n.hopFree = append(n.hopFree, h)
}

// pktCorrelation extracts the span-correlation fields from a packet:
// the originating node and the FEC group it concerns (SRM mirrors the
// sequence number into Group). Session packets — and anything else
// without a group — return (NoNode, -1), the Event sentinels.
func pktCorrelation(pkt packet.Packet) (origin topology.NodeID, group int64) {
	switch p := pkt.(type) {
	case *packet.Data:
		return p.Origin, int64(p.Group)
	case *packet.Repair:
		return p.Origin, int64(p.Group)
	case *packet.NACK:
		return p.Origin, int64(p.Group)
	}
	return topology.NoNode, -1
}

// lossModel returns the override for a link direction, or nil.
func (n *Network) lossModel(link, dir int) LossModel {
	if n.lossModels == nil {
		return nil
	}
	return n.lossModels[link][dir]
}

func (n *Network) deliver(now eventq.Time, tree *topology.Tree, at topology.NodeID, d Delivery) {
	n.delivered++
	for _, tap := range n.taps {
		tap(now, at, d)
	}
	if n.tel.On() {
		origin, group := pktCorrelation(d.Pkt)
		// Hop distance on the tree the packet actually travelled (the
		// in-flight tree, which may predate a re-route): walk from the
		// receiver back to the multicast root.
		hops := int64(0)
		for u := at; u != tree.Root && u != topology.NoNode; u = tree.Parent[u] {
			hops++
		}
		n.tel.Emit(telemetry.Event{
			T: now.Seconds(), Kind: telemetry.KindPacketDelivered, Node: at, Zone: d.Scope,
			Group: group, A: int64(d.Pkt.Kind()), B: int64(d.Pkt.WireSize()),
			Origin: origin, Hops: hops,
		})
	}
	if a := n.agents[at]; a != nil {
		a.Receive(now, d)
	}
}

// emitDrop reports a packet death at node v's inbound link. The drop is
// timestamped with the forwarding decision time (the loss is decided at
// enqueue, before the propagation delay elapses).
func (n *Network) emitDrop(t eventq.Time, kind telemetry.Kind, v topology.NodeID,
	zone scoping.ZoneID, pkt packet.Packet) {

	if !n.tel.On() {
		return
	}
	_, group := pktCorrelation(pkt)
	n.tel.Emit(telemetry.Event{
		T: t.Seconds(), Kind: kind, Node: v, Zone: zone,
		Group: group, A: int64(pkt.Kind()), B: int64(pkt.WireSize()),
	})
}

// OneWayDelay returns the pure propagation latency from a to b along the
// routing tree (no queueing or transmission time) — the ground truth the
// RTT-estimation experiments (Figures 11–13) compare against.
func (n *Network) OneWayDelay(a, b topology.NodeID) eventq.Duration {
	return n.Tree(a).Dist[b]
}
