// Package netsim is the discrete-event network simulator the protocols
// run on — the reproduction's substitute for the UCB/LBNL ns simulator
// the paper used (§6).
//
// A Network joins a topology.Graph, a scoping.Hierarchy and an
// eventq.Queue. Protocol agents attach to nodes and exchange packets by
// multicasting to a scope zone: the packet travels the sender-rooted
// shortest-path tree, pruned to the branches that lead to members of the
// zone (administrative scoping), experiencing per-link store-and-forward
// transmission delay, FIFO queueing, propagation latency, and — for
// loss-eligible packets — independent Bernoulli loss per link, exactly the
// loss model the paper assumes.
package netsim

import (
	"fmt"

	"sharqfec/internal/eventq"
	"sharqfec/internal/fabric"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/simrand"
	"sharqfec/internal/topology"
)

// Delivery is one packet arriving at a node (an alias of the transport
// seam's type, so protocols run unchanged on the UDP mesh).
type Delivery = fabric.Delivery

// Agent is a protocol endpoint attached to a node. Receive runs on the
// simulation goroutine and must not block; it may send packets and set
// timers.
type Agent = fabric.Agent

// Tap observes every delivery to a session member, for measurement.
type Tap func(now eventq.Time, at topology.NodeID, d Delivery)

// SendTap observes every multicast transmission at its sender, for
// measurements that include a node's own output (e.g. traffic visible at
// the source, Figures 20–21).
type SendTap func(now eventq.Time, from topology.NodeID, zone scoping.ZoneID, pkt packet.Packet)

// Network simulates scoped multicast over a graph.
type Network struct {
	Q *eventq.Queue
	G *topology.Graph
	H *scoping.Hierarchy

	agents   []Agent
	lossRNG  *simrand.Rand
	taps     []Tap
	sendTaps []SendTap

	trees     map[topology.NodeID]*topology.Tree
	memberSet map[scoping.ZoneID][]bool
	// pruned[{src, zone}][v] lists v's tree children whose subtrees
	// contain at least one member of zone.
	pruned map[prunedKey][][]topology.NodeID
	// linkFree[link][dir] is when the link direction finishes its
	// current transmission; dir 0 = A→B, 1 = B→A.
	linkFree [][2]eventq.Time

	// QueueLimit bounds each link direction's transmit backlog in
	// packets; beyond it, packets are tail-dropped (congestion loss).
	// Zero means unbounded (the paper's model: loss is Bernoulli only).
	QueueLimit int

	// Counters for coarse validation and benchmarks.
	sent      uint64
	delivered uint64
	dropped   uint64
	taildrops uint64
}

type prunedKey struct {
	src  topology.NodeID
	zone scoping.ZoneID
}

// New creates a network over g and h, drawing loss randomness from src.
func New(q *eventq.Queue, g *topology.Graph, h *scoping.Hierarchy, src *simrand.Source) *Network {
	return &Network{
		Q:         q,
		G:         g,
		H:         h,
		agents:    make([]Agent, g.NumNodes()),
		lossRNG:   src.Stream("netsim/loss"),
		trees:     make(map[topology.NodeID]*topology.Tree),
		memberSet: make(map[scoping.ZoneID][]bool),
		pruned:    make(map[prunedKey][][]topology.NodeID),
		linkFree:  make([][2]eventq.Time, g.NumLinks()),
	}
}

// Attach binds an agent to a node (joining the session). Passing nil
// detaches.
func (n *Network) Attach(node topology.NodeID, a Agent) {
	n.agents[node] = a
}

// AgentAt returns the agent attached to node, or nil.
func (n *Network) AgentAt(node topology.NodeID) Agent { return n.agents[node] }

// Sched implements fabric.Network over the virtual clock.
func (n *Network) Sched() fabric.Scheduler { return simScheduler{n.Q} }

// Hierarchy implements fabric.Network.
func (n *Network) Hierarchy() *scoping.Hierarchy { return n.H }

// simScheduler adapts the event queue to the fabric.Scheduler interface
// (the concrete *eventq.Timer satisfies fabric.Timer).
type simScheduler struct{ q *eventq.Queue }

func (s simScheduler) Now() eventq.Time { return s.q.Now() }
func (s simScheduler) After(d eventq.Duration, fn func(eventq.Time)) fabric.Timer {
	return s.q.After(d, fn)
}

var _ fabric.Network = (*Network)(nil)

// AddTap registers a delivery observer.
func (n *Network) AddTap(t Tap) { n.taps = append(n.taps, t) }

// AddSendTap registers a transmission observer.
func (n *Network) AddSendTap(t SendTap) { n.sendTaps = append(n.sendTaps, t) }

// Stats returns (multicasts sent, packets delivered to members, packets
// dropped by link loss).
func (n *Network) Stats() (sent, delivered, dropped uint64) {
	return n.sent, n.delivered, n.dropped
}

// TailDrops returns the number of packets lost to transmit-queue
// overflow (only possible with QueueLimit > 0).
func (n *Network) TailDrops() uint64 { return n.taildrops }

// Tree returns (building if necessary) the shortest-path tree rooted at
// src that all multicasts from src follow.
func (n *Network) Tree(src topology.NodeID) *topology.Tree {
	t, ok := n.trees[src]
	if !ok {
		t = n.G.SPFTree(src)
		n.trees[src] = t
	}
	return t
}

// prunedChildren returns, for each node, its tree children worth
// forwarding to when src multicasts to zone.
func (n *Network) prunedChildren(src topology.NodeID, zone scoping.ZoneID) [][]topology.NodeID {
	key := prunedKey{src, zone}
	if p, ok := n.pruned[key]; ok {
		return p
	}
	tree := n.Tree(src)
	needed := make([]bool, n.G.NumNodes())
	for _, m := range n.H.Members(zone) {
		needed[m] = true
	}
	// Post-order accumulate: a child is forwarded to if its subtree
	// contains any member.
	var mark func(v topology.NodeID) bool
	mark = func(v topology.NodeID) bool {
		any := needed[v]
		for _, c := range tree.Children[v] {
			if mark(c) {
				any = true
			}
		}
		needed[v] = any
		return any
	}
	mark(src)
	out := make([][]topology.NodeID, n.G.NumNodes())
	var collect func(v topology.NodeID)
	collect = func(v topology.NodeID) {
		for _, c := range tree.Children[v] {
			if needed[c] {
				out[v] = append(out[v], c)
				collect(c)
			}
		}
	}
	collect(src)
	n.pruned[key] = out
	return out
}

// Multicast sends pkt from node `from` to every member of `zone` (other
// than the sender). Delivery is scheduled through the event queue; the
// call returns immediately.
func (n *Network) Multicast(from topology.NodeID, zone scoping.ZoneID, pkt packet.Packet) {
	if int(from) >= n.G.NumNodes() {
		panic(fmt.Sprintf("netsim: multicast from unknown node %d", from))
	}
	n.sent++
	now := n.Q.Now()
	for _, tap := range n.sendTaps {
		tap(now, from, zone, pkt)
	}
	children := n.prunedChildren(from, zone)
	isMember := n.members(zone)
	tree := n.Tree(from)
	for _, c := range children[from] {
		n.forward(now, tree, children, isMember, from, c, zone, pkt)
	}
}

// members returns (caching) the zone's membership as a dense bitmap.
func (n *Network) members(zone scoping.ZoneID) []bool {
	if m, ok := n.memberSet[zone]; ok {
		return m
	}
	m := make([]bool, n.G.NumNodes())
	for _, v := range n.H.Members(zone) {
		m[v] = true
	}
	n.memberSet[zone] = m
	return m
}

// forward transmits pkt across the link from u to v at time t, then — on
// successful arrival — delivers to v (if a member) and recurses to v's
// pruned children.
func (n *Network) forward(t eventq.Time, tree *topology.Tree, children [][]topology.NodeID,
	isMember []bool, u, v topology.NodeID, zone scoping.ZoneID, pkt packet.Packet) {

	li := tree.ParentLink[v]
	link := n.G.Link(li)
	dir := 0
	if u == link.B {
		dir = 1
	}
	// FIFO store-and-forward: wait for the link direction to free up,
	// transmit at line rate, then propagate.
	start := t
	if n.linkFree[li][dir] > start {
		start = n.linkFree[li][dir]
	}
	txTime := eventq.Duration(float64(pkt.WireSize()*8) / link.Bandwidth)
	if n.QueueLimit > 0 {
		backlog := float64(start.Sub(t)) / float64(txTime)
		if backlog > float64(n.QueueLimit) {
			n.taildrops++
			return // congestion: the queue is full, the subtree misses it
		}
	}
	txDone := start.Add(txTime)
	n.linkFree[li][dir] = txDone
	arrive := txDone.Add(link.Latency)

	if pkt.Lossy() && n.lossRNG.Bernoulli(n.G.LossFrom(li, u)) {
		n.dropped++
		return // whole subtree below v misses the packet
	}

	n.Q.At(arrive, func(now eventq.Time) {
		if isMember[v] {
			n.deliver(now, v, Delivery{From: tree.Root, Scope: zone, Pkt: pkt})
		}
		for _, c := range children[v] {
			n.forward(now, tree, children, isMember, v, c, zone, pkt)
		}
	})
}

func (n *Network) deliver(now eventq.Time, at topology.NodeID, d Delivery) {
	n.delivered++
	for _, tap := range n.taps {
		tap(now, at, d)
	}
	if a := n.agents[at]; a != nil {
		a.Receive(now, d)
	}
}

// OneWayDelay returns the pure propagation latency from a to b along the
// routing tree (no queueing or transmission time) — the ground truth the
// RTT-estimation experiments (Figures 11–13) compare against.
func (n *Network) OneWayDelay(a, b topology.NodeID) eventq.Duration {
	return n.Tree(a).Dist[b]
}
