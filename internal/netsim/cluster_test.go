package netsim_test

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"testing"

	"sharqfec/internal/eventq"
	"sharqfec/internal/netsim"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/simrand"
	"sharqfec/internal/topology"
)

// agentFunc adapts a closure to the Agent interface.
type agentFunc func(now eventq.Time, d netsim.Delivery)

func (f agentFunc) Receive(now eventq.Time, d netsim.Delivery) { f(now, d) }

// deliveryRecord is one delivery as seen by a receiver, in a form that
// can be digested order-independently (records are sorted before
// hashing, since shards interleave wall-clock work freely).
type deliveryRecord struct {
	t    eventq.Time
	node topology.NodeID
	from topology.NodeID
	seq  uint32
}

func digestRecords(recs []deliveryRecord) string {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.node != b.node {
			return a.node < b.node
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.seq < b.seq
	})
	h := sha256.New()
	var buf [8]byte
	for _, r := range recs {
		binary.LittleEndian.PutUint64(buf[:], uint64(r.t.Seconds()*1e9))
		h.Write(buf[:])
		fmt.Fprintf(h, " %d %d %d\n", r.node, r.from, r.seq)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// clusterRun drives a clustered simulation of spec at k shards: the
// source multicasts npkts data packets to the root zone, and every
// 17th receiver answers packet 3 with a multicast into its leaf zone
// (exercising receiver-rooted plans and cross-shard replies). Returns
// the sorted delivery digest plus summed counters.
func clusterRun(t *testing.T, spec *topology.Spec, k, npkts int, seed uint64) (string, uint64, uint64) {
	t.Helper()
	g := spec.Graph.Clone()
	h, err := scoping.Build(spec.Zones)
	if err != nil {
		t.Fatalf("scoping.Build: %v", err)
	}
	owner, lookahead := topology.PartitionByZone(g, spec.Zones, k)
	if lookahead <= 0 {
		t.Fatalf("lookahead = %v, want > 0", lookahead)
	}
	grp := eventq.NewShardGroup(k, lookahead)
	c, err := netsim.NewCluster(grp, g, h, simrand.New(seed), owner)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}

	// Per-node record slices: each node's Receive is serial on its
	// owning shard, so appends are race-free without locks.
	perNode := make([][]deliveryRecord, g.NumNodes())
	for _, r := range spec.Receivers {
		v := r
		n := c.NetFor(v)
		n.Attach(v, agentFunc(func(now eventq.Time, d netsim.Delivery) {
			var seq uint32
			if dp, ok := d.Pkt.(*packet.Data); ok {
				seq = dp.Seq
			}
			perNode[v] = append(perNode[v], deliveryRecord{t: now, node: v, from: d.From, seq: seq})
			if dp, ok := d.Pkt.(*packet.Data); ok && dp.Seq == 3 && dp.Origin == spec.Source && v%17 == 0 {
				n.Multicast(v, h.LeafZone(v), &packet.Data{
					Origin: v, Seq: 9000 + uint32(v), Payload: make([]byte, 32),
				})
			}
		}))
	}

	srcQ := grp.Queue(int(owner[spec.Source]))
	srcNet := c.NetFor(spec.Source)
	for i := 0; i < npkts; i++ {
		seq := uint32(i)
		srcQ.At(eventq.Time(0.05+0.031*float64(i)), func(now eventq.Time) {
			srcNet.Multicast(spec.Source, h.Root(), &packet.Data{
				Origin: spec.Source, Seq: seq, Payload: make([]byte, 512),
			})
		})
	}
	grp.Run(eventq.Time(10))

	var recs []deliveryRecord
	for _, rs := range perNode {
		recs = append(recs, rs...)
	}
	_, delivered, dropped := c.Stats()
	return digestRecords(recs), delivered, dropped
}

// TestClusterShardCountInvariance is the heart of the sharded netsim
// contract: the same seed must yield byte-identical delivery traces at
// every shard count, on both a power-law tree (climb-built plans) and
// the Figure-10 mesh (SPF-built plans).
func TestClusterShardCountInvariance(t *testing.T) {
	specs := []*topology.Spec{
		topology.PowerLawISP(topology.PowerLawParams{PoPs: 6, Subscribers: 120, Seed: 3, Loss: 0.08}),
		topology.Figure10(topology.Figure10Params{}),
	}
	for _, spec := range specs {
		t.Run(spec.Name, func(t *testing.T) {
			base, delivered, dropped := clusterRun(t, spec, 1, 20, 42)
			if delivered == 0 {
				t.Fatal("no deliveries")
			}
			if dropped == 0 {
				t.Fatal("no loss exercised; the invariance test would be vacuous")
			}
			for _, k := range []int{2, 3, 4} {
				got, d2, l2 := clusterRun(t, spec, k, 20, 42)
				if got != base {
					t.Errorf("k=%d delivery digest diverged from k=1", k)
				}
				if d2 != delivered || l2 != dropped {
					t.Errorf("k=%d counters (%d, %d) != k=1 (%d, %d)", k, d2, l2, delivered, dropped)
				}
			}
		})
	}
}

// losslessMesh builds a zero-loss non-tree graph: a flat fan-out with
// lateral router↔router links added, so NumLinks > NumNodes-1 and the
// cluster takes the per-source-Dijkstra plan path.
func losslessMesh() *topology.Spec {
	spec := topology.FlatFanout(topology.FlatParams{Routers: 6, ReceiversPerRouter: 20})
	for r := 0; r < 3; r++ {
		a := topology.NodeID(1 + r*21)
		b := topology.NodeID(1 + (r+3)*21)
		spec.Graph.AddLink(a, b, 45e6, 0.020, 0)
	}
	spec.Name = "flat-mesh"
	return spec
}

// TestClusterMatchesSequentialWithoutLoss checks the fan plans against
// the sequential forwarding ground truth: with loss disabled neither
// path draws randomness, so every delivery (time, node, origin, seq)
// must agree exactly — on both the tree-climb and the Dijkstra plan
// builders.
func TestClusterMatchesSequentialWithoutLoss(t *testing.T) {
	specs := []*topology.Spec{
		topology.PowerLawISP(topology.PowerLawParams{PoPs: 5, Subscribers: 80, Seed: 9}),
		losslessMesh(),
	}
	for _, spec := range specs {
		t.Run(spec.Name, func(t *testing.T) {
			for i := 0; i < spec.Graph.NumLinks(); i++ {
				l := spec.Graph.Link(i)
				if l.LossAB != 0 || l.LossBA != 0 {
					t.Fatalf("link %d carries loss (%g, %g); this test needs a lossless spec", i, l.LossAB, l.LossBA)
				}
			}
			h, err := scoping.Build(spec.Zones)
			if err != nil {
				t.Fatal(err)
			}

			run := func(mc func(from topology.NodeID, zone scoping.ZoneID, pkt packet.Packet),
				attach func(v topology.NodeID, a netsim.Agent),
				schedule func(at eventq.Time, fn eventq.Handler),
				drive func()) []deliveryRecord {

				perNode := make([][]deliveryRecord, spec.Graph.NumNodes())
				for _, r := range spec.Receivers {
					v := r
					attach(v, agentFunc(func(now eventq.Time, d netsim.Delivery) {
						var seq uint32
						if dp, ok := d.Pkt.(*packet.Data); ok {
							seq = dp.Seq
						}
						perNode[v] = append(perNode[v], deliveryRecord{t: now, node: v, from: d.From, seq: seq})
					}))
				}
				for i := 0; i < 12; i++ {
					seq := uint32(i)
					schedule(eventq.Time(0.05+0.031*float64(i)), func(now eventq.Time) {
						mc(spec.Source, h.Root(), &packet.Data{
							Origin: spec.Source, Seq: seq, Payload: make([]byte, 512),
						})
					})
				}
				drive()
				var recs []deliveryRecord
				for _, rs := range perNode {
					recs = append(recs, rs...)
				}
				return recs
			}

			var q eventq.Queue
			seqNet := netsim.New(&q, spec.Graph.Clone(), h, simrand.New(7))
			seqRecs := run(
				func(f topology.NodeID, z scoping.ZoneID, p packet.Packet) { seqNet.Multicast(f, z, p) },
				seqNet.Attach,
				func(at eventq.Time, fn eventq.Handler) { q.At(at, fn) },
				func() { q.RunUntil(10) })

			g := spec.Graph.Clone()
			owner, lookahead := topology.PartitionByZone(g, spec.Zones, 3)
			grp := eventq.NewShardGroup(3, lookahead)
			c, err := netsim.NewCluster(grp, g, h, simrand.New(7), owner)
			if err != nil {
				t.Fatal(err)
			}
			cluRecs := run(
				func(f topology.NodeID, z scoping.ZoneID, p packet.Packet) { c.NetFor(f).Multicast(f, z, p) },
				func(v topology.NodeID, a netsim.Agent) { c.NetFor(v).Attach(v, a) },
				func(at eventq.Time, fn eventq.Handler) { grp.Queue(int(owner[spec.Source])).At(at, fn) },
				func() { grp.Run(10) })

			if len(seqRecs) == 0 {
				t.Fatal("sequential reference delivered nothing")
			}
			if got, want := digestRecords(cluRecs), digestRecords(seqRecs); got != want {
				t.Errorf("clustered deliveries diverge from sequential ground truth:\n  clustered  %d records %s\n  sequential %d records %s",
					len(cluRecs), got, len(seqRecs), want)
			}
		})
	}
}

// TestPartitionByZone checks the partition contract: top-level zone
// subtrees never split across shards, loads balance, and the lookahead
// is the minimum boundary-link latency.
func TestPartitionByZone(t *testing.T) {
	spec := topology.PowerLawISP(topology.PowerLawParams{PoPs: 8, Subscribers: 300, Seed: 5})
	for _, k := range []int{1, 2, 3, 5} {
		owner, lookahead := topology.PartitionByZone(spec.Graph, spec.Zones, k)
		if lookahead <= 0 {
			t.Fatalf("k=%d: lookahead %v", k, lookahead)
		}
		// Every zone's member set must be shard-homogeneous, except the
		// root zone (which spans everything).
		for _, z := range spec.Zones[1:] {
			var want int32 = -1
			walk := func(leaves []topology.NodeID) {
				for _, v := range leaves {
					if want < 0 {
						want = owner[v]
					} else if owner[v] != want {
						t.Fatalf("k=%d: zone %d splits across shards %d and %d", k, z.ID, want, owner[v])
					}
				}
			}
			walk(z.Leaves)
			for _, sub := range spec.Zones {
				if sub.Parent == z.ID {
					walk(sub.Leaves)
				}
			}
		}
		// All k shards get work when there are enough blocks.
		used := map[int32]bool{}
		for _, s := range owner {
			used[s] = true
		}
		if len(used) != min(k, 8) {
			t.Errorf("k=%d: %d shards used, want %d", k, len(used), min(k, 8))
		}
	}
}
