// Zone-sharded parallel execution. A Cluster splits one simulated
// network across an eventq.ShardGroup: every node belongs to exactly
// one shard (topology.PartitionByZone keeps each top-level zone's
// subtree together), each shard advances its own event queue, and a
// packet crossing a shard boundary becomes a cross-shard post delivered
// at the next barrier epoch — which conservative lookahead guarantees
// is always soon enough.
//
// The sharded data path deliberately re-keys loss randomness: instead
// of the sequential simulator's single "netsim/loss" stream (whose
// draws are consumed in global dispatch order — an ordering that cannot
// exist under parallel execution), every link direction draws from its
// own "netsim/loss"-derived stream keyed (link, dir). Per-direction
// draw order is owner-shard-local and fixed by the deterministic event
// order, so results are byte-identical across shard counts — the
// property the root package's shard digest matrix pins. The trade-off
// is that sharded runs are a distinct deterministic family from the
// legacy sequential path (Shards=0), whose goldens remain untouched.
//
// Shared mutable state obeys a strict ownership discipline:
//
//   - linkFree[li][dir] and the per-direction loss streams are written
//     only by the shard owning the direction's upstream node;
//   - fan plans and route trees are immutable once built, cached under
//     an RWMutex (concurrent builders produce identical values);
//   - loss models, link state and hierarchy swaps mutate only inside
//     ShardGroup.Sync barriers, where every shard is quiescent.
package netsim

import (
	"fmt"
	"sort"
	"sync"

	"sharqfec/internal/eventq"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/simrand"
	"sharqfec/internal/topology"
)

// Cluster is one simulated network sharded across parallel event
// queues. Use NewCluster, attach agents through the per-shard views
// (Shard), and drive time through the group.
type Cluster struct {
	group *eventq.ShardGroup
	G     *topology.Graph
	H     *scoping.Hierarchy
	owner []int32

	nets []*Network
	src  *simrand.Source

	// lossStreams[li][dir] is the direction's private Bernoulli stream,
	// created on first use by the (unique) shard owning the upstream
	// node. lossModels overrides it per direction; it is mutated only
	// at sync barriers.
	lossStreams [][2]*simrand.Rand
	lossModels  [][2]LossModel
	// linkFree[li][dir]: when the direction's current transmission
	// ends. Written only by the upstream owner shard.
	linkFree [][2]eventq.Time

	mu    sync.RWMutex
	plans map[prunedKey]*fanPlan
	spans map[scoping.ZoneID]*zoneSpan
	trees map[topology.NodeID]*topology.Tree
	// isTree marks graphs where shortest paths are unique by
	// construction, letting fan plans build by parent-pointer climbing
	// (O(Steiner size)) instead of per-source Dijkstra — the difference
	// between megabytes and terabytes of routing state at 10⁵ nodes.
	isTree bool
	base   *topology.Tree // base orientation for the climbing builder
}

// NewCluster shards the network over the group. owner maps every node
// to a shard (see topology.PartitionByZone); the per-shard Networks it
// creates share the graph, hierarchy, link occupancy and loss state
// through the cluster.
func NewCluster(group *eventq.ShardGroup, g *topology.Graph, h *scoping.Hierarchy,
	src *simrand.Source, owner []int32) (*Cluster, error) {

	if len(owner) != g.NumNodes() {
		return nil, fmt.Errorf("netsim: owner map covers %d nodes, graph has %d", len(owner), g.NumNodes())
	}
	for v, s := range owner {
		if s < 0 || int(s) >= group.NumShards() {
			return nil, fmt.Errorf("netsim: node %d assigned to shard %d of %d", v, s, group.NumShards())
		}
	}
	c := &Cluster{
		group:       group,
		G:           g,
		H:           h,
		owner:       owner,
		src:         src,
		lossStreams: make([][2]*simrand.Rand, g.NumLinks()),
		linkFree:    make([][2]eventq.Time, g.NumLinks()),
		plans:       make(map[prunedKey]*fanPlan),
		spans:       make(map[scoping.ZoneID]*zoneSpan),
		trees:       make(map[topology.NodeID]*topology.Tree),
		isTree:      g.NumLinks() == g.NumNodes()-1,
	}
	c.nets = make([]*Network, group.NumShards())
	for i := range c.nets {
		n := New(group.Queue(i), g, h, src)
		n.cluster = c
		n.shard = int32(i)
		c.nets[i] = n
	}
	return c, nil
}

// Shard returns shard i's network view. Agents attach to the view of
// the shard owning their node; attaching elsewhere panics on delivery.
func (c *Cluster) Shard(i int) *Network { return c.nets[i] }

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.nets) }

// Owner returns the shard owning node v.
func (c *Cluster) Owner(v topology.NodeID) int { return int(c.owner[v]) }

// NetFor returns the network view that node v's agent must attach to.
func (c *Cluster) NetFor(v topology.NodeID) *Network { return c.nets[c.owner[v]] }

// Group returns the shard runner driving the cluster's virtual time.
func (c *Cluster) Group() *eventq.ShardGroup { return c.group }

// SetQueueLimit sets the per-link-direction transmit backlog bound on
// every shard view.
func (c *Cluster) SetQueueLimit(limit int) {
	for _, n := range c.nets {
		n.QueueLimit = limit
	}
}

// Stats sums the per-shard counters.
func (c *Cluster) Stats() (sent, delivered, dropped uint64) {
	for _, n := range c.nets {
		s, d, l := n.Stats()
		sent += s
		delivered += d
		dropped += l
	}
	return
}

// FaultDrops sums fault-discarded packets across shards.
func (c *Cluster) FaultDrops() uint64 {
	var n uint64
	for _, net := range c.nets {
		n += net.faultdrops
	}
	return n
}

// TailDrops sums congestion-discarded packets across shards.
func (c *Cluster) TailDrops() uint64 {
	var n uint64
	for _, net := range c.nets {
		n += net.taildrops
	}
	return n
}

// SetLinkUp changes link state cluster-wide. Only call inside a sync
// barrier (the fault engine's scheduling seam guarantees this).
func (c *Cluster) SetLinkUp(link int, up bool) {
	if c.G.LinkUp(link) == up {
		return
	}
	c.G.SetLinkUp(link, up)
	c.invalidateRoutes()
}

// SetHierarchy swaps the scoping hierarchy cluster-wide (membership
// change). Only call inside a sync barrier.
func (c *Cluster) SetHierarchy(h *scoping.Hierarchy) {
	c.H = h
	for _, n := range c.nets {
		n.H = h
	}
	c.mu.Lock()
	c.plans = make(map[prunedKey]*fanPlan)
	c.spans = make(map[scoping.ZoneID]*zoneSpan)
	c.mu.Unlock()
}

// SetLossModel installs a per-direction loss override cluster-wide.
// Only call inside a sync barrier.
func (c *Cluster) SetLossModel(link, dir int, m LossModel) {
	if link < 0 || link >= c.G.NumLinks() || dir < 0 || dir > 1 {
		panic(fmt.Sprintf("netsim: SetLossModel(%d, %d) out of range", link, dir))
	}
	if c.lossModels == nil {
		if m == nil {
			return
		}
		c.lossModels = make([][2]LossModel, c.G.NumLinks())
	}
	c.lossModels[link][dir] = m
}

func (c *Cluster) invalidateRoutes() {
	c.mu.Lock()
	c.plans = make(map[prunedKey]*fanPlan)
	c.spans = make(map[scoping.ZoneID]*zoneSpan)
	c.trees = make(map[topology.NodeID]*topology.Tree)
	c.base = nil
	c.mu.Unlock()
}

// fanPlan is the compact multicast fan-out for one (source, zone) pair:
// the Steiner subtree of the source-rooted shortest-path tree spanning
// the zone's members, laid out in BFS order with contiguous child
// ranges. Unlike the sequential path's per-source Tree cache (O(nodes)
// each), a plan costs O(subtree), which is what lets 10⁵ multicast
// sources coexist.
type fanPlan struct {
	root  topology.NodeID
	nodes []fanNode // nodes[0] is the root
}

type fanNode struct {
	v            topology.NodeID
	link         int32 // link from plan parent; -1 at the root
	kidLo, kidHi int32 // children range in fanPlan.nodes
	dir          uint8 // link direction parent→v (0 = A→B)
	member       bool  // deliver here
	loss         float64
}

// plan returns (building and caching if needed) the fan plan for src
// multicasting to zone. Concurrent builders race benignly: plans are
// pure functions of immutable routing state, so the losing builder's
// identical plan is simply discarded.
func (c *Cluster) plan(src topology.NodeID, zone scoping.ZoneID) *fanPlan {
	key := prunedKey{src, zone}
	c.mu.RLock()
	p := c.plans[key]
	c.mu.RUnlock()
	if p != nil {
		return p
	}
	p = c.buildPlan(src, zone)
	c.mu.Lock()
	if q, ok := c.plans[key]; ok {
		p = q
	} else {
		c.plans[key] = p
	}
	c.mu.Unlock()
	return p
}

// zoneSpan is the shared multicast fan-out for one zone on tree
// topologies: the Steiner subtree spanning the zone's members, as
// compact adjacency lists. Paths in a tree are unique, so this subtree
// is the same no matter which member transmits — a source floods the
// span from its own position, forwarding to span neighbours in node-ID
// order minus the inbound edge, which reproduces exactly the child sets
// and ordering of a source-rooted fanPlan (the shard digest matrix pins
// this equivalence). One span per zone replaces one plan per
// (source, zone): with 10⁵ members multicasting into the root zone,
// that is the difference between megabytes and hundreds of gigabytes
// of routing state.
type zoneSpan struct {
	index map[topology.NodeID]int32
	nodes []spanNode
	edges []spanEdge
}

type spanNode struct {
	v      topology.NodeID
	member bool  // deliver here
	lo, hi int32 // adjacency range in zoneSpan.edges, neighbour-ID order
}

type spanEdge struct {
	to   int32 // span index of the receiving neighbour
	link int32
	dir  uint8 // link direction transmitter→neighbour (0 = A→B)
	loss float64
}

// span returns (building and caching if needed) zone's shared fan-out
// span. Like plans, concurrent builders race benignly.
func (c *Cluster) span(zone scoping.ZoneID) *zoneSpan {
	c.mu.RLock()
	sp := c.spans[zone]
	c.mu.RUnlock()
	if sp != nil {
		return sp
	}
	sp = c.buildSpan(zone)
	c.mu.Lock()
	if q, ok := c.spans[zone]; ok {
		sp = q
	} else {
		c.spans[zone] = sp
	}
	c.mu.Unlock()
	return sp
}

func (c *Cluster) buildSpan(zone scoping.ZoneID) *zoneSpan {
	members := c.H.Members(zone)
	base := c.baseTree()

	// keep = union of member→base-root paths; then trim the memberless
	// chain above the members' lowest common ancestor, leaving exactly
	// the Steiner subtree (what a member-rooted plan would span).
	keep := make(map[topology.NodeID]bool, len(members)*2)
	for _, m := range members {
		for v := m; !keep[v]; {
			keep[v] = true
			if v == base.Root || base.Parent[v] < 0 {
				break
			}
			v = base.Parent[v]
		}
	}
	kids := make(map[topology.NodeID][]topology.NodeID, len(keep))
	for v := range keep {
		if v == base.Root || base.Parent[v] < 0 {
			continue
		}
		if p := base.Parent[v]; keep[p] {
			kids[p] = append(kids[p], v)
		}
	}
	for r := base.Root; keep[r] && !c.H.Contains(zone, r) && len(kids[r]) == 1; {
		next := kids[r][0]
		delete(keep, r)
		r = next
	}

	// Compact layout: nodes in ID order, adjacency in neighbour-ID
	// order (node-ID sorting is what fanPlan's child lists used, so the
	// flood visits neighbours in the identical sequence).
	list := make([]topology.NodeID, 0, len(keep))
	for v := range keep {
		list = append(list, v)
	}
	sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	sp := &zoneSpan{
		index: make(map[topology.NodeID]int32, len(list)),
		nodes: make([]spanNode, len(list)),
	}
	for i, v := range list {
		sp.index[v] = int32(i)
	}
	nbrs := make([]topology.NodeID, 0, 32)
	for i, v := range list {
		nbrs = nbrs[:0]
		if p := base.Parent[v]; v != base.Root && p >= 0 && keep[p] {
			nbrs = append(nbrs, p)
		}
		nbrs = append(nbrs, kids[v]...)
		sort.Slice(nbrs, func(a, b int) bool { return nbrs[a] < nbrs[b] })
		sp.nodes[i] = spanNode{
			v: v, member: c.H.Contains(zone, v),
			lo: int32(len(sp.edges)),
		}
		for _, u := range nbrs {
			li := c.linkBetween(v, u)
			link := c.G.Link(li)
			dir := uint8(0)
			loss := link.LossAB
			if v == link.B {
				dir = 1
				loss = link.LossBA
			}
			sp.edges = append(sp.edges, spanEdge{
				to: sp.index[u], link: int32(li), dir: dir, loss: loss,
			})
		}
		sp.nodes[i].hi = int32(len(sp.edges))
	}
	return sp
}

// planParentsTree computes each relevant node's parent toward src by
// climbing the base orientation — valid because tree graphs have
// unique paths. Returns the parent map restricted to the union of
// src→member paths. O(Steiner subtree), not O(nodes): the key to
// holding 10⁵ concurrent multicast sources.
func (c *Cluster) planParentsTree(src topology.NodeID, members []topology.NodeID) map[topology.NodeID]topology.NodeID {
	base := c.baseTree()
	parent := make(map[topology.NodeID]topology.NodeID, len(members)*2)
	parent[src] = src
	// Mark src's chain to the base root so every member climb
	// terminates; the pruning pass below drops the memberless prefix.
	for v := src; v != base.Root && base.Parent[v] >= 0; {
		up := base.Parent[v]
		if _, ok := parent[up]; ok {
			break
		}
		parent[up] = v
		v = up
	}
	chain := make([]topology.NodeID, 0, 64)
	for _, m := range members {
		// Climb from the member toward the base root until hitting a
		// node already oriented; that node is where this member's path
		// joins the plan.
		chain = chain[:0]
		v := m
		reach := true
		for {
			if _, ok := parent[v]; ok {
				break
			}
			chain = append(chain, v)
			if base.Parent[v] < 0 {
				reach = false // severed by a downed link: m is unreachable
				break
			}
			if v == base.Root {
				break
			}
			v = base.Parent[v]
		}
		if !reach {
			continue
		}
		// chain runs member→...→child-of-junction v; orient it from
		// src: each chain node's parent is the next node up.
		for i := 0; i < len(chain); i++ {
			up := v
			if i+1 < len(chain) {
				up = chain[i+1]
			}
			parent[chain[i]] = up
		}
	}
	return parent
}

// planParentsSPF computes plan parents from the source-rooted Dijkstra
// tree — the general-graph path (meshes), where per-source trees are
// cached cluster-wide exactly like the sequential simulator does.
func (c *Cluster) planParentsSPF(src topology.NodeID, members []topology.NodeID) map[topology.NodeID]topology.NodeID {
	tree := c.tree(src)
	parent := make(map[topology.NodeID]topology.NodeID, len(members)*2)
	parent[src] = src
	for _, m := range members {
		v := m
		for {
			if _, ok := parent[v]; ok {
				break
			}
			up := tree.Parent[v]
			if up < 0 {
				break // unreachable member: no path into the plan
			}
			parent[v] = up
			v = up
		}
	}
	return parent
}

func (c *Cluster) buildPlan(src topology.NodeID, zone scoping.ZoneID) *fanPlan {
	members := c.H.Members(zone)
	var parent map[topology.NodeID]topology.NodeID
	if c.isTree && c.G.AllLinksUp() {
		// Unique paths and full connectivity: climb parent pointers.
		// During fault windows (a link down partitions a tree) fall
		// back to per-source Dijkstra, which still routes correctly
		// inside the source's component.
		parent = c.planParentsTree(src, members)
	} else {
		parent = c.planParentsSPF(src, members)
	}

	// Prune to nodes on a src→member path: walk up from each member,
	// stopping at the first node already kept.
	keep := make(map[topology.NodeID]bool, len(parent))
	keep[src] = true
	for _, m := range members {
		if _, ok := parent[m]; !ok {
			continue
		}
		for v := m; !keep[v]; v = parent[v] {
			keep[v] = true
		}
	}

	// Children lists restricted to kept nodes, sorted by node ID for a
	// deterministic layout.
	kids := make(map[topology.NodeID][]topology.NodeID, len(keep))
	for v := range keep {
		if v == src {
			continue
		}
		kids[parent[v]] = append(kids[parent[v]], v)
	}
	for _, k := range kids {
		sort.Slice(k, func(i, j int) bool { return k[i] < k[j] })
	}

	p := &fanPlan{root: src, nodes: make([]fanNode, 0, len(keep))}
	p.nodes = append(p.nodes, fanNode{v: src, link: -1})
	for i := 0; i < len(p.nodes); i++ {
		u := p.nodes[i].v
		children := kids[u]
		p.nodes[i].kidLo = int32(len(p.nodes))
		for _, v := range children {
			li := c.linkBetween(u, v)
			link := c.G.Link(li)
			dir := uint8(0)
			loss := link.LossAB
			if u == link.B {
				dir = 1
				loss = link.LossBA
			}
			p.nodes = append(p.nodes, fanNode{
				v: v, link: int32(li), dir: dir, loss: loss,
				member: c.H.Contains(zone, v),
			})
		}
		p.nodes[i].kidHi = int32(len(p.nodes))
	}
	return p
}

// linkBetween returns the index of the (unique) link joining adjacent
// plan nodes u and v.
func (c *Cluster) linkBetween(u, v topology.NodeID) int {
	li := c.G.LinkBetween(u, v)
	if li < 0 {
		panic(fmt.Sprintf("netsim: no link between adjacent plan nodes %d and %d", u, v))
	}
	return li
}

// baseTree returns (building once) the orientation tree for the
// climbing plan builder.
func (c *Cluster) baseTree() *topology.Tree {
	c.mu.RLock()
	b := c.base
	c.mu.RUnlock()
	if b != nil {
		return b
	}
	t := c.G.SPFTree(0)
	c.mu.Lock()
	if c.base == nil {
		c.base = t
	}
	b = c.base
	c.mu.Unlock()
	return b
}

// tree returns (building and caching) the Dijkstra tree rooted at src —
// mesh graphs only; tree graphs use the climbing builder instead.
func (c *Cluster) tree(src topology.NodeID) *topology.Tree {
	c.mu.RLock()
	t := c.trees[src]
	c.mu.RUnlock()
	if t != nil {
		return t
	}
	t = c.G.SPFTree(src)
	c.mu.Lock()
	if u, ok := c.trees[src]; ok {
		t = u
	} else {
		c.trees[src] = t
	}
	c.mu.Unlock()
	return t
}

// multicast is the cluster forwarding entry, called from the per-shard
// Network views. The sending shard walks the plan; hops that leave the
// shard become cross posts.
func (c *Cluster) multicast(n *Network, from topology.NodeID, zone scoping.ZoneID, pkt packet.Packet) error {
	if from < 0 || int(from) >= c.G.NumNodes() {
		return fmt.Errorf("netsim: multicast from node %d: %w", from, ErrUnknownNode)
	}
	if zone < 0 || int(zone) >= c.H.NumZones() {
		return fmt.Errorf("netsim: multicast to zone %d: %w", zone, ErrUnknownZone)
	}
	if c.owner[from] != n.shard {
		panic(fmt.Sprintf("netsim: node %d multicast on shard %d, owned by shard %d", from, n.shard, c.owner[from]))
	}
	n.sent++
	now := n.Q.Now()
	for _, tap := range n.sendTaps {
		tap(now, from, zone, pkt)
	}
	if c.isTree && c.G.AllLinksUp() {
		sp := c.span(zone)
		if si, ok := sp.index[from]; ok {
			nd := &sp.nodes[si]
			for e := nd.lo; e < nd.hi; e++ {
				c.forwardSpan(n, sp, si, e, from, now, zone, pkt)
			}
			return nil
		}
		// Source outside the span (e.g. a parent-zone repairer sending
		// into a child zone): fall through to the per-source plan,
		// whose entry path handles the descent into the span.
	}
	p := c.plan(from, zone)
	root := &p.nodes[0]
	for k := root.kidLo; k < root.kidHi; k++ {
		c.forward(n, p, k, now, zone, pkt)
	}
	return nil
}

// transmit pushes pkt onto link li in direction dir at time t: it
// serializes on the link, applies tail-drop and loss, and returns the
// far-end arrival time, or ok=false when the packet died on the hop.
// Shared by the plan and span forwarding paths so both charge links and
// draw loss identically.
func (c *Cluster) transmit(n *Network, li, dir int, loss float64, t eventq.Time, pkt packet.Packet) (eventq.Time, bool) {
	if !c.G.LinkUp(li) {
		n.faultdrops++
		return 0, false
	}
	link := c.G.Link(li)
	start := t
	if c.linkFree[li][dir] > start {
		start = c.linkFree[li][dir]
	}
	txTime := eventq.Duration(float64(pkt.WireSize()*8) / link.Bandwidth)
	if n.QueueLimit > 0 {
		backlog := float64(start.Sub(t)) / float64(txTime)
		if backlog > float64(n.QueueLimit) {
			n.taildrops++
			return 0, false
		}
	}
	txDone := start.Add(txTime)
	c.linkFree[li][dir] = txDone
	arrive := txDone.Add(link.Latency)
	if n.hopTap != nil {
		n.hopTap(li, dir, pkt)
	}

	if pkt.Lossy() {
		if m := c.lossModelAt(li, dir); m != nil {
			if m.Drop() {
				n.dropped++
				return 0, false
			}
		} else if loss > 0 {
			if c.lossStream(li, dir).Bernoulli(loss) {
				n.dropped++
				return 0, false
			}
		}
	}
	return arrive, true
}

// forward transmits pkt across the link into plan node idx at time t —
// the sharded counterpart of Network.forward, with per-direction loss
// streams and cross-shard hand-off.
func (c *Cluster) forward(n *Network, p *fanPlan, idx int32, t eventq.Time, zone scoping.ZoneID, pkt packet.Packet) {
	nd := &p.nodes[idx]
	arrive, ok := c.transmit(n, int(nd.link), int(nd.dir), nd.loss, t, pkt)
	if !ok {
		return
	}
	dst := c.owner[nd.v]
	if dst == n.shard {
		h := n.acquirePlanHop()
		h.plan, h.idx, h.zone, h.pkt = p, idx, zone, pkt
		n.Q.At(arrive, h.fn)
		return
	}
	// Leaving the shard: the arrival is at least one boundary-link
	// latency away, i.e. at or past the next barrier — the lookahead
	// contract Post asserts.
	dn := c.nets[dst]
	c.group.Post(int(n.shard), int(dst), arrive, func(now eventq.Time) {
		c.arrive(dn, p, idx, now, zone, pkt)
	})
}

// arrive lands pkt at plan node idx: deliver if it is a member, then
// forward to its plan children.
func (c *Cluster) arrive(n *Network, p *fanPlan, idx int32, now eventq.Time, zone scoping.ZoneID, pkt packet.Packet) {
	nd := &p.nodes[idx]
	if nd.member {
		n.deliverPlan(now, nd.v, Delivery{From: p.root, Scope: zone, Pkt: pkt})
	}
	for k := nd.kidLo; k < nd.kidHi; k++ {
		c.forward(n, p, k, now, zone, pkt)
	}
}

// forwardSpan transmits pkt across span edge e (whose transmitter is
// span node at) and schedules the arrival at the far end.
func (c *Cluster) forwardSpan(n *Network, sp *zoneSpan, at, e int32, src topology.NodeID,
	t eventq.Time, zone scoping.ZoneID, pkt packet.Packet) {

	ed := &sp.edges[e]
	arrive, ok := c.transmit(n, int(ed.link), int(ed.dir), ed.loss, t, pkt)
	if !ok {
		return
	}
	to := ed.to
	dst := c.owner[sp.nodes[to].v]
	if dst == n.shard {
		h := n.acquireSpanHop()
		h.span, h.at, h.from, h.src, h.zone, h.pkt = sp, to, at, src, zone, pkt
		n.Q.At(arrive, h.fn)
		return
	}
	dn := c.nets[dst]
	c.group.Post(int(n.shard), int(dst), arrive, func(now eventq.Time) {
		c.arriveSpan(dn, sp, to, at, src, now, zone, pkt)
	})
}

// arriveSpan lands pkt at span node at: deliver if it is a member, then
// continue the flood to every span neighbour except the inbound one —
// exactly the child set (and node-ID order) a src-rooted plan would
// forward to.
func (c *Cluster) arriveSpan(n *Network, sp *zoneSpan, at, from int32, src topology.NodeID,
	now eventq.Time, zone scoping.ZoneID, pkt packet.Packet) {

	nd := &sp.nodes[at]
	if nd.member {
		n.deliverPlan(now, nd.v, Delivery{From: src, Scope: zone, Pkt: pkt})
	}
	for e := nd.lo; e < nd.hi; e++ {
		if sp.edges[e].to == from {
			continue
		}
		c.forwardSpan(n, sp, at, e, src, now, zone, pkt)
	}
}

// spanHop is a packet in flight toward one span node — the span path's
// pooled counterpart of planHop, carrying the inbound edge (so the
// flood does not turn back) and the originating source (for Delivery).
type spanHop struct {
	c        *Cluster
	n        *Network
	span     *zoneSpan
	at, from int32
	src      topology.NodeID
	zone     scoping.ZoneID
	pkt      packet.Packet
	fn       eventq.Handler
}

func (h *spanHop) run(now eventq.Time) {
	c, n, sp, at, from, src, zone, pkt := h.c, h.n, h.span, h.at, h.from, h.src, h.zone, h.pkt
	n.releaseSpanHop(h)
	c.arriveSpan(n, sp, at, from, src, now, zone, pkt)
}

func (n *Network) acquireSpanHop() *spanHop {
	if l := len(n.spanHopFree); l > 0 {
		h := n.spanHopFree[l-1]
		n.spanHopFree[l-1] = nil
		n.spanHopFree = n.spanHopFree[:l-1]
		return h
	}
	h := &spanHop{c: n.cluster, n: n}
	h.fn = h.run
	return h
}

func (n *Network) releaseSpanHop(h *spanHop) {
	h.span, h.pkt = nil, nil
	n.spanHopFree = append(n.spanHopFree, h)
}

// planHop is a packet in flight toward one plan node on the sharded
// path — the pooled counterpart of pendingHop. The agent taking
// delivery must live on this view's shard (the forwarding step routed
// cross-shard hops through the barrier already).
type planHop struct {
	c    *Cluster
	n    *Network
	plan *fanPlan
	idx  int32
	zone scoping.ZoneID
	pkt  packet.Packet
	fn   eventq.Handler
}

func (h *planHop) run(now eventq.Time) {
	c, n, p, idx, zone, pkt := h.c, h.n, h.plan, h.idx, h.zone, h.pkt
	n.releasePlanHop(h)
	c.arrive(n, p, idx, now, zone, pkt)
}

func (n *Network) acquirePlanHop() *planHop {
	if l := len(n.planHopFree); l > 0 {
		h := n.planHopFree[l-1]
		n.planHopFree[l-1] = nil
		n.planHopFree = n.planHopFree[:l-1]
		return h
	}
	h := &planHop{c: n.cluster, n: n}
	h.fn = h.run
	return h
}

func (n *Network) releasePlanHop(h *planHop) {
	h.plan, h.pkt = nil, nil
	n.planHopFree = append(n.planHopFree, h)
}

// deliverPlan hands an arrived packet to the member node's agent and
// taps. Sharded runs carry no telemetry bus (the facade rejects the
// combination), so unlike the sequential deliver there is no event
// emission here.
func (n *Network) deliverPlan(now eventq.Time, at topology.NodeID, d Delivery) {
	n.delivered++
	for _, tap := range n.taps {
		tap(now, at, d)
	}
	if a := n.agents[at]; a != nil {
		a.Receive(now, d)
	}
}

// lossModelAt returns the per-direction override, if any. The models
// array only changes at sync barriers.
func (c *Cluster) lossModelAt(link, dir int) LossModel {
	if c.lossModels == nil {
		return nil
	}
	return c.lossModels[link][dir]
}

// lossStream returns the direction's private Bernoulli stream, creating
// it on first use. Only the upstream owner shard ever touches a given
// direction, so creation and draws are single-threaded per stream, and
// the (seed, link, dir) keying makes draw sequences independent of both
// shard count and the traffic on every other link.
func (c *Cluster) lossStream(link, dir int) *simrand.Rand {
	r := c.lossStreams[link][dir]
	if r == nil {
		r = c.src.StreamN2("netsim/loss", link, dir)
		c.lossStreams[link][dir] = r
	}
	return r
}
