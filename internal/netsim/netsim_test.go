package netsim

import (
	"errors"
	"math"
	"testing"

	"sharqfec/internal/eventq"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/simrand"
	"sharqfec/internal/topology"
)

// recorder is a test agent that logs arrivals.
type recorder struct {
	got []arrival
}

type arrival struct {
	at   eventq.Time
	from topology.NodeID
	pkt  packet.Packet
}

func (r *recorder) Receive(now eventq.Time, d Delivery) {
	r.got = append(r.got, arrival{at: now, from: d.From, pkt: d.Pkt})
}

// build wires a network over a spec and attaches a recorder to every
// member.
func build(t *testing.T, spec *topology.Spec, seed uint64) (*Network, map[topology.NodeID]*recorder) {
	t.Helper()
	h, err := scoping.Build(spec.Zones)
	if err != nil {
		t.Fatal(err)
	}
	var q eventq.Queue
	n := New(&q, spec.Graph, h, simrand.New(seed))
	recs := map[topology.NodeID]*recorder{}
	for _, m := range spec.Members() {
		r := &recorder{}
		recs[m] = r
		n.Attach(m, r)
	}
	return n, recs
}

func dataPkt(size int) *packet.Data {
	return &packet.Data{Origin: 0, Seq: 1, Group: 0, Index: 0, GroupK: 16, Payload: make([]byte, size)}
}

func TestLosslessChainDelivery(t *testing.T) {
	spec := topology.Chain(4, 1e6, 0.010, 0.9) // high loss but NACKs are lossless
	n, recs := build(t, spec, 1)
	n.Multicast(0, 0, &packet.NACK{Origin: 0, Group: 1})
	n.Q.Run()
	for _, v := range spec.Receivers {
		if len(recs[v].got) != 1 {
			t.Fatalf("node %d got %d packets, want 1 (lossless)", v, len(recs[v].got))
		}
	}
	if len(recs[0].got) != 0 {
		t.Fatal("sender received its own multicast")
	}
}

func TestDeliveryTiming(t *testing.T) {
	// 1 Mbit/s link, 10 ms latency, 1000-bit packet → per hop:
	// 1 ms transmission + 10 ms propagation.
	spec := topology.Chain(3, 1e6, 0.010, 0)
	n, recs := build(t, spec, 1)
	pkt := &packet.NACK{Origin: 0, Group: 1}
	bits := float64(pkt.WireSize() * 8)
	perHop := bits/1e6 + 0.010
	n.Multicast(0, 0, pkt)
	n.Q.Run()
	for _, v := range []topology.NodeID{1, 2} {
		want := perHop * float64(v)
		got := recs[v].got[0].at.Seconds()
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("node %d arrival %v, want %v", v, got, want)
		}
	}
}

func TestQueueingDelay(t *testing.T) {
	// Two back-to-back packets on one link: the second waits for the
	// first's transmission to finish.
	spec := topology.Chain(2, 1e6, 0, 0)
	n, recs := build(t, spec, 1)
	pkt := &packet.NACK{Origin: 0, Group: 1}
	tx := float64(pkt.WireSize()*8) / 1e6
	n.Multicast(0, 0, pkt)
	n.Multicast(0, 0, pkt)
	n.Q.Run()
	if len(recs[1].got) != 2 {
		t.Fatalf("got %d deliveries", len(recs[1].got))
	}
	if math.Abs(recs[1].got[0].at.Seconds()-tx) > 1e-12 {
		t.Fatalf("first arrival %v, want %v", recs[1].got[0].at, tx)
	}
	if math.Abs(recs[1].got[1].at.Seconds()-2*tx) > 1e-12 {
		t.Fatalf("second arrival %v, want %v (queued)", recs[1].got[1].at, 2*tx)
	}
}

func TestDuplexIndependence(t *testing.T) {
	// Opposite directions of one link do not queue behind each other.
	spec := topology.Chain(2, 1e6, 0, 0)
	n, recs := build(t, spec, 1)
	pkt := &packet.NACK{Origin: 0, Group: 1}
	tx := float64(pkt.WireSize()*8) / 1e6
	n.Multicast(0, 0, pkt)
	n.Multicast(1, 0, pkt)
	n.Q.Run()
	if math.Abs(recs[1].got[0].at.Seconds()-tx) > 1e-12 ||
		math.Abs(recs[0].got[0].at.Seconds()-tx) > 1e-12 {
		t.Fatal("duplex directions interfered")
	}
}

func TestScopedDeliveryRestriction(t *testing.T) {
	// Balanced tree with per-subtree zones: a packet scoped to one
	// subtree zone must not reach the other subtree.
	spec := topology.BalancedTree([]int{2, 2}, 1e6, 0.01, 0)
	n, recs := build(t, spec, 1)
	// Zone 1 is node 1's subtree {1, 3, 4}.
	zone1 := scoping.ZoneID(1)
	if !n.H.Contains(zone1, 3) {
		t.Fatal("test assumption: node 3 in zone 1")
	}
	n.Multicast(1, zone1, &packet.NACK{Origin: 1, Group: 1})
	n.Q.Run()
	for _, v := range []topology.NodeID{3, 4} {
		if len(recs[v].got) != 1 {
			t.Fatalf("zone member %d got %d", v, len(recs[v].got))
		}
	}
	for _, v := range []topology.NodeID{0, 2, 5, 6} {
		if len(recs[v].got) != 0 {
			t.Fatalf("non-member %d heard scoped packet", v)
		}
	}
}

func TestScopedFromInsideReachesWholeZone(t *testing.T) {
	// A leaf multicasting to its zone reaches its zone peers via the
	// shared parent even though the parent is outside the zone... the
	// parent forwards but does not Receive.
	spec := topology.BalancedTree([]int{2, 2}, 1e6, 0.01, 0)
	n, recs := build(t, spec, 1)
	zone1 := scoping.ZoneID(1) // members {1,3,4}
	n.Multicast(3, zone1, &packet.NACK{Origin: 3, Group: 1})
	n.Q.Run()
	if len(recs[1].got) != 1 || len(recs[4].got) != 1 {
		t.Fatalf("zone members missed packet: node1=%d node4=%d", len(recs[1].got), len(recs[4].got))
	}
	if len(recs[0].got) != 0 {
		t.Fatal("root heard zone-scoped packet")
	}
}

func TestLossDropsSubtree(t *testing.T) {
	// With loss=1 on every link, nothing arrives.
	spec := topology.Chain(4, 1e6, 0.01, 1)
	n, recs := build(t, spec, 1)
	n.Multicast(0, 0, dataPkt(100))
	n.Q.Run()
	for _, v := range spec.Receivers {
		if len(recs[v].got) != 0 {
			t.Fatalf("node %d received despite loss=1", v)
		}
	}
	_, _, dropped := n.Stats()
	if dropped == 0 {
		t.Fatal("no drops recorded")
	}
}

func TestLossStatistics(t *testing.T) {
	// Single link with 20% loss: about 20% of data packets vanish.
	spec := topology.Chain(2, 1e9, 0, 0.2)
	n, recs := build(t, spec, 7)
	const N = 5000
	for i := 0; i < N; i++ {
		n.Multicast(0, 0, dataPkt(10))
	}
	n.Q.Run()
	got := float64(len(recs[1].got)) / N
	if math.Abs(got-0.8) > 0.02 {
		t.Fatalf("delivery rate %v, want ≈0.8", got)
	}
}

func TestLossIndependentPerLink(t *testing.T) {
	// Chain of 3 with 10% loss per link: end node sees ≈ 0.9².
	spec := topology.Chain(3, 1e9, 0, 0.1)
	n, recs := build(t, spec, 11)
	const N = 5000
	for i := 0; i < N; i++ {
		n.Multicast(0, 0, dataPkt(10))
	}
	n.Q.Run()
	mid := float64(len(recs[1].got)) / N
	end := float64(len(recs[2].got)) / N
	if math.Abs(mid-0.9) > 0.02 {
		t.Fatalf("mid rate %v, want ≈0.9", mid)
	}
	if math.Abs(end-0.81) > 0.02 {
		t.Fatalf("end rate %v, want ≈0.81", end)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int {
		spec := topology.Figure10(topology.Figure10Params{})
		n, recs := build(t, spec, 42)
		for i := 0; i < 50; i++ {
			n.Multicast(0, 0, dataPkt(1000))
		}
		n.Q.Run()
		var counts []int
		for _, m := range spec.Members() {
			counts = append(counts, len(recs[m].got))
		}
		return counts
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at member %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTapObservesDeliveries(t *testing.T) {
	spec := topology.Chain(3, 1e6, 0.01, 0)
	n, _ := build(t, spec, 1)
	var tapped int
	n.AddTap(func(now eventq.Time, at topology.NodeID, d Delivery) { tapped++ })
	n.Multicast(0, 0, &packet.NACK{Origin: 0})
	n.Q.Run()
	if tapped != 2 {
		t.Fatalf("tap saw %d deliveries, want 2", tapped)
	}
}

func TestUnattachedMemberStillCounted(t *testing.T) {
	// A member with no agent still counts as delivered (tap fires), so
	// joining late is modelled by attaching late.
	spec := topology.Chain(3, 1e6, 0.01, 0)
	h, err := scoping.Build(spec.Zones)
	if err != nil {
		t.Fatal(err)
	}
	var q eventq.Queue
	n := New(&q, spec.Graph, h, simrand.New(1))
	var tapped int
	n.AddTap(func(eventq.Time, topology.NodeID, Delivery) { tapped++ })
	n.Multicast(0, 0, &packet.NACK{Origin: 0})
	q.Run()
	if tapped != 2 {
		t.Fatalf("tap saw %d, want 2", tapped)
	}
}

func TestOneWayDelay(t *testing.T) {
	spec := topology.Chain(4, 1e6, 0.015, 0)
	n, _ := build(t, spec, 1)
	if got := n.OneWayDelay(0, 3); math.Abs(float64(got)-0.045) > 1e-12 {
		t.Fatalf("OneWayDelay = %v, want 45ms", got)
	}
	if got := n.OneWayDelay(3, 1); math.Abs(float64(got)-0.030) > 1e-12 {
		t.Fatalf("OneWayDelay(3,1) = %v, want 30ms", got)
	}
}

func TestFigure10Broadcast(t *testing.T) {
	spec := topology.Figure10(topology.Figure10Params{})
	n, recs := build(t, spec, 3)
	n.Multicast(0, 0, &packet.NACK{Origin: 0}) // lossless: everyone hears
	n.Q.Run()
	for _, m := range spec.Receivers {
		if len(recs[m].got) != 1 {
			t.Fatalf("receiver %d got %d", m, len(recs[m].got))
		}
	}
	sent, delivered, _ := n.Stats()
	if sent != 1 || delivered != 112 {
		t.Fatalf("stats: sent=%d delivered=%d", sent, delivered)
	}
}

func TestRepairFromLeafZoneStaysLocal(t *testing.T) {
	spec := topology.Figure10(topology.Figure10Params{})
	n, recs := build(t, spec, 3)
	// Node 8 is the first tree child; its leaf zone holds it + 4 kids.
	leaf := n.H.LeafZone(8)
	if got := len(n.H.Members(leaf)); got != 5 {
		t.Fatalf("leaf zone size %d, want 5", got)
	}
	n.Multicast(8, leaf, &packet.NACK{Origin: 8})
	n.Q.Run()
	total := 0
	for _, m := range spec.Members() {
		total += len(recs[m].got)
	}
	if total != 4 {
		t.Fatalf("leaf-scoped multicast delivered %d, want 4", total)
	}
}

func TestQueueLimitTailDrops(t *testing.T) {
	// Flood a slow link far beyond its queue limit: most packets must
	// be tail-dropped, and with no limit none are.
	spec := topology.Chain(2, 1e5, 0, 0) // 100 kbit/s: 80 ms per 1000 B
	n, recs := build(t, spec, 1)
	n.QueueLimit = 4
	for i := 0; i < 100; i++ {
		n.Multicast(0, 0, dataPkt(1000))
	}
	n.Q.Run()
	if n.TailDrops() == 0 {
		t.Fatal("no tail drops under a 25x overload")
	}
	if got := len(recs[1].got); got > 10 {
		t.Fatalf("%d packets delivered through a 4-packet queue", got)
	}

	n2, recs2 := build(t, spec, 1)
	for i := 0; i < 100; i++ {
		n2.Multicast(0, 0, dataPkt(1000))
	}
	n2.Q.Run()
	if n2.TailDrops() != 0 {
		t.Fatal("tail drops with unbounded queues")
	}
	if len(recs2[1].got) != 100 {
		t.Fatalf("unbounded queue delivered %d/100", len(recs2[1].got))
	}
}

func TestQueueLimitSparesLightTraffic(t *testing.T) {
	// Light traffic far below the limit must be unaffected.
	spec := topology.Chain(3, 10e6, 0.01, 0)
	n, recs := build(t, spec, 2)
	n.QueueLimit = 16
	for i := 0; i < 10; i++ {
		n.Multicast(0, 0, dataPkt(500))
	}
	n.Q.Run()
	if n.TailDrops() != 0 {
		t.Fatalf("tail drops on an idle link: %d", n.TailDrops())
	}
	if len(recs[2].got) != 10 {
		t.Fatalf("delivered %d/10", len(recs[2].got))
	}
}

func TestSendTapObservesTransmissions(t *testing.T) {
	spec := topology.Chain(3, 1e6, 0.01, 0)
	n, _ := build(t, spec, 1)
	var sends []topology.NodeID
	n.AddSendTap(func(_ eventq.Time, from topology.NodeID, _ scoping.ZoneID, _ packet.Packet) {
		sends = append(sends, from)
	})
	n.Multicast(0, 0, &packet.NACK{Origin: 0})
	n.Multicast(2, 0, &packet.NACK{Origin: 2})
	n.Q.Run()
	if len(sends) != 2 || sends[0] != 0 || sends[1] != 2 {
		t.Fatalf("send tap saw %v", sends)
	}
}

func TestMulticastValidation(t *testing.T) {
	spec := topology.Chain(2, 1e6, 0.01, 0)
	n, recs := build(t, spec, 1)
	if err := n.MulticastE(99, 0, &packet.NACK{}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown node: got %v, want ErrUnknownNode", err)
	}
	if err := n.MulticastE(-1, 0, &packet.NACK{}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("negative node: got %v, want ErrUnknownNode", err)
	}
	if err := n.MulticastE(0, 42, &packet.NACK{}); !errors.Is(err, ErrUnknownZone) {
		t.Fatalf("unknown zone: got %v, want ErrUnknownZone", err)
	}
	// The non-error fabric entry point drops invalid sends silently
	// instead of panicking.
	n.Multicast(99, 0, &packet.NACK{})
	n.Multicast(0, 42, &packet.NACK{})
	n.Q.Run()
	for node, r := range recs {
		if len(r.got) != 0 {
			t.Fatalf("node %d received %d packets from invalid sends", node, len(r.got))
		}
	}
	if sent, _, _ := n.Stats(); sent != 0 {
		t.Fatalf("invalid sends counted: sent = %d", sent)
	}
}

// TestMulticastEmptyPrunedSet is the regression test for multicasting
// from a member whose destination zone has no other members: the pruned
// delivery set is empty and the send must be a silent no-op.
func TestMulticastEmptyPrunedSet(t *testing.T) {
	spec := topology.Chain(3, 1e6, 0.01, 0)
	// Zone 1 holds only node 2; multicasts from 2 scoped to zone 1
	// therefore have nobody to reach.
	spec.Zones = []topology.ZoneSpec{
		{ID: 0, Parent: -1, Leaves: []topology.NodeID{0, 1}},
		{ID: 1, Parent: 0, Leaves: []topology.NodeID{2}},
	}
	n, recs := build(t, spec, 1)
	if err := n.MulticastE(2, 1, &packet.NACK{Origin: 2}); err != nil {
		t.Fatalf("empty-zone multicast errored: %v", err)
	}
	n.Q.Run()
	for node, r := range recs {
		if len(r.got) != 0 {
			t.Fatalf("node %d received a packet from an empty-zone multicast", node)
		}
	}
	sent, delivered, _ := n.Stats()
	if sent != 1 || delivered != 0 {
		t.Fatalf("stats = (%d sent, %d delivered), want (1, 0)", sent, delivered)
	}
}

func TestTreeCaching(t *testing.T) {
	spec := topology.Chain(4, 1e6, 0.01, 0)
	n, _ := build(t, spec, 1)
	t1 := n.Tree(0)
	t2 := n.Tree(0)
	if t1 != t2 {
		t.Fatal("tree not cached")
	}
	if n.Tree(2).Root != 2 {
		t.Fatal("wrong root")
	}
}

func TestAgentAt(t *testing.T) {
	spec := topology.Chain(2, 1e6, 0.01, 0)
	n, recs := build(t, spec, 1)
	if n.AgentAt(1) != recs[1] {
		t.Fatal("AgentAt mismatch")
	}
	n.Attach(1, nil)
	if n.AgentAt(1) != nil {
		t.Fatal("detach failed")
	}
}

// TestSetHierarchyMembershipChange removes a member mid-session via
// scoping.WithoutMember + SetHierarchy and checks the pruned delivery
// sets shrink: the departed node stops receiving, subtree forwarding
// through it stops when nobody below needs the packet, and remaining
// members are unaffected.
func TestSetHierarchyMembershipChange(t *testing.T) {
	spec := topology.Chain(4, 1e6, 0.010, 0)
	n, recs := build(t, spec, 1)
	pkt := &packet.NACK{Origin: 0, Group: 1}

	n.Multicast(0, 0, pkt)
	n.Q.Run()
	for _, v := range []topology.NodeID{1, 2, 3} {
		if len(recs[v].got) != 1 {
			t.Fatalf("node %d got %d packets before the change, want 1", v, len(recs[v].got))
		}
	}

	// Node 3 (the chain's tail) leaves the session.
	h2, err := n.H.WithoutMember(3)
	if err != nil {
		t.Fatal(err)
	}
	n.SetHierarchy(h2)
	sentBefore, deliveredBefore, _ := n.Stats()

	n.Multicast(0, 0, pkt)
	n.Q.Run()
	if len(recs[3].got) != 1 {
		t.Errorf("departed node 3 got %d packets, want 1 (nothing after leaving)", len(recs[3].got))
	}
	for _, v := range []topology.NodeID{1, 2} {
		if len(recs[v].got) != 2 {
			t.Errorf("node %d got %d packets, want 2 (unaffected by the leave)", v, len(recs[v].got))
		}
	}
	sent, delivered, _ := n.Stats()
	if sent != sentBefore+1 || delivered != deliveredBefore+2 {
		t.Errorf("stats after leave: sent %d delivered %d, want %d/%d",
			sent, delivered, sentBefore+1, deliveredBefore+2)
	}

	// An interior member leaving must not cut off the members behind it:
	// node 2 leaves, node 1 (and the departed 3) aside, the packet still
	// transits node 2's attachment point.
	h3, err := n.H.WithoutMember(2)
	if err != nil {
		t.Fatal(err)
	}
	n.SetHierarchy(h3)
	n.Multicast(0, 0, pkt)
	n.Q.Run()
	if len(recs[2].got) != 2 {
		t.Errorf("departed node 2 got %d packets, want 2", len(recs[2].got))
	}
	if len(recs[1].got) != 3 {
		t.Errorf("node 1 got %d packets, want 3", len(recs[1].got))
	}
}
