// Package udpmesh binds the protocol engines to real UDP sockets: the
// same wire-encoded packets the simulator models are exchanged between
// processes (or in-process nodes) over the loopback or a LAN, with
// wall-clock timers replacing the virtual clock.
//
// Administrative scoping is realized as membership lists: a multicast to
// zone Z is fanned out by unicast to every member of Z (the deployment
// story when admin-scoped IP multicast groups are unavailable — one
// group address per zone would replace the fan-out loop one-for-one).
// An optional synthetic Bernoulli loss is applied per destination to
// loss-eligible packets, standing in for the lossy links of §6.
//
// Clock note: each node's Scheduler measures time from its own start, so
// clocks are NOT synchronized across nodes — which is exactly the
// condition the paper's echo-based RTT measurement and local-timestamp
// election formula are designed for.
package udpmesh

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"sharqfec/internal/eventq"
	"sharqfec/internal/fabric"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/simrand"
	"sharqfec/internal/topology"
)

// meshHeader prefixes every datagram: origin node (4 bytes) and scope
// zone (2 bytes), the demultiplexing a per-zone multicast group address
// would otherwise provide.
const meshHeader = 6

// Mesh is the shared description of a session: the zone hierarchy, every
// member's address, and the synthetic loss rate.
type Mesh struct {
	H     *scoping.Hierarchy
	Addrs map[topology.NodeID]*net.UDPAddr
	// Loss is the per-destination drop probability applied to
	// loss-eligible packets (data and repairs), emulating lossy links.
	Loss float64
	// Seed drives each node's independent loss stream.
	Seed uint64
}

// Node is one session member's endpoint. It implements fabric.Network
// for exactly one node ID: timers and incoming packets are serialized
// onto a single goroutine, preserving the protocols' single-threaded
// execution model.
type Node struct {
	mesh  *Mesh
	id    topology.NodeID
	conn  *net.UDPConn
	start time.Time

	work chan func()
	done chan struct{}
	wg   sync.WaitGroup

	mu     sync.Mutex
	agent  fabric.Agent
	closed bool

	lossRNG *simrand.Rand
}

// NewNode opens (or adopts) the member's socket and starts its executor
// and reader. If conn is nil the node listens on mesh.Addrs[id].
func NewNode(mesh *Mesh, id topology.NodeID, conn *net.UDPConn) (*Node, error) {
	if _, ok := mesh.Addrs[id]; !ok {
		return nil, fmt.Errorf("udpmesh: node %d has no address", id)
	}
	if conn == nil {
		c, err := net.ListenUDP("udp", mesh.Addrs[id])
		if err != nil {
			return nil, fmt.Errorf("udpmesh: node %d listen: %w", id, err)
		}
		conn = c
	}
	n := &Node{
		mesh:    mesh,
		id:      id,
		conn:    conn,
		start:   time.Now(),
		work:    make(chan func(), 1024),
		done:    make(chan struct{}),
		lossRNG: simrand.New(mesh.Seed).StreamN("udpmesh/loss", int(id)),
	}
	n.wg.Add(2)
	go n.executor()
	go n.reader()
	return n, nil
}

// ID returns the member's node ID.
func (n *Node) ID() topology.NodeID { return n.id }

// Close shuts the node down: the socket closes, pending work drains, and
// late timers become no-ops.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	close(n.done)
	err := n.conn.Close()
	n.wg.Wait()
	return err
}

// executor runs posted work serially — the node's "main loop".
func (n *Node) executor() {
	defer n.wg.Done()
	for {
		select {
		case fn := <-n.work:
			fn()
		case <-n.done:
			return
		}
	}
}

// Do runs fn on the node's executor goroutine — the way external code
// (setup, shutdown, experiment drivers) touches agent state without
// racing the protocol.
func (n *Node) Do(fn func()) { n.post(fn) }

// post schedules fn on the executor; it is dropped after Close.
func (n *Node) post(fn func()) {
	select {
	case n.work <- fn:
	case <-n.done:
	}
}

// reader decodes datagrams and hands them to the agent on the executor.
func (n *Node) reader() {
	defer n.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		sz, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if sz < meshHeader {
			continue
		}
		from := topology.NodeID(int32(binary.BigEndian.Uint32(buf)))
		zone := scoping.ZoneID(int16(binary.BigEndian.Uint16(buf[4:])))
		pkt, err := packet.Unmarshal(append([]byte(nil), buf[meshHeader:sz]...))
		if err != nil {
			continue // corrupt datagram: drop, as a router would
		}
		n.post(func() {
			n.mu.Lock()
			agent := n.agent
			n.mu.Unlock()
			if agent != nil {
				agent.Receive(n.now(), fabric.Delivery{From: from, Scope: zone, Pkt: pkt})
			}
		})
	}
}

func (n *Node) now() eventq.Time {
	return eventq.Time(time.Since(n.start).Seconds())
}

// Sched implements fabric.Network with wall-clock timers.
func (n *Node) Sched() fabric.Scheduler { return rtScheduler{n} }

// Hierarchy implements fabric.Network.
func (n *Node) Hierarchy() *scoping.Hierarchy { return n.mesh.H }

// Attach implements fabric.Network; a Node only hosts its own member.
func (n *Node) Attach(node topology.NodeID, a fabric.Agent) {
	if node != n.id {
		panic(fmt.Sprintf("udpmesh: node %d cannot host agent for %d", n.id, node))
	}
	n.mu.Lock()
	n.agent = a
	n.mu.Unlock()
}

// Multicast implements fabric.Network: unicast fan-out to every member
// of the zone, with synthetic per-destination loss for lossy packets.
func (n *Node) Multicast(from topology.NodeID, zone scoping.ZoneID, pkt packet.Packet) {
	if from != n.id {
		panic(fmt.Sprintf("udpmesh: node %d cannot send as %d", n.id, from))
	}
	body, err := pkt.MarshalBinary()
	if err != nil {
		return
	}
	buf := make([]byte, meshHeader+len(body))
	binary.BigEndian.PutUint32(buf, uint32(from))
	binary.BigEndian.PutUint16(buf[4:], uint16(zone))
	copy(buf[meshHeader:], body)

	for _, m := range n.mesh.H.Members(zone) {
		if m == n.id {
			continue
		}
		addr, ok := n.mesh.Addrs[m]
		if !ok {
			continue
		}
		if pkt.Lossy() && n.lossRNG.Bernoulli(n.mesh.Loss) {
			continue
		}
		_, _ = n.conn.WriteToUDP(buf, addr)
	}
}

var _ fabric.Network = (*Node)(nil)

// rtScheduler is the wall-clock fabric.Scheduler.
type rtScheduler struct{ n *Node }

func (s rtScheduler) Now() eventq.Time { return s.n.now() }

func (s rtScheduler) After(d eventq.Duration, fn func(eventq.Time)) fabric.Timer {
	if d < 0 {
		d = 0
	}
	t := &rtTimer{}
	t.timer = time.AfterFunc(d.Std(), func() {
		s.n.post(func() {
			t.mu.Lock()
			if t.stopped {
				t.mu.Unlock()
				return
			}
			t.fired = true
			t.mu.Unlock()
			fn(s.n.now())
		})
	})
	return t
}

// rtTimer adapts time.Timer to fabric.Timer. Stop-after-fire races are
// resolved on the executor: a stop that lands before the posted callback
// runs still prevents it.
type rtTimer struct {
	mu      sync.Mutex
	timer   *time.Timer
	stopped bool
	fired   bool
}

func (t *rtTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped || t.fired {
		return false
	}
	t.stopped = true
	t.timer.Stop()
	return true
}

func (t *rtTimer) Active() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.stopped && !t.fired
}

// NewLocalMesh builds an in-process mesh on loopback with ephemeral
// ports: sockets are opened first so every member's address is known,
// then nodes are constructed around them. Close every returned node when
// done.
func NewLocalMesh(h *scoping.Hierarchy, members []topology.NodeID, loss float64, seed uint64) (*Mesh, map[topology.NodeID]*Node, error) {
	mesh := &Mesh{H: h, Addrs: map[topology.NodeID]*net.UDPAddr{}, Loss: loss, Seed: seed}
	conns := map[topology.NodeID]*net.UDPConn{}
	for _, m := range members {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
		if err != nil {
			for _, cc := range conns {
				cc.Close()
			}
			return nil, nil, fmt.Errorf("udpmesh: listen: %w", err)
		}
		conns[m] = c
		mesh.Addrs[m] = c.LocalAddr().(*net.UDPAddr)
	}
	nodes := map[topology.NodeID]*Node{}
	for _, m := range members {
		n, err := NewNode(mesh, m, conns[m])
		if err != nil {
			for _, nn := range nodes {
				nn.Close()
			}
			return nil, nil, err
		}
		nodes[m] = n
	}
	return mesh, nodes, nil
}
