package udpmesh

import (
	"bytes"
	"testing"
	"time"

	"sharqfec/internal/core"
	"sharqfec/internal/eventq"
	"sharqfec/internal/fabric"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/session"
	"sharqfec/internal/simrand"
	"sharqfec/internal/srm"
	"sharqfec/internal/topology"
)

// twoLevelChainSpec builds the chain-with-child-zone layout used by the
// over-UDP tests.
func twoLevelChainSpec() *topology.Spec {
	spec := topology.Chain(4, 10e6, 0.010, 0)
	spec.Zones = []topology.ZoneSpec{
		{ID: 0, Parent: -1, Leaves: []topology.NodeID{0}},
		{ID: 1, Parent: 0, Leaves: []topology.NodeID{1, 2, 3}},
	}
	return spec
}

func buildMesh(t *testing.T, spec *topology.Spec, loss float64, seed uint64) (*Mesh, map[topology.NodeID]*Node) {
	t.Helper()
	h, err := scoping.Build(spec.Zones)
	if err != nil {
		t.Fatal(err)
	}
	mesh, nodes, err := NewLocalMesh(h, spec.Members(), loss, seed)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
	})
	return mesh, nodes
}

// chanAgent forwards deliveries to a channel.
type chanAgent struct{ ch chan fabric.Delivery }

func (a chanAgent) Receive(_ eventq.Time, d fabric.Delivery) { a.ch <- d }

func TestTimerFiresAndStops(t *testing.T) {
	spec := twoLevelChainSpec()
	_, nodes := buildMesh(t, spec, 0, 1)
	n := nodes[0]

	fired := make(chan eventq.Time, 1)
	n.Sched().After(0.01, func(now eventq.Time) { fired <- now })
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("timer did not fire")
	}

	tm := n.Sched().After(0.05, func(eventq.Time) { fired <- 0 })
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	if tm.Active() {
		t.Fatal("stopped timer still active")
	}
	select {
	case <-fired:
		t.Fatal("stopped timer fired")
	case <-time.After(200 * time.Millisecond):
	}
}

func TestUnicastFanOutDelivers(t *testing.T) {
	spec := twoLevelChainSpec()
	_, nodes := buildMesh(t, spec, 0, 2)
	got := make(chan fabric.Delivery, 16)
	for _, m := range []topology.NodeID{1, 2, 3} {
		nodes[m].Attach(m, chanAgent{got})
	}
	nodes[0].Multicast(0, 0, &packet.NACK{Origin: 0, Group: 7, LLC: 1, Needed: 1})

	seen := map[topology.NodeID]bool{}
	deadline := time.After(3 * time.Second)
	for len(seen) < 3 {
		select {
		case d := <-got:
			n, ok := d.Pkt.(*packet.NACK)
			if !ok || n.Group != 7 || d.From != 0 {
				t.Fatalf("unexpected delivery %+v", d)
			}
			// We cannot tell which node received from the delivery, but
			// three distinct deliveries on a 3-member channel suffice.
			seen[topology.NodeID(len(seen))] = true
		case <-deadline:
			t.Fatalf("only %d of 3 members heard the multicast", len(seen))
		}
	}
}

func TestZoneScopingOverUDP(t *testing.T) {
	spec := twoLevelChainSpec()
	_, nodes := buildMesh(t, spec, 0, 3)
	rootGot := make(chan fabric.Delivery, 4)
	zoneGot := make(chan fabric.Delivery, 4)
	nodes[0].Attach(0, chanAgent{rootGot})
	nodes[2].Attach(2, chanAgent{zoneGot})
	nodes[3].Attach(3, chanAgent{zoneGot})

	// Node 1 multicasts to zone 1: members 2 and 3 hear it, node 0
	// (root only) must not.
	nodes[1].Multicast(1, 1, &packet.NACK{Origin: 1, Group: 9})
	for i := 0; i < 2; i++ {
		select {
		case <-zoneGot:
		case <-time.After(3 * time.Second):
			t.Fatal("zone member missed scoped packet")
		}
	}
	select {
	case <-rootGot:
		t.Fatal("root-only member heard a zone-scoped packet")
	case <-time.After(200 * time.Millisecond):
	}
}

func TestSyntheticLossSparesLosslessPackets(t *testing.T) {
	spec := twoLevelChainSpec()
	_, nodes := buildMesh(t, spec, 1.0, 4) // drop every lossy packet
	got := make(chan fabric.Delivery, 8)
	nodes[1].Attach(1, chanAgent{got})

	nodes[0].Multicast(0, 0, &packet.Data{Origin: 0, Seq: 1, GroupK: 16, Payload: []byte{1}})
	nodes[0].Multicast(0, 0, &packet.NACK{Origin: 0, Group: 1})
	select {
	case d := <-got:
		if d.Pkt.Kind() != packet.TypeNACK {
			t.Fatalf("lossy packet survived 100%% loss: %s", d.Pkt.Kind())
		}
	case <-time.After(3 * time.Second):
		t.Fatal("lossless packet dropped")
	}
}

func TestAttachForeignNodePanics(t *testing.T) {
	spec := twoLevelChainSpec()
	_, nodes := buildMesh(t, spec, 0, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	nodes[0].Attach(1, chanAgent{make(chan fabric.Delivery)})
}

func TestSHARQFECOverUDP(t *testing.T) {
	// The full protocol over real sockets: a 32-packet stream at
	// 1 ms/packet with 15% synthetic loss on data and repairs; every
	// receiver must reconstruct every group, bytes verified.
	spec := twoLevelChainSpec()
	_, nodes := buildMesh(t, spec, 0.15, 6)

	cfg := core.DefaultConfig()
	cfg.NumPackets = 32
	cfg.Rate = 8e6 // 1 ms per packet: keeps the wall-clock test short

	type completion struct {
		node topology.NodeID
		gid  uint32
		data [][]byte
	}
	done := make(chan completion, 64)

	src := simrand.New(6)
	agents := map[topology.NodeID]*core.Agent{}
	for _, m := range spec.Members() {
		ag, err := core.New(m, nodes[m], cfg, src)
		if err != nil {
			t.Fatal(err)
		}
		node := m
		if m != spec.Source {
			ag.OnComplete = func(_ eventq.Time, gid uint32, data [][]byte) {
				done <- completion{node: node, gid: gid, data: data}
			}
		}
		agents[m] = ag
	}
	// Join everyone, then start the source, on their own executors.
	for _, m := range spec.Members() {
		ag := agents[m]
		nodes[m].post(func() { ag.Join() })
	}
	time.Sleep(500 * time.Millisecond) // session warm-up (real time)
	srcNode := nodes[spec.Source]
	srcAgent := agents[spec.Source]
	srcNode.post(func() { srcAgent.StartSource() })

	want := (len(spec.Members()) - 1) * cfg.NumGroups()
	completions := map[topology.NodeID]map[uint32][][]byte{}
	total := 0
	deadline := time.After(30 * time.Second)
	for total < want {
		select {
		case c := <-done:
			if completions[c.node] == nil {
				completions[c.node] = map[uint32][][]byte{}
			}
			if completions[c.node][c.gid] == nil {
				completions[c.node][c.gid] = c.data
				total++
			}
		case <-deadline:
			t.Fatalf("recovered %d/%d (receiver,group) pairs before the deadline", total, want)
		}
	}
	// Verify payloads against the source's transmit buffer.
	for node, groups := range completions {
		for gid, data := range groups {
			wantData := srcAgent.SentGroup(gid)
			for i := range wantData {
				if !bytes.Equal(data[i], wantData[i]) {
					t.Fatalf("node %d group %d share %d corrupted over UDP", node, gid, i)
				}
			}
		}
	}
}

func TestSRMOverUDP(t *testing.T) {
	// The SRM baseline also runs unmodified over sockets.
	spec := twoLevelChainSpec()
	_, nodes := buildMesh(t, spec, 0.15, 7)

	cfg := srm.DefaultConfig()
	cfg.NumPackets = 32
	cfg.Rate = 8e6

	src := simrand.New(7)
	agents := map[topology.NodeID]*srm.Agent{}
	delivered := make(chan topology.NodeID, 256)
	for _, m := range spec.Members() {
		ag, err := srm.New(m, nodes[m], cfg, src)
		if err != nil {
			t.Fatal(err)
		}
		node := m
		if m != spec.Source {
			ag.OnDeliver = func(eventq.Time, uint32, []byte) { delivered <- node }
		}
		agents[m] = ag
	}
	for _, m := range spec.Members() {
		ag := agents[m]
		nodes[m].Do(func() { ag.Join() })
	}
	time.Sleep(400 * time.Millisecond)
	srcNode, srcAgent := nodes[spec.Source], agents[spec.Source]
	srcNode.Do(func() { srcAgent.StartSource() })

	want := (len(spec.Members()) - 1) * cfg.NumPackets
	got := 0
	deadline := time.After(30 * time.Second)
	for got < want {
		select {
		case <-delivered:
			got++
		case <-deadline:
			t.Fatalf("delivered %d/%d packets before deadline", got, want)
		}
	}
}

func TestZCRElectionOverUDP(t *testing.T) {
	// §5.2 elections over real sockets, with genuinely unsynchronized
	// per-node clocks: the closest member must still win.
	spec := twoLevelChainSpec()
	_, nodes := buildMesh(t, spec, 0, 8)

	src := simrand.New(8)
	mgrs := map[topology.NodeID]*session.Manager{}
	for _, m := range spec.Members() {
		mgr := session.New(m, nodes[m], session.DefaultConfig(), src.StreamN("session", int(m)))
		mgrs[m] = mgr
		node, isSrc := m, m == spec.Source
		nodes[m].Attach(m, sessionFwd{mgr})
		nodes[node].Do(func() { mgr.Start(isSrc) })
	}
	// Loopback "distances" are sub-millisecond and noisy, so the closest
	// receiver is not topologically determined — but the election must
	// still converge on a single unanimous ZCR for zone 1.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(500 * time.Millisecond)
		votes := map[topology.NodeID]int{}
		done := make(chan topology.NodeID, 3)
		for _, m := range []topology.NodeID{1, 2, 3} {
			mgr := mgrs[m]
			nodes[m].Do(func() { done <- mgr.ZCR(1) })
		}
		for i := 0; i < 3; i++ {
			votes[<-done]++
		}
		for who, n := range votes {
			if n == 3 && who != topology.NoNode {
				return // unanimous election over real sockets
			}
		}
	}
	t.Fatal("zone-1 election never became unanimous over UDP")
}

// sessionFwd adapts a session.Manager to fabric.Agent.
type sessionFwd struct{ m *session.Manager }

func (a sessionFwd) Receive(now eventq.Time, d fabric.Delivery) { a.m.Receive(now, d.Pkt) }
