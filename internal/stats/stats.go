// Package stats collects the measurements the paper's figures plot:
// data+repair and NACK traffic per session member, bucketed into 0.1 s
// intervals (§6.2 measurement methodology), plus per-run totals.
package stats

import (
	"fmt"
	"strings"

	"sharqfec/internal/eventq"
	"sharqfec/internal/netsim"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/topology"
)

// Series is a time series of per-bin values starting at time Start with
// fixed-width bins.
type Series struct {
	Start    float64
	BinWidth float64
	bins     []float64
}

// NewSeries creates an empty series.
func NewSeries(start, binWidth float64) *Series {
	if binWidth <= 0 {
		panic("stats: non-positive bin width")
	}
	return &Series{Start: start, BinWidth: binWidth}
}

// Add accumulates v into the bin containing time t. Times before Start
// are ignored.
func (s *Series) Add(t, v float64) {
	if t < s.Start {
		return
	}
	i := int((t - s.Start) / s.BinWidth)
	for len(s.bins) <= i {
		s.bins = append(s.bins, 0)
	}
	s.bins[i] += v
}

// Len returns the number of bins.
func (s *Series) Len() int { return len(s.bins) }

// Bin returns the value of bin i (0 beyond the recorded range).
func (s *Series) Bin(i int) float64 {
	if i < 0 || i >= len(s.bins) {
		return 0
	}
	return s.bins[i]
}

// Values returns a copy of all bins.
func (s *Series) Values() []float64 {
	return append([]float64(nil), s.bins...)
}

// Scaled returns a copy of the series with every bin multiplied by f.
func (s *Series) Scaled(f float64) *Series {
	out := NewSeries(s.Start, s.BinWidth)
	out.bins = make([]float64, len(s.bins))
	for i, v := range s.bins {
		out.bins[i] = v * f
	}
	return out
}

// Merge accumulates o into s bin-by-bin. The series must share their
// origin and bin width (they do by construction: per-shard collectors
// are built from one config). Bin values are integer packet counts, so
// float64 accumulation is exact and merge order cannot matter.
func (s *Series) Merge(o *Series) {
	if o == nil || len(o.bins) == 0 {
		return
	}
	if o.Start != s.Start || o.BinWidth != s.BinWidth {
		panic(fmt.Sprintf("stats: merging series with mismatched layout (%g/%g vs %g/%g)",
			o.Start, o.BinWidth, s.Start, s.BinWidth))
	}
	for len(s.bins) < len(o.bins) {
		s.bins = append(s.bins, 0)
	}
	for i, v := range o.bins {
		s.bins[i] += v
	}
}

// Sum returns the total over all bins.
func (s *Series) Sum() float64 {
	t := 0.0
	for _, v := range s.bins {
		t += v
	}
	return t
}

// Max returns the largest bin value and its bin start time.
func (s *Series) Max() (v, at float64) {
	for i, b := range s.bins {
		if b > v {
			v = b
			at = s.Start + float64(i)*s.BinWidth
		}
	}
	return
}

// Table renders the series as "time value" rows, for figure output.
func (s *Series) Table() string {
	var b strings.Builder
	for i, v := range s.bins {
		fmt.Fprintf(&b, "%.1f\t%.3f\n", s.Start+float64(i)*s.BinWidth, v)
	}
	return b.String()
}

// Collector taps a network and aggregates the paper's measurements.
type Collector struct {
	source    topology.NodeID
	receivers int

	// Summed over all receivers (divide by receiver count for the
	// "average seen by each receiver" the figures plot).
	DataRepair *Series
	NACKs      *Series
	Session    *Series

	// As seen at the source (Figures 20–21).
	SourceDataRepair *Series
	SourceNACKs      *Series

	// Totals by packet type across all members.
	Totals map[packet.Type]int
}

// NewCollector builds a collector for a session with the given source
// and receiver count; bins are binWidth seconds wide starting at 0.
func NewCollector(source topology.NodeID, receivers int, binWidth float64) *Collector {
	return &Collector{
		source:           source,
		receivers:        receivers,
		DataRepair:       NewSeries(0, binWidth),
		NACKs:            NewSeries(0, binWidth),
		Session:          NewSeries(0, binWidth),
		SourceDataRepair: NewSeries(0, binWidth),
		SourceNACKs:      NewSeries(0, binWidth),
		Totals:           map[packet.Type]int{},
	}
}

// SendTap returns a netsim.SendTap that counts the source's own
// transmissions into the source-visible series: "traffic seen by the
// source" (Figures 20–21) includes the original transmissions.
func (c *Collector) SendTap() netsim.SendTap {
	return func(now eventq.Time, from topology.NodeID, _ scoping.ZoneID, pkt packet.Packet) {
		if from != c.source {
			return
		}
		t := now.Seconds()
		switch pkt.Kind() {
		case packet.TypeData, packet.TypeRepair:
			c.SourceDataRepair.Add(t, 1)
		case packet.TypeNACK:
			c.SourceNACKs.Add(t, 1)
		}
	}
}

// Tap returns the netsim.Tap that feeds this collector.
func (c *Collector) Tap() netsim.Tap {
	return func(now eventq.Time, at topology.NodeID, d netsim.Delivery) {
		kind := d.Pkt.Kind()
		c.Totals[kind]++
		t := now.Seconds()
		atSource := at == c.source
		switch kind {
		case packet.TypeData, packet.TypeRepair:
			if atSource {
				c.SourceDataRepair.Add(t, 1)
			} else {
				c.DataRepair.Add(t, 1)
			}
		case packet.TypeNACK:
			if atSource {
				c.SourceNACKs.Add(t, 1)
			} else {
				c.NACKs.Add(t, 1)
			}
		case packet.TypeSession:
			c.Session.Add(t, 1)
		}
	}
}

// Merge folds another collector's measurements into c — the reduction
// step for zone-sharded runs, where each shard tallies its own nodes'
// deliveries and the shards' series are summed afterwards. All series
// hold integer counts, so the merged result is exact and independent
// of merge order.
func (c *Collector) Merge(o *Collector) {
	c.DataRepair.Merge(o.DataRepair)
	c.NACKs.Merge(o.NACKs)
	c.Session.Merge(o.Session)
	c.SourceDataRepair.Merge(o.SourceDataRepair)
	c.SourceNACKs.Merge(o.SourceNACKs)
	for k, v := range o.Totals {
		c.Totals[k] += v
	}
}

// AvgDataRepair returns data+repair packets per receiver per bin — the
// quantity Figures 14, 16, 17 and 18 plot.
func (c *Collector) AvgDataRepair() *Series {
	return c.DataRepair.Scaled(1 / float64(c.receivers))
}

// AvgNACKs returns NACKs per receiver per bin (Figures 15 and 19).
func (c *Collector) AvgNACKs() *Series {
	return c.NACKs.Scaled(1 / float64(c.receivers))
}

// Receivers returns the receiver count the averages divide by.
func (c *Collector) Receivers() int { return c.receivers }
