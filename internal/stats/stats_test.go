package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"sharqfec/internal/eventq"
	"sharqfec/internal/netsim"
	"sharqfec/internal/packet"
	"sharqfec/internal/topology"
)

func TestSeriesBinning(t *testing.T) {
	s := NewSeries(0, 0.1)
	s.Add(0.05, 1)
	s.Add(0.09, 1)
	s.Add(0.10, 1)
	s.Add(0.55, 2)
	if s.Bin(0) != 2 {
		t.Fatalf("bin 0 = %v", s.Bin(0))
	}
	if s.Bin(1) != 1 {
		t.Fatalf("bin 1 = %v", s.Bin(1))
	}
	if s.Bin(5) != 2 {
		t.Fatalf("bin 5 = %v", s.Bin(5))
	}
	if s.Len() != 6 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSeriesIgnoresBeforeStart(t *testing.T) {
	s := NewSeries(5, 1)
	s.Add(4.9, 1)
	if s.Len() != 0 {
		t.Fatal("pre-start sample recorded")
	}
	s.Add(5.0, 1)
	if s.Bin(0) != 1 {
		t.Fatal("at-start sample missed")
	}
}

func TestSeriesSumMaxScaled(t *testing.T) {
	s := NewSeries(0, 1)
	s.Add(0.5, 3)
	s.Add(1.5, 7)
	s.Add(2.5, 5)
	if s.Sum() != 15 {
		t.Fatalf("sum = %v", s.Sum())
	}
	v, at := s.Max()
	if v != 7 || at != 1 {
		t.Fatalf("max = %v at %v", v, at)
	}
	sc := s.Scaled(0.5)
	if sc.Bin(1) != 3.5 {
		t.Fatalf("scaled bin = %v", sc.Bin(1))
	}
	if s.Bin(1) != 7 {
		t.Fatal("Scaled mutated the original")
	}
}

func TestSeriesOutOfRangeBin(t *testing.T) {
	s := NewSeries(0, 1)
	if s.Bin(-1) != 0 || s.Bin(99) != 0 {
		t.Fatal("out-of-range bins should be 0")
	}
}

func TestSeriesValuesCopy(t *testing.T) {
	s := NewSeries(0, 1)
	s.Add(0, 1)
	v := s.Values()
	v[0] = 99
	if s.Bin(0) != 1 {
		t.Fatal("Values returned a live reference")
	}
}

func TestSeriesTable(t *testing.T) {
	s := NewSeries(0, 0.1)
	s.Add(0, 1)
	s.Add(0.1, 2)
	out := s.Table()
	if !strings.Contains(out, "0.0\t1.000") || !strings.Contains(out, "0.1\t2.000") {
		t.Fatalf("table output: %q", out)
	}
}

func TestNewSeriesPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bin width accepted")
		}
	}()
	NewSeries(0, 0)
}

func TestCollectorRouting(t *testing.T) {
	c := NewCollector(0, 4, 0.1)
	tap := c.Tap()
	mk := func(at int, pkt packet.Packet, when float64) {
		tap(eventq.Time(when), topology.NodeID(at), netsim.Delivery{Pkt: pkt})
	}
	mk(1, &packet.Data{}, 0.05)
	mk(2, &packet.Repair{}, 0.05)
	mk(0, &packet.Data{}, 0.05) // at source
	mk(3, &packet.NACK{}, 0.15)
	mk(0, &packet.NACK{}, 0.15) // at source
	mk(1, &packet.Session{}, 0.25)

	if c.DataRepair.Sum() != 2 {
		t.Fatalf("receiver data+repair = %v", c.DataRepair.Sum())
	}
	if c.SourceDataRepair.Sum() != 1 {
		t.Fatalf("source data+repair = %v", c.SourceDataRepair.Sum())
	}
	if c.NACKs.Sum() != 1 || c.SourceNACKs.Sum() != 1 {
		t.Fatal("NACK routing wrong")
	}
	if c.Session.Sum() != 1 {
		t.Fatal("session routing wrong")
	}
	if c.Totals[packet.TypeData] != 2 {
		t.Fatalf("totals = %v", c.Totals)
	}
	if c.AvgDataRepair().Sum() != 0.5 {
		t.Fatalf("avg = %v", c.AvgDataRepair().Sum())
	}
	if c.AvgNACKs().Sum() != 0.25 {
		t.Fatalf("avg nacks = %v", c.AvgNACKs().Sum())
	}
	if c.Receivers() != 4 {
		t.Fatal("Receivers accessor wrong")
	}
}

// Property: for any sample set, Sum equals the sum of added values (for
// non-negative times).
func TestPropertySeriesSum(t *testing.T) {
	f := func(samples []float64) bool {
		s := NewSeries(0, 0.5)
		want := 0.0
		for i, v := range samples {
			tm := float64(i%100) * 0.3
			vv := math.Abs(v)
			if math.IsInf(vv, 0) || math.IsNaN(vv) || vv > 1e12 {
				continue
			}
			s.Add(tm, vv)
			want += vv
		}
		return math.Abs(s.Sum()-want) <= 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTracerFormat(t *testing.T) {
	var buf strings.Builder
	tr := NewTracer(&buf)
	tr.SendTap()(eventq.Time(6.0), 0, 0, &packet.Data{Payload: make([]byte, 983)})
	tr.Tap()(eventq.Time(6.0311), 14, netsim.Delivery{From: 0, Scope: 0, Pkt: &packet.Data{Payload: make([]byte, 983)}})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"+ 6.0000 n0 z0 DATA 1000", "r 6.0311 n14 from=n0 z0 DATA 1000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
}
