package stats_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sharqfec"
	"sharqfec/internal/packet"
	"sharqfec/internal/stats"
)

// chain3Trace runs the golden scenario: a 3-node chain, 16 packets,
// fixed seed, full packet trace.
func chain3Trace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	_, err := sharqfec.RunData(sharqfec.DataConfig{
		Protocol:    sharqfec.SHARQFEC,
		Topology:    sharqfec.ChainTopology(3, 0.1),
		Seed:        42,
		NumPackets:  16,
		Until:       12,
		TraceWriter: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTracerGoldenChain3 pins the trace format and the determinism of a
// seeded run against a committed golden file. Regenerate with
// UPDATE_GOLDEN=1 after an intentional format or protocol change.
func TestTracerGoldenChain3(t *testing.T) {
	got := chain3Trace(t)
	golden := filepath.Join("testdata", "chain3.trace")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to create)", err)
	}
	if !bytes.Equal(got, want) {
		gl := strings.Split(string(got), "\n")
		wl := strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("trace diverges from golden at line %d:\ngot:  %s\nwant: %s",
					i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("trace length changed: %d lines vs golden %d", len(gl), len(wl))
	}
	// Structural sanity independent of the exact bytes.
	for i, line := range strings.Split(strings.TrimSpace(string(got)), "\n") {
		if !strings.HasPrefix(line, "+ ") && !strings.HasPrefix(line, "r ") {
			t.Fatalf("line %d has unknown record type: %q", i+1, line)
		}
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("pipe closed") }

// TestTracerSurfacesWriteErrors: write failures must be visible through
// Err and Flush, and must stop further output instead of silently
// truncating the trace.
func TestTracerSurfacesWriteErrors(t *testing.T) {
	tr := stats.NewTracer(failingWriter{})
	if err := tr.Err(); err != nil {
		t.Fatalf("error before any write: %v", err)
	}
	// One line stays inside bufio; Flush hits the writer.
	tr.SendTap()(0, 0, 0, &packet.NACK{})
	if err := tr.Flush(); err == nil {
		t.Fatal("Flush swallowed the write error")
	}
	if tr.Err() == nil {
		t.Fatal("Err nil after failed flush")
	}
	if err := tr.Flush(); err == nil {
		t.Fatal("second Flush forgot the sticky error")
	}
}
