package stats

import (
	"bufio"
	"fmt"
	"io"

	"sharqfec/internal/eventq"
	"sharqfec/internal/netsim"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/topology"
)

// Tracer writes an ns-style packet-event trace: one line per
// transmission ("+") and per delivery ("r"), with time, node, scope and
// packet type/size. The format is stable for tooling:
//
//   - 6.0000 n0 z0 DATA 1000
//     r 6.0311 n14 from=n0 z0 DATA 1000
type Tracer struct {
	w *bufio.Writer
}

// NewTracer wraps w; call Flush when the simulation completes.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriter(w)}
}

// SendTap returns the transmission-side tap.
func (t *Tracer) SendTap() netsim.SendTap {
	return func(now eventq.Time, from topology.NodeID, zone scoping.ZoneID, pkt packet.Packet) {
		fmt.Fprintf(t.w, "+ %.4f n%d z%d %s %d\n",
			now.Seconds(), from, zone, pkt.Kind(), pkt.WireSize())
	}
}

// Tap returns the delivery-side tap.
func (t *Tracer) Tap() netsim.Tap {
	return func(now eventq.Time, at topology.NodeID, d netsim.Delivery) {
		fmt.Fprintf(t.w, "r %.4f n%d from=n%d z%d %s %d\n",
			now.Seconds(), at, d.From, d.Scope, d.Pkt.Kind(), d.Pkt.WireSize())
	}
}

// Flush drains buffered trace lines to the underlying writer.
func (t *Tracer) Flush() error { return t.w.Flush() }
