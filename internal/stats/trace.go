package stats

import (
	"bufio"
	"fmt"
	"io"

	"sharqfec/internal/eventq"
	"sharqfec/internal/netsim"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/topology"
)

// Tracer writes an ns-style packet-event trace: one line per
// transmission ("+") and per delivery ("r"), with time, node, scope and
// packet type/size. The format is stable for tooling:
//
//   - 6.0000 n0 z0 DATA 1000
//     r 6.0311 n14 from=n0 z0 DATA 1000
//
// Write errors are sticky: the first failure stops all further output
// and is reported by Err and Flush, so a full-disk or closed-pipe trace
// cannot silently truncate.
type Tracer struct {
	w   *bufio.Writer
	err error
}

// NewTracer wraps w; call Flush when the simulation completes and check
// its error.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriter(w)}
}

// setErr records the first error seen.
func (t *Tracer) setErr(err error) {
	if t.err == nil && err != nil {
		t.err = err
	}
}

// SendTap returns the transmission-side tap.
func (t *Tracer) SendTap() netsim.SendTap {
	return func(now eventq.Time, from topology.NodeID, zone scoping.ZoneID, pkt packet.Packet) {
		if t.err != nil {
			return
		}
		_, err := fmt.Fprintf(t.w, "+ %.4f n%d z%d %s %d\n",
			now.Seconds(), from, zone, pkt.Kind(), pkt.WireSize())
		t.setErr(err)
	}
}

// Tap returns the delivery-side tap.
func (t *Tracer) Tap() netsim.Tap {
	return func(now eventq.Time, at topology.NodeID, d netsim.Delivery) {
		if t.err != nil {
			return
		}
		_, err := fmt.Fprintf(t.w, "r %.4f n%d from=n%d z%d %s %d\n",
			now.Seconds(), at, d.From, d.Scope, d.Pkt.Kind(), d.Pkt.WireSize())
		t.setErr(err)
	}
}

// Err returns the first write error encountered by the taps, if any.
func (t *Tracer) Err() error { return t.err }

// Flush drains buffered trace lines to the underlying writer and
// returns the first error seen (tap write or flush).
func (t *Tracer) Flush() error {
	t.setErr(t.w.Flush())
	return t.err
}
