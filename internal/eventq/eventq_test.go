package eventq

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroQueueUsable(t *testing.T) {
	var q Queue
	if q.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", q.Now())
	}
	if q.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestDispatchOrder(t *testing.T) {
	var q Queue
	var got []int
	q.At(3, func(Time) { got = append(got, 3) })
	q.At(1, func(Time) { got = append(got, 1) })
	q.At(2, func(Time) { got = append(got, 2) })
	q.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
	if q.Now() != 3 {
		t.Fatalf("clock = %v, want 3", q.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		q.At(5, func(Time) { got = append(got, i) })
	}
	q.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: got[%d] = %d", i, v)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	var q Queue
	var at Time
	q.At(7.5, func(now Time) { at = now })
	q.Run()
	if at != 7.5 {
		t.Fatalf("handler saw now = %v, want 7.5", at)
	}
}

func TestAfterRelative(t *testing.T) {
	var q Queue
	var second Time
	q.At(2, func(now Time) {
		q.After(3, func(now2 Time) { second = now2 })
	})
	q.Run()
	if second != 5 {
		t.Fatalf("After(3) from t=2 fired at %v, want 5", second)
	}
}

func TestPastSchedulingClampsToNow(t *testing.T) {
	var q Queue
	var fired Time
	q.At(10, func(now Time) {
		q.At(1, func(now2 Time) { fired = now2 }) // in the past
	})
	q.Run()
	if fired != 10 {
		t.Fatalf("past event fired at %v, want clamped to 10", fired)
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	var q Queue
	var fired Time
	q.At(4, func(Time) {
		q.After(-1, func(now Time) { fired = now })
	})
	q.Run()
	if fired != 4 {
		t.Fatalf("negative After fired at %v, want 4", fired)
	}
}

func TestTimerStop(t *testing.T) {
	var q Queue
	fired := false
	tm := q.At(1, func(Time) { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	q.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if tm.Active() {
		t.Fatal("stopped timer still active")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	var q Queue
	tm := q.At(1, func(Time) {})
	q.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
	if tm.Active() {
		t.Fatal("fired timer reports active")
	}
}

func TestStopOneOfMany(t *testing.T) {
	var q Queue
	var got []int
	var timers []Timer
	for i := 0; i < 10; i++ {
		i := i
		timers = append(timers, q.At(Time(i), func(Time) { got = append(got, i) }))
	}
	timers[4].Stop()
	timers[7].Stop()
	q.Run()
	if len(got) != 8 {
		t.Fatalf("got %d events, want 8", len(got))
	}
	for _, v := range got {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestRunUntil(t *testing.T) {
	var q Queue
	var got []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		q.At(at, func(now Time) { got = append(got, now) })
	}
	q.RunUntil(3)
	if len(got) != 3 {
		t.Fatalf("RunUntil(3) dispatched %d events, want 3", len(got))
	}
	if q.Now() != 3 {
		t.Fatalf("clock = %v, want 3", q.Now())
	}
	if q.Len() != 2 {
		t.Fatalf("pending = %d, want 2", q.Len())
	}
	q.RunUntil(10)
	if q.Now() != 10 {
		t.Fatalf("clock = %v, want 10 after RunUntil past all events", q.Now())
	}
	if len(got) != 5 {
		t.Fatalf("total dispatched %d, want 5", len(got))
	}
}

func TestRunUntilAdvancesEmptyClock(t *testing.T) {
	var q Queue
	q.RunUntil(42)
	if q.Now() != 42 {
		t.Fatalf("clock = %v, want 42", q.Now())
	}
}

func TestDispatchedCounter(t *testing.T) {
	var q Queue
	for i := 0; i < 5; i++ {
		q.At(Time(i), func(Time) {})
	}
	q.At(9, func(Time) {}).Stop()
	q.Run()
	if q.Dispatched() != 5 {
		t.Fatalf("Dispatched = %d, want 5", q.Dispatched())
	}
}

func TestTimerWhen(t *testing.T) {
	var q Queue
	tm := q.At(6.25, func(Time) {})
	if tm.When() != 6.25 {
		t.Fatalf("When = %v, want 6.25", tm.When())
	}
}

func TestZeroTimerStopSafe(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Fatal("zero timer Stop returned true")
	}
	if tm.Active() {
		t.Fatal("zero timer Active returned true")
	}
}

// Property: regardless of insertion order, events dispatch in nondecreasing
// time order and the clock never goes backwards.
func TestPropertyMonotoneDispatch(t *testing.T) {
	f := func(times []float64) bool {
		var q Queue
		var got []Time
		for _, ft := range times {
			at := Time(ft)
			if at < 0 {
				at = -at
			}
			q.At(at, func(now Time) { got = append(got, now) })
		}
		q.Run()
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a random interleaving of schedules and cancels dispatches
// exactly the non-cancelled events.
func TestPropertyCancelConsistency(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		var q Queue
		fired := map[int]bool{}
		cancelled := map[int]bool{}
		var timers []Timer
		count := int(n%64) + 1
		for i := 0; i < count; i++ {
			i := i
			timers = append(timers, q.At(Time(rng.Float64()*100), func(Time) { fired[i] = true }))
		}
		for i, tm := range timers {
			if rng.IntN(3) == 0 {
				tm.Stop()
				cancelled[i] = true
			}
		}
		q.Run()
		for i := 0; i < count; i++ {
			if cancelled[i] == fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeHelpers(t *testing.T) {
	tt := Time(1.5)
	if tt.Add(2.5) != 4 {
		t.Fatalf("Add: got %v", tt.Add(2.5))
	}
	if Time(4).Sub(1.5) != 2.5 {
		t.Fatalf("Sub: got %v", Time(4).Sub(1.5))
	}
	if tt.Seconds() != 1.5 {
		t.Fatalf("Seconds: got %v", tt.Seconds())
	}
	if tt.String() != "1.500s" {
		t.Fatalf("String: got %q", tt.String())
	}
	if Duration(0.25).Std().Milliseconds() != 250 {
		t.Fatalf("Std: got %v", Duration(0.25).Std())
	}
}

// TestCancelRescheduleChurn hammers the queue with the fault engine's
// pattern — schedule, cancel, reschedule in bulk — and checks no heap
// entries or handler closures leak.
func TestCancelRescheduleChurn(t *testing.T) {
	var q Queue
	rng := rand.New(rand.NewPCG(1, 2))
	fired := 0
	live := map[Timer]bool{}
	for round := 0; round < 200; round++ {
		for i := 0; i < 50; i++ {
			tm := q.After(Duration(rng.Float64()), func(Time) { fired++ })
			live[tm] = true
		}
		// Cancel a random half; rescheduling replaces, never reuses.
		for tm := range live {
			if rng.IntN(2) == 0 {
				tm.Stop()
				delete(live, tm)
			}
		}
	}
	pending := q.Len()
	if pending != len(live) {
		t.Fatalf("queue holds %d entries, want %d live (stopped timers must leave the heap)", pending, len(live))
	}
	q.Run()
	if fired != len(live) {
		t.Fatalf("fired %d handlers, want %d (every live timer exactly once)", fired, len(live))
	}
	for tm := range live {
		if tm.Active() {
			t.Fatal("timer still active after Run")
		}
		if tm.Stop() {
			t.Fatal("Stop returned true after the timer already fired")
		}
	}
}

// TestCancelThenFireRace covers the order-sensitive cases around a
// timer's firing instant: stopping a timer from an earlier same-time
// event must prevent the handler, and stopping it from inside its own
// handler must be a no-op.
func TestCancelThenFireRace(t *testing.T) {
	var q Queue
	firedB := false
	// A and B share t=1; A is scheduled first so FIFO dispatches it
	// first, and A cancels B before the queue reaches it.
	var b Timer
	q.At(1, func(Time) { b.Stop() })
	b = q.At(1, func(Time) { firedB = true })
	var self Timer
	selfStop := true
	self = q.At(2, func(Time) { selfStop = self.Stop() })
	q.Run()
	if firedB {
		t.Fatal("handler ran after a same-instant earlier event stopped it")
	}
	if selfStop {
		t.Fatal("Stop from inside the firing handler reported true")
	}
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
}

// TestStaleHandleCannotTouchRecycledEvent pins the free-list safety
// contract: once an event fires (or is stopped) and its entry is
// recycled into a new scheduling, the old Timer handle must be inert —
// it must not report the new event as its own, and Stop through it must
// not cancel the new event.
func TestStaleHandleCannotTouchRecycledEvent(t *testing.T) {
	var q Queue
	old := q.At(1, func(Time) {})
	q.Run() // fires; the event struct returns to the free list
	fired := false
	fresh := q.At(2, func(Time) { fired = true })
	if fresh.ev != old.ev {
		t.Skip("free list did not recycle the entry; nothing to test")
	}
	if old.Active() {
		t.Fatal("stale handle reports the recycled event as active")
	}
	if old.Stop() {
		t.Fatal("stale handle stopped the recycled event")
	}
	q.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

// TestFreeListReuse verifies steady-state scheduling recycles event
// structs instead of allocating: schedule/fire cycles beyond the first
// must reuse the same entries.
func TestFreeListReuse(t *testing.T) {
	var q Queue
	a := q.At(1, func(Time) {})
	q.Run()
	b := q.At(2, func(Time) {})
	if a.ev != b.ev {
		t.Fatal("fired event was not recycled for the next scheduling")
	}
	if a.gen == b.gen {
		t.Fatal("recycled event kept its generation; stale handles would stay live")
	}
	q.Run()
}

// TestStopReleasesClosure verifies a stopped timer no longer pins its
// handler closure (the eventq leak-audit contract): the closure's
// captured state must be collectable while the Timer handle lives on.
func TestStopReleasesClosure(t *testing.T) {
	var q Queue
	big := make([]byte, 1<<20)
	tm := q.After(1, func(Time) { _ = big[0] })
	tm.Stop()
	// The event struct is still referenced by the handle; its fn must
	// be gone so `big` is unreachable through the queue or the handle.
	if tm.ev.fn != nil {
		t.Fatal("stopped timer still holds its handler closure")
	}
	fired := q.At(0.5, func(Time) {})
	q.Run()
	if fired.ev.fn != nil {
		t.Fatal("fired event still holds its handler closure")
	}
}
