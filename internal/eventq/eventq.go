// Package eventq implements the discrete-event core of the simulator:
// a virtual clock, a binary-heap event queue, and cancellable timers.
//
// All protocol and network behaviour in this repository is driven by a
// single Queue per simulation. Events scheduled for the same instant are
// dispatched in FIFO order (a strictly increasing sequence number breaks
// ties), which keeps simulations fully deterministic for a given seed.
package eventq

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in simulated time, measured in seconds since the start
// of the simulation. float64 seconds are what the paper's scenario is
// specified in (t=1 s join, t=6 s source on, 0.1 s measurement bins) and
// give sub-nanosecond resolution over the minutes-long runs used here.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration float64

// Seconds returns the time as a plain float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Add returns the time advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time with millisecond precision, e.g. "12.345s".
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// Std converts a simulated duration to a time.Duration for display.
func (d Duration) Std() time.Duration { return time.Duration(float64(d) * float64(time.Second)) }

// Seconds returns the duration as a plain float64 second count.
func (d Duration) Seconds() float64 { return float64(d) }

// Never is a sentinel time later than any event a simulation schedules.
const Never = Time(math.MaxFloat64)

// Handler is the callback invoked when an event fires. It runs on the
// simulation goroutine; it may schedule further events but must not block.
type Handler func(now Time)

// event is a single queue entry.
type event struct {
	at      Time
	seq     uint64 // FIFO tie-break for identical timestamps
	fn      Handler
	index   int // heap index, -1 once popped or cancelled
	stopped bool
}

// Timer is a handle to a scheduled event that can be stopped or queried.
type Timer struct {
	q  *Queue
	ev *event
}

// Stop cancels the timer. It reports whether the call prevented the
// handler from firing (false if it already fired or was already stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.stopped || t.ev.index < 0 {
		return false
	}
	t.ev.stopped = true
	heap.Remove(&t.q.h, t.ev.index)
	// Release the handler closure: protocol agents hold Timer handles
	// long after cancellation, and under heavy cancel/reschedule churn
	// (the fault engine's pattern) retained closures are the only thing
	// keeping dead per-packet state alive.
	t.ev.fn = nil
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && !t.ev.stopped && t.ev.index >= 0
}

// When returns the simulated time at which the timer will fire.
// It is meaningful only while Active.
func (t *Timer) When() Time { return t.ev.at }

// Queue is a discrete-event queue with a virtual clock.
// The zero value is ready to use.
type Queue struct {
	h         evHeap
	now       Time
	seq       uint64
	dispatchN uint64
}

// Now returns the current simulated time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Dispatched returns the number of events executed so far.
func (q *Queue) Dispatched() uint64 { return q.dispatchN }

// At schedules fn to run at absolute time at. Scheduling in the past
// (before Now) is clamped to Now: the event runs next, preserving order.
func (q *Queue) At(at Time, fn Handler) *Timer {
	if at < q.now {
		at = q.now
	}
	ev := &event{at: at, seq: q.seq, fn: fn}
	q.seq++
	heap.Push(&q.h, ev)
	return &Timer{q: q, ev: ev}
}

// After schedules fn to run d after the current simulated time.
// Negative d is treated as zero.
func (q *Queue) After(d Duration, fn Handler) *Timer {
	if d < 0 {
		d = 0
	}
	return q.At(q.now.Add(d), fn)
}

// Step dispatches the earliest pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (q *Queue) Step() bool {
	for len(q.h) > 0 {
		ev := heap.Pop(&q.h).(*event)
		if ev.stopped {
			continue
		}
		q.now = ev.at
		q.dispatchN++
		fn := ev.fn
		ev.fn = nil // outstanding Timer handles must not pin the closure
		fn(q.now)
		return true
	}
	return false
}

// Run dispatches events until the queue is empty.
func (q *Queue) Run() {
	for q.Step() {
	}
}

// RunUntil dispatches events with timestamps <= end, then advances the
// clock to end (if the clock has not already passed it). Events scheduled
// after end remain queued.
func (q *Queue) RunUntil(end Time) {
	for len(q.h) > 0 {
		ev := q.h[0]
		if ev.stopped {
			heap.Pop(&q.h)
			continue
		}
		if ev.at > end {
			break
		}
		q.Step()
	}
	if q.now < end {
		q.now = end
	}
}

// evHeap orders events by (time, seq).
type evHeap []*event

func (h evHeap) Len() int { return len(h) }
func (h evHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h evHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *evHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *evHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
