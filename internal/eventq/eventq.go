// Package eventq implements the discrete-event core of the simulator:
// a virtual clock, a specialized 4-ary-heap event queue, and cancellable
// timers.
//
// All protocol and network behaviour in this repository is driven by a
// single Queue per simulation. Events scheduled for the same instant are
// dispatched in FIFO order (a strictly increasing sequence number breaks
// ties), which keeps simulations fully deterministic for a given seed.
//
// The queue is a monomorphic 4-ary heap rather than container/heap: the
// interface-based heap boxes every operation behind dynamic dispatch and
// forces one *event allocation per scheduled event. Here sift-up/down are
// inlined and popped or cancelled events return to a free list, so
// steady-state scheduling allocates nothing. Timer handles carry a
// generation counter so a recycled event can never be stopped or queried
// through a stale handle. The (time, birth-key, seq) ordering is total,
// so the heap shape never affects dispatch order — determinism is
// untouched.
//
// For parallel runs, ShardGroup advances several queues concurrently
// under conservative lookahead, exchanging cross-shard events at barrier
// epochs; see shard.go.
package eventq

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in simulated time, measured in seconds since the start
// of the simulation. float64 seconds are what the paper's scenario is
// specified in (t=1 s join, t=6 s source on, 0.1 s measurement bins) and
// give sub-nanosecond resolution over the minutes-long runs used here.
type Time float64

// Duration is a span of simulated time in seconds.
type Duration float64

// Seconds returns the time as a plain float64 second count.
func (t Time) Seconds() float64 { return float64(t) }

// Add returns the time advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats the time with millisecond precision, e.g. "12.345s".
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// Std converts a simulated duration to a time.Duration for display.
func (d Duration) Std() time.Duration { return time.Duration(float64(d) * float64(time.Second)) }

// Seconds returns the duration as a plain float64 second count.
func (d Duration) Seconds() float64 { return float64(d) }

// Never is a sentinel time later than any event a simulation schedules.
const Never = Time(math.MaxFloat64)

// Handler is the callback invoked when an event fires. It runs on the
// simulation goroutine; it may schedule further events but must not block.
type Handler func(now Time)

// event is a single queue entry. Events are recycled through the queue's
// free list; gen distinguishes incarnations so stale Timer handles go
// inert instead of acting on the recycled entry.
//
// Besides the scheduled time, every event carries its birth key: the
// virtual time at which it was scheduled (bt) and the shard of the queue
// that scheduled it (bs). Within one queue bt is non-decreasing in seq
// and bs is constant, so the (at, bt, bs, seq) heap order below is
// exactly the classic (at, seq) FIFO order — sequential runs are
// untouched. Across queues the birth key is the piece of the total order
// that survives sharding: seq counters of different shards are not
// comparable, but (at, bt, bs) is, which is what makes the parallel
// shard runner's merge deterministic and shard-count-invariant.
type event struct {
	at    Time
	bt    Time   // birth time: Now() of the scheduling queue
	seq   uint64 // FIFO tie-break for identical (at, bt, bs)
	fn    Handler
	index int32  // heap index, -1 while on the free list
	gen   uint32 // incremented every time the event leaves the heap
	bs    int32  // birth shard: shard ID of the scheduling queue
}

// Timer is a handle to a scheduled event that can be stopped or queried.
// The zero Timer is inert: Stop and Active return false.
type Timer struct {
	q   *Queue
	ev  *event
	gen uint32
}

// Stop cancels the timer. It reports whether the call prevented the
// handler from firing (false if it already fired or was already stopped).
func (t Timer) Stop() bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.index < 0 {
		return false
	}
	t.q.remove(int(t.ev.index))
	// Recycling releases the handler closure: protocol agents hold Timer
	// handles long after cancellation, and under heavy cancel/reschedule
	// churn (the fault engine's pattern) retained closures are the only
	// thing keeping dead per-packet state alive.
	t.q.recycle(t.ev)
	return true
}

// Active reports whether the timer is still pending.
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && t.ev.index >= 0
}

// When returns the simulated time at which the timer will fire.
// It is meaningful only while Active.
func (t Timer) When() Time { return t.ev.at }

// Queue is a discrete-event queue with a virtual clock.
// The zero value is ready to use.
type Queue struct {
	h         []*event
	free      []*event
	now       Time
	seq       uint64
	dispatchN uint64
	// shard is the queue's shard ID, stamped on every scheduled event's
	// birth key. Standalone queues are shard 0.
	shard int32
	// hashOn arms the dispatch digest: a running FNV-1a over the
	// (at, bt, bs) key of every dispatched event. Per-shard digests are
	// the diagnostic the shard runner records so a determinism breach
	// can be localized to the first diverging shard.
	hashOn bool
	hash   uint64
}

// fnv1aOffset / fnv1aPrime are the standard 64-bit FNV-1a constants.
const (
	fnv1aOffset = 0xcbf29ce484222325
	fnv1aPrime  = 0x100000001b3
)

// EnableDispatchHash arms the running dispatch digest (it starts at the
// FNV-1a offset basis).
func (q *Queue) EnableDispatchHash() {
	q.hashOn = true
	q.hash = fnv1aOffset
}

// DispatchHash returns the running FNV-1a digest over the (at, bt, bs)
// keys of every event dispatched since EnableDispatchHash.
func (q *Queue) DispatchHash() uint64 { return q.hash }

// hashEvent folds one dispatched event's ordering key into the digest.
func (q *Queue) hashEvent(ev *event) {
	h := q.hash
	for _, w := range [3]uint64{uint64(math.Float64bits(float64(ev.at))),
		uint64(math.Float64bits(float64(ev.bt))), uint64(ev.bs)} {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= fnv1aPrime
		}
	}
	q.hash = h
}

// setShard assigns the queue's shard ID for event birth keys. The shard
// runner calls it once at construction, before any events exist.
func (q *Queue) setShard(id int32) { q.shard = id }

// Now returns the current simulated time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Dispatched returns the number of events executed so far.
func (q *Queue) Dispatched() uint64 { return q.dispatchN }

// FreeLen returns the number of event records parked on the free list,
// i.e. pooled capacity not currently scheduled. Together with Len it
// bounds the queue's resident event footprint for observability.
func (q *Queue) FreeLen() int { return len(q.free) }

// At schedules fn to run at absolute time at. Scheduling in the past
// (before Now) is clamped to Now: the event runs next, preserving order.
func (q *Queue) At(at Time, fn Handler) Timer {
	if at < q.now {
		at = q.now
	}
	return q.insert(at, q.now, q.shard, fn)
}

// insertCross schedules fn with an explicit birth key, preserving the
// (bt, bs) of the event's true origin. The shard runner uses it at
// barrier epochs to land cross-shard deliveries in the destination
// queue under the same total order a single queue would have used.
func (q *Queue) insertCross(at, bt Time, bs int32, fn Handler) Timer {
	if at < q.now {
		at = q.now
	}
	return q.insert(at, bt, bs, fn)
}

func (q *Queue) insert(at, bt Time, bs int32, fn Handler) Timer {
	var ev *event
	if n := len(q.free); n > 0 {
		ev = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = at
	ev.bt = bt
	ev.bs = bs
	ev.seq = q.seq
	ev.fn = fn
	q.seq++
	ev.index = int32(len(q.h))
	q.h = append(q.h, ev)
	q.siftUp(len(q.h) - 1)
	return Timer{q: q, ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current simulated time.
// Negative d is treated as zero.
func (q *Queue) After(d Duration, fn Handler) Timer {
	if d < 0 {
		d = 0
	}
	return q.At(q.now.Add(d), fn)
}

// Step dispatches the earliest pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (q *Queue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	ev := q.h[0]
	q.remove(0)
	q.now = ev.at
	q.dispatchN++
	if q.hashOn {
		q.hashEvent(ev)
	}
	fn := ev.fn
	// Recycle before dispatch: the handler may schedule new events and
	// reuse this entry immediately — recycle bumps gen first, so every
	// outstanding handle to the firing event is already inert.
	q.recycle(ev)
	fn(q.now)
	return true
}

// Run dispatches events until the queue is empty.
func (q *Queue) Run() {
	for q.Step() {
	}
}

// RunUntil dispatches events with timestamps <= end, then advances the
// clock to end (if the clock has not already passed it). Events scheduled
// after end remain queued.
func (q *Queue) RunUntil(end Time) {
	for len(q.h) > 0 && q.h[0].at <= end {
		q.Step()
	}
	if q.now < end {
		q.now = end
	}
}

// runBefore dispatches events with timestamps strictly before end, then
// advances the clock to end. The shard runner's epochs are half-open
// [T, T+L): an event exactly at an epoch boundary belongs to the next
// epoch, after cross-shard arrivals for that boundary have been merged
// (a cross event posted at time t lands at t+latency ≥ T+L, i.e. never
// earlier than the boundary — but possibly exactly on it).
func (q *Queue) runBefore(end Time) {
	for len(q.h) > 0 && q.h[0].at < end {
		q.Step()
	}
	if q.now < end {
		q.now = end
	}
}

// recycle invalidates outstanding Timer handles for ev, releases its
// handler closure, and returns it to the free list.
func (q *Queue) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	q.free = append(q.free, ev)
}

// less orders events by (time, birth time, birth shard, seq) — a total
// order, so dispatch order is independent of heap layout. For events
// scheduled by this queue itself, bt is non-decreasing in seq and bs is
// constant, so the order degenerates to the classic (time, seq) FIFO
// order; the extra keys only separate cross-shard arrivals, whose seq
// (assigned at merge time) would otherwise be meaningless.
func (q *Queue) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.bt != b.bt {
		return a.bt < b.bt
	}
	if a.bs != b.bs {
		return a.bs < b.bs
	}
	return a.seq < b.seq
}

// remove deletes the event at heap index i, restoring the heap property.
func (q *Queue) remove(i int) {
	h := q.h
	n := len(h) - 1
	ev := h[i]
	if i != n {
		h[i] = h[n]
		h[i].index = int32(i)
	}
	h[n] = nil
	q.h = h[:n]
	ev.index = -1
	if i < n {
		q.siftDown(i)
		q.siftUp(i)
	}
}

// siftUp moves the event at index i toward the root until its parent is
// not later.
func (q *Queue) siftUp(i int) {
	h := q.h
	ev := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !q.less(ev, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = int32(i)
		i = p
	}
	h[i] = ev
	ev.index = int32(i)
}

// siftDown moves the event at index i toward the leaves until no child
// precedes it. The 4-ary layout halves tree depth versus binary, and the
// wider node stays within one cache line of children pointers.
func (q *Queue) siftDown(i int) {
	h := q.h
	n := len(h)
	ev := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.less(h[c], h[best]) {
				best = c
			}
		}
		if !q.less(h[best], ev) {
			break
		}
		h[i] = h[best]
		h[i].index = int32(i)
		i = best
	}
	h[i] = ev
	ev.index = int32(i)
}
