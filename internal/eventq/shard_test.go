package eventq

import (
	"testing"

	"sharqfec/internal/parallel"
)

// shardSim is a synthetic token-passing workload whose behaviour is
// independent of the shard count by construction: per-token delays
// depend only on (node, hop), never on shard ownership, so any
// divergence between shard counts is the runner's fault.
type shardSim struct {
	g     *ShardGroup
	owner []int
	hash  []uint64
	n     int
	fires int
}

const simLookahead = 0.013

func newShardSim(nodes, shards int) *shardSim {
	s := &shardSim{
		g:     NewShardGroup(shards, simLookahead),
		owner: make([]int, nodes),
		hash:  make([]uint64, nodes),
		n:     nodes,
	}
	for i := range s.owner {
		s.owner[i] = i % shards
	}
	return s
}

// delay is ≥ lookahead for every hop, so cross-shard sends always
// respect the conservative window; it depends only on (node, hop).
func simDelay(node, hop int) Duration {
	return simLookahead + 1e-4 + Duration((node*1009+hop*9973)%8191)*1e-7
}

func (s *shardSim) send(from, to, hop int, at Time) {
	fn := func(now Time) { s.arrive(to, hop, now) }
	if s.owner[from] == s.owner[to] {
		s.g.Queue(s.owner[from]).At(at, fn)
	} else {
		s.g.Post(s.owner[from], s.owner[to], at, fn)
	}
}

func (s *shardSim) arrive(node, hop int, now Time) {
	h := s.hash[node]
	h = h*0x100000001b3 ^ uint64(node) ^ uint64(hop)<<16 ^ uint64(float64(now)*1e9)
	s.hash[node] = h
	s.fires++
	if hop >= 40 {
		return
	}
	if hop%7 == 3 {
		return // token dies
	}
	next := (node*7 + hop + 1) % s.n
	s.send(node, next, hop+1, now.Add(simDelay(node, hop)))
	if hop%5 == 0 {
		s.send(node, (node+hop+3)%s.n, hop+1, now.Add(simDelay(next, hop)))
	}
}

func (s *shardSim) digest() uint64 {
	d := uint64(0xcbf29ce484222325)
	for _, h := range s.hash {
		d = d*0x100000001b3 ^ h
	}
	return d
}

func (s *shardSim) run(t *testing.T) uint64 {
	t.Helper()
	// Inject one token per node via a sync task, the way the facade
	// joins agents: single-threaded at a barrier.
	s.g.Sync(0.5, func(now Time) {
		for i := 0; i < s.n; i++ {
			node := i
			s.g.Queue(s.owner[node]).At(now.Add(Duration(node)*1e-3), func(at Time) {
				s.arrive(node, 0, at)
			})
		}
	})
	s.g.Run(10)
	if s.fires == 0 {
		t.Fatal("simulation dispatched nothing")
	}
	return s.digest()
}

// TestShardCountInvariance is the runner's core contract: identical
// results at every shard count.
func TestShardCountInvariance(t *testing.T) {
	want := newShardSim(12, 1).run(t)
	for _, k := range []int{2, 3, 4, 7} {
		if got := newShardSim(12, k).run(t); got != want {
			t.Errorf("shards=%d digest %#x, want %#x (shards=1)", k, got, want)
		}
	}
}

// TestShardGroupParallelWorkers re-runs the invariance check with the
// worker budget forced wide and narrow; under -race this also proves
// the epoch barriers publish queue and outbox state correctly.
func TestShardGroupParallelWorkers(t *testing.T) {
	restore := parallel.SetLimit(3)
	wide := newShardSim(12, 4).run(t)
	restore()
	restore = parallel.SetLimit(0)
	narrow := newShardSim(12, 4).run(t)
	restore()
	if wide != narrow {
		t.Errorf("worker width changed results: wide %#x, narrow %#x", wide, narrow)
	}
}

// TestSyncRunsBeforeSameTimeEvents pins the barrier ordering contract:
// a sync task at time T runs before any shard event stamped T.
func TestSyncRunsBeforeSameTimeEvents(t *testing.T) {
	g := NewShardGroup(2, 0.5)
	var order []string
	g.Queue(0).At(2, func(Time) { order = append(order, "event") })
	g.Sync(2, func(Time) { order = append(order, "sync") })
	g.Run(3)
	if len(order) != 2 || order[0] != "sync" || order[1] != "event" {
		t.Fatalf("order = %v, want [sync event]", order)
	}
}

// TestSyncAtEndAndChaining covers tasks that re-register themselves
// (periodic snapshots) and a task landing exactly at the run horizon.
func TestSyncAtEndAndChaining(t *testing.T) {
	g := NewShardGroup(2, 0.25)
	var at []Time
	var tick func(now Time)
	tick = func(now Time) {
		at = append(at, now)
		g.Sync(now.Add(1), tick)
	}
	g.Sync(1, tick)
	g.Run(3)
	if len(at) != 3 || at[0] != 1 || at[1] != 2 || at[2] != 3 {
		t.Fatalf("sync times = %v, want [1 2 3]", at)
	}
}

// TestRunInclusiveAtHorizon pins RunUntil parity: events exactly at the
// horizon dispatch, later ones stay queued.
func TestRunInclusiveAtHorizon(t *testing.T) {
	g := NewShardGroup(2, 0.25)
	var fired []string
	g.Queue(1).At(5, func(Time) { fired = append(fired, "at-horizon") })
	g.Queue(1).At(5.0000001, func(Time) { fired = append(fired, "late") })
	g.Run(5)
	if len(fired) != 1 || fired[0] != "at-horizon" {
		t.Fatalf("fired = %v, want [at-horizon]", fired)
	}
	if g.Queue(1).Len() != 1 {
		t.Fatalf("late event should stay queued, Len=%d", g.Queue(1).Len())
	}
	for i := 0; i < g.NumShards(); i++ {
		if now := g.Queue(i).Now(); now != 5 {
			t.Fatalf("shard %d clock = %v, want 5", i, now)
		}
	}
}

// TestLookaheadViolationPanics: posting under the epoch boundary is a
// partitioning bug and must fail loudly, not corrupt causality.
func TestLookaheadViolationPanics(t *testing.T) {
	g := NewShardGroup(2, 0.5)
	g.Queue(0).At(1, func(now Time) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on lookahead violation")
			}
		}()
		g.Post(0, 1, now.Add(0.1), func(Time) {})
	})
	g.Run(2)
}

// TestCrossTieBreak verifies the (at, bt, bs) merge order directly:
// key-identical arrivals from different shards dispatch in shard order
// regardless of posting order.
func TestCrossTieBreak(t *testing.T) {
	g := NewShardGroup(3, 0.5)
	var order []int
	for _, src := range []int{2, 1} { // post in reverse shard order
		s := src
		g.Queue(s).At(1, func(now Time) {
			g.Post(s, 0, now.Add(0.5), func(Time) { order = append(order, s) })
		})
	}
	g.Run(2)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("dispatch order = %v, want [1 2]", order)
	}
}

// TestDispatchHashDiverges sanity-checks the per-shard diagnostic: two
// different workloads must (overwhelmingly) hash differently.
func TestDispatchHashDiverges(t *testing.T) {
	a := newShardSim(12, 2)
	a.run(t)
	b := newShardSim(13, 2)
	b.run(t)
	ha, hb := a.g.DispatchHashes(), b.g.DispatchHashes()
	same := true
	for i := range ha {
		if ha[i] != hb[i] {
			same = false
		}
	}
	if same {
		t.Error("dispatch hashes identical for different workloads")
	}
}
