package eventq

import (
	"fmt"
	"sort"
	"sync/atomic"

	"sharqfec/internal/parallel"
)

// ShardGroup advances several event queues — one per topology shard —
// in parallel under conservative lookahead, the classic Chandy/Misra
// discipline specialized to this simulator:
//
//   - Virtual time is cut into barrier epochs [T, T+L), where the
//     lookahead L is the minimum latency of any link joining two
//     different shards. Within an epoch every shard dispatches its own
//     events independently: no cross-shard influence can arrive before
//     T+L, because crossing a shard boundary costs at least L of
//     propagation delay.
//   - A shard that needs to affect another shard posts a cross event
//     (Post) into a per-sender outbox. At the epoch barrier all
//     outboxes are drained single-threaded into the destination
//     queues, merge-ordered by (arrival time, birth time, birth shard,
//     posting index) — the same total order a single queue would have
//     produced, minus per-queue sequence numbers, which do not survive
//     sharding. That makes the dispatch order — and therefore every
//     simulation result — independent of the shard count.
//   - Global work that must observe or mutate several shards at once
//     (joining all agents, starting the source, fault application,
//     census snapshots) registers as a Sync task: the group forces an
//     epoch boundary at exactly the task's time and runs it
//     single-threaded at the barrier, before any shard dispatches
//     events at that instant.
//
// Extra worker goroutines come from the process-wide parallel budget,
// so shard groups nested under ensemble pools degrade to sequential
// execution instead of oversubscribing; results never depend on how
// many workers the group actually wins.
type ShardGroup struct {
	qs        []*Queue
	lookahead Duration
	now       Time

	// end is the current epoch's boundary; Post asserts arrivals never
	// undercut it (a lookahead violation is a bug, not a data race).
	end       Time
	inclusive bool

	// outbox[src][dst] collects cross events posted by shard src for
	// shard dst during the running epoch. Each src slice is written
	// only by the goroutine executing shard src, so posting is
	// lock-free; the barrier drains them single-threaded.
	outbox  [][][]crossEvent
	postIdx []uint64
	scratch []crossEvent

	syncs []syncTask

	cursor atomic.Int64 // next shard index to advance this epoch
	posted uint64
}

// crossEvent is one scheduled hand-off between shards: fn runs at `at`
// on the destination queue, ordered by the full (at, bt, bs, idx) key.
type crossEvent struct {
	at, bt Time
	bs     int32
	idx    uint64
	fn     Handler
}

type syncTask struct {
	at Time
	fn func(now Time)
}

// NewShardGroup creates k queues (shards 0..k-1) advancing under the
// given lookahead, which must be positive: a zero-lookahead partition
// admits instantaneous cross-shard influence and cannot be run
// conservatively.
func NewShardGroup(k int, lookahead Duration) *ShardGroup {
	if k < 1 {
		panic("eventq: shard group needs at least one shard")
	}
	if lookahead <= 0 {
		panic("eventq: shard lookahead must be positive")
	}
	g := &ShardGroup{
		qs:        make([]*Queue, k),
		lookahead: lookahead,
		outbox:    make([][][]crossEvent, k),
		postIdx:   make([]uint64, k),
	}
	for i := range g.qs {
		q := &Queue{}
		q.setShard(int32(i))
		q.EnableDispatchHash()
		g.qs[i] = q
		g.outbox[i] = make([][]crossEvent, k)
	}
	return g
}

// NumShards returns the shard count.
func (g *ShardGroup) NumShards() int { return len(g.qs) }

// Queue returns shard i's event queue.
func (g *ShardGroup) Queue(i int) *Queue { return g.qs[i] }

// Lookahead returns the group's epoch width.
func (g *ShardGroup) Lookahead() Duration { return g.lookahead }

// Now returns the group's barrier time (every queue's clock is at or
// past it).
func (g *ShardGroup) Now() Time { return g.now }

// Posted returns the total number of cross-shard events exchanged so
// far — the runner's coupling diagnostic.
func (g *ShardGroup) Posted() uint64 { return g.posted }

// DispatchHashes returns each shard's running dispatch digest (FNV-1a
// over dispatched (at, bt, bs) keys). When two runs that should agree
// do not, the first differing shard digest localizes the divergence.
func (g *ShardGroup) DispatchHashes() []uint64 {
	out := make([]uint64, len(g.qs))
	for i, q := range g.qs {
		out[i] = q.DispatchHash()
	}
	return out
}

// Post schedules fn to run at time `at` on shard dst. It must be called
// only from the goroutine currently executing shard src's epoch, with
// dst != src, and the arrival must respect the lookahead contract
// (at ≥ the current epoch boundary); violations panic, because they
// mean the caller's partition or lookahead computation is wrong.
func (g *ShardGroup) Post(src, dst int, at Time, fn Handler) {
	if src == dst {
		panic("eventq: Post to own shard — schedule directly instead")
	}
	if at < g.end {
		panic(fmt.Sprintf("eventq: lookahead violation: cross event at %v before epoch end %v", at, g.end))
	}
	q := g.qs[src]
	g.outbox[src][dst] = append(g.outbox[src][dst], crossEvent{
		at: at, bt: q.Now(), bs: int32(src), idx: g.postIdx[src], fn: fn,
	})
	g.postIdx[src]++
}

// Sync registers fn to run single-threaded at the barrier the group
// forces at exactly time at (tasks in the past run at the next
// barrier). Tasks at equal times run in registration order. Sync is not
// goroutine-safe: call it before Run or from inside another sync task,
// never from shard event handlers.
func (g *ShardGroup) Sync(at Time, fn func(now Time)) {
	i := sort.Search(len(g.syncs), func(i int) bool { return g.syncs[i].at > at })
	g.syncs = append(g.syncs, syncTask{})
	copy(g.syncs[i+1:], g.syncs[i:])
	g.syncs[i] = syncTask{at: at, fn: fn}
}

// Run advances every shard to time until, honoring the legacy RunUntil
// contract: events stamped exactly `until` are dispatched, later ones
// stay queued, and each queue's clock ends at until.
func (g *ShardGroup) Run(until Time) {
	workers := g.startWorkers()
	defer g.stopWorkers(workers)

	for {
		// Run due sync tasks at the barrier, in (time, registration)
		// order. They may register follow-ups (periodic snapshots).
		for len(g.syncs) > 0 && g.syncs[0].at <= g.now {
			t := g.syncs[0]
			g.syncs = g.syncs[1:]
			t.fn(g.now)
		}
		if g.now >= until {
			break
		}
		end := until
		if len(g.qs) > 1 && g.now.Add(g.lookahead) < end {
			end = g.now.Add(g.lookahead)
		}
		if len(g.syncs) > 0 && g.syncs[0].at < end {
			end = g.syncs[0].at // force a boundary exactly at the task
		}
		g.runEpoch(workers, end, false)
		g.mergeCross()
		g.now = end
	}
	// Final inclusive pass: dispatch events stamped exactly `until`.
	// Their cross posts arrive at ≥ until+L > until and stay queued.
	g.runEpoch(workers, until, true)
	g.mergeCross()
}

// runEpoch dispatches every shard up to end (exclusive, or inclusive
// for the final pass), spreading shards across the group's workers.
func (g *ShardGroup) runEpoch(workers []chan struct{}, end Time, inclusive bool) {
	g.end = end
	g.inclusive = inclusive
	if len(workers) == 0 {
		for _, q := range g.qs {
			g.advance(q, end, inclusive)
		}
		return
	}
	g.cursor.Store(0)
	for _, w := range workers {
		w <- struct{}{}
	}
	g.drain()
	for _, w := range workers {
		<-w
	}
}

func (g *ShardGroup) drain() {
	for {
		i := int(g.cursor.Add(1)) - 1
		if i >= len(g.qs) {
			return
		}
		g.advance(g.qs[i], g.end, g.inclusive)
	}
}

func (g *ShardGroup) advance(q *Queue, end Time, inclusive bool) {
	if inclusive {
		q.RunUntil(end)
	} else {
		q.runBefore(end)
	}
}

// mergeCross drains every outbox into the destination queues in the
// deterministic merge order (arrival, birth time, birth shard, posting
// index). Insertion order fixes the destination queue's seq tie-break,
// so even key-identical cross events dispatch in merge order.
func (g *ShardGroup) mergeCross() {
	for dst := range g.qs {
		buf := g.scratch[:0]
		for src := range g.qs {
			out := g.outbox[src][dst]
			if len(out) == 0 {
				continue
			}
			buf = append(buf, out...)
			g.outbox[src][dst] = out[:0]
		}
		if len(buf) == 0 {
			continue
		}
		sort.Slice(buf, func(i, j int) bool {
			a, b := &buf[i], &buf[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.bt != b.bt {
				return a.bt < b.bt
			}
			if a.bs != b.bs {
				return a.bs < b.bs
			}
			return a.idx < b.idx
		})
		q := g.qs[dst]
		for i := range buf {
			q.insertCross(buf[i].at, buf[i].bt, buf[i].bs, buf[i].fn)
			buf[i].fn = nil
		}
		g.posted += uint64(len(buf))
		g.scratch = buf[:0]
	}
}

// startWorkers claims extra workers from the process-wide budget (at
// most shards-1; the Run caller is always one worker) and parks them on
// epoch barrier channels.
func (g *ShardGroup) startWorkers() []chan struct{} {
	var workers []chan struct{}
	for len(workers) < len(g.qs)-1 && parallel.TryAcquire() {
		w := make(chan struct{})
		workers = append(workers, w)
		go func() {
			defer parallel.Release()
			for range w {
				g.drain()
				w <- struct{}{}
			}
		}()
	}
	return workers
}

func (g *ShardGroup) stopWorkers(workers []chan struct{}) {
	for _, w := range workers {
		close(w)
	}
}
