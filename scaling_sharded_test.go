package sharqfec

// Sharded scaling-sweep gates: the national census runs are lossless,
// so the zone-sharded engine must reproduce the sequential sweep's
// measurements exactly — not just statistically — and the flat cutoff
// must swap the O(N²) flat run for the analytic model without
// disturbing the scoped measurement.

import (
	"reflect"
	"strings"
	"testing"
)

// TestScalingSweepShardedMatchesSequential runs the smallest sweep on
// both engines and requires identical points. Any divergence means the
// parallel engine reordered or dropped session traffic.
func TestScalingSweepShardedMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("two full census sweeps")
	}
	base := ScalingSweepConfig{
		Subscribers: []int{2},
		Seed:        11,
		Seconds:     5,
	}
	seq, err := RunScalingSweep(base)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	sharded.Shards = 2
	par, err := RunScalingSweep(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Points, par.Points) {
		t.Errorf("sharded sweep diverged from sequential:\n seq %+v\n par %+v",
			seq.Points, par.Points)
	}
}

// TestDesignatedCensusShardInvariance covers the E21 configuration:
// with ZCRs pre-designated (deployment model, DesignateZCRs) the census
// must still measure identically at every shard count and on the
// sequential engine, and — since designation removes the bootstrap
// challenge storm but nothing else — it must observe strictly less
// control traffic than the elected run while converging to the same
// steady-state session tables.
func TestDesignatedCensusShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("several census runs")
	}
	top := NationalTopology(3, 3, 3, 2)
	measure := func(shards int, designate bool) scalingMeasure {
		t.Helper()
		var m scalingMeasure
		var err error
		if shards == 0 {
			m, err = runSessionCensus(top.spec, top.spec.Zones, 7, 5, designate)
		} else {
			m, err = runSessionCensusSharded(top.spec, top.spec.Zones, top.spec.Zones, 7, 5, shards, designate)
		}
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ref := measure(0, true)
	if ref.peakState <= 0 || ref.ctrlLink <= 0 {
		t.Fatalf("designated census measured nothing: %+v", ref)
	}
	for _, k := range []int{1, 2, 4} {
		if got := measure(k, true); got != ref {
			t.Errorf("shards=%d designated census %+v, want sequential %+v", k, got, ref)
		}
	}
	full := measure(0, false)
	if full.ctrlLink <= ref.ctrlLink {
		t.Errorf("designation should remove bootstrap challenge traffic: designated %d >= elected %d",
			ref.ctrlLink, full.ctrlLink)
	}
	if ref.peakState <= 0 || full.peakState <= 0 {
		t.Error("both runs should build session state")
	}
}

// TestScalingSweepFlatCutoff pins the analytic-flat fallback: above
// the cutoff the flat side must come from the model, flagged in both
// the point and the rendering, while the scoped side stays measured.
func TestScalingSweepFlatCutoff(t *testing.T) {
	rep, err := RunScalingSweep(ScalingSweepConfig{
		Subscribers: []int{2},
		Seed:        11,
		Seconds:     5,
		FlatCutoff:  1, // everything is above the cutoff
	})
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Points[0]
	if !p.FlatAnalytic {
		t.Fatal("point above the flat cutoff not flagged FlatAnalytic")
	}
	if p.FlatStateMeasured != 0 || p.FlatMsgs != 0 {
		t.Errorf("flat side claims measurements above the cutoff: state %d msgs %d",
			p.FlatStateMeasured, p.FlatMsgs)
	}
	if p.ScopedStateMeasured <= 0 {
		t.Error("scoped side should still be measured")
	}
	if p.FlatStateAnalytic != p.Receivers {
		t.Errorf("analytic flat state %d, want all-pairs %d", p.FlatStateAnalytic, p.Receivers)
	}
	if p.StateRatioMeasured <= 0 {
		t.Error("hybrid state ratio not computed")
	}
	if !strings.Contains(rep.String(), "flat analytic") {
		t.Error("rendering does not flag the analytic flat column")
	}
}
