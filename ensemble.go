package sharqfec

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"sharqfec/internal/parallel"
)

// runtimeGOMAXPROCS is the default worker-pool width cap for the
// parallel multi-run drivers (RunEnsemble, RunTimerSweep).
func runtimeGOMAXPROCS() int { return runtime.GOMAXPROCS(0) }

// runIndexed runs fn(0..n-1) across a worker pool. The caller's
// goroutine is always one worker; every extra worker needs both room
// under sweepParallelism() and a token from the process-wide
// parallel budget shared with the shard runner. That sharing is what
// stops an ensemble of sharded runs from oversubscribing the machine:
// whichever pool starts second finds the budget spent and runs
// narrower, in the limit sequentially — with identical results, since
// work items never depend on pool width.
func runIndexed(n int, fn func(i int)) {
	workers := sweepParallelism()
	if workers > n {
		workers = n
	}
	extra := 0
	for extra < workers-1 && parallel.TryAcquire() {
		extra++
	}
	if extra == 0 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(extra)
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	for w := 0; w < extra; w++ {
		go func() {
			defer wg.Done()
			defer parallel.Release()
			work()
		}()
	}
	work() // the caller is the implicit worker
	wg.Wait()
}

// EnsembleResult aggregates a data experiment over several seeds. The
// paper chose a long run so "any dependency upon ns's internal random
// number generator would be minimized"; the ensemble achieves the same
// by averaging independent replicas (run in parallel — each simulation
// is single-threaded and deterministic, so replicas scale across cores).
type EnsembleResult struct {
	Protocol Protocol
	Seeds    []uint64

	// Mean/Std of the headline per-receiver totals across seeds.
	MeanPktsPerReceiver, StdPktsPerReceiver   float64
	MeanNACKsPerReceiver, StdNACKsPerReceiver float64
	MeanCompletion                            float64

	// MeanSeries is the per-bin mean of the data+repair series.
	MeanSeries Series

	// Runs holds the individual results, seed-ordered.
	Runs []*DataResult
}

// RunEnsemble runs cfg once per seed (in parallel, bounded by GOMAXPROCS)
// and aggregates. cfg.Seed is ignored; seeds supplies the replicas.
func RunEnsemble(cfg DataConfig, seeds []uint64) (*EnsembleResult, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("sharqfec: ensemble needs at least one seed")
	}
	results := make([]*DataResult, len(seeds))
	errs := make([]error, len(seeds))

	// Bounded worker pool: goroutine count is the pool width, not the
	// seed count, so huge ensembles don't pay len(seeds) idle stacks.
	runIndexed(len(seeds), func(i int) {
		c := cfg
		c.Seed = seeds[i]
		results[i], errs[i] = RunData(c)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &EnsembleResult{
		Protocol: cfg.Protocol,
		Seeds:    append([]uint64(nil), seeds...),
		Runs:     results,
	}
	var pkts, nacks, compl []float64
	maxBins := 0
	for _, r := range results {
		pkts = append(pkts, r.AvgDataRepair.Sum())
		nacks = append(nacks, r.AvgNACKs.Sum())
		compl = append(compl, r.CompletionRate)
		if len(r.AvgDataRepair.Bins) > maxBins {
			maxBins = len(r.AvgDataRepair.Bins)
		}
	}
	res.MeanPktsPerReceiver, res.StdPktsPerReceiver = meanStd(pkts)
	res.MeanNACKsPerReceiver, res.StdNACKsPerReceiver = meanStd(nacks)
	res.MeanCompletion, _ = meanStd(compl)

	first := results[0].AvgDataRepair
	res.MeanSeries = Series{Start: first.Start, BinWidth: first.BinWidth, Bins: make([]float64, maxBins)}
	for _, r := range results {
		for i, v := range r.AvgDataRepair.Bins {
			res.MeanSeries.Bins[i] += v
		}
	}
	for i := range res.MeanSeries.Bins {
		res.MeanSeries.Bins[i] /= float64(len(results))
	}
	return res, nil
}

// Seeds returns n deterministic seeds derived from base, for ensembles.
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)*1_000_003
	}
	return out
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
