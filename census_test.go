package sharqfec

import (
	"testing"

	"sharqfec/internal/telemetry/census"
)

// TestCensusPassiveOnProtocol: arming the cost census must not perturb
// the protocol execution — same seed, same results, census on or off.
// This is the root-level guard behind keeping the five fixed-seed
// digests census-free.
func TestCensusPassiveOnProtocol(t *testing.T) {
	run := func(on bool) *DataResult {
		res, err := RunData(DataConfig{
			Protocol:   SHARQFEC,
			Seed:       5,
			NumPackets: 256,
			Until:      30,
			Faults:     BurstLossPlan(8),
			Telemetry:  &TelemetryConfig{Census: on, MetricsInterval: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(false)
	with := run(true)
	if base.CompletionRate != with.CompletionRate ||
		base.NACKsSent != with.NACKsSent ||
		base.RepairsSent != with.RepairsSent ||
		base.RepairsInjected != with.RepairsInjected ||
		base.Telemetry.SuppressionRatio != with.Telemetry.SuppressionRatio {
		t.Fatalf("census perturbed the protocol:\nwithout: %+v\nwith:    %+v", base, with)
	}
	if base.Telemetry.CensusSummary() != nil {
		t.Fatal("census summary present with census off")
	}
	if with.Telemetry.CensusSummary() == nil {
		t.Fatal("census summary missing with census on")
	}
}

// TestCensusSummaryConsistency cross-checks the census matrices against
// the protocol's own counters on a lossy run.
func TestCensusSummaryConsistency(t *testing.T) {
	res, err := RunData(DataConfig{
		Protocol:   SHARQFEC,
		Seed:       7,
		NumPackets: 256,
		Until:      30,
		Faults:     BurstLossPlan(8),
		Telemetry:  &TelemetryConfig{Census: true, MetricsInterval: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Telemetry.CensusSummary()
	if s == nil {
		t.Fatal("no census summary")
	}
	// Preemptive share accounting agrees with the protocol counter.
	if s.FECShares != int64(res.RepairsInjected) {
		t.Fatalf("census FEC shares %d != protocol repairs injected %d", s.FECShares, res.RepairsInjected)
	}
	// Data dominates a mostly-healthy multicast run; everything the
	// paper scenario exercises should have crossed at least one link.
	for _, cl := range []census.Class{census.ClassData, census.ClassNACK, census.ClassRepair, census.ClassControl} {
		if s.LinkPkts[cl] == 0 {
			t.Errorf("no %v traffic observed on any link", cl)
		}
	}
	if res.RepairsInjected > 0 && s.LinkPkts[census.ClassFEC] == 0 {
		t.Error("preemptive shares injected but no fec-class link crossings")
	}
	for cl := census.Class(0); cl < census.NumClasses; cl++ {
		if s.BoundaryPkts[cl] > s.LinkPkts[cl] {
			t.Errorf("%v: boundary crossings %d exceed link crossings %d", cl, s.BoundaryPkts[cl], s.LinkPkts[cl])
		}
	}
	if s.Epochs == 0 {
		t.Error("no census epochs recorded despite MetricsInterval")
	}
	if s.Queue.Dispatched == 0 {
		t.Error("scheduler gauges never sampled")
	}
	if rows := res.Telemetry.CensusEpochs(); len(rows) != s.Epochs {
		t.Errorf("CensusEpochs has %d rows, summary says %d", len(rows), s.Epochs)
	}
}

// TestScalingSweepSmall runs the measured Figure-8 sweep at its
// smallest useful size and sanity-checks the shape of every claim the
// report makes.
func TestScalingSweepSmall(t *testing.T) {
	rep, err := RunScalingSweep(ScalingSweepConfig{
		Subscribers: []int{2},
		Seed:        11,
		Seconds:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 {
		t.Fatalf("sweep returned %d points, want 1", len(rep.Points))
	}
	p := rep.Points[0]
	// National 2x2x2 with 2 subscribers/suburb: 2 region + 4 city
	// receivers + 16 subscribers = 22.
	if p.Receivers != 22 {
		t.Fatalf("receiver count %d, want 22", p.Receivers)
	}
	if p.ScopedStateMeasured <= 0 || p.FlatStateMeasured <= 0 {
		t.Fatalf("state not measured: scoped %d flat %d", p.ScopedStateMeasured, p.FlatStateMeasured)
	}
	// The whole point of scoping: flat sessions maintain strictly more
	// per-node state, and more of their control traffic escapes the
	// region boundaries.
	if p.StateRatioMeasured <= 1 {
		t.Fatalf("measured state ratio %.2f, want > 1 (flat should cost more)", p.StateRatioMeasured)
	}
	if p.FlatEscapeFrac <= p.ScopedEscapeFrac {
		t.Fatalf("escape fractions: flat %.3f <= scoped %.3f; scoping should localize",
			p.FlatEscapeFrac, p.ScopedEscapeFrac)
	}
	if p.StateDrift < 0 {
		t.Fatalf("negative drift %v", p.StateDrift)
	}
	if rep.String() == "" {
		t.Fatal("empty report rendering")
	}
}
