package sharqfec

import (
	"fmt"
	"sort"

	"sharqfec/internal/eventq"
	"sharqfec/internal/netsim"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/session"
	"sharqfec/internal/simrand"
	"sharqfec/internal/topology"
)

// RTTConfig parameterizes a §6.1 indirect-RTT-estimation experiment
// (Figures 11–13): after the session stabilizes, Sender multicasts
// Probes fake NACKs at ProbeInterval to the largest scope; every other
// receiver estimates the RTT to the sender and the ratio to ground truth
// is recorded.
type RTTConfig struct {
	// Topology defaults to Figure10Topology().
	Topology *Topology
	// Sender defaults to receiver 3 (the paper probes 3, 25 and 36).
	Sender int
	Seed   uint64
	// StabilizeUntil is when probing starts (default 12 s — elections
	// plus a few measurement rounds).
	StabilizeUntil float64
	// Probes and ProbeInterval default to 10 probes, 2 s apart.
	Probes        int
	ProbeInterval float64
}

func (c *RTTConfig) applyDefaults() {
	if c.Topology == nil {
		c.Topology = Figure10Topology()
	}
	if c.Sender == 0 {
		c.Sender = 3
	}
	if c.StabilizeUntil == 0 {
		c.StabilizeUntil = 12
	}
	if c.Probes == 0 {
		c.Probes = 10
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2
	}
}

// RTTResult holds the estimated/actual RTT ratios.
type RTTResult struct {
	Sender int
	// Ratios[p] lists, for probe p, the est/actual ratio at every
	// receiver that could form an estimate.
	Ratios [][]float64
	// Able[p] is how many receivers could estimate at probe p.
	Able []int
	// Receivers is the number of potential estimators.
	Receivers int
}

// FinalFractionWithin returns the fraction of last-probe estimates whose
// ratio is within tol of 1 (the paper reports >50 % "within a few
// percent").
func (r *RTTResult) FinalFractionWithin(tol float64) float64 {
	if len(r.Ratios) == 0 {
		return 0
	}
	last := r.Ratios[len(r.Ratios)-1]
	if len(last) == 0 {
		return 0
	}
	n := 0
	for _, v := range last {
		if v > 1-tol && v < 1+tol {
			n++
		}
	}
	return float64(n) / float64(len(last))
}

// MedianRatio returns the median est/actual ratio of probe p.
func (r *RTTResult) MedianRatio(p int) float64 {
	if p < 0 || p >= len(r.Ratios) || len(r.Ratios[p]) == 0 {
		return 0
	}
	v := append([]float64(nil), r.Ratios[p]...)
	sort.Float64s(v)
	return v[len(v)/2]
}

// rttProbeAgent wraps a session manager and measures estimate ratios for
// probe NACKs from the configured sender.
type rttProbeAgent struct {
	m      *session.Manager
	node   topology.NodeID
	sender topology.NodeID
	net    *netsim.Network
	sink   func(node topology.NodeID, ratio float64, ok bool)
}

func (a *rttProbeAgent) Receive(now eventq.Time, d netsim.Delivery) {
	if n, ok := d.Pkt.(*packet.NACK); ok && n.Origin == a.sender && a.node != a.sender {
		est, formed := a.m.EstimateRTT(n.Origin, n.Ancestors)
		truth := 2 * a.net.OneWayDelay(a.sender, a.node).Seconds()
		if formed && truth > 0 {
			a.sink(a.node, est/truth, true)
		} else {
			a.sink(a.node, 0, false)
		}
		return
	}
	a.m.Receive(now, d.Pkt)
}

// RunRTT runs the indirect RTT estimation experiment.
func RunRTT(cfg RTTConfig) (*RTTResult, error) {
	cfg.applyDefaults()
	spec := cfg.Topology.spec
	sender := topology.NodeID(cfg.Sender)
	h, err := scoping.Build(spec.Zones)
	if err != nil {
		return nil, err
	}
	found := false
	for _, m := range spec.Members() {
		if m == sender {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("sharqfec: probe sender %d is not a session member", cfg.Sender)
	}

	var q eventq.Queue
	src := simrand.New(cfg.Seed)
	net := netsim.New(&q, spec.Graph, h, src)

	res := &RTTResult{Sender: cfg.Sender, Receivers: len(spec.Members()) - 1}
	probe := -1
	sink := func(_ topology.NodeID, ratio float64, ok bool) {
		if probe < 0 {
			return
		}
		if ok {
			res.Ratios[probe] = append(res.Ratios[probe], ratio)
			res.Able[probe]++
		}
	}

	mgrs := make(map[topology.NodeID]*session.Manager)
	for _, m := range spec.Members() {
		mgr := session.New(m, net, session.DefaultConfig(), src.StreamN("session", int(m)))
		mgrs[m] = mgr
		net.Attach(m, &rttProbeAgent{m: mgr, node: m, sender: sender, net: net, sink: sink})
	}

	q.At(1, func(eventq.Time) {
		for _, m := range spec.Members() {
			mgrs[m].Start(m == spec.Source)
		}
	})
	for p := 0; p < cfg.Probes; p++ {
		p := p
		at := cfg.StabilizeUntil + float64(p)*cfg.ProbeInterval
		res.Ratios = append(res.Ratios, nil)
		res.Able = append(res.Able, 0)
		q.At(secondsToTime(at), func(now eventq.Time) {
			probe = p
			root := h.Root()
			net.Multicast(sender, root, &packet.NACK{
				Origin:    sender,
				Group:     uint32(1000 + p),
				Zone:      int16(root),
				Ancestors: mgrs[sender].AncestorList(),
			})
		})
	}
	q.RunUntil(secondsToTime(cfg.StabilizeUntil + float64(cfg.Probes)*cfg.ProbeInterval + 2))
	return res, nil
}
