module sharqfec

go 1.24
