package sharqfec

import (
	"fmt"

	"sharqfec/internal/core"
	"sharqfec/internal/eventq"
	"sharqfec/internal/netsim"
	"sharqfec/internal/packet"
	"sharqfec/internal/scoping"
	"sharqfec/internal/simrand"
	"sharqfec/internal/topology"
)

// FailoverResult reports a ZCR-failure experiment (§3.2/§5.2 robustness:
// peer recovery and re-election absorb the loss of a zone's
// representative).
type FailoverResult struct {
	// FailedNode is the ZCR that was killed, and Zone its zone.
	FailedNode, Zone int
	// NewZCR is the survivor elected in its place (as seen unanimously
	// by the zone's surviving members; -1 if they disagree).
	NewZCR int
	// SurvivorCompletion is the fraction of groups completed by every
	// member other than the failed node.
	SurvivorCompletion float64
	// ZoneCompletion is the same restricted to the failed ZCR's zone.
	ZoneCompletion float64
}

// RunZCRFailover runs the full protocol on the Figure-10 topology,
// kills the ZCR of the first leaf zone mid-stream, and verifies the
// session heals: survivors elect a replacement and still recover the
// stream.
func RunZCRFailover(seed uint64) (*FailoverResult, error) {
	spec := topology.Figure10(topology.Figure10Params{})
	h, err := scoping.Build(spec.Zones)
	if err != nil {
		return nil, err
	}
	var q eventq.Queue
	src := simrand.New(seed)
	net := netsim.New(&q, spec.Graph, h, src)

	pcfg := core.DefaultConfig()
	pcfg.NumPackets = 512

	failed := topology.NodeID(8) // first tree child: leaf-zone ZCR
	zone := h.LeafZone(failed)

	agents := make(map[topology.NodeID]*core.Agent)
	completed := make(map[topology.NodeID]int)
	for _, m := range spec.Members() {
		ag, err := core.New(m, net, pcfg, src)
		if err != nil {
			return nil, err
		}
		node := m
		ag.OnComplete = func(eventq.Time, uint32, [][]byte) { completed[node]++ }
		agents[m] = ag
	}
	q.At(1, func(eventq.Time) {
		for _, ag := range agents {
			ag.Join()
		}
	})
	q.At(6, func(eventq.Time) { agents[spec.Source].StartSource() })
	q.At(9, func(eventq.Time) { agents[failed].Stop() }) // mid-stream
	q.RunUntil(90)

	res := &FailoverResult{FailedNode: int(failed), Zone: int(zone)}
	groups := pcfg.NumGroups()
	survivors, zoneMembers := 0, 0
	survDone, zoneDone := 0, 0
	newZCR := topology.NodeID(-2)
	for _, m := range spec.Receivers {
		if m == failed {
			continue
		}
		survivors++
		survDone += completed[m]
		if h.Contains(zone, m) {
			zoneMembers++
			zoneDone += completed[m]
			got := agents[m].Session().ZCR(zone)
			if newZCR == -2 {
				newZCR = got
			} else if got != newZCR {
				newZCR = -1
			}
		}
	}
	res.NewZCR = int(newZCR)
	res.SurvivorCompletion = float64(survDone) / float64(survivors*groups)
	res.ZoneCompletion = float64(zoneDone) / float64(zoneMembers*groups)
	return res, nil
}

// LateJoinResult reports a late-join experiment: the recovery of a
// receiver that subscribes mid-stream (the extension §7 defers to the
// author's thesis: the hierarchy localizes late-join repair traffic).
type LateJoinResult struct {
	Joiner int
	JoinAt float64
	// Completion is the fraction of all groups (including those sent
	// before the join) the joiner eventually reconstructed.
	Completion float64
	// LocalRepairFrac is the fraction of repair packets the joiner
	// received that were scoped to its own leaf or intermediate zone
	// rather than globally.
	LocalRepairFrac float64
	// CatchUpSeconds is how long after joining the last missed group
	// completed.
	CatchUpSeconds float64
}

// RunLateJoin runs the full protocol on Figure-10 with one receiver
// joining at joinAt seconds (0 → default 9.6, after the stream ends).
func RunLateJoin(seed uint64, joinAt float64) (*LateJoinResult, error) {
	if joinAt == 0 {
		joinAt = 9.6
	}
	spec := topology.Figure10(topology.Figure10Params{})
	h, err := scoping.Build(spec.Zones)
	if err != nil {
		return nil, err
	}
	var q eventq.Queue
	src := simrand.New(seed)
	net := netsim.New(&q, spec.Graph, h, src)

	pcfg := core.DefaultConfig()
	pcfg.NumPackets = 256

	late := topology.NodeID(12)
	agents := make(map[topology.NodeID]*core.Agent)
	var lastDone eventq.Time
	completed := 0
	for _, m := range spec.Members() {
		ag, err := core.New(m, net, pcfg, src)
		if err != nil {
			return nil, err
		}
		if m == late {
			ag.OnComplete = func(now eventq.Time, _ uint32, _ [][]byte) {
				completed++
				lastDone = now
			}
		}
		agents[m] = ag
	}
	localRepairs, globalRepairs := 0, 0
	net.AddTap(func(now eventq.Time, at topology.NodeID, d netsim.Delivery) {
		if _, ok := d.Pkt.(*packet.Repair); ok && at == late && now.Seconds() > joinAt {
			if h.Level(d.Scope) > 0 {
				localRepairs++
			} else {
				globalRepairs++
			}
		}
	})
	q.At(1, func(eventq.Time) {
		for m, ag := range agents {
			if m != late {
				ag.Join()
			}
		}
	})
	q.At(6, func(eventq.Time) { agents[spec.Source].StartSource() })
	q.At(secondsToTime(joinAt), func(eventq.Time) { agents[late].JoinLate() })
	q.RunUntil(120)

	res := &LateJoinResult{
		Joiner:     int(late),
		JoinAt:     joinAt,
		Completion: float64(completed) / float64(pcfg.NumGroups()),
	}
	if total := localRepairs + globalRepairs; total > 0 {
		res.LocalRepairFrac = float64(localRepairs) / float64(total)
	}
	if completed > 0 {
		res.CatchUpSeconds = lastDone.Seconds() - joinAt
	}
	return res, nil
}

// String renders the failover result for CLI output.
func (r *FailoverResult) String() string {
	return fmt.Sprintf("failed ZCR %d (zone %d): new ZCR %d, survivor completion %.2f%%, zone completion %.2f%%",
		r.FailedNode, r.Zone, r.NewZCR, 100*r.SurvivorCompletion, 100*r.ZoneCompletion)
}

// String renders the late-join result for CLI output.
func (r *LateJoinResult) String() string {
	return fmt.Sprintf("joiner %d at t=%.1fs: completion %.2f%%, %.0f%% of repairs zone-local, caught up in %.1fs",
		r.Joiner, r.JoinAt, 100*r.Completion, 100*r.LocalRepairFrac, r.CatchUpSeconds)
}
