package sharqfec

import (
	"bytes"
	"crypto/sha256"
	"fmt"

	"sharqfec/internal/core"
	"sharqfec/internal/eventq"
	"sharqfec/internal/faults"
	"sharqfec/internal/netsim"
	"sharqfec/internal/scoping"
	"sharqfec/internal/simrand"
	"sharqfec/internal/srm"
	"sharqfec/internal/stats"
	"sharqfec/internal/topology"
)

// This file is the zone-sharded parallel counterpart of data.go: the
// same experiment, run on an eventq.ShardGroup with the topology
// partitioned by top-level zone (topology.PartitionByZone) and packet
// forwarding through netsim.Cluster fan plans. The contract is
// determinism across shard counts — DataConfig.Shards=1 and Shards=4
// produce byte-identical DataResults for the same config and seed —
// which the shard-matrix test pins against golden digests.
//
// Concurrency discipline mirrors the cluster's: each agent lives on
// the shard owning its node and only ever runs there; per-shard
// accumulators (collectors, completion records) are merged after the
// run; everything that mutates cross-shard state (joins, source
// start, fault events) goes through ShardGroup.Sync barriers.

// shardSetup is the machinery common to both protocol families.
type shardSetup struct {
	spec     *topology.Spec
	h        *scoping.Hierarchy
	src      *simrand.Source
	grp      *eventq.ShardGroup
	cluster  *netsim.Cluster
	owner    []int32
	cols     []*stats.Collector
	shards   int
	perShard eventq.Duration // lookahead, for diagnostics
}

func newShardSetup(cfg *DataConfig, spec *topology.Spec) (*shardSetup, error) {
	if cfg.Telemetry != nil {
		return nil, fmt.Errorf("sharqfec: telemetry is not supported with Shards > 0 (run sharded for speed or instrumented for depth, not both)")
	}
	if cfg.TraceWriter != nil {
		return nil, fmt.Errorf("sharqfec: packet traces are not supported with Shards > 0")
	}
	if cfg.RateControl != nil && cfg.RateControl.Mode == RateControlAdaptive {
		return nil, fmt.Errorf("sharqfec: adaptive rate control is not supported with Shards > 0")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("sharqfec: Shards = %d; want >= 1", cfg.Shards)
	}
	// Partition on the topology's NATIVE zone layout even when the
	// protocol runs globalized (SRM, unscoped SHARQFEC variants):
	// administrative flattening changes packet scoping, not the
	// physical locality the partition exploits — and keeping the
	// partition config-independent means every protocol family shares
	// one owner map per (topology, shard count).
	owner, lookahead := topology.PartitionByZone(spec.Graph, cfg.Topology.spec.Zones, cfg.Shards)
	if lookahead <= 0 {
		return nil, fmt.Errorf("sharqfec: topology %q has a zero-latency boundary link; cannot shard", spec.Name)
	}
	h, err := scoping.Build(spec.Zones)
	if err != nil {
		return nil, err
	}
	src := simrand.New(cfg.Seed)
	grp := eventq.NewShardGroup(cfg.Shards, lookahead)
	cluster, err := netsim.NewCluster(grp, spec.Graph, h, src, owner)
	if err != nil {
		return nil, err
	}
	cluster.SetQueueLimit(cfg.QueueLimit)
	s := &shardSetup{
		spec: spec, h: h, src: src, grp: grp, cluster: cluster,
		owner: owner, shards: cfg.Shards, perShard: lookahead,
	}
	s.cols = make([]*stats.Collector, cfg.Shards)
	for i := range s.cols {
		s.cols[i] = stats.NewCollector(spec.Source, len(spec.Receivers), cfg.BinWidth)
		n := cluster.Shard(i)
		n.AddTap(s.cols[i].Tap())
		n.AddSendTap(s.cols[i].SendTap())
	}
	return s, nil
}

// mergedCollector reduces the per-shard collectors into one.
func (s *shardSetup) mergedCollector(binWidth float64) *stats.Collector {
	col := stats.NewCollector(s.spec.Source, len(s.spec.Receivers), binWidth)
	for _, c := range s.cols {
		col.Merge(c)
	}
	return col
}

func (s *shardSetup) fillFaults(res *DataResult, eng *faults.Engine) {
	res.FaultDrops = int(s.cluster.FaultDrops())
	if eng == nil {
		return
	}
	for _, a := range eng.Log() {
		res.FaultLog = append(res.FaultLog, fmt.Sprintf("%s %s", a.At, a.Desc))
	}
}

// startFaults wires a fault engine whose plan events fire inside sync
// barriers (every shard quiescent), using shard 0's network view — its
// mutators delegate cluster-wide.
func (s *shardSetup) startFaults(cfg *DataConfig, onCrash, onRestart, onLeave func(now eventq.Time, node topology.NodeID)) (*faults.Engine, error) {
	if cfg.Faults.Empty() {
		return nil, nil
	}
	eng := faults.NewEngine(s.cluster.Shard(0), s.src, &cfg.Faults.plan)
	eng.Schedule = func(at eventq.Time, fn func(now eventq.Time)) { s.grp.Sync(at, fn) }
	eng.OnCrash = onCrash
	eng.OnRestart = onRestart
	eng.OnLeave = onLeave
	if err := eng.Start(); err != nil {
		return nil, err
	}
	return eng, nil
}

// compRec is one completed group at one receiver, recorded on the
// receiver's shard and verified against the source after the run (the
// source agent cannot be read safely mid-run from other shards).
type compRec struct {
	gid uint32
	sum [sha256.Size]byte
}

// shardAcc is one shard's completion tally. Shards write only their
// own entry; the barrier hand-off orders those writes before the
// post-run reads.
type shardAcc struct {
	completions int
	recs        []compRec
}

func payloadDigest(parts [][]byte) [sha256.Size]byte {
	h := sha256.New()
	for _, p := range parts {
		var n [4]byte
		n[0], n[1], n[2], n[3] = byte(len(p)), byte(len(p)>>8), byte(len(p)>>16), byte(len(p)>>24)
		h.Write(n[:])
		h.Write(p)
	}
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out
}

func runDataSharded(cfg DataConfig) (*DataResult, error) {
	if cfg.Protocol == SRM {
		return runSRMSharded(cfg)
	}
	opts, ok := cfg.Protocol.options()
	if !ok {
		return nil, fmt.Errorf("sharqfec: unknown protocol %q", cfg.Protocol)
	}
	spec := cfg.Topology.spec
	if !opts.Scoping {
		spec = globalized(spec)
	}
	spec = cloneForFaults(spec, cfg.Faults)
	s, err := newShardSetup(&cfg, spec)
	if err != nil {
		return nil, err
	}

	pcfg := core.DefaultConfig()
	pcfg.Source = spec.Source
	pcfg.NumPackets = cfg.NumPackets
	pcfg.Options = opts
	if cfg.GroupK > 0 {
		pcfg.GroupK = cfg.GroupK
	}
	pcfg.NewController = cfg.RateControl.factory(pcfg)

	agents := make(map[topology.NodeID]*core.Agent, len(spec.Receivers)+1)
	var sourceAgent *core.Agent
	comps := make([]shardAcc, s.shards)
	wire := func(ag *core.Agent, sh int32) {
		acc := &comps[sh]
		ag.OnComplete = func(_ eventq.Time, gid uint32, data [][]byte) {
			acc.completions++
			if cfg.SkipVerify {
				return
			}
			acc.recs = append(acc.recs, compRec{gid: gid, sum: payloadDigest(data)})
		}
	}
	for _, m := range spec.Members() {
		ag, err := core.New(m, s.cluster.NetFor(m), pcfg, s.src)
		if err != nil {
			return nil, err
		}
		agents[m] = ag
		if m == spec.Source {
			sourceAgent = ag
			continue
		}
		wire(ag, s.owner[m])
	}

	eng, err := s.startFaults(&cfg,
		func(_ eventq.Time, node topology.NodeID) {
			if ag, ok := agents[node]; ok {
				ag.Stop()
			}
		},
		func(_ eventq.Time, node topology.NodeID) {
			if node == spec.Source {
				return
			}
			ag, err := core.New(node, s.cluster.NetFor(node), pcfg, s.src)
			if err != nil {
				return
			}
			agents[node] = ag
			wire(ag, s.owner[node])
			ag.JoinLate()
		},
		func(_ eventq.Time, node topology.NodeID) {
			if ag, ok := agents[node]; ok {
				ag.Stop()
			}
		})
	if err != nil {
		return nil, err
	}

	s.grp.Sync(secondsToTime(cfg.JoinAt), func(eventq.Time) {
		for _, m := range spec.Members() {
			agents[m].Join()
		}
	})
	s.grp.Sync(secondsToTime(cfg.SourceOnAt), func(eventq.Time) { sourceAgent.StartSource() })
	s.grp.Run(secondsToTime(cfg.Until))

	// Post-run verification: compare every recorded completion against
	// the source's payloads, now that no shard is running.
	verified := true
	completions := 0
	if !cfg.SkipVerify {
		want := make(map[uint32][sha256.Size]byte)
		for _, acc := range comps {
			for _, r := range acc.recs {
				w, ok := want[r.gid]
				if !ok {
					w = payloadDigest(sourceAgent.SentGroup(r.gid))
					want[r.gid] = w
				}
				if r.sum != w {
					verified = false
				}
			}
		}
	}
	for _, acc := range comps {
		completions += acc.completions
	}

	res := &DataResult{
		Protocol:  cfg.Protocol,
		Topology:  spec.Name,
		Receivers: len(spec.Receivers),
		Verified:  verified && !cfg.SkipVerify,
	}
	fillSeries(res, s.mergedCollector(cfg.BinWidth))
	for _, m := range spec.Members() {
		ag := agents[m]
		res.NACKsSent += ag.Stats.NACKsSent
		res.RepairsSent += ag.Stats.RepairsSent
		res.RepairsInjected += ag.Stats.RepairsInjected
	}
	expect := len(spec.Receivers) * pcfg.NumGroups()
	res.CompletionRate = float64(completions) / float64(expect)
	s.fillFaults(res, eng)
	return res, nil
}

func runSRMSharded(cfg DataConfig) (*DataResult, error) {
	spec := cloneForFaults(globalized(cfg.Topology.spec), cfg.Faults)
	s, err := newShardSetup(&cfg, spec)
	if err != nil {
		return nil, err
	}

	pcfg := srm.DefaultConfig()
	pcfg.Source = spec.Source
	pcfg.NumPackets = cfg.NumPackets

	agents := make(map[topology.NodeID]*srm.Agent, len(spec.Receivers)+1)
	for _, m := range spec.Members() {
		ag, err := srm.New(m, s.cluster.NetFor(m), pcfg, s.src)
		if err != nil {
			return nil, err
		}
		agents[m] = ag
	}

	eng, err := s.startFaults(&cfg,
		func(_ eventq.Time, node topology.NodeID) {
			if ag, ok := agents[node]; ok {
				ag.Stop()
			}
		},
		func(_ eventq.Time, node topology.NodeID) {
			if node == spec.Source {
				return
			}
			ag, err := srm.New(node, s.cluster.NetFor(node), pcfg, s.src)
			if err != nil {
				return
			}
			agents[node] = ag
			ag.Join()
		},
		func(_ eventq.Time, node topology.NodeID) {
			if ag, ok := agents[node]; ok {
				ag.Stop()
			}
		})
	if err != nil {
		return nil, err
	}

	s.grp.Sync(secondsToTime(cfg.JoinAt), func(eventq.Time) {
		for _, m := range spec.Members() {
			agents[m].Join()
		}
	})
	s.grp.Sync(secondsToTime(cfg.SourceOnAt), func(eventq.Time) { agents[spec.Source].StartSource() })
	s.grp.Run(secondsToTime(cfg.Until))

	res := &DataResult{
		Protocol:  cfg.Protocol,
		Topology:  cfg.Topology.spec.Name,
		Receivers: len(spec.Receivers),
	}
	fillSeries(res, s.mergedCollector(cfg.BinWidth))
	// SRM verification and totals read agent state only after the run,
	// so no mid-run cross-shard reads are needed at all.
	held, verified := 0, true
	srcAgent := agents[spec.Source]
	for _, m := range spec.Receivers {
		ag := agents[m]
		res.NACKsSent += ag.Stats.RequestsSent
		res.RepairsSent += ag.Stats.RepairsSent
		held += ag.Held()
		if !cfg.SkipVerify {
			for seq := uint32(0); seq < uint32(cfg.NumPackets); seq += 13 {
				got, ok := ag.Payload(seq)
				want, _ := srcAgent.Payload(seq)
				if ok && !bytes.Equal(got, want) {
					verified = false
				}
			}
		}
	}
	res.RepairsSent += srcAgent.Stats.RepairsSent
	res.CompletionRate = float64(held) / float64(len(spec.Receivers)*cfg.NumPackets)
	res.Verified = verified && !cfg.SkipVerify
	s.fillFaults(res, eng)
	return res, nil
}
